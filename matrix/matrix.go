// Package matrix is the public surface of the dense float64 and boolean
// matrix toolkit the framework's models are phrased in: parameter matrices
// (collective.Params), collective stage matrices (collective.Pattern.Stages)
// and the cost-model outputs all use these types.
package matrix

import "hbsp/internal/matrix"

// Dense is a dense row-major float64 matrix.
type Dense = matrix.Dense

// Bool is a dense boolean matrix, the representation of collective stage
// incidence.
type Bool = matrix.Bool

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense { return matrix.NewDense(rows, cols) }

// NewDenseFrom builds a matrix from row slices.
func NewDenseFrom(rows [][]float64) (*Dense, error) { return matrix.NewDenseFrom(rows) }

// MustDense builds a matrix from row slices and panics on shape errors.
func MustDense(rows [][]float64) *Dense { return matrix.MustDense(rows) }

// NewBool returns a zeroed rows×cols boolean matrix.
func NewBool(rows, cols int) *Bool { return matrix.NewBool(rows, cols) }

// NewBoolFrom builds a boolean matrix from 0/1 row slices.
func NewBoolFrom(rows [][]int) (*Bool, error) { return matrix.NewBoolFrom(rows) }

// MustBool builds a boolean matrix from 0/1 row slices and panics on shape
// errors.
func MustBool(rows [][]int) *Bool { return matrix.MustBool(rows) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense { return matrix.Identity(n) }

// Ones returns the all-ones vector of length n.
func Ones(n int) []float64 { return matrix.Ones(n) }

package hbsp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hbsp/bench"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/fault"
	"hbsp/mpi"
	"hbsp/sched"
	"hbsp/sim"
	"hbsp/trace"
)

// Typed errors of the facade. Errors returned by a Session wrap these
// sentinels, so callers dispatch with errors.Is.
var (
	// ErrInvalidMachine is wrapped by New when the machine (or the profile it
	// was instantiated from) fails validation.
	ErrInvalidMachine = errors.New("hbsp: invalid machine")
	// ErrOption is wrapped by New when a functional option is misused (bad
	// value, or an option the machine cannot support).
	ErrOption = errors.New("hbsp: invalid option")
	// ErrDeadline is returned when a run exceeds its wall-clock deadline
	// (usually a deadlocked simulated program).
	ErrDeadline = sim.ErrDeadline
	// ErrAborted is wrapped by the error of a run cancelled through its
	// context.
	ErrAborted = sim.ErrAborted
	// ErrInvalidFault is wrapped by New when a WithFaults plan fails
	// validation against the session's machine.
	ErrInvalidFault = fault.ErrInvalid
)

// TraceEvent is one observation delivered to a WithTrace callback.
type TraceEvent struct {
	// Kind is "run.start", "superstep" or "run.end".
	Kind string
	// Rank is the reporting process, or -1 for run-level events.
	Rank int
	// Step is the completed superstep index ("superstep" events only). BSP
	// runs emit one per completed Sync, MPI runs one per completed Barrier
	// (the MPI analogue of a superstep boundary).
	Step int
	// Time is the virtual time in seconds: the reporting process' clock for
	// "superstep", the makespan for "run.end", zero for "run.start".
	Time float64
	// Err carries the run outcome on "run.end" events.
	Err error
}

// TraceFunc receives trace events. The Session serializes invocations, so
// implementations need no locking of their own.
type TraceFunc func(TraceEvent)

// Session is the facade's handle on one configured simulated machine: it
// owns the validated machine, the simulator options, the superstep
// synchronizer and the collective-schedule source, and runs raw simulator,
// BSP and MPI programs against them. A Session is immutable after New and
// safe for concurrent runs — with one exception: a session built with
// WithRecorder must not run concurrently, because its recorder holds exactly
// one run at a time (see WithRecorder).
type Session struct {
	machine   sim.Machine
	options   sim.Options
	sync      bsp.Synchronizer
	schedules bsp.ScheduleSource
	trace     TraceFunc
	traceMu   sync.Mutex
}

// Option configures a Session; the With... constructors in this package
// build them. Options are applied in order at New time and may fail, which
// surfaces as an error wrapping ErrOption.
type Option func(*Session) error

// New validates the machine and builds a Session with the supplied
// functional options. Machines instantiated from a cluster.Profile are
// validated against their profile (the check MachineFor lets callers bypass)
// — a broken profile surfaces here as an error wrapping ErrInvalidMachine
// instead of NaN-propagating through a run.
func New(m sim.Machine, opts ...Option) (*Session, error) {
	if m == nil || m.Procs() < 1 {
		return nil, fmt.Errorf("%w: machine with at least one rank required", ErrInvalidMachine)
	}
	if pm, ok := m.(interface{ Profile() *cluster.Profile }); ok {
		if err := pm.Profile().Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidMachine, err)
		}
	}
	s := &Session{
		machine:   m,
		options:   sim.DefaultOptions(),
		sync:      bsp.DefaultSynchronizer(),
		schedules: bsp.NewScheduleCache(),
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// WithSeed derives the machine's deterministic noise stream from the given
// seed. The stream is a pure function of (seed, rank, event sequence), so
// every run on one Session observes the bit-identical jitter — which is what
// makes golden tests possible. To sample run-to-run variance, construct
// sessions with different seeds, one per repetition. The machine must
// support reseeding (cluster machines do).
func WithSeed(seed int64) Option {
	return func(s *Session) error {
		type reseeder interface {
			WithRunSeed(int64) *cluster.Machine
		}
		rm, ok := s.machine.(reseeder)
		if !ok {
			return fmt.Errorf("%w: WithSeed needs a machine supporting WithRunSeed, got %T", ErrOption, s.machine)
		}
		s.machine = rm.WithRunSeed(seed)
		return nil
	}
}

// WithDeadline bounds the real (wall-clock) duration of every run as a guard
// against deadlocked simulated programs; exceeding it returns ErrDeadline.
func WithDeadline(d time.Duration) Option {
	return func(s *Session) error {
		if d <= 0 {
			return fmt.Errorf("%w: non-positive deadline %v", ErrOption, d)
		}
		s.options.Deadline = d
		return nil
	}
}

// WithAckSends controls whether send requests complete only once an
// acknowledgement has returned from the destination (the default, matching
// the thesis' factor-2 stage cost).
func WithAckSends(ack bool) Option {
	return func(s *Session) error {
		s.options.AckSends = ack
		return nil
	}
}

// WithConcurrentEngine disables the direct discrete-event fast path: every
// schedule-expressible collective (pattern executions, superstep count
// exchanges, schedule floods) is walked message by message through
// goroutines and mailboxes instead of being evaluated sequentially at an
// all-ranks rendezvous. Virtual times are bit-identical either way — the
// default (direct) engine is simply 5–10x faster on collective-heavy runs —
// so this option exists for engine diffing and for programs that break the
// collective-call contract the rendezvous relies on (e.g. only a subset of
// ranks executing a collective).
func WithConcurrentEngine() Option {
	return func(s *Session) error {
		s.options.Engine = sim.EngineConcurrent
		return nil
	}
}

// WithSymmetryCollapse controls symmetry-collapsed direct evaluation. With
// enabled=true — the default, so the option exists to spell the default out
// — the direct evaluator detects rank-equivalence classes (homogeneous
// machine, symmetric schedule, no trace recorder) and evaluates one
// representative rank per class, replicating the class states at result
// assembly; virtual times, makespan and traffic counters are bit-identical
// to per-rank evaluation wherever the collapse applies, and evaluation falls
// back silently where it does not. enabled=false forces per-rank evaluation
// everywhere (the escape hatch, and the engine-diffing control).
func WithSymmetryCollapse(enabled bool) Option {
	return func(s *Session) error {
		if enabled {
			s.options.SymmetryCollapse = sim.CollapseAuto
		} else {
			s.options.SymmetryCollapse = sim.CollapseOff
		}
		return nil
	}
}

// WithFaults injects a deterministic fault scenario into every run of the
// session: per-rank slowdowns (stragglers), link-degradation windows, and
// fail-stop crashes with checkpoint/restart cost accounting (package fault).
// Both engines honor the plan bit-identically, and the same seed plus the
// same plan reproduces the same virtual times and traces. The plan is
// validated against the machine here; a malformed plan surfaces as an error
// wrapping ErrInvalidFault.
func WithFaults(plan *fault.Plan) Option {
	return func(s *Session) error {
		if plan == nil {
			return fmt.Errorf("%w: nil fault plan (omit WithFaults instead)", ErrOption)
		}
		if err := plan.Validate(s.machine.Procs()); err != nil {
			return fmt.Errorf("hbsp: %w", err)
		}
		if _, ok := s.machine.(interface{ PairClass(i, j int) uint8 }); !ok {
			for _, l := range plan.Links {
				if l.Class >= 0 {
					return fmt.Errorf("hbsp: %w: link rule matches distance class %d but machine %T does not expose pair classes",
						ErrInvalidFault, l.Class, s.machine)
				}
			}
		}
		s.options.Faults = plan
		return nil
	}
}

// WithSynchronizer installs the synchronizer that performs the count total
// exchange ending every BSP superstep (bsp.DefaultSynchronizer, a
// bsp.NewScheduleSynchronizer schedule, or any custom implementation).
func WithSynchronizer(sync bsp.Synchronizer) Option {
	return func(s *Session) error {
		if sync == nil {
			return fmt.Errorf("%w: nil synchronizer", ErrOption)
		}
		s.sync = sync
		return nil
	}
}

// WithScheduleSynchronizer wraps a verified collective schedule as the
// superstep synchronizer.
func WithScheduleSynchronizer(pat *collective.Pattern) Option {
	return func(s *Session) error {
		sync, err := bsp.NewScheduleSynchronizer(pat)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrOption, err)
		}
		s.sync = sync
		return nil
	}
}

// WithAdaptedSynchronizer benchmarks the machine's pairwise parameter
// matrices (reps repetitions per pair), runs the model-driven greedy
// construction with the count payload each candidate would carry, and
// installs the winning hybrid schedule as the superstep synchronizer — the
// Chapter 7 adaptation as one option. The benchmark simulates the machine,
// so this option does measurable work at New time.
func WithAdaptedSynchronizer(reps int) Option {
	return func(s *Session) error {
		params, err := bench.ModelParams(s.machine, reps)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrOption, err)
		}
		sync, _, err := bsp.NewAdaptedSynchronizer(params, collective.DefaultCostOptions())
		if err != nil {
			return fmt.Errorf("%w: %v", ErrOption, err)
		}
		s.sync = sync
		return nil
	}
}

// WithCollectiveSchedules installs the source of the verified schedules the
// BSP user collectives (Ctx.Broadcast, Ctx.AllReduce, ...) execute; the
// default source builds the generator schedules of package collective.
func WithCollectiveSchedules(src bsp.ScheduleSource) Option {
	return func(s *Session) error {
		if src == nil {
			return fmt.Errorf("%w: nil schedule source", ErrOption)
		}
		s.schedules = src
		return nil
	}
}

// WithTrace installs a callback observing run starts and ends and every
// completed superstep (a Sync for BSP runs, a Barrier for MPI runs). Events
// from concurrent simulated processes are serialized before delivery.
//
// WithTrace is the lightweight callback hook; for full per-event recording
// with analysis and export, attach a recorder with WithRecorder instead (the
// two compose).
func WithTrace(f TraceFunc) Option {
	return func(s *Session) error {
		if f == nil {
			return fmt.Errorf("%w: nil trace func", ErrOption)
		}
		s.trace = f
		return nil
	}
}

// WithRecorder attaches a trace.Recorder to every run of the session: the
// simulator records message injections, receive completions, compute
// intervals and superstep/stage boundaries into per-rank lock-free lanes,
// and after the run rec.Trace() yields the merged deterministic trace for
// analysis (critical path, time breakdowns, h-relations) and export (Chrome
// trace JSON, text report).
//
// A recorder holds one run at a time: each run of the session overwrites the
// previous recording, and a session carrying a recorder loses the Session's
// usual concurrent-run safety — serialize its runs (or build one session per
// goroutine, each with its own recorder, as the parallel sweep engine does).
// Passing trace.Disabled (the nil recorder) is rejected — omit the option
// instead.
func WithRecorder(rec *trace.Recorder) Option {
	return func(s *Session) error {
		if !rec.Enabled() {
			return fmt.Errorf("%w: nil recorder (construct one with trace.NewRecorder, or omit WithRecorder)", ErrOption)
		}
		s.options.Recorder = rec
		return nil
	}
}

// Machine returns the machine the session runs on (reseeded if WithSeed was
// used).
func (s *Session) Machine() sim.Machine { return s.machine }

// Procs returns the machine's rank count.
func (s *Session) Procs() int { return s.machine.Procs() }

// Synchronizer returns the configured superstep synchronizer.
func (s *Session) Synchronizer() bsp.Synchronizer { return s.sync }

// emit delivers a trace event, serializing concurrent emitters.
func (s *Session) emit(ev TraceEvent) {
	if s.trace == nil {
		return
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.trace(ev)
}

// superstepObserver builds the per-rank superstep callback shared by RunBSP
// (Sync boundaries) and RunMPI (Barrier boundaries), or nil without a trace
// func. The runEnded flag is read under the trace mutex — the same critical
// section endRun raises it in — so a rank leaked by an aborted run (stuck in
// uninterruptible compute past the teardown grace period) can never deliver
// a superstep event after this run's run.end.
func (s *Session) superstepObserver(runEnded *atomic.Bool) func(rank, step int, vtime float64) {
	if s.trace == nil {
		return nil
	}
	return func(rank, step int, vtime float64) {
		s.traceMu.Lock()
		defer s.traceMu.Unlock()
		if runEnded.Load() {
			return
		}
		s.trace(TraceEvent{Kind: "superstep", Rank: rank, Step: step, Time: vtime})
	}
}

// endRun marks the run ended and emits run.end atomically with respect to
// the superstep observer, then passes the run result through.
func (s *Session) endRun(runEnded *atomic.Bool, res *sim.Result, err error) (*sim.Result, error) {
	ev := TraceEvent{Kind: "run.end", Rank: -1, Err: err}
	if res != nil {
		ev.Time = res.MakeSpan
	}
	if s.trace == nil {
		runEnded.Store(true)
		return res, err
	}
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	runEnded.Store(true)
	s.trace(ev)
	return res, err
}

// Run executes body once per rank of the machine as a raw simulator program
// and returns the per-rank virtual finishing times. Cancelling the context
// aborts the run (every rank blocked in a receive unwinds before Run
// returns) with an error wrapping ErrAborted.
func (s *Session) Run(ctx context.Context, body func(p *sim.Proc) error) (*sim.Result, error) {
	var runEnded atomic.Bool
	s.emit(TraceEvent{Kind: "run.start", Rank: -1})
	res, err := sim.Run(ctx, s.machine, body, s.options)
	return s.endRun(&runEnded, res, err)
}

// RunBSP executes the SPMD program under the BSP run-time with the session's
// synchronizer ending every superstep and the session's schedule source
// backing the user collectives.
func (s *Session) RunBSP(ctx context.Context, program bsp.Program) (*sim.Result, error) {
	m, ok := s.machine.(bsp.Machine)
	if !ok {
		return nil, fmt.Errorf("%w: BSP programs need per-rank kernel timing (bsp.Machine), got %T", ErrInvalidMachine, s.machine)
	}
	var runEnded atomic.Bool
	s.emit(TraceEvent{Kind: "run.start", Rank: -1})
	opts := s.options
	res, err := bsp.RunContext(ctx, m, bsp.RunConfig{
		Sync:      s.sync,
		Schedules: s.schedules,
		Observer:  s.superstepObserver(&runEnded),
		Options:   &opts,
	}, program)
	return s.endRun(&runEnded, res, err)
}

// RunProgram evaluates a sim.Program op-stream — the timing skeleton of a
// workload with every operand fixed up front — and returns the per-rank
// virtual finishing times. Under the default engine the program is compiled
// and evaluated by the goroutine-free discrete-event evaluator
// (sched.RunProgram); WithConcurrentEngine replays it through goroutines and
// mailboxes instead. Virtual times are bit-identical either way.
func (s *Session) RunProgram(ctx context.Context, pr *sim.Program) (*sim.Result, error) {
	if pr == nil {
		return nil, fmt.Errorf("%w: nil program", ErrOption)
	}
	if pr.Procs() != s.machine.Procs() {
		return nil, fmt.Errorf("%w: program built for %d ranks, machine has %d", ErrOption, pr.Procs(), s.machine.Procs())
	}
	var runEnded atomic.Bool
	s.emit(TraceEvent{Kind: "run.start", Rank: -1})
	var (
		res *sim.Result
		err error
	)
	if s.options.Engine == sim.EngineConcurrent {
		res, err = sim.RunProgram(ctx, s.machine, pr, s.options)
	} else {
		res, err = sched.RunProgram(ctx, s.machine, pr, s.options)
	}
	return s.endRun(&runEnded, res, err)
}

// RunMPI executes body once per rank under the MPI-flavoured layer. With
// WithTrace installed, every completed Barrier is reported as a "superstep"
// event, mirroring the BSP instrumentation.
func (s *Session) RunMPI(ctx context.Context, body func(c *mpi.Comm) error) (*sim.Result, error) {
	var runEnded atomic.Bool
	s.emit(TraceEvent{Kind: "run.start", Rank: -1})
	res, err := mpi.RunObserved(ctx, s.machine, body, s.options, s.superstepObserver(&runEnded))
	return s.endRun(&runEnded, res, err)
}

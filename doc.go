// Package hbsp is a Go reproduction of "Performance Modeling of Heterogeneous
// Systems" (Jan Christian Meyer, NTNU): a framework that models heterogeneous
// SMP clusters by replacing the scalar BSP parameters with matrices of
// pairwise and per-kernel performance parameters, a matrix-based cost model
// for barrier synchronization, an overlapping BSPlib run-time, and the two
// case studies (model-driven barrier adaptation and a 5-point Laplacian
// stencil) — all executed against a virtual-time cluster simulator that
// stands in for the thesis' physical test systems.
//
// The implementation lives under internal/; see README.md for the package
// map, including the collective-schedule engine (internal/barrier), the
// pluggable superstep synchronizer (internal/bsp) and the parallel sweep
// engine (internal/experiments). cmd/simbench is the simulator's
// machine-readable benchmark harness: it regenerates BENCH_simnet.json, the
// tracked performance baseline of the simulator hot path (see the README's
// "Simulator performance" section). The root package only hosts the
// repository-level benchmark harness (bench_test.go), which regenerates every
// table and figure of the evaluation and tracks the simulator micro-benchmarks.
package hbsp

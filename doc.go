// Package hbsp is a Go reproduction of "Performance Modeling of Heterogeneous
// Systems" (Jan Christian Meyer, NTNU): a framework that models heterogeneous
// SMP clusters by replacing the scalar BSP parameters with matrices of
// pairwise and per-kernel performance parameters, a matrix-based cost model
// for synchronization and collective schedules, an overlapping BSPlib
// run-time, and the thesis' two case studies — all executed against a
// deterministic virtual-time cluster simulator that stands in for the
// thesis' physical test systems.
//
// The root package is the SDK facade: build a machine from a platform
// profile (package cluster), wrap it in a Session with functional options,
// and run raw simulator, BSP or MPI programs against it with a cancellable
// context:
//
//	machine, err := cluster.Xeon8x2x4().Machine(16)
//	if err != nil {
//		log.Fatal(err)
//	}
//	sess, err := hbsp.New(machine,
//		hbsp.WithSeed(42),
//		hbsp.WithDeadline(30*time.Second),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	res, err := sess.RunBSP(ctx, func(c *bsp.Ctx) error {
//		sum, err := c.AllReduce([]float64{float64(c.Pid())}, bsp.OpSum)
//		if err != nil {
//			return err
//		}
//		_ = sum // identical on every process
//		return c.Sync()
//	})
//
// Runs return typed errors (ErrDeadline, ErrAborted, ErrInvalidMachine) and
// bit-identical virtual times to the internal engines, pinned by golden
// tests.
//
// # Observability
//
// Attach a trace.Recorder with WithRecorder to record every event of a run
// (sends, receive waits, compute intervals, superstep and collective-stage
// boundaries) into per-rank lock-free lanes, merged deterministically after
// the run — two runs with the same WithSeed produce byte-identical traces:
//
//	rec := trace.NewRecorder()
//	sess, err := hbsp.New(machine, hbsp.WithSeed(42), hbsp.WithRecorder(rec))
//	if err != nil {
//		log.Fatal(err)
//	}
//	if _, err := sess.RunBSP(ctx, program); err != nil {
//		log.Fatal(err)
//	}
//	tr, err := rec.Trace()
//	if err != nil {
//		log.Fatal(err)
//	}
//	cp := tr.CriticalPath()            // gating chain; cp.End == makespan
//	bd := tr.Breakdown()               // compute / send / straggler / latency
//	trace.WriteReport(os.Stdout, tr, trace.ReportOptions{})
//	trace.WriteChrome(f, tr)           // load f in chrome://tracing or Perfetto
//
// The lighter-weight WithTrace option delivers run.start/superstep/run.end
// callbacks instead (for both BSP Syncs and MPI Barriers); the two compose.
// See cmd/hbsptrace for a ready-made front-end and examples/tracing for a
// runnable walkthrough.
//
// # Execution engines
//
// Two engines execute simulated workloads, always with bit-identical virtual
// times, traffic counters and recorded traces:
//
//   - The concurrent engine runs every rank as a goroutine against indexed
//     mailboxes. It executes arbitrary simulated code — closures, data
//     movement, irregular communication — and is the reference the golden
//     tests pin.
//
//   - The direct discrete-event evaluator (package sched) computes virtual
//     times from the LogGP recurrence with no goroutines, mailboxes or
//     channel wake-ups. Workloads whose communication structure is fixed
//     before they run — verified collective schedules, the superstep count
//     exchange, straight-line sim.Program op-streams — are evaluated
//     sequentially, 5–10x faster at P ≥ 256, and scale to rank counts
//     (P = 4096) the concurrent engine cannot reach.
//
// By default the two cooperate: runs execute concurrently, and every
// schedule-expressible collective — a collective.Execute pattern execution,
// the count exchange ending a bsp Sync, an mpi schedule flood (which backs
// the bsp.Ctx and mpi.Comm collectives) — brings all ranks to a rendezvous
// where the last arriver evaluates the whole collective at once and resumes
// everyone. Arbitrary closures around the collectives still run
// concurrently, so the fast path is invisible except in wall-clock time.
// WithConcurrentEngine (or sim.EngineConcurrent) opts a session out, forcing
// every message through the mailboxes — useful for engine diffing and for
// programs that break the collective-call contract the rendezvous relies on.
// Whole workloads can also be evaluated with zero goroutines via
// sched.RunSchedule and sched.RunProgram.
//
// On top of the direct evaluator, symmetry collapse detects rank-equivalence
// classes — a pairwise-uniform machine (cluster.FlatCluster, or any
// homogeneous profile) plus a rank-symmetric schedule (the circulant
// generators, the dissemination count exchange) — and evaluates one
// representative rank per class, replicating the class results at assembly.
// Times, makespan and traffic counters stay bit-identical to per-rank
// evaluation. Where the collapse does not apply the evaluator falls back to
// per-rank evaluation and reports the decision in Result.Collapse: whether
// it was applied, how many equivalence classes it used, and on fallback the
// reason — one of the sim.CollapseReason* constants ("off", "hetero",
// "noise", "trace", "asymmetric", "fault"). The collapse is what takes
// direct sweeps from P = 4096 to P = 1M. It is on by default;
// WithSymmetryCollapse(false) (or sim.CollapseOff) forces per-rank
// evaluation everywhere — the escape hatch, and the control column when
// diffing the two paths.
//
// For parameter sweeps — many points varying payload size, LogGP link
// scaling or seed over one schedule family — sched.NewSweepEvaluator keeps
// the compiled schedule, the collapse partition and memoized per-stage term
// tapes alive across points, re-pricing only what a changed axis touches
// instead of re-evaluating from scratch; every point stays bit-identical to
// an independent sched.RunSchedule call. The experiments sweep series
// (experiments.BytesSweepSeries, experiments.ScaleSweepSeries) and the
// server's NDJSON sweep path run on it; SweepEvaluator.Stats reports what
// was reused.
//
// # Fault injection
//
// WithFaults attaches a fault.Plan — deterministic, seeded, validated
// against the machine at New time (ErrInvalidFault) — and both engines
// honor it bit-identically. The scenarios a plan expresses:
//
//   - Stragglers: fault.Slowdown multiplies one rank's compute/noise draws
//     by a factor, optionally jittered and confined to a virtual-time
//     window.
//   - Link degradation: fault.LinkRule multiplies latency and transfer time
//     of messages matched by source, destination and/or distance class
//     (wildcards with -1; class rules target e.g. every cross-group cable
//     of a cluster.FatTreeCluster or cluster.DragonflyCluster machine).
//   - Fail-stop crashes: fault.FailStop kills a rank at a virtual time and
//     charges restart plus recomputation back to the last checkpoint;
//     surviving ranks stall at their next rendezvous with the failed rank,
//     and the recovery is recorded as a "fault" trace event.
//
// A nil plan costs the hot paths a single pointer test. Under symmetry
// collapse, fault-touched ranks split into their own equivalence classes
// while the untouched rest keeps collapsing; fully asymmetric plans fall
// back to per-rank evaluation with Result.Collapse.Reason == "fault".
// See the experiments package (StragglerSeries, RecoverySeries) for
// predicted-vs-simulated validation of the injections.
//
// # Server mode
//
// The server package (daemon: cmd/hbspd) exposes the stack over HTTP for
// non-Go clients: POST a profile (cluster preset, custom profile, or raw
// pairwise matrices), a workload (collectives, barriers, BSP supersteps,
// the stencil, or a sim.Program op-stream), an optional fault.Plan and
// optional sweep axes to /v1/predict; single points return one JSON object
// and sweeps stream NDJSON in deterministic row-major order. Because
// virtual times are deterministic, responses are cached as rendered bytes
// in a bounded LRU keyed by the semantic tuple (profile fingerprint,
// workload, P, bytes, seed, engine, collapse mode, fault fingerprint,
// parameter scale, per-rank/trace flags) — cluster.Profile.Fingerprint and
// fault.Plan.Fingerprint are the stable content hashes behind the key, so
// any parameter change is automatically a new cache entry and identical
// bodies are answered byte-identically (cache status travels in the
// X-Hbspd-Cache header). Identical concurrent misses coalesce into a
// single evaluation; a global concurrency limiter sheds excess load with
// 429; per-request budgets map to WithDeadline (408); client disconnects
// tear the evaluation down via the request context (499). Cache-missed
// collective points on the default engine run on pooled sched
// sweep evaluators keyed by the profile's base fingerprint, so the points
// of one sweep — and distinct single-point misses against the same profile
// — share compiled schedules and memoized term tapes (reuse shows up as
// the sweepPointsReused and partitionsReused counters of /metrics). See
// the server package documentation for the wire format.
//
// The public packages layer as follows: cluster (platform profiles,
// topologies, machines) feeds sim (the virtual-time simulator), on which bsp
// (the BSPlib run-time with user collectives and the pluggable superstep
// synchronizer) and mpi (point-to-point, persistent requests,
// schedule-driven collectives) are built; collective holds the
// schedule engine (patterns, verification, cost model, model-driven
// adaptation), bench the measurement procedures, kernels and matrix the
// modeling vocabulary, stencil Case Study II, trace the recording and
// analysis subsystem, fault the deterministic fault/straggler injection
// plans, server the prediction service, and experiments the evaluation
// driver. See README.md
// for the package map and a migration table from the pre-facade internal
// API.
package hbsp

// Package hbsp is a Go reproduction of "Performance Modeling of Heterogeneous
// Systems" (Jan Christian Meyer, NTNU): a framework that models heterogeneous
// SMP clusters by replacing the scalar BSP parameters with matrices of
// pairwise and per-kernel performance parameters, a matrix-based cost model
// for barrier synchronization, an overlapping BSPlib run-time, and the two
// case studies (model-driven barrier adaptation and a 5-point Laplacian
// stencil) — all executed against a virtual-time cluster simulator that
// stands in for the thesis' physical test systems.
//
// The implementation lives under internal/; see README.md for the package
// map, including the collective-schedule engine (internal/barrier) and the
// pluggable superstep synchronizer (internal/bsp). The root package only
// hosts the repository-level benchmark harness (bench_test.go), which
// regenerates every table and figure of the evaluation.
package hbsp

// Package sched is the public surface of the goroutine-free discrete-event
// evaluator: the schedule and op-stream entry points that compute virtual
// times directly from the LogGP recurrence, with no goroutines, mailboxes or
// channel wake-ups, bit-identical to the concurrent engine.
//
// Most programs never call this package: with the default engine, runs
// started through hbsp.Session (or the bsp/mpi/collective layers) already
// route every schedule-expressible collective through the evaluator at an
// all-ranks rendezvous. Call it directly to evaluate a whole workload with
// zero goroutines — collective sweeps at rank counts the concurrent engine
// cannot reach (cmd/simbench's P=4096 entries run this way), or a
// sim.Program built by hand.
package sched

import (
	"context"

	"hbsp/internal/sched"
	"hbsp/sim"
)

// Stage is the sparse adjacency of one schedule stage.
type Stage = sched.Stage

// Schedule is the stage-graph view the evaluator executes; implementations
// may generate stages on the fly (see Stage for the ordering contract).
// collective.Pattern values are Schedules via their ScheduleView method.
type Schedule = sched.Schedule

// StaticStages wraps a materialized stage slice as a Schedule.
type StaticStages = sched.StaticStages

// Symmetry is the rank-symmetry hint a schedule may declare; see SymNone and
// SymCirculant.
type Symmetry = sched.Symmetry

const (
	// SymNone declares nothing; the evaluator falls back to structural
	// equivalence-class refinement (or per-rank evaluation).
	SymNone = sched.SymNone
	// SymCirculant asserts every stage is a circulant: each rank sends to
	// rank+offset (mod P) with a rank-invariant payload. On machines whose
	// pairs are uniform, all ranks collapse into one equivalence class.
	SymCirculant = sched.SymCirculant
)

// Circulant is a streaming circulant schedule — one offset and payload size
// per stage, generated into O(1) reused buffers. It is the representation
// that takes symmetry-collapsed sweeps to P=1M.
type Circulant = sched.Circulant

// NewCirculant returns the circulant schedule with the given per-stage
// offsets (taken mod p) and payload sizes (nil for signal-only stages).
func NewCirculant(p int, offsets, sizes []int) (*Circulant, error) {
	return sched.NewCirculant(p, offsets, sizes)
}

// Code is a compiled sim.Program, reusable across evaluations.
type Code = sched.Code

// Compile lowers a program into flat per-rank instruction arrays with all
// message matching resolved; evaluate it with Code.Run.
func Compile(pr *sim.Program) (*Code, error) { return sched.Compile(pr) }

// RunProgram executes the program on the engine the options select: the
// direct discrete-event evaluator by default, the concurrent engine under
// sim.EngineConcurrent. Both produce bit-identical virtual times, traffic
// counters and recorded traces.
func RunProgram(ctx context.Context, m sim.Machine, pr *sim.Program, o sim.Options) (*sim.Result, error) {
	return sched.RunProgram(ctx, m, pr, o)
}

// RunSchedule evaluates execs consecutive executions of the schedule with
// zero goroutines — the direct counterpart of executing a verified pattern
// execs times under an MPI run — and returns the per-rank virtual finishing
// times. Cancellation and deadlines behave like the concurrent engine's
// (errors wrap sim.ErrAborted / sim.ErrDeadline).
func RunSchedule(ctx context.Context, m sim.Machine, s Schedule, execs int, o sim.Options) (*sim.Result, error) {
	return sched.RunSchedule(ctx, m, s, execs, o)
}

// SweepEvaluator evaluates a family of schedule points — a parameter sweep
// over bytes, LogGP scalings or run seeds — reusing everything the points
// share: the evaluator arena, memoized symmetry partitions and per-edge term
// tapes. Every point is bit-identical to an independent RunSchedule call
// with the same options; an unchanged point is a pure replay of the cached
// result. Not safe for concurrent use — parallel sweeps give each worker its
// own evaluator.
type SweepEvaluator = sched.SweepEvaluator

// SweepOptions configures a SweepEvaluator (its fixed per-sweep options:
// acks, collapse mode, fault plan, recorder, memo budget).
type SweepOptions = sched.SweepOptions

// SweepStats reports what a SweepEvaluator reused across its points.
type SweepStats = sched.SweepStats

// DefaultSweepMemoBudget is the default bound on a sweep evaluator's
// memoized term tapes.
const DefaultSweepMemoBudget = sched.DefaultSweepMemoBudget

// NewSweepEvaluator returns a sweep evaluator over the machine. Release it
// when the sweep is done.
func NewSweepEvaluator(m sim.Machine, opt SweepOptions) (*SweepEvaluator, error) {
	return sched.NewSweepEvaluator(m, opt)
}

// Package model is the public surface of the heterogeneous superstep cost
// model — the thesis' replacement of the scalar BSP cost function: per-rank
// compute requirements priced by per-kernel cost matrices (ComputeModel),
// pairwise message and data matrices priced by latency and inverse-bandwidth
// matrices (CommModel), a synchronization term, and maskable overlap
// factors. A Superstep combines the three and Predict returns per-process
// and total time; Program chains supersteps. The classic scalar model
// (ClassicParams) is kept for the Chapter 3 comparison.
package model

import (
	"hbsp/internal/core"

	"hbsp/matrix"
)

// ComputeModel prices per-rank computation from requirement and cost
// matrices.
type ComputeModel = core.ComputeModel

// CommModel prices pairwise communication from message, data, latency and
// inverse-bandwidth matrices.
type CommModel = core.CommModel

// Superstep is one heterogeneous BSP superstep: computation, communication,
// synchronization and their overlap factors.
type Superstep = core.Superstep

// Prediction holds the predicted per-process and total superstep times.
type Prediction = core.Prediction

// Program is a sequence of supersteps; ProgramPrediction sums their
// predictions.
type (
	Program           = core.Program
	ProgramPrediction = core.ProgramPrediction
)

// ClassicParams are the scalar bspbench parameters of the classic BSP cost
// model.
type ClassicParams = core.ClassicParams

// Imbalance returns the relative load imbalance of per-process times.
func Imbalance(times []float64) float64 { return core.Imbalance(times) }

// OverlapFromMeasurement infers the achieved overlap factor from measured
// compute, communication and total times.
func OverlapFromMeasurement(compTime, commTime, measuredTotal float64) float64 {
	return core.OverlapFromMeasurement(compTime, commTime, measuredTotal)
}

// UniformRequirement builds the P×K requirement matrix assigning the same
// per-kernel element counts to every process.
func UniformRequirement(p int, perKernel []float64) *matrix.Dense {
	return core.UniformRequirement(p, perKernel)
}

// HRelation returns the h-relation of a process sending and receiving the
// given word counts.
func HRelation(sent, received float64) float64 { return core.HRelation(sent, received) }

// Iterative builds a program repeating one superstep.
func Iterative(name string, step Superstep, iterations int) Program {
	return core.Iterative(name, step, iterations)
}

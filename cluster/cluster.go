// Package cluster is the public surface for describing and instantiating
// simulated platforms: hierarchical topologies (nodes × sockets × cores),
// per-node core designs with memory hierarchies, per-distance-class link
// parameters, and the preset profiles standing in for the thesis' physical
// clusters. A Profile plus a process count yields a Machine — the
// ground-truth pairwise parameter matrices frozen for one placement — which
// is what hbsp.New and the sim, bsp and mpi run-times execute against.
package cluster

import (
	"hbsp/internal/memmodel"
	"hbsp/internal/platform"
	"hbsp/internal/topology"
)

// Profile is a complete synthetic platform description; Validate checks it
// for structural consistency (hbsp.New does so automatically).
type Profile = platform.Profile

// Machine is a profile instantiated for a process count: pairwise parameters
// frozen for one placement plus a deterministic noise stream. It satisfies
// sim.Machine and bsp.Machine.
type Machine = platform.Machine

// Link holds the communication parameters of one topological distance class.
type Link = platform.Link

// Topology is the node/socket/core structure of a platform.
type Topology = topology.Topology

// Placement maps ranks onto cores of a topology.
type Placement = topology.Placement

// PlacementPolicy selects how ranks are mapped onto cores.
type PlacementPolicy = topology.PlacementPolicy

// Placement policies.
const (
	RoundRobin = topology.RoundRobin
	Block      = topology.Block
)

// Distance classifies the topological distance between two placed ranks.
type Distance = topology.Distance

// Distance classes, from a process to itself out to the network and across
// switch groups.
const (
	DistanceSelf    = topology.DistanceSelf
	DistanceSocket  = topology.DistanceSocket
	DistanceNode    = topology.DistanceNode
	DistanceNetwork = topology.DistanceNetwork
	// DistanceGroup is communication between nodes of different switch
	// groups (fat-tree pods, dragonfly groups); it only occurs on topologies
	// with NodesPerGroup set.
	DistanceGroup = topology.DistanceGroup
)

// Core is a per-node core design; Hierarchy and Level describe its memory
// system, which the kernel rate model evaluates.
type (
	Core      = memmodel.Core
	Hierarchy = memmodel.Hierarchy
	Level     = memmodel.Level
)

// NewTopology builds a validated topology.
func NewTopology(nodes, socketsPerNode, coresPerSocket int) (Topology, error) {
	return topology.New(nodes, socketsPerNode, coresPerSocket)
}

// Xeon8x2x4 is the synthetic stand-in for the thesis' 8-node dual quad-core
// Xeon gigabit cluster (64 cores).
func Xeon8x2x4() *Profile { return platform.Xeon8x2x4() }

// XeonCluster scales the Xeon8x2x4 node design to an arbitrary node count.
func XeonCluster(nodes int) *Profile { return platform.XeonCluster(nodes) }

// XeonClusterMachine instantiates a noise-free machine with the requested
// rank count on the scaled Xeon cluster.
func XeonClusterMachine(procs int) (*Machine, error) { return platform.XeonClusterMachine(procs) }

// XeonClusterHomogeneousMachine is XeonClusterMachine with the per-pair
// heterogeneity spread and the noise model switched off: every pair at the
// same topological distance gets identical parameters, which is what lets the
// direct evaluator collapse rank-equivalence classes.
func XeonClusterHomogeneousMachine(procs int) (*Machine, error) {
	return platform.XeonClusterHomogeneousMachine(procs)
}

// FlatCluster is a one-core-per-node profile with N identical nodes: every
// pair of distinct ranks sits at network distance with identical parameters,
// the ideal symmetric platform for collapse-scaling studies.
func FlatCluster(nodes int) *Profile { return platform.FlatCluster(nodes) }

// FlatClusterMachine instantiates FlatCluster with one rank per node.
func FlatClusterMachine(procs int) (*Machine, error) { return platform.FlatClusterMachine(procs) }

// FatTreeCluster models a two-tier fat-tree of single-core nodes: pods of
// nodesPerPod nodes behind edge switches, with cross-pod traffic paying an
// extra core-switch hop (DistanceGroup link class). Collapse-eligible: zero
// heterogeneity spread and zero noise.
func FatTreeCluster(pods, nodesPerPod int) *Profile {
	return platform.FatTreeCluster(pods, nodesPerPod)
}

// DragonflyCluster models a dragonfly of single-core nodes: groups with
// all-to-all local links, cross-group traffic over long global links
// (DistanceGroup link class). Collapse-eligible like FatTreeCluster.
func DragonflyCluster(groups, nodesPerGroup int) *Profile {
	return platform.DragonflyCluster(groups, nodesPerGroup)
}

// Opteron12x2x6 is the synthetic stand-in for the 12-node dual hexa-core
// Opteron cluster (144 cores).
func Opteron12x2x6() *Profile { return platform.Opteron12x2x6() }

// Opteron10x2x6 is the 10-node Opteron configuration of the 115-process SSS
// clustering experiment.
func Opteron10x2x6() *Profile { return platform.Opteron10x2x6() }

// AthlonX2 is the single dual-core node used for the L1 BLAS measurements.
func AthlonX2() *Profile { return platform.AthlonX2() }

// HeteroDemo is a small cluster mixing two core designs, for exercising the
// heterogeneous-computation paths.
func HeteroDemo() *Profile { return platform.HeteroDemo() }

// Presets returns every built-in profile, keyed by name.
func Presets() map[string]*Profile { return platform.Presets() }

module hbsp

go 1.24

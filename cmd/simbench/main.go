// Command simbench is the machine-readable benchmark harness of the
// virtual-time simulator: it measures the point-to-point hot path (Send/Recv,
// untraced and with a trace recorder attached), the dissemination BSP
// synchronization and the total-exchange collective at
// P ∈ {16, 64, 256, 512} and writes ns/op, allocs/op and simulated messages/s
// to a JSON file (BENCH_simnet.json at the repository root is the tracked
// baseline — regenerate it with `go run ./cmd/simbench` after touching the
// simulator hot path and commit the diff, so the perf trajectory is visible
// across PRs).
//
// Usage:
//
//	go run ./cmd/simbench [-quick] [-out BENCH_simnet.json]
//
// -quick restricts the sweep to P ∈ {16, 64} with a single iteration per
// benchmark; CI uses it as a smoke test and uploads the JSON as an artifact.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/experiments"
	"hbsp/sim"
	"hbsp/trace"
)

// Entry is one benchmark point of the JSON baseline.
type Entry struct {
	Name           string  `json:"name"`
	Procs          int     `json:"procs"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	Iterations     int     `json:"iterations"`
}

// Baseline is the file format of BENCH_simnet.json.
type Baseline struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Quick     bool    `json:"quick"`
	Entries   []Entry `json:"entries"`
}

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "P ∈ {16,64} and one iteration per benchmark (CI smoke mode)")
	out := flag.String("out", "BENCH_simnet.json", "output JSON path")
	testing.Init()
	flag.Parse()
	if *quick {
		// One iteration per benchmark instead of the 1s default.
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			log.Fatalf("simbench: %v", err)
		}
	}

	sweep := []int{16, 64, 256, 512}
	if *quick {
		sweep = []int{16, 64}
	}

	var entries []Entry
	for _, p := range sweep {
		m := benchMachine(p)
		entries = append(entries,
			benchSendRecv(m),
			benchSendRecvTraced(m),
			benchSync(m),
			benchTotalExchange(m),
		)
		for _, e := range entries[len(entries)-4:] {
			fmt.Printf("%-16s P=%-4d %14.0f ns/op %10d allocs/op %14.0f msgs/s\n",
				e.Name, e.Procs, e.NsPerOp, e.AllocsPerOp, e.MessagesPerSec)
		}
	}

	base := Baseline{
		Schema:    "hbsp-simbench/v1",
		GoVersion: runtime.Version(),
		Quick:     *quick,
		Entries:   entries,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatalf("simbench: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("simbench: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchMachine instantiates the shared benchmark machine (see
// cluster.XeonClusterMachine — bench_test.go measures the same platform).
func benchMachine(procs int) *cluster.Machine {
	m, err := cluster.XeonClusterMachine(procs)
	if err != nil {
		log.Fatalf("simbench: machine for %d ranks: %v", procs, err)
	}
	return m
}

// entry converts a benchmark result plus the accumulated simulated message
// count into a baseline entry.
func entry(name string, procs int, r testing.BenchmarkResult, messages int64) Entry {
	e := Entry{
		Name:        name,
		Procs:       procs,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if secs := r.T.Seconds(); secs > 0 {
		e.MessagesPerSec = float64(messages) / secs
	}
	return e
}

// benchSendRecv measures the raw point-to-point path on the shared fixed
// workload (experiments.SendRecvRingProgram): every rank runs a ring of
// eager posts and blocking receives, the minimal program that exercises
// injection ports, mailbox delivery and matching.
func benchSendRecv(m *cluster.Machine) Entry {
	var messages atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// testing.Benchmark calls this closure several times while
		// calibrating b.N, but only the final round's duration is reported:
		// count only that round's messages.
		messages.Store(0)
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(context.Background(), m, experiments.SendRecvRingProgram, sim.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			messages.Add(res.Messages)
		}
	})
	return entry("send_recv", m.Procs(), r, messages.Load())
}

// benchSendRecvTraced is benchSendRecv with a trace recorder attached: the
// identical ring workload (the shared experiments.SendRecvRingProgram, so
// the traced/untraced comparison can never drift apart) paying one event
// append per send and wait. The recorder-off overhead is zero by
// construction (a nil test), which keeping send_recv itself in the baseline
// pins across PRs.
func benchSendRecvTraced(m *cluster.Machine) Entry {
	rec := trace.NewRecorder()
	o := sim.DefaultOptions()
	o.Recorder = rec
	var messages atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		messages.Store(0)
		for i := 0; i < b.N; i++ {
			res, err := sim.Run(context.Background(), m, experiments.SendRecvRingProgram, o)
			if err != nil {
				b.Fatal(err)
			}
			messages.Add(res.Messages)
		}
	})
	return entry("send_recv_traced", m.Procs(), r, messages.Load())
}

// benchSync measures the dissemination count exchange plus drain that ends
// every BSP superstep, on the same fixed workload every harness uses
// (experiments.SyncExchangeProgram).
func benchSync(m *cluster.Machine) Entry {
	var messages atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		messages.Store(0)
		for i := 0; i < b.N; i++ {
			res, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{}, experiments.SyncExchangeProgram)
			if err != nil {
				b.Fatal(err)
			}
			messages.Add(res.Messages)
		}
	})
	return entry("sync_dissemination", m.Procs(), r, messages.Load())
}

// benchTotalExchange measures the heaviest collective the schedule engine
// generates: P² payload-carrying messages per execution.
func benchTotalExchange(m *cluster.Machine) Entry {
	pat, err := collective.TotalExchange(m.Procs(), 64)
	if err != nil {
		log.Fatalf("simbench: total exchange for %d ranks: %v", m.Procs(), err)
	}
	var messages atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		messages.Store(0)
		for i := 0; i < b.N; i++ {
			if _, err := collective.Measure(m, pat, 1); err != nil {
				b.Fatal(err)
			}
			// Measure runs one warm-up execution plus one timed repetition.
			messages.Add(2 * int64(pat.Signals()))
		}
	})
	return entry("total_exchange", m.Procs(), r, messages.Load())
}

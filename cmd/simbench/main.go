// Command simbench is the machine-readable benchmark harness of the
// virtual-time simulator: it measures the point-to-point hot path (Send/Recv,
// untraced and with a trace recorder attached), the dissemination BSP
// synchronization and the total-exchange collective, and writes ns/op,
// allocs/op and simulated messages/s to a JSON file (BENCH_simnet.json at the
// repository root is the tracked baseline — regenerate it with
// `go run ./cmd/simbench` after touching the simulator hot path and commit
// the diff, so the perf trajectory is visible across PRs).
//
// Two engines are tracked side by side. The plain entries (send_recv,
// sync_dissemination, total_exchange, ...) force the concurrent engine —
// goroutines, mailboxes, channel wake-ups — at P ∈ {16, 64, 256, 512}; the
// *_de entries run the same workloads through the goroutine-free
// discrete-event evaluator at P ∈ {16, 64, 256, 512, 1024, 4096}, rank
// counts the concurrent engine cannot reach in CI time. The two engines
// produce bit-identical virtual times (pinned by the cross-engine golden
// tests), so every ns/op delta between a plain entry and its _de twin is
// pure execution-strategy speedup.
//
// The *_sym entries push further: on a flat homogeneous machine the direct
// evaluator collapses all ranks into one equivalence class and evaluates one
// representative rank per stage, so the dissemination count exchange and the
// streaming total exchange are measured at P ∈ {65536, 262144} (quick mode:
// one P=65536 smoke point), plus a P=1,048,576 count-exchange point in full
// mode. Collapse results are bit-identical to per-rank evaluation (pinned by
// the collapse golden tests).
//
// Usage:
//
//	go run ./cmd/simbench [-quick] [-out BENCH_simnet.json] [-diff BENCH_simnet.json] [-tol 0.10]
//
// -quick restricts the sweep to P ∈ {16, 64} with a single iteration per
// benchmark (after one untimed warm-up, so pools and caches are hot); CI uses
// it as a smoke test. -diff compares the allocs/op of every measured entry
// against the committed baseline and exits non-zero when one regresses by
// more than -tol (allocs/op is the stable cross-PR metric; ns/op depends on
// the host).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"testing"

	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/experiments"
	"hbsp/fault"
	"hbsp/sched"
	"hbsp/sim"
	"hbsp/trace"
)

// Entry is one benchmark point of the JSON baseline.
type Entry struct {
	Name           string  `json:"name"`
	Procs          int     `json:"procs"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	MessagesPerSec float64 `json:"messages_per_sec"`
	Iterations     int     `json:"iterations"`
}

// Baseline is the file format of BENCH_simnet.json.
type Baseline struct {
	Schema    string  `json:"schema"`
	GoVersion string  `json:"go_version"`
	Quick     bool    `json:"quick"`
	Entries   []Entry `json:"entries"`
}

// concurrentOpts forces the per-message concurrent engine, the "before"
// column of the two-engine baseline.
func concurrentOpts() sim.Options {
	o := sim.DefaultOptions()
	o.Engine = sim.EngineConcurrent
	return o
}

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "P ∈ {16,64} and one iteration per benchmark (CI smoke mode)")
	out := flag.String("out", "BENCH_simnet.json", "output JSON path")
	diff := flag.String("diff", "", "baseline JSON to compare allocs/op against (CI regression gate)")
	tol := flag.Float64("tol", 0.10, "relative allocs/op tolerance for -diff")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the whole sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the sweep) to this file")
	testing.Init()
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("simbench: -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("simbench: -cpuprofile: %v", err)
		}
	}
	if *quick {
		// One iteration per benchmark instead of the 1s default.
		if err := flag.Set("test.benchtime", "1x"); err != nil {
			log.Fatalf("simbench: %v", err)
		}
	}

	sweep := []int{16, 64, 256, 512}
	deSweep := []int{16, 64, 256, 512, 1024, 4096}
	if *quick {
		sweep = []int{16, 64}
		deSweep = []int{16, 64}
	}

	var entries []Entry
	emit := func(e Entry) {
		entries = append(entries, e)
		fmt.Printf("%-22s P=%-5d %14.0f ns/op %10d allocs/op %14.0f msgs/s\n",
			e.Name, e.Procs, e.NsPerOp, e.AllocsPerOp, e.MessagesPerSec)
	}
	for _, p := range sweep {
		m := benchMachine(p)
		emit(benchSendRecv(m, *quick))
		emit(benchSendRecvTraced(m, *quick))
		emit(benchSendRecvSpill(m, *quick))
		emit(benchSync(m, *quick))
		emit(benchTotalExchange(m, *quick))
	}
	for _, p := range deSweep {
		m := benchMachine(p)
		emit(benchSyncDE(m, *quick))
		emit(benchSyncFault(m, *quick))
		emit(benchTotalExchangeDE(m, *quick))
		emit(benchSweepBytesDE(m, *quick))
		emit(benchSweepScaleDE(p, *quick))
	}
	symSweep := []int{65536, 262144}
	if *quick {
		symSweep = []int{65536}
	}
	for _, p := range symSweep {
		m := symMachine(p)
		emit(benchSyncSym(m, *quick))
		emit(benchTotalExchangeSym(m, *quick))
		emit(benchSweepBytesSym(m, *quick))
	}
	if !*quick {
		// The headline scaling point: one superstep count exchange at a
		// million ranks, feasible only because the collapse evaluates a
		// single representative rank per stage.
		emit(benchSyncSym(symMachine(1<<20), *quick))
	}

	base := Baseline{
		Schema:    "hbsp-simbench/v1",
		GoVersion: runtime.Version(),
		Quick:     *quick,
		Entries:   entries,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		log.Fatalf("simbench: %v", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("simbench: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("simbench: -memprofile: %v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("simbench: -memprofile: %v", err)
		}
		f.Close()
	}

	if *diff != "" {
		if err := diffAllocs(*diff, entries, *tol); err != nil {
			log.Fatalf("simbench: %v", err)
		}
	}
}

// diffAllocs compares the measured allocs/op against the committed baseline
// and fails on regressions beyond the tolerance. Entries missing on either
// side are skipped (the quick sweep is a subset of the full baseline);
// improvements beyond the tolerance are reported as a reminder to regenerate
// the baseline, but do not fail.
func diffAllocs(path string, entries []Entry, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	type key struct {
		name  string
		procs int
	}
	committed := map[key]Entry{}
	for _, e := range base.Entries {
		committed[key{e.Name, e.Procs}] = e
	}
	failed := false
	for _, e := range entries {
		b, ok := committed[key{e.Name, e.Procs}]
		if !ok {
			continue
		}
		slack := float64(b.AllocsPerOp) * tol
		if slack < 16 {
			slack = 16 // absolute floor so tiny counts don't flap
		}
		delta := float64(e.AllocsPerOp - b.AllocsPerOp)
		switch {
		case delta > slack:
			fmt.Printf("REGRESSION %-22s P=%-5d allocs/op %d -> %d (+%.1f%%, tolerance %.0f%%)\n",
				e.Name, e.Procs, b.AllocsPerOp, e.AllocsPerOp, 100*delta/float64(b.AllocsPerOp), 100*tol)
			failed = true
		case -delta > slack:
			fmt.Printf("improved   %-22s P=%-5d allocs/op %d -> %d (regenerate the baseline)\n",
				e.Name, e.Procs, b.AllocsPerOp, e.AllocsPerOp)
		}
	}
	if failed {
		return fmt.Errorf("allocs/op regressed against %s", path)
	}
	fmt.Printf("allocs/op within ±%.0f%% of %s\n", 100*tol, path)
	return nil
}

// benchMachine instantiates the shared benchmark machine (see
// cluster.XeonClusterMachine — bench_test.go measures the same platform).
func benchMachine(procs int) *cluster.Machine {
	m, err := cluster.XeonClusterMachine(procs)
	if err != nil {
		log.Fatalf("simbench: machine for %d ranks: %v", procs, err)
	}
	return m
}

// symMachine instantiates the flat homogeneous machine of the *_sym entries:
// one rank per node, every pair identical, so the direct evaluator collapses
// all ranks into one equivalence class (the Xeon benchmark machine carries a
// per-pair heterogeneity spread and stays on the per-rank path).
func symMachine(procs int) *cluster.Machine {
	m, err := cluster.FlatClusterMachine(procs)
	if err != nil {
		log.Fatalf("simbench: flat machine for %d ranks: %v", procs, err)
	}
	return m
}

// entry converts a benchmark result plus the accumulated simulated message
// count into a baseline entry.
func entry(name string, procs int, r testing.BenchmarkResult, messages int64) Entry {
	e := Entry{
		Name:        name,
		Procs:       procs,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if secs := r.T.Seconds(); secs > 0 {
		e.MessagesPerSec = float64(messages) / secs
	}
	return e
}

// run measures one op under the benchmark harness. In quick mode (one
// iteration) the op runs once untimed first, so pools, caches and compiled
// schedules are warm and allocs/op reflects the steady state the committed
// full-sweep baseline records.
func run(name string, procs int, quick bool, op func() (messages int64, err error)) Entry {
	if quick {
		if _, err := op(); err != nil {
			log.Fatalf("simbench: %s warm-up: %v", name, err)
		}
	}
	var messages atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		// testing.Benchmark calls this closure several times while
		// calibrating b.N, but only the final round's duration is reported:
		// count only that round's messages.
		messages.Store(0)
		for i := 0; i < b.N; i++ {
			n, err := op()
			if err != nil {
				b.Fatal(err)
			}
			messages.Add(n)
		}
	})
	return entry(name, procs, r, messages.Load())
}

// benchSendRecv measures the raw point-to-point path on the shared fixed
// workload (experiments.SendRecvRingProgram): every rank runs a ring of
// eager posts and blocking receives, the minimal program that exercises
// injection ports, mailbox delivery and matching.
func benchSendRecv(m *cluster.Machine, quick bool) Entry {
	return run("send_recv", m.Procs(), quick, func() (int64, error) {
		res, err := sim.Run(context.Background(), m, experiments.SendRecvRingProgram, concurrentOpts())
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSendRecvTraced is benchSendRecv with a trace recorder attached: the
// identical ring workload (the shared experiments.SendRecvRingProgram, so
// the traced/untraced comparison can never drift apart) paying one event
// append per send and wait. The recorder's lanes are pooled across runs, so
// steady state re-records into already-sized blocks.
func benchSendRecvTraced(m *cluster.Machine, quick bool) Entry {
	rec := trace.NewRecorder()
	o := concurrentOpts()
	o.Recorder = rec
	return run("send_recv_traced", m.Procs(), quick, func() (int64, error) {
		res, err := sim.Run(context.Background(), m, experiments.SendRecvRingProgram, o)
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSendRecvSpill is benchSendRecvTraced with the recorder streaming
// full column chunks to a discarding writer instead of retaining lanes in
// RAM — the spill-backed recording mode that carries traced P=65536 runs.
// The delta against send_recv_traced is the pure encode-and-flush cost.
func benchSendRecvSpill(m *cluster.Machine, quick bool) Entry {
	rec := trace.NewRecorder()
	o := concurrentOpts()
	o.Recorder = rec
	return run("send_recv_spill", m.Procs(), quick, func() (int64, error) {
		rec.SpillTo(io.Discard, trace.SpillOptions{})
		res, err := sim.Run(context.Background(), m, experiments.SendRecvRingProgram, o)
		if err != nil {
			return 0, err
		}
		if err := rec.SpillErr(); err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSync measures the dissemination count exchange plus drain that ends
// every BSP superstep, on the same fixed workload every harness uses
// (experiments.SyncExchangeProgram), with the concurrent engine forced.
func benchSync(m *cluster.Machine, quick bool) Entry {
	o := concurrentOpts()
	return run("sync_dissemination", m.Procs(), quick, func() (int64, error) {
		res, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{Options: &o}, experiments.SyncExchangeProgram)
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSyncDE is benchSync on the default engine: the count exchange is
// evaluated at the run's gate by the discrete-event evaluator, the drain and
// the user program stay on their rank goroutines.
func benchSyncDE(m *cluster.Machine, quick bool) Entry {
	return run("sync_dissemination_de", m.Procs(), quick, func() (int64, error) {
		res, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{}, experiments.SyncExchangeProgram)
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSyncFault is benchSyncDE with a fault plan attached — one persistent
// straggler plus a windowed wildcard link degradation — tracking the cost of
// the fault-injection hot path. The fault-free entries (sync_dissemination,
// sync_dissemination_de) double as the control: a plan-less run costs the
// engines a single nil pointer test, so their allocs/op must not move when
// the fault subsystem changes.
func benchSyncFault(m *cluster.Machine, quick bool) Entry {
	o := sim.DefaultOptions()
	o.Faults = &fault.Plan{
		Slowdowns: []fault.Slowdown{{Rank: 0, Factor: 1.5}},
		Links:     []fault.LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2, Start: 0, End: 1e-3}},
	}
	return run("sync_dissemination_fault", m.Procs(), quick, func() (int64, error) {
		res, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{Options: &o}, experiments.SyncExchangeProgram)
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchTotalExchange measures the heaviest collective the schedule engine
// generates — P² payload-carrying messages per execution — with the
// concurrent engine forced (Measure runs one warm-up plus one timed
// repetition).
func benchTotalExchange(m *cluster.Machine, quick bool) Entry {
	pat, err := collective.TotalExchange(m.Procs(), 64)
	if err != nil {
		log.Fatalf("simbench: total exchange for %d ranks: %v", m.Procs(), err)
	}
	o := concurrentOpts()
	return run("total_exchange", m.Procs(), quick, func() (int64, error) {
		if _, err := collective.MeasureWith(m, pat, 1, o); err != nil {
			return 0, err
		}
		return 2 * int64(pat.Signals()), nil
	})
}

// benchTotalExchangeDE measures the same workload — warm-up plus one timed
// execution of the linear-shift total exchange — evaluated with zero
// goroutines by sched.RunSchedule over the streaming schedule, whose O(P)
// stage generation is what makes the P=1024 and P=4096 points of the sweep
// representable at all.
func benchTotalExchangeDE(m *cluster.Machine, quick bool) Entry {
	p := m.Procs()
	stream, err := collective.StreamTotalExchange(p, 64)
	if err != nil {
		log.Fatalf("simbench: streaming total exchange for %d ranks: %v", p, err)
	}
	return run("total_exchange_de", p, quick, func() (int64, error) {
		res, err := sched.RunSchedule(context.Background(), m, stream, 2, sim.DefaultOptions())
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchSyncSym measures one superstep count exchange evaluated through the
// symmetry collapse: the dissemination exchange schedule (the exact op-stream
// Sync evaluates, payload sizes included) on a flat homogeneous machine,
// where every rank is equivalent and each of the ⌈log2 P⌉ stages costs O(1)
// evaluation work plus the O(P) result replication.
func benchSyncSym(m *cluster.Machine, quick bool) Entry {
	p := m.Procs()
	s, err := bsp.ExchangeSchedule(p)
	if err != nil {
		log.Fatalf("simbench: exchange schedule for %d ranks: %v", p, err)
	}
	return run("sync_dissemination_sym", p, quick, func() (int64, error) {
		res, err := sched.RunSchedule(context.Background(), m, s, 1, sim.DefaultOptions())
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// benchTotalExchangeSym measures one execution of the streaming linear-shift
// total exchange through the symmetry collapse: P−1 circulant stages, each
// evaluated at a single representative rank.
func benchTotalExchangeSym(m *cluster.Machine, quick bool) Entry {
	p := m.Procs()
	stream, err := collective.StreamTotalExchange(p, 64)
	if err != nil {
		log.Fatalf("simbench: streaming total exchange for %d ranks: %v", p, err)
	}
	return run("total_exchange_sym", p, quick, func() (int64, error) {
		res, err := sched.RunSchedule(context.Background(), m, stream, 1, sim.DefaultOptions())
		if err != nil {
			return 0, err
		}
		return res.Messages, nil
	})
}

// sweepEvalOptions mirrors RunSchedule's conventions (acks on, empty stages
// pay a compute draw, default deadline), so every point of the sweep entries
// is bit-identical to an independent sched.RunSchedule call — the contract
// the cross-engine sweep goldens pin.
func sweepEvalOptions() sched.SweepOptions {
	o := sim.DefaultOptions()
	return sched.SweepOptions{
		AckSends:         o.AckSends,
		SymmetryCollapse: o.SymmetryCollapse,
		ComputeEmpty:     true,
		Deadline:         o.Deadline,
	}
}

// sweepPoints is the point count of the sweep entries: the 64-point sweeps
// the incremental evaluator targets, cut down in quick mode.
func sweepPoints(quick bool) int {
	if quick {
		return 8
	}
	return 64
}

// perPoint renormalizes a whole-sweep measurement to per-point figures, the
// unit the sweep_* entries report so they compare directly against the
// single-point entries (total_exchange_de evaluates one point per op).
func perPoint(e Entry, points int) Entry {
	e.NsPerOp /= float64(points)
	e.AllocsPerOp /= int64(points)
	e.BytesPerOp /= int64(points)
	return e
}

// benchSweepBytesDE measures a bytes-axis sweep — sweepPoints distinct
// total-exchange payloads at one rank count — through a single reused
// sched.SweepEvaluator on the heterogeneous Xeon machine. After the first
// point the evaluator re-prices the message terms of its memoized circulant
// term tape instead of re-simulating every edge, so the per-point ns/op
// against total_exchange_de (one independent evaluation per op) is the
// incremental-reuse speedup the sweep paths ship.
func benchSweepBytesDE(m *cluster.Machine, quick bool) Entry {
	p := m.Procs()
	points := sweepPoints(quick)
	payloads := make([]int, points)
	for i := range payloads {
		payloads[i] = 16 * (i + 1)
	}
	sw, err := sched.NewSweepEvaluator(m, sweepEvalOptions())
	if err != nil {
		log.Fatalf("simbench: sweep evaluator for %d ranks: %v", p, err)
	}
	defer sw.Release()
	e := run("sweep_bytes_de", p, quick, func() (int64, error) {
		var msgs int64
		for _, pl := range payloads {
			s, err := collective.StreamTotalExchange(p, pl)
			if err != nil {
				return 0, err
			}
			res, err := sw.Run(context.Background(), m, s, 1)
			if err != nil {
				return 0, err
			}
			msgs += res.Messages
		}
		return msgs, nil
	})
	return perPoint(e, points)
}

// benchSweepScaleDE measures a LogGP-scale sweep: sweepPoints points cycling
// through eight uniform link scalings of the Xeon profile, evaluated on one
// reused SweepEvaluator at a fixed payload. Every point re-prices the full
// term tape (a uniform scaling touches every stage), so this entry tracks the
// dirty-stage re-pricing cost, where sweep_bytes_de tracks the cheaper
// message-term path.
func benchSweepScaleDE(procs int, quick bool) Entry {
	points := sweepPoints(quick)
	factors := [...]float64{1, 1.25, 1.5, 2, 0.75, 0.5, 3, 1.1}
	nodes := (procs + 7) / 8
	if nodes < 1 {
		nodes = 1
	}
	prof := cluster.XeonCluster(nodes)
	prof.NoiseRel = 0 // the shared benchmark machine is noise-free
	base, err := prof.Machine(procs)
	if err != nil {
		log.Fatalf("simbench: machine for %d ranks: %v", procs, err)
	}
	machines := make([]*cluster.Machine, len(factors))
	for i, f := range factors {
		machines[i], err = prof.Scaled(f, f, f, f).Machine(procs)
		if err != nil {
			log.Fatalf("simbench: scaled machine for %d ranks: %v", procs, err)
		}
	}
	stream, err := collective.StreamTotalExchange(procs, 64)
	if err != nil {
		log.Fatalf("simbench: streaming total exchange for %d ranks: %v", procs, err)
	}
	sw, err := sched.NewSweepEvaluator(base, sweepEvalOptions())
	if err != nil {
		log.Fatalf("simbench: sweep evaluator for %d ranks: %v", procs, err)
	}
	defer sw.Release()
	e := run("sweep_scale_de", procs, quick, func() (int64, error) {
		var msgs int64
		for i := 0; i < points; i++ {
			res, err := sw.Run(context.Background(), machines[i%len(factors)], stream, 1)
			if err != nil {
				return 0, err
			}
			msgs += res.Messages
		}
		return msgs, nil
	})
	return perPoint(e, points)
}

// benchSweepBytesSym is the bytes-axis sweep on the flat homogeneous machine:
// the symmetry collapse evaluates one representative rank per circulant stage
// and the sweep evaluator replays its collapsed term tape across payloads, so
// the per-point cost at P=65536+ is dominated by the O(P) result replication.
func benchSweepBytesSym(m *cluster.Machine, quick bool) Entry {
	p := m.Procs()
	points := sweepPoints(quick)
	payloads := make([]int, points)
	for i := range payloads {
		payloads[i] = 16 * (i + 1)
	}
	sw, err := sched.NewSweepEvaluator(m, sweepEvalOptions())
	if err != nil {
		log.Fatalf("simbench: sweep evaluator for %d ranks: %v", p, err)
	}
	defer sw.Release()
	e := run("sweep_bytes_sym", p, quick, func() (int64, error) {
		var msgs int64
		for _, pl := range payloads {
			s, err := collective.StreamTotalExchange(p, pl)
			if err != nil {
				return 0, err
			}
			res, err := sw.Run(context.Background(), m, s, 1)
			if err != nil {
				return 0, err
			}
			msgs += res.Messages
		}
		return msgs, nil
	})
	return perPoint(e, points)
}

// Command adaptbarrier regenerates Case Study I (Chapter 7): the SSS
// clustering outputs of Tables 7.1/7.2 and the adapted-vs-default barrier
// comparisons of Figs. 7.4–7.7.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "run the full sweep instead of the quick one")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}

	// Tables 7.1 and 7.2.
	for _, tc := range []struct {
		prof  *cluster.Profile
		procs int
		title string
	}{
		{cluster.Xeon8x2x4(), 60, "Table 7.1: 60-process SSS clustering on the 8x2x4 configuration"},
		{cluster.Opteron10x2x6(), 115, "Table 7.2: 115-process SSS clustering on the 10x2x6 configuration"},
	} {
		res, err := experiments.Table7_1(tc.prof, tc.procs)
		if err != nil {
			log.Fatalf("adaptbarrier: %v", err)
		}
		tbl := &experiments.Table{Title: tc.title, Columns: []string{"platform", "processes", "subsets", "sizes", "threshold [s]"}}
		tbl.AddRow(res.Platform, fmt.Sprintf("%d", res.Procs), fmt.Sprintf("%d", res.Subsets),
			fmt.Sprintf("%v", res.Sizes), fmt.Sprintf("%.3e", res.Threshold))
		fmt.Print(tbl.String())
		fmt.Println()
	}

	// Figs. 7.4–7.7.
	for _, tc := range []struct {
		prof  *cluster.Profile
		max   int
		title string
	}{
		{cluster.Xeon8x2x4(), opts.MaxProcsXeon, "Figs 7.4/7.6: adapted barrier vs defaults on the 8x2x4 cluster"},
		{cluster.Opteron12x2x6(), opts.MaxProcsOpteron, "Figs 7.5/7.7: adapted barrier vs defaults on the 12x2x6 cluster"},
	} {
		points, err := experiments.Fig7_4Series(tc.prof, tc.max, opts)
		if err != nil {
			log.Fatalf("adaptbarrier: %v", err)
		}
		tbl := &experiments.Table{Title: tc.title,
			Columns: []string{"P", "best pattern", "adapted [s]", "predicted [s]", "dissemination [s]", "tree [s]", "linear [s]"}}
		for _, p := range points {
			tbl.AddRow(fmt.Sprintf("%d", p.Procs), p.BestName, fmt.Sprintf("%.3e", p.Adapted), fmt.Sprintf("%.3e", p.Predicted),
				fmt.Sprintf("%.3e", p.Dissemination), fmt.Sprintf("%.3e", p.Tree), fmt.Sprintf("%.3e", p.Linear))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}

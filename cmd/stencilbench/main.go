// Command stencilbench regenerates Case Study II (Chapter 8): the
// experimental configuration and wall-time tables (Tables 8.1/8.2), the
// strong-scaling A-series (Figs. 8.4–8.7), the prediction-vs-measurement
// B-series (Figs. 8.10–8.15), and the overlap adaptation sweep (Fig. 8.18).
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "run the full sweep instead of the quick one")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	prof := cluster.Xeon8x2x4()

	fmt.Print(experiments.Table8_1Table(experiments.Table8_1(opts)).String())
	fmt.Println()

	wall, err := experiments.Table8_2(prof, opts)
	if err != nil {
		log.Fatalf("stencilbench: %v", err)
	}
	tbl := &experiments.Table{Title: "Table 8.2: MPI and MPI+R wall times (large problem)",
		Columns: []string{"P", "MPI [s]", "MPI+R [s]", "speedup"}}
	for _, w := range wall {
		tbl.AddRow(fmt.Sprintf("%d", w.Procs), fmt.Sprintf("%.3e", w.MPI), fmt.Sprintf("%.3e", w.MPIR), fmt.Sprintf("%.2fx", w.Speedup))
	}
	fmt.Print(tbl.String())
	fmt.Println()

	series := []struct {
		title string
		n     int
		impls []string
	}{
		{"Fig 8.4 (A1): all implementations, large problem", opts.StencilLargeN, nil},
		{"Fig 8.5 (A2): BSP implementations only, large problem", opts.StencilLargeN, []string{"bsp", "bsp-serial"}},
		{"Fig 8.6 (A3): selected implementations, large problem", opts.StencilLargeN, []string{"bsp", "mpi+r", "hybrid"}},
		{"Fig 8.7 (A4): selected implementations, small problem", opts.StencilSmallN, []string{"bsp", "mpi+r", "hybrid"}},
	}
	for _, s := range series {
		points, err := experiments.Fig8_4Series(prof, s.n, s.impls, opts)
		if err != nil {
			log.Fatalf("stencilbench: %v", err)
		}
		tbl := &experiments.Table{Title: s.title, Columns: []string{"implementation", "P", "time/iteration [s]"}}
		for _, p := range points {
			tbl.AddRow(p.Implementation, fmt.Sprintf("%d", p.Procs), fmt.Sprintf("%.3e", p.PerIteration))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}

	preds, err := experiments.Fig8_10Series(prof, opts)
	if err != nil {
		log.Fatalf("stencilbench: %v", err)
	}
	tbl = &experiments.Table{Title: "Figs 8.10-8.15 (B1-B6): prediction vs measurement",
		Columns: []string{"problem", "variant", "P", "predicted [s]", "measured [s]", "rel err"}}
	for _, p := range preds {
		tbl.AddRow(p.Problem, p.Variant, fmt.Sprintf("%d", p.Procs), fmt.Sprintf("%.3e", p.Predicted),
			fmt.Sprintf("%.3e", p.Measured), fmt.Sprintf("%.1f%%", 100*p.RelError))
	}
	fmt.Print(tbl.String())
	fmt.Println()

	procs := 16
	if opts.MaxProcsXeon < procs {
		procs = opts.MaxProcsXeon
	}
	sweep, err := experiments.Fig8_18Series(prof, procs, opts)
	if err != nil {
		log.Fatalf("stencilbench: %v", err)
	}
	tbl = &experiments.Table{Title: fmt.Sprintf("Fig 8.18 (C1): overlap adaptation sweep (P=%d)", procs),
		Columns: []string{"overlap fraction", "predicted [s]", "measured [s]"}}
	for _, p := range sweep {
		tbl.AddRow(fmt.Sprintf("%.2f", p.Fraction), fmt.Sprintf("%.3e", p.Predicted), fmt.Sprintf("%.3e", p.Measured))
	}
	fmt.Print(tbl.String())
}

// Command barrierbench regenerates the Chapter 5 and Chapter 6 barrier
// figures: measured vs. predicted barrier cost with absolute and relative
// errors on both cluster profiles (Figs. 5.6–5.13), and the payload-extended
// synchronization estimate (Figs. 6.3/6.4).
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		full     = flag.Bool("full", false, "run the full sweep instead of the quick one")
		platName = flag.String("platform", "both", "platform: xeon, opteron or both")
	)
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}

	type target struct {
		prof *cluster.Profile
		max  int
		figA string
		figB string
	}
	var targets []target
	if *platName == "xeon" || *platName == "both" {
		targets = append(targets, target{cluster.Xeon8x2x4(), opts.MaxProcsXeon,
			"Figs 5.6-5.9: barrier cost on the 8-way 2x4-core cluster", "Fig 6.3: BSP sync on the 8x2x4 cluster"})
	}
	if *platName == "opteron" || *platName == "both" {
		targets = append(targets, target{cluster.Opteron12x2x6(), opts.MaxProcsOpteron,
			"Figs 5.10-5.13: barrier cost on the 12-way 2x6-core cluster", "Fig 6.4: BSP sync on the 12x2x6 cluster"})
	}
	if len(targets) == 0 {
		log.Fatalf("barrierbench: unknown platform %q", *platName)
	}

	for _, tg := range targets {
		points, err := experiments.Fig5_6Series(tg.prof, tg.max, opts)
		if err != nil {
			log.Fatalf("barrierbench: %v", err)
		}
		fmt.Print(experiments.BarrierTable(tg.figA, points).String())
		fmt.Println()

		sync, err := experiments.Fig6_3Series(tg.prof, tg.max, opts)
		if err != nil {
			log.Fatalf("barrierbench: %v", err)
		}
		tbl := &experiments.Table{Title: tg.figB, Columns: []string{"P", "measured [s]", "estimate [s]", "rel err"}}
		for _, p := range sync {
			tbl.AddRow(fmt.Sprintf("%d", p.Procs), fmt.Sprintf("%.3e", p.Measured), fmt.Sprintf("%.3e", p.Predicted),
				fmt.Sprintf("%.1f%%", 100*p.RelError))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}

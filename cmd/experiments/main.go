// Command experiments regenerates every table and figure of the evaluation in
// one run. Use -full for the complete sweeps (minutes) or the default quick
// mode for a fast sanity pass (tens of seconds).
package main

import (
	"flag"
	"log"
	"os"

	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "run the full sweeps instead of the quick ones")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	if err := experiments.RunAll(os.Stdout, opts); err != nil {
		log.Fatalf("experiments: %v", err)
	}
}

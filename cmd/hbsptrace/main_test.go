package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hbsp/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden diffs got against testdata/name, rewriting under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/hbsptrace -run %s -update`): %v", t.Name(), err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("output diverged from %s — inspect the diff and, if the change is intended, regenerate with -update", path)
	}
}

// TestReportGolden pins the acceptance workload: the P=64 dissemination-sync
// report for a fixed seed, including the "(== makespan)" critical-path
// confirmation (writeReport additionally asserts the equality bit-for-bit).
func TestReportGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 64, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeReport(&buf, tr, 24, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(== makespan)")) {
		t.Fatalf("report does not confirm the critical path reaches the makespan:\n%s", buf.String())
	}
	golden(t, "report_dissemination-sync_p64_seed7.golden", buf.Bytes())
}

// TestEventStreamGolden pins the merged event stream of a smaller instance
// of the same workload, the byte-exact determinism contract of the recorder.
func TestEventStreamGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden(t, "events_dissemination-sync_p16_seed7.golden", buf.Bytes())
}

// TestChromeGolden pins the Chrome export of the small instance and checks
// it parses as JSON (the loadability smoke for chrome://tracing/Perfetto).
func TestChromeGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	golden(t, "chrome_dissemination-sync_p16_seed7.golden", buf.Bytes())
}

// TestEveryWorkloadCriticalPath runs each named workload at a modest size
// and checks the subsystem invariant on all of them: the extracted critical
// path ends exactly at the virtual makespan.
func TestEveryWorkloadCriticalPath(t *testing.T) {
	for name := range workloads {
		t.Run(name, func(t *testing.T) {
			tr, err := record(config{workload: name, procs: 16, seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			cp := tr.CriticalPath()
			if cp.End != tr.MakeSpan {
				t.Fatalf("critical path end %v != makespan %v", cp.End, tr.MakeSpan)
			}
			if tr.Meta.Seed != 3 || !tr.Meta.SeedKnown {
				t.Fatalf("trace not labeled with the run seed: %+v", tr.Meta)
			}
		})
	}
}

// TestRecordRejectsUnknownWorkload covers the CLI error path.
func TestRecordRejectsUnknownWorkload(t *testing.T) {
	if _, err := record(config{workload: "no-such", procs: 4, seed: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := record(config{workload: "dissemination-sync", procs: 1, seed: 1}); err == nil {
		t.Fatal("single-rank workload accepted")
	}
}

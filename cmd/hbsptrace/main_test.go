package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hbsp/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden diffs got against testdata/name, rewriting under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./cmd/hbsptrace -run %s -update`): %v", t.Name(), err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("output diverged from %s — inspect the diff and, if the change is intended, regenerate with -update", path)
	}
}

// TestReportGolden pins the acceptance workload: the P=64 dissemination-sync
// report for a fixed seed, including the "(== makespan)" critical-path
// confirmation (writeReport additionally asserts the equality bit-for-bit).
func TestReportGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 64, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeReport(&buf, tr, 24, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(== makespan)")) {
		t.Fatalf("report does not confirm the critical path reaches the makespan:\n%s", buf.String())
	}
	golden(t, "report_dissemination-sync_p64_seed7.golden", buf.Bytes())
}

// TestEventStreamGolden pins the merged event stream of a smaller instance
// of the same workload, the byte-exact determinism contract of the recorder.
func TestEventStreamGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden(t, "events_dissemination-sync_p16_seed7.golden", buf.Bytes())
}

// TestChromeGolden pins the Chrome export of the small instance and checks
// it parses as JSON (the loadability smoke for chrome://tracing/Perfetto).
func TestChromeGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	golden(t, "chrome_dissemination-sync_p16_seed7.golden", buf.Bytes())
}

// TestSpillGolden pins the canonical binary spill serialization of the small
// instance — the byte-determinism contract of the spill format — and checks
// the full round trip: reopening the bytes yields a Source whose re-spill is
// identical and whose report matches the in-RAM trace's byte for byte.
func TestSpillGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteSpill(&buf, tr); err != nil {
		t.Fatal(err)
	}
	golden(t, "spill_dissemination-sync_p16_seed7.golden", buf.Bytes())

	sp, err := trace.OpenSpill(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("reopening the spill: %v", err)
	}
	var again bytes.Buffer
	if err := trace.WriteSpill(&again, sp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-serializing the reopened spill changed the bytes")
	}
	var fromRAM, fromSpill bytes.Buffer
	if err := writeReport(&fromRAM, tr, 24, 0); err != nil {
		t.Fatal(err)
	}
	if err := writeReport(&fromSpill, sp, 24, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromRAM.Bytes(), fromSpill.Bytes()) {
		t.Fatal("report from the spill file differs from the in-RAM report")
	}
}

// TestRollupGolden pins the aggregated rollup rendering of the small
// instance (the bounded-size view -rollup prints for huge traces).
func TestRollupGolden(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r, err := trace.RollupOf(tr, trace.RollupOptions{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteRollup(&buf, r); err != nil {
		t.Fatal(err)
	}
	golden(t, "rollup_dissemination-sync_p16_seed7.golden", buf.Bytes())
}

// TestChromeFullRefusesOverBudget covers the guard against multi-GB Chrome
// JSON: -chrome-full over the event budget errors (pointing at -rollup and
// the sampled default) instead of writing the file, and raising the budget
// to 0 overrides.
func TestChromeFullRefusesOverBudget(t *testing.T) {
	tr, err := record(config{workload: "dissemination-sync", procs: 16, seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	err = exportChrome(path, tr, true, 10)
	if err == nil {
		t.Fatal("over-budget full export was not refused")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("-rollup")) {
		t.Fatalf("refusal does not point at the alternatives: %v", err)
	}
	if _, statErr := os.Stat(path); statErr == nil {
		t.Fatal("refused export still wrote the file")
	}
	if err := exportChrome(path, tr, true, 0); err != nil {
		t.Fatalf("budget 0 (unlimited) should force the export: %v", err)
	}
}

// TestEveryWorkloadCriticalPath runs each named workload at a modest size
// and checks the subsystem invariant on all of them: the extracted critical
// path ends exactly at the virtual makespan.
func TestEveryWorkloadCriticalPath(t *testing.T) {
	for name := range workloads {
		t.Run(name, func(t *testing.T) {
			tr, err := record(config{workload: name, procs: 16, seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			cp := tr.CriticalPath()
			if cp.End != tr.MakeSpan {
				t.Fatalf("critical path end %v != makespan %v", cp.End, tr.MakeSpan)
			}
			if tr.Meta.Seed != 3 || !tr.Meta.SeedKnown {
				t.Fatalf("trace not labeled with the run seed: %+v", tr.Meta)
			}
		})
	}
}

// TestRecordRejectsUnknownWorkload covers the CLI error path.
func TestRecordRejectsUnknownWorkload(t *testing.T) {
	if _, err := record(config{workload: "no-such", procs: 4, seed: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := record(config{workload: "dissemination-sync", procs: 1, seed: 1}); err == nil {
		t.Fatal("single-rank workload accepted")
	}
}

// Command hbsptrace runs a named workload under the trace recorder and
// prints what the trace subsystem learned: the per-category time breakdown,
// per-superstep straggler attribution, h-relation statistics and the
// critical path whose end time equals the run's virtual makespan
// bit-for-bit. With -chrome it additionally exports the event timeline as
// Chrome trace-event JSON, loadable in chrome://tracing or Perfetto
// (ui.perfetto.dev → "Open trace file"); traces over the event budget are
// lane-sampled automatically, and -chrome-full forces the full export (which
// is refused over budget unless -chrome-budget raises or disables it — use
// -rollup for a bounded aggregated view instead).
//
// Usage:
//
//	go run ./cmd/hbsptrace [-workload name] [-p procs] [-seed n]
//	                       [-chrome out.json] [-chrome-full] [-chrome-budget n]
//	                       [-events] [-rollup] [-topk n] [-hops n] [-steps n]
//	                       [-spill out.bin] [-from-spill in.bin]
//
// -spill serializes the trace to the compact binary spill format (the
// canonical byte layout: identical content yields identical bytes), and
// -from-spill analyzes a previously written spill file instead of recording
// a run — every output mode works directly off the file without
// materializing the trace in RAM.
//
// Workloads:
//
//	dissemination-sync     BSP supersteps with skewed compute and ring puts,
//	                       synchronized by the default dissemination count
//	                       exchange (the repository's reference workload)
//	barrier:dissemination  one execution of the dissemination barrier
//	barrier:tree           one execution of the binomial-tree barrier
//	barrier:linear         one execution of the linear barrier
//	totalexchange          one all-to-all personalized exchange (64 B blocks)
//
// All workloads run on the scaled synthetic Xeon cluster (8 cores per node,
// with the profile's run-to-run noise), so -seed changes the jitter and
// -seed alone reproduces a trace exactly. The default output is the text
// report; -events dumps the merged event stream instead (the deterministic
// rendering the golden tests pin).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"hbsp"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/mpi"
	"hbsp/trace"
)

// config selects the run the trace is recorded from.
type config struct {
	workload string
	procs    int
	seed     int64
}

// workloads maps the -workload names to their bodies; each runs the session
// to completion with the recorder attached.
var workloads = map[string]func(*hbsp.Session, int) error{
	"dissemination-sync":    runDisseminationSync,
	"barrier:dissemination": runBarrier(collective.Dissemination),
	"barrier:tree":          runBarrier(collective.Tree),
	"barrier:linear": func(s *hbsp.Session, p int) error {
		return runBarrier(func(p int) (*collective.Pattern, error) { return collective.Linear(p, 0) })(s, p)
	},
	"totalexchange": runTotalExchange,
}

func main() {
	log.SetFlags(0)
	workload := flag.String("workload", "dissemination-sync", "workload to trace (see the command doc for the list)")
	procs := flag.Int("p", 64, "number of ranks")
	seed := flag.Int64("seed", 1, "run seed (drives the machine's deterministic noise)")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON export to this path")
	chromeFull := flag.Bool("chrome-full", false, "force the full Chrome export instead of lane-sampling over budget")
	chromeBudget := flag.Int("chrome-budget", trace.DefaultChromeBudget, "event budget for the full Chrome export (0 = unlimited)")
	events := flag.Bool("events", false, "dump the merged event stream instead of the report")
	rollup := flag.Bool("rollup", false, "print the aggregated per-superstep/per-stage rollup instead of the report")
	topk := flag.Int("topk", 8, "worst-slack ranks to list in the rollup")
	hops := flag.Int("hops", 24, "maximum critical-path hops to print")
	steps := flag.Int("steps", 0, "maximum per-superstep rows to print (0 = all)")
	spill := flag.String("spill", "", "also serialize the trace to this path in the binary spill format")
	fromSpill := flag.String("from-spill", "", "analyze this spill file instead of recording a run")
	flag.Parse()

	var src trace.Source
	if *fromSpill != "" {
		sp, err := trace.OpenSpillFile(*fromSpill)
		if err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
		defer sp.Close()
		src = sp
	} else {
		tr, err := record(config{workload: *workload, procs: *procs, seed: *seed})
		if err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
		src = tr
	}
	if *spill != "" {
		if err := writeFile(*spill, func(w io.Writer) error { return trace.WriteSpill(w, src) }); err != nil {
			log.Fatalf("hbsptrace: spill export: %v", err)
		}
	}
	if *chrome != "" {
		if err := exportChrome(*chrome, src, *chromeFull, *chromeBudget); err != nil {
			log.Fatalf("hbsptrace: chrome export: %v", err)
		}
	}
	switch {
	case *events:
		if err := trace.WriteEvents(os.Stdout, src); err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
	case *rollup:
		r, err := trace.RollupOf(src, trace.RollupOptions{TopK: *topk})
		if err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
		if err := trace.WriteRollup(os.Stdout, r); err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
	default:
		if err := writeReport(os.Stdout, src, *hops, *steps); err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
	}
}

// writeFile creates path, streams body into it and reports the write on
// stderr.
func writeFile(path string, body func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := body(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// exportChrome writes the Chrome trace-event export. The default mode
// lane-samples traces over the event budget; -chrome-full demands every
// lane, and is refused over budget (a P=65536 trace renders to multi-GB
// JSON no viewer loads) unless -chrome-budget raises or disables the limit.
func exportChrome(path string, src trace.Source, full bool, budget int) error {
	if full {
		if n := trace.NumEventsOf(src); budget > 0 && n > budget {
			return fmt.Errorf("trace has %d events, over the full-export budget of %d; "+
				"drop -chrome-full for a lane-sampled export, use -rollup for an aggregated view, "+
				"or raise -chrome-budget (0 = unlimited) to force it", n, budget)
		}
		return writeFile(path, func(w io.Writer) error { return trace.WriteChrome(w, src) })
	}
	var sampled bool
	err := writeFile(path, func(w io.Writer) error {
		var err error
		sampled, err = trace.WriteChromeAuto(w, src, trace.ChromeOptions{MaxEvents: budget})
		return err
	})
	if err == nil && sampled {
		fmt.Fprintf(os.Stderr, "trace exceeds the %d-event budget; exported a lane-sampled timeline (-chrome-full forces every lane)\n", budget)
	}
	return err
}

// record runs the selected workload under a fresh recorder and returns the
// merged trace.
func record(cfg config) (*trace.Trace, error) {
	body, ok := workloads[cfg.workload]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (have: %v)", cfg.workload, workloadNames())
	}
	if cfg.procs < 2 {
		return nil, fmt.Errorf("workloads need at least 2 ranks, got %d", cfg.procs)
	}
	// The scaled Xeon profile keeps 8 cores per node and the preset's noise,
	// so placement effects and straggler jitter stay visible at any P.
	nodes := (cfg.procs + 7) / 8
	if nodes < 8 {
		nodes = 8
	}
	m, err := cluster.XeonCluster(nodes).Machine(cfg.procs)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rec.SetLabel(fmt.Sprintf("%s, P=%d", cfg.workload, cfg.procs))
	sess, err := hbsp.New(m, hbsp.WithSeed(cfg.seed), hbsp.WithRecorder(rec))
	if err != nil {
		return nil, err
	}
	if err := body(sess, cfg.procs); err != nil {
		return nil, err
	}
	return rec.Trace()
}

// writeReport prints the text report, asserting the acceptance invariant:
// the critical path must end exactly at the makespan.
func writeReport(w io.Writer, src trace.Source, hops, steps int) error {
	cp, err := trace.CriticalPathOf(src)
	if err != nil {
		return err
	}
	if span := src.RunSummary().MakeSpan; cp.End != span {
		return fmt.Errorf("critical path ends at %v, makespan is %v — trace is incomplete", cp.End, span)
	}
	return trace.WriteReport(w, src, trace.ReportOptions{MaxHops: hops, MaxSteps: steps})
}

func workloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runDisseminationSync is the reference BSP workload: a registration
// superstep, then three supersteps of placement-skewed compute and ring
// puts, each ended by the default dissemination count exchange.
func runDisseminationSync(sess *hbsp.Session, procs int) error {
	_, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		p := c.NProcs()
		area := make([]float64, p)
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		for step := 0; step < 3; step++ {
			// Skewed compute: ranks land in four classes so every superstep
			// has genuine stragglers for the breakdown to attribute.
			c.Compute(5e-6 * float64(1+(c.Pid()+step)%4))
			right := (c.Pid() + 1 + step) % p
			if err := c.Put(right, "x", c.Pid(), []float64{float64(step)}); err != nil {
				return err
			}
			if err := c.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// runBarrier executes one verified barrier schedule under the MPI layer.
func runBarrier(gen func(p int) (*collective.Pattern, error)) func(*hbsp.Session, int) error {
	return func(sess *hbsp.Session, procs int) error {
		pat, err := gen(procs)
		if err != nil {
			return err
		}
		_, err = sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
			return c.BarrierSchedule(pat)
		})
		return err
	}
}

// runTotalExchange performs one all-to-all personalized exchange of 64-byte
// blocks through the schedule engine's heaviest collective.
func runTotalExchange(sess *hbsp.Session, procs int) error {
	pat, err := collective.TotalExchange(procs, 64)
	if err != nil {
		return err
	}
	_, err = sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
		blocks := make([]any, procs)
		for i := range blocks {
			blocks[i] = float64(c.Rank()*procs + i)
		}
		got, err := c.TotalExchangeSchedule(pat, blocks)
		if err != nil {
			return err
		}
		for src, v := range got {
			if want := float64(src*procs + c.Rank()); v != want {
				return fmt.Errorf("rank %d received %v from %d, want %v", c.Rank(), v, src, want)
			}
		}
		return nil
	})
	return err
}

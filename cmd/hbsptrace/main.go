// Command hbsptrace runs a named workload under the trace recorder and
// prints what the trace subsystem learned: the per-category time breakdown,
// per-superstep straggler attribution, h-relation statistics and the
// critical path whose end time equals the run's virtual makespan
// bit-for-bit. With -chrome it additionally exports the full event timeline
// as Chrome trace-event JSON, loadable in chrome://tracing or Perfetto
// (ui.perfetto.dev → "Open trace file").
//
// Usage:
//
//	go run ./cmd/hbsptrace [-workload name] [-p procs] [-seed n]
//	                       [-chrome out.json] [-events] [-hops n] [-steps n]
//
// Workloads:
//
//	dissemination-sync     BSP supersteps with skewed compute and ring puts,
//	                       synchronized by the default dissemination count
//	                       exchange (the repository's reference workload)
//	barrier:dissemination  one execution of the dissemination barrier
//	barrier:tree           one execution of the binomial-tree barrier
//	barrier:linear         one execution of the linear barrier
//	totalexchange          one all-to-all personalized exchange (64 B blocks)
//
// All workloads run on the scaled synthetic Xeon cluster (8 cores per node,
// with the profile's run-to-run noise), so -seed changes the jitter and
// -seed alone reproduces a trace exactly. The default output is the text
// report; -events dumps the merged event stream instead (the deterministic
// rendering the golden tests pin).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"hbsp"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/mpi"
	"hbsp/trace"
)

// config selects the run the trace is recorded from.
type config struct {
	workload string
	procs    int
	seed     int64
}

// workloads maps the -workload names to their bodies; each runs the session
// to completion with the recorder attached.
var workloads = map[string]func(*hbsp.Session, int) error{
	"dissemination-sync":    runDisseminationSync,
	"barrier:dissemination": runBarrier(collective.Dissemination),
	"barrier:tree":          runBarrier(collective.Tree),
	"barrier:linear": func(s *hbsp.Session, p int) error {
		return runBarrier(func(p int) (*collective.Pattern, error) { return collective.Linear(p, 0) })(s, p)
	},
	"totalexchange": runTotalExchange,
}

func main() {
	log.SetFlags(0)
	workload := flag.String("workload", "dissemination-sync", "workload to trace (see the command doc for the list)")
	procs := flag.Int("p", 64, "number of ranks")
	seed := flag.Int64("seed", 1, "run seed (drives the machine's deterministic noise)")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON export to this path")
	events := flag.Bool("events", false, "dump the merged event stream instead of the report")
	hops := flag.Int("hops", 24, "maximum critical-path hops to print")
	steps := flag.Int("steps", 0, "maximum per-superstep rows to print (0 = all)")
	flag.Parse()

	tr, err := record(config{workload: *workload, procs: *procs, seed: *seed})
	if err != nil {
		log.Fatalf("hbsptrace: %v", err)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
		if err := trace.WriteChrome(f, tr); err != nil {
			log.Fatalf("hbsptrace: chrome export: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("hbsptrace: chrome export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *chrome)
	}
	if *events {
		if err := trace.WriteEvents(os.Stdout, tr); err != nil {
			log.Fatalf("hbsptrace: %v", err)
		}
		return
	}
	if err := writeReport(os.Stdout, tr, *hops, *steps); err != nil {
		log.Fatalf("hbsptrace: %v", err)
	}
}

// record runs the selected workload under a fresh recorder and returns the
// merged trace.
func record(cfg config) (*trace.Trace, error) {
	body, ok := workloads[cfg.workload]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (have: %v)", cfg.workload, workloadNames())
	}
	if cfg.procs < 2 {
		return nil, fmt.Errorf("workloads need at least 2 ranks, got %d", cfg.procs)
	}
	// The scaled Xeon profile keeps 8 cores per node and the preset's noise,
	// so placement effects and straggler jitter stay visible at any P.
	nodes := (cfg.procs + 7) / 8
	if nodes < 8 {
		nodes = 8
	}
	m, err := cluster.XeonCluster(nodes).Machine(cfg.procs)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	rec.SetLabel(fmt.Sprintf("%s, P=%d", cfg.workload, cfg.procs))
	sess, err := hbsp.New(m, hbsp.WithSeed(cfg.seed), hbsp.WithRecorder(rec))
	if err != nil {
		return nil, err
	}
	if err := body(sess, cfg.procs); err != nil {
		return nil, err
	}
	return rec.Trace()
}

// writeReport prints the text report, asserting the acceptance invariant:
// the critical path must end exactly at the makespan.
func writeReport(w io.Writer, tr *trace.Trace, hops, steps int) error {
	if cp := tr.CriticalPath(); cp.End != tr.MakeSpan {
		return fmt.Errorf("critical path ends at %v, makespan is %v — trace is incomplete", cp.End, tr.MakeSpan)
	}
	return trace.WriteReport(w, tr, trace.ReportOptions{MaxHops: hops, MaxSteps: steps})
}

func workloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runDisseminationSync is the reference BSP workload: a registration
// superstep, then three supersteps of placement-skewed compute and ring
// puts, each ended by the default dissemination count exchange.
func runDisseminationSync(sess *hbsp.Session, procs int) error {
	_, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		p := c.NProcs()
		area := make([]float64, p)
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		for step := 0; step < 3; step++ {
			// Skewed compute: ranks land in four classes so every superstep
			// has genuine stragglers for the breakdown to attribute.
			c.Compute(5e-6 * float64(1+(c.Pid()+step)%4))
			right := (c.Pid() + 1 + step) % p
			if err := c.Put(right, "x", c.Pid(), []float64{float64(step)}); err != nil {
				return err
			}
			if err := c.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// runBarrier executes one verified barrier schedule under the MPI layer.
func runBarrier(gen func(p int) (*collective.Pattern, error)) func(*hbsp.Session, int) error {
	return func(sess *hbsp.Session, procs int) error {
		pat, err := gen(procs)
		if err != nil {
			return err
		}
		_, err = sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
			return c.BarrierSchedule(pat)
		})
		return err
	}
}

// runTotalExchange performs one all-to-all personalized exchange of 64-byte
// blocks through the schedule engine's heaviest collective.
func runTotalExchange(sess *hbsp.Session, procs int) error {
	pat, err := collective.TotalExchange(procs, 64)
	if err != nil {
		return err
	}
	_, err = sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
		blocks := make([]any, procs)
		for i := range blocks {
			blocks[i] = float64(c.Rank()*procs + i)
		}
		got, err := c.TotalExchangeSchedule(pat, blocks)
		if err != nil {
			return err
		}
		for src, v := range got {
			if want := float64(src*procs + c.Rank()); v != want {
				return fmt.Errorf("rank %d received %v from %d, want %v", c.Rank(), v, src, want)
			}
		}
		return nil
	})
	return err
}

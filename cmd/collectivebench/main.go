// Command collectivebench compares the cost model against the simulator for
// every collective schedule (broadcast, reduce, allreduce, allgather, total
// exchange) on the built-in platform presets, and shows the model-selected
// count-exchange schedule running inside the BSP synchronizer against the
// dissemination default.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "run the full sweeps instead of the quick ones")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}

	for _, tc := range []struct {
		prof *cluster.Profile
		max  int
	}{
		{cluster.Xeon8x2x4(), opts.MaxProcsXeon},
		{cluster.Opteron12x2x6(), opts.MaxProcsOpteron},
	} {
		points, err := experiments.CollectiveSeries(tc.prof, tc.max, opts)
		if err != nil {
			log.Fatalf("collectivebench: %v", err)
		}
		title := fmt.Sprintf("Collectives on %s: measured vs predicted", tc.prof.Name)
		fmt.Print(experiments.CollectiveTable(title, points).String())
		fmt.Println()
	}

	sync, err := experiments.AdaptedSyncSeries(cluster.Xeon8x2x4(), opts.MaxProcsXeon, opts)
	if err != nil {
		log.Fatalf("collectivebench: %v", err)
	}
	fmt.Print(experiments.AdaptedSyncTable("Adapted count-exchange schedule vs dissemination default (8x2x4)", sync).String())
}

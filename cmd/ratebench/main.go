// Command ratebench regenerates the Chapter 4 computational-rate figures:
// the bspbench rate sweep (Fig. 4.2), the kernel-specific predictions and
// their relative error (Figs. 4.3/4.4), and the L1 BLAS footprint sweeps
// (Figs. 4.5/4.6).
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "run the full sweep instead of the quick one")
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	xeon := cluster.Xeon8x2x4()

	rates, err := experiments.Fig4_2(xeon)
	if err != nil {
		log.Fatalf("ratebench: %v", err)
	}
	tbl := &experiments.Table{Title: "Fig 4.2: bspbench computation rates (2x4 cluster node)", Columns: []string{"vector size", "Mflop/s"}}
	for _, r := range rates {
		tbl.AddRow(fmt.Sprintf("%d", r.VectorSize), fmt.Sprintf("%.1f", r.Mflops))
	}
	fmt.Print(tbl.String())
	fmt.Println()

	preds, err := experiments.Fig4_3(xeon, opts)
	if err != nil {
		log.Fatalf("ratebench: %v", err)
	}
	tbl = &experiments.Table{
		Title:   "Figs 4.3/4.4: kernel rate predictions vs measurement (1024-element problems)",
		Columns: []string{"kernel", "applications", "predicted [s]", "measured [s]", "Mflops-derived [s]", "rel err"},
	}
	for _, p := range preds {
		tbl.AddRow(p.Kernel, fmt.Sprintf("%d", p.Applications), fmt.Sprintf("%.3e", p.Predicted),
			fmt.Sprintf("%.3e", p.Measured), fmt.Sprintf("%.3e", p.MflopsDerived), fmt.Sprintf("%.1f%%", 100*p.RelativeError))
	}
	fmt.Print(tbl.String())
	fmt.Println()

	athlon := cluster.AthlonX2()
	for _, sweep := range []struct {
		title    string
		maxBytes float64
	}{
		{"Fig 4.5: L1 BLAS, in-cache problem sizes (Athlon X2)", 60 * 1024},
		{"Fig 4.6: L1 BLAS, sizes crossing the L1 boundary (Athlon X2)", 512 * 1024},
	} {
		points, err := experiments.Fig4_5(athlon, sweep.maxBytes)
		if err != nil {
			log.Fatalf("ratebench: %v", err)
		}
		tbl = &experiments.Table{Title: sweep.title, Columns: []string{"kernel", "memory use [bytes]", "time [s]"}}
		for _, p := range points {
			tbl.AddRow(p.Kernel, fmt.Sprintf("%.0f", p.FootprintBytes), fmt.Sprintf("%.3e", p.Seconds))
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}

package main

import (
	"net"
	"sort"
)

// listenLoopback opens an ephemeral loopback listener for the loadgen
// harness.
func listenLoopback() (net.Listener, error) {
	return net.Listen("tcp", "127.0.0.1:0")
}

// sortInt64s sorts in place.
func sortInt64s(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

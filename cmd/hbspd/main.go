// Command hbspd serves the prediction API as a standalone daemon, or — with
// -loadgen — benchmarks it end to end over a real TCP socket.
//
// Serving:
//
//	hbspd [-addr :8321] [-max-concurrent n] [-max-queue n]
//	      [-cache-entries n] [-machine-entries n]
//
// SIGINT/SIGTERM drain gracefully: /healthz flips to 503 so load balancers
// stop routing here, new predictions are shed, in-flight requests finish
// (bounded by -drain-timeout), then the listener closes.
//
// Load generation:
//
//	hbspd -loadgen [-clients n] [-duration d] [-out BENCH_hbspd.json]
//
// starts an in-process server on a loopback socket and drives it through
// three phases: a warm-up that fills the result cache, a hot phase of
// cache-hit queries measuring throughput and latency quantiles, and a
// saturation burst of uncacheable work demonstrating load shedding. The
// report (throughput, latency quantiles against the pinned p99 target,
// cache hit rate, shed counters, the server's own metrics) is written as
// JSON to -out.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hbsp/server"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", ":8321", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent evaluations (0 = default)")
	maxQueue := flag.Int("max-queue", 0, "max queued evaluations before shedding (0 = default)")
	cacheEntries := flag.Int("cache-entries", 0, "result cache capacity (0 = default, negative disables)")
	machineEntries := flag.Int("machine-entries", 0, "machine cache capacity (0 = default, negative disables)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGTERM")
	loadgen := flag.Bool("loadgen", false, "run the load-generation harness instead of serving")
	clients := flag.Int("clients", 8, "loadgen: concurrent clients")
	duration := flag.Duration("duration", 2*time.Second, "loadgen: hot-phase duration")
	out := flag.String("out", "BENCH_hbspd.json", "loadgen: report path")
	flag.Parse()

	cfg := server.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxQueue:       *maxQueue,
		CacheEntries:   *cacheEntries,
		MachineEntries: *machineEntries,
	}
	if *loadgen {
		if err := runLoadgen(cfg, *clients, *duration, *out); err != nil {
			log.Fatalf("hbspd: loadgen: %v", err)
		}
		return
	}
	if err := serve(cfg, *addr, *drainTimeout); err != nil {
		log.Fatalf("hbspd: %v", err)
	}
}

// serve runs the daemon until SIGINT/SIGTERM, then drains.
func serve(cfg server.Config, addr string, drainTimeout time.Duration) error {
	srv := server.New(cfg)
	httpSrv := &http.Server{Addr: addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("hbspd: listening on %s", addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-sigCh:
		log.Printf("hbspd: %v, draining (up to %v)", sig, drainTimeout)
	}

	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("hbspd: drained")
	return nil
}

// benchReport is the BENCH_hbspd.json shape.
type benchReport struct {
	Clients  int    `json:"clients"`
	Duration string `json:"duration"`

	// Hot phase: identical requests answered from the result cache.
	HotRequests   int64   `json:"hotRequests"`
	HotErrors     int64   `json:"hotErrors"`
	HotReqPerSec  float64 `json:"hotReqPerSec"`
	HotP50Ns      int64   `json:"hotP50Ns"`
	HotP99Ns      int64   `json:"hotP99Ns"`
	P99TargetNs   int64   `json:"p99TargetNs"`
	P99UnderLimit bool    `json:"p99UnderTarget"`
	// MinReqPerSec is the pinned throughput floor for cached hot queries.
	MinReqPerSec  float64 `json:"minReqPerSec"`
	RateOverFloor bool    `json:"rateOverFloor"`

	CacheHitRate float64 `json:"cacheHitRate"`

	// Burst phase: uncacheable work beyond capacity must shed.
	BurstRequests int64 `json:"burstRequests"`
	BurstShed     int64 `json:"burstShed"`

	Metrics server.MetricsSnapshot `json:"metrics"`
}

// Pinned loadgen acceptance bounds: cached hot queries must sustain at least
// minHotReqPerSec with p99 below hotP99Target.
const (
	minHotReqPerSec = 500.0
	hotP99Target    = 100 * time.Millisecond
)

// runLoadgen drives an in-process server over loopback TCP.
func runLoadgen(cfg server.Config, clients int, duration time.Duration, out string) error {
	srv := server.New(cfg)
	httpSrv := &http.Server{Handler: srv}
	ln, err := listenLoopback()
	if err != nil {
		return err
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	hotBody := []byte(`{"profile":{"preset":"xeon-cluster"},"workload":{"kind":"allreduce","bytes":64},"procs":64}`)

	// Warm-up: one evaluation fills the cache entry every hot request hits.
	if status, _, err := post(base, hotBody); err != nil || status != 200 {
		return fmt.Errorf("warm-up failed: status %d, err %v", status, err)
	}

	// Hot phase.
	type clientRes struct {
		n, errs int64
		lats    []int64
	}
	results := make(chan clientRes, clients)
	stop := time.Now().Add(duration)
	for c := 0; c < clients; c++ {
		go func() {
			var r clientRes
			for time.Now().Before(stop) {
				t0 := time.Now()
				status, _, err := post(base, hotBody)
				lat := time.Since(t0).Nanoseconds()
				r.n++
				r.lats = append(r.lats, lat)
				if err != nil || status != 200 {
					r.errs++
				}
			}
			results <- r
		}()
	}
	var hot clientRes
	for c := 0; c < clients; c++ {
		r := <-results
		hot.n += r.n
		hot.errs += r.errs
		hot.lats = append(hot.lats, r.lats...)
	}

	// Saturation burst: every request is a distinct uncacheable evaluation
	// (unique seed) fired without waiting, so the queue fills and the
	// shedder must engage.
	maxConc, maxQueue := cfg.MaxConcurrent, cfg.MaxQueue
	if maxConc == 0 {
		maxConc = 4
	}
	if maxQueue == 0 {
		maxQueue = 2 * maxConc
	}
	burstN := 4 * (maxConc + maxQueue + 8)
	burstRes := make(chan int, burstN)
	for i := 0; i < burstN; i++ {
		body := []byte(fmt.Sprintf(
			`{"profile":{"preset":"xeon-cluster"},"workload":{"kind":"sync","supersteps":4},"procs":128,"seed":%d}`, 1000+i))
		go func(b []byte) {
			status, _, err := post(base, b)
			if err != nil {
				status = -1
			}
			burstRes <- status
		}(body)
	}
	var burstShed int64
	for i := 0; i < burstN; i++ {
		if <-burstRes == http.StatusTooManyRequests {
			burstShed++
		}
	}

	m := srv.Metrics()
	rep := benchReport{
		Clients:       clients,
		Duration:      duration.String(),
		HotRequests:   hot.n,
		HotErrors:     hot.errs,
		HotReqPerSec:  float64(hot.n) / duration.Seconds(),
		HotP50Ns:      quantileNs(hot.lats, 0.50),
		HotP99Ns:      quantileNs(hot.lats, 0.99),
		P99TargetNs:   hotP99Target.Nanoseconds(),
		MinReqPerSec:  minHotReqPerSec,
		BurstRequests: int64(burstN),
		BurstShed:     burstShed,
		Metrics:       m,
	}
	rep.P99UnderLimit = rep.HotP99Ns < rep.P99TargetNs
	rep.RateOverFloor = rep.HotReqPerSec >= rep.MinReqPerSec
	if total := m.CacheHits + m.CacheMisses + m.Coalesced; total > 0 {
		rep.CacheHitRate = float64(m.CacheHits) / float64(total)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("hbspd: loadgen: %.0f req/s hot (floor %.0f), p99 %.2fms (target %v), hit rate %.3f, shed %d/%d — wrote %s",
		rep.HotReqPerSec, rep.MinReqPerSec, float64(rep.HotP99Ns)/1e6, hotP99Target, rep.CacheHitRate, burstShed, burstN, out)
	if !rep.RateOverFloor || !rep.P99UnderLimit {
		return fmt.Errorf("hot phase outside pinned bounds: %.0f req/s (floor %.0f), p99 %v (target %v)",
			rep.HotReqPerSec, rep.MinReqPerSec, time.Duration(rep.HotP99Ns), hotP99Target)
	}
	if burstShed == 0 {
		return fmt.Errorf("saturation burst of %d requests shed nothing", burstN)
	}
	return nil
}

// post sends one prediction request and fully reads the response.
func post(base string, body []byte) (int, []byte, error) {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// quantileNs is the nearest-rank quantile of the latencies.
func quantileNs(lats []int64, q float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]int64(nil), lats...)
	sortInt64s(sorted)
	i := int(float64(len(sorted))*q+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Command bspbench regenerates Table 3.1 (the classic bspbench parameters on
// the simulated Xeon 8x2x4 cluster) and the Fig. 3.2 comparison of measured
// inner-product timings against the classic BSP estimate.
package main

import (
	"flag"
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		full = flag.Bool("full", false, "run the full sweep instead of the quick one")
		n    = flag.Int("n", 1<<22, "inner product problem size (elements)")
	)
	flag.Parse()

	opts := experiments.Quick()
	if *full {
		opts = experiments.Full()
	}
	prof := cluster.Xeon8x2x4()

	rows, err := experiments.Table3_1(prof, opts)
	if err != nil {
		log.Fatalf("bspbench: %v", err)
	}
	fmt.Print(experiments.Table3_1Table(rows).String())
	fmt.Println()

	points, err := experiments.Fig3_2(prof, rows, *n, opts)
	if err != nil {
		log.Fatalf("bspbench: %v", err)
	}
	tbl := &experiments.Table{
		Title:   fmt.Sprintf("Fig 3.2: inner product (N=%d), measured vs classic BSP estimate", *n),
		Columns: []string{"P", "measured [s]", "estimate [s]", "ratio"},
	}
	for _, p := range points {
		tbl.AddRow(fmt.Sprintf("%d", p.P), fmt.Sprintf("%.3e", p.Measured), fmt.Sprintf("%.3e", p.Estimated),
			fmt.Sprintf("%.1fx", p.Estimated/p.Measured))
	}
	fmt.Print(tbl.String())
}

// Package collective is the public surface of the collective-schedule
// engine: schedules represented as sequences of P×P boolean stage matrices
// (Pattern), generators for barriers and payload-carrying collectives, the
// knowledge-recursion verifier, the matrix cost model with its critical-path
// search (Predict), the pattern simulator (Measure/Execute), and the
// model-driven adaptation that selects hierarchical hybrid schedules from
// benchmarked parameter matrices (Greedy/GreedySync).
//
// Verified patterns are directly executable with user data: they satisfy
// mpi.Schedule, so mpi.Comm's schedule collectives (BcastSchedule,
// AllreduceSchedule, ...) run them, and the bsp.Ctx collectives execute them
// behind the scenes.
package collective

import (
	"hbsp/internal/adapt"
	"hbsp/internal/barrier"

	"hbsp/matrix"
	"hbsp/mpi"
	"hbsp/sched"
	"hbsp/sim"
)

// Pattern is a collective schedule: an ordered sequence of P×P boolean stage
// matrices with optional per-edge payload sizes, a Semantics tag and, for
// rooted collectives, a Root.
type Pattern = barrier.Pattern

// StageAdj is the sparse per-row adjacency of one stage.
type StageAdj = barrier.StageAdj

// Semantics names the collective postcondition a schedule must establish.
type Semantics = barrier.Semantics

// The collective semantics a schedule can be verified against.
const (
	SemBarrier       = barrier.SemBarrier
	SemBroadcast     = barrier.SemBroadcast
	SemReduce        = barrier.SemReduce
	SemAllReduce     = barrier.SemAllReduce
	SemAllGather     = barrier.SemAllGather
	SemTotalExchange = barrier.SemTotalExchange
)

// Params are the architectural performance matrices the cost model consumes;
// bench.ModelParams benchmarks them from a machine.
type Params = barrier.Params

// CostOptions tune the cost model.
type CostOptions = barrier.CostOptions

// Prediction is the result of evaluating the cost model on a pattern.
type Prediction = barrier.Prediction

// Measurement holds the result of measuring a pattern on a simulated
// machine.
type Measurement = barrier.Measurement

// Errors of the schedule engine.
var (
	ErrInvalidPattern = barrier.ErrInvalidPattern
	ErrNoReps         = barrier.ErrNoReps
)

// Barrier pattern generators.
func Linear(p, root int) (*Pattern, error)  { return barrier.Linear(p, root) }
func Dissemination(p int) (*Pattern, error) { return barrier.Dissemination(p) }
func Tree(p int) (*Pattern, error)          { return barrier.Tree(p) }
func FullyConnected(p int) (*Pattern, error) {
	return barrier.FullyConnected(p)
}
func Ring(p int) (*Pattern, error)        { return barrier.Ring(p) }
func KAryTree(p, k int) (*Pattern, error) { return barrier.KAryTree(p, k) }

// Payload-carrying collective generators, each verified against its own
// semantics by Collectives.
func Broadcast(p, root, msgBytes int) (*Pattern, error) {
	return barrier.Broadcast(p, root, msgBytes)
}
func Reduce(p, root, msgBytes int) (*Pattern, error) {
	return barrier.Reduce(p, root, msgBytes)
}
func AllReduce(p, msgBytes int) (*Pattern, error) { return barrier.AllReduce(p, msgBytes) }
func AllGather(p, blockBytes int) (*Pattern, error) {
	return barrier.AllGather(p, blockBytes)
}
func TotalExchange(p, blockBytes int) (*Pattern, error) {
	return barrier.TotalExchange(p, blockBytes)
}
func AllGatherRing(p, blockBytes int) (*Pattern, error) {
	return barrier.AllGatherRing(p, blockBytes)
}

// StreamTotalExchange returns the linear-shift total-exchange schedule in
// streaming form — identical stage structure and payload sizes to
// TotalExchange, but generated stage by stage into O(P) reused buffers
// instead of dense P×P matrices. Evaluate it with sched.RunSchedule; it is
// the representation that makes P=4096 collective sweeps feasible.
func StreamTotalExchange(p, blockBytes int) (sched.Schedule, error) {
	return barrier.StreamTotalExchange(p, blockBytes)
}

// The remaining streaming generators mirror their dense counterparts the same
// way: identical stage structure and payload sizes, O(P) (circulants: O(1))
// state per stage. All of them declare their rank symmetry, so on homogeneous
// machines sched.RunSchedule evaluates one representative rank per
// equivalence class — the combination that takes dissemination sweeps to
// P=1M.
func StreamDissemination(p int) (sched.Schedule, error) { return barrier.StreamDissemination(p) }
func StreamAllReduce(p, msgBytes int) (sched.Schedule, error) {
	return barrier.StreamAllReduce(p, msgBytes)
}
func StreamAllGather(p, blockBytes int) (sched.Schedule, error) {
	return barrier.StreamAllGather(p, blockBytes)
}
func StreamAllGatherRing(p, blockBytes int) (sched.Schedule, error) {
	return barrier.StreamAllGatherRing(p, blockBytes)
}
func StreamBroadcast(p, root, msgBytes int) (sched.Schedule, error) {
	return barrier.StreamBroadcast(p, root, msgBytes)
}
func StreamReduce(p, root, msgBytes int) (sched.Schedule, error) {
	return barrier.StreamReduce(p, root, msgBytes)
}

// Collectives returns one verified schedule per collective at the given
// process count and block size, keyed by name.
func Collectives(p, blockBytes int) (map[string]*Pattern, error) {
	return barrier.Collectives(p, blockBytes)
}

// WithSyncPayload attaches the BSP count-exchange payload to a pattern.
func WithSyncPayload(pat *Pattern, bytesPerEntry int) *Pattern {
	return barrier.WithSyncPayload(pat, bytesPerEntry)
}

// WithCountPayload attaches the BSP count-exchange payload to an arbitrary
// schedule a synchronizer may execute.
func WithCountPayload(pat *Pattern, bytesPerEntry int) *Pattern {
	return barrier.WithCountPayload(pat, bytesPerEntry)
}

// DefaultCostOptions returns the thesis' cost model: acknowledgement factor
// 2 with the posted-receive and minimum-invocation refinements enabled.
func DefaultCostOptions() CostOptions { return barrier.DefaultCostOptions() }

// CostOptionsFor returns the cost options matching a collective's data flow.
func CostOptionsFor(sem Semantics) CostOptions { return barrier.CostOptionsFor(sem) }

// Predict evaluates the cost model on a pattern: per-stage, per-process
// costs combined by a critical-path search.
func Predict(pat *Pattern, params Params, opts CostOptions) (*Prediction, error) {
	return barrier.Predict(pat, params, opts)
}

// Measure executes the pattern reps times on the machine and reports the
// worst-case duration statistics.
func Measure(m sim.Machine, pat *Pattern, reps int) (*Measurement, error) {
	return barrier.Measure(m, pat, reps)
}

// MeasureWith is Measure under explicit simulator options — most usefully
// the engine selection (sim.EngineConcurrent forces the per-message
// concurrent walk; the default routes executions through the direct
// discrete-event evaluator, bit-identically).
func MeasureWith(m sim.Machine, pat *Pattern, reps int, o sim.Options) (*Measurement, error) {
	return barrier.MeasureWith(m, pat, reps, o)
}

// MeasureAlgorithms measures the three reference barriers on the machine.
func MeasureAlgorithms(m sim.Machine, reps int) (map[string]*Measurement, error) {
	return barrier.MeasureAlgorithms(m, reps)
}

// Execute runs one execution of the pattern on the calling rank (signals
// only; use the Comm schedule collectives for data-carrying execution).
func Execute(c *mpi.Comm, pat *Pattern, generation int) { barrier.Execute(c, pat, generation) }

// Model-driven adaptation (Case Study I): latency clustering and the greedy
// hybrid-schedule construction.

// Clustering is a latency-homogeneous grouping of processes.
type Clustering = adapt.Clustering

// Candidate is one costed schedule candidate of a greedy construction.
type Candidate = adapt.Candidate

// AdaptResult ranks the candidate schedules of a greedy construction; Best
// is the model-selected winner.
type AdaptResult = adapt.Result

// SubPattern selects the intra- or inter-cluster pattern family of a hybrid.
type SubPattern = adapt.SubPattern

// ErrBadInput is returned by the adaptation pipeline on invalid inputs.
var ErrBadInput = adapt.ErrBadInput

// AutoThreshold derives a latency threshold separating intra- from
// inter-cluster pairs.
func AutoThreshold(latency *matrix.Dense) (float64, error) { return adapt.AutoThreshold(latency) }

// ClusterByLatency groups processes whose pairwise latency stays below the
// threshold.
func ClusterByLatency(latency *matrix.Dense, threshold float64) (*Clustering, error) {
	return adapt.ClusterByLatency(latency, threshold)
}

// ClusterAuto clusters with an automatically derived threshold.
func ClusterAuto(latency *matrix.Dense) (*Clustering, error) { return adapt.ClusterAuto(latency) }

// BuildHybrid assembles a hierarchical hybrid barrier from a clustering.
func BuildHybrid(cl *Clustering, intra, inter SubPattern) (*Pattern, error) {
	return adapt.BuildHybrid(cl, intra, inter)
}

// Greedy runs the model-driven construction of Chapter 7: cluster, build the
// candidate hybrids, cost every candidate, return the ranking.
func Greedy(params Params, opts CostOptions) (*AdaptResult, error) {
	return adapt.Greedy(params, opts)
}

// GreedyWithClustering is Greedy with an explicit clustering.
func GreedyWithClustering(params Params, opts CostOptions, cl *Clustering) (*AdaptResult, error) {
	return adapt.GreedyWithClustering(params, opts, cl)
}

// GreedySync is Greedy with every candidate costed carrying the BSP
// count-exchange payload; its winner is what hbsp.WithAdaptedSynchronizer
// executes at the end of every superstep.
func GreedySync(params Params, opts CostOptions, bytesPerEntry int) (*AdaptResult, error) {
	return adapt.GreedySync(params, opts, bytesPerEntry)
}

// Package stencil is the public surface of Case Study II: the 5-point
// Laplacian stencil in its BSP (overlapping), MPI, restructured-MPI and
// hybrid variants, executed on a simulated cluster, plus the model apparatus
// that predicts iteration times and picks the computation/communication
// overlap split.
package stencil

import (
	istencil "hbsp/internal/stencil"

	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/model"
)

// Config describes one stencil problem (grid size, iterations, coefficient).
type Config = istencil.Config

// Decomposition is the 2-D processor-grid decomposition of the domain.
type Decomposition = istencil.Decomposition

// RunResult summarizes one simulated stencil run.
type RunResult = istencil.RunResult

// ModelSetup carries the superstep model built for a stencil configuration.
type ModelSetup = istencil.ModelSetup

// OverlapPoint is one (fraction, predicted time) sample of the overlap
// sweep.
type OverlapPoint = istencil.OverlapPoint

// Prediction is a superstep-model prediction (per-process compute times,
// communication and synchronization terms, total).
type Prediction = model.Prediction

// Decompose splits an n×n domain over p processes.
func Decompose(n, p int) (Decomposition, error) { return istencil.Decompose(n, p) }

// RunBSP executes the overlapping BSP variant.
func RunBSP(m *cluster.Machine, cfg Config, overlapFraction float64) (*RunResult, error) {
	return istencil.RunBSP(m, cfg, overlapFraction)
}

// BSPProgram returns the BSP body of the Jacobi kernel as a standalone
// bsp.Program for execution through an hbsp.Session (which adds contexts,
// seeds, fault plans and trace recorders to the bare RunBSP path). checksums,
// when non-nil, must have procs entries and receives each rank's final grid
// checksum.
func BSPProgram(procs int, cfg Config, overlapFraction float64, checksums []float64) (bsp.Program, error) {
	return istencil.BSPProgram(procs, cfg, overlapFraction, checksums)
}

// MeasureBSP executes the BSP variant reps times and reports the median.
func MeasureBSP(m *cluster.Machine, cfg Config, overlapFraction float64, reps int) (*RunResult, error) {
	return istencil.MeasureBSP(m, cfg, overlapFraction, reps)
}

// RunMPI executes the straightforward MPI variant.
func RunMPI(m *cluster.Machine, cfg Config) (*RunResult, error) { return istencil.RunMPI(m, cfg) }

// RunMPIRestructured executes the communication-restructured MPI variant.
func RunMPIRestructured(m *cluster.Machine, cfg Config) (*RunResult, error) {
	return istencil.RunMPIRestructured(m, cfg)
}

// RunHybrid executes the hybrid (threads within a node) variant.
func RunHybrid(prof *cluster.Profile, nodes int, cfg Config, threadEfficiency float64) (*RunResult, error) {
	return istencil.RunHybrid(prof, nodes, cfg, threadEfficiency)
}

// BuildModel assembles the superstep model of one stencil iteration.
func BuildModel(prof *cluster.Profile, params collective.Params, procs int, cfg Config, overlapFraction float64) (*ModelSetup, error) {
	return istencil.BuildModel(prof, params, procs, cfg, overlapFraction)
}

// PredictIteration predicts the time of one stencil iteration.
func PredictIteration(prof *cluster.Profile, params collective.Params, procs int, cfg Config, overlapFraction float64) (*Prediction, error) {
	return istencil.PredictIteration(prof, params, procs, cfg, overlapFraction)
}

// PredictOverlapSweep predicts iteration times across overlap fractions.
func PredictOverlapSweep(prof *cluster.Profile, params collective.Params, procs int, cfg Config, fractions []float64) ([]OverlapPoint, error) {
	return istencil.PredictOverlapSweep(prof, params, procs, cfg, fractions)
}

// OptimalOverlap picks the best overlap fraction from a sweep.
func OptimalOverlap(points []OverlapPoint, tolerance float64) (OverlapPoint, error) {
	return istencil.OptimalOverlap(points, tolerance)
}

// GroundTruthParams returns the profile's exact parameter matrices for a
// process count (no benchmarking noise).
func GroundTruthParams(prof *cluster.Profile, procs int) (collective.Params, error) {
	return istencil.GroundTruthParams(prof, procs)
}

// Tracing: attach a trace.Recorder to a session, run a BSP program with
// skewed compute, and let the analysis passes explain where the makespan
// went — per-category breakdown, per-superstep stragglers, h-relations and
// the critical path — then export the timeline as Chrome trace JSON
// (loadable in chrome://tracing or ui.perfetto.dev).
package main

import (
	"context"
	"fmt"
	"log"

	"hbsp"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/trace"
)

func main() {
	log.SetFlags(0)
	const procs = 16

	m, err := cluster.Xeon8x2x4().Machine(procs)
	if err != nil {
		log.Fatal(err)
	}

	// 1. A recorder per run: hbsp.WithRecorder wires it into the simulator's
	// hot paths (sends, receive waits, compute intervals, superstep marks).
	rec := trace.NewRecorder()
	rec.SetLabel("tracing example")
	sess, err := hbsp.New(m, hbsp.WithSeed(42), hbsp.WithRecorder(rec))
	if err != nil {
		log.Fatal(err)
	}

	// 2. A three-superstep program where rank pid mod 4 determines the
	// compute load, so every superstep has a predictable straggler class.
	res, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		p := c.NProcs()
		area := make([]float64, p)
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		for step := 0; step < 2; step++ {
			c.Compute(2e-6 * float64(1+c.Pid()%4))
			if err := c.Put((c.Pid()+1)%p, "x", c.Pid(), []float64{1}); err != nil {
				return err
			}
			if err := c.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. The merged trace is deterministic: same seed, same bytes.
	tr, err := rec.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: makespan %.6e s, %d events recorded on %d ranks (seed %d)\n",
		res.MakeSpan, tr.NumEvents(), tr.Meta.Procs, tr.Meta.Seed)

	// 4. Analysis: the critical path ends exactly at the makespan, and the
	// breakdown attributes every rank-second to a category.
	cp := tr.CriticalPath()
	fmt.Printf("critical path: %d hops ending on rank %d, end == makespan: %v\n",
		len(cp.Hops), cp.Rank, cp.End == res.MakeSpan)
	bd := tr.Breakdown()
	for _, cat := range []trace.Category{trace.CatCompute, trace.CatStraggler, trace.CatLatency} {
		fmt.Printf("  %-15s %.6e rank-seconds\n", cat, bd.TotalByCategory(cat))
	}
	for _, h := range tr.HRelations() {
		fmt.Printf("superstep %d: h = %d bytes, %d messages\n", h.Step, h.HBytes, h.Messages)
	}

	// 5. Exports: the text report and the Chrome timeline (written to a
	// buffer here; pass a file to keep it — see also cmd/hbsptrace -chrome).
	var chrome countingWriter
	if err := trace.WriteChrome(&chrome, tr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chrome export: %d bytes of trace-event JSON for Perfetto\n", chrome.n)
}

// countingWriter counts the exported bytes (the example has no file to keep).
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }

// Example collectives builds one schedule per collective, verifies each
// against its own semantics with the knowledge recursion, prices it with the
// matrix cost model, exercises the user-facing BSP collectives that execute
// such schedules, and finally lets the model-selected hybrid schedule run
// the BSP count exchange in place of the dissemination default.
package main

import (
	"context"
	"fmt"
	"log"

	"hbsp"
	"hbsp/bench"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
)

func main() {
	log.SetFlags(0)
	const procs = 16

	prof := cluster.Xeon8x2x4()
	m, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}
	params, err := bench.ModelParams(m, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Every collective, verified per its own semantics and priced by the
	// same model that prices barrier stages.
	pats, err := collective.Collectives(procs, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-14s %8s %12s\n", "collective", "semantics", "stages", "predicted")
	for _, name := range []string{"broadcast", "reduce", "allreduce", "allgather", "total-exchange"} {
		pat := pats[name]
		pred, err := collective.Predict(pat, params, collective.CostOptionsFor(pat.Semantics))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-14s %8d %11.3es\n", pat.Name, pat.Semantics, pat.NumStages(), pred.Total)
	}

	// The user-facing collectives execute exactly such verified schedules:
	// a 128-element allreduce through the facade.
	sess, err := hbsp.New(m, hbsp.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	_, err = sess.RunBSP(context.Background(), func(ctx *bsp.Ctx) error {
		vec := make([]float64, 128)
		for i := range vec {
			vec[i] = float64(ctx.Pid())
		}
		sum, err := ctx.AllReduce(vec, bsp.OpSum)
		if err != nil {
			return err
		}
		if ctx.Pid() == 0 {
			fmt.Printf("\nuser AllReduce over %d procs: every element = %g\n", ctx.NProcs(), sum[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Model-driven synchronizer selection: the greedy construction of
	// Chapter 7 costed with the count payload, executed by the runtime —
	// installed with one functional option.
	syncRes, err := collective.GreedySync(params, collective.DefaultCostOptions(), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected count-exchange schedule: %s (predicted %.3es)\n",
		syncRes.Best.Name, syncRes.Best.Predicted)

	program := func(ctx *bsp.Ctx) error {
		area := make([]float64, ctx.NProcs())
		ctx.PushReg("x", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		right := (ctx.Pid() + 1) % ctx.NProcs()
		if err := ctx.Put(right, "x", ctx.Pid(), []float64{1}); err != nil {
			return err
		}
		return ctx.Sync()
	}
	base, err := sess.RunBSP(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	adaptedSess, err := hbsp.New(m, hbsp.WithSeed(7),
		hbsp.WithScheduleSynchronizer(syncRes.Best.Pattern))
	if err != nil {
		log.Fatal(err)
	}
	adapted, err := adaptedSess.RunBSP(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dissemination sync makespan: %.3es\n", base.MakeSpan)
	fmt.Printf("adapted sync makespan:       %.3es\n", adapted.MakeSpan)
}

// Example collectives builds one schedule per collective, verifies each
// against its own semantics with the knowledge recursion, prices it with the
// matrix cost model, and finally lets the model-selected hybrid schedule run
// the BSP count exchange in place of the dissemination default.
package main

import (
	"fmt"
	"log"

	"hbsp/internal/barrier"
	"hbsp/internal/bench"
	"hbsp/internal/bsp"
	"hbsp/internal/platform"
)

func main() {
	log.SetFlags(0)
	const procs = 16

	prof := platform.Xeon8x2x4()
	m, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}
	params, err := bench.ModelParams(m, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Every collective, verified per its own semantics and priced by the
	// same model that prices barrier stages.
	pats, err := barrier.Collectives(procs, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-14s %8s %12s\n", "collective", "semantics", "stages", "predicted")
	for _, name := range []string{"broadcast", "reduce", "allreduce", "allgather", "total-exchange"} {
		pat := pats[name]
		pred, err := barrier.Predict(pat, params, barrier.CostOptionsFor(pat.Semantics))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-14s %8d %11.3es\n", pat.Name, pat.Semantics, pat.NumStages(), pred.Total)
	}

	// Model-driven synchronizer selection: the greedy construction of
	// Chapter 7 costed with the count payload, executed by the runtime.
	sync, res, err := bsp.NewAdaptedSynchronizer(params, barrier.DefaultCostOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected count-exchange schedule: %s (predicted %.3es)\n", sync.Name(), res.Best.Predicted)

	program := func(ctx *bsp.Ctx) error {
		area := make([]float64, ctx.NProcs())
		ctx.PushReg("x", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		right := (ctx.Pid() + 1) % ctx.NProcs()
		if err := ctx.Put(right, "x", ctx.Pid(), []float64{1}); err != nil {
			return err
		}
		return ctx.Sync()
	}
	base, err := bsp.Run(m.WithRunSeed(7), program)
	if err != nil {
		log.Fatal(err)
	}
	adapted, err := bsp.RunWith(m.WithRunSeed(7), sync, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dissemination sync makespan: %.3es\n", base.MakeSpan)
	fmt.Printf("adapted sync makespan:       %.3es\n", adapted.MakeSpan)
}

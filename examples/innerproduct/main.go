// Inner product (bspinprod): the Section 3.1 strong-scaling experiment. The
// distributed inner product is executed with the BSP run-time on the
// simulated Xeon cluster for growing process counts and compared against the
// classic scalar BSP estimate built from bspbench parameters — reproducing
// the Fig. 3.2 observation that the scalar model misprices the program. The
// partial sums are combined with the schedule-driven AllReduce collective,
// so the total is bit-identical on every process.
package main

import (
	"context"
	"fmt"
	"log"

	"hbsp"
	"hbsp/bench"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/kernels"
)

const n = 1 << 22 // problem size (elements)

func main() {
	log.SetFlags(0)
	prof := cluster.Xeon8x2x4()

	fmt.Printf("%-6s %-14s %-14s %-14s %s\n", "P", "measured [s]", "estimate [s]", "serial dot", "check")
	for _, procs := range []int{8, 16, 32, 64} {
		machine, err := prof.Machine(procs)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := hbsp.New(machine)
		if err != nil {
			log.Fatal(err)
		}

		// Classic parameters from bspbench at this process count.
		cfg := bench.DefaultBSPBenchConfig()
		cfg.MaxH = 128
		bres, err := bench.BSPBench(machine, cfg)
		if err != nil {
			log.Fatal(err)
		}
		estimate, err := bres.Params().InnerProductCost(n)
		if err != nil {
			log.Fatal(err)
		}

		// The actual bspinprod program, computing real values.
		totals := make([]float64, procs)
		res, err := sess.RunBSP(context.Background(), func(ctx *bsp.Ctx) error {
			p := ctx.NProcs()
			local := n / p
			x := make([]float64, local)
			y := make([]float64, local)
			for i := range x {
				gi := ctx.Pid()*local + i
				x[i] = float64(gi%13) / 13
				y[i] = float64(gi%7) / 7
			}
			if err := ctx.Sync(); err != nil {
				return err
			}
			sum, err := kernels.RunDot(x, y)
			if err != nil {
				return err
			}
			ctx.ComputeKernel(kernels.Dot, local, 1)
			total, err := ctx.AllReduce([]float64{sum}, bsp.OpSum)
			if err != nil {
				return err
			}
			ctx.ComputeKernel(kernels.Asum, p, 1)
			totals[ctx.Pid()] = total[0]
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}

		// Serial reference for correctness.
		want := 0.0
		local := n / procs
		for gi := 0; gi < local*procs; gi++ {
			want += float64(gi%13) / 13 * float64(gi%7) / 7
		}
		check := "ok"
		// Parallel and serial summation orders differ, so allow a relative
		// rounding tolerance.
		if diff := totals[0] - want; diff > 1e-9*want || diff < -1e-9*want {
			check = fmt.Sprintf("MISMATCH (%g vs %g)", totals[0], want)
		}
		fmt.Printf("%-6d %-14.3e %-14.3e %-14.4g %s\n", procs, res.MakeSpan, estimate, totals[0], check)
	}
}

// Barrier tuning (Case Study I): benchmark the pairwise latency matrix of a
// cluster, cluster the processes into latency-homogeneous subsets, let the
// greedy model-driven construction pick a hierarchical hybrid barrier, and
// verify in simulation that it beats the flat system defaults.
package main

import (
	"fmt"
	"log"

	"hbsp/bench"
	"hbsp/cluster"
	"hbsp/collective"
)

func main() {
	log.SetFlags(0)
	const procs = 48
	prof := cluster.Xeon8x2x4()
	machine, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}

	// Architectural profile: benchmarked pairwise parameter matrices.
	pair, err := bench.MeasurePairwise(machine, bench.DefaultPairwiseOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Subset-size selection and greedy construction.
	result, err := collective.Greedy(pair.Params(), collective.DefaultCostOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clustering: %s\n", result.Clustering)
	fmt.Println("candidates (predicted cost):")
	for _, c := range result.Candidates {
		fmt.Printf("  %-28s %.3e s\n", c.Name, c.Predicted)
	}

	// Validate the winner against the flat defaults in simulation.
	fmt.Println("\nmeasured (mean worst-case over 8 repetitions):")
	adapted, err := collective.Measure(machine, result.Best.Pattern, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %.3e s\n", "adapted: "+result.Best.Name, adapted.MeanWorst)
	flat, err := collective.MeasureAlgorithms(machine, 8)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"dissemination", "tree", "linear"} {
		fmt.Printf("  %-28s %.3e s\n", "flat "+name, flat[name].MeanWorst)
	}
}

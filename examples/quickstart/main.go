// Quickstart: build a synthetic cluster platform, benchmark its pairwise
// communication parameters, assemble a heterogeneous superstep model for a
// small SPMD computation, and compare the model's prediction against the
// simulated execution.
package main

import (
	"fmt"
	"log"

	"hbsp/internal/barrier"
	"hbsp/internal/bench"
	"hbsp/internal/bsp"
	"hbsp/internal/core"
	"hbsp/internal/kernels"
	"hbsp/internal/matrix"
	"hbsp/internal/platform"
)

func main() {
	log.SetFlags(0)
	const procs = 16
	const localElems = 64 * 1024

	// 1. Instantiate a platform profile (8 nodes × 2 sockets × 4 cores).
	prof := platform.Xeon8x2x4()
	machine, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s\n", machine)

	// 2. Benchmark the pairwise latency/overhead/bandwidth matrices.
	pair, err := bench.MeasurePairwise(machine, bench.DefaultPairwiseOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmarked %dx%d parameter matrices (max latency %.1f us)\n",
		procs, procs, pair.Latency.Max()*1e6)

	// 3. Predict the synchronization cost of a superstep.
	diss, err := barrier.Dissemination(procs)
	if err != nil {
		log.Fatal(err)
	}
	syncPred, err := barrier.Predict(barrier.WithSyncPayload(diss, 4), pair.Params(), barrier.DefaultCostOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Assemble the superstep model: every process applies the DAXPY
	// kernel to its local block and sends one 8 KiB message to its right
	// neighbour.
	req := core.UniformRequirement(procs, []float64{localElems})
	cost := matrix.NewDense(procs, 1)
	msgs := matrix.NewDense(procs, procs)
	data := matrix.NewDense(procs, procs)
	for p := 0; p < procs; p++ {
		cost.Set(p, 0, prof.SecondsPerElement(p%prof.Topology.Nodes, kernels.DAXPY, localElems))
		next := (p + 1) % procs
		msgs.Set(p, next, 1)
		data.Set(p, next, 8*1024)
	}
	step := core.Superstep{
		Compute:      core.ComputeModel{Requirement: req, Cost: cost},
		Comm:         core.CommModel{Messages: msgs, Latency: pair.Latency, Data: data, Beta: pair.Beta},
		SyncCost:     syncPred.Total,
		MaskableComm: 1,
		MaskableComp: 0.9,
	}
	pred, err := step.Predict()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted superstep time: %.3e s (sync %.3e s, imbalance %.1f%%)\n",
		pred.Total, syncPred.Total, 100*core.Imbalance(pred.CompTimes))

	// 5. Execute the same superstep on the simulated platform with the BSP
	// run-time and compare.
	res, err := bsp.Run(machine, func(ctx *bsp.Ctx) error {
		buf := make([]float64, 1024)
		ctx.PushReg("buf", buf)
		if err := ctx.Sync(); err != nil {
			return err
		}
		next := (ctx.Pid() + 1) % ctx.NProcs()
		if err := ctx.Put(next, "buf", 0, make([]float64, 1024)); err != nil {
			return err
		}
		ctx.ComputeKernel(kernels.DAXPY, localElems, 1)
		return ctx.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated superstep time: %.3e s\n", res.MakeSpan)
	fmt.Printf("prediction / measurement: %.2f\n", pred.Total/res.MakeSpan)
}

// Quickstart: build a synthetic cluster platform, wrap it in an hbsp.Session,
// benchmark its pairwise communication parameters, predict the cost of the
// synchronization and of a collective with the matrix cost model, and compare
// the predictions against the simulated execution through the facade.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"hbsp"
	"hbsp/bench"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/kernels"
	"hbsp/matrix"
	"hbsp/model"
)

func main() {
	log.SetFlags(0)
	const procs = 16
	const localElems = 64 * 1024

	// 1. Instantiate a platform profile (8 nodes × 2 sockets × 4 cores) and
	// wrap it in a session: the machine is validated here, and every run
	// below inherits the seed and deadline.
	prof := cluster.Xeon8x2x4()
	machine, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := hbsp.New(machine, hbsp.WithSeed(1), hbsp.WithDeadline(time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s\n", machine)

	// 2. Benchmark the pairwise latency/overhead/bandwidth matrices — the
	// matrix-valued BSP parameters that replace the classic scalars.
	pair, err := bench.MeasurePairwise(machine, bench.DefaultPairwiseOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmarked %dx%d parameter matrices (max latency %.1f us)\n",
		procs, procs, pair.Latency.Max()*1e6)

	// 3. Predict the synchronization cost of a superstep: the dissemination
	// schedule carrying the count-exchange payload, priced by the cost model
	// on the benchmarked matrices.
	diss, err := collective.Dissemination(procs)
	if err != nil {
		log.Fatal(err)
	}
	syncPred, err := collective.Predict(collective.WithSyncPayload(diss, 4),
		pair.Params(), collective.DefaultCostOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted synchronization cost: %.3e s\n", syncPred.Total)

	// 4. Assemble the heterogeneous superstep model: every process applies
	// the DAXPY kernel to its local block and sends one 8 KiB message to its
	// right neighbour; the model prices computation, communication and the
	// synchronization from step 3.
	req := model.UniformRequirement(procs, []float64{localElems})
	cost := matrix.NewDense(procs, 1)
	msgs := matrix.NewDense(procs, procs)
	data := matrix.NewDense(procs, procs)
	for p := 0; p < procs; p++ {
		cost.Set(p, 0, prof.SecondsPerElement(p%prof.Topology.Nodes, kernels.DAXPY, localElems))
		next := (p + 1) % procs
		msgs.Set(p, next, 1)
		data.Set(p, next, 8*1024)
	}
	step := model.Superstep{
		Compute:      model.ComputeModel{Requirement: req, Cost: cost},
		Comm:         model.CommModel{Messages: msgs, Latency: pair.Latency, Data: data, Beta: pair.Beta},
		SyncCost:     syncPred.Total,
		MaskableComm: 1,
		MaskableComp: 0.9,
	}
	pred, err := step.Predict()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted superstep time: %.3e s (imbalance %.1f%%)\n",
		pred.Total, 100*model.Imbalance(pred.CompTimes))

	// 5. Execute the same superstep through the session and compare.
	res, err := sess.RunBSP(context.Background(), func(ctx *bsp.Ctx) error {
		buf := make([]float64, 1024)
		ctx.PushReg("buf", buf)
		if err := ctx.Sync(); err != nil {
			return err
		}
		next := (ctx.Pid() + 1) % ctx.NProcs()
		if err := ctx.Put(next, "buf", 0, make([]float64, 1024)); err != nil {
			return err
		}
		ctx.ComputeKernel(kernels.DAXPY, localElems, 1)
		return ctx.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated superstep time: %.3e s (prediction / measurement %.2f)\n",
		res.MakeSpan, pred.Total/res.MakeSpan)

	// 6. The same cost model prices any collective: predict the allreduce
	// schedule and compare against the user-facing AllReduce executing that
	// schedule through the facade.
	ar, err := collective.AllReduce(procs, 8)
	if err != nil {
		log.Fatal(err)
	}
	arPred, err := collective.Predict(ar, pair.Params(), collective.CostOptionsFor(collective.SemAllReduce))
	if err != nil {
		log.Fatal(err)
	}
	var measured float64
	_, err = sess.RunBSP(context.Background(), func(ctx *bsp.Ctx) error {
		t0 := ctx.Time()
		if _, err := ctx.AllReduce([]float64{float64(ctx.Pid())}, bsp.OpSum); err != nil {
			return err
		}
		if ctx.Pid() == 0 {
			measured = ctx.Time() - t0
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allreduce: predicted %.3e s, simulated %.3e s (ratio %.2f)\n",
		arPred.Total, measured, arPred.Total/measured)
}

// Server: the prediction service end to end. The example starts an
// in-process hbspd server on a loopback socket, posts a single-point
// prediction (watching the result cache turn a repeat into a byte-identical
// hit), streams a P × bytes sweep as NDJSON the way a client would read it,
// uploads raw pairwise matrices, and shows the documented JSON error shape
// for an invalid fault plan. Virtual times are deterministic, so the output
// is golden-checked by the examples-smoke CI job.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"hbsp/server"
)

func main() {
	log.SetFlags(0)

	// An in-process server on a loopback socket — the same handler cmd/hbspd
	// serves, minus the daemon scaffolding.
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	// A single-point prediction: the dissemination barrier on the Xeon
	// preset. The same body again is answered from the result cache,
	// byte-identically.
	body := `{"profile":{"preset":"xeon-8x2x4"},"workload":{"kind":"barrier"},"procs":16}`
	first, hdr1 := post(base, body)
	second, hdr2 := post(base, body)
	var pt server.PredictPoint
	if err := json.Unmarshal(first, &pt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("barrier P=%d: makespan %.4e s, %d messages (cache %s)\n", pt.Procs, pt.MakeSpan, pt.Messages, hdr1)
	fmt.Printf("repeat: cache %s, byte-identical %v\n", hdr2, bytes.Equal(first, second))

	// A sweep streams NDJSON: one PredictPoint per line, row-major over the
	// axes, each line readable as soon as it arrives.
	sweep := `{"profile":{"preset":"xeon-8x2x4"},"workload":{"kind":"allreduce"},"sweep":{"procs":[4,8],"bytes":[8,256]}}`
	resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(sweep))
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var p server.PredictPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("allreduce P=%-2d %4dB: makespan %.4e s, %d bytes moved\n", p.Procs, p.Bytes, p.MakeSpan, p.BytesMoved)
	}
	resp.Body.Close()

	// Uploaded matrices: a 4-rank machine given directly as pairwise LogGP
	// parameters, validated server-side.
	matrix := `{"profile":{"matrices":{
		"latency":[[0,1e-6,2e-6,2e-6],[1e-6,0,2e-6,2e-6],[2e-6,2e-6,0,1e-6],[2e-6,2e-6,1e-6,0]],
		"beta":[[0,1e-9,2e-9,2e-9],[1e-9,0,2e-9,2e-9],[2e-9,2e-9,0,1e-9],[2e-9,2e-9,1e-9,0]],
		"selfOverhead":1e-7}},
		"workload":{"kind":"totalexchange","bytes":64},"procs":4}`
	mp, _ := post(base, matrix)
	var mpt server.PredictPoint
	if err := json.Unmarshal(mp, &mpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded 4x4 matrices, totalexchange: makespan %.4e s, fingerprint %s...\n",
		mpt.MakeSpan, mpt.ProfileFingerprint[:12])

	// Errors are a documented JSON shape; an out-of-range fault plan maps to
	// invalid_fault with HTTP 400.
	bad := `{"profile":{"preset":"xeon-8x2x4"},"workload":{"kind":"barrier"},"procs":8,
		"faults":{"Slowdowns":[{"Rank":64,"Factor":2}]}}`
	req, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(bad))
	if err != nil {
		log.Fatal(err)
	}
	var apiErr struct {
		Err struct {
			Code   string `json:"code"`
			Status int    `json:"status"`
		} `json:"error"`
	}
	if err := json.NewDecoder(req.Body).Decode(&apiErr); err != nil {
		log.Fatal(err)
	}
	req.Body.Close()
	fmt.Printf("invalid fault plan: HTTP %d, code %s\n", req.StatusCode, apiErr.Err.Code)
}

// post sends one prediction request and returns the body plus the cache
// header.
func post(base, body string) ([]byte, string) {
	resp, err := http.Post(base+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != 200 && resp.StatusCode != 400 {
		log.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes(), resp.Header.Get("X-Hbspd-Cache")
}

// Stencil (Case Study II): run the 5-point Laplacian stencil in its BSP,
// MPI, restructured-MPI and hybrid variants on the simulated cluster, verify
// that all variants compute the same result, predict the BSP iteration time
// with the framework, and use the model to pick the overlap split.
package main

import (
	"fmt"
	"log"

	"hbsp/cluster"
	"hbsp/stencil"
)

func main() {
	log.SetFlags(0)
	const procs = 16
	cfg := stencil.Config{N: 512, Iterations: 4, C: 0.2}

	prof := cluster.Xeon8x2x4()
	machine, err := prof.Machine(procs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dx%d grid, %d iterations, %d processes\n\n", cfg.N, cfg.N, cfg.Iterations, procs)
	fmt.Printf("%-10s %-16s %-16s %s\n", "variant", "wall time [s]", "per iter [s]", "checksum")

	bspRes, err := stencil.RunBSP(machine, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	mpiRes, err := stencil.RunMPI(machine, cfg)
	if err != nil {
		log.Fatal(err)
	}
	mpirRes, err := stencil.RunMPIRestructured(machine, cfg)
	if err != nil {
		log.Fatal(err)
	}
	hybridRes, err := stencil.RunHybrid(prof, 4, cfg, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range []*stencil.RunResult{bspRes, mpiRes, mpirRes, hybridRes} {
		fmt.Printf("%-10s %-16.3e %-16.3e %.6f\n", r.Implementation, r.WallTime, r.PerIteration, r.Checksum)
	}

	// Model prediction for the BSP variant.
	params, err := stencil.GroundTruthParams(prof, procs)
	if err != nil {
		log.Fatal(err)
	}
	pred, err := stencil.PredictIteration(prof, params, procs, cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredicted BSP iteration time: %.3e s (measured %.3e s)\n", pred.Total, bspRes.PerIteration)

	// Model-driven choice of the overlap split (Section 8.6).
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	sweep, err := stencil.PredictOverlapSweep(prof, params, procs, cfg, fractions)
	if err != nil {
		log.Fatal(err)
	}
	best, err := stencil.OptimalOverlap(sweep, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noverlap adaptation sweep (predicted / measured per iteration):")
	for _, pt := range sweep {
		meas, err := stencil.RunBSP(machine, cfg, pt.Fraction)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if pt.Fraction == best.Fraction {
			marker = "  <- selected by the model"
		}
		fmt.Printf("  f=%.2f  %.3e s / %.3e s%s\n", pt.Fraction, pt.Predicted, meas.PerIteration, marker)
	}
}

// Session: the public-SDK tour. A user program outside internal/ builds a
// machine from a platform preset, wraps it in an hbsp.Session with
// functional options, runs a BSP program with the schedule-driven user
// collectives, demonstrates context cancellation with the facade's typed
// errors, and swaps the superstep synchronizer for a verified collective
// schedule.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"hbsp"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
)

func main() {
	log.SetFlags(0)
	const procs = 16

	// A machine: the Xeon preset instantiated for 16 ranks.
	machine, err := cluster.Xeon8x2x4().Machine(procs)
	if err != nil {
		log.Fatal(err)
	}

	// A session: functional options instead of option structs.
	var supersteps int
	sess, err := hbsp.New(machine,
		hbsp.WithSeed(42),
		hbsp.WithDeadline(time.Minute),
		hbsp.WithTrace(func(ev hbsp.TraceEvent) {
			if ev.Kind == "superstep" && ev.Rank == 0 {
				supersteps++
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session: %s\n", machine)

	// A BSP program using the user collectives: every process contributes
	// its rank, AllReduce sums the contributions identically everywhere,
	// AllGather collects one block per process, and the root broadcasts a
	// result vector.
	res, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		sum, err := c.AllReduce([]float64{float64(c.Pid())}, bsp.OpSum)
		if err != nil {
			return err
		}
		blocks, err := c.AllGather([]float64{float64(c.Pid() * c.Pid())})
		if err != nil {
			return err
		}
		verdict := []float64{sum[0], blocks[c.NProcs()-1][0]}
		if _, err := c.Broadcast(0, verdict); err != nil {
			return err
		}
		if c.Pid() == 0 {
			fmt.Printf("allreduce sum: %g, last gathered block: %g\n", verdict[0], verdict[1])
		}
		return c.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("virtual makespan: %.3es over %d supersteps (%d messages)\n",
		res.MakeSpan, supersteps, res.Messages)

	// Context cancellation: a program that deadlocks (process 0 deserts the
	// superstep) is aborted through the context, surfacing the typed error.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	_, err = sess.RunBSP(ctx, func(c *bsp.Ctx) error {
		if c.Pid() == 0 {
			return nil
		}
		return c.Sync()
	})
	fmt.Printf("cancelled run: aborted=%v deadline=%v\n",
		errors.Is(err, hbsp.ErrAborted), errors.Is(err, hbsp.ErrDeadline))

	// Options compose: the superstep synchronizer can be any verified
	// collective schedule. Here the Chapter 5 tree barrier replaces the
	// dissemination default, bit-for-bit deterministic either way.
	tree, err := collective.Tree(procs)
	if err != nil {
		log.Fatal(err)
	}
	treeSess, err := hbsp.New(machine, hbsp.WithSeed(42), hbsp.WithScheduleSynchronizer(tree))
	if err != nil {
		log.Fatal(err)
	}
	program := func(c *bsp.Ctx) error { return c.Sync() }
	base, err := sess.RunBSP(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	treed, err := treeSess.RunBSP(context.Background(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-superstep makespan, dissemination sync: %.3es\n", base.MakeSpan)
	fmt.Printf("one-superstep makespan, tree-schedule sync: %.3es\n", treed.MakeSpan)

	// Validation is part of the facade: a structurally broken profile is
	// rejected at New with a typed error instead of NaN-propagating.
	broken := cluster.Xeon8x2x4()
	broken.SelfOverhead = 0
	bm, err := broken.Machine(8)
	if err != nil {
		log.Fatal(err)
	}
	_, err = hbsp.New(bm)
	fmt.Printf("broken profile rejected: %v\n", errors.Is(err, hbsp.ErrInvalidMachine))
}

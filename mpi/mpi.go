// Package mpi is the public surface of the MPI-flavoured message-passing
// layer: blocking and non-blocking point-to-point communication, persistent
// requests with Startall/WaitAll semantics, the built-in point-to-point
// collectives (Barrier, Bcast, Allreduce, Allgather), and the
// schedule-driven collectives (BcastSchedule, AllreduceSchedule, ...) that
// execute verified collective.Pattern schedules with user data.
//
// Programs are normally started through an hbsp.Session (hbsp.New +
// Session.RunMPI), which adds functional options, machine validation and
// context cancellation; RunContext is the lower-level entry point it uses.
package mpi

import (
	"context"

	impi "hbsp/internal/mpi"

	"hbsp/sim"
)

// Comm is the communicator handle each simulated rank receives.
type Comm = impi.Comm

// PersistentRequest is a reusable description of one transfer, activated by
// Startall and completed by WaitAllPersistent.
type PersistentRequest = impi.PersistentRequest

// Op is a reduction operator for Allreduce.
type Op = impi.Op

// Schedule is the stage-graph view of a verified collective schedule the
// Comm schedule collectives execute; collective.Pattern satisfies it.
type Schedule = impi.Schedule

// Standard reduction operators.
var (
	OpSum = impi.OpSum
	OpMax = impi.OpMax
	OpMin = impi.OpMin
)

// ErrInvalidRoot is returned by collectives validating a root rank.
var ErrInvalidRoot = impi.ErrInvalidRoot

// BarrierObserver is notified on every rank after each completed Barrier —
// the MPI analogue of a superstep boundary; hbsp.WithTrace installs one.
type BarrierObserver = impi.BarrierObserver

// RunContext executes body once per rank of the machine with explicit
// simulator options and a cancellable context.
func RunContext(ctx context.Context, m sim.Machine, body func(c *Comm) error, o sim.Options) (*sim.Result, error) {
	return impi.RunContext(ctx, m, body, o)
}

// RunObserved is RunContext with a barrier observer called on every rank
// after each completed Barrier.
func RunObserved(ctx context.Context, m sim.Machine, body func(c *Comm) error, o sim.Options, obs BarrierObserver) (*sim.Result, error) {
	return impi.RunObserved(ctx, m, body, o, obs)
}

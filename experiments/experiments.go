// Package experiments is the public surface of the evaluation driver: one
// function per table and figure of the thesis' evaluation, each running its
// simulation points on the parallel sweep engine, plus the RunAll report
// that cmd/experiments prints. Sweep sizes are configured with Quick (CI,
// seconds) or Full (complete sweeps, minutes).
package experiments

import (
	"io"

	iexp "hbsp/internal/experiments"

	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/sim"
)

// Options select the sweep sizes of every experiment.
type Options = iexp.Options

// Table is a formatted result table.
type Table = iexp.Table

// Result row/point types of the individual experiments.
type (
	BSPBenchRow           = iexp.BSPBenchRow
	InnerProductPoint     = iexp.InnerProductPoint
	RatePoint             = iexp.RatePoint
	KernelPredictionPoint = iexp.KernelPredictionPoint
	BLASPoint             = iexp.BLASPoint
	BarrierPoint          = iexp.BarrierPoint
	SyncPoint             = iexp.SyncPoint
	ClusteringResult      = iexp.ClusteringResult
	HybridPoint           = iexp.HybridPoint
	CollectivePoint       = iexp.CollectivePoint
	CollapsePoint         = iexp.CollapsePoint
	StragglerPoint        = iexp.StragglerPoint
	RecoveryPoint         = iexp.RecoveryPoint
	AdaptedSyncPoint      = iexp.AdaptedSyncPoint
	StencilConfigRow      = iexp.StencilConfigRow
	WallTimeRow           = iexp.WallTimeRow
	ScalingPoint          = iexp.ScalingPoint
	PredictionPoint       = iexp.PredictionPoint
	OverlapSweepPoint     = iexp.OverlapSweepPoint
)

// Quick returns the reduced sweep sizes of the fast sanity pass.
func Quick() Options { return iexp.Quick() }

// Full returns the complete sweep sizes of the evaluation.
func Full() Options { return iexp.Full() }

// RunAll regenerates every table and figure and writes the report to w.
func RunAll(w io.Writer, opts Options) error { return iexp.RunAll(w, opts) }

// Chapter 3: classic scalar BSP parameters and the inner-product comparison.
func Table3_1(prof *cluster.Profile, opts Options) ([]BSPBenchRow, error) {
	return iexp.Table3_1(prof, opts)
}
func Table3_1Table(rows []BSPBenchRow) *Table { return iexp.Table3_1Table(rows) }
func Fig3_2(prof *cluster.Profile, paramRows []BSPBenchRow, n int, opts Options) ([]InnerProductPoint, error) {
	return iexp.Fig3_2(prof, paramRows, n, opts)
}

// Chapter 4: computational rates.
func Fig4_2(prof *cluster.Profile) ([]RatePoint, error) { return iexp.Fig4_2(prof) }
func Fig4_3(prof *cluster.Profile, opts Options) ([]KernelPredictionPoint, error) {
	return iexp.Fig4_3(prof, opts)
}
func Fig4_5(prof *cluster.Profile, maxBytes float64) ([]BLASPoint, error) {
	return iexp.Fig4_5(prof, maxBytes)
}

// Chapter 5/6: barrier cost model and the payload-extended synchronization.
func Fig5_6Series(prof *cluster.Profile, maxProcs int, opts Options) ([]BarrierPoint, error) {
	return iexp.Fig5_6Series(prof, maxProcs, opts)
}
func BarrierTable(title string, points []BarrierPoint) *Table {
	return iexp.BarrierTable(title, points)
}
func Fig6_3Series(prof *cluster.Profile, maxProcs int, opts Options) ([]SyncPoint, error) {
	return iexp.Fig6_3Series(prof, maxProcs, opts)
}

// Chapter 7 (Case Study I): clustering and the adapted barrier.
func Table7_1(prof *cluster.Profile, procs int) (*ClusteringResult, error) {
	return iexp.Table7_1(prof, procs)
}
func Fig7_4Series(prof *cluster.Profile, maxProcs int, opts Options) ([]HybridPoint, error) {
	return iexp.Fig7_4Series(prof, maxProcs, opts)
}

// Collectives: measured vs predicted, and the adapted synchronizer end to
// end.
func CollectiveSeries(prof *cluster.Profile, maxProcs int, opts Options) ([]CollectivePoint, error) {
	return iexp.CollectiveSeries(prof, maxProcs, opts)
}
func CollectiveTable(title string, points []CollectivePoint) *Table {
	return iexp.CollectiveTable(title, points)
}
func AdaptedSyncSeries(prof *cluster.Profile, maxProcs int, opts Options) ([]AdaptedSyncPoint, error) {
	return iexp.AdaptedSyncSeries(prof, maxProcs, opts)
}

// CollapseScalingSeries evaluates the superstep count exchange on flat
// homogeneous clusters at the given rank counts through the
// symmetry-collapsed direct evaluator — the P=4096 → P=1M scaling study.
func CollapseScalingSeries(procsList []int) ([]CollapsePoint, error) {
	return iexp.CollapseScalingSeries(procsList)
}
func CollapseScalingTable(title string, points []CollapsePoint) *Table {
	return iexp.CollapseScalingTable(title, points)
}

// SweepSeriesPoint is one point of an incremental parameter sweep.
type SweepSeriesPoint = iexp.SweepSeriesPoint

// BytesSweepSeries sweeps the total-exchange block size at a fixed rank
// count through per-worker sched.SweepEvaluators: after the first point each
// worker only re-prices the message terms of its cached term tape instead of
// re-simulating every edge. Results are bit-identical to (and ordered like)
// the sequential loop of independent runs it replaces.
func BytesSweepSeries(prof *cluster.Profile, procs int, payloads []int) ([]SweepSeriesPoint, error) {
	return iexp.BytesSweepSeries(prof, procs, payloads)
}

// ScaleSweepSeries sweeps a uniform LogGP scaling of the profile over the
// total-exchange at a fixed rank count and payload, with the same
// incremental reuse as BytesSweepSeries (scaled profiles stay
// term-compatible, so term tapes persist across points).
func ScaleSweepSeries(prof *cluster.Profile, procs, payload int, scales []float64) ([]SweepSeriesPoint, error) {
	return iexp.ScaleSweepSeries(prof, procs, payload, scales)
}

// SweepSeriesTable renders incremental sweep points.
func SweepSeriesTable(title string, points []SweepSeriesPoint) *Table {
	return iexp.SweepSeriesTable(title, points)
}
func AdaptedSyncTable(title string, points []AdaptedSyncPoint) *Table {
	return iexp.AdaptedSyncTable(title, points)
}

// StragglerSeries sweeps the slowdown factor of a single straggling rank
// across repeated count exchanges on the flat homogeneous cluster, comparing
// the simulated makespan inflation against the first-order LogGP prediction.
func StragglerSeries(procs, execs int, factors []float64) ([]StragglerPoint, error) {
	return iexp.StragglerSeries(procs, execs, factors)
}
func StragglerTable(title string, points []StragglerPoint) *Table {
	return iexp.StragglerTable(title, points)
}

// RecoverySeries crashes one rank halfway through the run and sweeps the
// checkpoint interval, comparing the simulated makespan inflation against
// the checkpoint/restart accounting model.
func RecoverySeries(procs, execs int, fractions []float64) ([]RecoveryPoint, error) {
	return iexp.RecoverySeries(procs, execs, fractions)
}
func RecoveryTable(title string, points []RecoveryPoint) *Table {
	return iexp.RecoveryTable(title, points)
}

// SyncExchangeProgram is the shared BSP workload of the synchronizer
// benchmarks.
func SyncExchangeProgram(ctx *bsp.Ctx) error { return iexp.SyncExchangeProgram(ctx) }

// SendRecvRingProgram is the shared point-to-point workload of the
// send_recv benchmarks (untraced and recorder-attached).
func SendRecvRingProgram(p *sim.Proc) error { return iexp.SendRecvRingProgram(p) }

// Chapter 8 (Case Study II): the stencil evaluation.
func Table8_1(opts Options) []StencilConfigRow     { return iexp.Table8_1(opts) }
func Table8_1Table(rows []StencilConfigRow) *Table { return iexp.Table8_1Table(rows) }
func Table8_2(prof *cluster.Profile, opts Options) ([]WallTimeRow, error) {
	return iexp.Table8_2(prof, opts)
}
func Fig8_4Series(prof *cluster.Profile, gridN int, implementations []string, opts Options) ([]ScalingPoint, error) {
	return iexp.Fig8_4Series(prof, gridN, implementations, opts)
}
func Fig8_10Series(prof *cluster.Profile, opts Options) ([]PredictionPoint, error) {
	return iexp.Fig8_10Series(prof, opts)
}
func Fig8_18Series(prof *cluster.Profile, procs int, opts Options) ([]OverlapSweepPoint, error) {
	return iexp.Fig8_18Series(prof, procs, opts)
}

// Trace analysis: critical-path and wait-time explanations of the barrier
// sweeps (see the trace package for the underlying analysis passes).
type TraceBreakdownPoint = iexp.TraceBreakdownPoint

// TraceBreakdownSeries traces one dissemination barrier execution per
// process count and extracts the critical-path explanation of each point.
func TraceBreakdownSeries(prof *cluster.Profile, procsList []int, opts Options) ([]TraceBreakdownPoint, error) {
	return iexp.TraceBreakdownSeries(prof, procsList, opts)
}

// ConsecutiveProcs returns the inclusive range lo..hi, the sweep that makes
// odd/even placement effects visible.
func ConsecutiveProcs(lo, hi int) []int { return iexp.ConsecutiveProcs(lo, hi) }

// TraceBreakdownTable renders trace breakdown points.
func TraceBreakdownTable(title string, points []TraceBreakdownPoint) *Table {
	return iexp.TraceBreakdownTable(title, points)
}

// Package trace is the public surface of the tracing and analysis
// subsystem: a Recorder that the simulator fills with per-event observations
// (message injections, receive completions, compute intervals, superstep and
// collective-stage boundaries), the merged deterministic Trace it yields,
// analysis passes (critical-path extraction, per-rank and per-superstep time
// breakdowns, straggler attribution, h-relation statistics), and exporters
// to Chrome trace-event JSON (loadable in chrome://tracing and Perfetto) and
// a compact text report.
//
// Attach a recorder to a session with hbsp.WithRecorder:
//
//	rec := trace.NewRecorder()
//	rec.SetLabel("my workload")
//	s, _ := hbsp.New(machine, hbsp.WithSeed(42), hbsp.WithRecorder(rec))
//	s.RunBSP(ctx, program)
//	tr, _ := rec.Trace()
//	trace.WriteReport(os.Stdout, tr, trace.ReportOptions{})
//	trace.WriteChrome(chromeFile, tr)
//
// Recording is lock-free on the simulator's hot path (per-rank append-only
// lanes) and merged deterministically afterwards, so two runs with the same
// seed produce byte-identical traces. A nil recorder (trace.Disabled) is the
// no-op fast path: its per-event cost is one pointer test, benchmarked by
// BenchmarkTraceOverhead at the repository root.
package trace

import (
	"io"

	itrace "hbsp/internal/trace"
)

// Recorder accumulates the events of one simulation run; create one with
// NewRecorder and attach it with hbsp.WithRecorder (or sim.Options.Recorder).
// A Recorder records one run at a time and must not be shared by concurrent
// runs — give each run of a parallel sweep its own recorder.
type Recorder = itrace.Recorder

// Trace is the merged, immutable view of one recorded run.
type Trace = itrace.Trace

// Event is one recorded observation; Kind classifies it.
type (
	Event = itrace.Event
	Kind  = itrace.Kind
)

// Event kinds.
const (
	KindCompute   = itrace.KindCompute
	KindSend      = itrace.KindSend
	KindRecvWait  = itrace.KindRecvWait
	KindSendWait  = itrace.KindSendWait
	KindAdvance   = itrace.KindAdvance
	KindSuperstep = itrace.KindSuperstep
	KindStage     = itrace.KindStage
	// KindFault is a fail-stop recovery interval injected by a fault.Plan.
	KindFault = itrace.KindFault
)

// Meta labels a recorded run (procs, seed, machine, workload).
type Meta = itrace.Meta

// Analysis result types.
type (
	// Breakdown attributes every rank's wall time to categories, overall
	// and per superstep.
	Breakdown     = itrace.Breakdown
	RankBreakdown = itrace.RankBreakdown
	StepBreakdown = itrace.StepBreakdown
	// Category buckets busy and blocked time in breakdowns.
	Category = itrace.Category
	// CriticalPath is the chain of compute intervals and gating messages
	// that determines the makespan.
	CriticalPath = itrace.CriticalPath
	PathHop      = itrace.PathHop
	// HRelation summarizes one superstep's communication relation.
	HRelation = itrace.HRelation
	// Straggler pairs a rank with its end-of-run slack.
	Straggler = itrace.Straggler
)

// Breakdown categories, in report order (also see Categories).
const (
	CatCompute   = itrace.CatCompute
	CatSend      = itrace.CatSend
	CatStraggler = itrace.CatStraggler
	CatLatency   = itrace.CatLatency
	CatPort      = itrace.CatPort
	CatAck       = itrace.CatAck
	CatAdvance   = itrace.CatAdvance
	CatSkew      = itrace.CatSkew
)

// Categories lists all breakdown categories in report order.
var Categories = itrace.Categories

// Disabled is the nil recorder: attaching it records nothing and costs one
// pointer test per event.
var Disabled = itrace.Disabled

// Errors of the recorder lifecycle.
var (
	// ErrNoRun is returned by Recorder.Trace before a run was recorded.
	ErrNoRun = itrace.ErrNoRun
	// ErrUnclean is returned by Recorder.Trace when the run's teardown may
	// have left rank goroutines running (deadline with an uninterruptible
	// rank); such lanes cannot be read safely.
	ErrUnclean = itrace.ErrUnclean
)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return itrace.NewRecorder() }

// ReportOptions tune WriteReport.
type ReportOptions = itrace.ReportOptions

// WriteReport renders the compact text report of a trace: metadata, time
// breakdowns, per-superstep straggler attribution, h-relation statistics and
// the critical path. The output is a pure function of the trace.
func WriteReport(w io.Writer, t *Trace, opts ReportOptions) error {
	return itrace.WriteReport(w, t, opts)
}

// WriteEvents dumps the merged event stream, one line per event, in the
// deterministic merge order.
func WriteEvents(w io.Writer, t *Trace) error { return itrace.WriteEvents(w, t) }

// WriteChrome exports the trace in Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto; the output of a deterministic trace is
// byte-identical across runs.
func WriteChrome(w io.Writer, t *Trace) error { return itrace.WriteChrome(w, t) }

// Package trace is the public surface of the tracing and analysis
// subsystem: a Recorder that the simulator fills with per-event observations
// (message injections, receive completions, compute intervals, superstep and
// collective-stage boundaries), the merged deterministic Trace it yields,
// analysis passes (critical-path extraction, per-rank and per-superstep time
// breakdowns, straggler attribution, h-relation statistics), and exporters
// to Chrome trace-event JSON (loadable in chrome://tracing and Perfetto) and
// a compact text report.
//
// Attach a recorder to a session with hbsp.WithRecorder:
//
//	rec := trace.NewRecorder()
//	rec.SetLabel("my workload")
//	s, _ := hbsp.New(machine, hbsp.WithSeed(42), hbsp.WithRecorder(rec))
//	s.RunBSP(ctx, program)
//	tr, _ := rec.Trace()
//	trace.WriteReport(os.Stdout, tr, trace.ReportOptions{})
//	trace.WriteChrome(chromeFile, tr)
//
// Recording is lock-free on the simulator's hot path (per-rank append-only
// columnar lanes) and read in deterministic order afterwards, so two runs
// with the same seed produce byte-identical traces. A nil recorder
// (trace.Disabled) is the no-op fast path: its per-event cost is one pointer
// test, benchmarked by BenchmarkTraceOverhead at the repository root.
//
// Large runs do not need to hold their events in RAM. Recorder.SpillTo
// streams full column chunks to a writer during the run in a compact binary
// format, bounding resident recorder memory; OpenSpillFile reopens the file
// and every analysis and exporter accepts it through the same Source
// interface the in-RAM Trace satisfies:
//
//	rec.SpillTo(f, trace.SpillOptions{})
//	s.RunBSP(ctx, program)            // lanes stream to f as they fill
//	sp, _ := trace.OpenSpillFile(f.Name())
//	trace.WriteReport(os.Stdout, sp, trace.ReportOptions{})
//
// For very large traces the aggregated views — RollupOf (per-superstep and
// per-stage time/traffic tables), TopSlack (worst finish-slack ranks) and
// WriteChromeAuto (lane-sampled Chrome export under an event budget) — keep
// output sizes bounded while the full event stream stays on disk.
//
// Tracing interacts with symmetry collapse: a collapsed run executes one
// representative rank per equivalence class, but a trace must populate every
// rank's lane, so attaching a recorder disables collapse for that run and
// the result's Collapse diagnostic reports Reason == "trace". Large traced
// runs therefore pay full per-rank cost — that is exactly the regime SpillTo
// and the rollup exports exist for.
package trace

import (
	"io"

	itrace "hbsp/internal/trace"
)

// Recorder accumulates the events of one simulation run; create one with
// NewRecorder and attach it with hbsp.WithRecorder (or sim.Options.Recorder).
// A Recorder records one run at a time and must not be shared by concurrent
// runs — give each run of a parallel sweep its own recorder.
type Recorder = itrace.Recorder

// Trace is the merged, immutable view of one recorded run.
type Trace = itrace.Trace

// Source is the read interface shared by the in-RAM Trace and the
// spill-backed Spill: run metadata, a run summary, and per-rank column
// blocks. Every analysis and exporter in this package accepts a Source, so
// code paths need not care whether the trace lives in memory or on disk.
type Source = itrace.Source

// Summary is the run-level outcome a Source reports: per-rank finish times,
// makespan, traffic counters, superstep count and the run error, if any.
type Summary = itrace.Summary

// Cols is one rank's events in columnar (struct-of-arrays) layout — one
// parallel array per event field.
type Cols = itrace.Cols

// Event is one recorded observation; Kind classifies it.
type (
	Event = itrace.Event
	Kind  = itrace.Kind
)

// Event kinds.
const (
	KindCompute   = itrace.KindCompute
	KindSend      = itrace.KindSend
	KindRecvWait  = itrace.KindRecvWait
	KindSendWait  = itrace.KindSendWait
	KindAdvance   = itrace.KindAdvance
	KindSuperstep = itrace.KindSuperstep
	KindStage     = itrace.KindStage
	// KindFault is a fail-stop recovery interval injected by a fault.Plan.
	KindFault = itrace.KindFault
)

// Meta labels a recorded run (procs, seed, machine, workload).
type Meta = itrace.Meta

// Analysis result types.
type (
	// Breakdown attributes every rank's wall time to categories, overall
	// and per superstep.
	Breakdown     = itrace.Breakdown
	RankBreakdown = itrace.RankBreakdown
	StepBreakdown = itrace.StepBreakdown
	// Category buckets busy and blocked time in breakdowns.
	Category = itrace.Category
	// CriticalPath is the chain of compute intervals and gating messages
	// that determines the makespan.
	CriticalPath = itrace.CriticalPath
	PathHop      = itrace.PathHop
	// HRelation summarizes one superstep's communication relation.
	HRelation = itrace.HRelation
	// Straggler pairs a rank with its end-of-run slack.
	Straggler = itrace.Straggler
	// Rollup is the aggregated view of a trace: per-superstep and
	// per-stage time and traffic tables plus the worst-slack ranks,
	// computed in one streaming pass (RollupOf).
	Rollup      = itrace.Rollup
	StepRollup  = itrace.StepRollup
	StageRollup = itrace.StageRollup
	// RollupOptions tune RollupOf (TopK bounds the straggler list).
	RollupOptions = itrace.RollupOptions
)

// Breakdown categories, in report order (also see Categories).
const (
	CatCompute   = itrace.CatCompute
	CatSend      = itrace.CatSend
	CatStraggler = itrace.CatStraggler
	CatLatency   = itrace.CatLatency
	CatPort      = itrace.CatPort
	CatAck       = itrace.CatAck
	CatAdvance   = itrace.CatAdvance
	CatSkew      = itrace.CatSkew
)

// Categories lists all breakdown categories in report order.
var Categories = itrace.Categories

// Disabled is the nil recorder: attaching it records nothing and costs one
// pointer test per event.
var Disabled = itrace.Disabled

// Errors of the recorder lifecycle.
var (
	// ErrNoRun is returned by Recorder.Trace before a run was recorded.
	ErrNoRun = itrace.ErrNoRun
	// ErrUnclean is returned by Recorder.Trace when the run's teardown may
	// have left rank goroutines running (deadline with an uninterruptible
	// rank); such lanes cannot be read safely.
	ErrUnclean = itrace.ErrUnclean
	// ErrSpilled is returned by Recorder.Trace after a spilled run: the
	// events streamed to the SpillTo writer and are no longer in RAM —
	// open the spill file (OpenSpillFile) instead.
	ErrSpilled = itrace.ErrSpilled
)

// Spill types: SpillTo streams a run's lanes to a writer in a compact,
// versioned binary format; OpenSpill/OpenSpillFile reopen it as a Source.
type (
	// SpillOptions tune Recorder.SpillTo (ChunkEvents bounds per-lane
	// resident events; the default targets ~64 MB total across lanes).
	SpillOptions = itrace.SpillOptions
	// Spill is a reopened spill file; it satisfies Source, so every
	// analysis and exporter works on it directly, and its Trace method
	// materializes an in-RAM Trace when the run is small enough.
	Spill = itrace.Spill
)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return itrace.NewRecorder() }

// ReportOptions tune WriteReport.
type ReportOptions = itrace.ReportOptions

// WriteReport renders the compact text report of a trace: metadata, time
// breakdowns, per-superstep straggler attribution, h-relation statistics and
// the critical path. The output is a pure function of the trace.
func WriteReport(w io.Writer, src Source, opts ReportOptions) error {
	return itrace.WriteReport(w, src, opts)
}

// WriteEvents dumps the event stream, one line per event, in the
// deterministic merge order, without materializing the merged slice.
func WriteEvents(w io.Writer, src Source) error { return itrace.WriteEvents(w, src) }

// WriteChrome exports the trace in Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto; the output of a deterministic trace is
// byte-identical across runs.
func WriteChrome(w io.Writer, src Source) error { return itrace.WriteChrome(w, src) }

// ChromeOptions bound WriteChromeAuto: MaxEvents is the full-export budget
// (DefaultChromeBudget when zero), MaxLanes and TopK shape the downsampled
// export.
type ChromeOptions = itrace.ChromeOptions

// DefaultChromeBudget is the event count above which WriteChromeAuto
// downsamples instead of exporting every lane.
const DefaultChromeBudget = itrace.DefaultChromeBudget

// WriteChromeAuto writes the full Chrome export when the trace fits the
// event budget and a lane-sampled one (critical-path rank, worst-slack
// ranks, a stride of the rest, plus an aggregate counter track) otherwise.
// It reports whether the export was downsampled.
func WriteChromeAuto(w io.Writer, src Source, opts ChromeOptions) (bool, error) {
	return itrace.WriteChromeAuto(w, src, opts)
}

// WriteSpill writes the canonical spill-format serialization of src: lanes
// in rank order, fixed-size chunks, byte-identical for identical content
// regardless of how src was produced.
func WriteSpill(w io.Writer, src Source) error { return itrace.WriteSpill(w, src) }

// OpenSpill opens a spill image for reading; it stays valid as long as r is.
func OpenSpill(r io.ReaderAt, size int64) (*Spill, error) { return itrace.OpenSpill(r, size) }

// OpenSpillFile opens a spill file written by Recorder.SpillTo or
// WriteSpill. Close the returned Spill when done.
func OpenSpillFile(path string) (*Spill, error) { return itrace.OpenSpillFile(path) }

// Iter iterates a Source's events in the deterministic merged order (a
// k-way merge over lanes) without materializing the merged slice.
type Iter = itrace.Iter

// NewIter returns an iterator over src's events in merged order.
func NewIter(src Source) (*Iter, error) { return itrace.NewIter(src) }

// NumEventsOf returns the total event count of a Source.
func NumEventsOf(src Source) int { return itrace.NumEventsOf(src) }

// RollupOf aggregates src in one streaming pass: run, per-superstep and
// per-stage category times and traffic, plus the TopK worst-slack ranks.
func RollupOf(src Source, opts RollupOptions) (*Rollup, error) { return itrace.RollupOf(src, opts) }

// WriteRollup renders a rollup as a deterministic text table.
func WriteRollup(w io.Writer, r *Rollup) error { return itrace.WriteRollup(w, r) }

// TopSlack returns the k ranks with the largest end-of-run slack, worst
// first, without sorting all P ranks.
func TopSlack(src Source, k int) []Straggler { return itrace.TopSlack(src, k) }

// Streaming analysis entry points: each runs in a single pass over a Source
// and matches the corresponding Trace method bit for bit.
var (
	BreakdownOf    = itrace.BreakdownOf
	CriticalPathOf = itrace.CriticalPathOf
	HRelationsOf   = itrace.HRelationsOf
	StragglersOf   = itrace.StragglersOf
)

// Package kernels is the public surface of the L1 BLAS-style computational
// kernels the framework models: each Kernel carries its arithmetic intensity
// and memory footprint (which drive the platform's rate model) plus a
// reference implementation for computing real values in simulated programs.
package kernels

import "hbsp/internal/kernels"

// Kernel describes one computational kernel.
type Kernel = kernels.Kernel

// The built-in kernels.
var (
	DAXPY    = kernels.DAXPY
	Stencil5 = kernels.Stencil5
	Swap     = kernels.Swap
	Scal     = kernels.Scal
	Copy     = kernels.Copy
	Axpy     = kernels.Axpy
	Dot      = kernels.Dot
	Nrm2     = kernels.Nrm2
	Asum     = kernels.Asum
	Iamax    = kernels.Iamax
)

// ErrLength is returned by reference implementations on operand length
// mismatches.
var ErrLength = kernels.ErrLength

// BLAS1 returns the L1 BLAS kernel set of the rate experiments.
func BLAS1() []Kernel { return kernels.BLAS1() }

// All returns every built-in kernel.
func All() []Kernel { return kernels.All() }

// ByName looks a kernel up by name.
func ByName(name string) (Kernel, error) { return kernels.ByName(name) }

// Reference implementations, for simulated programs that compute real
// values.
func RunDAXPY(a float64, x, y []float64) error { return kernels.RunDAXPY(a, x, y) }

// RunDot computes the inner product of x and y.
func RunDot(x, y []float64) (float64, error) { return kernels.RunDot(x, y) }

// RunStencil5 applies the 5-point stencil to a rows×cols grid.
func RunStencil5(in, out []float64, rows, cols int, c float64) error {
	return kernels.RunStencil5(in, out, rows, cols, c)
}

// Package fault is the public surface for deterministic fault and straggler
// injection: a Plan describes per-rank slowdowns (stragglers), per-link or
// per-distance-class degradations, and fail-stop crashes with
// checkpoint/restart cost accounting. Both execution engines honor a plan
// bit-identically — the concurrent goroutine engine and the goroutine-free
// direct evaluator produce the same virtual times, counters and traces under
// the same plan — and a nil or empty plan costs the hot paths a single
// pointer test.
//
// Attach a plan to a session with hbsp.WithFaults, or set sim.Options.Faults
// directly. Plans are validated against the machine at hbsp.New time; a
// malformed plan surfaces as an error wrapping ErrInvalid.
package fault

import (
	"hbsp/internal/fault"
)

// Plan is a complete fault scenario: slowdowns, link degradations and
// fail-stops, plus the seed of the plan's own jitter streams. The zero Plan
// is valid and injects nothing.
type Plan = fault.Plan

// Slowdown multiplies one rank's noise draws by a factor (optionally
// jittered) inside a virtual-time window — the straggler model.
type Slowdown = fault.Slowdown

// LinkRule degrades the latency and transfer time of matching messages
// inside a virtual-time window. Src, Dst and Class of -1 match anything;
// Class matches the machine's distance classes (cluster.DistanceNetwork,
// cluster.DistanceGroup, ...).
type LinkRule = fault.LinkRule

// FailStop crashes a rank at a virtual time: the next clock advance crossing
// FailAt additionally pays Restart plus the recompute time back to the last
// checkpoint (FailAt mod Checkpoint; the whole prefix when Checkpoint is
// zero). Surviving ranks stall at their next rendezvous with the failed rank
// exactly as the LogGP recurrence dictates.
type FailStop = fault.FailStop

// ErrInvalid is wrapped by every plan-validation error.
var ErrInvalid = fault.ErrInvalid

// Package bench is the public surface of the benchmark procedures that
// measure a (simulated) platform the way the thesis measures its physical
// clusters: the classic scalar bspbench parameters, per-kernel computational
// rates, and the pairwise latency/overhead/bandwidth matrices that feed the
// collective cost model (collective.Params).
package bench

import (
	"hbsp/internal/bench"

	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/kernels"
	"hbsp/sim"
)

// BSPBenchConfig configures the classic bspbench measurement.
type BSPBenchConfig = bench.BSPBenchConfig

// BSPBenchResult holds the classic scalar BSP parameters of one run.
type BSPBenchResult = bench.BSPBenchResult

// RatePoint is one (h, time) sample of the bspbench h-relation sweep.
type RatePoint = bench.RatePoint

// PairwiseOptions configure the pairwise parameter benchmark.
type PairwiseOptions = bench.PairwiseOptions

// PairwiseResult holds the benchmarked pairwise parameter matrices; its
// Params method converts them into collective.Params.
type PairwiseResult = bench.PairwiseResult

// KernelBenchConfig configures the kernel rate measurement.
type KernelBenchConfig = bench.KernelBenchConfig

// KernelBenchResult holds one kernel's measured rate.
type KernelBenchResult = bench.KernelBenchResult

// DefaultBSPBenchConfig returns the standard bspbench configuration.
func DefaultBSPBenchConfig() BSPBenchConfig { return bench.DefaultBSPBenchConfig() }

// BSPBench measures the classic scalar BSP parameters on the machine.
func BSPBench(m bsp.Machine, cfg BSPBenchConfig) (*BSPBenchResult, error) {
	return bench.BSPBench(m, cfg)
}

// DefaultPairwiseOptions returns the standard pairwise benchmark options.
func DefaultPairwiseOptions() PairwiseOptions { return bench.DefaultPairwiseOptions() }

// MeasurePairwise benchmarks the pairwise latency, overhead and inverse
// bandwidth matrices of the machine.
func MeasurePairwise(m sim.Machine, opts PairwiseOptions) (*PairwiseResult, error) {
	return bench.MeasurePairwise(m, opts)
}

// ModelParams benchmarks the machine and returns the parameter matrices the
// collective cost model consumes (reps repetitions per pair).
func ModelParams(m sim.Machine, reps int) (collective.Params, error) {
	return bench.ModelParams(m, reps)
}

// DefaultKernelBenchConfig returns the standard kernel benchmark
// configuration.
func DefaultKernelBenchConfig() KernelBenchConfig { return bench.DefaultKernelBenchConfig() }

// KernelRate measures the sustainable rate of one kernel on one rank.
func KernelRate(m *cluster.Machine, rank int, k kernels.Kernel, problemSize int, cfg KernelBenchConfig) (*KernelBenchResult, error) {
	return bench.KernelRate(m, rank, k, problemSize, cfg)
}

// RateProfile measures the rates of a kernel set on one rank.
func RateProfile(m *cluster.Machine, rank int, ks []kernels.Kernel, problemSize int, cfg KernelBenchConfig) (map[string]*KernelBenchResult, error) {
	return bench.RateProfile(m, rank, ks, problemSize, cfg)
}

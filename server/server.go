// Package server is the public surface of the hbspd prediction service: an
// http.Handler exposing the LogGP prediction engines over HTTP/JSON with a
// fingerprint-keyed result cache, singleflight request coalescing,
// queue-depth load shedding and graceful drain. Command hbspd wraps it in a
// standalone daemon.
//
// # API
//
// POST /v1/predict evaluates one prediction (JSON response) or a sweep
// (NDJSON stream, one PredictPoint per line in row-major axis order). The
// request names a machine profile — a cluster preset, a full custom profile
// validated through cluster.Profile.Validate, or raw pairwise
// latency/gap/beta/overhead matrices — a workload (collective, sync,
// stencil or sim.Program op-stream), an optional fault.Plan and sweep axes
// over P, payload bytes and LogGP parameter scalings.
//
// GET /v1/presets lists the profile presets, GET /healthz reports liveness
// (503 while draining), GET /metrics renders the JSON counters.
//
// # Caching
//
// Results are cached in a bounded LRU keyed by
//
//	(profile fingerprint, fault-plan fingerprint, normalized workload,
//	 procs, seed, ack mode, engine, collapse mode, perRank, trace)
//
// where the fingerprints are the stable content hashes of
// cluster.Profile.Fingerprint and fault.Plan.Fingerprint — two spellings of
// the same machine share an entry, and any parameter change (including sweep
// scalings, which are fingerprinted post-scaling) invalidates by key
// construction. Cached bodies are the rendered bytes, so hits are
// byte-identical to the evaluation that filled them; cache status rides in
// the X-Hbspd-Cache header (hit | miss | coalesced), never in the body.
//
// # Errors
//
// Every error response is {"error":{"code","status","message"}} with code
// one of invalid_request, invalid_machine, invalid_fault, deadline (408),
// shed (429, with Retry-After), aborted (499) or internal. Mid-stream sweep
// errors arrive as a final NDJSON line of the same shape after the 200
// header.
package server

import (
	iserver "hbsp/internal/server"
)

// Config tunes a Server; the zero value of each field selects its default.
type Config = iserver.Config

// Server is the prediction service handler.
type Server = iserver.Server

// Wire types of POST /v1/predict.
type (
	PredictRequest = iserver.PredictRequest
	ProfileSpec    = iserver.ProfileSpec
	CustomProfile  = iserver.CustomProfile
	TopologySpec   = iserver.TopologySpec
	LinkSpec       = iserver.LinkSpec
	CoreSpec       = iserver.CoreSpec
	LevelSpec      = iserver.LevelSpec
	MatrixProfile  = iserver.MatrixProfile
	WorkloadSpec   = iserver.WorkloadSpec
	OpSpec         = iserver.OpSpec
	OptionsSpec    = iserver.OptionsSpec
	SweepSpec      = iserver.SweepSpec
	ScaleSpec      = iserver.ScaleSpec
)

// Response types.
type (
	PredictPoint    = iserver.PredictPoint
	TimesSummary    = iserver.TimesSummary
	CollapseInfo    = iserver.CollapseInfo
	PathInfo        = iserver.PathInfo
	HopInfo         = iserver.HopInfo
	BreakdownInfo   = iserver.BreakdownInfo
	CategoryTotal   = iserver.CategoryTotal
	MetricsSnapshot = iserver.MetricsSnapshot
)

// New builds a Server.
func New(cfg Config) *Server { return iserver.New(cfg) }

package hbsp

// The repository-level benchmark harness: one testing.B benchmark per table
// and figure of the thesis' evaluation (see the package map in README.md),
// plus ablation benchmarks for the design choices the cost model
// depends on. Every benchmark wraps the corresponding function of
// internal/experiments with reduced sweep settings so that
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in a few minutes; run cmd/experiments
// -full for the complete sweeps.

import (
	"fmt"
	"testing"

	"hbsp/internal/adapt"
	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/experiments"
	"hbsp/internal/kernels"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/stencil"
	"hbsp/internal/topology"
	"hbsp/internal/trace"
)

func benchOptions() experiments.Options {
	return experiments.Options{
		Reps:              4,
		ProcStep:          16,
		MaxProcsXeon:      64,
		MaxProcsOpteron:   96,
		StencilLargeN:     768,
		StencilSmallN:     192,
		StencilIterations: 3,
		Synthetic:         true,
	}
}

// --- Chapter 3 -------------------------------------------------------------

func BenchmarkTable3_1_BSPBenchParams(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3_1(prof, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig3_2_InnerProduct(b *testing.B) {
	prof := platform.Xeon8x2x4()
	rows, err := experiments.Table3_1(prof, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3_2(prof, rows, 1<<22, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 4 -------------------------------------------------------------

func BenchmarkFig4_2_BspbenchRates(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4_2(prof); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_3_KernelPredictions(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4_3(prof, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_5_BLASInCache(b *testing.B) {
	prof := platform.AthlonX2()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4_5(prof, 60*1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_6_BLASOutOfCache(b *testing.B) {
	prof := platform.AthlonX2()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4_5(prof, 512*1024); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 5 -------------------------------------------------------------

func BenchmarkFig5_2_BarrierMatrices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, gen := range []func() (*barrier.Pattern, error){
			func() (*barrier.Pattern, error) { return barrier.Linear(4, 0) },
			func() (*barrier.Pattern, error) { return barrier.Dissemination(4) },
			func() (*barrier.Pattern, error) { return barrier.Tree(4) },
		} {
			pat, err := gen()
			if err != nil {
				b.Fatal(err)
			}
			if err := pat.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig5_6_BarrierXeon(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig5_6Series(prof, opts.MaxProcsXeon, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_10_BarrierOpteron(b *testing.B) {
	prof := platform.Opteron12x2x6()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig5_6Series(prof, opts.MaxProcsOpteron, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 6 -------------------------------------------------------------

func BenchmarkFig6_3_SyncPayloadXeon(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig6_3Series(prof, opts.MaxProcsXeon, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_4_SyncPayloadOpteron(b *testing.B) {
	prof := platform.Opteron12x2x6()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig6_3Series(prof, opts.MaxProcsOpteron, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 7 -------------------------------------------------------------

func BenchmarkTable7_1_SSSClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7_1(platform.Xeon8x2x4(), 60); err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Table7_1(platform.Opteron10x2x6(), 115); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_4_HybridBarriersXeon(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig7_4Series(prof, opts.MaxProcsXeon, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_6_AdaptedBarriersOpteron(b *testing.B) {
	prof := platform.Opteron12x2x6()
	opts := benchOptions()
	opts.MaxProcsOpteron = 48
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		if _, err := experiments.Fig7_4Series(prof, opts.MaxProcsOpteron, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Chapter 8 -------------------------------------------------------------

func BenchmarkTable8_1_Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table8_1(benchOptions()); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable8_2_MPIWallTimes(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table8_2(prof, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_4_StencilScalingAll(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_4Series(prof, opts.StencilLargeN, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_5_StencilScalingBSPOnly(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_4Series(prof, opts.StencilLargeN, []string{"bsp", "bsp-serial"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_6_StencilScalingSelectedLarge(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_4Series(prof, opts.StencilLargeN, []string{"bsp", "mpi+r", "hybrid"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_7_StencilScalingSelectedSmall(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_4Series(prof, opts.StencilSmallN, []string{"bsp", "mpi+r", "hybrid"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_10_StencilPrediction(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_10Series(prof, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_18_OverlapAdaptation(b *testing.B) {
	prof := platform.Xeon8x2x4()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8_18Series(prof, 16, benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (cost-model design choices) -----------------------

// benchParams builds ground-truth cost-model parameters for ablations.
func benchParams(b *testing.B, prof *platform.Profile, procs int) barrier.Params {
	b.Helper()
	params, err := stencil.GroundTruthParams(prof, procs)
	if err != nil {
		b.Fatal(err)
	}
	return params
}

func BenchmarkAblationPostedReceive(b *testing.B) {
	prof := platform.Xeon8x2x4()
	params := benchParams(b, prof, 64)
	pat, err := barrier.Tree(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			opts := barrier.DefaultCostOptions()
			opts.PostedReceive = on
			total := 0.0
			for i := 0; i < b.N; i++ {
				pred, err := barrier.Predict(pat, params, opts)
				if err != nil {
					b.Fatal(err)
				}
				total += pred.Total
			}
			b.ReportMetric(total/float64(b.N)*1e6, "us/predicted-barrier")
		})
	}
}

func BenchmarkAblationAckFactor(b *testing.B) {
	prof := platform.Xeon8x2x4()
	params := benchParams(b, prof, 64)
	pat, err := barrier.Dissemination(64)
	if err != nil {
		b.Fatal(err)
	}
	for _, factor := range []float64{1, 2} {
		name := "factor1"
		if factor == 2 {
			name = "factor2"
		}
		b.Run(name, func(b *testing.B) {
			opts := barrier.DefaultCostOptions()
			opts.AckFactor = factor
			total := 0.0
			for i := 0; i < b.N; i++ {
				pred, err := barrier.Predict(pat, params, opts)
				if err != nil {
					b.Fatal(err)
				}
				total += pred.Total
			}
			b.ReportMetric(total/float64(b.N)*1e6, "us/predicted-barrier")
		})
	}
}

func BenchmarkAblationPlacementPolicy(b *testing.B) {
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	pat, err := barrier.Dissemination(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, policy := range []topology.PlacementPolicy{topology.RoundRobin, topology.Block} {
		b.Run(policy.String(), func(b *testing.B) {
			pl, err := prof.PlaceWith(16, policy)
			if err != nil {
				b.Fatal(err)
			}
			m := prof.MachineFor(pl)
			total := 0.0
			for i := 0; i < b.N; i++ {
				meas, err := barrier.Measure(m, pat, 3)
				if err != nil {
					b.Fatal(err)
				}
				total += meas.MeanWorst
			}
			b.ReportMetric(total/float64(b.N)*1e6, "us/barrier")
		})
	}
}

func BenchmarkAblationEagerVsPostponed(b *testing.B) {
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	cfg := stencil.Config{N: 512, Iterations: 2, C: 0.2, Synthetic: true}
	m, err := prof.Machine(16)
	if err != nil {
		b.Fatal(err)
	}
	for _, eager := range []bool{true, false} {
		name := "postponed"
		fraction := 0.0
		if eager {
			name = "eager"
			fraction = 1.0
		}
		b.Run(name, func(b *testing.B) {
			total := 0.0
			for i := 0; i < b.N; i++ {
				res, err := stencil.RunBSP(m, cfg, fraction)
				if err != nil {
					b.Fatal(err)
				}
				total += res.PerIteration
			}
			b.ReportMetric(total/float64(b.N)*1e6, "us/iteration")
		})
	}
}

func BenchmarkAblationSingleRateVsKernelRates(b *testing.B) {
	// The Chapter 4 argument: pricing every kernel with the DAXPY rate
	// mispredicts other kernels; per-kernel rates do not.
	prof := platform.Xeon8x2x4()
	n := 1024
	daxpyTime := prof.KernelTime(0, kernels.DAXPY, n)
	for _, mode := range []string{"single-rate", "per-kernel"} {
		b.Run(mode, func(b *testing.B) {
			worst := 0.0
			for i := 0; i < b.N; i++ {
				for _, k := range []kernels.Kernel{kernels.Dot, kernels.Stencil5, kernels.Asum} {
					truth := prof.KernelTime(0, k, n)
					var predicted float64
					if mode == "single-rate" {
						predicted = daxpyTime * k.FlopsPerElement / kernels.DAXPY.FlopsPerElement
					} else {
						predicted = truth
					}
					rel := (predicted - truth) / truth
					if rel < 0 {
						rel = -rel
					}
					if rel > worst {
						worst = rel
					}
				}
			}
			b.ReportMetric(worst*100, "worst-rel-err-%")
		})
	}
}

func BenchmarkAdaptGreedyConstruction(b *testing.B) {
	prof := platform.Xeon8x2x4()
	params := benchParams(b, prof, 64)
	for i := 0; i < b.N; i++ {
		if _, err := adapt.Greedy(params, barrier.DefaultCostOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator hot path ------------------------------------------------------
//
// The three benchmarks below track the mailbox/pooling work of the simulator
// itself (see README "Simulator performance" and BENCH_simnet.json): message
// matching under many pending (src, tag) pairs, the dissemination count
// exchange that ends every BSP superstep, and the heaviest collective the
// schedule engine generates. All run with ReportAllocs so the allocation
// behaviour of the hot path stays visible in `go test -bench`.

// simBenchMachine returns the shared noise-free benchmark machine
// (platform.XeonClusterMachine — the same platform cmd/simbench measures).
func simBenchMachine(b *testing.B, procs int) *platform.Machine {
	b.Helper()
	m, err := platform.XeonClusterMachine(procs)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkMailboxTake(b *testing.B) {
	// Rank 0 injects many messages with distinct tags; rank 1 drains them in
	// reverse tag order, so every receive has to match against a full pending
	// set — the worst case for a linear-scan mailbox, O(1) for an indexed one.
	// The "flat" variant keeps the tags clustered, so matching runs on the
	// direct-index table; "map" spreads them beyond the flat budget, forcing
	// the hash-map fallback.
	const msgs = 512
	for _, bench := range []struct {
		name   string
		stride int
	}{
		{name: "flat", stride: 1},
		{name: "map", stride: 1 << 16},
	} {
		b.Run(bench.name, func(b *testing.B) {
			m := simBenchMachine(b, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.Run(m, func(p *simnet.Proc) error {
					switch p.Rank() {
					case 0:
						for t := 0; t < msgs; t++ {
							p.Post(1, t*bench.stride, 8, nil)
						}
					case 1:
						for t := msgs - 1; t >= 0; t-- {
							p.Recv(0, t*bench.stride)
						}
					}
					return nil
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSyncDissemination(b *testing.B) {
	// The dissemination count exchange plus drain at P=64: the innermost loop
	// of every BSP superstep, on the shared fixed workload
	// (experiments.SyncExchangeProgram, also measured by cmd/simbench).
	m := simBenchMachine(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bsp.Run(m, experiments.SyncExchangeProgram); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTotalExchange(b *testing.B) {
	// The heaviest collective the schedule engine produces: P² messages per
	// execution. The P=256 point is the acceptance gauge of the mailbox
	// refactor (see BENCH_simnet.json for the tracked baseline).
	for _, procs := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("P=%d", procs), func(b *testing.B) {
			m := simBenchMachine(b, procs)
			pat, err := barrier.TotalExchange(procs, 64)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := barrier.Measure(m, pat, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSimulatorBarrierThroughput(b *testing.B) {
	// Raw simulator throughput: one dissemination barrier execution on 64
	// ranks per iteration.
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(64)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := barrier.Dissemination(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := barrier.Measure(m, pat, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead measures the cost of the trace subsystem on the
// send_recv ring workload (the identical shared program cmd/simbench's
// send_recv entry measures — experiments.SendRecvRingProgram): "off" runs
// with trace.Disabled — the nil-recorder fast path, whose per-event cost
// must stay a single pointer test so the untraced hot path is unchanged
// from the tracked baseline — and "on" runs with a recorder attached,
// paying one event append per send, receive-wait and compute.
func BenchmarkTraceOverhead(b *testing.B) {
	m := simBenchMachine(b, 16)
	ring := experiments.SendRecvRingProgram
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			o := simnet.DefaultOptions()
			if mode == "on" {
				o.Recorder = trace.NewRecorder()
			} else {
				o.Recorder = trace.Disabled
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.Run(m, ring, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Collective schedules ---------------------------------------------------

func BenchmarkCollectiveComparison(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		points, err := experiments.CollectiveSeries(prof, 32, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no collective points")
		}
	}
}

func BenchmarkAdaptedSynchronizer(b *testing.B) {
	prof := platform.Xeon8x2x4()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		experiments.ResetParamsCache()
		points, err := experiments.AdaptedSyncSeries(prof, 32, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(points) == 0 {
			b.Fatal("no adapted-sync points")
		}
	}
}

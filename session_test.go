package hbsp_test

// External test package: exercises the facade exactly the way a user program
// outside internal/ would — only public packages are imported.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"hbsp"
	"hbsp/bsp"
	"hbsp/cluster"
	"hbsp/collective"
	"hbsp/mpi"
	"hbsp/sim"
	"hbsp/trace"
)

func testMachine(t *testing.T, procs int) *cluster.Machine {
	t.Helper()
	m, err := cluster.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestNewOptionMatrix sweeps the functional options through valid and
// invalid values and checks that New accepts or rejects each combination
// with the right typed error.
func TestNewOptionMatrix(t *testing.T) {
	m := testMachine(t, 8)
	diss, err := collective.Dissemination(8)
	if err != nil {
		t.Fatal(err)
	}
	bcast, err := collective.Broadcast(8, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		opts    []hbsp.Option
		wantErr error
	}{
		{"no options", nil, nil},
		{"seed", []hbsp.Option{hbsp.WithSeed(7)}, nil},
		{"deadline", []hbsp.Option{hbsp.WithDeadline(time.Minute)}, nil},
		{"acks off", []hbsp.Option{hbsp.WithAckSends(false)}, nil},
		{"collapse off", []hbsp.Option{hbsp.WithSymmetryCollapse(false)}, nil},
		{"collapse auto", []hbsp.Option{hbsp.WithSymmetryCollapse(true)}, nil},
		{"trace", []hbsp.Option{hbsp.WithTrace(func(hbsp.TraceEvent) {})}, nil},
		{"synchronizer", []hbsp.Option{hbsp.WithSynchronizer(bsp.DefaultSynchronizer())}, nil},
		{"schedule synchronizer", []hbsp.Option{hbsp.WithScheduleSynchronizer(diss)}, nil},
		{"collective schedules", []hbsp.Option{hbsp.WithCollectiveSchedules(bsp.NewScheduleCache())}, nil},
		{"everything", []hbsp.Option{
			hbsp.WithSeed(42), hbsp.WithDeadline(30 * time.Second), hbsp.WithAckSends(true),
			hbsp.WithScheduleSynchronizer(diss), hbsp.WithTrace(func(hbsp.TraceEvent) {}),
		}, nil},
		{"recorder", []hbsp.Option{hbsp.WithRecorder(trace.NewRecorder())}, nil},
		{"nil recorder", []hbsp.Option{hbsp.WithRecorder(nil)}, hbsp.ErrOption},
		{"disabled recorder", []hbsp.Option{hbsp.WithRecorder(trace.Disabled)}, hbsp.ErrOption},
		{"zero deadline", []hbsp.Option{hbsp.WithDeadline(0)}, hbsp.ErrOption},
		{"negative deadline", []hbsp.Option{hbsp.WithDeadline(-time.Second)}, hbsp.ErrOption},
		{"nil synchronizer", []hbsp.Option{hbsp.WithSynchronizer(nil)}, hbsp.ErrOption},
		{"nil trace", []hbsp.Option{hbsp.WithTrace(nil)}, hbsp.ErrOption},
		{"nil schedule source", []hbsp.Option{hbsp.WithCollectiveSchedules(nil)}, hbsp.ErrOption},
		{"rooted sync schedule", []hbsp.Option{hbsp.WithScheduleSynchronizer(bcast)}, hbsp.ErrOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := hbsp.New(m, tc.opts...)
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if sess.Procs() != 8 {
					t.Fatalf("Procs = %d, want 8", sess.Procs())
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("New err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// fakeMachine satisfies sim.Machine but has no profile and no reseeding.
type fakeMachine struct{ procs int }

func (f fakeMachine) Procs() int                      { return f.procs }
func (f fakeMachine) Latency(i, j int) float64        { return 1e-6 }
func (f fakeMachine) Gap(i, j int) float64            { return 1e-7 }
func (f fakeMachine) Beta(i, j int) float64           { return 1e-9 }
func (f fakeMachine) Overhead(i, j int) float64       { return 1e-7 }
func (f fakeMachine) SelfOverhead(i int) float64      { return 1e-7 }
func (f fakeMachine) NIC(i int) int                   { return i }
func (f fakeMachine) Noise(r int, seq uint64) float64 { return 1 }

// TestNewValidation covers machine validation: nil machines, profile-backed
// machines with broken profiles (built through the MachineFor bypass), and
// WithSeed on machines that cannot reseed.
func TestNewValidation(t *testing.T) {
	if _, err := hbsp.New(nil); !errors.Is(err, hbsp.ErrInvalidMachine) {
		t.Errorf("New(nil) err = %v, want ErrInvalidMachine", err)
	}

	// A structurally broken profile: Machine() never validates, so without
	// the facade check this NaN-propagates silently.
	broken := cluster.Xeon8x2x4()
	broken.SelfOverhead = 0
	bm, err := broken.Machine(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hbsp.New(bm); !errors.Is(err, hbsp.ErrInvalidMachine) {
		t.Errorf("New(broken profile) err = %v, want ErrInvalidMachine", err)
	}

	// A custom machine without reseeding support: fine without WithSeed,
	// rejected with it.
	if _, err := hbsp.New(fakeMachine{procs: 4}); err != nil {
		t.Errorf("New(custom machine) = %v, want nil", err)
	}
	if _, err := hbsp.New(fakeMachine{procs: 4}, hbsp.WithSeed(1)); !errors.Is(err, hbsp.ErrOption) {
		t.Errorf("New(custom machine, WithSeed) err = %v, want ErrOption", err)
	}
}

// TestRunBSPWithCollectives is the acceptance path: build a machine, run a
// BSP program through the session with options, call AllReduce, and check
// the deterministic result.
func TestRunBSPWithCollectives(t *testing.T) {
	sess, err := hbsp.New(testMachine(t, 8), hbsp.WithSeed(3), hbsp.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		sum, err := c.AllReduce([]float64{float64(c.Pid() + 1)}, bsp.OpSum)
		if err != nil {
			return err
		}
		if sum[0] != 36 {
			t.Errorf("pid %d: AllReduce = %v, want 36", c.Pid(), sum)
		}
		return c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan <= 0 {
		t.Fatalf("MakeSpan = %g, want > 0", res.MakeSpan)
	}
}

// TestContextCancellationMidSuperstep cancels a BSP run whose processes are
// blocked inside Sync (process 0 returned early, so the count exchange can
// never complete) and checks the typed abort error.
func TestContextCancellationMidSuperstep(t *testing.T) {
	sess, err := hbsp.New(testMachine(t, 8), hbsp.WithDeadline(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := sess.RunBSP(ctx, func(c *bsp.Ctx) error {
		if c.Pid() == 0 {
			return nil // deserts the superstep: everyone else blocks in Sync
		}
		return c.Sync()
	})
	if res != nil || !errors.Is(err, hbsp.ErrAborted) {
		t.Fatalf("RunBSP = (%v, %v), want ErrAborted", res, err)
	}
}

// TestRunMPIAndRawRun covers the other two run surfaces through the facade.
func TestRunMPIAndRawRun(t *testing.T) {
	sess, err := hbsp.New(testMachine(t, 6), hbsp.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
		got := c.Allreduce(float64(c.Rank()), mpi.OpSum)
		if got != 15 {
			t.Errorf("rank %d: Allreduce = %g, want 15", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Run(context.Background(), func(p *sim.Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		r := p.Irecv(prev, 1)
		p.Send(next, 1, 8, nil)
		p.Wait(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTraceObservesSupersteps checks the WithTrace event stream of a BSP
// run: one run.start, one superstep event per process per Sync, one run.end
// carrying the makespan.
func TestTraceObservesSupersteps(t *testing.T) {
	const procs, steps = 4, 3
	var events []hbsp.TraceEvent
	sess, err := hbsp.New(testMachine(t, procs), hbsp.WithTrace(func(ev hbsp.TraceEvent) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		for i := 0; i < steps; i++ {
			if err := c.Sync(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2+procs*steps {
		t.Fatalf("got %d events, want %d", len(events), 2+procs*steps)
	}
	if events[0].Kind != "run.start" {
		t.Errorf("first event = %q, want run.start", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != "run.end" || last.Err != nil || last.Time != res.MakeSpan {
		t.Errorf("last event = %+v, want run.end with makespan %g", last, res.MakeSpan)
	}
	perStep := map[int]int{}
	for _, ev := range events[1 : len(events)-1] {
		if ev.Kind != "superstep" {
			t.Fatalf("middle event = %+v, want superstep", ev)
		}
		perStep[ev.Step]++
	}
	for s := 0; s < steps; s++ {
		if perStep[s] != procs {
			t.Errorf("superstep %d reported by %d processes, want %d", s, perStep[s], procs)
		}
	}
}

// TestTraceObservesMPIBarriers checks that MPI runs emit superstep events
// too — one per process per completed Barrier — so WithTrace instruments
// both run-times symmetrically.
func TestTraceObservesMPIBarriers(t *testing.T) {
	const procs, barriers = 4, 3
	var events []hbsp.TraceEvent
	sess, err := hbsp.New(testMachine(t, procs), hbsp.WithTrace(func(ev hbsp.TraceEvent) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunMPI(context.Background(), func(c *mpi.Comm) error {
		for i := 0; i < barriers; i++ {
			c.Compute(1e-6)
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2+procs*barriers {
		t.Fatalf("got %d events, want %d (start + %d×%d supersteps + end)", len(events), 2+procs*barriers, procs, barriers)
	}
	if events[0].Kind != "run.start" {
		t.Errorf("first event = %q, want run.start", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != "run.end" || last.Time != res.MakeSpan {
		t.Errorf("last event = %+v, want run.end with makespan %g", last, res.MakeSpan)
	}
	perStep := map[int]int{}
	for _, ev := range events[1 : len(events)-1] {
		if ev.Kind != "superstep" {
			t.Fatalf("middle event = %+v, want superstep", ev)
		}
		perStep[ev.Step]++
	}
	for s := 0; s < barriers; s++ {
		if perStep[s] != procs {
			t.Errorf("barrier %d reported by %d processes, want %d", s, perStep[s], procs)
		}
	}
}

// TestWithRecorderRoundTrip runs a traced BSP program through the facade and
// checks the recorded trace end to end: seed metadata from WithSeed, a
// critical path ending exactly at the makespan, and a loadable export.
func TestWithRecorderRoundTrip(t *testing.T) {
	rec := trace.NewRecorder()
	rec.SetLabel("facade round trip")
	sess, err := hbsp.New(testMachine(t, 8), hbsp.WithSeed(123), hbsp.WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunBSP(context.Background(), func(c *bsp.Ctx) error {
		c.Compute(1e-6 * float64(c.Pid()+1))
		v, err := c.AllReduce([]float64{float64(c.Pid())}, bsp.OpSum)
		if err != nil {
			return err
		}
		if v[0] != 28 { // 0+1+...+7
			return c.Abort("allreduce = %v", v)
		}
		return c.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Meta.SeedKnown || tr.Meta.Seed != 123 {
		t.Fatalf("trace seed = (%v, %d), want (true, 123) from WithSeed", tr.Meta.SeedKnown, tr.Meta.Seed)
	}
	if tr.Meta.Label != "facade round trip" {
		t.Fatalf("trace label = %q", tr.Meta.Label)
	}
	cp := tr.CriticalPath()
	if cp.End != res.MakeSpan {
		t.Fatalf("critical path end %v != makespan %v", cp.End, res.MakeSpan)
	}
	var buf bytes.Buffer
	if err := trace.WriteReport(&buf, tr, trace.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(== makespan)")) {
		t.Fatalf("report does not confirm the critical path:\n%s", buf.String())
	}
}

// TestRunProgramEngines pins Session.RunProgram: a ring exchange op-stream
// evaluated by the direct engine and replayed on the concurrent engine must
// produce bit-identical per-rank times, and operand mismatches surface as
// ErrOption.
func TestRunProgramEngines(t *testing.T) {
	const procs = 8
	m := testMachine(t, procs)
	pr := sim.NewProgram(procs)
	for r := 0; r < procs; r++ {
		b := pr.Rank(r)
		b.Compute(1e-6 * float64(1+r%3))
		right, left := (r+1)%procs, (r+procs-1)%procs
		rq := b.Irecv(left, 7)
		sq := b.Isend(right, 7, 64)
		b.Wait(rq)
		b.Wait(sq)
	}

	direct, err := hbsp.New(m, hbsp.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	resD, err := direct.RunProgram(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := hbsp.New(m, hbsp.WithSeed(3), hbsp.WithConcurrentEngine())
	if err != nil {
		t.Fatal(err)
	}
	resC, err := concurrent.RunProgram(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(resD.Times) != procs {
		t.Fatalf("got %d times, want %d", len(resD.Times), procs)
	}
	for r := range resD.Times {
		if resD.Times[r] != resC.Times[r] {
			t.Fatalf("rank %d: direct %v != concurrent %v", r, resD.Times[r], resC.Times[r])
		}
	}
	if resD.MakeSpan <= 0 {
		t.Fatalf("non-positive makespan %v", resD.MakeSpan)
	}

	if _, err := direct.RunProgram(context.Background(), nil); !errors.Is(err, hbsp.ErrOption) {
		t.Fatalf("nil program: got %v, want ErrOption", err)
	}
	if _, err := direct.RunProgram(context.Background(), sim.NewProgram(procs+1)); !errors.Is(err, hbsp.ErrOption) {
		t.Fatalf("rank mismatch: got %v, want ErrOption", err)
	}
}

// Package bsp is the public surface of the overlapping BSPlib run-time: the
// per-process Ctx with registration, one-sided communication (Put/Get),
// bulk-synchronous message passing (Send/Move), superstep synchronization
// (Sync) and the schedule-driven user collectives (Broadcast, Reduce,
// AllReduce, AllGather, TotalExchange), plus the pluggable Synchronizer that
// performs the count total exchange ending every superstep.
//
// Programs are normally started through an hbsp.Session (hbsp.New +
// Session.RunBSP), which adds functional options, machine validation and
// context cancellation; RunContext is the lower-level entry point it uses.
package bsp

import (
	"context"

	ibsp "hbsp/internal/bsp"

	"hbsp/collective"
	"hbsp/sched"
	"hbsp/sim"
)

// Machine is the platform the BSP run-time executes on: the simulator
// interface plus per-rank kernel timing, satisfied by cluster.Machine.
type Machine = ibsp.Machine

// Program is the SPMD body executed by every process.
type Program = ibsp.Program

// Ctx is the per-process BSPlib context.
type Ctx = ibsp.Ctx

// Synchronizer drives the total exchange of per-pair message counts that
// ends a superstep.
type Synchronizer = ibsp.Synchronizer

// ScheduleSource supplies the verified schedules the Ctx collectives
// execute.
type ScheduleSource = ibsp.ScheduleSource

// SyncObserver is notified at the end of every Sync; hbsp.WithTrace installs
// one.
type SyncObserver = ibsp.SyncObserver

// RunConfig bundles everything a BSP run can be configured with.
type RunConfig = ibsp.RunConfig

// ReduceOp combines two reduction operands; it is always applied in rank
// order.
type ReduceOp = ibsp.ReduceOp

// Standard reduction operators.
var (
	OpSum = ibsp.OpSum
	OpMax = ibsp.OpMax
	OpMin = ibsp.OpMin
)

// ErrNotRegistered is returned when a one-sided operation names an unknown
// registration.
var ErrNotRegistered = ibsp.ErrNotRegistered

// DefaultSynchronizer returns the dissemination synchronizer the run-time
// uses when none is configured.
func DefaultSynchronizer() Synchronizer { return ibsp.DefaultSynchronizer() }

// NewScheduleSynchronizer wraps a verified collective schedule as a
// count-exchange synchronizer. Rooted broadcast or reduce schedules cannot
// deliver the full count map and are rejected.
func NewScheduleSynchronizer(pat *collective.Pattern) (Synchronizer, error) {
	return ibsp.NewScheduleSynchronizer(pat)
}

// NewAdaptedSynchronizer runs the model-driven greedy construction on the
// supplied parameter matrices, costs every candidate with the count payload
// it would carry, and wraps the winner as a synchronizer. It returns the
// adaptation result so callers can report the ranking.
func NewAdaptedSynchronizer(params collective.Params, opts collective.CostOptions) (Synchronizer, *collective.AdaptResult, error) {
	return ibsp.NewAdaptedSynchronizer(params, opts)
}

// NewScheduleCache returns the default generator-backed schedule source used
// by the Ctx collectives.
func NewScheduleCache() ScheduleSource { return ibsp.NewScheduleCache() }

// ExchangeSchedule returns the default dissemination count-exchange schedule
// for p ranks — the exact op-stream Sync evaluates per superstep, with every
// payload size resolved up front. Evaluate it with sched.RunSchedule to sweep
// the superstep synchronization cost at rank counts no concurrent run could
// reach.
func ExchangeSchedule(p int) (sched.Schedule, error) { return ibsp.ExchangeSchedule(p) }

// RunContext executes the SPMD program on every rank of the machine under an
// explicit configuration and a cancellable context.
func RunContext(ctx context.Context, m Machine, cfg RunConfig, program Program) (*sim.Result, error) {
	return ibsp.RunContext(ctx, m, cfg, program)
}

package hbsp

// In-package test: it runs the same programs once through the internal
// engines (hbsp/internal/...) and once through the public facade, and
// requires the per-rank virtual times to be bit-identical — the guarantee
// that the API redesign is a pure surface change with no timing drift.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	ibsp "hbsp/internal/bsp"
	impi "hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"

	"hbsp/bsp"
	"hbsp/collective"
	"hbsp/mpi"
	"hbsp/sim"
	"hbsp/trace"
)

func goldenMachine(t *testing.T, procs int) *platform.Machine {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func requireIdenticalTimes(t *testing.T, surface string, facade, internal *simnet.Result) {
	t.Helper()
	if len(facade.Times) != len(internal.Times) {
		t.Fatalf("%s: %d ranks via facade, %d via internal engine", surface, len(facade.Times), len(internal.Times))
	}
	for i := range facade.Times {
		if facade.Times[i] != internal.Times[i] {
			t.Errorf("%s rank %d: facade time %.17g != internal time %.17g",
				surface, i, facade.Times[i], internal.Times[i])
		}
	}
	if facade.MakeSpan != internal.MakeSpan || facade.Messages != internal.Messages || facade.Bytes != internal.Bytes {
		t.Errorf("%s: facade summary (%.17g, %d, %d) != internal (%.17g, %d, %d)",
			surface, facade.MakeSpan, facade.Messages, facade.Bytes,
			internal.MakeSpan, internal.Messages, internal.Bytes)
	}
}

// TestGoldenFacadeBSP pins that a BSP program (supersteps, one-sided
// communication, BSMP, a user collective) runs bit-identically through
// Session.RunBSP and through the internal bsp engine, with noise enabled.
func TestGoldenFacadeBSP(t *testing.T) {
	const procs = 16
	program := func(c *ibsp.Ctx) error {
		area := make([]float64, c.NProcs())
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		right := (c.Pid() + 1) % c.NProcs()
		if err := c.Put(right, "x", c.Pid(), []float64{1}); err != nil {
			return err
		}
		if err := c.Send(right, 7, []float64{2, 3}); err != nil {
			return err
		}
		if err := c.Sync(); err != nil {
			return err
		}
		if _, err := c.AllReduce([]float64{float64(c.Pid())}, ibsp.OpSum); err != nil {
			return err
		}
		return c.Sync()
	}

	internal, err := ibsp.Run(goldenMachine(t, procs).WithRunSeed(11), program)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.RunBSP(context.Background(), bsp.Program(program))
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "bsp", facade, internal)
}

// TestGoldenFacadeMPI pins the MPI surface the same way, including a
// schedule-driven collective.
func TestGoldenFacadeMPI(t *testing.T) {
	const procs = 12
	body := func(c *impi.Comm) error {
		c.Barrier()
		if c.Allreduce(1, impi.OpSum) != procs {
			return fmt.Errorf("rank %d: bad allreduce", c.Rank())
		}
		c.Bcast(42, 0)
		return nil
	}

	internal, err := impi.Run(goldenMachine(t, procs).WithRunSeed(5), body)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.RunMPI(context.Background(), func(c *mpi.Comm) error { return body(c) })
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "mpi", facade, internal)
}

// TestGoldenFacadeRaw pins the raw simulator surface (Session.Run vs
// simnet.Run) on an all-pairs exchange.
func TestGoldenFacadeRaw(t *testing.T) {
	const procs = 16
	body := func(p *simnet.Proc) error {
		n := p.Size()
		var reqs []*simnet.Request
		for d := 1; d < n; d++ {
			reqs = append(reqs, p.Irecv((p.Rank()-d+n)%n, d))
		}
		p.Compute(float64(p.Rank()) * 1e-7)
		for d := 1; d < n; d++ {
			p.Post((p.Rank()+d)%n, d, 8*d, nil)
		}
		for _, r := range reqs {
			p.Wait(r)
		}
		return nil
	}

	internal, err := simnet.Run(goldenMachine(t, procs).WithRunSeed(42), body)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.Run(context.Background(), func(p *sim.Proc) error { return body(p) })
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "sim", facade, internal)
}

// runEngines runs one session-built workload twice — default (direct
// discrete-event fast path) and WithConcurrentEngine — with a recorder
// attached to each, and requires bit-identical per-rank times and
// byte-identical merged event streams. It is the facade-level engine diff
// demanded by the two-engine architecture: the evaluator must be a pure
// execution-strategy change, invisible in every observable output.
func runEngines(t *testing.T, name string, seed int64, run func(s *Session) (*sim.Result, error), opts ...Option) {
	t.Helper()
	type outcome struct {
		res    *sim.Result
		events string
	}
	runWith := func(extra ...Option) outcome {
		rec := trace.NewRecorder()
		all := append(append([]Option{WithSeed(seed), WithRecorder(rec)}, opts...), extra...)
		sess, err := New(goldenMachine(t, 16), all...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := run(sess)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := rec.Trace()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteEvents(&buf, tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return outcome{res: res, events: buf.String()}
	}
	direct := runWith()
	concurrent := runWith(WithConcurrentEngine())
	requireIdenticalTimes(t, name, direct.res, concurrent.res)
	if direct.events != concurrent.events {
		t.Errorf("%s: traced event streams differ between engines", name)
	}
}

// TestGoldenEnginesBSP diffs the engines on the full BSP surface: supersteps
// with one-sided traffic and BSMP, plus every user-facing collective (which
// execute verified schedules through the mpi flood).
func TestGoldenEnginesBSP(t *testing.T) {
	program := func(c *bsp.Ctx) error {
		area := make([]float64, c.NProcs())
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		right := (c.Pid() + 1) % c.NProcs()
		if err := c.Put(right, "x", c.Pid(), []float64{1}); err != nil {
			return err
		}
		if err := c.Send(right, 7, []float64{2, 3}); err != nil {
			return err
		}
		if err := c.Sync(); err != nil {
			return err
		}
		if _, err := c.Broadcast(0, area); err != nil {
			return err
		}
		if _, err := c.Reduce(1, area, bsp.OpSum); err != nil {
			return err
		}
		if _, err := c.AllReduce([]float64{float64(c.Pid())}, bsp.OpSum); err != nil {
			return err
		}
		if _, err := c.AllGather([]float64{float64(c.Pid())}); err != nil {
			return err
		}
		blocks := make([][]float64, c.NProcs())
		for j := range blocks {
			blocks[j] = []float64{float64(j)}
		}
		if _, err := c.TotalExchange(blocks); err != nil {
			return err
		}
		return c.Sync()
	}
	runEngines(t, "bsp-engines", 23, func(s *Session) (*sim.Result, error) {
		return s.RunBSP(context.Background(), program)
	})
}

// TestGoldenEnginesBSPScheduleSynchronizer diffs the engines with a verified
// schedule executing the count exchange (the schedule-synchronizer fast
// path, payload sizes derived from the knowledge recursion).
func TestGoldenEnginesBSPScheduleSynchronizer(t *testing.T) {
	diss, err := collective.Dissemination(16)
	if err != nil {
		t.Fatal(err)
	}
	pat := collective.WithSyncPayload(diss, 4)
	program := func(c *bsp.Ctx) error {
		if err := c.Sync(); err != nil {
			return err
		}
		right := (c.Pid() + 1) % c.NProcs()
		if err := c.Send(right, 9, []float64{1}); err != nil {
			return err
		}
		return c.Sync()
	}
	runEngines(t, "bsp-schedule-sync", 31, func(s *Session) (*sim.Result, error) {
		return s.RunBSP(context.Background(), program)
	}, WithScheduleSynchronizer(pat))
}

func mustPattern(t *testing.T, build func() (*collective.Pattern, error)) *collective.Pattern {
	t.Helper()
	pat, err := build()
	if err != nil {
		t.Fatal(err)
	}
	return pat
}

// TestGoldenEnginesMPI diffs the engines on the MPI surface: barriers,
// pattern executions and schedule-driven data collectives.
func TestGoldenEnginesMPI(t *testing.T) {
	tree := mustPattern(t, func() (*collective.Pattern, error) { return collective.Tree(16) })
	bcast := mustPattern(t, func() (*collective.Pattern, error) { return collective.Broadcast(16, 2, 64) })
	allred := mustPattern(t, func() (*collective.Pattern, error) { return collective.AllReduce(16, 8) })
	runEngines(t, "mpi-engines", 37, func(s *Session) (*sim.Result, error) {
		return s.RunMPI(context.Background(), func(c *mpi.Comm) error {
			c.Barrier()
			collective.Execute(c, tree, 0)
			if _, err := c.BcastSchedule(bcast, 2, float64(c.Rank())); err != nil {
				return err
			}
			v, err := c.AllreduceSchedule(allred, 1, mpi.OpSum)
			if err != nil {
				return err
			}
			if v != 16 {
				return fmt.Errorf("rank %d: bad allreduce %v", c.Rank(), v)
			}
			if err := c.BarrierSchedule(tree); err != nil {
				return err
			}
			return nil
		})
	})
}

package hbsp

// In-package test: it runs the same programs once through the internal
// engines (hbsp/internal/...) and once through the public facade, and
// requires the per-rank virtual times to be bit-identical — the guarantee
// that the API redesign is a pure surface change with no timing drift.

import (
	"context"
	"fmt"
	"testing"

	ibsp "hbsp/internal/bsp"
	impi "hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"

	"hbsp/bsp"
	"hbsp/mpi"
	"hbsp/sim"
)

func goldenMachine(t *testing.T, procs int) *platform.Machine {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func requireIdenticalTimes(t *testing.T, surface string, facade, internal *simnet.Result) {
	t.Helper()
	if len(facade.Times) != len(internal.Times) {
		t.Fatalf("%s: %d ranks via facade, %d via internal engine", surface, len(facade.Times), len(internal.Times))
	}
	for i := range facade.Times {
		if facade.Times[i] != internal.Times[i] {
			t.Errorf("%s rank %d: facade time %.17g != internal time %.17g",
				surface, i, facade.Times[i], internal.Times[i])
		}
	}
	if facade.MakeSpan != internal.MakeSpan || facade.Messages != internal.Messages || facade.Bytes != internal.Bytes {
		t.Errorf("%s: facade summary (%.17g, %d, %d) != internal (%.17g, %d, %d)",
			surface, facade.MakeSpan, facade.Messages, facade.Bytes,
			internal.MakeSpan, internal.Messages, internal.Bytes)
	}
}

// TestGoldenFacadeBSP pins that a BSP program (supersteps, one-sided
// communication, BSMP, a user collective) runs bit-identically through
// Session.RunBSP and through the internal bsp engine, with noise enabled.
func TestGoldenFacadeBSP(t *testing.T) {
	const procs = 16
	program := func(c *ibsp.Ctx) error {
		area := make([]float64, c.NProcs())
		c.PushReg("x", area)
		if err := c.Sync(); err != nil {
			return err
		}
		right := (c.Pid() + 1) % c.NProcs()
		if err := c.Put(right, "x", c.Pid(), []float64{1}); err != nil {
			return err
		}
		if err := c.Send(right, 7, []float64{2, 3}); err != nil {
			return err
		}
		if err := c.Sync(); err != nil {
			return err
		}
		if _, err := c.AllReduce([]float64{float64(c.Pid())}, ibsp.OpSum); err != nil {
			return err
		}
		return c.Sync()
	}

	internal, err := ibsp.Run(goldenMachine(t, procs).WithRunSeed(11), program)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.RunBSP(context.Background(), bsp.Program(program))
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "bsp", facade, internal)
}

// TestGoldenFacadeMPI pins the MPI surface the same way, including a
// schedule-driven collective.
func TestGoldenFacadeMPI(t *testing.T) {
	const procs = 12
	body := func(c *impi.Comm) error {
		c.Barrier()
		if c.Allreduce(1, impi.OpSum) != procs {
			return fmt.Errorf("rank %d: bad allreduce", c.Rank())
		}
		c.Bcast(42, 0)
		return nil
	}

	internal, err := impi.Run(goldenMachine(t, procs).WithRunSeed(5), body)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.RunMPI(context.Background(), func(c *mpi.Comm) error { return body(c) })
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "mpi", facade, internal)
}

// TestGoldenFacadeRaw pins the raw simulator surface (Session.Run vs
// simnet.Run) on an all-pairs exchange.
func TestGoldenFacadeRaw(t *testing.T) {
	const procs = 16
	body := func(p *simnet.Proc) error {
		n := p.Size()
		var reqs []*simnet.Request
		for d := 1; d < n; d++ {
			reqs = append(reqs, p.Irecv((p.Rank()-d+n)%n, d))
		}
		p.Compute(float64(p.Rank()) * 1e-7)
		for d := 1; d < n; d++ {
			p.Post((p.Rank()+d)%n, d, 8*d, nil)
		}
		for _, r := range reqs {
			p.Wait(r)
		}
		return nil
	}

	internal, err := simnet.Run(goldenMachine(t, procs).WithRunSeed(42), body)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(goldenMachine(t, procs), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	facade, err := sess.Run(context.Background(), func(p *sim.Proc) error { return body(p) })
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalTimes(t, "sim", facade, internal)
}

// Package topology describes the hierarchical structure of the commodity SMP
// clusters the thesis models: a number of compute nodes, each with a number
// of processor sockets, each with a number of cores. It also implements the
// process-placement (affinity) schemes the thesis relies on to keep locality
// under experimental control: round-robin placement across nodes (the test
// clusters' scheduler default, responsible for the odd/even oscillations of
// Fig. 5.6) and block placement (fill one node before the next).
package topology

import (
	"errors"
	"fmt"
)

// Topology is a three-level cluster description: nodes × sockets × cores.
// Setting NodesPerGroup adds an optional fourth level above the nodes — the
// pods of a fat-tree or the groups of a dragonfly — whose cross-group traffic
// forms its own distance class (DistanceGroup).
type Topology struct {
	// Nodes is the number of compute nodes in the cluster.
	Nodes int
	// SocketsPerNode is the number of processor sockets per node.
	SocketsPerNode int
	// CoresPerSocket is the number of cores per socket.
	CoresPerSocket int
	// NodesPerGroup partitions consecutive nodes into switch groups (fat-tree
	// pods, dragonfly groups): nodes n and m share a group iff
	// n/NodesPerGroup == m/NodesPerGroup. Zero means a flat network — every
	// inter-node pair is DistanceNetwork and no DistanceGroup class exists.
	NodesPerGroup int
}

// New returns a validated topology.
func New(nodes, socketsPerNode, coresPerSocket int) (Topology, error) {
	t := Topology{Nodes: nodes, SocketsPerNode: socketsPerNode, CoresPerSocket: coresPerSocket}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// Validate reports whether every level has at least one element.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.SocketsPerNode < 1 || t.CoresPerSocket < 1 {
		return fmt.Errorf("topology: all levels must be >= 1, got %dx%dx%d",
			t.Nodes, t.SocketsPerNode, t.CoresPerSocket)
	}
	if t.NodesPerGroup < 0 {
		return fmt.Errorf("topology: NodesPerGroup must be >= 0, got %d", t.NodesPerGroup)
	}
	return nil
}

// Groups returns the number of switch groups (1 when the network is flat).
func (t Topology) Groups() int {
	if t.NodesPerGroup <= 0 {
		return 1
	}
	return (t.Nodes + t.NodesPerGroup - 1) / t.NodesPerGroup
}

// GroupOf returns the switch group of a node (0 when the network is flat).
func (t Topology) GroupOf(node int) int {
	if t.NodesPerGroup <= 0 {
		return 0
	}
	return node / t.NodesPerGroup
}

// CoresPerNode returns the number of cores in one node.
func (t Topology) CoresPerNode() int { return t.SocketsPerNode * t.CoresPerSocket }

// TotalCores returns the number of cores in the whole cluster.
func (t Topology) TotalCores() int { return t.Nodes * t.CoresPerNode() }

// String renders the topology in the thesis' NxSxC shorthand (e.g. "8x2x4"),
// with a "/gG" group suffix when the network is grouped.
func (t Topology) String() string {
	if t.NodesPerGroup > 0 {
		return fmt.Sprintf("%dx%dx%d/g%d", t.Nodes, t.SocketsPerNode, t.CoresPerSocket, t.NodesPerGroup)
	}
	return fmt.Sprintf("%dx%dx%d", t.Nodes, t.SocketsPerNode, t.CoresPerSocket)
}

// CoreID identifies a physical core inside a topology.
type CoreID struct {
	Node   int
	Socket int
	Core   int
}

// Distance classifies the topological distance between two placed processes.
// It is the independent variable of the heterogeneous latency, overhead and
// bandwidth matrices.
type Distance int

const (
	// DistanceSelf is a process communicating with itself (the invocation
	// overhead case, O_ii in the thesis notation).
	DistanceSelf Distance = iota
	// DistanceSocket is communication between cores on the same socket.
	DistanceSocket
	// DistanceNode is communication between sockets of the same node.
	DistanceNode
	// DistanceNetwork is communication between different nodes of the same
	// switch group (or any two nodes of a flat network).
	DistanceNetwork
	// DistanceGroup is communication between nodes of different switch groups
	// — across fat-tree core switches or dragonfly global links. It only
	// occurs on topologies with NodesPerGroup set.
	DistanceGroup
)

// String names the distance class.
func (d Distance) String() string {
	switch d {
	case DistanceSelf:
		return "self"
	case DistanceSocket:
		return "socket"
	case DistanceNode:
		return "node"
	case DistanceNetwork:
		return "network"
	case DistanceGroup:
		return "group"
	default:
		return fmt.Sprintf("Distance(%d)", int(d))
	}
}

// DistanceBetween classifies the distance between two cores.
func DistanceBetween(a, b CoreID) Distance {
	switch {
	case a == b:
		return DistanceSelf
	case a.Node != b.Node:
		return DistanceNetwork
	case a.Socket != b.Socket:
		return DistanceNode
	default:
		return DistanceSocket
	}
}

// PlacementPolicy selects how MPI-style ranks are mapped onto cores.
type PlacementPolicy int

const (
	// RoundRobin distributes consecutive ranks over consecutive nodes, the
	// default behaviour of the thesis' cluster scheduler. Within a node,
	// ranks take consecutive core indices in arrival order (the sorted-rank
	// affinity scheme of Section 5.2).
	RoundRobin PlacementPolicy = iota
	// Block fills each node completely before moving to the next.
	Block
)

// String names the placement policy.
func (p PlacementPolicy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("PlacementPolicy(%d)", int(p))
	}
}

// ErrTooManyRanks is returned when a placement requests more processes than
// the topology has cores.
var ErrTooManyRanks = errors.New("topology: more ranks than cores")

// Placement maps ranks 0..P-1 onto cores of a topology.
type Placement struct {
	Topology Topology
	Policy   PlacementPolicy
	cores    []CoreID
}

// Place computes the placement of p ranks onto the topology under the given
// policy. Placement is one-to-one (no oversubscription), matching the thesis'
// restriction to one process per physical core.
func Place(t Topology, p int, policy PlacementPolicy) (*Placement, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if p < 1 {
		return nil, fmt.Errorf("topology: need at least one rank, got %d", p)
	}
	if p > t.TotalCores() {
		return nil, fmt.Errorf("%w: %d ranks on %d cores", ErrTooManyRanks, p, t.TotalCores())
	}
	cores := make([]CoreID, p)
	switch policy {
	case Block:
		for rank := 0; rank < p; rank++ {
			node := rank / t.CoresPerNode()
			within := rank % t.CoresPerNode()
			cores[rank] = CoreID{
				Node:   node,
				Socket: within / t.CoresPerSocket,
				Core:   within % t.CoresPerSocket,
			}
		}
	case RoundRobin:
		// Ranks are dealt to nodes round-robin; the n-th rank landing on a
		// node occupies core index n within that node (sorted-rank affinity).
		perNodeCount := make([]int, t.Nodes)
		for rank := 0; rank < p; rank++ {
			node := rank % t.Nodes
			within := perNodeCount[node]
			perNodeCount[node]++
			if within >= t.CoresPerNode() {
				return nil, fmt.Errorf("%w: node %d oversubscribed", ErrTooManyRanks, node)
			}
			cores[rank] = CoreID{
				Node:   node,
				Socket: within / t.CoresPerSocket,
				Core:   within % t.CoresPerSocket,
			}
		}
	default:
		return nil, fmt.Errorf("topology: unknown placement policy %v", policy)
	}
	return &Placement{Topology: t, Policy: policy, cores: cores}, nil
}

// Ranks returns the number of placed ranks.
func (pl *Placement) Ranks() int { return len(pl.cores) }

// Core returns the core a rank is pinned to.
func (pl *Placement) Core(rank int) CoreID {
	if rank < 0 || rank >= len(pl.cores) {
		panic(fmt.Sprintf("topology: rank %d out of range %d", rank, len(pl.cores)))
	}
	return pl.cores[rank]
}

// Distance returns the distance class between two ranks: the core-level
// distance, promoted to DistanceGroup when the ranks' nodes sit in different
// switch groups of a grouped topology.
func (pl *Placement) Distance(a, b int) Distance {
	d := DistanceBetween(pl.Core(a), pl.Core(b))
	if d == DistanceNetwork {
		t := pl.Topology
		if t.GroupOf(pl.Core(a).Node) != t.GroupOf(pl.Core(b).Node) {
			return DistanceGroup
		}
	}
	return d
}

// SameNode reports whether two ranks share a node.
func (pl *Placement) SameNode(a, b int) bool {
	return pl.Core(a).Node == pl.Core(b).Node
}

// NodeOf returns the node index hosting a rank.
func (pl *Placement) NodeOf(rank int) int { return pl.Core(rank).Node }

// RanksOnNode returns the ranks placed on the given node, in rank order.
func (pl *Placement) RanksOnNode(node int) []int {
	var out []int
	for rank, c := range pl.cores {
		if c.Node == node {
			out = append(out, rank)
		}
	}
	return out
}

// NodesUsed returns the number of distinct nodes that host at least one rank.
func (pl *Placement) NodesUsed() int {
	seen := make(map[int]bool)
	for _, c := range pl.cores {
		seen[c.Node] = true
	}
	return len(seen)
}

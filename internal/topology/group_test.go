package topology

import "testing"

func TestGroupedTopology(t *testing.T) {
	top, err := New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	top.NodesPerGroup = 4
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if top.Groups() != 2 {
		t.Fatalf("Groups() = %d, want 2", top.Groups())
	}
	for node, want := range []int{0, 0, 0, 0, 1, 1, 1, 1} {
		if got := top.GroupOf(node); got != want {
			t.Errorf("GroupOf(%d) = %d, want %d", node, got, want)
		}
	}
	if top.String() != "8x1x1/g4" {
		t.Errorf("String() = %q", top.String())
	}

	// Uneven group sizes round up.
	top.NodesPerGroup = 3
	if top.Groups() != 3 {
		t.Errorf("ceil(8/3) groups = %d, want 3", top.Groups())
	}

	// Flat topologies have one implicit group.
	flat, _ := New(8, 1, 1)
	if flat.Groups() != 1 || flat.GroupOf(7) != 0 {
		t.Errorf("flat topology: Groups()=%d GroupOf(7)=%d", flat.Groups(), flat.GroupOf(7))
	}
	if flat.String() != "8x1x1" {
		t.Errorf("flat String() = %q", flat.String())
	}

	// Negative NodesPerGroup is rejected.
	bad, _ := New(8, 1, 1)
	bad.NodesPerGroup = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative NodesPerGroup validated")
	}
}

func TestDistanceGroupPromotion(t *testing.T) {
	top, err := New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	top.NodesPerGroup = 4
	pl, err := Place(top, 8, Block)
	if err != nil {
		t.Fatal(err)
	}
	// Same group: plain network distance. Different groups: promoted.
	if d := pl.Distance(0, 3); d != DistanceNetwork {
		t.Errorf("intra-group distance = %v, want network", d)
	}
	if d := pl.Distance(0, 4); d != DistanceGroup {
		t.Errorf("cross-group distance = %v, want group", d)
	}
	if d := pl.Distance(7, 0); d != DistanceGroup {
		t.Errorf("cross-group distance (reversed) = %v, want group", d)
	}
	if d := pl.Distance(2, 2); d != DistanceSelf {
		t.Errorf("self distance = %v", d)
	}
	if DistanceGroup.String() != "group" {
		t.Errorf("DistanceGroup.String() = %q", DistanceGroup.String())
	}
}

package topology

import (
	"testing"
	"testing/quick"
)

func TestTopologyCounts(t *testing.T) {
	top, err := New(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if top.CoresPerNode() != 8 || top.TotalCores() != 64 {
		t.Fatalf("CoresPerNode=%d TotalCores=%d", top.CoresPerNode(), top.TotalCores())
	}
	if top.String() != "8x2x4" {
		t.Fatalf("String() = %q", top.String())
	}
}

func TestTopologyValidate(t *testing.T) {
	if _, err := New(0, 2, 4); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := New(2, -1, 4); err == nil {
		t.Fatal("negative sockets should fail")
	}
}

func TestDistanceBetween(t *testing.T) {
	a := CoreID{Node: 0, Socket: 0, Core: 0}
	if DistanceBetween(a, a) != DistanceSelf {
		t.Fatal("self distance wrong")
	}
	if DistanceBetween(a, CoreID{0, 0, 1}) != DistanceSocket {
		t.Fatal("socket distance wrong")
	}
	if DistanceBetween(a, CoreID{0, 1, 0}) != DistanceNode {
		t.Fatal("node distance wrong")
	}
	if DistanceBetween(a, CoreID{1, 0, 0}) != DistanceNetwork {
		t.Fatal("network distance wrong")
	}
}

func TestDistanceString(t *testing.T) {
	names := map[Distance]string{
		DistanceSelf:    "self",
		DistanceSocket:  "socket",
		DistanceNode:    "node",
		DistanceNetwork: "network",
	}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), want)
		}
	}
	if Distance(99).String() == "" {
		t.Error("unknown distance should still render")
	}
}

func TestPlacementBlock(t *testing.T) {
	top, _ := New(2, 2, 2)
	pl, err := Place(top, 8, Block)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Ranks() != 8 {
		t.Fatalf("Ranks = %d", pl.Ranks())
	}
	// Block: ranks 0..3 on node 0, 4..7 on node 1.
	for r := 0; r < 4; r++ {
		if pl.NodeOf(r) != 0 {
			t.Fatalf("rank %d on node %d, want 0", r, pl.NodeOf(r))
		}
	}
	for r := 4; r < 8; r++ {
		if pl.NodeOf(r) != 1 {
			t.Fatalf("rank %d on node %d, want 1", r, pl.NodeOf(r))
		}
	}
	if pl.Distance(0, 1) != DistanceSocket {
		t.Fatalf("ranks 0,1 distance %v", pl.Distance(0, 1))
	}
	if pl.Distance(0, 2) != DistanceNode {
		t.Fatalf("ranks 0,2 distance %v", pl.Distance(0, 2))
	}
	if pl.Distance(0, 4) != DistanceNetwork {
		t.Fatalf("ranks 0,4 distance %v", pl.Distance(0, 4))
	}
}

func TestPlacementRoundRobin(t *testing.T) {
	top, _ := New(4, 2, 4)
	pl, err := Place(top, 8, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin over 4 nodes: rank r lands on node r mod 4.
	for r := 0; r < 8; r++ {
		if pl.NodeOf(r) != r%4 {
			t.Fatalf("rank %d on node %d, want %d", r, pl.NodeOf(r), r%4)
		}
	}
	// Ranks 0 and 4 are the first and second arrivals on node 0, so they
	// share a socket (cores 0 and 1).
	if pl.Distance(0, 4) != DistanceSocket {
		t.Fatalf("ranks 0,4 distance %v, want socket", pl.Distance(0, 4))
	}
	if !pl.SameNode(0, 4) || pl.SameNode(0, 1) {
		t.Fatal("SameNode wrong")
	}
}

func TestPlacementErrors(t *testing.T) {
	top, _ := New(2, 1, 2)
	if _, err := Place(top, 5, Block); err == nil {
		t.Fatal("oversubscription should fail")
	}
	if _, err := Place(top, 0, Block); err == nil {
		t.Fatal("zero ranks should fail")
	}
	if _, err := Place(Topology{}, 1, Block); err == nil {
		t.Fatal("invalid topology should fail")
	}
	if _, err := Place(top, 2, PlacementPolicy(42)); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestRanksOnNodeAndNodesUsed(t *testing.T) {
	top, _ := New(3, 1, 2)
	pl, _ := Place(top, 5, RoundRobin)
	if got := pl.NodesUsed(); got != 3 {
		t.Fatalf("NodesUsed = %d", got)
	}
	on0 := pl.RanksOnNode(0)
	if len(on0) != 2 || on0[0] != 0 || on0[1] != 3 {
		t.Fatalf("RanksOnNode(0) = %v", on0)
	}
	blk, _ := Place(top, 2, Block)
	if blk.NodesUsed() != 1 {
		t.Fatalf("block NodesUsed = %d", blk.NodesUsed())
	}
}

func TestCorePanicsOnBadRank(t *testing.T) {
	top, _ := New(1, 1, 2)
	pl, _ := Place(top, 2, Block)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pl.Core(2)
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Block.String() != "block" {
		t.Fatal("policy names wrong")
	}
	if PlacementPolicy(7).String() == "" {
		t.Fatal("unknown policy should render")
	}
}

// Property: every placement is one-to-one — no two ranks share a core — and
// distances are symmetric.
func TestPlacementInjectiveProperty(t *testing.T) {
	f := func(nodesRaw, socketsRaw, coresRaw, pRaw uint8, rr bool) bool {
		nodes := int(nodesRaw%4) + 1
		sockets := int(socketsRaw%3) + 1
		cores := int(coresRaw%4) + 1
		top, err := New(nodes, sockets, cores)
		if err != nil {
			return false
		}
		p := int(pRaw)%top.TotalCores() + 1
		policy := Block
		if rr {
			policy = RoundRobin
		}
		pl, err := Place(top, p, policy)
		if err != nil {
			return false
		}
		seen := make(map[CoreID]bool)
		for r := 0; r < p; r++ {
			c := pl.Core(r)
			if seen[c] {
				return false
			}
			seen[c] = true
			if c.Node >= nodes || c.Socket >= sockets || c.Core >= cores {
				return false
			}
		}
		for a := 0; a < p; a++ {
			for b := 0; b < p; b++ {
				if pl.Distance(a, b) != pl.Distance(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package adapt implements Case Study I (Chapter 7): automatic, model-driven
// construction of synchronization algorithms. It clusters processes by the
// measured pairwise latency matrix (the thesis' subset-size selection, SSS),
// builds hierarchical hybrid barriers from per-cluster gather/release phases
// around an inter-representative barrier, and greedily selects the pattern
// combination with the lowest predicted cost according to the Chapter 5 cost
// model.
package adapt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hbsp/internal/matrix"
)

// Clustering is a partition of the process set into latency-homogeneous
// subsets, ordered by their lowest member rank.
type Clustering struct {
	// Groups lists the member ranks of each cluster in increasing order.
	Groups [][]int
	// Threshold is the latency below which two processes are considered to
	// belong to the same subset.
	Threshold float64
}

// ErrBadInput is returned for malformed clustering inputs.
var ErrBadInput = errors.New("adapt: invalid input")

// AutoThreshold picks a clustering threshold from a pairwise latency matrix
// by locating the largest multiplicative gap between consecutive distinct
// off-diagonal latency values: hierarchical platforms separate their local
// and remote link classes by an order of magnitude, and the threshold is
// placed inside that gap (the geometric mean of its endpoints).
func AutoThreshold(latency *matrix.Dense) (float64, error) {
	if latency == nil || latency.Rows() != latency.Cols() || latency.Rows() < 2 {
		return 0, fmt.Errorf("%w: need a square latency matrix of at least two processes", ErrBadInput)
	}
	p := latency.Rows()
	var values []float64
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j && latency.At(i, j) > 0 {
				values = append(values, latency.At(i, j))
			}
		}
	}
	if len(values) == 0 {
		return 0, fmt.Errorf("%w: latency matrix has no positive off-diagonal entries", ErrBadInput)
	}
	sort.Float64s(values)
	bestRatio := 1.0
	threshold := values[len(values)-1] * 2 // default: everything in one cluster
	for i := 1; i < len(values); i++ {
		if values[i-1] <= 0 {
			continue
		}
		ratio := values[i] / values[i-1]
		if ratio > bestRatio {
			bestRatio = ratio
			threshold = math.Sqrt(values[i-1] * values[i])
		}
	}
	if bestRatio < 2 {
		// No clear hierarchy: treat the platform as flat.
		threshold = values[len(values)-1] * 2
	}
	return threshold, nil
}

// ClusterByLatency partitions the processes so that two processes share a
// cluster whenever their pairwise latency (in either direction) is below the
// threshold, taking the transitive closure (union-find).
func ClusterByLatency(latency *matrix.Dense, threshold float64) (*Clustering, error) {
	if latency == nil || latency.Rows() != latency.Cols() || latency.Rows() < 1 {
		return nil, fmt.Errorf("%w: need a square latency matrix", ErrBadInput)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("%w: threshold must be positive", ErrBadInput)
	}
	p := latency.Rows()
	parent := make([]int, p)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if latency.At(i, j) < threshold || latency.At(j, i) < threshold {
				union(i, j)
			}
		}
	}
	groupsByRoot := map[int][]int{}
	for i := 0; i < p; i++ {
		r := find(i)
		groupsByRoot[r] = append(groupsByRoot[r], i)
	}
	var roots []int
	for r := range groupsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	cl := &Clustering{Threshold: threshold}
	for _, r := range roots {
		members := groupsByRoot[r]
		sort.Ints(members)
		cl.Groups = append(cl.Groups, members)
	}
	return cl, nil
}

// ClusterAuto combines AutoThreshold and ClusterByLatency.
func ClusterAuto(latency *matrix.Dense) (*Clustering, error) {
	th, err := AutoThreshold(latency)
	if err != nil {
		return nil, err
	}
	return ClusterByLatency(latency, th)
}

// Procs returns the total number of processes covered by the clustering.
func (cl *Clustering) Procs() int {
	n := 0
	for _, g := range cl.Groups {
		n += len(g)
	}
	return n
}

// Sizes returns the cluster sizes in group order; this is the quantity
// reported by Tables 7.1 and 7.2.
func (cl *Clustering) Sizes() []int {
	out := make([]int, len(cl.Groups))
	for i, g := range cl.Groups {
		out[i] = len(g)
	}
	return out
}

// Representatives returns the representative (lowest) rank of each cluster.
func (cl *Clustering) Representatives() []int {
	out := make([]int, len(cl.Groups))
	for i, g := range cl.Groups {
		out[i] = g[0]
	}
	return out
}

// Validate checks that the clustering is a partition of 0..P-1.
func (cl *Clustering) Validate() error {
	seen := map[int]bool{}
	for _, g := range cl.Groups {
		if len(g) == 0 {
			return fmt.Errorf("%w: empty cluster", ErrBadInput)
		}
		for _, r := range g {
			if r < 0 || seen[r] {
				return fmt.Errorf("%w: rank %d repeated or negative", ErrBadInput, r)
			}
			seen[r] = true
		}
	}
	p := cl.Procs()
	for r := 0; r < p; r++ {
		if !seen[r] {
			return fmt.Errorf("%w: rank %d missing from clustering", ErrBadInput, r)
		}
	}
	return nil
}

// String summarizes the clustering in the style of the thesis' tables.
func (cl *Clustering) String() string {
	return fmt.Sprintf("%d processes in %d subsets of sizes %v (threshold %.3g s)",
		cl.Procs(), len(cl.Groups), cl.Sizes(), cl.Threshold)
}

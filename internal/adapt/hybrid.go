package adapt

import (
	"fmt"
	"sort"
	"strings"

	"hbsp/internal/barrier"
	"hbsp/internal/matrix"
)

// SubPattern names the building blocks the hybrid barrier construction can
// choose from (Fig. 7.2/7.3).
type SubPattern int

const (
	// SubLinear gathers/releases a cluster through its representative in a
	// single stage each, or runs a flat linear barrier at the top level.
	SubLinear SubPattern = iota
	// SubTree gathers/releases a cluster with a binary combining tree, or
	// runs a flat tree barrier at the top level.
	SubTree
	// SubDissemination runs a dissemination barrier; it is only meaningful
	// at the inter-representative level (it has no gather/release form).
	SubDissemination
)

// String names the sub-pattern.
func (sp SubPattern) String() string {
	switch sp {
	case SubLinear:
		return "linear"
	case SubTree:
		return "tree"
	case SubDissemination:
		return "dissemination"
	default:
		return fmt.Sprintf("SubPattern(%d)", int(sp))
	}
}

// gatherStages returns the arrival-phase stage matrices of the chosen
// sub-pattern for a cluster, expressed over the global rank space. The
// cluster's representative is its first member.
func gatherStages(kind SubPattern, members []int, procs int) ([]*matrix.Bool, error) {
	k := len(members)
	if k <= 1 {
		return nil, nil
	}
	switch kind {
	case SubLinear:
		st := matrix.NewBool(procs, procs)
		for _, m := range members[1:] {
			st.Set(m, members[0], true)
		}
		return []*matrix.Bool{st}, nil
	case SubTree:
		var stages []*matrix.Bool
		for dist := 1; dist < k; dist *= 2 {
			st := matrix.NewBool(procs, procs)
			used := false
			for i := dist; i < k; i += 2 * dist {
				st.Set(members[i], members[i-dist], true)
				used = true
			}
			if used {
				stages = append(stages, st)
			}
		}
		return stages, nil
	default:
		return nil, fmt.Errorf("adapt: %v cannot be used as an intra-cluster gather pattern", kind)
	}
}

// topLevelStages returns the stage matrices of the inter-representative
// barrier, expressed over the global rank space.
func topLevelStages(kind SubPattern, reps []int, procs int) ([]*matrix.Bool, error) {
	k := len(reps)
	if k <= 1 {
		return nil, nil
	}
	var local *barrier.Pattern
	var err error
	switch kind {
	case SubLinear:
		local, err = barrier.Linear(k, 0)
	case SubTree:
		local, err = barrier.Tree(k)
	case SubDissemination:
		local, err = barrier.Dissemination(k)
	default:
		return nil, fmt.Errorf("adapt: unknown top-level pattern %v", kind)
	}
	if err != nil {
		return nil, err
	}
	var out []*matrix.Bool
	for _, st := range local.Stages {
		g := matrix.NewBool(procs, procs)
		for i := 0; i < k; i++ {
			for _, j := range st.RowTrue(i) {
				g.Set(reps[i], reps[j], true)
			}
		}
		out = append(out, g)
	}
	return out, nil
}

// mergeAligned overlays per-cluster stage lists into global stages. Clusters
// with fewer stages are right-aligned so that every cluster finishes its
// gather phase in the final merged stage (and, mirrored, starts its release
// phase in the first).
func mergeAligned(perCluster [][]*matrix.Bool, procs int, rightAlign bool) []*matrix.Bool {
	max := 0
	for _, stages := range perCluster {
		if len(stages) > max {
			max = len(stages)
		}
	}
	if max == 0 {
		return nil
	}
	merged := make([]*matrix.Bool, max)
	for s := range merged {
		merged[s] = matrix.NewBool(procs, procs)
	}
	for _, stages := range perCluster {
		offset := 0
		if rightAlign {
			offset = max - len(stages)
		}
		for s, st := range stages {
			dst := merged[offset+s]
			for i := 0; i < procs; i++ {
				for _, j := range st.RowTrue(i) {
					dst.Set(i, j, true)
				}
			}
		}
	}
	return merged
}

// BuildHybrid constructs a hierarchical hybrid barrier (Fig. 7.2): each
// cluster gathers onto its representative with the intra pattern, the
// representatives synchronize with the inter pattern, and the gather phase is
// mirrored to release the clusters.
func BuildHybrid(cl *Clustering, intra, inter SubPattern) (*barrier.Pattern, error) {
	if cl == nil {
		return nil, fmt.Errorf("%w: nil clustering", ErrBadInput)
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	if intra != SubLinear && intra != SubTree {
		return nil, fmt.Errorf("adapt: %v cannot be used as an intra-cluster gather pattern", intra)
	}
	if inter != SubLinear && inter != SubTree && inter != SubDissemination {
		return nil, fmt.Errorf("adapt: unknown top-level pattern %v", inter)
	}
	procs := cl.Procs()
	reps := cl.Representatives()
	sort.Ints(reps)

	var gathers [][]*matrix.Bool
	for _, g := range cl.Groups {
		stages, err := gatherStages(intra, g, procs)
		if err != nil {
			return nil, err
		}
		gathers = append(gathers, stages)
	}
	gatherPhase := mergeAligned(gathers, procs, true)

	topPhase, err := topLevelStages(inter, reps, procs)
	if err != nil {
		return nil, err
	}

	// Release phase: the gather stages transposed, in reverse order,
	// left-aligned so every cluster starts releasing immediately.
	var releases [][]*matrix.Bool
	for _, stages := range gathers {
		var rel []*matrix.Bool
		for s := len(stages) - 1; s >= 0; s-- {
			rel = append(rel, stages[s].Transpose())
		}
		releases = append(releases, rel)
	}
	releasePhase := mergeAligned(releases, procs, false)

	var stages []*matrix.Bool
	stages = append(stages, gatherPhase...)
	stages = append(stages, topPhase...)
	stages = append(stages, releasePhase...)
	if len(stages) == 0 {
		stages = []*matrix.Bool{matrix.NewBool(procs, procs)}
	}
	pat := &barrier.Pattern{
		Name:   fmt.Sprintf("hybrid(%s/%s)", intra, inter),
		Procs:  procs,
		Stages: stages,
	}
	if err := pat.Verify(); err != nil {
		return nil, fmt.Errorf("adapt: constructed hybrid barrier is incorrect: %w", err)
	}
	return pat, nil
}

// Candidate describes one evaluated barrier candidate.
type Candidate struct {
	// Name is the pattern name.
	Name string
	// Pattern is the constructed pattern.
	Pattern *barrier.Pattern
	// Predicted is the cost-model prediction for the pattern.
	Predicted float64
}

// Result is the outcome of the greedy adaptive construction.
type Result struct {
	// Clustering is the subset structure the construction used.
	Clustering *Clustering
	// Best is the candidate with the lowest predicted cost.
	Best Candidate
	// Candidates lists every evaluated candidate, sorted by predicted cost.
	Candidates []Candidate
}

// Greedy performs the model-driven barrier construction of Section 7.3: it
// clusters the processes by the latency matrix, builds every hybrid
// combination of intra patterns {linear, tree} and inter patterns {linear,
// tree, dissemination}, adds the flat reference algorithms, predicts each
// candidate's cost with the Chapter 5 model, and returns them ranked.
func Greedy(params barrier.Params, opts barrier.CostOptions) (*Result, error) {
	return greedyAuto(params, opts, nil)
}

// GreedyWithClustering is Greedy with an externally supplied clustering.
func GreedyWithClustering(params barrier.Params, opts barrier.CostOptions, cl *Clustering) (*Result, error) {
	return greedyWithClustering(params, opts, cl, nil)
}

// GreedySync performs the same model-driven construction for the BSP
// count-exchange schedule: every candidate is costed carrying the message
// counts it would transport at run time (barrier.WithCountPayload with
// bytesPerEntry-sized counters), so the winner is the schedule a
// bsp.Synchronizer should actually execute. bytesPerEntry must match the
// wire width of the runtime that will execute the winner — the internal/bsp
// count exchange sends 4-byte counters (bsp.NewAdaptedSynchronizer passes
// its own wire constant); pricing a different width can rank candidates by
// payloads the runtime never sends.
func GreedySync(params barrier.Params, opts barrier.CostOptions, bytesPerEntry int) (*Result, error) {
	return greedyAuto(params, opts, func(pat *barrier.Pattern) *barrier.Pattern {
		return barrier.WithCountPayload(pat, bytesPerEntry)
	})
}

// greedyAuto derives the clustering from the latency matrix and runs the
// greedy construction, optionally transforming every candidate first.
func greedyAuto(params barrier.Params, opts barrier.CostOptions, transform func(*barrier.Pattern) *barrier.Pattern) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	cl, err := ClusterAuto(params.Latency)
	if err != nil {
		return nil, err
	}
	return greedyWithClustering(params, opts, cl, transform)
}

// greedyWithClustering evaluates every candidate, optionally transformed
// (e.g. payload-attached) before prediction.
func greedyWithClustering(params barrier.Params, opts barrier.CostOptions, cl *Clustering, transform func(*barrier.Pattern) *barrier.Pattern) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if cl == nil {
		return nil, fmt.Errorf("%w: nil clustering", ErrBadInput)
	}
	if err := cl.Validate(); err != nil {
		return nil, err
	}
	p := params.Procs()
	if cl.Procs() != p {
		return nil, fmt.Errorf("%w: clustering covers %d processes, params describe %d", ErrBadInput, cl.Procs(), p)
	}

	var candidates []Candidate
	add := func(name string, pat *barrier.Pattern) error {
		if transform != nil {
			// Keep the caller-supplied candidate name (e.g. the "flat-"
			// prefix) and carry over any suffix the transform appended to
			// the pattern's own name, so rankings stay comparable with the
			// untransformed Greedy path.
			base := pat.Name
			pat = transform(pat)
			if suffix, ok := strings.CutPrefix(pat.Name, base); ok {
				name += suffix
			} else {
				name = pat.Name
			}
		}
		pred, err := barrier.Predict(pat, params, opts)
		if err != nil {
			return err
		}
		candidates = append(candidates, Candidate{Name: name, Pattern: pat, Predicted: pred.Total})
		return nil
	}

	// Flat reference algorithms.
	if flat, err := barrier.Linear(p, 0); err == nil {
		if err := add("flat-linear", flat); err != nil {
			return nil, err
		}
	}
	if flat, err := barrier.Tree(p); err == nil {
		if err := add("flat-tree", flat); err != nil {
			return nil, err
		}
	}
	if flat, err := barrier.Dissemination(p); err == nil {
		if err := add("flat-dissemination", flat); err != nil {
			return nil, err
		}
	}

	// Hybrid combinations over the clustering.
	for _, intra := range []SubPattern{SubLinear, SubTree} {
		for _, inter := range []SubPattern{SubLinear, SubTree, SubDissemination} {
			pat, err := BuildHybrid(cl, intra, inter)
			if err != nil {
				return nil, err
			}
			if err := add(pat.Name, pat); err != nil {
				return nil, err
			}
		}
	}

	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Predicted < candidates[j].Predicted })
	return &Result{Clustering: cl, Best: candidates[0], Candidates: candidates}, nil
}

package adapt

import (
	"strings"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/matrix"
	"hbsp/internal/platform"
)

func xeonParams(t *testing.T, ranks int) barrier.Params {
	t.Helper()
	prof := platform.Xeon8x2x4()
	pl, err := prof.Place(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return barrier.Params{
		Latency:  prof.LatencyMatrix(pl),
		Overhead: prof.OverheadMatrix(pl),
		Beta:     prof.BetaMatrix(pl),
	}
}

func TestAutoThresholdSeparatesNodeAndNetwork(t *testing.T) {
	params := xeonParams(t, 32)
	th, err := AutoThreshold(params.Latency)
	if err != nil {
		t.Fatal(err)
	}
	// Intra-node latencies are below a microsecond, network ones tens of
	// microseconds; the threshold must fall in between.
	if th < 1e-6 || th > 28e-6 {
		t.Fatalf("threshold %g not between local and network latencies", th)
	}
}

func TestAutoThresholdErrors(t *testing.T) {
	if _, err := AutoThreshold(nil); err == nil {
		t.Error("nil matrix should fail")
	}
	if _, err := AutoThreshold(matrix.NewDense(1, 1)); err == nil {
		t.Error("single process should fail")
	}
	if _, err := AutoThreshold(matrix.NewDense(3, 3)); err == nil {
		t.Error("all-zero matrix should fail")
	}
}

func TestClusterByLatencyGroupsNodes(t *testing.T) {
	// 32 round-robin ranks on 8 nodes: every node hosts ranks r, r+8, r+16,
	// r+24, which must form one cluster each.
	params := xeonParams(t, 32)
	cl, err := ClusterAuto(params.Latency)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(cl.Groups) != 8 {
		t.Fatalf("expected 8 clusters (one per node), got %d: %v", len(cl.Groups), cl.Sizes())
	}
	for _, size := range cl.Sizes() {
		if size != 4 {
			t.Fatalf("expected clusters of 4 ranks, got %v", cl.Sizes())
		}
	}
	reps := cl.Representatives()
	if len(reps) != 8 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("representatives = %v", reps)
	}
	if !strings.Contains(cl.String(), "8 subsets") {
		t.Fatalf("String() = %q", cl.String())
	}
}

func TestClusterByLatencyErrors(t *testing.T) {
	if _, err := ClusterByLatency(nil, 1); err == nil {
		t.Error("nil matrix should fail")
	}
	if _, err := ClusterByLatency(matrix.NewDense(2, 2), 0); err == nil {
		t.Error("zero threshold should fail")
	}
}

func TestClusteringValidate(t *testing.T) {
	bad := &Clustering{Groups: [][]int{{0, 1}, {1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate rank should fail")
	}
	gap := &Clustering{Groups: [][]int{{0}, {2}}}
	if err := gap.Validate(); err == nil {
		t.Error("missing rank should fail")
	}
	empty := &Clustering{Groups: [][]int{{}}}
	if err := empty.Validate(); err == nil {
		t.Error("empty group should fail")
	}
}

func TestBuildHybridVerifies(t *testing.T) {
	params := xeonParams(t, 24)
	cl, err := ClusterAuto(params.Latency)
	if err != nil {
		t.Fatal(err)
	}
	for _, intra := range []SubPattern{SubLinear, SubTree} {
		for _, inter := range []SubPattern{SubLinear, SubTree, SubDissemination} {
			pat, err := BuildHybrid(cl, intra, inter)
			if err != nil {
				t.Fatalf("BuildHybrid(%v, %v): %v", intra, inter, err)
			}
			if err := pat.Verify(); err != nil {
				t.Errorf("hybrid %v/%v does not verify: %v", intra, inter, err)
			}
			if pat.Procs != 24 {
				t.Errorf("hybrid %v/%v has %d procs", intra, inter, pat.Procs)
			}
		}
	}
}

func TestBuildHybridRejectsBadInputs(t *testing.T) {
	if _, err := BuildHybrid(nil, SubLinear, SubLinear); err == nil {
		t.Error("nil clustering should fail")
	}
	cl := &Clustering{Groups: [][]int{{0, 1, 2, 3}}}
	if _, err := BuildHybrid(cl, SubDissemination, SubLinear); err == nil {
		t.Error("dissemination as intra pattern should fail")
	}
	if _, err := BuildHybrid(cl, SubLinear, SubPattern(42)); err == nil {
		t.Error("unknown inter pattern should fail")
	}
}

func TestBuildHybridSingleClusterAndSingleton(t *testing.T) {
	one := &Clustering{Groups: [][]int{{0, 1, 2, 3, 4}}}
	pat, err := BuildHybrid(one, SubTree, SubDissemination)
	if err != nil {
		t.Fatal(err)
	}
	if err := pat.Verify(); err != nil {
		t.Fatal(err)
	}
	single := &Clustering{Groups: [][]int{{0}}}
	pat, err = BuildHybrid(single, SubLinear, SubLinear)
	if err != nil {
		t.Fatal(err)
	}
	if err := pat.Verify(); err != nil {
		t.Fatal(err)
	}
	// Mixed cluster sizes including singletons.
	mixed := &Clustering{Groups: [][]int{{0, 1, 2}, {3}, {4, 5}}}
	pat, err = BuildHybrid(mixed, SubTree, SubTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := pat.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyPrefersHierarchyAwarePattern(t *testing.T) {
	params := xeonParams(t, 32)
	res, err := Greedy(params, barrier.DefaultCostOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 9 {
		t.Fatalf("expected 9 candidates, got %d", len(res.Candidates))
	}
	// Candidates must be sorted by predicted cost.
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i].Predicted < res.Candidates[i-1].Predicted {
			t.Fatal("candidates not sorted by predicted cost")
		}
	}
	// The winning candidate must be at least as good as the flat linear
	// barrier and the flat dissemination barrier (the "system defaults").
	var flatDiss, flatLin float64
	for _, c := range res.Candidates {
		switch c.Name {
		case "flat-dissemination":
			flatDiss = c.Predicted
		case "flat-linear":
			flatLin = c.Predicted
		}
	}
	if res.Best.Predicted > flatDiss || res.Best.Predicted > flatLin {
		t.Fatalf("best candidate %q (%g) worse than defaults (diss %g, linear %g)",
			res.Best.Name, res.Best.Predicted, flatDiss, flatLin)
	}
	// On a clustered gigabit platform a hierarchy-aware hybrid should win.
	if !strings.HasPrefix(res.Best.Name, "hybrid(") {
		t.Logf("note: best candidate is %q (flat), predicted %g", res.Best.Name, res.Best.Predicted)
	}
	if res.Best.Pattern == nil || res.Best.Pattern.Verify() != nil {
		t.Fatal("best pattern missing or incorrect")
	}
}

func TestGreedyWithClusteringValidation(t *testing.T) {
	params := xeonParams(t, 8)
	if _, err := GreedyWithClustering(params, barrier.DefaultCostOptions(), nil); err == nil {
		t.Error("nil clustering should fail")
	}
	tooSmall := &Clustering{Groups: [][]int{{0, 1}}}
	if _, err := GreedyWithClustering(params, barrier.DefaultCostOptions(), tooSmall); err == nil {
		t.Error("clustering/params size mismatch should fail")
	}
	if _, err := Greedy(barrier.Params{}, barrier.DefaultCostOptions()); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestAdaptedBarrierBeatsWorstDefaultInSimulation(t *testing.T) {
	// Close the loop of Case Study I: construct the adapted barrier from the
	// model and check, in simulation, that it is no slower than the linear
	// default and competitive with the best flat algorithm.
	const ranks = 32
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(ranks)
	if err != nil {
		t.Fatal(err)
	}
	params := barrier.Params{
		Latency:  prof.LatencyMatrix(m.Placement()),
		Overhead: prof.OverheadMatrix(m.Placement()),
	}
	res, err := Greedy(params, barrier.DefaultCostOptions())
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := barrier.Measure(m, res.Best.Pattern, 3)
	if err != nil {
		t.Fatal(err)
	}
	linPat, _ := barrier.Linear(ranks, 0)
	linear, err := barrier.Measure(m, linPat, 3)
	if err != nil {
		t.Fatal(err)
	}
	dissPat, _ := barrier.Dissemination(ranks)
	diss, err := barrier.Measure(m, dissPat, 3)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.MeanWorst > linear.MeanWorst {
		t.Errorf("adapted barrier (%g) slower than the linear default (%g)", adapted.MeanWorst, linear.MeanWorst)
	}
	if adapted.MeanWorst > 1.5*diss.MeanWorst {
		t.Errorf("adapted barrier (%g) much slower than flat dissemination (%g)", adapted.MeanWorst, diss.MeanWorst)
	}
}

func TestSubPatternString(t *testing.T) {
	if SubLinear.String() != "linear" || SubTree.String() != "tree" || SubDissemination.String() != "dissemination" {
		t.Fatal("sub-pattern names wrong")
	}
	if SubPattern(9).String() == "" {
		t.Fatal("unknown sub-pattern should render")
	}
}

func TestGreedySyncCostsCandidatesWithCountPayload(t *testing.T) {
	params := xeonParams(t, 32)
	res, err := GreedySync(params, barrier.DefaultCostOptions(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 9 {
		t.Fatalf("expected 9 candidates, got %d", len(res.Candidates))
	}
	plain, err := Greedy(params, barrier.DefaultCostOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if !strings.HasSuffix(c.Name, "+counts") {
			t.Errorf("candidate %q not costed with the count payload", c.Name)
		}
		if c.Pattern.Payload == nil {
			t.Errorf("candidate %q carries no payload matrices", c.Name)
		}
		if c.Pattern.Verify() != nil {
			t.Errorf("candidate %q does not verify", c.Name)
		}
	}
	// Carrying the count map can only make a schedule more expensive than its
	// signal-only counterpart.
	if res.Best.Predicted < plain.Best.Predicted {
		t.Fatalf("payload-carrying best (%g) cheaper than signal-only best (%g)",
			res.Best.Predicted, plain.Best.Predicted)
	}
}

package experiments

import (
	"fmt"
	"sync"

	"hbsp/internal/adapt"
	"hbsp/internal/barrier"
	"hbsp/internal/bench"
	"hbsp/internal/platform"
)

// BarrierPoint is one point of the Chapter 5 barrier figures: the measured
// and predicted cost of one algorithm at one process count, with the derived
// absolute and relative errors.
type BarrierPoint struct {
	Algorithm string
	Procs     int
	Measured  float64
	Predicted float64
	// AbsError is Predicted − Measured (Figs. 5.8/5.12).
	AbsError float64
	// RelError is AbsError / Measured (Figs. 5.9/5.13).
	RelError float64
}

var paramsMemo = struct {
	sync.Mutex
	m map[string]barrier.Params
}{m: map[string]barrier.Params{}}

// paramsKey fingerprints everything the pairwise benchmark depends on: the
// full profile (fmt prints map keys sorted, so the rendering is
// deterministic), the process count and the repetition budget. Fingerprinting
// the whole struct keeps the memo safe against callers that mutate preset
// fields (the hybrid-wins test zeroes NoiseRel, for example).
func paramsKey(m *platform.Machine, reps int) string {
	return fmt.Sprintf("%+v|procs=%d|reps=%d", *m.Profile(), m.Procs(), reps)
}

// ResetParamsCache empties the memoized pairwise-benchmark results. Only
// benchmarks need it: resetting inside the timed loop restores the pre-memo
// meaning of ns/op, where every iteration pays for its own parameter
// measurement.
func ResetParamsCache() {
	paramsMemo.Lock()
	paramsMemo.m = map[string]barrier.Params{}
	paramsMemo.Unlock()
}

// barrierParams obtains the cost-model parameter matrices for a machine by
// running the pairwise benchmark (the thesis' independently collected
// architectural profile). Results are memoized per profile fingerprint:
// several series sweep the same machines, and re-running the O(P²)-message
// benchmark would reproduce identical matrices. Callers treat the shared
// matrices as read-only.
func barrierParams(m *platform.Machine, reps int) (barrier.Params, error) {
	key := paramsKey(m, reps)
	paramsMemo.Lock()
	cached, ok := paramsMemo.m[key]
	paramsMemo.Unlock()
	if ok {
		return cached, nil
	}
	params, err := bench.ModelParams(m, reps)
	if err != nil {
		return barrier.Params{}, err
	}
	paramsMemo.Lock()
	paramsMemo.m[key] = params
	paramsMemo.Unlock()
	return params, nil
}

// Fig5_6Series reproduces Figs. 5.6–5.9 (on the Xeon profile) or 5.10–5.13
// (on the Opteron profile): measured and predicted execution times of the
// dissemination (D), tree (T) and linear (L) barriers over a sweep of process
// counts, with absolute and relative prediction errors.
func Fig5_6Series(prof *platform.Profile, maxProcs int, opts Options) ([]BarrierPoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procSweep(opts.ProcStep, maxProcs), func(p int) ([]BarrierPoint, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := barrierParams(m, opts.Reps)
		if err != nil {
			return nil, err
		}
		meas, err := barrier.MeasureAlgorithms(m.WithRunSeed(int64(100+p)), opts.Reps)
		if err != nil {
			return nil, err
		}
		preds, err := barrier.PredictAlgorithms(p, params, barrier.DefaultCostOptions())
		if err != nil {
			return nil, err
		}
		var out []BarrierPoint
		for _, name := range []string{"dissemination", "tree", "linear"} {
			measured := meas[name].MeanWorst
			predicted := preds[name].Total
			pt := BarrierPoint{Algorithm: name, Procs: p, Measured: measured, Predicted: predicted}
			pt.AbsError = predicted - measured
			if measured > 0 {
				pt.RelError = pt.AbsError / measured
			}
			out = append(out, pt)
		}
		return out, nil
	})
}

// BarrierTable renders barrier points in the four-figure layout of the
// thesis' chapters (measured, predicted, absolute error, relative error).
func BarrierTable(title string, points []BarrierPoint) *Table {
	t := &Table{Title: title, Columns: []string{"P", "algorithm", "measured [s]", "predicted [s]", "abs err [s]", "rel err"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), p.Algorithm, fmtSeconds(p.Measured), fmtSeconds(p.Predicted),
			fmtSeconds(p.AbsError), fmtPercent(p.RelError))
	}
	return t
}

// SyncPoint is one point of Figs. 6.3/6.4: the measured cost of the BSP
// synchronization (dissemination pattern carrying the message-count payload)
// against the extended cost-model estimate.
type SyncPoint struct {
	Procs     int
	Measured  float64
	Predicted float64
	RelError  float64
}

// Fig6_3Series reproduces Figs. 6.3/6.4 for the given platform.
func Fig6_3Series(prof *platform.Profile, maxProcs int, opts Options) ([]SyncPoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procSweep(opts.ProcStep, maxProcs), func(p int) ([]SyncPoint, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := barrierParams(m, opts.Reps)
		if err != nil {
			return nil, err
		}
		diss, err := barrier.Dissemination(p)
		if err != nil {
			return nil, err
		}
		pat := barrier.WithSyncPayload(diss, 4)
		meas, err := barrier.Measure(m.WithRunSeed(int64(200+p)), pat, opts.Reps)
		if err != nil {
			return nil, err
		}
		pred, err := barrier.Predict(pat, params, barrier.DefaultCostOptions())
		if err != nil {
			return nil, err
		}
		pt := SyncPoint{Procs: p, Measured: meas.MeanWorst, Predicted: pred.Total}
		if pt.Measured > 0 {
			pt.RelError = (pt.Predicted - pt.Measured) / pt.Measured
		}
		return []SyncPoint{pt}, nil
	})
}

// ClusteringResult captures the SSS clustering output of Tables 7.1/7.2.
type ClusteringResult struct {
	Platform  string
	Procs     int
	Subsets   int
	Sizes     []int
	Threshold float64
}

// Table7_1 reproduces Table 7.1 (60 processes on the Xeon 8×2×4 profile) and
// Table 7.2 (115 processes on the Opteron 10×2×6 profile) depending on the
// supplied profile and process count.
func Table7_1(prof *platform.Profile, procs int) (*ClusteringResult, error) {
	pl, err := prof.Place(procs)
	if err != nil {
		return nil, err
	}
	cl, err := adapt.ClusterAuto(prof.LatencyMatrix(pl))
	if err != nil {
		return nil, err
	}
	return &ClusteringResult{
		Platform:  prof.Name,
		Procs:     procs,
		Subsets:   len(cl.Groups),
		Sizes:     cl.Sizes(),
		Threshold: cl.Threshold,
	}, nil
}

// HybridPoint is one point of Figs. 7.4–7.7: the measured cost of the best
// adapted barrier against the flat reference algorithms.
type HybridPoint struct {
	Procs         int
	BestName      string
	Adapted       float64
	Dissemination float64
	Tree          float64
	Linear        float64
	Predicted     float64
}

// Fig7_4Series reproduces Figs. 7.4–7.7: for a sweep of process counts, the
// greedily adapted barrier is constructed from benchmarked parameter matrices
// and measured against the flat reference algorithms.
func Fig7_4Series(prof *platform.Profile, maxProcs int, opts Options) ([]HybridPoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procSweep(opts.ProcStep, maxProcs), func(p int) ([]HybridPoint, error) {
		if p < 4 {
			return nil, nil
		}
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := barrierParams(m, opts.Reps)
		if err != nil {
			return nil, err
		}
		res, err := adapt.Greedy(params, barrier.DefaultCostOptions())
		if err != nil {
			return nil, err
		}
		adaptedMeas, err := barrier.Measure(m.WithRunSeed(int64(300+p)), res.Best.Pattern, opts.Reps)
		if err != nil {
			return nil, err
		}
		flat, err := barrier.MeasureAlgorithms(m.WithRunSeed(int64(300+p)), opts.Reps)
		if err != nil {
			return nil, err
		}
		return []HybridPoint{{
			Procs:         p,
			BestName:      res.Best.Name,
			Adapted:       adaptedMeas.MeanWorst,
			Dissemination: flat["dissemination"].MeanWorst,
			Tree:          flat["tree"].MeanWorst,
			Linear:        flat["linear"].MeanWorst,
			Predicted:     res.Best.Predicted,
		}}, nil
	})
}

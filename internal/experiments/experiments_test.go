package experiments

import (
	"strings"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/platform"
)

func tinyOptions() Options {
	return Options{
		Reps:              2,
		ProcStep:          8,
		MaxProcsXeon:      16,
		MaxProcsOpteron:   24,
		StencilLargeN:     192,
		StencilSmallN:     96,
		StencilIterations: 2,
		Synthetic:         true,
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	q := Quick()
	if o.Reps != q.Reps || o.MaxProcsXeon != q.MaxProcsXeon || o.StencilLargeN != q.StencilLargeN {
		t.Fatalf("normalize did not apply defaults: %+v", o)
	}
	f := Full()
	if f.MaxProcsXeon != 64 || f.MaxProcsOpteron != 144 {
		t.Fatalf("Full() sweeps wrong: %+v", f)
	}
}

func TestProcSweep(t *testing.T) {
	s := procSweep(8, 32)
	if s[0] != 2 || s[len(s)-1] != 32 {
		t.Fatalf("procSweep = %v", s)
	}
	if got := procSweep(8, 1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("degenerate sweep = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "1") {
		t.Fatalf("table rendering wrong: %q", s)
	}
}

func TestTable3_1AndFig3_2(t *testing.T) {
	prof := platform.Xeon8x2x4()
	opts := tinyOptions()
	rows, err := Table3_1(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 { // P = 8, 16
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.R <= 0 || r.L <= 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	if s := Table3_1Table(rows).String(); !strings.Contains(s, "Table 3.1") {
		t.Fatal("table title missing")
	}
	points, err := Fig3_2(prof, rows, 1<<20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rows) {
		t.Fatalf("Fig3_2 points = %d", len(points))
	}
	for _, p := range points {
		if p.Measured <= 0 || p.Estimated <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		// The thesis' observation: the classic estimate deviates wildly
		// (here: it overprices the program by at least 2x).
		if p.Estimated < p.Measured {
			t.Logf("note: estimate %g below measurement %g at P=%d", p.Estimated, p.Measured, p.P)
		}
	}
}

func TestFig4Series(t *testing.T) {
	prof := platform.Xeon8x2x4()
	rates, err := Fig4_2(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) == 0 {
		t.Fatal("no rate points")
	}
	preds, err := Fig4_3(prof, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	sawStencilMisprediction := false
	for _, p := range preds {
		if p.Predicted <= 0 || p.Measured <= 0 {
			t.Fatalf("bad prediction point %+v", p)
		}
		if p.RelativeError > 0.5 {
			t.Fatalf("kernel-specific prediction error too large: %+v", p)
		}
		if p.Kernel == "stencil5" && p.MflopsDerived > 0 {
			if relDiff(p.MflopsDerived, p.Measured) > 0.05 {
				sawStencilMisprediction = true
			}
		}
	}
	if !sawStencilMisprediction {
		t.Error("expected the DAXPY-derived rate to mispredict the stencil kernel")
	}
	blas, err := Fig4_5(platform.AthlonX2(), 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(blas) == 0 {
		t.Fatal("no BLAS points")
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

func TestFig5AndFig6Series(t *testing.T) {
	prof := platform.Xeon8x2x4()
	opts := tinyOptions()
	points, err := Fig5_6Series(prof, opts.MaxProcsXeon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no barrier points")
	}
	for _, p := range points {
		if p.Measured <= 0 || p.Predicted <= 0 {
			t.Fatalf("bad barrier point %+v", p)
		}
	}
	if s := BarrierTable("Fig 5.6", points).String(); !strings.Contains(s, "dissemination") {
		t.Fatal("barrier table missing algorithms")
	}
	sync, err := Fig6_3Series(prof, opts.MaxProcsXeon, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sync {
		if p.Measured <= 0 || p.Predicted <= 0 {
			t.Fatalf("bad sync point %+v", p)
		}
		if p.RelError > 3 || p.RelError < -0.95 {
			t.Fatalf("sync prediction out of control: %+v", p)
		}
	}
}

func TestTable7AndFig7Series(t *testing.T) {
	res, err := Table7_1(platform.Xeon8x2x4(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs != 60 || res.Subsets != 8 {
		t.Fatalf("60-process SSS clustering: %+v", res)
	}
	res2, err := Table7_1(platform.Opteron10x2x6(), 115)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Procs != 115 || res2.Subsets != 10 {
		t.Fatalf("115-process SSS clustering: %+v", res2)
	}

	opts := tinyOptions()
	hybrid, err := Fig7_4Series(platform.Xeon8x2x4(), 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(hybrid) == 0 {
		t.Fatal("no hybrid points")
	}
	for _, h := range hybrid {
		if h.Adapted <= 0 || h.Dissemination <= 0 || h.Linear <= 0 {
			t.Fatalf("bad hybrid point %+v", h)
		}
		// The adapted barrier must beat the linear default clearly.
		if h.Adapted > h.Linear {
			t.Errorf("adapted barrier (%g) slower than linear default (%g) at P=%d", h.Adapted, h.Linear, h.Procs)
		}
	}
}

func TestTable8AndFig8Series(t *testing.T) {
	prof := platform.Xeon8x2x4()
	opts := tinyOptions()

	rows := Table8_1(opts)
	if len(rows) != 10 {
		t.Fatalf("Table 8.1 rows = %d", len(rows))
	}
	if s := Table8_1Table(rows).String(); !strings.Contains(s, "Table 8.1") {
		t.Fatal("table title missing")
	}

	wall, err := Table8_2(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(wall) == 0 {
		t.Fatal("no wall-time rows")
	}
	for _, w := range wall {
		if w.MPI <= 0 || w.MPIR <= 0 {
			t.Fatalf("bad wall-time row %+v", w)
		}
	}

	scaling, err := Fig8_4Series(prof, opts.StencilSmallN, []string{"bsp", "mpi"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(scaling) == 0 {
		t.Fatal("no scaling points")
	}
	if _, err := Fig8_4Series(prof, opts.StencilSmallN, []string{"bogus"}, opts); err == nil {
		t.Fatal("unknown implementation should fail")
	}

	preds, err := Fig8_10Series(prof, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Fatal("no prediction points")
	}
	foundOverlapLarge := false
	for _, p := range preds {
		if p.Predicted <= 0 || p.Measured <= 0 {
			t.Fatalf("bad prediction point %+v", p)
		}
		if p.Variant == "overlap" && p.Problem == "large" {
			foundOverlapLarge = true
			if p.RelError > 2 || p.RelError < -0.8 {
				t.Errorf("overlap-model prediction error out of range: %+v", p)
			}
		}
	}
	if !foundOverlapLarge {
		t.Fatal("missing overlap/large prediction points")
	}

	sweep, err := Fig8_18Series(prof, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("overlap sweep points = %d", len(sweep))
	}
	for _, p := range sweep {
		if p.Predicted <= 0 || p.Measured <= 0 {
			t.Fatalf("bad overlap point %+v", p)
		}
	}
	// The measured iteration time with a full overlap window must not be
	// slower than with none.
	if sweep[len(sweep)-1].Measured > sweep[0].Measured*1.1 {
		t.Errorf("full overlap window (%g) slower than none (%g)", sweep[len(sweep)-1].Measured, sweep[0].Measured)
	}
}

func TestCollectiveSeries(t *testing.T) {
	prof := platform.Xeon8x2x4()
	opts := tinyOptions()
	points, err := CollectiveSeries(prof, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	perCollective := map[string]int{}
	for _, p := range points {
		perCollective[p.Collective]++
		if p.Measured <= 0 || p.Predicted <= 0 {
			t.Fatalf("bad collective point %+v", p)
		}
		if p.Stages < 1 {
			t.Fatalf("collective %q reports %d stages", p.Collective, p.Stages)
		}
		// Same control band the sync-payload experiment tolerates.
		if p.RelError > 3 || p.RelError < -0.95 {
			t.Fatalf("collective prediction out of control: %+v", p)
		}
	}
	for _, name := range []string{"broadcast", "reduce", "allreduce", "allgather", "total-exchange"} {
		if perCollective[name] == 0 {
			t.Errorf("no points for collective %q", name)
		}
	}
	if s := CollectiveTable("Collectives", points).String(); !strings.Contains(s, "total-exchange") {
		t.Fatal("collective table missing rows")
	}
}

func TestAdaptedSyncSeries(t *testing.T) {
	prof := platform.Xeon8x2x4()
	opts := tinyOptions()
	points, err := AdaptedSyncSeries(prof, 16, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no adapted-sync points")
	}
	for _, p := range points {
		if p.Best == "" || p.Predicted <= 0 || p.Dissemination <= 0 || p.Adapted <= 0 {
			t.Fatalf("bad adapted-sync point %+v", p)
		}
		// The model-selected schedule must not make the runtime drastically
		// slower than the dissemination default it was chosen to match/beat.
		if p.Adapted > 2*p.Dissemination {
			t.Errorf("adapted synchronizer (%g) much slower than default (%g) at P=%d",
				p.Adapted, p.Dissemination, p.Procs)
		}
	}
	if s := AdaptedSyncTable("Adapted", points).String(); !strings.Contains(s, "dissemination") {
		t.Fatal("adapted-sync table missing rows")
	}
}

// At 60 processes on the Xeon preset (the thesis' Table 7.1 configuration,
// with uneven cluster sizes) the payload-aware greedy selection must pick a
// hierarchical hybrid schedule, and executing it through the Synchronizer
// must beat the dissemination default it replaces.
func TestAdaptedSynchronizerHybridWinsAt60(t *testing.T) {
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(60)
	if err != nil {
		t.Fatal(err)
	}
	params, err := barrierParams(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	sync, res, err := bsp.NewAdaptedSynchronizer(params, barrier.DefaultCostOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Best.Name, "hybrid(") {
		t.Fatalf("expected a hybrid schedule at P=60, selection picked %q", res.Best.Name)
	}
	program := func(ctx *bsp.Ctx) error { return ctx.Sync() }
	adapted, err := bsp.RunWith(m, sync, program)
	if err != nil {
		t.Fatal(err)
	}
	base, err := bsp.Run(m, program)
	if err != nil {
		t.Fatal(err)
	}
	if adapted.MakeSpan >= base.MakeSpan {
		t.Fatalf("adapted hybrid sync (%g) not faster than the dissemination default (%g)",
			adapted.MakeSpan, base.MakeSpan)
	}
}

package experiments

import (
	"context"
	"fmt"

	"hbsp/internal/bsp"
	"hbsp/internal/fault"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// Fault-injection studies: how well does the LogGP cost model predict the
// makespan inflation a deterministic fault scenario causes? Two series exist,
// one per fault axis — a straggler magnitude sweep and a fail-stop
// checkpoint-interval sweep — both evaluated on the flat homogeneous cluster
// (noise-free, so the fault plan is the only source of perturbation) through
// the direct engine.

// StragglerPoint is one point of the straggler magnitude sweep.
type StragglerPoint struct {
	// Factor is the straggler's slowdown multiplier (rank 0's noise draws
	// are multiplied by it for the whole run).
	Factor float64
	// Baseline is the fault-free makespan, MakeSpan the straggler makespan.
	Baseline float64
	MakeSpan float64
	// Inflation is the simulated makespan increase, Predicted the first-order
	// LogGP model of it: per execution, every stage of the exchange charges
	// the straggler (overhead + latency + transfer) once, each scaled by the
	// slowdown — so the inflation is execs·Σ_stages(o+L+kβ)·(factor−1).
	Inflation float64
	Predicted float64
	// RelError is (Predicted − Inflation) / Inflation.
	RelError float64
}

// StragglerSeries sweeps the slowdown factor of a single straggling rank
// (rank 0) across execs executions of the superstep count exchange at the
// given rank count, comparing the simulated makespan inflation against the
// first-order model prediction.
func StragglerSeries(procs, execs int, factors []float64) ([]StragglerPoint, error) {
	if procs < 2 {
		return nil, fmt.Errorf("experiments: straggler series needs >= 2 ranks, got %d", procs)
	}
	baseline, delta, err := stragglerBaseline(procs, execs)
	if err != nil {
		return nil, err
	}
	return ParallelSeries(factors, func(f float64) ([]StragglerPoint, error) {
		m, err := platform.FlatClusterMachine(procs)
		if err != nil {
			return nil, err
		}
		s, err := bsp.ExchangeSchedule(procs)
		if err != nil {
			return nil, err
		}
		o := simnet.DefaultOptions()
		o.Faults = &fault.Plan{Slowdowns: []fault.Slowdown{{Rank: 0, Factor: f}}}
		res, err := sched.RunSchedule(context.Background(), m, s, execs, o)
		if err != nil {
			return nil, err
		}
		pt := StragglerPoint{
			Factor:    f,
			Baseline:  baseline,
			MakeSpan:  res.MakeSpan,
			Inflation: res.MakeSpan - baseline,
			Predicted: float64(execs) * delta * (f - 1),
		}
		if pt.Inflation != 0 {
			pt.RelError = (pt.Predicted - pt.Inflation) / pt.Inflation
		}
		return []StragglerPoint{pt}, nil
	})
}

// stragglerBaseline evaluates the fault-free exchange and the per-execution
// model term Σ_stages(o+L+kβ) of rank 0's slowed costs.
func stragglerBaseline(procs, execs int) (baseline, delta float64, err error) {
	m, err := platform.FlatClusterMachine(procs)
	if err != nil {
		return 0, 0, err
	}
	s, err := bsp.ExchangeSchedule(procs)
	if err != nil {
		return 0, 0, err
	}
	res, err := sched.RunSchedule(context.Background(), m, s, execs, simnet.DefaultOptions())
	if err != nil {
		return 0, 0, err
	}
	for sg := 0; sg < s.NumStages(); sg++ {
		st := s.StageAt(sg)
		for k, dst := range st.Out[0] {
			size := 0
			if st.OutBytes != nil {
				size = st.OutBytes[0][k]
			}
			delta += m.Overhead(0, dst) + m.Latency(0, dst) + float64(size)*m.Beta(0, dst)
		}
	}
	return res.MakeSpan, delta, nil
}

// StragglerTable renders straggler sweep points.
func StragglerTable(title string, points []StragglerPoint) *Table {
	t := &Table{Title: title, Columns: []string{"factor", "baseline [s]", "makespan [s]", "inflation [s]", "predicted [s]", "rel err"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%g", p.Factor), fmtSeconds(p.Baseline), fmtSeconds(p.MakeSpan),
			fmtSeconds(p.Inflation), fmtSeconds(p.Predicted), fmtPercent(p.RelError))
	}
	return t
}

// RecoveryPoint is one point of the fail-stop checkpoint-interval sweep.
type RecoveryPoint struct {
	// FailAt is the virtual crash time (half the fault-free makespan),
	// Checkpoint the checkpoint interval (0 = no checkpointing: the whole
	// prefix is recomputed).
	FailAt     float64
	Checkpoint float64
	// Predicted is the accounting model's recovery cost — restart plus
	// recompute back to the last checkpoint (FailAt mod Checkpoint).
	Predicted float64
	// Inflation is the simulated makespan increase over the fault-free run;
	// in a fully synchronized workload every rank stalls behind the failed
	// one, so the inflation matches the predicted penalty.
	Inflation float64
	MakeSpan  float64
}

// RecoverySeries crashes rank 0 halfway through execs executions of the
// count exchange and sweeps the checkpoint interval, given as fractions of
// the crash time (0 = no checkpointing). Restart cost is fixed at an eighth
// of the crash time. The sweep shows the recovery cost the checkpoint
// interval buys: from restart+FailAt with no checkpoints down to nearly just
// the restart cost at tight intervals.
func RecoverySeries(procs, execs int, fractions []float64) ([]RecoveryPoint, error) {
	if procs < 2 {
		return nil, fmt.Errorf("experiments: recovery series needs >= 2 ranks, got %d", procs)
	}
	m, err := platform.FlatClusterMachine(procs)
	if err != nil {
		return nil, err
	}
	s, err := bsp.ExchangeSchedule(procs)
	if err != nil {
		return nil, err
	}
	base, err := sched.RunSchedule(context.Background(), m, s, execs, simnet.DefaultOptions())
	if err != nil {
		return nil, err
	}
	failAt := base.MakeSpan * 0.5
	restart := failAt / 8
	return ParallelSeries(fractions, func(fr float64) ([]RecoveryPoint, error) {
		m, err := platform.FlatClusterMachine(procs)
		if err != nil {
			return nil, err
		}
		s, err := bsp.ExchangeSchedule(procs)
		if err != nil {
			return nil, err
		}
		fs := fault.FailStop{Rank: 0, FailAt: failAt, Restart: restart, Checkpoint: failAt * fr}
		o := simnet.DefaultOptions()
		o.Faults = &fault.Plan{FailStops: []fault.FailStop{fs}}
		res, err := sched.RunSchedule(context.Background(), m, s, execs, o)
		if err != nil {
			return nil, err
		}
		return []RecoveryPoint{{
			FailAt:     failAt,
			Checkpoint: fs.Checkpoint,
			Predicted:  fs.Penalty(),
			Inflation:  res.MakeSpan - base.MakeSpan,
			MakeSpan:   res.MakeSpan,
		}}, nil
	})
}

// RecoveryTable renders checkpoint-interval sweep points.
func RecoveryTable(title string, points []RecoveryPoint) *Table {
	t := &Table{Title: title, Columns: []string{"checkpoint [s]", "fail at [s]", "predicted cost [s]", "simulated cost [s]", "makespan [s]"}}
	for _, p := range points {
		t.AddRow(fmtSeconds(p.Checkpoint), fmtSeconds(p.FailAt), fmtSeconds(p.Predicted),
			fmtSeconds(p.Inflation), fmtSeconds(p.MakeSpan))
	}
	return t
}

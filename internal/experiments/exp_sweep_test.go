package experiments

import (
	"context"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// TestBytesSweepSeriesMatchesIndependentRuns demands the incremental series
// be bit-identical to the sequential loop of independent RunSchedule calls it
// replaces — the sweep evaluator's reuse must be unobservable in the results.
func TestBytesSweepSeriesMatchesIndependentRuns(t *testing.T) {
	const procs = 32
	payloads := []int{0, 16, 64, 64, 256, 1024, 64}
	prof := platform.Xeon8x2x4()
	pts, err := BytesSweepSeries(prof, procs, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(payloads) {
		t.Fatalf("got %d points, want %d", len(pts), len(payloads))
	}
	m, err := prof.Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range payloads {
		s, err := barrier.StreamTotalExchange(procs, b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.RunSchedule(context.Background(), m, s, 1, simnet.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got := pts[i]
		if got.MakeSpan != want.MakeSpan || got.Messages != want.Messages || got.Bytes != want.Bytes {
			t.Fatalf("point %d (payload %d): got {%v %d %d}, want {%v %d %d}",
				i, b, got.MakeSpan, got.Messages, got.Bytes, want.MakeSpan, want.Messages, want.Bytes)
		}
		if got.Procs != procs || got.Payload != b || got.Scale != 1 {
			t.Fatalf("point %d metadata: %+v", i, got)
		}
	}
}

func TestScaleSweepSeriesMatchesIndependentRuns(t *testing.T) {
	const procs, payload = 32, 64
	scales := []float64{1, 0.5, 2, 1.25, 1}
	prof := platform.Xeon8x2x4()
	pts, err := ScaleSweepSeries(prof, procs, payload, scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(scales) {
		t.Fatalf("got %d points, want %d", len(pts), len(scales))
	}
	s, err := barrier.StreamTotalExchange(procs, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range scales {
		m, err := prof.Scaled(f, f, f, f).Machine(procs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sched.RunSchedule(context.Background(), m, s, 1, simnet.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got := pts[i]
		if got.MakeSpan != want.MakeSpan || got.Messages != want.Messages || got.Bytes != want.Bytes {
			t.Fatalf("point %d (scale %g): got {%v %d %d}, want {%v %d %d}",
				i, f, got.MakeSpan, got.Messages, got.Bytes, want.MakeSpan, want.Messages, want.Bytes)
		}
	}
}

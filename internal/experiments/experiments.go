// Package experiments regenerates every table and figure of the thesis'
// evaluation chapters on the simulated platforms. Each exported function
// corresponds to one experiment of the thesis evaluation and
// returns the rows/series the original figure or table reports; cmd/* and the
// repository's benchmark harness are thin wrappers around these functions.
package experiments

import (
	"fmt"
	"strings"
)

// Options scale the experiments: the full settings regenerate the complete
// sweeps, the quick settings are used by unit tests and the benchmark
// harness to keep run times moderate.
type Options struct {
	// Reps is the number of repetitions per measured point.
	Reps int
	// ProcStep is the increment between measured process counts.
	ProcStep int
	// MaxProcsXeon bounds the Xeon sweep (64 in the thesis).
	MaxProcsXeon int
	// MaxProcsOpteron bounds the Opteron sweep (144 in the thesis).
	MaxProcsOpteron int
	// StencilLargeN and StencilSmallN are the two problem sizes of the
	// Chapter 8 experiments.
	StencilLargeN int
	StencilSmallN int
	// StencilIterations is the number of Jacobi sweeps per measurement.
	StencilIterations int
	// Synthetic skips the stencil's floating-point work (model time only).
	Synthetic bool
	// CollapseProcs are the rank counts of the symmetry-collapse scaling
	// study (CollapseScalingSeries); each point is a direct RunSchedule
	// evaluation of the superstep count exchange on a flat homogeneous
	// cluster, so counts far beyond the concurrent sweeps are feasible.
	CollapseProcs []int
}

// Full returns the settings used to regenerate the complete evaluation.
func Full() Options {
	return Options{
		Reps:              16,
		ProcStep:          4,
		MaxProcsXeon:      64,
		MaxProcsOpteron:   144,
		StencilLargeN:     1536,
		StencilSmallN:     384,
		StencilIterations: 4,
		Synthetic:         true,
		CollapseProcs:     []int{4096, 65536, 262144, 1048576},
	}
}

// Quick returns reduced settings for tests and sanity runs.
func Quick() Options {
	return Options{
		Reps:              3,
		ProcStep:          16,
		MaxProcsXeon:      32,
		MaxProcsOpteron:   48,
		StencilLargeN:     384,
		StencilSmallN:     128,
		StencilIterations: 2,
		Synthetic:         true,
		CollapseProcs:     []int{256, 4096, 65536},
	}
}

// normalize fills unset fields from the Quick defaults.
func (o Options) normalize() Options {
	q := Quick()
	if o.Reps < 1 {
		o.Reps = q.Reps
	}
	if o.ProcStep < 1 {
		o.ProcStep = q.ProcStep
	}
	if o.MaxProcsXeon < 2 {
		o.MaxProcsXeon = q.MaxProcsXeon
	}
	if o.MaxProcsOpteron < 2 {
		o.MaxProcsOpteron = q.MaxProcsOpteron
	}
	if o.StencilLargeN < 16 {
		o.StencilLargeN = q.StencilLargeN
	}
	if o.StencilSmallN < 16 {
		o.StencilSmallN = q.StencilSmallN
	}
	if o.StencilIterations < 1 {
		o.StencilIterations = q.StencilIterations
	}
	if len(o.CollapseProcs) == 0 {
		o.CollapseProcs = q.CollapseProcs
	}
	return o
}

// procSweep returns the process counts 2, step, 2*step, ..., max (always
// including 2 and max).
func procSweep(step, max int) []int {
	var out []int
	if max < 2 {
		return []int{2}
	}
	out = append(out, 2)
	for p := step; p < max; p += step {
		if p > 2 {
			out = append(out, p)
		}
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// Table renders a simple aligned text table; the cmd tools use it to print
// experiment results in the same row/series form the thesis reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fmtSeconds renders a duration in seconds with engineering precision.
func fmtSeconds(s float64) string { return fmt.Sprintf("%.3e", s) }

// fmtPercent renders a ratio as a percentage.
func fmtPercent(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

package experiments

import (
	"context"
	"fmt"

	"hbsp/internal/bsp"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// CollapsePoint is one point of the symmetry-collapse scaling study: the
// direct evaluation of the superstep count exchange on a flat homogeneous
// cluster at one rank count, with the number of rank-equivalence classes the
// collapse reduced the evaluation to.
type CollapsePoint struct {
	Procs int
	// Classes is the number of equivalence classes evaluated (1 on a flat
	// cluster — the whole machine advances as a single representative rank);
	// 0 means the collapse did not apply and all ranks were evaluated.
	Classes  int
	Stages   int
	MakeSpan float64
	Messages int64
	Bytes    int64
}

// CollapseScalingSeries evaluates the dissemination count exchange on flat
// homogeneous clusters over the given rank counts — the scaling study behind
// the README's P=4096 → P=1M table. Every point runs through
// sched.RunSchedule under the default CollapseAuto mode: the machine is
// pairwise uniform and the exchange schedule is circulant, so the evaluator
// collapses all ranks into one equivalence class and each point costs O(P)
// memory and O(stages) evaluation work, which is what makes the
// P=1,048,576 point feasible at all.
func CollapseScalingSeries(procsList []int) ([]CollapsePoint, error) {
	return ParallelSeries(procsList, func(p int) ([]CollapsePoint, error) {
		if p < 2 {
			return nil, nil
		}
		m, err := platform.FlatClusterMachine(p)
		if err != nil {
			return nil, err
		}
		s, err := bsp.ExchangeSchedule(p)
		if err != nil {
			return nil, err
		}
		classes := 0
		if part := sched.CollapseClasses(m, s); part != nil {
			classes = part.NumClasses()
		}
		res, err := sched.RunSchedule(context.Background(), m, s, 1, simnet.DefaultOptions())
		if err != nil {
			return nil, err
		}
		return []CollapsePoint{{
			Procs:    p,
			Classes:  classes,
			Stages:   s.NumStages(),
			MakeSpan: res.MakeSpan,
			Messages: res.Messages,
			Bytes:    res.Bytes,
		}}, nil
	})
}

// CollapseScalingTable renders collapse scaling points.
func CollapseScalingTable(title string, points []CollapsePoint) *Table {
	t := &Table{Title: title, Columns: []string{"P", "classes", "stages", "sync makespan [s]", "messages", "bytes"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), fmt.Sprintf("%d", p.Classes), fmt.Sprintf("%d", p.Stages),
			fmtSeconds(p.MakeSpan), fmt.Sprintf("%d", p.Messages), fmt.Sprintf("%d", p.Bytes))
	}
	return t
}

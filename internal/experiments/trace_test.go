package experiments

import (
	"bytes"
	"testing"

	"hbsp/internal/bsp"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// tracedStream runs the shared sync workload with a private recorder and
// returns the rendered merged event stream.
func tracedStream(t *testing.T, procs int, seed int64) string {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	if _, err := bsp.Run(m.WithRunSeed(seed), SyncExchangeProgram, o); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTracedRunsDeterministicUnderParallelSweep is the determinism contract
// of the recorder under the sweep engine: many traced runs executing
// concurrently on the worker pool (each with its own recorder) must every
// one reproduce the sequential reference stream for its seed, byte for byte.
// Run under -race (CI does) this also proves the per-rank lanes are
// race-free against the pool's concurrency.
func TestTracedRunsDeterministicUnderParallelSweep(t *testing.T) {
	const procs = 16
	seeds := []int64{1, 2, 3, 4, 1, 2, 3, 4} // repeats: same seed traced twice in parallel
	want := map[int64]string{}
	for _, s := range seeds[:4] {
		want[s] = tracedStream(t, procs, s)
	}
	streams, err := RunPoints(len(seeds), func(i int) (string, error) {
		return tracedStream(t, procs, seeds[i]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range streams {
		if got != want[seeds[i]] {
			t.Fatalf("parallel traced run %d (seed %d) diverged from the sequential reference stream", i, seeds[i])
		}
	}
	if want[1] == want[2] {
		t.Fatal("different seeds produced identical streams — the comparison is vacuous")
	}
}

// TestTraceBreakdownSeries sanity-checks the Fig 5.6 explainer: points come
// back in sweep order with a critical path accounting that reaches the
// makespan, and the consecutive sweep exposes cross-node gating hops.
func TestTraceBreakdownSeries(t *testing.T) {
	procsList := ConsecutiveProcs(14, 18)
	points, err := TraceBreakdownSeries(platform.Xeon8x2x4(), procsList, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(procsList) {
		t.Fatalf("got %d points, want %d", len(points), len(procsList))
	}
	crossSeen := false
	for i, pt := range points {
		if pt.Procs != procsList[i] {
			t.Fatalf("point %d is P=%d, want sweep order %d", i, pt.Procs, procsList[i])
		}
		if pt.MakeSpan <= 0 || pt.PathHops == 0 {
			t.Fatalf("point %d has empty analysis: %+v", i, pt)
		}
		if pt.CrossNodeHops > 0 {
			crossSeen = true
		}
		if pt.CrossNodeHops > pt.PathHops {
			t.Fatalf("point %d counts more cross-node hops than hops: %+v", i, pt)
		}
	}
	if !crossSeen {
		t.Fatal("no point shows cross-node gating hops; the placement explanation is empty")
	}
}

func TestConsecutiveProcs(t *testing.T) {
	if got := ConsecutiveProcs(0, 3); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("ConsecutiveProcs(0,3) = %v", got)
	}
	if got := ConsecutiveProcs(5, 4); len(got) != 1 || got[0] != 5 {
		t.Fatalf("ConsecutiveProcs(5,4) = %v", got)
	}
}

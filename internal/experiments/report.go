package experiments

import (
	"fmt"
	"io"

	"hbsp/internal/platform"
)

// RunAll regenerates every table and figure in thesis order and writes the
// resulting text tables to w. It is the backing implementation of
// cmd/experiments and is also exercised by the repository's benchmark
// harness.
func RunAll(w io.Writer, opts Options) error {
	opts = opts.normalize()
	xeon := platform.Xeon8x2x4()
	opteron := platform.Opteron12x2x6()

	// Chapter 3.
	rows, err := Table3_1(xeon, opts)
	if err != nil {
		return fmt.Errorf("table 3.1: %w", err)
	}
	fmt.Fprint(w, Table3_1Table(rows).String(), "\n")

	inner, err := Fig3_2(xeon, rows, 1<<22, opts)
	if err != nil {
		return fmt.Errorf("fig 3.2: %w", err)
	}
	tbl := &Table{Title: "Fig 3.2: inner product, measured vs classic estimate", Columns: []string{"P", "measured [s]", "estimate [s]"}}
	for _, p := range inner {
		tbl.AddRow(fmt.Sprintf("%d", p.P), fmtSeconds(p.Measured), fmtSeconds(p.Estimated))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	// Chapter 4.
	rates, err := Fig4_2(xeon)
	if err != nil {
		return fmt.Errorf("fig 4.2: %w", err)
	}
	tbl = &Table{Title: "Fig 4.2: bspbench computation rates", Columns: []string{"vector size", "Mflop/s"}}
	for _, r := range rates {
		tbl.AddRow(fmt.Sprintf("%d", r.VectorSize), fmt.Sprintf("%.1f", r.Mflops))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	preds43, err := Fig4_3(xeon, opts)
	if err != nil {
		return fmt.Errorf("fig 4.3: %w", err)
	}
	tbl = &Table{Title: "Figs 4.3/4.4: kernel predictions vs measurement", Columns: []string{"kernel", "applications", "predicted [s]", "measured [s]", "rel err"}}
	for _, p := range preds43 {
		tbl.AddRow(p.Kernel, fmt.Sprintf("%d", p.Applications), fmtSeconds(p.Predicted), fmtSeconds(p.Measured), fmtPercent(p.RelativeError))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	blas, err := Fig4_5(platform.AthlonX2(), 512*1024)
	if err != nil {
		return fmt.Errorf("fig 4.5: %w", err)
	}
	tbl = &Table{Title: "Figs 4.5/4.6: L1 BLAS time vs memory footprint (Athlon X2)", Columns: []string{"kernel", "bytes", "time [s]"}}
	for _, p := range blas {
		tbl.AddRow(p.Kernel, fmt.Sprintf("%.0f", p.FootprintBytes), fmtSeconds(p.Seconds))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	// Chapters 5 and 6, on both platforms.
	for _, tc := range []struct {
		prof  *platform.Profile
		max   int
		nameA string
		nameB string
	}{
		{xeon, opts.MaxProcsXeon, "Figs 5.6-5.9: barriers on the 8x2x4 cluster", "Fig 6.3: BSP sync on the 8x2x4 cluster"},
		{opteron, opts.MaxProcsOpteron, "Figs 5.10-5.13: barriers on the 12x2x6 cluster", "Fig 6.4: BSP sync on the 12x2x6 cluster"},
	} {
		points, err := Fig5_6Series(tc.prof, tc.max, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.nameA, err)
		}
		fmt.Fprint(w, BarrierTable(tc.nameA, points).String(), "\n")

		sync, err := Fig6_3Series(tc.prof, tc.max, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.nameB, err)
		}
		tbl = &Table{Title: tc.nameB, Columns: []string{"P", "measured [s]", "estimate [s]", "rel err"}}
		for _, p := range sync {
			tbl.AddRow(fmt.Sprintf("%d", p.Procs), fmtSeconds(p.Measured), fmtSeconds(p.Predicted), fmtPercent(p.RelError))
		}
		fmt.Fprint(w, tbl.String(), "\n")
	}

	// Trace analysis: explain the Fig 5.6 odd/even oscillation with a
	// consecutive-P sweep — the cross-node gating-hop count tracks the
	// placement, not the algorithm.
	lo := opts.MaxProcsXeon - 7
	breakdown, err := TraceBreakdownSeries(xeon, ConsecutiveProcs(lo, opts.MaxProcsXeon), opts)
	if err != nil {
		return fmt.Errorf("trace breakdown: %w", err)
	}
	fmt.Fprint(w, TraceBreakdownTable("Trace: dissemination barrier explained (8x2x4, consecutive P)", breakdown).String(), "\n")

	// Chapter 7.
	for _, tc := range []struct {
		prof  *platform.Profile
		procs int
		title string
	}{
		{xeon, 60, "Table 7.1: 60-process SSS clustering (8x2x4)"},
		{platform.Opteron10x2x6(), 115, "Table 7.2: 115-process SSS clustering (10x2x6)"},
	} {
		res, err := Table7_1(tc.prof, tc.procs)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.title, err)
		}
		tbl = &Table{Title: tc.title, Columns: []string{"processes", "subsets", "sizes", "threshold [s]"}}
		tbl.AddRow(fmt.Sprintf("%d", res.Procs), fmt.Sprintf("%d", res.Subsets), fmt.Sprintf("%v", res.Sizes), fmtSeconds(res.Threshold))
		fmt.Fprint(w, tbl.String(), "\n")
	}
	hybrid, err := Fig7_4Series(xeon, opts.MaxProcsXeon, opts)
	if err != nil {
		return fmt.Errorf("figs 7.4-7.7: %w", err)
	}
	tbl = &Table{Title: "Figs 7.4-7.7: adapted barrier vs defaults (8x2x4)",
		Columns: []string{"P", "best", "adapted [s]", "dissemination [s]", "tree [s]", "linear [s]"}}
	for _, h := range hybrid {
		tbl.AddRow(fmt.Sprintf("%d", h.Procs), h.BestName, fmtSeconds(h.Adapted), fmtSeconds(h.Dissemination), fmtSeconds(h.Tree), fmtSeconds(h.Linear))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	// Collective schedules: the Chapter 5 matrix machinery generalized beyond
	// barriers, and the model-selected schedule run by the BSP synchronizer.
	for _, tc := range []struct {
		prof  *platform.Profile
		max   int
		title string
	}{
		{xeon, opts.MaxProcsXeon, "Collectives on the 8x2x4 cluster: measured vs predicted"},
		{opteron, opts.MaxProcsOpteron, "Collectives on the 12x2x6 cluster: measured vs predicted"},
	} {
		points, err := CollectiveSeries(tc.prof, tc.max, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", tc.title, err)
		}
		fmt.Fprint(w, CollectiveTable(tc.title, points).String(), "\n")
	}
	// Symmetry-collapsed scaling: the count exchange evaluated directly on
	// flat homogeneous clusters at rank counts no concurrent (or even
	// per-rank direct) sweep could reach.
	collapse, err := CollapseScalingSeries(opts.CollapseProcs)
	if err != nil {
		return fmt.Errorf("collapse scaling: %w", err)
	}
	fmt.Fprint(w, CollapseScalingTable("Symmetry-collapsed sync scaling (flat homogeneous cluster)", collapse).String(), "\n")

	// Incremental sweeps: the bytes and scale axes of the total exchange
	// evaluated through reused SweepEvaluators — every point bit-identical
	// to an independent direct evaluation.
	bytesSweep, err := BytesSweepSeries(xeon, opts.MaxProcsXeon, []int{16, 64, 256, 1024})
	if err != nil {
		return fmt.Errorf("bytes sweep: %w", err)
	}
	fmt.Fprint(w, SweepSeriesTable("Incremental bytes sweep: total exchange (8x2x4)", bytesSweep).String(), "\n")

	scaleSweep, err := ScaleSweepSeries(xeon, opts.MaxProcsXeon, 64, []float64{0.5, 1, 1.5, 2})
	if err != nil {
		return fmt.Errorf("scale sweep: %w", err)
	}
	fmt.Fprint(w, SweepSeriesTable("Incremental scale sweep: total exchange (8x2x4)", scaleSweep).String(), "\n")

	// Fault injection: predicted vs simulated makespan inflation under a
	// single straggler, and fail-stop recovery cost vs checkpoint interval.
	straggler, err := StragglerSeries(16, 8, []float64{1, 1.5, 2, 4, 8})
	if err != nil {
		return fmt.Errorf("straggler sweep: %w", err)
	}
	fmt.Fprint(w, StragglerTable("Straggler inflation: predicted vs simulated (flat cluster, P=16)", straggler).String(), "\n")

	recovery, err := RecoverySeries(16, 8, []float64{0, 0.7, 0.4, 0.15, 0.06})
	if err != nil {
		return fmt.Errorf("recovery sweep: %w", err)
	}
	fmt.Fprint(w, RecoveryTable("Fail-stop recovery cost vs checkpoint interval (flat cluster, P=16)", recovery).String(), "\n")

	adaptedSync, err := AdaptedSyncSeries(xeon, opts.MaxProcsXeon, opts)
	if err != nil {
		return fmt.Errorf("adapted synchronizer: %w", err)
	}
	fmt.Fprint(w, AdaptedSyncTable("Adapted count-exchange schedule vs dissemination default (8x2x4)", adaptedSync).String(), "\n")

	// Chapter 8.
	fmt.Fprint(w, Table8_1Table(Table8_1(opts)).String(), "\n")
	wall, err := Table8_2(xeon, opts)
	if err != nil {
		return fmt.Errorf("table 8.2: %w", err)
	}
	tbl = &Table{Title: "Table 8.2: MPI and MPI+R wall times", Columns: []string{"P", "MPI [s]", "MPI+R [s]"}}
	for _, r := range wall {
		tbl.AddRow(fmt.Sprintf("%d", r.Procs), fmtSeconds(r.MPI), fmtSeconds(r.MPIR))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	scaling, err := Fig8_4Series(xeon, opts.StencilLargeN, nil, opts)
	if err != nil {
		return fmt.Errorf("figs 8.4-8.7: %w", err)
	}
	tbl = &Table{Title: "Figs 8.4-8.7 (A1-A4): strong scaling of the stencil implementations",
		Columns: []string{"implementation", "P", "time/iteration [s]"}}
	for _, p := range scaling {
		tbl.AddRow(p.Implementation, fmt.Sprintf("%d", p.Procs), fmtSeconds(p.PerIteration))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	bseries, err := Fig8_10Series(xeon, opts)
	if err != nil {
		return fmt.Errorf("figs 8.10-8.15: %w", err)
	}
	tbl = &Table{Title: "Figs 8.10-8.15 (B1-B6): prediction vs measurement",
		Columns: []string{"problem", "variant", "P", "predicted [s]", "measured [s]", "rel err"}}
	for _, p := range bseries {
		tbl.AddRow(p.Problem, p.Variant, fmt.Sprintf("%d", p.Procs), fmtSeconds(p.Predicted), fmtSeconds(p.Measured), fmtPercent(p.RelError))
	}
	fmt.Fprint(w, tbl.String(), "\n")

	procs := 16
	if opts.MaxProcsXeon < procs {
		procs = opts.MaxProcsXeon
	}
	sweep, err := Fig8_18Series(xeon, procs, opts)
	if err != nil {
		return fmt.Errorf("fig 8.18: %w", err)
	}
	tbl = &Table{Title: "Fig 8.18 (C1): overlap adaptation sweep", Columns: []string{"fraction", "predicted [s]", "measured [s]"}}
	for _, p := range sweep {
		tbl.AddRow(fmt.Sprintf("%.2f", p.Fraction), fmtSeconds(p.Predicted), fmtSeconds(p.Measured))
	}
	fmt.Fprint(w, tbl.String(), "\n")
	return nil
}

package experiments

import (
	"fmt"

	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
)

// CollectiveBlockBytes is the per-process block size the collective
// comparison transports (128 doubles per contributing process).
const CollectiveBlockBytes = 1024

// CollectivePoint is one point of the collective-schedule comparison: the
// simulated and model-predicted makespan of one collective at one process
// count on one platform preset.
type CollectivePoint struct {
	Platform   string
	Collective string
	Procs      int
	Stages     int
	Measured   float64
	Predicted  float64
	// RelError is (Predicted − Measured) / Measured.
	RelError float64
}

// CollectiveSeries measures and predicts every collective schedule generator
// (broadcast, reduce, allreduce, allgather, total exchange) over a sweep of
// process counts on the given platform preset. It is the collective
// generalization of the Chapter 5 barrier figures: the same cost model that
// prices barrier stages prices the payload-carrying stages of the
// collectives, and the same simulator provides the measurement.
func CollectiveSeries(prof *platform.Profile, maxProcs int, opts Options) ([]CollectivePoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procSweep(opts.ProcStep, maxProcs), func(p int) ([]CollectivePoint, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := barrierParams(m, opts.Reps)
		if err != nil {
			return nil, err
		}
		pats, err := barrier.Collectives(p, CollectiveBlockBytes)
		if err != nil {
			return nil, err
		}
		var out []CollectivePoint
		for _, name := range []string{"broadcast", "reduce", "allreduce", "allgather", "total-exchange"} {
			pat, ok := pats[name]
			if !ok {
				return nil, fmt.Errorf("experiments: missing collective %q", name)
			}
			meas, err := barrier.Measure(m.WithRunSeed(int64(400+p)), pat, opts.Reps)
			if err != nil {
				return nil, err
			}
			pred, err := barrier.Predict(pat, params, barrier.CostOptionsFor(pat.Semantics))
			if err != nil {
				return nil, err
			}
			pt := CollectivePoint{
				Platform:   prof.Name,
				Collective: name,
				Procs:      p,
				Stages:     pat.NumStages(),
				Measured:   meas.MeanWorst,
				Predicted:  pred.Total,
			}
			if pt.Measured > 0 {
				pt.RelError = (pt.Predicted - pt.Measured) / pt.Measured
			}
			out = append(out, pt)
		}
		return out, nil
	})
}

// CollectiveTable renders collective points in the measured/predicted layout
// of the barrier chapters.
func CollectiveTable(title string, points []CollectivePoint) *Table {
	t := &Table{Title: title, Columns: []string{"P", "collective", "stages", "measured [s]", "predicted [s]", "rel err"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), p.Collective, fmt.Sprintf("%d", p.Stages),
			fmtSeconds(p.Measured), fmtSeconds(p.Predicted), fmtPercent(p.RelError))
	}
	return t
}

// AdaptedSyncPoint is one row of the synchronizer comparison: the simulated
// makespan of a fixed BSP exchange program under the default dissemination
// count exchange and under the model-selected hybrid schedule, together with
// the model's prediction for the selected schedule.
type AdaptedSyncPoint struct {
	Procs         int
	Best          string
	Predicted     float64
	Dissemination float64
	Adapted       float64
}

// SyncExchangeProgram is the fixed workload of the synchronizer comparison
// and of the repository's synchronization benchmarks (BenchmarkSyncDissemination,
// cmd/simbench's sync_dissemination entry): one registration superstep
// followed by a superstep of ring puts, so the count exchange must deliver
// non-trivial counts for the drain to be correct. Keeping a single definition
// guarantees every harness measures the same workload.
func SyncExchangeProgram(ctx *bsp.Ctx) error {
	p := ctx.NProcs()
	area := make([]float64, p)
	ctx.PushReg("x", area)
	if err := ctx.Sync(); err != nil {
		return err
	}
	right := (ctx.Pid() + 1) % p
	if err := ctx.Put(right, "x", ctx.Pid(), []float64{float64(ctx.Pid() + 1)}); err != nil {
		return err
	}
	if err := ctx.Sync(); err != nil {
		return err
	}
	left := (ctx.Pid() - 1 + p) % p
	if p > 1 && area[left] != float64(left+1) {
		return fmt.Errorf("experiments: process %d drained a wrong put value %v", ctx.Pid(), area[left])
	}
	return nil
}

// SendRecvRingProgram is the fixed point-to-point workload of the send_recv
// benchmarks (cmd/simbench's send_recv and send_recv_traced entries,
// BenchmarkTraceOverhead): eight rounds of an eager-post/blocking-receive
// ring, the minimal program exercising injection ports, mailbox delivery and
// matching. Keeping a single definition guarantees the traced and untraced
// entries measure the same workload — the overhead comparison is only valid
// while they do.
func SendRecvRingProgram(p *simnet.Proc) error {
	const rounds = 8
	n := p.Size()
	next, prev := (p.Rank()+1)%n, (p.Rank()+n-1)%n
	for k := 0; k < rounds; k++ {
		rq := p.Irecv(prev, k)
		p.Post(next, k, 8, nil)
		p.Wait(rq)
	}
	return nil
}

// AdaptedSyncSeries runs the end-to-end connection of Case Study I to the
// runtime: for every process count, the pairwise benchmark feeds the greedy
// sync-schedule selection (adapt.GreedySync via bsp.NewAdaptedSynchronizer),
// and the same BSP program is simulated with the default dissemination
// synchronizer and with the selected schedule executing the count exchange.
func AdaptedSyncSeries(prof *platform.Profile, maxProcs int, opts Options) ([]AdaptedSyncPoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procSweep(opts.ProcStep, maxProcs), func(p int) ([]AdaptedSyncPoint, error) {
		if p < 4 {
			return nil, nil
		}
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := barrierParams(m, opts.Reps)
		if err != nil {
			return nil, err
		}
		sync, res, err := bsp.NewAdaptedSynchronizer(params, barrier.DefaultCostOptions())
		if err != nil {
			return nil, err
		}
		base, err := bsp.Run(m.WithRunSeed(int64(500+p)), SyncExchangeProgram)
		if err != nil {
			return nil, err
		}
		adapted, err := bsp.RunWith(m.WithRunSeed(int64(500+p)), sync, SyncExchangeProgram)
		if err != nil {
			return nil, err
		}
		return []AdaptedSyncPoint{{
			Procs:         p,
			Best:          res.Best.Name,
			Predicted:     res.Best.Predicted,
			Dissemination: base.MakeSpan,
			Adapted:       adapted.MakeSpan,
		}}, nil
	})
}

// AdaptedSyncTable renders the synchronizer comparison.
func AdaptedSyncTable(title string, points []AdaptedSyncPoint) *Table {
	t := &Table{Title: title, Columns: []string{"P", "selected schedule", "predicted sync [s]", "dissemination run [s]", "adapted run [s]"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), p.Best, fmtSeconds(p.Predicted),
			fmtSeconds(p.Dissemination), fmtSeconds(p.Adapted))
	}
	return t
}

package experiments

import (
	"fmt"

	"hbsp/internal/barrier"
	"hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// TraceBreakdownPoint explains one process count of the dissemination
// barrier sweep through trace analysis: where the makespan goes (critical
// path composition) and how placement shapes it. The CrossNodeHops column is
// the explanation of the Fig. 5.6-style odd/even oscillation — adding one
// rank changes how many of the gating messages must cross node boundaries
// (round-robin placement alternates the NIC neighbourhood of the last rank),
// so the critical path picks up or sheds full network latencies while the
// algorithm is unchanged.
type TraceBreakdownPoint struct {
	Procs    int
	MakeSpan float64
	// PathHops is the number of rank residencies on the critical path;
	// CrossNodeHops counts the gating messages that crossed node (NIC)
	// boundaries.
	PathHops      int
	CrossNodeHops int
	// PathCompute, PathSend and PathInFlight decompose the critical path's
	// end time by origin (local work, injection overhead, message flight).
	PathCompute  float64
	PathSend     float64
	PathInFlight float64
	// StragglerWait and LatencyWait sum the corresponding breakdown
	// categories over all ranks (rank-seconds).
	StragglerWait float64
	LatencyWait   float64
	// CriticalRank set the makespan.
	CriticalRank int
}

// TraceBreakdownSeries traces one execution of the dissemination barrier at
// every supplied process count (with the same per-point run seeds
// Fig5_6Series measures under) and extracts the critical-path and wait-time
// explanation of each point.
func TraceBreakdownSeries(prof *platform.Profile, procsList []int, opts Options) ([]TraceBreakdownPoint, error) {
	opts = opts.normalize()
	return ParallelSeries(procsList, func(p int) ([]TraceBreakdownPoint, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		seeded := m.WithRunSeed(int64(100 + p))
		pat, err := barrier.Dissemination(p)
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder()
		rec.SetLabel(fmt.Sprintf("dissemination barrier, P=%d", p))
		o := simnet.DefaultOptions()
		o.Recorder = rec
		res, err := mpi.Run(seeded, func(c *mpi.Comm) error {
			barrier.Execute(c, pat, 0)
			return nil
		}, o)
		if err != nil {
			return nil, err
		}
		tr, err := rec.Trace()
		if err != nil {
			return nil, err
		}
		cp := tr.CriticalPath()
		bd := tr.Breakdown()
		pt := TraceBreakdownPoint{
			Procs:         p,
			MakeSpan:      res.MakeSpan,
			PathHops:      len(cp.Hops),
			PathCompute:   cp.Compute,
			PathSend:      cp.Send,
			PathInFlight:  cp.InFlight,
			StragglerWait: bd.TotalByCategory(trace.CatStraggler),
			LatencyWait:   bd.TotalByCategory(trace.CatLatency),
			CriticalRank:  cp.Rank,
		}
		for _, hop := range cp.Hops {
			if hop.ViaPeer >= 0 && seeded.NIC(hop.ViaPeer) != seeded.NIC(hop.Rank) {
				pt.CrossNodeHops++
			}
		}
		return []TraceBreakdownPoint{pt}, nil
	})
}

// ConsecutiveProcs returns the inclusive range lo..hi, the consecutive sweep
// that makes odd/even placement effects visible (the coarse procSweep strides
// hide them).
func ConsecutiveProcs(lo, hi int) []int {
	if lo < 2 {
		lo = 2
	}
	if hi < lo {
		hi = lo
	}
	out := make([]int, 0, hi-lo+1)
	for p := lo; p <= hi; p++ {
		out = append(out, p)
	}
	return out
}

// TraceBreakdownTable renders trace breakdown points.
func TraceBreakdownTable(title string, points []TraceBreakdownPoint) *Table {
	t := &Table{Title: title, Columns: []string{
		"P", "makespan [s]", "hops", "x-node", "path compute [s]", "path in-flight [s]", "straggler [rank-s]", "latency [rank-s]", "crit rank"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), fmtSeconds(p.MakeSpan),
			fmt.Sprintf("%d", p.PathHops), fmt.Sprintf("%d", p.CrossNodeHops),
			fmtSeconds(p.PathCompute), fmtSeconds(p.PathInFlight),
			fmtSeconds(p.StragglerWait), fmtSeconds(p.LatencyWait),
			fmt.Sprintf("%d", p.CriticalRank))
	}
	return t
}

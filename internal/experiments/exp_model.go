package experiments

import (
	"fmt"

	"hbsp/internal/bench"
	"hbsp/internal/bsp"
	"hbsp/internal/core"
	"hbsp/internal/kernels"
	"hbsp/internal/platform"
)

// BSPBenchRow is one row of Table 3.1.
type BSPBenchRow struct {
	P int
	R float64 // flop/s
	G float64 // flops/word
	L float64 // flops
}

// Table3_1 reproduces Table 3.1: bspbench parameter values on the Xeon 8×2×4
// platform for growing process counts.
func Table3_1(prof *platform.Profile, opts Options) ([]BSPBenchRow, error) {
	opts = opts.normalize()
	var sweep []int
	for p := 8; p <= opts.MaxProcsXeon; p += 8 {
		sweep = append(sweep, p)
	}
	return ParallelSeries(sweep, func(p int) ([]BSPBenchRow, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		cfg := bench.DefaultBSPBenchConfig()
		cfg.MaxH = 128
		cfg.HStep = 32
		cfg.Repetitions = opts.Reps
		if cfg.Repetitions > 5 {
			cfg.Repetitions = 5
		}
		res, err := bench.BSPBench(m, cfg)
		if err != nil {
			return nil, err
		}
		return []BSPBenchRow{{P: p, R: res.R, G: res.G, L: res.L}}, nil
	})
}

// Table3_1Table formats the rows like the thesis table (rate in Mflop/s).
func Table3_1Table(rows []BSPBenchRow) *Table {
	t := &Table{Title: "Table 3.1: BSPBench parameter values (Xeon 8x2x4)", Columns: []string{"P", "r [Mflop/s]", "g [flops]", "l [flops]"}}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.P), fmt.Sprintf("%.3f", r.R/1e6), fmt.Sprintf("%.1f", r.G), fmt.Sprintf("%.1f", r.L))
	}
	return t
}

// InnerProductPoint is one point of Fig. 3.2: the measured bspinprod time and
// the classic BSP estimate.
type InnerProductPoint struct {
	P         int
	Measured  float64
	Estimated float64
}

// Fig3_2 reproduces Fig. 3.2: strong-scaling timings of the bspinprod program
// against the classic BSP estimate built from the Table 3.1 parameters. The
// thesis' headline observation — the estimate deviates by orders of magnitude
// and has a spurious minimum — is preserved because the scalar l parameter
// wildly overprices the per-superstep synchronization of a tiny communication
// volume.
func Fig3_2(prof *platform.Profile, paramRows []BSPBenchRow, n int, opts Options) ([]InnerProductPoint, error) {
	opts = opts.normalize()
	var out []InnerProductPoint
	for _, row := range paramRows {
		m, err := prof.Machine(row.P)
		if err != nil {
			return nil, err
		}
		measured, err := measureInnerProduct(m, n)
		if err != nil {
			return nil, err
		}
		classic := core.ClassicParams{P: row.P, R: row.R, G: row.G, L: row.L}
		est, err := classic.InnerProductCost(n)
		if err != nil {
			return nil, err
		}
		out = append(out, InnerProductPoint{P: row.P, Measured: measured, Estimated: est})
	}
	return out, nil
}

// measureInnerProduct times the bspinprod program (two computation supersteps
// and one communication superstep) on the simulated machine.
func measureInnerProduct(m *platform.Machine, n int) (float64, error) {
	res, err := bsp.Run(m, func(ctx *bsp.Ctx) error {
		p := ctx.NProcs()
		local := n / p
		partials := make([]float64, p)
		ctx.PushReg("partials", partials)
		if err := ctx.Sync(); err != nil {
			return err
		}
		// Local sums of products.
		ctx.ComputeKernel(kernels.Dot, local, 1)
		for d := 0; d < p; d++ {
			if err := ctx.Put(d, "partials", ctx.Pid(), []float64{1}); err != nil {
				return err
			}
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		// Accumulation of the partial sums.
		ctx.ComputeKernel(kernels.Asum, p, 1)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return res.MakeSpan, nil
}

// RatePoint is one point of Fig. 4.2 (bspbench computation rate vs. vector
// size).
type RatePoint struct {
	VectorSize int
	Mflops     float64
}

// Fig4_2 reproduces Fig. 4.2 on a single node of the Xeon platform.
func Fig4_2(prof *platform.Profile) ([]RatePoint, error) {
	m, err := prof.Machine(1)
	if err != nil {
		return nil, err
	}
	res, err := bench.BSPBench(m, bench.DefaultBSPBenchConfig())
	if err != nil {
		return nil, err
	}
	var out []RatePoint
	for _, p := range res.RateSweep {
		out = append(out, RatePoint{VectorSize: p.VectorSize, Mflops: p.Mflops})
	}
	return out, nil
}

// KernelPredictionPoint is one point of Figs. 4.3/4.4: predicted and measured
// execution time of a kernel for a growing number of applications, plus the
// prediction extrapolated from the DAXPY-only bspbench rate.
type KernelPredictionPoint struct {
	Kernel        string
	Applications  int
	Predicted     float64
	Measured      float64
	MflopsDerived float64
	RelativeError float64
}

// Fig4_3 reproduces Figs. 4.3 and 4.4: per-kernel benchmark predictions
// against measured execution, for the DAXPY and 5-point stencil kernels at a
// fixed 1024-element problem size, plus the misprediction obtained by scaling
// the DAXPY Mflop/s figure.
func Fig4_3(prof *platform.Profile, opts Options) ([]KernelPredictionPoint, error) {
	opts = opts.normalize()
	m, err := prof.Machine(1)
	if err != nil {
		return nil, err
	}
	cfg := bench.DefaultKernelBenchConfig()
	daxpy, err := bench.KernelRate(m, 0, kernels.DAXPY, 1024, cfg)
	if err != nil {
		return nil, err
	}
	profiles := map[string]*bench.KernelBenchResult{"daxpy": daxpy}
	stencilRes, err := bench.KernelRate(m, 0, kernels.Stencil5, 1024, cfg)
	if err != nil {
		return nil, err
	}
	profiles["stencil5"] = stencilRes

	var out []KernelPredictionPoint
	for _, name := range []string{"daxpy", "stencil5"} {
		prof := profiles[name]
		k := prof.Kernel
		for apps := 1; apps <= 1<<16; apps *= 16 {
			measured := m.KernelTime(0, k, 1024) * float64(apps)
			predicted := prof.SecondsPerApplication * float64(apps)
			// The "Mflops" prediction prices every kernel with the DAXPY
			// rate, the misprediction Fig. 4.3 highlights.
			mflopsDerived := k.Flops(1024) * float64(apps) / (daxpy.Mflops * 1e6)
			rel := 0.0
			if measured > 0 {
				rel = abs(predicted-measured) / measured
			}
			out = append(out, KernelPredictionPoint{
				Kernel:        name,
				Applications:  apps,
				Predicted:     predicted,
				Measured:      measured,
				MflopsDerived: mflopsDerived,
				RelativeError: rel,
			})
		}
	}
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BLASPoint is one point of Figs. 4.5/4.6: the time of one application of an
// L1 BLAS kernel as a function of its memory footprint.
type BLASPoint struct {
	Kernel         string
	FootprintBytes float64
	Seconds        float64
}

// Fig4_5 reproduces Figs. 4.5 (in-cache footprints) and 4.6 (footprints
// crossing the cache boundary) on the Athlon X2 profile: per-kernel time as a
// function of memory use, showing the linear in-cache region and the slope
// break beyond it.
func Fig4_5(prof *platform.Profile, maxBytes float64) ([]BLASPoint, error) {
	if maxBytes <= 0 {
		maxBytes = 512 * 1024
	}
	var out []BLASPoint
	for _, k := range kernels.BLAS1() {
		for bytes := 4096.0; bytes <= maxBytes; bytes *= 2 {
			n := int(bytes / float64(k.WordsPerElement*8))
			if n < 1 {
				continue
			}
			out = append(out, BLASPoint{
				Kernel:         k.Name,
				FootprintBytes: k.FootprintBytes(n),
				Seconds:        prof.KernelTime(0, k, n),
			})
		}
	}
	return out, nil
}

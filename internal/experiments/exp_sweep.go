package experiments

import (
	"context"
	"fmt"

	"hbsp/internal/barrier"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// SweepSeriesPoint is one point of an incremental parameter sweep: the
// total-exchange evaluation at one payload size (bytes axis) or one LogGP
// scaling (scale axis), evaluated through a reused sched.SweepEvaluator.
type SweepSeriesPoint struct {
	Procs int
	// Payload is the per-block payload size of the point in bytes.
	Payload int
	// Scale is the LogGP scaling factor applied to the profile's latency,
	// gap, beta and overhead at this point (1 on the bytes axis).
	Scale    float64
	MakeSpan float64
	Messages int64
	Bytes    int64
}

// sweepSeriesOptions is the fixed per-sweep configuration of the incremental
// series: RunSchedule's conventions (acks on, empty stages pay a compute
// draw), so every point is bit-identical to an independent
// sched.RunSchedule call under simnet.DefaultOptions().
func sweepSeriesOptions() sched.SweepOptions {
	o := simnet.DefaultOptions()
	return sched.SweepOptions{
		AckSends:         o.AckSends,
		SymmetryCollapse: o.SymmetryCollapse,
		ComputeEmpty:     true,
		Deadline:         o.Deadline,
	}
}

// sweepSeries runs n sweep points on the parallel point engine, handing each
// worker its own SweepEvaluator over the machine mk returns: consecutive
// points claimed by the same worker share the evaluator's arena, memoized
// partitions and term tapes, while results stay deterministic and
// sweep-ordered (the evaluator's bit-identity contract makes the
// point-to-worker assignment unobservable).
func sweepSeries(mk func() (*platform.Machine, error), n int,
	fn func(sw *sched.SweepEvaluator, i int) (SweepSeriesPoint, error)) ([]SweepSeriesPoint, error) {
	return RunPointsWith(n,
		func() (*sched.SweepEvaluator, error) {
			m, err := mk()
			if err != nil {
				return nil, err
			}
			return sched.NewSweepEvaluator(m, sweepSeriesOptions())
		},
		func(sw *sched.SweepEvaluator) { sw.Release() },
		fn)
}

// BytesSweepSeries sweeps the total-exchange block size at a fixed rank
// count — the bytes axis of an experiment figure. All points share the
// machine and the schedule's stage structure, so after the first point each
// worker's SweepEvaluator only re-prices the message terms of its cached
// term tape instead of re-simulating every edge.
func BytesSweepSeries(prof *platform.Profile, procs int, payloads []int) ([]SweepSeriesPoint, error) {
	if procs < 2 {
		return nil, fmt.Errorf("experiments: bytes sweep needs procs >= 2, got %d", procs)
	}
	m, err := prof.Machine(procs)
	if err != nil {
		return nil, err
	}
	return sweepSeries(func() (*platform.Machine, error) { return m, nil }, len(payloads),
		func(sw *sched.SweepEvaluator, i int) (SweepSeriesPoint, error) {
			s, err := barrier.StreamTotalExchange(procs, payloads[i])
			if err != nil {
				return SweepSeriesPoint{}, err
			}
			res, err := sw.Run(context.Background(), m, s, 1)
			if err != nil {
				return SweepSeriesPoint{}, err
			}
			return SweepSeriesPoint{
				Procs:    procs,
				Payload:  payloads[i],
				Scale:    1,
				MakeSpan: res.MakeSpan,
				Messages: res.Messages,
				Bytes:    res.Bytes,
			}, nil
		})
}

// ScaleSweepSeries sweeps a uniform LogGP scaling of the profile — latency,
// gap, beta and overhead all multiplied by the factor — over the
// total-exchange at a fixed rank count and payload. Scaled profiles stay
// term-compatible with the base machine, so each worker's SweepEvaluator
// keeps its term tape across points and only propagates the re-priced stage
// timings.
func ScaleSweepSeries(prof *platform.Profile, procs, payload int, scales []float64) ([]SweepSeriesPoint, error) {
	if procs < 2 {
		return nil, fmt.Errorf("experiments: scale sweep needs procs >= 2, got %d", procs)
	}
	s, err := barrier.StreamTotalExchange(procs, payload)
	if err != nil {
		return nil, err
	}
	machines := make([]*platform.Machine, len(scales))
	for i, f := range scales {
		m, err := prof.Scaled(f, f, f, f).Machine(procs)
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	base := func() (*platform.Machine, error) { return prof.Machine(procs) }
	return sweepSeries(base, len(scales),
		func(sw *sched.SweepEvaluator, i int) (SweepSeriesPoint, error) {
			res, err := sw.Run(context.Background(), machines[i], s, 1)
			if err != nil {
				return SweepSeriesPoint{}, err
			}
			return SweepSeriesPoint{
				Procs:    procs,
				Payload:  payload,
				Scale:    scales[i],
				MakeSpan: res.MakeSpan,
				Messages: res.Messages,
				Bytes:    res.Bytes,
			}, nil
		})
}

// SweepSeriesTable renders incremental sweep points.
func SweepSeriesTable(title string, points []SweepSeriesPoint) *Table {
	t := &Table{Title: title, Columns: []string{"P", "payload [B]", "scale", "makespan [s]", "messages", "bytes"}}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Procs), fmt.Sprintf("%d", p.Payload), fmt.Sprintf("%g", p.Scale),
			fmtSeconds(p.MakeSpan), fmt.Sprintf("%d", p.Messages), fmt.Sprintf("%d", p.Bytes))
	}
	return t
}

package experiments

import (
	"runtime"
	"sync"
)

// The sweep engine: every experiment series is a list of independent
// simulation points (one process count, one fraction, one problem size, ...),
// and each point spins up its own simulated world, so points parallelize
// trivially. RunPoints executes them on a worker pool bounded by GOMAXPROCS
// and returns the results in index order, which keeps every series
// deterministic: the output is identical to the sequential loop it replaced,
// only the wall clock shrinks by roughly the core count.

// RunPoints evaluates fn(0..n-1) on min(n, GOMAXPROCS) workers and returns
// the n results in index order. If any points fail, the error of the
// lowest-indexed failing point is returned (a deterministic choice — the
// sequential loop would have surfaced that one first); the remaining points
// still run to completion so partial failures cannot leave goroutines behind.
func RunPoints[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
	} else {
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= n {
						return
					}
					results[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// RunPointsWith is RunPoints with per-worker state: make builds one W per
// worker (a sweep evaluator, a scratch arena, ...), every point evaluated by
// that worker receives it, and close — when non-nil — releases it after the
// worker drains. Results stay in index order and the lowest-indexed error
// wins, exactly as RunPoints; which worker evaluates which point is
// scheduling-dependent, so W must never influence a point's result (the
// sweep evaluator's bit-identity contract).
func RunPointsWith[W, T any](n int, mk func() (W, error), cl func(W), fn func(w W, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]T, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	worker := func(claim func() int) error {
		w, err := mk()
		if err != nil {
			return err
		}
		if cl != nil {
			defer cl(w)
		}
		for {
			i := claim()
			if i >= n {
				return nil
			}
			results[i], errs[i] = fn(w, i)
		}
	}
	if workers <= 1 {
		var next int
		if err := worker(func() int { next++; return next - 1 }); err != nil {
			return nil, err
		}
	} else {
		var next int
		var mu sync.Mutex
		claim := func() int {
			mu.Lock()
			i := next
			next++
			mu.Unlock()
			return i
		}
		mkErrs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				mkErrs[slot] = worker(claim)
			}(w)
		}
		wg.Wait()
		for _, err := range mkErrs {
			if err != nil {
				return nil, err
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ParallelSeries maps fn over the points of a sweep in parallel and flattens
// the per-point row slices in sweep order. It is the shape every experiment
// series has: an outer loop over independent points, each contributing zero or
// more rows to the figure.
func ParallelSeries[P, T any](points []P, fn func(p P) ([]T, error)) ([]T, error) {
	perPoint, err := RunPoints(len(points), func(i int) ([]T, error) {
		return fn(points[i])
	})
	if err != nil {
		return nil, err
	}
	var out []T
	for _, rows := range perPoint {
		out = append(out, rows...)
	}
	return out, nil
}

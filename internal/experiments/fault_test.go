package experiments

import (
	"bytes"
	"context"
	"math"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/fault"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

func TestStragglerSeries(t *testing.T) {
	points, err := StragglerSeries(8, 4, []float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].Inflation != 0 || points[0].Predicted != 0 {
		t.Errorf("factor 1 inflates: %+v", points[0])
	}
	for _, p := range points[1:] {
		if p.Inflation <= 0 {
			t.Errorf("factor %g: inflation %v not positive", p.Factor, p.Inflation)
		}
		// The first-order model is exact on the noise-free sync-bound
		// exchange; allow a generous margin anyway.
		if math.Abs(p.RelError) > 0.25 {
			t.Errorf("factor %g: rel error %v exceeds 25%%", p.Factor, p.RelError)
		}
	}
	if !(points[2].Inflation > points[1].Inflation) {
		t.Errorf("inflation not monotone in the slowdown factor: %+v", points)
	}
	if tbl := StragglerTable("t", points).String(); len(tbl) == 0 {
		t.Error("empty table")
	}
}

func TestRecoverySeries(t *testing.T) {
	points, err := RecoverySeries(8, 4, []float64{0, 0.4, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		// On the fully synchronized noise-free workload, the makespan
		// inflation equals the checkpoint/restart penalty exactly.
		if math.Abs(p.Inflation-p.Predicted) > 1e-9*p.Predicted {
			t.Errorf("checkpoint %v: inflation %v != predicted %v", p.Checkpoint, p.Inflation, p.Predicted)
		}
	}
	// No checkpointing recomputes the whole prefix: the costliest point.
	if !(points[0].Predicted > points[1].Predicted && points[1].Predicted > points[2].Predicted) {
		t.Errorf("recovery cost not decreasing with tighter checkpoints: %+v", points)
	}
	if tbl := RecoveryTable("t", points).String(); len(tbl) == 0 {
		t.Error("empty table")
	}
}

// TestFaultSeriesDeterministic re-runs both fault series — each internally
// fanned out over ParallelSeries workers — and requires identical results:
// worker scheduling must not leak into any reported number.
func TestFaultSeriesDeterministic(t *testing.T) {
	s1, err := StragglerSeries(8, 4, []float64{1.5, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := StragglerSeries(8, 4, []float64{1.5, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("straggler point %d differs across runs: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	r1, err := RecoverySeries(8, 4, []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RecoverySeries(8, 4, []float64{0, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("recovery point %d differs across runs: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

// TestFaultTraceGolden pins end-to-end trace determinism under faults: the
// same machine seed and the same plan produce byte-identical merged event
// streams and Chrome exports across repeated runs, including runs racing each
// other inside ParallelSeries.
func TestFaultTraceGolden(t *testing.T) {
	runOnce := func() (times []float64, events, chrome []byte) {
		m, err := platform.Xeon8x2x4().Machine(16)
		if err != nil {
			t.Fatal(err)
		}
		m = m.WithRunSeed(21)
		s, err := barrier.StreamDissemination(16)
		if err != nil {
			t.Fatal(err)
		}
		rec := trace.NewRecorder()
		o := simnet.DefaultOptions()
		o.Recorder = rec
		o.Faults = &fault.Plan{
			Seed:      4,
			Slowdowns: []fault.Slowdown{{Rank: 5, Factor: 2, Jitter: 0.3}},
			Links:     []fault.LinkRule{{Src: -1, Dst: 0, Class: -1, LatencyFactor: 2, BetaFactor: 2}},
			FailStops: []fault.FailStop{{Rank: 1, FailAt: 2e-5, Restart: 1e-4, Checkpoint: 7e-6}},
		}
		res, err := sched.RunSchedule(context.Background(), m, s, 2, o)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := rec.Trace()
		if err != nil {
			t.Fatal(err)
		}
		var ev, ch bytes.Buffer
		if err := trace.WriteEvents(&ev, tr); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteChrome(&ch, tr); err != nil {
			t.Fatal(err)
		}
		return res.Times, ev.Bytes(), ch.Bytes()
	}

	baseTimes, baseEvents, baseChrome := runOnce()
	if !bytes.Contains(baseChrome, []byte("fault")) {
		t.Error("Chrome export carries no fault marks")
	}

	type out struct {
		times  []float64
		events []byte
		chrome []byte
	}
	results, err := ParallelSeries(make([]int, 8), func(int) ([]out, error) {
		times, ev, ch := runOnce()
		return []out{{times, ev, ch}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		for k := range baseTimes {
			if r.times[k] != baseTimes[k] {
				t.Fatalf("run %d rank %d: %v != %v", i, k, r.times[k], baseTimes[k])
			}
		}
		if !bytes.Equal(r.events, baseEvents) {
			t.Errorf("run %d: merged event stream differs", i)
		}
		if !bytes.Equal(r.chrome, baseChrome) {
			t.Errorf("run %d: Chrome export differs", i)
		}
	}
}

package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"hbsp/internal/platform"
)

func TestRunPointsOrderAndCompleteness(t *testing.T) {
	const n = 100
	var calls atomic.Int64
	out, err := RunPoints(n, func(i int) (int, error) {
		calls.Add(1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n || calls.Load() != n {
		t.Fatalf("len=%d calls=%d, want %d", len(out), calls.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, results out of order", i, v)
		}
	}
}

func TestRunPointsReturnsLowestIndexedError(t *testing.T) {
	errLow := errors.New("low")
	_, err := RunPoints(16, func(i int) (int, error) {
		if i == 3 {
			return 0, errLow
		}
		if i == 11 {
			return 0, errors.New("high")
		}
		return i, nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-indexed point's error", err)
	}
}

func TestRunPointsEmpty(t *testing.T) {
	out, err := RunPoints(0, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestRunPointsWithWorkerLifecycle(t *testing.T) {
	const n = 64
	var made, closed, calls atomic.Int64
	out, err := RunPointsWith(n,
		func() (*atomic.Int64, error) {
			made.Add(1)
			return new(atomic.Int64), nil
		},
		func(w *atomic.Int64) { closed.Add(1) },
		func(w *atomic.Int64, i int) (int, error) {
			w.Add(1)
			calls.Add(1)
			return i * 3, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n || calls.Load() != n {
		t.Fatalf("len=%d calls=%d, want %d", len(out), calls.Load(), n)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, results out of order", i, v)
		}
	}
	if made.Load() != closed.Load() || made.Load() < 1 {
		t.Fatalf("made %d workers, closed %d — every make needs a matching close", made.Load(), closed.Load())
	}
}

func TestRunPointsWithMakeError(t *testing.T) {
	errMake := errors.New("no evaluator")
	_, err := RunPointsWith(8,
		func() (int, error) { return 0, errMake },
		nil,
		func(w, i int) (int, error) { return i, nil })
	if !errors.Is(err, errMake) {
		t.Fatalf("err = %v, want the worker construction error", err)
	}
}

func TestParallelSeriesFlattensInSweepOrder(t *testing.T) {
	points := []int{3, 1, 0, 2}
	out, err := ParallelSeries(points, func(p int) ([]string, error) {
		rows := make([]string, p)
		for k := range rows {
			rows[k] = fmt.Sprintf("%d/%d", p, k)
		}
		return rows, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"3/0", "3/1", "3/2", "1/0", "2/0", "2/1"}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %q, want %q (flattening not in sweep order)", i, out[i], want[i])
		}
	}
}

// TestSeriesDeterministicUnderParallelism runs a real sweep twice and demands
// identical output: the engine must not let goroutine scheduling leak into
// results.
func TestSeriesDeterministicUnderParallelism(t *testing.T) {
	run := func() []SyncPoint {
		t.Helper()
		ResetParamsCache()
		pts, err := Fig6_3Series(platform.Xeon8x2x4(), 16, Quick())
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

package experiments

import (
	"fmt"

	"hbsp/internal/platform"
	"hbsp/internal/stencil"
)

// StencilConfigRow is one row of Table 8.1: the experimental configurations
// of the Chapter 8 study.
type StencilConfigRow struct {
	Label          string
	Implementation string
	GridN          int
	Iterations     int
	MaxProcs       int
}

// Table8_1 lists the experimental configurations used by the Chapter 8
// experiments under the supplied options.
func Table8_1(opts Options) []StencilConfigRow {
	opts = opts.normalize()
	var rows []StencilConfigRow
	for _, impl := range []string{"bsp", "bsp (no overlap window)", "mpi", "mpi+r", "hybrid"} {
		rows = append(rows,
			StencilConfigRow{Label: "large", Implementation: impl, GridN: opts.StencilLargeN, Iterations: opts.StencilIterations, MaxProcs: opts.MaxProcsXeon},
			StencilConfigRow{Label: "small", Implementation: impl, GridN: opts.StencilSmallN, Iterations: opts.StencilIterations, MaxProcs: opts.MaxProcsXeon},
		)
	}
	return rows
}

// Table8_1Table renders Table 8.1.
func Table8_1Table(rows []StencilConfigRow) *Table {
	t := &Table{Title: "Table 8.1: experimental configurations", Columns: []string{"problem", "implementation", "N", "iterations", "max P"}}
	for _, r := range rows {
		t.AddRow(r.Label, r.Implementation, fmt.Sprintf("%d", r.GridN), fmt.Sprintf("%d", r.Iterations), fmt.Sprintf("%d", r.MaxProcs))
	}
	return t
}

// WallTimeRow is one row of Table 8.2: MPI and MPI+R wall times.
type WallTimeRow struct {
	Procs   int
	MPI     float64
	MPIR    float64
	Speedup float64
}

// Table8_2 reproduces Table 8.2: wall times of the MPI and restructured MPI
// implementations on the large problem.
func Table8_2(prof *platform.Profile, opts Options) ([]WallTimeRow, error) {
	opts = opts.normalize()
	cfg := stencil.Config{N: opts.StencilLargeN, Iterations: opts.StencilIterations, C: 0.2, Synthetic: opts.Synthetic}
	var sweep []int
	for _, p := range []int{4, 16, opts.MaxProcsXeon} {
		if p <= prof.Topology.TotalCores() {
			sweep = append(sweep, p)
		}
	}
	return ParallelSeries(sweep, func(p int) ([]WallTimeRow, error) {
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		plain, err := stencil.RunMPI(m, cfg)
		if err != nil {
			return nil, err
		}
		restructured, err := stencil.RunMPIRestructured(m, cfg)
		if err != nil {
			return nil, err
		}
		row := WallTimeRow{Procs: p, MPI: plain.WallTime, MPIR: restructured.WallTime}
		if row.MPIR > 0 {
			row.Speedup = row.MPI / row.MPIR
		}
		return []WallTimeRow{row}, nil
	})
}

// ScalingPoint is one point of the A-series figures (Figs. 8.4–8.7): the
// per-iteration wall time of one implementation at one process count.
type ScalingPoint struct {
	Implementation string
	Procs          int
	PerIteration   float64
	Checksum       float64
}

// Fig8_4Series reproduces the strong-scaling comparison of all
// implementations (A1); restricting the implementations slice reproduces the
// A2–A4 subsets.
func Fig8_4Series(prof *platform.Profile, gridN int, implementations []string, opts Options) ([]ScalingPoint, error) {
	opts = opts.normalize()
	cfg := stencil.Config{N: gridN, Iterations: opts.StencilIterations, C: 0.2, Synthetic: opts.Synthetic}
	if len(implementations) == 0 {
		implementations = []string{"bsp", "bsp-serial", "mpi", "mpi+r", "hybrid"}
	}
	var sweep []int
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if p > opts.MaxProcsXeon || p > prof.Topology.TotalCores() {
			break
		}
		sweep = append(sweep, p)
	}
	return ParallelSeries(sweep, func(p int) ([]ScalingPoint, error) {
		var out []ScalingPoint
		for _, impl := range implementations {
			var (
				res *stencil.RunResult
				err error
			)
			switch impl {
			case "bsp":
				m, merr := prof.Machine(p)
				if merr != nil {
					return nil, merr
				}
				res, err = stencil.RunBSP(m, cfg, 1)
			case "bsp-serial":
				// The BSP implementation with an empty overlap window: all
				// computation after the synchronization.
				m, merr := prof.Machine(p)
				if merr != nil {
					return nil, merr
				}
				res, err = stencil.RunBSP(m, cfg, 0)
			case "mpi":
				m, merr := prof.Machine(p)
				if merr != nil {
					return nil, merr
				}
				res, err = stencil.RunMPI(m, cfg)
			case "mpi+r":
				m, merr := prof.Machine(p)
				if merr != nil {
					return nil, merr
				}
				res, err = stencil.RunMPIRestructured(m, cfg)
			case "hybrid":
				nodes := p / prof.Topology.CoresPerNode()
				if nodes < 1 {
					continue
				}
				res, err = stencil.RunHybrid(prof, nodes, cfg, 0.9)
			default:
				return nil, fmt.Errorf("experiments: unknown implementation %q", impl)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, ScalingPoint{Implementation: impl, Procs: p, PerIteration: res.PerIteration, Checksum: res.Checksum})
		}
		return out, nil
	})
}

// PredictionPoint is one point of the B-series figures (Figs. 8.10–8.15):
// predicted against measured per-iteration time for one model variant.
type PredictionPoint struct {
	Variant   string
	Problem   string
	Procs     int
	Predicted float64
	Measured  float64
	RelError  float64
}

// Fig8_10Series reproduces the B-series: for the large and small problems and
// a sweep of process counts, the measured BSP iteration time is compared with
// three prediction variants — the full overlap-aware model (B1/B2), the model
// without overlap (B3/B4), and the model without the payload-extended
// synchronization term (B5/B6).
func Fig8_10Series(prof *platform.Profile, opts Options) ([]PredictionPoint, error) {
	opts = opts.normalize()
	variants := []string{"overlap", "no-overlap", "no-sync"}
	type bPoint struct {
		label string
		n     int
		p     int
	}
	var sweep []bPoint
	for _, prob := range []struct {
		label string
		n     int
	}{{"large", opts.StencilLargeN}, {"small", opts.StencilSmallN}} {
		for _, p := range []int{4, 16, opts.MaxProcsXeon} {
			if p > prof.Topology.TotalCores() {
				continue
			}
			sweep = append(sweep, bPoint{label: prob.label, n: prob.n, p: p})
		}
	}
	return ParallelSeries(sweep, func(pt bPoint) ([]PredictionPoint, error) {
		label, n, p := pt.label, pt.n, pt.p
		cfg := stencil.Config{N: n, Iterations: opts.StencilIterations, C: 0.2, Synthetic: opts.Synthetic}
		m, err := prof.Machine(p)
		if err != nil {
			return nil, err
		}
		params, err := stencil.GroundTruthParams(prof, p)
		if err != nil {
			return nil, err
		}
		measured, err := stencil.MeasureBSP(m, cfg, 1, opts.Reps)
		if err != nil {
			return nil, err
		}
		var out []PredictionPoint
		for _, variant := range variants {
			setup, err := stencil.BuildModel(prof, params, p, cfg, 1)
			if err != nil {
				return nil, err
			}
			switch variant {
			case "no-overlap":
				setup.Superstep.MaskableComm = 0
				setup.Superstep.MaskableComp = 0
			case "no-sync":
				setup.Superstep.SyncCost = 0
			}
			pred, err := setup.Superstep.Predict()
			if err != nil {
				return nil, err
			}
			row := PredictionPoint{Variant: variant, Problem: label, Procs: p, Predicted: pred.Total, Measured: measured.PerIteration}
			if row.Measured > 0 {
				row.RelError = (row.Predicted - row.Measured) / row.Measured
			}
			out = append(out, row)
		}
		return out, nil
	})
}

// OverlapSweepPoint is one point of Fig. 8.18 (C1): predicted and measured
// iteration time as a function of the overlap-window fraction.
type OverlapSweepPoint struct {
	Fraction  float64
	Predicted float64
	Measured  float64
}

// Fig8_18Series reproduces Fig. 8.18: the model-driven adaptation sweep over
// the fraction of ghost-independent work placed in the overlap window.
func Fig8_18Series(prof *platform.Profile, procs int, opts Options) ([]OverlapSweepPoint, error) {
	opts = opts.normalize()
	cfg := stencil.Config{N: opts.StencilLargeN, Iterations: opts.StencilIterations, C: 0.2, Synthetic: opts.Synthetic}
	params, err := stencil.GroundTruthParams(prof, procs)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	predicted, err := stencil.PredictOverlapSweep(prof, params, procs, cfg, fractions)
	if err != nil {
		return nil, err
	}
	m, err := prof.Machine(procs)
	if err != nil {
		return nil, err
	}
	return RunPoints(len(fractions), func(i int) (OverlapSweepPoint, error) {
		meas, err := stencil.MeasureBSP(m, cfg, fractions[i], opts.Reps)
		if err != nil {
			return OverlapSweepPoint{}, err
		}
		return OverlapSweepPoint{Fraction: fractions[i], Predicted: predicted[i].Predicted, Measured: meas.PerIteration}, nil
	})
}

package sched_test

import (
	"context"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/fault"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// sweepOptionsFor mirrors RunSchedule's fixed conventions (computeEmpty true,
// the schedule tag space) so sweep points diff cleanly against it.
func sweepOptionsFor(o simnet.Options) sched.SweepOptions {
	return sched.SweepOptions{
		AckSends:         o.AckSends,
		SymmetryCollapse: o.SymmetryCollapse,
		ComputeEmpty:     true,
		Faults:           o.Faults,
		Recorder:         o.Recorder,
		Deadline:         o.Deadline,
	}
}

// diffSweepPoint evaluates one point through the sweep evaluator and through
// an independent RunSchedule call and requires bit-identical everything:
// per-rank times, makespan, traffic counters and the collapse diagnostic.
func diffSweepPoint(t *testing.T, tag string, sw *sched.SweepEvaluator, m *platform.Machine, s sched.Schedule, execs int, o simnet.Options) {
	t.Helper()
	want, err := sched.RunSchedule(context.Background(), m, s, execs, o)
	if err != nil {
		t.Fatalf("%s: RunSchedule: %v", tag, err)
	}
	got, err := sw.Run(context.Background(), m, s, execs)
	if err != nil {
		t.Fatalf("%s: SweepEvaluator.Run: %v", tag, err)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("%s: %d times, want %d", tag, len(got.Times), len(want.Times))
	}
	for r := range want.Times {
		if got.Times[r] != want.Times[r] {
			t.Fatalf("%s rank %d: sweep %v, independent %v", tag, r, got.Times[r], want.Times[r])
		}
	}
	if got.MakeSpan != want.MakeSpan {
		t.Errorf("%s makespan: sweep %v, independent %v", tag, got.MakeSpan, want.MakeSpan)
	}
	if got.Messages != want.Messages || got.Bytes != want.Bytes {
		t.Errorf("%s traffic: sweep %d/%d, independent %d/%d",
			tag, got.Messages, got.Bytes, want.Messages, want.Bytes)
	}
	if got.Collapse != want.Collapse {
		t.Errorf("%s collapse: sweep %+v, independent %+v", tag, got.Collapse, want.Collapse)
	}
}

// sweepMachines returns the machine matrix of the golden diffs: the
// heterogeneous Xeon cluster (HeteroSpread > 0, so collapse falls back and
// the term-tape path carries the evaluation) and the pairwise-uniform flat
// cluster (symmetry-collapsed path, memoized partitions).
func sweepMachines(t *testing.T, p int) map[string]*platform.Machine {
	t.Helper()
	hetero, err := platform.XeonClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*platform.Machine{"hetero": hetero, "flat": flat}
}

// TestSweepGoldenBitIdentical is the correctness bar of the sweep evaluator:
// across P from 16 to 4096, both the per-rank term-tape path (heterogeneous
// machine) and the collapsed path (uniform machine), acks on and off, a
// bytes-axis sweep over circulant and non-circulant schedules must reproduce
// independent RunSchedule calls bit for bit at every point — including the
// pure-replay repeats of an unchanged point.
func TestSweepGoldenBitIdentical(t *testing.T) {
	for _, p := range []int{16, 256, 4096} {
		if testing.Short() && p > 256 {
			continue
		}
		for mname, m := range sweepMachines(t, p) {
			for _, ack := range []bool{true, false} {
				o := simnet.DefaultOptions()
				o.AckSends = ack
				sw, err := sched.NewSweepEvaluator(m, sweepOptionsFor(o))
				if err != nil {
					t.Fatal(err)
				}
				diss, err := barrier.StreamDissemination(p)
				if err != nil {
					t.Fatal(err)
				}
				bytesAxis := []int{0, 64, 1024}
				if p > 256 {
					bytesAxis = []int{64, 1024}
				}
				for _, b := range bytesAxis {
					ar, err := barrier.StreamAllReduce(p, b)
					if err != nil {
						t.Fatal(err)
					}
					tag := mname + "/allreduce"
					diffSweepPoint(t, tag, sw, m, ar, 2, o)
					if p <= 256 {
						te, err := barrier.StreamTotalExchange(p, b)
						if err != nil {
							t.Fatal(err)
						}
						diffSweepPoint(t, mname+"/total-exchange", sw, m, te, 2, o)
						bc, err := barrier.StreamBroadcast(p, 0, b)
						if err != nil {
							t.Fatal(err)
						}
						diffSweepPoint(t, mname+"/broadcast", sw, m, bc, 2, o)
					}
				}
				// Unchanged points: the second evaluation is a pure replay on
				// the term path and must still match exactly.
				diffSweepPoint(t, mname+"/diss", sw, m, diss, 2, o)
				diffSweepPoint(t, mname+"/diss-repeat", sw, m, diss, 2, o)
				st := sw.Stats()
				if mname == "hetero" && st.TapesBuilt == 0 {
					t.Errorf("p=%d %s ack=%v: no term tapes built (term path not exercised)", p, mname, ack)
				}
				if mname == "hetero" && st.PointsReused == 0 {
					t.Errorf("p=%d %s ack=%v: repeated point was not a pure replay: %+v", p, mname, ack, st)
				}
				if mname == "flat" && st.PartitionsReused == 0 {
					t.Errorf("p=%d %s ack=%v: no partition reuse on the collapsed path: %+v", p, mname, ack, st)
				}
				sw.Release()
			}
		}
	}
}

// TestSweepGoldenScaleAxis sweeps LogGP scalings: machines instantiated from
// scaled copies of the profile are term-compatible with the base, so the
// evaluator re-prices its cached tape under each point's link columns —
// and every point must match an independent evaluation bit for bit.
func TestSweepGoldenScaleAxis(t *testing.T) {
	for _, p := range []int{16, 256} {
		base := platform.XeonCluster((p + 7) / 8)
		bm, err := base.Machine(p)
		if err != nil {
			t.Fatal(err)
		}
		o := simnet.DefaultOptions()
		sw, err := sched.NewSweepEvaluator(bm, sweepOptionsFor(o))
		if err != nil {
			t.Fatal(err)
		}
		te, err := barrier.StreamTotalExchange(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		scales := []struct {
			name                string
			lat, gap, beta, ovh float64
		}{
			{"identity", 1, 1, 1, 1},
			{"latx2", 2, 1, 1, 1},
			{"gapx0.5", 1, 0.5, 1, 1},
			{"betax4", 1, 1, 4, 1},
			{"ovhx3", 1, 1, 1, 3},
			{"all", 1.5, 1.5, 1.5, 1.5},
		}
		for _, sc := range scales {
			pm, err := base.Scaled(sc.lat, sc.gap, sc.beta, sc.ovh).Machine(p)
			if err != nil {
				t.Fatal(err)
			}
			diffSweepPoint(t, "scale/"+sc.name, sw, pm, te, 2, o)
		}
		st := sw.Stats()
		if st.TapesBuilt != 1 || st.TapesReused < int64(len(scales)-1) {
			t.Errorf("p=%d: scale sweep should reuse one tape across scalings: %+v", p, st)
		}
		if st.Rebases != 0 {
			t.Errorf("p=%d: scaled machines must not rebase the evaluator: %+v", p, st)
		}
		sw.Release()
	}
}

// TestSweepGoldenFaults repeats the diff under fault plans — uniform link
// degradation, a straggler, a fail-stop and deterministic jitter — which
// force the per-rank fallback and live fault terms during replay.
func TestSweepGoldenFaults(t *testing.T) {
	p := 64
	plans := map[string]*fault.Plan{
		"links":     {Links: []fault.LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2}}},
		"straggler": {Slowdowns: []fault.Slowdown{{Rank: 3, Factor: 2}}},
		"failstop":  {FailStops: []fault.FailStop{{Rank: 3, FailAt: 1e-5, Restart: 1e-4}}},
		"srclink":   {Links: []fault.LinkRule{{Src: 3, Dst: -1, Class: -1, LatencyFactor: 3, BetaFactor: 3}}},
	}
	for mname, m := range sweepMachines(t, p) {
		for pname, plan := range plans {
			o := simnet.DefaultOptions()
			o.Faults = plan
			sw, err := sched.NewSweepEvaluator(m, sweepOptionsFor(o))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range []int{0, 64, 256} {
				te, err := barrier.StreamTotalExchange(p, b)
				if err != nil {
					t.Fatal(err)
				}
				diffSweepPoint(t, mname+"/"+pname+"/te", sw, m, te, 2, o)
			}
			diss, err := barrier.StreamDissemination(p)
			if err != nil {
				t.Fatal(err)
			}
			diffSweepPoint(t, mname+"/"+pname+"/diss", sw, m, diss, 2, o)
			sw.Release()
		}
	}
}

// TestSweepGoldenNoisy diffs a noisy machine across a run-seed axis: points
// that share a seed are pure replays, points with new seeds redraw every
// jitter factor live — both must match independent evaluation exactly.
func TestSweepGoldenNoisy(t *testing.T) {
	p := 64
	base := platform.Xeon8x2x4() // NoiseRel > 0
	bm, err := base.Machine(p)
	if err != nil {
		t.Fatal(err)
	}
	o := simnet.DefaultOptions()
	sw, err := sched.NewSweepEvaluator(bm, sweepOptionsFor(o))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Release()
	te, err := barrier.StreamTotalExchange(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3, 2} {
		pm := bm.WithRunSeed(seed)
		diffSweepPoint(t, "noisy", sw, pm, te, 2, o)
	}
	// Same seed again: identical noise stream, identical columns → replay.
	diffSweepPoint(t, "noisy-repeat", sw, bm.WithRunSeed(2), te, 2, o)
	if st := sw.Stats(); st.PointsReused == 0 {
		t.Errorf("repeated seed was not a pure replay: %+v", st)
	}
}

// TestSweepGoldenTraced attaches a recorder to both paths: every point of a
// traced sweep must produce the identical event stream an independent traced
// RunSchedule produces, run for run.
func TestSweepGoldenTraced(t *testing.T) {
	p := 16
	for mname, m := range sweepMachines(t, p) {
		recSweep := trace.NewRecorder()
		oSweep := simnet.DefaultOptions()
		oSweep.Recorder = recSweep
		sw, err := sched.NewSweepEvaluator(m, sweepOptionsFor(oSweep))
		if err != nil {
			t.Fatal(err)
		}
		recRef := trace.NewRecorder()
		oRef := simnet.DefaultOptions()
		oRef.Recorder = recRef

		for _, b := range []int{0, 64, 64} {
			te, err := barrier.StreamTotalExchange(p, b)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sched.RunSchedule(context.Background(), m, te, 2, oRef)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sw.Run(context.Background(), m, te, 2)
			if err != nil {
				t.Fatal(err)
			}
			for r := range want.Times {
				if got.Times[r] != want.Times[r] {
					t.Fatalf("%s traced bytes=%d rank %d: sweep %v, independent %v", mname, b, r, got.Times[r], want.Times[r])
				}
			}
		}
		if s, w := eventStream(t, recSweep), eventStream(t, recRef); s != w {
			t.Errorf("%s: traced sweep event stream differs from independent runs", mname)
		}
		sw.Release()
	}
}

// TestSweepCollapseOff forces per-rank evaluation on a machine that would
// otherwise collapse, pinning the CollapseOff option through the sweep path.
func TestSweepCollapseOff(t *testing.T) {
	p := 64
	m, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	o := simnet.DefaultOptions()
	o.SymmetryCollapse = simnet.CollapseOff
	sw, err := sched.NewSweepEvaluator(m, sweepOptionsFor(o))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Release()
	for _, b := range []int{0, 64, 1024} {
		te, err := barrier.StreamTotalExchange(p, b)
		if err != nil {
			t.Fatal(err)
		}
		diffSweepPoint(t, "collapse-off", sw, m, te, 2, o)
	}
	if st := sw.Stats(); st.TapesBuilt == 0 || st.TapesReused == 0 {
		t.Errorf("CollapseOff term path built/reused no tapes: %+v", st)
	}
}

// TestSweepMemoEviction pins the eviction path: a budget sized for roughly
// one tape, alternating schedule structures, must evict tapes rather than
// grow, and every point must stay bit-identical to independent evaluation.
func TestSweepMemoEviction(t *testing.T) {
	p := 64
	m, err := platform.XeonClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	o := simnet.DefaultOptions()
	opt := sweepOptionsFor(o)
	opt.MemoBudget = 100 << 10 // ~one 64-rank total-exchange tape
	sw, err := sched.NewSweepEvaluator(m, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Release()
	te, err := barrier.StreamTotalExchange(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := barrier.StreamAllGatherRing(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		diffSweepPoint(t, "evict/te", sw, m, te, 2, o)
		diffSweepPoint(t, "evict/ring", sw, m, ring, 2, o)
	}
	st := sw.Stats()
	if st.TapesEvicted == 0 {
		t.Fatalf("alternating structures under a one-tape budget evicted nothing: %+v", st)
	}
	if st.MemoBytes > opt.MemoBudget {
		t.Errorf("memo %d bytes exceeds budget %d", st.MemoBytes, opt.MemoBudget)
	}

	// A budget below any tape disables taping but must not change results.
	optNone := sweepOptionsFor(o)
	optNone.MemoBudget = -1
	swNone, err := sched.NewSweepEvaluator(m, optNone)
	if err != nil {
		t.Fatal(err)
	}
	defer swNone.Release()
	diffSweepPoint(t, "no-tape", swNone, m, te, 2, o)
	if st := swNone.Stats(); st.TapesBuilt != 0 {
		t.Errorf("disabled budget still built tapes: %+v", st)
	}
}

// TestSweepPrefixSkip pins dirty-stage propagation: on a multi-stage
// circulant schedule where only a late stage's payload changes, the
// evaluator must resume from a checkpoint instead of re-evaluating from
// stage zero — and still match independent evaluation exactly.
func TestSweepPrefixSkip(t *testing.T) {
	p := 64
	m, err := platform.XeonClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	o := simnet.DefaultOptions()
	sw, err := sched.NewSweepEvaluator(m, sweepOptionsFor(o))
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Release()

	offs := make([]int, p-1)
	sizes := make([]int, p-1)
	for k := 1; k < p; k++ {
		offs[k-1] = k
		sizes[k-1] = 64
	}
	s0, err := sched.NewCirculant(p, offs, sizes)
	if err != nil {
		t.Fatal(err)
	}
	diffSweepPoint(t, "prefix/base", sw, m, s0, 1, o)

	// Change only the last stage's payload: same offsets → same tape, and
	// stages before the change replay from a checkpoint.
	sizes2 := append([]int(nil), sizes...)
	sizes2[len(sizes2)-1] = 4096
	s1, err := sched.NewCirculant(p, offs, sizes2)
	if err != nil {
		t.Fatal(err)
	}
	diffSweepPoint(t, "prefix/tail-change", sw, m, s1, 1, o)
	st := sw.Stats()
	if st.PrefixStagesSkipped == 0 {
		t.Errorf("tail-only change skipped no prefix stages: %+v", st)
	}
	if st.TapesBuilt != 1 {
		t.Errorf("same offsets should share one tape: %+v", st)
	}
}

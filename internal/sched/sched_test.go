package sched_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// ringProgram is a mixed op-stream: eager posts, acknowledged sends,
// receives waited out of post order, compute intervals and trace marks.
func ringProgram(p int) *simnet.Program {
	pr := simnet.NewProgram(p)
	for r := 0; r < p; r++ {
		b := pr.Rank(r)
		next, prev := (r+1)%p, (r+p-1)%p
		for k := 0; k < 4; k++ {
			b.Stage(k)
			rq := b.Irecv(prev, k)
			b.Post(next, k, 8)
			b.Wait(rq)
			b.Stage(-1)
		}
		b.Compute(1e-6 * float64(r+1))
		// Two in-flight acknowledged sends waited in reverse order, and two
		// receives waited in reverse post order (FIFO is wait-order).
		s1 := b.Isend(next, 100, 64)
		s2 := b.Isend(next, 100, 128)
		r2 := b.Irecv(prev, 100)
		r1 := b.Irecv(prev, 100)
		b.Wait(s2)
		b.Wait(s1)
		b.Wait(r2)
		b.Wait(r1)
		b.Superstep(0)
		b.ComputeExact(5e-7)
		// Zero-byte message and a self-send.
		zq := b.Irecv(prev, 200)
		b.Post(next, 200, 0)
		b.Wait(zq)
		sq := b.Irecv(r, 300)
		b.Post(r, 300, 16)
		b.Wait(sq)
	}
	return pr
}

// machines returns the cross-engine diff matrix: noisy and noiseless, odd
// and power-of-two rank counts.
func machines(t *testing.T, p int, seed int64, noisy bool) *platform.Machine {
	t.Helper()
	prof := platform.Xeon8x2x4()
	if !noisy {
		prof = platform.XeonCluster((p + 7) / 8)
	}
	m, err := prof.Machine(p)
	if err != nil {
		t.Fatal(err)
	}
	return m.WithRunSeed(seed)
}

func eventStream(t *testing.T, rec *trace.Recorder) string {
	t.Helper()
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestProgramEnginesBitIdentical diffs the direct evaluator against the
// concurrent engine event-for-event: virtual times must be bit-identical and
// the recorded trace streams byte-identical, across odd and power-of-two P,
// acks on and off, noisy and noiseless machines.
func TestProgramEnginesBitIdentical(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 13, 16} {
		for _, ack := range []bool{true, false} {
			for _, noisy := range []bool{true, false} {
				m := machines(t, p, 42, noisy)
				pr := ringProgram(p)

				recC := trace.NewRecorder()
				oC := simnet.DefaultOptions()
				oC.AckSends = ack
				oC.Engine = simnet.EngineConcurrent
				oC.Recorder = recC
				resC, err := simnet.RunProgram(context.Background(), m, pr, oC)
				if err != nil {
					t.Fatalf("p=%d ack=%v noisy=%v concurrent: %v", p, ack, noisy, err)
				}

				recD := trace.NewRecorder()
				oD := simnet.DefaultOptions()
				oD.AckSends = ack
				oD.Recorder = recD
				resD, err := sched.RunProgram(context.Background(), m, pr, oD)
				if err != nil {
					t.Fatalf("p=%d ack=%v noisy=%v direct: %v", p, ack, noisy, err)
				}

				if len(resC.Times) != len(resD.Times) {
					t.Fatalf("rank count mismatch: %d vs %d", len(resC.Times), len(resD.Times))
				}
				for r := range resC.Times {
					if resC.Times[r] != resD.Times[r] {
						t.Errorf("p=%d ack=%v noisy=%v rank %d: concurrent %v, direct %v",
							p, ack, noisy, r, resC.Times[r], resD.Times[r])
					}
				}
				if resC.MakeSpan != resD.MakeSpan {
					t.Errorf("p=%d ack=%v noisy=%v makespan: %v vs %v", p, ack, noisy, resC.MakeSpan, resD.MakeSpan)
				}
				if resC.Messages != resD.Messages || resC.Bytes != resD.Bytes {
					t.Errorf("p=%d traffic: %d/%d vs %d/%d", p, resC.Messages, resC.Bytes, resD.Messages, resD.Bytes)
				}
				if sc, sd := eventStream(t, recC), eventStream(t, recD); sc != sd {
					t.Errorf("p=%d ack=%v noisy=%v: traced event streams differ", p, ack, noisy)
				}
			}
		}
	}
}

// TestProgramDeadlockReturnsErrDeadline pins the evaluator's deadlock
// verdict: a receive no send ever produces returns ErrDeadline (immediately,
// where the concurrent engine would burn its wall-clock deadline first).
func TestProgramDeadlockReturnsErrDeadline(t *testing.T) {
	m := machines(t, 2, 1, false)
	pr := simnet.NewProgram(2)
	b := pr.Rank(0)
	b.Wait(b.Irecv(1, 7)) // rank 1 never sends
	o := simnet.DefaultOptions()
	if _, err := sched.RunProgram(context.Background(), m, pr, o); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}

	// A cyclic wait deadlock: both ranks wait before sending.
	pr2 := simnet.NewProgram(2)
	for r := 0; r < 2; r++ {
		b := pr2.Rank(r)
		b.Wait(b.Irecv(1-r, 9))
		b.Post(1-r, 9, 8)
	}
	if _, err := sched.RunProgram(context.Background(), m, pr2, o); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("cyclic: want ErrDeadline, got %v", err)
	}
}

// TestProgramContextCancellation pins that a cancelled context aborts the
// evaluation with the concurrent engine's error shape (wrapping ErrAborted
// and the cancellation cause).
func TestProgramContextCancellation(t *testing.T) {
	m := machines(t, 2, 1, false)
	// A very long program so the periodic check fires.
	pr := simnet.NewProgram(2)
	for r := 0; r < 2; r++ {
		b := pr.Rank(r)
		for k := 0; k < 200000; k++ {
			b.ComputeExact(1e-9)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sched.RunProgram(ctx, m, pr, simnet.DefaultOptions())
	if !errors.Is(err, simnet.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrAborted wrapping context.Canceled, got %v", err)
	}

	// Wall-clock deadline mid-evaluation.
	o := simnet.DefaultOptions()
	o.Deadline = time.Nanosecond
	if _, err := sched.RunProgram(context.Background(), m, pr, o); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

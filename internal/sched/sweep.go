package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"

	"hbsp/internal/fault"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
	"time"
)

// Incremental sweep evaluation: a parameter sweep (bytes, LogGP scale, run
// seed) evaluates the same schedule structure point after point, and on a
// profile-backed machine every pairwise parameter factors into
//
//	param(i, j) = column[class(i, j)] * factor(i, j)
//
// where the column depends only on the distance class (and is what a LogGP
// scale sweep moves) while the factor — the deterministic per-pair
// heterogeneity — is an invariant of the sweep (TermMachine.PairTerm). The
// SweepEvaluator records the (factor, class) term of every edge of one
// execution into a tape on first evaluation and replays it for the remaining
// points: replay re-prices each edge with four multiplications against the
// point's columns instead of re-deriving placement distances, per-pair
// hashes and link-table lookups, which is where a per-rank P=4096 evaluation
// spends most of its time. Payload sizes and noise draws are read live from
// the point's schedule and machine, so a bytes-axis point re-prices message
// terms over the cached structure and the results stay bit-identical to an
// independent RunSchedule call — the same grouping of the same float64
// operands in the same order.
//
// On top of the tape, circulant schedules get dirty-stage propagation: the
// evaluator snapshots per-stage payload sizes, the columns and checkpointed
// rank states from the previous point, locates the first stage a new point
// actually changes, and resumes from the latest checkpoint at or before it.
// A point that changes nothing is a pure replay of the cached result.
//
// Symmetry-collapsed evaluation composes: when the (memoized) partition
// applies, the collapsed executor is already O(classes·stages) and runs
// live — only the partition decision itself is reused across points.

// TermMachine is the optional machine capability the sweep evaluator's term
// tape requires: a multiplicative (factor, class) decomposition of the
// pairwise parameters (platform.Machine implements it from its profile and
// placement). The contract is exact: for every pair, column[class]*factor
// must reproduce the pairwise accessors bit for bit, and both factor and
// class must be invariants of every machine TermCompatible accepts.
type TermMachine interface {
	simnet.Machine
	// PairTerm returns the pair's heterogeneity factor and distance class.
	PairTerm(i, j int) (factor float64, class uint8)
	// TermLinks returns the per-class parameter columns, indexed by class.
	TermLinks() (lat, gap, beta, ovh []float64)
	// TermCompatible reports whether o shares this machine's decomposition
	// (same placement, classes, NICs and heterogeneity stream; columns and
	// run seed may differ).
	TermCompatible(o any) bool
	// NoiseFree reports whether the noise stream is identically 1.
	NoiseFree() bool
}

// DefaultSweepMemoBudget bounds the memoized term tapes (and their stage
// snapshots) of one SweepEvaluator: 256 MiB, comfortably above one P=4096
// total-exchange tape, far below a long-lived daemon's memory.
const DefaultSweepMemoBudget = 256 << 20

// sweepTapeClasses is the width of the tape's class space: classes are uint8
// column indexes, and the dirty-stage masks track the first eight. A machine
// reporting a class beyond the columns disables taping (no such machine
// exists today — topology has five distance classes).
const sweepTapeClasses = 8

// SweepOptions configures a SweepEvaluator. The zero value matches
// RunSchedule's defaults (no acks, collapse auto, computeEmpty false — set
// ComputeEmpty to mirror RunSchedule's barrier.Execute convention; leave it
// false to mirror the mpi flood and BSP count-exchange convention).
type SweepOptions struct {
	// AckSends selects acknowledged sends (simnet.Options.AckSends).
	AckSends bool
	// SymmetryCollapse disables collapsed evaluation when CollapseOff.
	SymmetryCollapse simnet.CollapseMode
	// ComputeEmpty pays an empty Compute(0) (one noise draw) on stages where
	// a rank has no edges, barrier.Execute's convention; RunSchedule uses
	// true, the inline gate paths use false.
	ComputeEmpty bool
	// TagBase labels stage s's messages with tag TagBase+s in recorded
	// events; 0 means ScheduleTagBase (RunSchedule's space).
	TagBase int
	// Faults is the sweep's fault plan, compiled once at construction.
	Faults *fault.Plan
	// Recorder, when enabled, records every point as one trace run. Recording
	// forces per-rank evaluation and disables result/prefix reuse (per-rank
	// lanes cannot be replayed), but term tapes still apply.
	Recorder *trace.Recorder
	// Deadline bounds each point's wall-clock evaluation; 0 means the simnet
	// default.
	Deadline time.Duration
	// MemoBudget bounds the memoized term tapes in bytes: 0 means
	// DefaultSweepMemoBudget, negative disables taping entirely (terms are
	// still fetched through PairTerm, skipping the link tables, but nothing
	// is cached).
	MemoBudget int64
}

// SweepStats counts what a SweepEvaluator reused across the points it
// evaluated so far.
type SweepStats struct {
	// Points is the number of Run calls.
	Points int64
	// PointsReused counts points answered entirely from the cached result of
	// an equivalent earlier point (pure replay: no stage was re-evaluated).
	PointsReused int64
	// PartitionsReused counts points that reused a memoized symmetry
	// partition decision instead of re-deriving it.
	PartitionsReused int64
	// TapesBuilt / TapesReused / TapesEvicted count term-tape lifecycle
	// events; a reused tape evaluates a point without any pair-parameter
	// derivation.
	TapesBuilt   int64
	TapesReused  int64
	TapesEvicted int64
	// PrefixStagesSkipped counts stages skipped by dirty-stage propagation
	// (restored from a checkpoint instead of re-evaluated).
	PrefixStagesSkipped int64
	// Rebases counts Run calls whose machine was incompatible with the
	// evaluator's current base, dropping all memoized state.
	Rebases int64
	// MemoBytes is the current size of the memoized tapes.
	MemoBytes int64
}

// sweepCkpt is one rank-state checkpoint inside execution 0 of a taped
// point: the complete evaluator state after stages [0, stage).
type sweepCkpt struct {
	valid    bool
	stage    int
	cursor   int64
	messages int64
	bytes    int64
	states   []rankState
}

// sweepCkptSlots is the number of evenly spaced checkpoints kept per tape.
const sweepCkptSlots = 8

// sweepTape is one memoized schedule structure: the (factor, class) term of
// every edge of one execution in evaluation order, per-stage cursors and
// class masks, and — for dirty-stage propagation — the previous point's
// sizes, columns, noise key, checkpoints and result.
type sweepTape struct {
	key           uint64
	offs          []int32  // circulant stage offsets; nil for generic entries
	sched         Schedule // generic entries: the schedule value (structure verification anchor)
	procs, stages int
	built         bool

	factors    []float64
	classes    []uint8
	srcs, dsts []int32 // generic entries: exact per-edge structure verification
	stageOff   []int64 // len stages+1: tape cursor at each stage boundary
	mask       []uint8 // per stage: bitmask of classes used
	overflow   bool    // a class beyond the mask width appeared: no delta analysis

	// Previous-point snapshot (dirty-stage delta and pure replay).
	lastValid  bool
	lastSizes  []int32 // circulant: per-stage payload size
	lastESizes []int32 // generic: per-edge payload size, tape order
	lastCols  [4][]float64
	lastSeed  int64
	lastFree  bool
	lastExecs int
	lastRes   *simnet.Result
	ckpts     []sweepCkpt

	bytes   int64
	lastUse int64
}

// SweepEvaluator evaluates a family of schedule points against compatible
// machines, reusing everything the points share: the evaluator arena, the
// symmetry-partition decisions, and the per-edge term tapes. Results are
// bit-identical to independent RunSchedule calls with the same options
// (pinned by the sweep golden tests). A SweepEvaluator is not safe for
// concurrent use — parallel sweeps give each worker its own.
type SweepEvaluator struct {
	base simnet.Machine
	tm   TermMachine
	opt  SweepOptions
	ft   *fault.Runtime
	e    *Evaluator

	// Current-point term state (loaded per Run on the term path).
	lat, gap, beta, ovh []float64
	nic                 []int32
	curSeed             int64
	curFree             bool
	noiseKnown          bool

	// Per-receiver gap-term queues, parallel to Evaluator.inArr: the swept
	// executor pushes the sender-computed gap term so the receive completion
	// never re-derives the pair.
	inGap [][]float64

	budget  int64
	useTick int64
	circ    map[uint64]*sweepTape
	gen     map[Schedule]*sweepTape

	// Memoized partition decisions (partitions are cheap to hold — O(P) —
	// so they are bounded by count, not folded into the byte budget).
	circParts map[uint64]*sweepPart
	genParts  map[Schedule]*sweepPart

	sizesScratch []int32
	stats        SweepStats
}

// sweepPart is one memoized collapse decision, keyed like tapes.
type sweepPart struct {
	offs  []int32
	procs int
	part  *Partition
	info  simnet.Collapse
}

// sweepMaxParts bounds the partition memo (entries are O(P)).
const sweepMaxParts = 64

// NewSweepEvaluator returns a sweep evaluator over the machine, compiling
// the options' fault plan once. Release returns the arena when done.
func NewSweepEvaluator(m simnet.Machine, opt SweepOptions) (*SweepEvaluator, error) {
	if m == nil || m.Procs() < 1 {
		return nil, errors.New("sched: machine with at least one rank required")
	}
	if opt.Deadline <= 0 {
		opt.Deadline = simnet.DefaultOptions().Deadline
	}
	if opt.TagBase == 0 {
		opt.TagBase = ScheduleTagBase
	}
	budget := opt.MemoBudget
	if budget == 0 {
		budget = DefaultSweepMemoBudget
	}
	if budget < 0 {
		budget = 0
	}
	ft, err := compileFaults(opt.Faults, m)
	if err != nil {
		return nil, err
	}
	sw := &SweepEvaluator{opt: opt, ft: ft, budget: budget}
	sw.adopt(m)
	return sw, nil
}

// adopt points the evaluator at a new base machine: (re)build the arena, the
// NIC cache and the term capability binding. Memoized state must already be
// consistent with the machine (cleared on rebase).
func (sw *SweepEvaluator) adopt(m simnet.Machine) {
	if sw.e != nil {
		sw.e.Release()
	}
	sw.base = m
	sw.e = NewEvaluator(m, sw.opt.AckSends)
	sw.e.collapseOff = sw.opt.SymmetryCollapse == simnet.CollapseOff
	sw.e.ft = sw.ft
	p := m.Procs()
	sw.inGap = make([][]float64, p)
	sw.tm = nil
	sw.nic = nil
	if tm, ok := m.(TermMachine); ok {
		sw.tm = tm
		sw.nic = make([]int32, p)
		for i := 0; i < p; i++ {
			sw.nic[i] = int32(m.NIC(i))
		}
	}
}

// Release returns the evaluator arena to the shared pool and drops all
// memoized state. The SweepEvaluator must not be used afterwards.
func (sw *SweepEvaluator) Release() {
	if sw.e != nil {
		sw.e.Release()
		sw.e = nil
	}
	sw.circ, sw.gen, sw.circParts, sw.genParts = nil, nil, nil, nil
	sw.stats.MemoBytes = 0
}

// SetDeadline changes the wall-clock bound of subsequent points (0 restores
// the simnet default). The deadline only bounds evaluation time — it never
// affects a point's result — so callers serving per-request budgets may
// adjust it between points without invalidating any memoized state.
func (sw *SweepEvaluator) SetDeadline(d time.Duration) {
	if d <= 0 {
		d = simnet.DefaultOptions().Deadline
	}
	sw.opt.Deadline = d
}

// Stats returns the reuse counters accumulated so far.
func (sw *SweepEvaluator) Stats() SweepStats {
	s := sw.stats
	s.MemoBytes = sw.memoBytes()
	return s
}

func (sw *SweepEvaluator) memoBytes() int64 {
	var n int64
	for _, t := range sw.circ {
		n += t.bytes
	}
	for _, t := range sw.gen {
		n += t.bytes
	}
	return n
}

// Run evaluates execs consecutive executions of the schedule on machine m
// (nil m means the evaluator's base machine) from zeroed rank states, the
// sweep-point counterpart of one RunSchedule call. The result — per-rank
// times, makespan, traffic, collapse diagnostic and recorded trace events —
// is bit-identical to RunSchedule(ctx, m, s, execs, o) with matching
// options. Machines compatible with the base (TermCompatible, or the base
// itself) reuse the memoized structure; an incompatible machine rebases the
// evaluator onto it, dropping all memoized state.
func (sw *SweepEvaluator) Run(ctx context.Context, m simnet.Machine, s Schedule, execs int) (*simnet.Result, error) {
	if sw.e == nil {
		return nil, errors.New("sched: sweep evaluator released")
	}
	if m == nil {
		m = sw.base
	}
	if m.Procs() < 1 {
		return nil, errors.New("sched: machine with at least one rank required")
	}
	if s == nil {
		return nil, errors.New("sched: nil schedule")
	}
	if s.NumProcs() != m.Procs() {
		return nil, fmt.Errorf("sched: schedule for %d ranks on a %d-rank machine", s.NumProcs(), m.Procs())
	}
	if execs < 1 {
		return nil, fmt.Errorf("sched: %d executions requested", execs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sw.stats.Points++

	term := false
	switch {
	case sw.tm != nil && sw.tm.TermCompatible(m):
		term = true
	case m == sw.base:
	default:
		if err := sw.rebase(m); err != nil {
			return nil, err
		}
		term = sw.tm != nil
	}

	// Arena reset: zero states and counters in place, point at the machine.
	e := sw.e
	for i := range e.states {
		e.states[i] = rankState{}
	}
	e.messages, e.bytes = 0, 0
	e.m = m
	if term {
		sw.loadTerms(m)
	}
	traced := sw.opt.Recorder.Enabled()
	beginRecording(sw.opt.Recorder, m, sw.opt.AckSends, e)

	// Partition decision, mirroring RunSchedule's switch; the default branch
	// is memoized across points.
	var part *Partition
	var collapse simnet.Collapse
	switch {
	case e.collapseOff:
		collapse = simnet.Collapse{Reason: simnet.CollapseReasonOff}
	case traced:
		collapse = simnet.Collapse{Reason: simnet.CollapseReasonTrace}
	default:
		part, collapse = sw.partitionFor(m, s)
	}
	e.lastCollapse = collapse

	perStage := m.Procs()
	if part != nil {
		perStage = part.NumClasses()
	}
	chk := newStageChecker(ctx, sw.opt.Deadline, perStage)

	var res *simnet.Result
	var err error
	switch {
	case part != nil:
		// Collapsed evaluation is already O(classes·stages); run it live.
		for x := 0; x < execs; x++ {
			if err = chk.check(); err == nil {
				err = e.execCollapsed(s, part, sw.opt.TagBase, sw.opt.ComputeEmpty, chk)
			}
			if err != nil {
				break
			}
		}
		if err == nil {
			e.ReplicateClasses(part)
		}
	case term:
		res, err = sw.runSwept(s, execs, chk, traced)
	default:
		for x := 0; x < execs; x++ {
			if err = chk.check(); err == nil {
				err = e.execSchedule(s, sw.opt.TagBase, sw.opt.ComputeEmpty, chk)
			}
			if err != nil {
				break
			}
		}
	}
	if err != nil {
		endRecording(sw.opt.Recorder, nil, e.messages, e.bytes, err)
		return nil, err
	}
	if res == nil {
		res = e.result()
		res.Messages, res.Bytes = e.messages, e.bytes
		res.Collapse = collapse
	}
	endRecording(sw.opt.Recorder, res, res.Messages, res.Bytes, nil)
	return res, nil
}

// rebase drops every memoized structure and adopts the machine as the new
// base (a different profile family, placement or rank count). The fault plan
// is recompiled against the new machine; a plan that no longer compiles
// (rank-targeted rules out of range) fails the point rather than silently
// degrading to fault-free.
func (sw *SweepEvaluator) rebase(m simnet.Machine) error {
	ft, err := compileFaults(sw.opt.Faults, m)
	if err != nil {
		return err
	}
	sw.stats.Rebases++
	sw.circ, sw.gen, sw.circParts, sw.genParts = nil, nil, nil, nil
	sw.ft = ft
	sw.adopt(m)
	return nil
}

// loadTerms loads the point machine's link columns and noise identity.
func (sw *SweepEvaluator) loadTerms(m simnet.Machine) {
	tm := m.(TermMachine)
	sw.lat, sw.gap, sw.beta, sw.ovh = tm.TermLinks()
	sw.curFree = tm.NoiseFree()
	sw.curSeed = 0
	sw.noiseKnown = true
	if !sw.curFree {
		if rs, ok := m.(interface{ RunSeed() int64 }); ok {
			sw.curSeed = rs.RunSeed()
		} else {
			sw.noiseKnown = false
		}
	}
}

// partitionFor memoizes the collapse decision per schedule structure:
// circulant schedules by their offset sequence (per-stage-uniform payload
// sizes cannot split rank classes, so the partition and its diagnostic are
// invariants of the offsets), everything else by the schedule value itself
// (sizes included). Machines within one compatibility family share distance
// classes and homogeneity, so the decision carries across points.
func (sw *SweepEvaluator) partitionFor(m simnet.Machine, s Schedule) (*Partition, simnet.Collapse) {
	if cs, ok := s.(CirculantSchedule); ok {
		key, offs := circStructure(cs, sw.sizesScratch[:0])
		sw.sizesScratch = offs[:0]
		if pm, ok := sw.circParts[key]; ok && pm.procs == s.NumProcs() && int32sEqual(pm.offs, offs) {
			sw.stats.PartitionsReused++
			return pm.part, pm.info
		}
		part, info := CollapseClassesWith(m, s, sw.ft)
		if sw.circParts == nil {
			sw.circParts = make(map[uint64]*sweepPart)
		}
		sw.boundParts()
		sw.circParts[key] = &sweepPart{offs: append([]int32(nil), offs...), procs: s.NumProcs(), part: part, info: info}
		return part, info
	}
	if !reflect.TypeOf(s).Comparable() {
		return CollapseClassesWith(m, s, sw.ft)
	}
	if pm, ok := sw.genParts[s]; ok {
		sw.stats.PartitionsReused++
		return pm.part, pm.info
	}
	part, info := CollapseClassesWith(m, s, sw.ft)
	if sw.genParts == nil {
		sw.genParts = make(map[Schedule]*sweepPart)
	}
	sw.boundParts()
	sw.genParts[s] = &sweepPart{part: part, info: info}
	return part, info
}

// boundParts keeps the partition memo under sweepMaxParts entries by
// dropping an arbitrary one (reuse, not correctness, is at stake).
func (sw *SweepEvaluator) boundParts() {
	if len(sw.circParts)+len(sw.genParts) < sweepMaxParts {
		return
	}
	for k := range sw.circParts {
		delete(sw.circParts, k)
		return
	}
	for k := range sw.genParts {
		delete(sw.genParts, k)
		return
	}
}

// circStructure hashes a circulant schedule's offset sequence (FNV-1a) and
// returns the offsets; scratch is reused across calls.
func circStructure(cs CirculantSchedule, scratch []int32) (uint64, []int32) {
	offs := scratch
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(cs.NumProcs()))
	for k, n := 0, cs.NumStages(); k < n; k++ {
		off, _ := cs.CirculantStage(k)
		offs = append(offs, int32(off))
		mix(uint64(off) + 0x9e3779b9)
	}
	return h, offs
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runSwept evaluates a per-rank point on the term path: through the memoized
// tape when one fits the budget (building it on first sight), or with live
// PairTerm pricing when taping is disabled. Returns a non-nil result only on
// a pure replay (the caller otherwise assembles it from the evaluator).
func (sw *SweepEvaluator) runSwept(s Schedule, execs int, chk *stageChecker, traced bool) (*simnet.Result, error) {
	t := sw.lookupTape(s)
	if t == nil {
		for x := 0; x < execs; x++ {
			if err := chk.check(); err != nil {
				return nil, err
			}
			if _, err := sw.execSwept(s, 0, chk, nil, sweptLive, 0, nil); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	if err := chk.check(); err != nil {
		return nil, err
	}
	cs, isCirc := s.(CirculantSchedule)
	startStage := 0
	var startCursor int64
	if t.built {
		sw.stats.TapesReused++
		firstDirty := 0
		sizesOK := false
		if t.lastValid && !traced && !t.overflow && sw.noiseCompatible(t) {
			if isCirc {
				firstDirty, sizesOK = sw.firstDirtyStage(t, cs)
			} else {
				// Generic: the tape's structure was verified against the live
				// schedule at lookup, so equal sizes and columns change
				// nothing.
				if !sw.colsChanged(t, 0xff, true) && genericSizesEqual(t, s) {
					firstDirty, sizesOK = t.stages, true
				}
			}
		}
		if firstDirty >= t.stages && sizesOK && execs == t.lastExecs && t.lastRes != nil {
			sw.stats.PointsReused++
			sw.touch(t)
			return copySweepResult(t.lastRes), nil
		}
		if isCirc && !traced {
			if ck := bestCkpt(t, firstDirty); ck != nil {
				e := sw.e
				copy(e.states, ck.states)
				e.messages, e.bytes = ck.messages, ck.bytes
				startStage, startCursor = ck.stage, ck.cursor
				sw.stats.PrefixStagesSkipped += int64(ck.stage)
				// Checkpoints past the resume point were taken for the
				// previous point's suffix; they are refreshed below.
				for i := range t.ckpts {
					if t.ckpts[i].stage > ck.stage {
						t.ckpts[i].valid = false
					}
				}
			}
		}
	} else {
		sw.stats.TapesBuilt++
	}
	t.lastValid = false // invalidated until this point completes cleanly

	var ck *ckptTaker
	if isCirc && !traced {
		ck = newCkptTaker(t, startStage)
	}
	mode := sweptReplay
	if !t.built {
		mode = sweptBuild
		// An earlier build attempt may have aborted mid-point; start clean.
		t.factors, t.classes = t.factors[:0], t.classes[:0]
		t.srcs, t.dsts = t.srcs[:0], t.dsts[:0]
		t.stageOff, t.mask = t.stageOff[:0], t.mask[:0]
		t.overflow = false
	}
	cur, err := sw.execSwept(s, startStage, chk, t, mode, startCursor, ck)
	if err != nil {
		return nil, err
	}
	if mode == sweptBuild {
		t.stageOff = append(t.stageOff, cur)
		t.built = true
		t.accounted(sw)
	}
	for x := 1; x < execs; x++ {
		if err := chk.check(); err != nil {
			return nil, err
		}
		if _, err := sw.execSwept(s, 0, chk, t, sweptReplay, 0, nil); err != nil {
			return nil, err
		}
	}
	sw.snapshot(t, s, execs, traced)
	sw.touch(t)
	return nil, nil
}

// noiseCompatible reports whether the current point consumes the same noise
// stream the tape's snapshot did (a prefix of identical operations then
// draws identical jitter).
func (sw *SweepEvaluator) noiseCompatible(t *sweepTape) bool {
	if !sw.noiseKnown {
		return false
	}
	if sw.curFree {
		return t.lastFree
	}
	return !t.lastFree && sw.curSeed == t.lastSeed
}

// colsChanged reports whether any column of the classes in mask differs
// bitwise from the tape's snapshot; withBeta includes the beta column.
func (sw *SweepEvaluator) colsChanged(t *sweepTape, mask uint8, withBeta bool) bool {
	cols := [4][]float64{sw.lat, sw.gap, sw.ovh, sw.beta}
	last := [4][]float64{t.lastCols[0], t.lastCols[1], t.lastCols[2], t.lastCols[3]}
	n := 3
	if withBeta {
		n = 4
	}
	for c := 0; c < sweepTapeClasses; c++ {
		if mask&(1<<c) == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			var cur, prev float64
			if c < len(cols[i]) {
				cur = cols[i][c]
			}
			if c < len(last[i]) {
				prev = last[i][c]
			}
			if math.Float64bits(cur) != math.Float64bits(prev) {
				return true
			}
		}
	}
	return false
}

// firstDirtyStage locates the first stage the current point changes relative
// to the tape's snapshot: a payload-size change, or a bitwise column change
// in a class the stage samples (the beta column only matters on stages that
// move bytes). Returns (stages, true) when nothing changes.
func (sw *SweepEvaluator) firstDirtyStage(t *sweepTape, cs CirculantSchedule) (int, bool) {
	if len(t.lastSizes) != t.stages || len(t.mask) != t.stages {
		return 0, false
	}
	for sg := 0; sg < t.stages; sg++ {
		off, size := cs.CirculantStage(sg)
		if off == 0 {
			continue // empty stage: one machine-independent noise draw per rank
		}
		if int32(size) != t.lastSizes[sg] {
			return sg, false
		}
		if sw.colsChanged(t, t.mask[sg], size > 0) {
			return sg, false
		}
	}
	return t.stages, true
}

// bestCkpt returns the latest valid checkpoint at or before stage.
func bestCkpt(t *sweepTape, stage int) *sweepCkpt {
	var best *sweepCkpt
	for i := range t.ckpts {
		ck := &t.ckpts[i]
		if ck.valid && ck.stage <= stage && (best == nil || ck.stage > best.stage) {
			best = ck
		}
	}
	if best != nil && best.stage == 0 {
		return nil // restoring the zero state saves nothing
	}
	return best
}

// snapshot records the completed point on the tape: sizes, columns, noise
// key and a deep copy of the result, enabling dirty-stage deltas and pure
// replays for the next point. Traced points record nothing (lanes cannot be
// replayed).
func (sw *SweepEvaluator) snapshot(t *sweepTape, s Schedule, execs int, traced bool) {
	if traced || !sw.noiseKnown {
		return
	}
	if cs, ok := s.(CirculantSchedule); ok {
		if cap(t.lastSizes) < t.stages {
			t.lastSizes = make([]int32, t.stages)
		}
		t.lastSizes = t.lastSizes[:t.stages]
		for sg := 0; sg < t.stages; sg++ {
			_, size := cs.CirculantStage(sg)
			t.lastSizes[sg] = int32(size)
		}
	} else if t.built {
		t.lastESizes = appendEdgeSizes(t.lastESizes[:0], s)
	}
	for i, col := range [4][]float64{sw.lat, sw.gap, sw.ovh, sw.beta} {
		t.lastCols[i] = append(t.lastCols[i][:0], col...)
	}
	t.lastSeed, t.lastFree = sw.curSeed, sw.curFree
	t.lastExecs = execs
	e := sw.e
	res := e.result()
	res.Messages, res.Bytes = e.messages, e.bytes
	res.Collapse = e.lastCollapse
	t.lastRes = res
	t.lastValid = true
}

// appendEdgeSizes appends the schedule's per-edge payload sizes in tape
// (Phase-A scan) order.
func appendEdgeSizes(dst []int32, s Schedule) []int32 {
	p := s.NumProcs()
	for sg := 0; sg < s.NumStages(); sg++ {
		st := s.StageAt(sg)
		for r := 0; r < p; r++ {
			for k := range st.Out[r] {
				size := 0
				if st.OutBytes != nil {
					size = st.OutBytes[r][k]
				}
				dst = append(dst, int32(size))
			}
		}
	}
	return dst
}

// genericSizesEqual reports whether the live schedule's per-edge sizes match
// the tape's previous-point snapshot exactly.
func genericSizesEqual(t *sweepTape, s Schedule) bool {
	if int64(len(t.lastESizes)) != int64(len(t.factors)) {
		return false
	}
	p := s.NumProcs()
	var cur int
	for sg := 0; sg < t.stages; sg++ {
		st := s.StageAt(sg)
		for r := 0; r < p; r++ {
			for k := range st.Out[r] {
				size := 0
				if st.OutBytes != nil {
					size = st.OutBytes[r][k]
				}
				if cur >= len(t.lastESizes) || t.lastESizes[cur] != int32(size) {
					return false
				}
				cur++
			}
		}
	}
	return cur == len(t.lastESizes)
}

// copySweepResult deep-copies a cached result so callers may own it.
func copySweepResult(r *simnet.Result) *simnet.Result {
	c := *r
	c.Times = append([]float64(nil), r.Times...)
	return &c
}

// touch marks the tape most recently used.
func (sw *SweepEvaluator) touch(t *sweepTape) {
	sw.useTick++
	t.lastUse = sw.useTick
}

// lookupTape finds or creates the memo entry for the schedule's structure,
// or returns nil when taping does not apply (budget disabled, an
// incomparable non-circulant schedule, or a class space wider than the
// tape's masks). Generic entries verify the stored per-edge structure
// against the live schedule before reuse — exact comparison, never a hash.
func (sw *SweepEvaluator) lookupTape(s Schedule) *sweepTape {
	if sw.budget <= 0 {
		return nil
	}
	p, stages := s.NumProcs(), s.NumStages()
	if cs, ok := s.(CirculantSchedule); ok {
		key, offs := circStructure(cs, sw.sizesScratch[:0])
		sw.sizesScratch = offs[:0]
		if t, ok := sw.circ[key]; ok && t.procs == p && t.stages == stages && int32sEqual(t.offs, offs) {
			return t
		}
		t := &sweepTape{key: key, offs: append([]int32(nil), offs...), procs: p, stages: stages}
		if !sw.admitTape(t, int64(p)*int64(stages)) {
			return nil
		}
		if sw.circ == nil {
			sw.circ = make(map[uint64]*sweepTape)
		}
		sw.circ[key] = t
		return t
	}
	if !reflect.TypeOf(s).Comparable() {
		return nil
	}
	if t, ok := sw.gen[s]; ok {
		if sw.verifyGeneric(t, s) {
			return t
		}
		delete(sw.gen, s) // mutated in place; rebuild
	}
	edges := countEdges(s)
	t := &sweepTape{sched: s, procs: p, stages: stages}
	if !sw.admitTape(t, edges) {
		return nil
	}
	if sw.gen == nil {
		sw.gen = make(map[Schedule]*sweepTape)
	}
	sw.gen[s] = t
	return t
}

// admitTape sizes the candidate entry and makes room for it, evicting
// least-recently-used tapes; a tape that cannot fit alone is rejected
// (evaluation falls back to live term pricing).
func (sw *SweepEvaluator) admitTape(t *sweepTape, edges int64) bool {
	perEdge := int64(9) // factor + class
	if t.offs == nil {
		perEdge += 8 // srcs + dsts verification lanes
	}
	est := edges*perEdge + int64(t.stages)*9 + int64(t.procs)*8 +
		int64(sweepCkptSlots+1)*int64(t.procs)*int64(reflect.TypeOf(rankState{}).Size())
	if est > sw.budget {
		return false
	}
	for sw.memoBytes()+est > sw.budget {
		if !sw.evictOne(t) {
			return false
		}
	}
	t.bytes = est
	return true
}

// accounted refreshes the entry's size after building (the estimate admitted
// it; the built tape is authoritative).
func (t *sweepTape) accounted(sw *SweepEvaluator) {
	t.bytes = int64(len(t.factors))*8 + int64(len(t.classes)) +
		int64(len(t.srcs)+len(t.dsts))*4 + int64(len(t.stageOff))*8 + int64(len(t.mask)) +
		int64(len(t.offs))*4 + int64(sweepCkptSlots+1)*int64(t.procs)*int64(reflect.TypeOf(rankState{}).Size())
	for sw.memoBytes() > sw.budget {
		if !sw.evictOne(t) {
			return
		}
	}
}

// evictOne drops the least-recently-used tape, never the one being admitted
// or refreshed (keep).
func (sw *SweepEvaluator) evictOne(keep *sweepTape) bool {
	var victim *sweepTape
	for _, t := range sw.circ {
		if t != keep && (victim == nil || t.lastUse < victim.lastUse) {
			victim = t
		}
	}
	for _, t := range sw.gen {
		if t != keep && (victim == nil || t.lastUse < victim.lastUse) {
			victim = t
		}
	}
	if victim == nil {
		return false
	}
	if victim.offs != nil {
		delete(sw.circ, victim.key)
	} else {
		delete(sw.gen, victim.sched)
	}
	sw.stats.TapesEvicted++
	return true
}

// verifyGeneric checks the live schedule against the tape's stored per-edge
// structure (the schedule value is the map key, but a caller mutating a
// schedule in place would alias it — the walk catches that exactly).
func (sw *SweepEvaluator) verifyGeneric(t *sweepTape, s Schedule) bool {
	if !t.built {
		return true
	}
	if t.procs != s.NumProcs() || t.stages != s.NumStages() {
		return false
	}
	var cur int64
	for sg := 0; sg < t.stages; sg++ {
		if cur != t.stageOff[sg] {
			return false
		}
		st := s.StageAt(sg)
		for r := 0; r < t.procs; r++ {
			for _, dst := range st.Out[r] {
				if cur >= int64(len(t.dsts)) || t.srcs[cur] != int32(r) || t.dsts[cur] != int32(dst) {
					return false
				}
				cur++
			}
		}
	}
	return cur == int64(len(t.dsts)) && cur == t.stageOff[t.stages]
}

// countEdges walks the schedule once for the admission estimate.
func countEdges(s Schedule) int64 {
	var n int64
	for sg := 0; sg < s.NumStages(); sg++ {
		st := s.StageAt(sg)
		for _, outs := range st.Out {
			n += int64(len(outs))
		}
	}
	return n
}

// ckptTaker records evenly spaced rank-state checkpoints during execution 0
// of a taped circulant point, refreshing only slots past the resume stage.
type ckptTaker struct {
	t      *sweepTape
	from   int
	stride int
	next   int
}

func newCkptTaker(t *sweepTape, from int) *ckptTaker {
	if t.ckpts == nil {
		t.ckpts = make([]sweepCkpt, sweepCkptSlots+1)
	}
	stride := (t.stages + sweepCkptSlots - 1) / sweepCkptSlots
	if stride < 1 {
		stride = 1
	}
	ck := &ckptTaker{t: t, from: from, stride: stride}
	ck.next = ((from / stride) + 1) * stride
	return ck
}

// maybe snapshots the evaluator state before stage sg (state covers stages
// [0, sg)) when sg is a slot boundary past the resume point.
func (ck *ckptTaker) maybe(sg int, cursor int64, e *Evaluator) {
	if sg < ck.next || sg <= ck.from {
		return
	}
	ck.next = (sg/ck.stride + 1) * ck.stride
	slot := sg / ck.stride
	if sg == ck.t.stages {
		slot = sweepCkptSlots
	}
	if slot > sweepCkptSlots {
		return
	}
	c := &ck.t.ckpts[slot]
	c.valid = true
	c.stage = sg
	c.cursor = cursor
	c.messages, c.bytes = e.messages, e.bytes
	c.states = append(c.states[:0], e.states...)
}

// Swept execution modes.
const (
	sweptLive = iota
	sweptBuild
	sweptReplay
)

// execSwept evaluates stages [startStage, NumStages) of one execution on the
// term path. It mirrors execSchedule/send/recvComplete operation for
// operation — change them together (the sweep golden tests pin the
// agreement) — with the pair parameters priced as column[class]*factor:
// build mode derives each edge's term through PairTerm and records it,
// replay mode reads the tape at cur, live mode derives without recording.
// The receiver-side gap term rides the per-receiver queues (inGap), so the
// receive completion never re-derives the pair — it is the same ordered pair
// as the send, hence the same term.
func (sw *SweepEvaluator) execSwept(s Schedule, startStage int, chk *stageChecker, t *sweepTape, mode int, cur int64, ck *ckptTaker) (int64, error) {
	e := sw.e
	m := e.m
	ft := e.ft
	tm := sw.tm
	ack := e.ack
	computeEmpty := sw.opt.ComputeEmpty
	tagBase := sw.opt.TagBase
	lat, gap, beta, ovh := sw.lat, sw.gap, sw.beta, sw.ovh
	nic := sw.nic
	p := len(e.states)
	numStages := s.NumStages()
	for sg := startStage; sg < numStages; sg++ {
		if ck != nil {
			ck.maybe(sg, cur, e)
		}
		if chk != nil {
			if err := chk.tick(); err != nil {
				return cur, err
			}
		}
		st := s.StageAt(sg)
		stage := int32(sg)
		tag := tagBase + sg
		if mode == sweptBuild {
			t.stageOff = append(t.stageOff, cur)
		} else if mode == sweptReplay {
			cur = t.stageOff[sg]
		}
		var stageMask uint8

		// Phase A: stage marks, receive post times, send injections.
		for r := 0; r < p; r++ {
			rs := &e.states[r]
			rs.stageMark(stage)
			ins, outs := st.In[r], st.Out[r]
			if len(ins) == 0 && len(outs) == 0 {
				if computeEmpty {
					rs.compute(m, ft, r, 0)
				}
				continue
			}
			e.entry[r] = rs.now
			if len(outs) > 0 {
				sc := e.sendComplete[r][:0]
				for k, dst := range outs {
					size := 0
					if st.OutBytes != nil {
						size = st.OutBytes[r][k]
					}
					var f float64
					var c uint8
					if mode == sweptReplay {
						f, c = t.factors[cur], t.classes[cur]
					} else {
						f, c = tm.PairTerm(r, dst)
						if mode == sweptBuild {
							t.factors = append(t.factors, f)
							t.classes = append(t.classes, c)
							if t.offs == nil {
								t.srcs = append(t.srcs, int32(r))
								t.dsts = append(t.dsts, int32(dst))
							}
							if c < sweepTapeClasses {
								stageMask |= 1 << c
							} else {
								stageMask = 0xff
								t.overflow = true
							}
						}
					}
					cur++
					latV, gapV, betaV, ovhV := lat[c]*f, gap[c]*f, beta[c]*f, ovh[c]*f

					// Inlined Evaluator.send with the priced terms.
					t0 := rs.now
					latMul, betaMul := 1.0, 1.0
					if ft != nil && ft.HasLinks() {
						latMul, betaMul = ft.Link(r, dst, t0)
					}
					rs.setNow(ft, r, rs.now+ovhV*rs.noise(m, ft, r))
					sameNIC := nic[r] == nic[dst]
					transfer := float64(size) * betaV * betaMul
					txStart := rs.now
					if !(sameNIC && r != dst) {
						if rs.txFree > txStart {
							txStart = rs.txFree
						}
						rs.txFree = txStart + gapV + transfer
					}
					arrival := txStart + (latV*latMul+transfer)*rs.noise(m, ft, r)
					sendEv := int32(-1)
					var sendEnd float64
					if rs.lane != nil {
						sendEv = int32(rs.lane.Len())
						sendEnd = rs.now
						rs.lane.Append(trace.Event{Kind: trace.KindSend, Peer: int32(dst), Tag: int32(tag),
							Size: int32(size), SendSeq: -1, Step: rs.step, Stage: rs.stage,
							T0: t0, T1: rs.now, Arrival: arrival})
					}
					e.messages++
					e.bytes += int64(size)
					completeAt := rs.txFree
					if r == dst || sameNIC {
						completeAt = arrival
					}
					if ack && r != dst {
						completeAt = arrival + latV*latMul
					}

					sc = append(sc, completeAt)
					e.inArr[dst] = append(e.inArr[dst], arrival)
					e.inSize[dst] = append(e.inSize[dst], int32(size))
					e.inEv[dst] = append(e.inEv[dst], sendEv)
					e.inEnd[dst] = append(e.inEnd[dst], sendEnd)
					sw.inGap[dst] = append(sw.inGap[dst], gapV)
				}
				e.sendComplete[r] = sc
			}
		}
		if mode == sweptBuild {
			t.mask = append(t.mask, stageMask)
		}

		// Phase B: waits, receives first, then sends, in edge order.
		for r := 0; r < p; r++ {
			rs := &e.states[r]
			ins, outs := st.In[r], st.Out[r]
			for q, src := range ins {
				arrival := e.inArr[r][q]
				// Inlined recvComplete: the gap term was pushed by the
				// sender's scan of the same ordered pair.
				start := e.entry[r]
				gated := false
				if arrival > start {
					start = arrival
					gated = true
				}
				if nic[r] != nic[src] {
					if rs.rxFree > start {
						start = rs.rxFree
						gated = false
					}
					rs.rxFree = start + sw.inGap[r][q]
				}
				rs.waitRecvAdvance(ft, r, start, src, tag, e.inSize[r][q], e.inEv[r][q], gated, arrival, e.inEnd[r][q])
			}
			for k, dst := range outs {
				size := 0
				if st.OutBytes != nil {
					size = st.OutBytes[r][k]
				}
				rs.waitSendAdvance(ft, r, e.sendComplete[r][k], dst, tag, size)
			}
			e.inArr[r] = e.inArr[r][:0]
			e.inSize[r] = e.inSize[r][:0]
			e.inEv[r] = e.inEv[r][:0]
			e.inEnd[r] = e.inEnd[r][:0]
			sw.inGap[r] = sw.inGap[r][:0]
		}
	}
	if ck != nil {
		ck.maybe(numStages, cur, e)
	}
	return cur, nil
}

package sched_test

import (
	"context"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/fault"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// pairExchangeSchedule is a single-stage neighbor exchange materialized as
// StaticStages with no symmetry hint: rank 2i and rank 2i+1 swap size bytes.
// Fault-free it refines to a single class; a fault on one rank splits off
// exactly that rank and its partner.
func pairExchangeSchedule(p, size int) *sched.StaticStages {
	st := sched.Stage{Out: make([][]int, p), In: make([][]int, p), OutBytes: make([][]int, p)}
	for i := 0; i < p; i++ {
		partner := i ^ 1
		st.Out[i] = []int{partner}
		st.In[i] = []int{partner}
		st.OutBytes[i] = []int{size}
	}
	return &sched.StaticStages{Procs: p, Stages: []sched.Stage{st}}
}

// runCollapseFaultDiff runs the schedule under CollapseAuto and CollapseOff
// with the same fault plan and requires bit-identical results; it returns the
// CollapseAuto run's collapse diagnostics.
func runCollapseFaultDiff(t *testing.T, name string, m *platform.Machine, s sched.Schedule, plan *fault.Plan) simnet.Collapse {
	t.Helper()
	oAuto := simnet.DefaultOptions()
	oAuto.Faults = plan
	resAuto, err := sched.RunSchedule(context.Background(), m, s, 2, oAuto)
	if err != nil {
		t.Fatalf("%s auto: %v", name, err)
	}
	oOff := oAuto
	oOff.SymmetryCollapse = simnet.CollapseOff
	resOff, err := sched.RunSchedule(context.Background(), m, s, 2, oOff)
	if err != nil {
		t.Fatalf("%s off: %v", name, err)
	}
	for r := range resOff.Times {
		if resAuto.Times[r] != resOff.Times[r] {
			t.Fatalf("%s rank %d: collapsed %v, per-rank %v", name, r, resAuto.Times[r], resOff.Times[r])
		}
	}
	if resAuto.MakeSpan != resOff.MakeSpan || resAuto.Messages != resOff.Messages || resAuto.Bytes != resOff.Bytes {
		t.Errorf("%s: collapsed %v/%d/%d, per-rank %v/%d/%d", name,
			resAuto.MakeSpan, resAuto.Messages, resAuto.Bytes, resOff.MakeSpan, resOff.Messages, resOff.Bytes)
	}
	return resAuto.Collapse
}

// TestCollapseUnderFaults pins the collapse/fault interaction on the uniform
// flat machine: uniform plans keep the single-class circulant collapse,
// rank-targeted plans split the degraded ranks into their own classes (or
// force per-rank fallback with reason "fault"), and every variant matches
// per-rank evaluation bit for bit.
func TestCollapseUnderFaults(t *testing.T) {
	const p = 16
	m, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	diss, err := barrier.StreamDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	pairs := pairExchangeSchedule(p, 64)

	// Fault-free, the pair exchange refines to a single class.
	if c := runCollapseFaultDiff(t, "pairs-clean", m, pairs, nil); !c.Applied || c.Classes != 1 {
		t.Errorf("fault-free pair exchange: collapse = %+v, want applied with 1 class", c)
	}

	// A uniform plan (wildcard link degradation) preserves the circulant
	// single-class fast path.
	uniform := &fault.Plan{Links: []fault.LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2}}}
	if c := runCollapseFaultDiff(t, "uniform-links", m, diss, uniform); !c.Applied || c.Classes != 1 {
		t.Errorf("uniform plan on circulant: collapse = %+v, want applied with 1 class", c)
	}

	// A straggler on rank 3 splits off exactly the degraded rank and its
	// partner: {3}, {2}, {everyone else}.
	straggler := &fault.Plan{Slowdowns: []fault.Slowdown{{Rank: 3, Factor: 2}}}
	c := runCollapseFaultDiff(t, "straggler-pairs", m, pairs, straggler)
	if !c.Applied || c.Classes != 3 {
		t.Errorf("straggler on pair exchange: collapse = %+v, want applied with 3 classes", c)
	}

	// The same straggler on the dissemination circulant leaves no two ranks
	// equivalent: per-rank fallback with reason "fault".
	if c := runCollapseFaultDiff(t, "straggler-circulant", m, diss, straggler); c.Applied || c.Reason != simnet.CollapseReasonFault {
		t.Errorf("straggler on circulant: collapse = %+v, want fault fallback", c)
	}

	// A fail-stop and a rank-targeted link rule likewise split the degraded
	// pair off and still match per-rank evaluation.
	failstop := &fault.Plan{FailStops: []fault.FailStop{{Rank: 3, FailAt: 1e-5, Restart: 1e-4}}}
	if c := runCollapseFaultDiff(t, "failstop-pairs", m, pairs, failstop); !c.Applied || c.Classes != 3 {
		t.Errorf("fail-stop on pair exchange: collapse = %+v, want applied with 3 classes", c)
	}
	srcLink := &fault.Plan{Links: []fault.LinkRule{{Src: 3, Dst: -1, Class: -1, LatencyFactor: 3, BetaFactor: 3}}}
	if c := runCollapseFaultDiff(t, "srclink-pairs", m, pairs, srcLink); !c.Applied || c.Classes != 3 {
		t.Errorf("src-targeted link rule on pair exchange: collapse = %+v, want applied with 3 classes", c)
	}

	// Jittered slowdowns are rank-unique: two jittered stragglers with
	// identical rules must not share a class.
	jitter := &fault.Plan{Seed: 9, Slowdowns: []fault.Slowdown{
		{Rank: 3, Factor: 2, Jitter: 0.5},
		{Rank: 4, Factor: 2, Jitter: 0.5},
	}}
	cj := runCollapseFaultDiff(t, "jitter-pairs", m, pairs, jitter)
	if !cj.Applied || cj.Classes != 5 {
		t.Errorf("jittered stragglers: collapse = %+v, want {3},{4},{2},{5},{rest}", cj)
	}
}

// TestCollapseReasons pins every Result.Collapse.Reason string on the direct
// schedule path.
func TestCollapseReasons(t *testing.T) {
	const p = 16
	flat, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := platform.XeonClusterMachine(p) // HeteroSpread > 0
	if err != nil {
		t.Fatal(err)
	}
	noisyProf := *platform.FlatCluster(p) // homogeneous pairs, live noise only
	noisyProf.NoiseRel = 0.01
	noisy, err := noisyProf.Machine(p)
	if err != nil {
		t.Fatal(err)
	}
	diss, err := barrier.StreamDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func(m *platform.Machine, s sched.Schedule, mod func(*simnet.Options)) simnet.Collapse {
		t.Helper()
		o := simnet.DefaultOptions()
		if mod != nil {
			mod(&o)
		}
		res, err := sched.RunSchedule(context.Background(), m, s, 1, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Collapse
	}

	if c := run(flat, diss, nil); !c.Applied || c.Classes != 1 || c.Reason != "" {
		t.Errorf("applied: %+v", c)
	}
	if c := run(flat, diss, func(o *simnet.Options) { o.SymmetryCollapse = simnet.CollapseOff }); c.Applied || c.Reason != simnet.CollapseReasonOff {
		t.Errorf("off: %+v", c)
	}
	if c := run(hetero, diss, nil); c.Applied || c.Reason != simnet.CollapseReasonHetero {
		t.Errorf("hetero: %+v", c)
	}
	if c := run(noisy, diss, nil); c.Applied || c.Reason != simnet.CollapseReasonNoise {
		t.Errorf("noise: %+v", c)
	}
	if c := run(flat, diss, func(o *simnet.Options) { o.Recorder = trace.NewRecorder() }); c.Applied || c.Reason != simnet.CollapseReasonTrace {
		t.Errorf("trace: %+v", c)
	}
	// An asymmetric schedule: rank 0 sends to everyone, nobody replies.
	asym := &sched.StaticStages{Procs: p, Stages: []sched.Stage{func() sched.Stage {
		st := sched.Stage{Out: make([][]int, p), In: make([][]int, p)}
		for j := 1; j < p; j++ {
			st.Out[0] = append(st.Out[0], j)
			st.In[j] = []int{0}
		}
		return st
	}()}}
	if c := run(flat, asym, nil); c.Applied || c.Reason != simnet.CollapseReasonAsymmetric {
		t.Errorf("asymmetric: %+v", c)
	}
	if c := run(flat, diss, func(o *simnet.Options) {
		o.Faults = &fault.Plan{FailStops: []fault.FailStop{{Rank: 0, FailAt: 1e-5, Restart: 1e-4}}}
	}); c.Applied || c.Reason != simnet.CollapseReasonFault {
		t.Errorf("fault: %+v", c)
	}
}

// TestCollapseInfoThroughGate pins that the concurrent front-end surfaces the
// direct evaluator's collapse decision: a BSP run whose Sync is routed
// through the in-proc gate reports the gate's last collapse diagnostics in
// Result.Collapse.
func TestCollapseInfoThroughGate(t *testing.T) {
	const p = 16
	m, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	program := func(c *bsp.Ctx) error {
		c.Compute(1e-6)
		return c.Sync()
	}
	res, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{}, program)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collapse.Applied || res.Collapse.Classes != 1 {
		t.Errorf("gate collapse = %+v, want applied with 1 class", res.Collapse)
	}

	o := simnet.DefaultOptions()
	o.Faults = &fault.Plan{FailStops: []fault.FailStop{{Rank: 0, FailAt: 1e-5, Restart: 1e-4}}}
	res, err = bsp.RunContext(context.Background(), m, bsp.RunConfig{Options: &o}, program)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collapse.Applied || res.Collapse.Reason != simnet.CollapseReasonFault {
		t.Errorf("gate collapse under fail-stop = %+v, want fault fallback", res.Collapse)
	}
}

// Package sched is the goroutine-free discrete-event evaluator of the
// simulator: it computes the virtual times of schedule-expressible workloads
// — verified collective patterns, superstep count exchanges, and arbitrary
// straight-line per-rank op-streams (simnet.Program) — by evaluating the
// LogGP recurrence directly, with no goroutines, mailboxes or channel
// wake-ups. Virtual times, traffic counters and recorded trace events are
// bit-identical to the concurrent engine's: the evaluator replays exactly the
// operations the concurrent walkers perform, in each rank's program order,
// consuming the per-rank Noise(rank, seq) stream in exactly the order the
// concurrent engine consumes it.
//
// Two evaluation modes exist:
//
//   - Whole-run evaluation (RunSchedule, RunProgram): the entire workload is
//     evaluated on the calling goroutine. This is what cmd/simbench's *_de
//     entries measure and what unlocks P=4096, where the concurrent engine's
//     per-message costs are prohibitive.
//
//   - Inline evaluation (Evaluator.ImportProcs / ExecSchedule / ExportProcs):
//     inside a concurrent run, all ranks rendezvous at the run's simnet.Gate,
//     and the last arriver evaluates the collective sequentially against the
//     live per-rank clocks and port states, then resumes everyone. This is
//     how barrier.Execute, the BSP count exchange and the mpi schedule flood
//     route through the evaluator while arbitrary closures around them still
//     run on the concurrent engine.
//
// The arithmetic in this file mirrors simnet.sendCore, simnet.resolveRecv,
// simnet.Wait and simnet.Compute operation for operation; change them
// together (the cross-engine diff tests pin the agreement).
package sched

import (
	"sync"

	"hbsp/internal/fault"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// Stage is the sparse adjacency of one schedule stage: Out[i] lists the ranks
// i signals, In[j] the ranks signalling j, and OutBytes[i][k] the payload
// size of the edge i→Out[i][k] (nil OutBytes means pure signals).
//
// Ordering contract: In[j] must enumerate sources in the order the edges are
// produced by scanning Out row-major (i ascending, then position in Out[i]).
// Adjacency built by scanning a stage matrix row by row — as
// barrier.Pattern.Adjacency does — satisfies this by construction.
type Stage struct {
	Out      [][]int
	In       [][]int
	OutBytes [][]int
}

// Schedule is the stage-graph view the evaluator executes. Implementations
// may build StageAt's result on the fly and reuse its storage across calls
// (the evaluator walks stages strictly in order, one at a time), which is
// what keeps P=4096 sweeps inside memory budgets.
type Schedule interface {
	// NumProcs returns the number of participating ranks.
	NumProcs() int
	// NumStages returns the number of stages.
	NumStages() int
	// StageAt returns stage s. The evaluator does not retain the value
	// across calls.
	StageAt(s int) Stage
}

// StaticStages wraps a materialized stage slice as a Schedule.
type StaticStages struct {
	Procs  int
	Stages []Stage
	// Sym optionally declares the stage graph's rank symmetry (the
	// symmetry-collapse eligibility hint; see Symmetry). Only set it for
	// stage graphs that actually have the declared shape.
	Sym Symmetry
}

// NumProcs returns the number of participating ranks.
func (s *StaticStages) NumProcs() int { return s.Procs }

// NumStages returns the number of stages.
func (s *StaticStages) NumStages() int { return len(s.Stages) }

// StageAt returns stage i.
func (s *StaticStages) StageAt(i int) Stage { return s.Stages[i] }

// Symmetry returns the declared rank symmetry.
func (s *StaticStages) Symmetry() Symmetry { return s.Sym }

// rankState is one rank's LogGP evolution state: its clock, the free times of
// its injection and extraction ports, its position in the machine's noise
// stream, and — on traced runs — its trace lane and superstep label.
type rankState struct {
	now      float64
	txFree   float64
	rxFree   float64
	noiseSeq uint64
	lane     *trace.Lane
	step     int32
	stage    int32
}

// Evaluator evaluates schedules against a set of per-rank LogGP states. Its
// instruction arrays and per-stage scratch are reused across executions, so
// steady-state evaluation allocates nothing. An Evaluator is not safe for
// concurrent use; inline callers park one in their run's Gate.Scratch.
type Evaluator struct {
	m   simnet.Machine
	ack bool

	// collapseOff disables symmetry-collapsed evaluation for this evaluator
	// (the runtime wires it from Options.SymmetryCollapse).
	collapseOff bool

	// ft is the compiled fault plan of the run, nil when fault-free — the
	// mirror of Proc.ft, wired from Options.Faults (whole-run evaluation) or
	// Proc.Faults (gate rendezvous).
	ft *fault.Runtime

	// lastCollapse is the diagnostic of the most recent collapse decision
	// (ExecScheduleAuto); runs surface it as Result.Collapse.
	lastCollapse simnet.Collapse

	states []rankState

	// Per-stage scratch, reset between stages: entry clocks (the post time
	// of a rank's receives), per-receiver arrival/size/send-event queues
	// (filled in sender order, consumed positionally against Stage.In), and
	// per-sender send-completion times.
	entry        []float64
	inArr        [][]float64
	inSize       [][]int32
	inEv         [][]int32
	inEnd        [][]float64
	sendComplete [][]float64

	// Collapsed-evaluation scratch: per class, the arrivals of the
	// representative's sends by out-edge position; and the cached
	// rank-equivalence partitions of schedules evaluated inline (a nil
	// partition = ineligible, cached with its reason so the refinement never
	// reruns).
	classArr  [][]float64
	partCache map[Schedule]partEntry

	messages int64
	bytes    int64
}

// evalPool recycles evaluators (and with them every per-rank state and
// scratch slice) across runs and sweep points: steady-state RunSchedule and
// gate evaluations reallocate nothing but the result.
var evalPool sync.Pool

// NewEvaluator returns an evaluator for the given machine and ack mode with
// all rank states zeroed. Evaluators come from a shared pool; Release
// returns one when the caller is done.
func NewEvaluator(m simnet.Machine, ack bool) *Evaluator {
	p := m.Procs()
	e, _ := evalPool.Get().(*Evaluator)
	if e == nil {
		e = &Evaluator{}
	}
	e.m, e.ack = m, ack
	e.collapseOff = false
	e.ft = nil
	e.lastCollapse = simnet.Collapse{}
	e.messages, e.bytes = 0, 0
	e.partCache = nil
	if cap(e.states) < p {
		e.states = make([]rankState, p)
		e.entry = make([]float64, p)
		e.inArr = make([][]float64, p)
		e.inSize = make([][]int32, p)
		e.inEv = make([][]int32, p)
		e.inEnd = make([][]float64, p)
		e.sendComplete = make([][]float64, p)
	} else {
		e.states = e.states[:p]
		for i := range e.states {
			e.states[i] = rankState{}
		}
		e.entry = e.entry[:p]
		e.inArr = e.inArr[:p]
		e.inSize = e.inSize[:p]
		e.inEv = e.inEv[:p]
		e.inEnd = e.inEnd[:p]
		e.sendComplete = e.sendComplete[:p]
	}
	return e
}

// Release returns the evaluator to the shared pool. The caller must not use
// it afterwards; lane attachments and cached partitions are dropped.
func (e *Evaluator) Release() {
	for i := range e.states {
		e.states[i] = rankState{}
	}
	e.m = nil
	e.ft = nil
	e.partCache = nil
	evalPool.Put(e)
}

// CollapseInfo returns the diagnostic of the evaluator's most recent
// symmetry-collapse decision; simnet.RunContext reads it off the gate-parked
// evaluator into Result.Collapse.
func (e *Evaluator) CollapseInfo() simnet.Collapse { return e.lastCollapse }

// Procs returns the evaluator's rank count.
func (e *Evaluator) Procs() int { return len(e.states) }

// Traffic returns and resets the delivered message and byte counts
// accumulated since the last call.
func (e *Evaluator) Traffic() (messages, bytes int64) {
	messages, bytes = e.messages, e.bytes
	e.messages, e.bytes = 0, 0
	return messages, bytes
}

// Times copies the per-rank clocks into dst (allocating when nil) and
// returns it.
func (e *Evaluator) Times(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(e.states))
	}
	for i := range e.states {
		dst[i] = e.states[i].now
	}
	return dst
}

// AttachLane points rank's events at a trace lane (nil detaches) and labels
// them with the given superstep.
func (e *Evaluator) AttachLane(rank int, lane *trace.Lane, step int32) {
	e.states[rank].lane = lane
	e.states[rank].step = step
}

// ImportProcs loads the live LogGP state (and trace lane position) of every
// rank of a concurrent run. Only a gate leader may call it (see simnet.Gate
// for the synchronization contract).
func (e *Evaluator) ImportProcs(procs []*simnet.Proc) {
	for i, p := range procs {
		st := &e.states[i]
		st.now, st.txFree, st.rxFree, st.noiseSeq = p.EvalState()
		st.lane, st.step = p.EvalTrace()
	}
}

// ExportProcs stores the advanced LogGP states back into the live ranks and
// credits the accumulated traffic to the run's counters.
func (e *Evaluator) ExportProcs(procs []*simnet.Proc) {
	for i, p := range procs {
		st := &e.states[i]
		p.SetEvalState(st.now, st.txFree, st.rxFree, st.noiseSeq)
	}
	msgs, bytes := e.Traffic()
	if msgs != 0 || bytes != 0 {
		procs[0].AddTraffic(msgs, bytes)
	}
}

// EvaluatorAt returns the evaluator parked in the gate's scratch slot,
// creating it on first use. Only the gate leader may call it.
func EvaluatorAt(g *simnet.Gate, p *simnet.Proc) *Evaluator {
	if ev, ok := g.Scratch.(*Evaluator); ok {
		return ev
	}
	ev := NewEvaluator(p.MachineOf(), p.AckSends())
	ev.collapseOff = p.CollapseMode() == simnet.CollapseOff
	ev.ft = p.Faults()
	g.Scratch = ev
	return ev
}

// noise draws the next jitter factor for the rank, mirroring Proc.noise
// (including the fault-plan slowdown multiplier).
func (st *rankState) noise(m simnet.Machine, ft *fault.Runtime, rank int) float64 {
	f := m.Noise(rank, st.noiseSeq)
	if ft != nil {
		f *= ft.Slow(rank, st.noiseSeq, st.now)
	}
	st.noiseSeq++
	return f
}

// setNow mirrors Proc.setNow: move the clock to t, paying the fail-stop
// crossing penalty (and recording the KindFault interval) when the advance
// crosses the rank's fail time.
func (st *rankState) setNow(ft *fault.Runtime, rank int, t float64) {
	if ft != nil {
		if adj, pen := ft.Cross(rank, st.now, t); pen > 0 {
			if st.lane != nil {
				st.lane.Append(trace.Event{Kind: trace.KindFault, Peer: -1, SendSeq: -1,
					Step: st.step, Stage: st.stage, T0: t, T1: adj})
			}
			st.now = adj
			return
		}
	}
	st.now = t
}

// compute mirrors Proc.Compute: advance the clock by noisy work, recording a
// compute interval on traced runs.
func (st *rankState) compute(m simnet.Machine, ft *fault.Runtime, rank int, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	d := seconds * st.noise(m, ft, rank)
	if st.lane != nil && d > 0 {
		st.lane.Append(trace.Event{Kind: trace.KindCompute, Peer: -1, SendSeq: -1,
			Step: st.step, Stage: st.stage, T0: st.now, T1: st.now + d})
	}
	st.setNow(ft, rank, st.now+d)
}

// computeExact mirrors Proc.ComputeExact.
func (st *rankState) computeExact(ft *fault.Runtime, rank int, seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	if st.lane != nil && seconds > 0 {
		st.lane.Append(trace.Event{Kind: trace.KindCompute, Peer: -1, SendSeq: -1,
			Step: st.step, Stage: st.stage, T0: st.now, T1: st.now + seconds})
	}
	st.setNow(ft, rank, st.now+seconds)
}

// send mirrors Proc.sendCore: pay the sender-side costs of one eager send and
// return the message's arrival time at dst and the virtual time the send
// request completes. On traced runs it appends the KindSend event and returns
// its lane index in sendEv (-1 untraced) plus the injection end time sendEnd
// (the event's T1), which rides with the message to the receiver's wait event
// exactly as the concurrent engine's message.sendEnd does.
func (e *Evaluator) send(st *rankState, rank, dst, tag, size int) (arrival, completeAt float64, sendEv int32, sendEnd float64) {
	m := e.m
	t0 := st.now
	latMul, betaMul := 1.0, 1.0
	if e.ft != nil && e.ft.HasLinks() {
		latMul, betaMul = e.ft.Link(rank, dst, t0)
	}
	st.setNow(e.ft, rank, st.now+m.Overhead(rank, dst)*st.noise(m, e.ft, rank))

	sameNIC := m.NIC(rank) == m.NIC(dst)
	transfer := float64(size) * m.Beta(rank, dst) * betaMul
	var txStart float64
	if sameNIC && rank != dst {
		txStart = st.now
	} else {
		txStart = st.now
		if st.txFree > txStart {
			txStart = st.txFree
		}
		st.txFree = txStart + m.Gap(rank, dst) + transfer
	}
	arrival = txStart + (m.Latency(rank, dst)*latMul+transfer)*st.noise(m, e.ft, rank)

	sendEv = -1
	if st.lane != nil {
		sendEv = int32(st.lane.Len())
		sendEnd = st.now
		st.lane.Append(trace.Event{Kind: trace.KindSend, Peer: int32(dst), Tag: int32(tag),
			Size: int32(size), SendSeq: -1, Step: st.step, Stage: st.stage,
			T0: t0, T1: st.now, Arrival: arrival})
	}
	e.messages++
	e.bytes += int64(size)

	completeAt = st.txFree
	if rank == dst || sameNIC {
		completeAt = arrival
	}
	if e.ack && rank != dst {
		completeAt = arrival + m.Latency(dst, rank)*latMul
	}
	return arrival, completeAt, sendEv, sendEnd
}

// recvComplete mirrors Request.resolveRecv: given the receive's post time and
// the matched message's arrival, compute the completion time, serializing the
// extraction port.
func (e *Evaluator) recvComplete(st *rankState, rank, src int, postTime, arrival float64) (completeAt float64, gated bool) {
	m := e.m
	start := postTime
	if arrival > start {
		start = arrival
		gated = true
	}
	if m.NIC(rank) != m.NIC(src) {
		if st.rxFree > start {
			start = st.rxFree
			gated = false
		}
		st.rxFree = start + m.Gap(src, rank)
	}
	return start, gated
}

// waitRecvAdvance mirrors Proc.Wait for a resolved receive: advance the clock
// to the completion time, recording the wait interval on traced runs.
func (st *rankState) waitRecvAdvance(ft *fault.Runtime, rank int, completeAt float64, src, tag int, size, sendEv int32, gated bool, arrival, sendEnd float64) {
	if completeAt > st.now {
		if st.lane != nil {
			st.lane.Append(trace.Event{Kind: trace.KindRecvWait, Gated: gated,
				Peer: int32(src), Tag: int32(tag), Size: size, SendSeq: sendEv,
				Step: st.step, Stage: st.stage, T0: st.now, T1: completeAt,
				Arrival: arrival, SendEnd: sendEnd})
		}
		st.setNow(ft, rank, completeAt)
	}
}

// waitSendAdvance mirrors Proc.Wait for a send request.
func (st *rankState) waitSendAdvance(ft *fault.Runtime, rank int, completeAt float64, dst, tag, size int) {
	if completeAt > st.now {
		if st.lane != nil {
			st.lane.Append(trace.Event{Kind: trace.KindSendWait,
				Peer: int32(dst), Tag: int32(tag), Size: int32(size), SendSeq: -1,
				Step: st.step, Stage: st.stage, T0: st.now, T1: completeAt})
		}
		st.setNow(ft, rank, completeAt)
	}
}

// stageMark mirrors Proc.TraceStage: record the mark (for a non-negative
// stage) and label subsequent events with it.
func (st *rankState) stageMark(stage int32) {
	if st.lane == nil {
		return
	}
	if stage >= 0 {
		st.lane.Append(trace.Event{Kind: trace.KindStage, Peer: -1, SendSeq: -1,
			Step: st.step, Stage: stage, T0: st.now, T1: st.now})
	}
	st.stage = stage
}

// ExecSchedule evaluates one execution of the schedule: per stage, every rank
// posts its receives, injects its sends and then waits — receives first, then
// sends, in edge order — exactly as the concurrent stage walkers
// (barrier.Execute, the mpi flood, both count exchanges) do. Stage s's
// messages carry tag tagBase+s in recorded events. computeEmpty selects
// barrier.Execute's convention of paying an empty Startall/Waitall
// (Compute(0), one noise draw) on stages where a rank has no edges; the flood
// and count-exchange walkers skip such stages outright.
//
// The two-phase sweep per stage is the conservative-PDES evaluation order:
// within a stage every arrival depends only on pre-stage sender state, and
// every completion only on the receiver's own state plus arrivals, so all
// sends of a stage can be evaluated before all waits without changing any
// virtual time the concurrent engine would produce.
func (e *Evaluator) ExecSchedule(s Schedule, tagBase int, computeEmpty bool) {
	e.execSchedule(s, tagBase, computeEmpty, nil)
}

// execSchedule is ExecSchedule with an optional per-stage cancellation
// checker (see stageChecker).
func (e *Evaluator) execSchedule(s Schedule, tagBase int, computeEmpty bool, chk *stageChecker) error {
	p := len(e.states)
	for sg := 0; sg < s.NumStages(); sg++ {
		if chk != nil {
			if err := chk.tick(); err != nil {
				return err
			}
		}
		st := s.StageAt(sg)
		stage := int32(sg)
		tag := tagBase + sg

		// Phase A: stage marks, receive post times, send injections.
		for r := 0; r < p; r++ {
			rs := &e.states[r]
			rs.stageMark(stage)
			ins, outs := st.In[r], st.Out[r]
			if len(ins) == 0 && len(outs) == 0 {
				if computeEmpty {
					rs.compute(e.m, e.ft, r, 0)
				}
				continue
			}
			e.entry[r] = rs.now
			if len(outs) > 0 {
				sc := e.sendComplete[r][:0]
				for k, dst := range outs {
					size := 0
					if st.OutBytes != nil {
						size = st.OutBytes[r][k]
					}
					arrival, completeAt, sendEv, sendEnd := e.send(rs, r, dst, tag, size)
					sc = append(sc, completeAt)
					e.inArr[dst] = append(e.inArr[dst], arrival)
					e.inSize[dst] = append(e.inSize[dst], int32(size))
					e.inEv[dst] = append(e.inEv[dst], sendEv)
					e.inEnd[dst] = append(e.inEnd[dst], sendEnd)
				}
				e.sendComplete[r] = sc
			}
		}

		// Phase B: waits, receives first, then sends, in edge order.
		for r := 0; r < p; r++ {
			rs := &e.states[r]
			ins, outs := st.In[r], st.Out[r]
			for q, src := range ins {
				arrival := e.inArr[r][q]
				completeAt, gated := e.recvComplete(rs, r, src, e.entry[r], arrival)
				rs.waitRecvAdvance(e.ft, r, completeAt, src, tag, e.inSize[r][q], e.inEv[r][q], gated, arrival, e.inEnd[r][q])
			}
			for k, dst := range outs {
				size := 0
				if st.OutBytes != nil {
					size = st.OutBytes[r][k]
				}
				rs.waitSendAdvance(e.ft, r, e.sendComplete[r][k], dst, tag, size)
			}
			e.inArr[r] = e.inArr[r][:0]
			e.inSize[r] = e.inSize[r][:0]
			e.inEv[r] = e.inEv[r][:0]
			e.inEnd[r] = e.inEnd[r][:0]
		}
	}
	return nil
}

// superstepMark mirrors Proc.TraceSuperstep: record the boundary of the
// completed superstep and label subsequent events with the next one.
func (st *rankState) superstepMark(step int32) {
	if st.lane == nil {
		return
	}
	st.lane.Append(trace.Event{Kind: trace.KindSuperstep, Peer: -1, SendSeq: -1,
		Step: step, Stage: st.stage, T0: st.now, T1: st.now})
	st.step = step + 1
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"hbsp/internal/fault"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// compileFaults compiles the run's fault plan against the machine, resolving
// distance classes through the machine's PairClass when it has one. A nil or
// empty plan compiles to a nil runtime (the fault-free hot path).
func compileFaults(p *fault.Plan, m simnet.Machine) (*fault.Runtime, error) {
	var pc func(i, j int) uint8
	if sm, ok := m.(interface{ PairClass(i, j int) uint8 }); ok {
		pc = sm.PairClass
	}
	return fault.Compile(p, m.Procs(), pc)
}

// beginRecording mirrors simnet.RunContext's recorder attachment: label the
// run with the machine's identity, exact seed and fault scenario, and hand
// out lanes.
func beginRecording(rec *trace.Recorder, m simnet.Machine, ack bool, e *Evaluator) {
	if !rec.Enabled() {
		return
	}
	meta := trace.Meta{Procs: m.Procs(), AckSends: ack}
	if rs, ok := m.(interface{ RunSeed() int64 }); ok {
		meta.Seed, meta.SeedKnown = rs.RunSeed(), true
	}
	if st, ok := m.(fmt.Stringer); ok {
		meta.Machine = st.String()
	}
	meta.Faults = e.ft.Describe()
	rec.BeginRun(meta)
	for r := 0; r < m.Procs(); r++ {
		e.AttachLane(r, rec.LaneOf(r), 0)
	}
}

// endRecording mirrors simnet.RunContext's finish: seal the recording with
// the outcome. Direct evaluations always tear down cleanly.
func endRecording(rec *trace.Recorder, res *simnet.Result, messages, bytes int64, err error) {
	if !rec.Enabled() {
		return
	}
	var times []float64
	var makespan float64
	if res != nil {
		times, makespan = res.Times, res.MakeSpan
	}
	rec.EndRun(times, makespan, messages, bytes, err, true)
}

// result assembles a simnet.Result from the evaluator's state.
func (e *Evaluator) result() *simnet.Result {
	res := &simnet.Result{Times: e.Times(nil)}
	for _, t := range res.Times {
		if t > res.MakeSpan {
			res.MakeSpan = t
		}
	}
	return res
}

// RunSchedule evaluates execs consecutive executions of the schedule on the
// calling goroutine — the goroutine-free counterpart of running
// barrier.Execute execs times under mpi.Run — and returns the per-rank
// virtual finishing times. Virtual times, traffic counters and recorded
// events are bit-identical to the concurrent engine's (o.Engine is ignored:
// this entry point IS the direct engine; use simnet/mpi runs for the
// concurrent one).
//
// Cancellation mirrors the concurrent engine: a cancelled context returns an
// error wrapping simnet.ErrAborted, exceeding o.Deadline returns
// simnet.ErrDeadline. Both are checked between executions and — because one
// P=1M execution is no longer negligible wall time — every few stages inside
// an execution (the stride shrinks as P grows, so the check stays off the
// hot path at small P and responsive at large P).
//
// When the machine and schedule admit it (see CollapseClasses) and no
// recorder is attached, executions are symmetry-collapsed: one
// representative rank per equivalence class is evaluated and the class
// states assembled at the end, bit-identical to the per-rank sweep. Set
// o.SymmetryCollapse = simnet.CollapseOff to force per-rank evaluation.
func RunSchedule(ctx context.Context, m simnet.Machine, s Schedule, execs int, o simnet.Options) (*simnet.Result, error) {
	if m == nil || m.Procs() < 1 {
		return nil, errors.New("sched: machine with at least one rank required")
	}
	if s == nil {
		return nil, errors.New("sched: nil schedule")
	}
	if s.NumProcs() != m.Procs() {
		return nil, fmt.Errorf("sched: schedule for %d ranks on a %d-rank machine", s.NumProcs(), m.Procs())
	}
	if execs < 1 {
		return nil, fmt.Errorf("sched: %d executions requested", execs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline <= 0 {
		o.Deadline = simnet.DefaultOptions().Deadline
	}
	e := NewEvaluator(m, o.AckSends)
	defer e.Release()
	e.collapseOff = o.SymmetryCollapse == simnet.CollapseOff
	ft, err := compileFaults(o.Faults, m)
	if err != nil {
		return nil, err
	}
	e.ft = ft
	beginRecording(o.Recorder, m, o.AckSends, e)

	// Partition once per run: fresh states are class-aligned (all zero) and
	// collapsed executions preserve alignment, so eligibility never changes
	// mid-run. Recording forces the per-rank path (per-rank trace lanes).
	var part *Partition
	var collapse simnet.Collapse
	switch {
	case e.collapseOff:
		collapse = simnet.Collapse{Reason: simnet.CollapseReasonOff}
	case o.Recorder.Enabled():
		collapse = simnet.Collapse{Reason: simnet.CollapseReasonTrace}
	default:
		part, collapse = CollapseClassesWith(m, s, e.ft)
	}
	perStage := m.Procs()
	if part != nil {
		perStage = part.NumClasses()
	}
	chk := newStageChecker(ctx, o.Deadline, perStage)
	for x := 0; x < execs; x++ {
		err := chk.check()
		if err == nil {
			if part != nil {
				err = e.execCollapsed(s, part, ScheduleTagBase, true, chk)
			} else {
				err = e.execSchedule(s, ScheduleTagBase, true, chk)
			}
		}
		if err != nil {
			endRecording(o.Recorder, nil, e.messages, e.bytes, err)
			return nil, err
		}
	}
	if part != nil {
		e.ReplicateClasses(part)
	}
	res := e.result()
	res.Messages, res.Bytes = e.messages, e.bytes
	res.Collapse = collapse
	endRecording(o.Recorder, res, res.Messages, res.Bytes, nil)
	return res, nil
}

// stageCheckBudget is the amount of per-rank (or per-class) stage work a
// stageChecker lets pass between context/deadline checks: the stride is
// stageCheckBudget/width stages, at least 1 — so a P=1M execution checks
// every stage while a P=16 sweep checks every few thousand.
const stageCheckBudget = 1 << 17

// stageChecker polls cancellation and the wall-clock deadline every stride
// stages, amortizing the check cost against the evaluation work it guards.
type stageChecker struct {
	ctx      context.Context
	start    time.Time
	deadline time.Duration
	stride   int
	left     int
}

// newStageChecker sizes a checker for stages of the given width (ranks or
// classes evaluated per stage).
func newStageChecker(ctx context.Context, deadline time.Duration, width int) *stageChecker {
	if width < 1 {
		width = 1
	}
	stride := stageCheckBudget / width
	if stride < 1 {
		stride = 1
	}
	return &stageChecker{ctx: ctx, start: time.Now(), deadline: deadline, stride: stride, left: stride}
}

// tick counts one stage and polls every stride stages.
func (c *stageChecker) tick() error {
	if c.left--; c.left > 0 {
		return nil
	}
	c.left = c.stride
	return c.check()
}

// check polls immediately.
func (c *stageChecker) check() error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", simnet.ErrAborted, context.Cause(c.ctx))
	}
	if time.Since(c.start) > c.deadline {
		return simnet.ErrDeadline
	}
	return nil
}

// ScheduleTagBase is the tag space RunSchedule labels stage s's messages
// with (tag ScheduleTagBase+s), matching the constant stage tags of
// barrier.Execute so recorded traces agree between engines.
const ScheduleTagBase = 1 << 20

// ReachSet holds, per rank, the bitset of origins whose contribution a
// knowledge-flooding walk over a schedule delivers to that rank — the same
// recursion the schedule verifier evaluates, exposed so the direct flood can
// assemble each rank's known-contributions map without moving any payloads.
type ReachSet struct {
	p, words int
	bits     []uint64
}

// ReachOf runs the knowledge recursion over the schedule.
func ReachOf(s Schedule) *ReachSet {
	p := s.NumProcs()
	words := (p + 63) / 64
	r := &ReachSet{p: p, words: words, bits: make([]uint64, p*words)}
	for j := 0; j < p; j++ {
		r.bits[j*words+j/64] |= 1 << (uint(j) % 64)
	}
	prev := make([]uint64, len(r.bits))
	for sg := 0; sg < s.NumStages(); sg++ {
		st := s.StageAt(sg)
		copy(prev, r.bits)
		for i, dests := range st.Out {
			if len(dests) == 0 {
				continue
			}
			src := prev[i*words : (i+1)*words]
			for _, j := range dests {
				dst := r.bits[j*words : (j+1)*words]
				for w := range dst {
					dst[w] |= src[w]
				}
			}
		}
	}
	return r
}

// Count returns the number of origins reaching rank.
func (r *ReachSet) Count(rank int) int {
	n := 0
	for _, w := range r.bits[rank*r.words : (rank+1)*r.words] {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every origin reaching rank, in ascending order.
func (r *ReachSet) ForEach(rank int, fn func(origin int)) {
	row := r.bits[rank*r.words : (rank+1)*r.words]
	for w, word := range row {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"time"

	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// beginRecording mirrors simnet.RunContext's recorder attachment: label the
// run with the machine's identity and exact seed, and hand out lanes.
func beginRecording(rec *trace.Recorder, m simnet.Machine, ack bool, e *Evaluator) {
	if !rec.Enabled() {
		return
	}
	meta := trace.Meta{Procs: m.Procs(), AckSends: ack}
	if rs, ok := m.(interface{ RunSeed() int64 }); ok {
		meta.Seed, meta.SeedKnown = rs.RunSeed(), true
	}
	if st, ok := m.(fmt.Stringer); ok {
		meta.Machine = st.String()
	}
	rec.BeginRun(meta)
	for r := 0; r < m.Procs(); r++ {
		e.AttachLane(r, rec.LaneOf(r), 0)
	}
}

// endRecording mirrors simnet.RunContext's finish: seal the recording with
// the outcome. Direct evaluations always tear down cleanly.
func endRecording(rec *trace.Recorder, res *simnet.Result, messages, bytes int64, err error) {
	if !rec.Enabled() {
		return
	}
	var times []float64
	var makespan float64
	if res != nil {
		times, makespan = res.Times, res.MakeSpan
	}
	rec.EndRun(times, makespan, messages, bytes, err, true)
}

// result assembles a simnet.Result from the evaluator's state.
func (e *Evaluator) result() *simnet.Result {
	res := &simnet.Result{Times: e.Times(nil)}
	for _, t := range res.Times {
		if t > res.MakeSpan {
			res.MakeSpan = t
		}
	}
	return res
}

// RunSchedule evaluates execs consecutive executions of the schedule on the
// calling goroutine — the goroutine-free counterpart of running
// barrier.Execute execs times under mpi.Run — and returns the per-rank
// virtual finishing times. Virtual times, traffic counters and recorded
// events are bit-identical to the concurrent engine's (o.Engine is ignored:
// this entry point IS the direct engine; use simnet/mpi runs for the
// concurrent one).
//
// Cancellation mirrors the concurrent engine: a cancelled context returns an
// error wrapping simnet.ErrAborted, exceeding o.Deadline returns
// simnet.ErrDeadline. Both are checked between executions — one execution
// always evaluates to completion, so a deadline can overrun by at most one
// execution's wall time (the concurrent engine's asynchronous watchdog has
// finer grain but the same default two-minute budget).
func RunSchedule(ctx context.Context, m simnet.Machine, s Schedule, execs int, o simnet.Options) (*simnet.Result, error) {
	if m == nil || m.Procs() < 1 {
		return nil, errors.New("sched: machine with at least one rank required")
	}
	if s == nil {
		return nil, errors.New("sched: nil schedule")
	}
	if s.NumProcs() != m.Procs() {
		return nil, fmt.Errorf("sched: schedule for %d ranks on a %d-rank machine", s.NumProcs(), m.Procs())
	}
	if execs < 1 {
		return nil, fmt.Errorf("sched: %d executions requested", execs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline <= 0 {
		o.Deadline = simnet.DefaultOptions().Deadline
	}
	e := NewEvaluator(m, o.AckSends)
	beginRecording(o.Recorder, m, o.AckSends, e)
	start := time.Now()
	for x := 0; x < execs; x++ {
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("%w: %w", simnet.ErrAborted, context.Cause(ctx))
			endRecording(o.Recorder, nil, e.messages, e.bytes, err)
			return nil, err
		}
		if time.Since(start) > o.Deadline {
			endRecording(o.Recorder, nil, e.messages, e.bytes, simnet.ErrDeadline)
			return nil, simnet.ErrDeadline
		}
		e.ExecSchedule(s, ScheduleTagBase, true)
	}
	res := e.result()
	res.Messages, res.Bytes = e.messages, e.bytes
	endRecording(o.Recorder, res, res.Messages, res.Bytes, nil)
	return res, nil
}

// ScheduleTagBase is the tag space RunSchedule labels stage s's messages
// with (tag ScheduleTagBase+s), matching the constant stage tags of
// barrier.Execute so recorded traces agree between engines.
const ScheduleTagBase = 1 << 20

// ReachSet holds, per rank, the bitset of origins whose contribution a
// knowledge-flooding walk over a schedule delivers to that rank — the same
// recursion the schedule verifier evaluates, exposed so the direct flood can
// assemble each rank's known-contributions map without moving any payloads.
type ReachSet struct {
	p, words int
	bits     []uint64
}

// ReachOf runs the knowledge recursion over the schedule.
func ReachOf(s Schedule) *ReachSet {
	p := s.NumProcs()
	words := (p + 63) / 64
	r := &ReachSet{p: p, words: words, bits: make([]uint64, p*words)}
	for j := 0; j < p; j++ {
		r.bits[j*words+j/64] |= 1 << (uint(j) % 64)
	}
	prev := make([]uint64, len(r.bits))
	for sg := 0; sg < s.NumStages(); sg++ {
		st := s.StageAt(sg)
		copy(prev, r.bits)
		for i, dests := range st.Out {
			if len(dests) == 0 {
				continue
			}
			src := prev[i*words : (i+1)*words]
			for _, j := range dests {
				dst := r.bits[j*words : (j+1)*words]
				for w := range dst {
					dst[w] |= src[w]
				}
			}
		}
	}
	return r
}

// Count returns the number of origins reaching rank.
func (r *ReachSet) Count(rank int) int {
	n := 0
	for _, w := range r.bits[rank*r.words : (rank+1)*r.words] {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every origin reaching rank, in ascending order.
func (r *ReachSet) ForEach(rank int, fn func(origin int)) {
	row := r.bits[rank*r.words : (rank+1)*r.words]
	for w, word := range row {
		for word != 0 {
			fn(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hbsp/internal/simnet"
)

// Internal instruction kinds of compiled programs. Send-side and
// receive-side waits are split at compile time, and every receive wait is
// statically matched to the global send slot that produces its message (FIFO
// per (source, destination, tag) — the concurrent mailbox's matching rule,
// resolved once instead of at every delivery).
type instrKind uint8

const (
	iCompute instrKind = iota
	iComputeExact
	iSend     // injects a message into its slot; fills the request's completion time
	iPost     // injects a message into its slot, no request
	iRecv     // records the receive's post time into its request slot
	iWaitSend // waits a send request
	iWaitRecv // waits a receive request, gated on its matched send slot
	iSuperstep
	iStage
)

// instr is one flat instruction of a compiled per-rank stream.
type instr struct {
	kind instrKind
	peer int32
	tag  int32
	size int32
	req  int32
	mark int32
	// slot is the global send slot: for iSend/iPost the slot this
	// instruction fills, for iWaitRecv the matched slot (-1 when no send in
	// the program ever produces the message — that wait can never complete,
	// the static form of a receive deadlock).
	slot int32
	sec  float64
}

// Code is a compiled simnet.Program: flat per-rank instruction arrays with
// all message matching resolved. A Code is immutable and may be evaluated
// any number of times; Run's per-evaluation state can be reused via Evaluate
// on a progState.
type Code struct {
	procs int
	ops   [][]instr
	nreq  []int
	// Per global send slot: the owning rank and the index of the producing
	// instruction in its stream (a slot is filled once its owner's program
	// counter has passed that index).
	slotRank []int32
	slotOp   []int32
	slotSize []int32
}

type matchKey struct{ src, dst, tag int }

// Compile lowers the program into flat per-rank instruction arrays, assigns
// every send a global message slot and statically matches every receive wait
// to the slot it consumes: the k-th waited receive of rank d from (s, tag)
// matches the k-th send of rank s to (d, tag), in each rank's program order —
// exactly the concurrent engine's per-(source, tag) FIFO discipline.
func Compile(pr *simnet.Program) (*Code, error) {
	if pr == nil {
		return nil, errors.New("sched: nil program")
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	p := pr.Procs()
	c := &Code{procs: p, ops: make([][]instr, p), nreq: make([]int, p)}

	// Pass 1: enumerate send slots in (rank, program order) and build the
	// per-(src, dst, tag) producer FIFOs.
	sends := map[matchKey][]int32{}
	for r := 0; r < p; r++ {
		for i, op := range pr.Ops(r) {
			if op.Kind == simnet.OpSend || op.Kind == simnet.OpPost {
				slot := int32(len(c.slotRank))
				c.slotRank = append(c.slotRank, int32(r))
				c.slotOp = append(c.slotOp, int32(i))
				c.slotSize = append(c.slotSize, int32(op.Size))
				key := matchKey{src: r, dst: op.Peer, tag: op.Tag}
				sends[key] = append(sends[key], slot)
			}
		}
	}

	// Pass 2: lower instructions; waited receives consume the producer
	// FIFOs in wait order.
	taken := map[matchKey]int{}
	type reqInfo struct {
		isSend bool
		peer   int32
		tag    int32
		size   int32
	}
	nextSlot := int32(0)
	for r := 0; r < p; r++ {
		ops := pr.Ops(r)
		c.nreq[r] = pr.NumReqs(r)
		out := make([]instr, 0, len(ops))
		reqs := make([]reqInfo, pr.NumReqs(r))
		for _, op := range ops {
			switch op.Kind {
			case simnet.OpCompute:
				out = append(out, instr{kind: iCompute, sec: op.Seconds})
			case simnet.OpComputeExact:
				out = append(out, instr{kind: iComputeExact, sec: op.Seconds})
			case simnet.OpSend, simnet.OpPost:
				// Slots were assigned in this same traversal order in pass 1.
				in := instr{peer: int32(op.Peer), tag: int32(op.Tag), size: int32(op.Size), slot: nextSlot}
				nextSlot++
				if op.Kind == simnet.OpSend {
					in.kind = iSend
					in.req = int32(op.Req)
					reqs[op.Req] = reqInfo{isSend: true, peer: in.peer, tag: in.tag, size: in.size}
				} else {
					in.kind = iPost
				}
				out = append(out, in)
			case simnet.OpRecv:
				reqs[op.Req] = reqInfo{peer: int32(op.Peer), tag: int32(op.Tag)}
				out = append(out, instr{kind: iRecv, peer: int32(op.Peer), tag: int32(op.Tag), req: int32(op.Req)})
			case simnet.OpWait:
				ri := reqs[op.Req]
				if ri.isSend {
					out = append(out, instr{kind: iWaitSend, peer: ri.peer, tag: ri.tag, size: ri.size, req: int32(op.Req)})
					continue
				}
				key := matchKey{src: int(ri.peer), dst: r, tag: int(ri.tag)}
				slot := int32(-1)
				var size int32
				if fifo := sends[key]; taken[key] < len(fifo) {
					slot = fifo[taken[key]]
					taken[key]++
					size = c.slotSize[slot]
				}
				out = append(out, instr{kind: iWaitRecv, peer: ri.peer, tag: ri.tag, size: size, req: int32(op.Req), slot: slot})
			case simnet.OpSuperstep:
				out = append(out, instr{kind: iSuperstep, mark: int32(op.Mark)})
			case simnet.OpStage:
				out = append(out, instr{kind: iStage, mark: int32(op.Mark)})
			}
		}
		c.ops[r] = out
	}
	return c, nil
}

// rankHeap is the binary event heap of runnable ranks, keyed by virtual
// clock (ties by rank for determinism): the evaluator always advances the
// earliest runnable rank, the conservative-PDES event order.
type rankHeap struct {
	ranks []int32
	key   []float64 // per rank: the clock at push time
}

func (h *rankHeap) push(r int32, t float64) {
	h.key[r] = t
	h.ranks = append(h.ranks, r)
	i := len(h.ranks) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ranks[i], h.ranks[parent]) {
			break
		}
		h.ranks[i], h.ranks[parent] = h.ranks[parent], h.ranks[i]
		i = parent
	}
}

func (h *rankHeap) less(a, b int32) bool {
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return a < b
}

func (h *rankHeap) pop() int32 {
	top := h.ranks[0]
	last := len(h.ranks) - 1
	h.ranks[0] = h.ranks[last]
	h.ranks = h.ranks[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(h.ranks[l], h.ranks[small]) {
			small = l
		}
		if r < last && h.less(h.ranks[r], h.ranks[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ranks[i], h.ranks[small] = h.ranks[small], h.ranks[i]
		i = small
	}
	return top
}

// checkEvery bounds how many instructions the evaluator executes between
// wall-clock deadline and context-cancellation checks.
const checkEvery = 1 << 13

// runState is Code.Run's per-evaluation state, recycled through a pool so
// sweeps that evaluate one compiled program many times (experiments series,
// benchmarks) allocate nothing in steady state.
type runState struct {
	pc       []int32
	reqTime  [][]float64
	arrivals []float64
	sendEvs  []int32
	sendEnds []float64
	parked   []int32
	heap     rankHeap
}

var runPool sync.Pool

// newRunState returns pooled state sized for the code; only parked and pc
// need zeroing (arrivals, sendEvs and reqTime are written before read: slot
// entries at injection, request entries at the producing send/recv).
func newRunState(c *Code) *runState {
	st, _ := runPool.Get().(*runState)
	if st == nil {
		st = &runState{}
	}
	p := c.procs
	if cap(st.pc) < p {
		st.pc = make([]int32, p)
		st.reqTime = make([][]float64, p)
		st.heap.key = make([]float64, p)
	} else {
		st.pc = st.pc[:p]
		for i := range st.pc {
			st.pc[i] = 0
		}
		st.reqTime = st.reqTime[:p]
		st.heap.key = st.heap.key[:p]
	}
	for r := 0; r < p; r++ {
		if cap(st.reqTime[r]) < c.nreq[r] {
			st.reqTime[r] = make([]float64, c.nreq[r])
		} else {
			st.reqTime[r] = st.reqTime[r][:c.nreq[r]]
		}
	}
	nslots := len(c.slotRank)
	if cap(st.arrivals) < nslots {
		st.arrivals = make([]float64, nslots)
		st.sendEvs = make([]int32, nslots)
		st.sendEnds = make([]float64, nslots)
		st.parked = make([]int32, nslots)
	} else {
		st.arrivals = st.arrivals[:nslots]
		st.sendEvs = st.sendEvs[:nslots]
		st.sendEnds = st.sendEnds[:nslots]
		st.parked = st.parked[:nslots]
		for i := range st.parked {
			st.parked[i] = 0
		}
	}
	st.heap.ranks = st.heap.ranks[:0]
	return st
}

func (st *runState) release() { runPool.Put(st) }

// Run evaluates the compiled program over the event heap: every rank executes
// its instruction stream until it finishes or blocks on a receive whose
// matched send has not been injected yet; injecting a send wakes the rank
// parked on its slot. Virtual times, traffic counters and recorded events are
// bit-identical to simnet.RunProgram on the same machine and options.
//
// A blocked configuration with an empty heap is a communication deadlock; the
// concurrent engine would burn its wall-clock deadline before reporting it,
// the evaluator returns simnet.ErrDeadline immediately. Context cancellation
// and the wall-clock deadline are checked every few thousand instructions and
// return the same errors the concurrent engine produces.
func (c *Code) Run(ctx context.Context, m simnet.Machine, o simnet.Options) (*simnet.Result, error) {
	if m == nil || m.Procs() < 1 {
		return nil, errors.New("sched: machine with at least one rank required")
	}
	if m.Procs() != c.procs {
		return nil, fmt.Errorf("sched: program for %d ranks on a %d-rank machine", c.procs, m.Procs())
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline <= 0 {
		o.Deadline = simnet.DefaultOptions().Deadline
	}
	e := NewEvaluator(m, o.AckSends)
	defer e.Release()
	ft, err := compileFaults(o.Faults, m)
	if err != nil {
		return nil, err
	}
	e.ft = ft
	beginRecording(o.Recorder, m, o.AckSends, e)

	p := c.procs
	st := newRunState(c)
	defer st.release()
	pc := st.pc
	reqTime := st.reqTime // per request slot: post time (recv) or completion (send)
	arrivals := st.arrivals
	sendEvs := st.sendEvs
	sendEnds := st.sendEnds
	parked := st.parked // rank+1 parked on this slot
	heap := &st.heap
	for r := p - 1; r >= 0; r-- {
		heap.push(int32(r), 0)
	}
	finished := 0
	steps := 0
	start := time.Now()

	for len(heap.ranks) > 0 {
		r := heap.pop()
		rs := &e.states[r]
		ops := c.ops[r]
	rankLoop:
		for pc[r] < int32(len(ops)) {
			steps++
			if steps%checkEvery == 0 {
				if err := ctx.Err(); err != nil {
					err = fmt.Errorf("%w: %w", simnet.ErrAborted, context.Cause(ctx))
					endRecording(o.Recorder, nil, e.messages, e.bytes, err)
					return nil, err
				}
				if time.Since(start) > o.Deadline {
					endRecording(o.Recorder, nil, e.messages, e.bytes, simnet.ErrDeadline)
					return nil, simnet.ErrDeadline
				}
			}
			in := &ops[pc[r]]
			switch in.kind {
			case iCompute:
				rs.compute(e.m, e.ft, int(r), in.sec)
			case iComputeExact:
				rs.computeExact(e.ft, int(r), in.sec)
			case iSend, iPost:
				arrival, completeAt, sendEv, sendEnd := e.send(rs, int(r), int(in.peer), int(in.tag), int(in.size))
				arrivals[in.slot] = arrival
				sendEvs[in.slot] = sendEv
				sendEnds[in.slot] = sendEnd
				if in.kind == iSend {
					reqTime[r][in.req] = completeAt
				}
				if w := parked[in.slot]; w != 0 {
					parked[in.slot] = 0
					heap.push(w-1, e.states[w-1].now)
				}
			case iRecv:
				reqTime[r][in.req] = rs.now
			case iWaitSend:
				rs.waitSendAdvance(e.ft, int(r), reqTime[r][in.req], int(in.peer), int(in.tag), int(in.size))
			case iWaitRecv:
				if in.slot < 0 {
					// Statically unmatched: this rank can never proceed.
					break rankLoop
				}
				owner := c.slotRank[in.slot]
				if pc[owner] <= c.slotOp[in.slot] {
					parked[in.slot] = r + 1
					break rankLoop
				}
				arrival := arrivals[in.slot]
				completeAt, gated := e.recvComplete(rs, int(r), int(in.peer), reqTime[r][in.req], arrival)
				rs.waitRecvAdvance(e.ft, int(r), completeAt, int(in.peer), int(in.tag), in.size, sendEvs[in.slot], gated, arrival, sendEnds[in.slot])
			case iSuperstep:
				rs.superstepMark(in.mark)
			case iStage:
				rs.stageMark(in.mark)
			}
			pc[r]++
		}
		if pc[r] == int32(len(ops)) {
			finished++
			pc[r]++ // past the end: marks the rank done, and its last send slot visible
		}
	}

	if finished != p {
		endRecording(o.Recorder, nil, e.messages, e.bytes, simnet.ErrDeadline)
		return nil, simnet.ErrDeadline
	}
	res := e.result()
	res.Messages, res.Bytes = e.messages, e.bytes
	endRecording(o.Recorder, res, res.Messages, res.Bytes, nil)
	return res, nil
}

// RunProgram executes the program on the engine the options select: the
// direct discrete-event evaluator by default, or the concurrent engine under
// EngineConcurrent. Both produce bit-identical results; the direct path
// compiles the program first, so callers evaluating one program many times
// should Compile once and call Code.Run.
func RunProgram(ctx context.Context, m simnet.Machine, pr *simnet.Program, o simnet.Options) (*simnet.Result, error) {
	if o.Engine == simnet.EngineConcurrent {
		return simnet.RunProgram(ctx, m, pr, o)
	}
	code, err := Compile(pr)
	if err != nil {
		return nil, err
	}
	return code.Run(ctx, m, o)
}

package sched

import (
	"errors"
	"fmt"
)

// CirculantSchedule is the O(1)-per-stage view of a circulant schedule: the
// collapsed evaluator reads stages through it without materializing any
// per-rank adjacency, which is what keeps a P=1M evaluation at O(stages)
// work and O(P) memory (the rank states themselves).
type CirculantSchedule interface {
	Schedule
	// CirculantStage returns stage k's uniform offset (every rank i signals
	// (i+offset) mod P; offset 0 mod P means an empty stage) and the uniform
	// payload size in bytes of every edge.
	CirculantStage(k int) (offset, sizeBytes int)
}

// Circulant is a streaming circulant schedule: stage k prescribes the single
// uniform edge i→(i+offsets[k]) mod P for every rank i, with the uniform
// payload sizes[k]. It is the shape of the dissemination, linear-shift
// total-exchange and ring collectives, and it carries the SymCirculant hint
// by construction. StageAt materializes one reused O(P) adjacency for
// per-rank evaluation (allocated lazily, so collapsed evaluations never pay
// it); a Circulant must therefore not be shared by concurrent evaluations.
type Circulant struct {
	p       int
	offsets []int // normalized to [0, p); 0 = empty stage
	sizes   []int // nil = pure signals

	// StageAt scratch, built on first use and rewritten per stage.
	stage    int
	out, in  [][]int
	outBytes [][]int
	outBack  []int
	inBack   []int
	sizeRow  []int
}

// NewCirculant returns the circulant schedule over p ranks with one stage
// per offset. sizes gives the uniform per-edge payload of each stage (nil
// for pure signals; otherwise it must have one entry per offset). Offsets
// are taken mod p; an offset of 0 mod p yields an empty stage.
func NewCirculant(p int, offsets, sizes []int) (*Circulant, error) {
	if p < 1 {
		return nil, fmt.Errorf("sched: circulant schedule with p=%d", p)
	}
	if sizes != nil && len(sizes) != len(offsets) {
		return nil, errors.New("sched: circulant schedule needs one size per offset")
	}
	c := &Circulant{p: p, offsets: make([]int, len(offsets)), stage: -1}
	for k, off := range offsets {
		c.offsets[k] = ((off % p) + p) % p
	}
	if sizes != nil {
		c.sizes = make([]int, len(sizes))
		for k, sz := range sizes {
			if sz < 0 {
				sz = 0
			}
			c.sizes[k] = sz
		}
	}
	return c, nil
}

// NumProcs returns the number of participating ranks.
func (c *Circulant) NumProcs() int { return c.p }

// NumStages returns the number of stages.
func (c *Circulant) NumStages() int { return len(c.offsets) }

// Symmetry declares the circulant hint.
func (c *Circulant) Symmetry() Symmetry { return SymCirculant }

// CirculantStage returns stage k's uniform offset and payload size.
func (c *Circulant) CirculantStage(k int) (offset, sizeBytes int) {
	offset = c.offsets[k]
	if c.sizes != nil {
		sizeBytes = c.sizes[k]
	}
	return offset, sizeBytes
}

// StageAt materializes stage k into the reused adjacency buffers (the
// per-rank fallback path; collapsed evaluation reads CirculantStage
// instead).
func (c *Circulant) StageAt(k int) Stage {
	if c.out == nil {
		c.out = make([][]int, c.p)
		c.in = make([][]int, c.p)
		c.outBack = make([]int, c.p)
		c.inBack = make([]int, c.p)
		c.sizeRow = make([]int, 1)
		if c.sizes != nil {
			c.outBytes = make([][]int, c.p)
		}
		c.stage = -1
	}
	if c.stage != k {
		off, size := c.CirculantStage(k)
		if off == 0 {
			for i := 0; i < c.p; i++ {
				c.out[i], c.in[i] = nil, nil
				if c.outBytes != nil {
					c.outBytes[i] = nil
				}
			}
		} else {
			c.sizeRow[0] = size
			for i := 0; i < c.p; i++ {
				c.outBack[i] = (i + off) % c.p
				c.inBack[i] = (i - off + c.p) % c.p
				c.out[i] = c.outBack[i : i+1]
				c.in[i] = c.inBack[i : i+1]
				if c.outBytes != nil {
					c.outBytes[i] = c.sizeRow
				}
			}
		}
		c.stage = k
	}
	return Stage{Out: c.out, In: c.in, OutBytes: c.outBytes}
}

package sched

import (
	"reflect"

	"hbsp/internal/simnet"
)

// Collapsed execution: ExecCollapsed evaluates one representative rankState
// per equivalence class per stage instead of all P ranks. Member states are
// untouched until ReplicateClasses copies the representative's clock, port
// and noise-stream state across each class — so a run of consecutive
// executions pays O(classes·stages) evaluation plus one O(P) assembly.
//
// The arithmetic is the same send/recvComplete code the per-rank sweep uses;
// only the iteration domain shrinks. Collapse preconditions (checked by the
// callers): the partition came from CollapseClasses on this machine and
// schedule, no trace lanes are attached, and entry states are class-aligned.

// partEntry is one cached collapse decision: the partition (nil = collapse
// does not apply) together with its diagnostic.
type partEntry struct {
	part *Partition
	info simnet.Collapse
}

// ExecScheduleAuto evaluates one execution of the schedule, collapsing
// symmetric stages onto class representatives when the machine, schedule and
// current entry states allow it, and falling back to the per-rank
// ExecSchedule sweep otherwise. Results — clocks, port states, noise
// positions, traffic counters — are bit-identical either way; the inline
// gate paths (the BSP count exchange, the mpi schedule flood) call this. The
// decision (and, on fallback, its reason) is retained for CollapseInfo.
func (e *Evaluator) ExecScheduleAuto(s Schedule, tagBase int, computeEmpty bool) {
	part, info := e.partitionFor(s)
	if part != nil && !e.classesAligned(part) {
		part = nil
		info = simnet.Collapse{Reason: simnet.CollapseReasonAsymmetric}
		if e.tracing() {
			info.Reason = simnet.CollapseReasonTrace
		}
	}
	e.lastCollapse = info
	if part == nil {
		e.ExecSchedule(s, tagBase, computeEmpty)
		return
	}
	e.ExecCollapsed(s, part, tagBase, computeEmpty)
	e.ReplicateClasses(part)
}

// partitionFor returns the cached rank-equivalence partition of the schedule
// (nil = collapse does not apply) and its diagnostic, computing and caching
// both on first sight. Ineligible schedules cache the nil partition with its
// reason so the structural refinement never reruns. The cache is valid for
// the evaluator's current run: it is dropped on Release, and the fault plan
// the decision depends on is fixed per run.
func (e *Evaluator) partitionFor(s Schedule) (*Partition, simnet.Collapse) {
	if e.collapseOff {
		return nil, simnet.Collapse{Reason: simnet.CollapseReasonOff}
	}
	if !reflect.TypeOf(s).Comparable() {
		return CollapseClassesWith(e.m, s, e.ft)
	}
	ent, ok := e.partCache[s]
	if !ok {
		ent.part, ent.info = CollapseClassesWith(e.m, s, e.ft)
		if e.partCache == nil {
			e.partCache = make(map[Schedule]partEntry)
		}
		e.partCache[s] = ent
	}
	return ent.part, ent.info
}

// tracing reports whether any rank currently has a trace lane attached.
func (e *Evaluator) tracing() bool {
	for r := range e.states {
		if e.states[r].lane != nil {
			return true
		}
	}
	return false
}

// classesAligned reports whether the current entry states permit collapsed
// evaluation: no rank is traced, and within every class each member's
// (clock, ports, noise position) equals its representative's. Equivalent
// ranks that start aligned stay aligned, so one check per inline evaluation
// suffices.
func (e *Evaluator) classesAligned(part *Partition) bool {
	for r := range e.states {
		rs := &e.states[r]
		if rs.lane != nil {
			return false
		}
		rep := part.Reps[part.ClassOf[r]]
		if int32(r) == rep {
			continue
		}
		ps := &e.states[rep]
		if rs.now != ps.now || rs.txFree != ps.txFree || rs.rxFree != ps.rxFree || rs.noiseSeq != ps.noiseSeq {
			return false
		}
	}
	return true
}

// ReplicateClasses copies each representative's state across its class —
// the O(P) result-assembly step after any number of collapsed executions.
func (e *Evaluator) ReplicateClasses(part *Partition) {
	for r := range e.states {
		rep := part.Reps[part.ClassOf[r]]
		if int32(r) == rep {
			continue
		}
		rs, ps := &e.states[r], &e.states[rep]
		rs.now, rs.txFree, rs.rxFree, rs.noiseSeq = ps.now, ps.txFree, ps.rxFree, ps.noiseSeq
	}
}

// ExecCollapsed evaluates one execution of the schedule over class
// representatives only (see the collapse preconditions above). Traffic
// counters account for the whole class: every member performs the
// representative's sends.
func (e *Evaluator) ExecCollapsed(s Schedule, part *Partition, tagBase int, computeEmpty bool) {
	e.execCollapsed(s, part, tagBase, computeEmpty, nil)
}

// execCollapsed is ExecCollapsed with an optional per-stage cancellation
// checker (hot at P=1M, where one execution is minutes of wall time under
// the per-rank sweep and still non-trivial collapsed).
func (e *Evaluator) execCollapsed(s Schedule, part *Partition, tagBase int, computeEmpty bool, chk *stageChecker) error {
	if part.NumClasses() == 1 {
		if cs, ok := s.(CirculantSchedule); ok {
			return e.execCollapsedCirculant(cs, tagBase, computeEmpty, chk)
		}
	}
	nc := part.NumClasses()
	if cap(e.classArr) < nc {
		e.classArr = make([][]float64, nc)
	}
	classArr := e.classArr[:nc]
	for sg := 0; sg < s.NumStages(); sg++ {
		if chk != nil {
			if err := chk.tick(); err != nil {
				return err
			}
		}
		st := s.StageAt(sg)
		tag := tagBase + sg

		// Phase A over representatives: entry clocks and send injections,
		// arrivals parked per class by out-edge position.
		for c := 0; c < nc; c++ {
			r := int(part.Reps[c])
			rs := &e.states[r]
			ins, outs := st.In[r], st.Out[r]
			if len(ins) == 0 && len(outs) == 0 {
				if computeEmpty {
					rs.compute(e.m, e.ft, r, 0)
				}
				continue
			}
			e.entry[r] = rs.now
			if len(outs) > 0 {
				ca := classArr[c][:0]
				sc := e.sendComplete[r][:0]
				var repBytes int64
				for k, dst := range outs {
					size := 0
					if st.OutBytes != nil {
						size = st.OutBytes[r][k]
					}
					arrival, completeAt, _, _ := e.send(rs, r, dst, tag, size)
					ca = append(ca, arrival)
					sc = append(sc, completeAt)
					repBytes += int64(size)
				}
				classArr[c] = ca
				e.sendComplete[r] = sc
				if extra := part.Size[c] - 1; extra > 0 {
					e.messages += extra * int64(len(outs))
					e.bytes += extra * repBytes
				}
			}
		}

		// Phase B over representatives: waits, receives first then sends, in
		// edge order. An in-edge from src at out-position k carries the same
		// arrival src's representative computed at position k (class
		// equivalence covers pair class, position and size), so the class
		// queue substitutes for the per-receiver one. Clock advances are
		// inlined through setNow: lanes are nil under collapse, and the inline
		// form carries no int32 payload casts (count-exchange payloads exceed
		// int32 at P=1M); fail-stop crossings still apply — a class whose
		// members all fail identically collapses like any other.
		for c := 0; c < nc; c++ {
			r := int(part.Reps[c])
			rs := &e.states[r]
			for _, src := range st.In[r] {
				k := outPosition(st.Out[src], r)
				arrival := classArr[part.ClassOf[src]][k]
				completeAt, _ := e.recvComplete(rs, r, src, e.entry[r], arrival)
				if completeAt > rs.now {
					rs.setNow(e.ft, r, completeAt)
				}
			}
			for k := range st.Out[r] {
				if completeAt := e.sendComplete[r][k]; completeAt > rs.now {
					rs.setNow(e.ft, r, completeAt)
				}
			}
		}
	}
	return nil
}

// execCollapsedCirculant is the O(1)-per-stage fast path for a single-class
// partition over a circulant schedule: stage k is one uniform edge
// i→(i+d) mod P, so evaluating rank 0's send and its receive from P−d
// evaluates every rank. No stage adjacency is materialized — this is the
// path that carries P=1M runs.
func (e *Evaluator) execCollapsedCirculant(cs CirculantSchedule, tagBase int, computeEmpty bool, chk *stageChecker) error {
	p := len(e.states)
	rs := &e.states[0]
	for sg := 0; sg < cs.NumStages(); sg++ {
		if chk != nil {
			if err := chk.tick(); err != nil {
				return err
			}
		}
		off, size := cs.CirculantStage(sg)
		if off == 0 {
			if computeEmpty {
				rs.compute(e.m, e.ft, 0, 0)
			}
			continue
		}
		tag := tagBase + sg
		dst, src := off, p-off
		entry := rs.now
		arrival, sendDone, _, _ := e.send(rs, 0, dst, tag, size)
		e.messages += int64(p - 1)
		e.bytes += int64(p-1) * int64(size)
		// By symmetry the arrival from src equals rank 0's own send arrival.
		recvDone, _ := e.recvComplete(rs, 0, src, entry, arrival)
		if recvDone > rs.now {
			rs.setNow(e.ft, 0, recvDone)
		}
		if sendDone > rs.now {
			rs.setNow(e.ft, 0, sendDone)
		}
	}
	return nil
}

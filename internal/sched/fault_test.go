package sched_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"hbsp/internal/bsp"
	"hbsp/internal/fault"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/topology"
	"hbsp/internal/trace"
)

// faultScenarios builds the fault plans of the cross-engine diff matrix,
// windowed relative to the fault-free makespan so every rule activates
// mid-run at any rank count.
func faultScenarios(p int, base float64) []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"straggler", &fault.Plan{
			Seed: 11,
			Slowdowns: []fault.Slowdown{
				{Rank: 3 % p, Factor: 2},
				{Rank: 1 % p, Factor: 1.5, Jitter: 0.25, Start: base * 0.2, End: base * 0.6},
			},
		}},
		{"links", &fault.Plan{
			Links: []fault.LinkRule{
				{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 3, Start: 0, End: base * 0.5},
				{Src: 0, Dst: -1, Class: -1, LatencyFactor: 1.5, BetaFactor: 1},
				{Src: -1, Dst: p - 1, Class: -1, LatencyFactor: 1, BetaFactor: 4},
			},
		}},
		{"failstop", &fault.Plan{
			FailStops: []fault.FailStop{
				{Rank: 0, FailAt: base * 0.4, Restart: base * 0.1, Checkpoint: base * 0.15},
				{Rank: p - 1, FailAt: base * 0.7, Restart: base * 0.05},
			},
		}},
		{"mixed", &fault.Plan{
			Seed:      3,
			Slowdowns: []fault.Slowdown{{Rank: 2 % p, Factor: 3, Start: base * 0.1}},
			Links:     []fault.LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 1.5, BetaFactor: 2, Start: base * 0.3}},
			FailStops: []fault.FailStop{{Rank: 0, FailAt: base * 0.5, Restart: base * 0.2}},
		}},
	}
}

func diffResults(t *testing.T, tag string, resC, resD *simnet.Result) {
	t.Helper()
	for r := range resC.Times {
		if resC.Times[r] != resD.Times[r] {
			t.Errorf("%s rank %d: concurrent %v, direct %v", tag, r, resC.Times[r], resD.Times[r])
		}
	}
	if resC.MakeSpan != resD.MakeSpan {
		t.Errorf("%s makespan: %v vs %v", tag, resC.MakeSpan, resD.MakeSpan)
	}
	if resC.Messages != resD.Messages || resC.Bytes != resD.Bytes {
		t.Errorf("%s traffic: %d/%d vs %d/%d", tag, resC.Messages, resC.Bytes, resD.Messages, resD.Bytes)
	}
}

// TestFaultEnginesBitIdentical diffs the engines under every fault scenario:
// virtual times, counters and recorded trace streams (including the fault
// event lane) must be bit-identical at P in {16, 64, 256}, acks on and off.
func TestFaultEnginesBitIdentical(t *testing.T) {
	for _, p := range []int{16, 64, 256} {
		if testing.Short() && p > 64 {
			continue
		}
		m := machines(t, p, 42, false)
		pr := ringProgram(p)
		for _, ack := range []bool{true, false} {
			oB := simnet.DefaultOptions()
			oB.AckSends = ack
			baseRes, err := sched.RunProgram(context.Background(), m, pr, oB)
			if err != nil {
				t.Fatal(err)
			}
			for _, sc := range faultScenarios(p, baseRes.MakeSpan) {
				recC := trace.NewRecorder()
				oC := simnet.DefaultOptions()
				oC.AckSends = ack
				oC.Engine = simnet.EngineConcurrent
				oC.Recorder = recC
				oC.Faults = sc.plan
				resC, err := simnet.RunProgram(context.Background(), m, pr, oC)
				if err != nil {
					t.Fatalf("p=%d %s ack=%v concurrent: %v", p, sc.name, ack, err)
				}

				recD := trace.NewRecorder()
				oD := simnet.DefaultOptions()
				oD.AckSends = ack
				oD.Recorder = recD
				oD.Faults = sc.plan
				resD, err := sched.RunProgram(context.Background(), m, pr, oD)
				if err != nil {
					t.Fatalf("p=%d %s ack=%v direct: %v", p, sc.name, ack, err)
				}

				tag := sc.name
				diffResults(t, tag, resC, resD)
				// The plan must actually perturb the run: the straggler's own
				// draws change and the fail-stop on rank p-1 (whose finish is
				// the makespan, past FailAt = 0.7·makespan) always fires.
				if sc.name == "straggler" || sc.name == "failstop" {
					changed := false
					for r := range resD.Times {
						if resD.Times[r] != baseRes.Times[r] {
							changed = true
							break
						}
					}
					if !changed {
						t.Errorf("p=%d %s ack=%v: fault plan left every virtual time unchanged", p, sc.name, ack)
					}
				}
				if sc, sd := eventStream(t, recC), eventStream(t, recD); sc != sd {
					t.Errorf("p=%d %s ack=%v: traced event streams differ", p, tag, ack)
				}
			}
		}
	}
}

// TestFaultEnginesNoisyMachine repeats the engine diff on a noisy machine:
// slowdown factors multiply into live noise draws at the same sequence
// numbers on both engines.
func TestFaultEnginesNoisyMachine(t *testing.T) {
	p := 16
	m := machines(t, p, 7, true)
	pr := ringProgram(p)
	plan := &fault.Plan{
		Seed:      5,
		Slowdowns: []fault.Slowdown{{Rank: 0, Factor: 2, Jitter: 0.5}},
	}
	oC := simnet.DefaultOptions()
	oC.Engine = simnet.EngineConcurrent
	oC.Faults = plan
	resC, err := simnet.RunProgram(context.Background(), m, pr, oC)
	if err != nil {
		t.Fatal(err)
	}
	oD := simnet.DefaultOptions()
	oD.Faults = plan
	resD, err := sched.RunProgram(context.Background(), m, pr, oD)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, "noisy", resC, resD)
}

// TestFaultClassRuleFatTree pins distance-class-matched link rules: on a
// fat-tree, a DistanceGroup rule degrades only cross-pod edges, and the
// engines agree bit for bit.
func TestFaultClassRuleFatTree(t *testing.T) {
	for _, tc := range []struct{ pods, per int }{{4, 4}, {8, 8}} {
		p := tc.pods * tc.per
		m, err := platform.FatTreeCluster(tc.pods, tc.per).Machine(p)
		if err != nil {
			t.Fatal(err)
		}
		pr := ringProgram(p)
		plan := &fault.Plan{Links: []fault.LinkRule{
			{Src: -1, Dst: -1, Class: int(topology.DistanceGroup), LatencyFactor: 4, BetaFactor: 2},
		}}
		base, err := sched.RunProgram(context.Background(), m, pr, simnet.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		oC := simnet.DefaultOptions()
		oC.Engine = simnet.EngineConcurrent
		oC.Faults = plan
		resC, err := simnet.RunProgram(context.Background(), m, pr, oC)
		if err != nil {
			t.Fatal(err)
		}
		oD := simnet.DefaultOptions()
		oD.Faults = plan
		resD, err := sched.RunProgram(context.Background(), m, pr, oD)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, "fattree", resC, resD)
		if resD.MakeSpan <= base.MakeSpan {
			t.Errorf("P=%d: degrading cross-pod links did not inflate the makespan", p)
		}

		// An intra-pod-only ring (all ranks in pod 0 would need p <= per);
		// instead pin that a rule on a class the traffic never uses is free:
		// DistanceSocket never occurs on a one-core-per-node fat-tree.
		planIdle := &fault.Plan{Links: []fault.LinkRule{
			{Src: -1, Dst: -1, Class: int(topology.DistanceSocket), LatencyFactor: 64, BetaFactor: 64},
		}}
		oI := simnet.DefaultOptions()
		oI.Faults = planIdle
		resI, err := sched.RunProgram(context.Background(), m, pr, oI)
		if err != nil {
			t.Fatal(err)
		}
		if resI.MakeSpan != base.MakeSpan {
			t.Errorf("P=%d: rule on an unused distance class changed the makespan", p)
		}
	}
}

// TestFaultGateEngineBitIdentical runs the BSP count exchange — whose Sync is
// routed through the in-proc gate to the direct evaluator under EngineAuto —
// under a fault plan on both engines.
func TestFaultGateEngineBitIdentical(t *testing.T) {
	for _, p := range []int{16, 64} {
		m := machines(t, p, 13, false)
		program := func(c *bsp.Ctx) error {
			for s := 0; s < 4; s++ {
				c.Compute(1e-6 * float64(c.Pid()+1))
				if err := c.Sync(); err != nil {
					return err
				}
			}
			return nil
		}
		base, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{}, program)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range faultScenarios(p, base.MakeSpan) {
			oC := simnet.DefaultOptions()
			oC.Engine = simnet.EngineConcurrent
			oC.Faults = sc.plan
			resC, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{Options: &oC}, program)
			if err != nil {
				t.Fatalf("p=%d %s concurrent: %v", p, sc.name, err)
			}
			oA := simnet.DefaultOptions()
			oA.Faults = sc.plan
			resA, err := bsp.RunContext(context.Background(), m, bsp.RunConfig{Options: &oA}, program)
			if err != nil {
				t.Fatalf("p=%d %s auto: %v", p, sc.name, err)
			}
			diffResults(t, sc.name, resC, resA)
		}
	}
}

// TestFaultTraceEvents pins the fault event lane: a fail-stop crossing is
// recorded as a KindFault event on the failed rank whose T0/T1 bracket the
// crash penalty, and the trace metadata carries the plan description.
func TestFaultTraceEvents(t *testing.T) {
	p := 8
	m := machines(t, p, 3, false)
	pr := ringProgram(p)
	base, err := sched.RunProgram(context.Background(), m, pr, simnet.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fs := fault.FailStop{Rank: 2, FailAt: base.MakeSpan * 0.5, Restart: base.MakeSpan * 0.25}
	plan := &fault.Plan{FailStops: []fault.FailStop{fs}}
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	o.Faults = plan
	if _, err := sched.RunProgram(context.Background(), m, pr, o); err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindFault {
			continue
		}
		found++
		if ev.Rank != 2 {
			t.Errorf("fault event on rank %d, want 2", ev.Rank)
		}
		if got, want := ev.T1-ev.T0, fs.Penalty(); math.Abs(got-want) > 1e-12*want {
			t.Errorf("fault event spans %v, want penalty %v", got, want)
		}
		if ev.T0 < fs.FailAt {
			t.Errorf("fault event at %v precedes the fail time %v", ev.T0, fs.FailAt)
		}
	}
	if found != 1 {
		t.Fatalf("found %d fault events, want 1", found)
	}
	want := fmt.Sprintf("fail-stop rank 2 at %g penalty %g", fs.FailAt, fs.Penalty())
	if len(tr.Meta.Faults) != 1 || tr.Meta.Faults[0] != want {
		t.Errorf("trace metadata: %v, want [%s]", tr.Meta.Faults, want)
	}
}

// TestFaultTeardown pins teardown under faults on both engines: cancellation
// and deadline expiry mid-fail-stop-recovery unwind every rank and return the
// engine-shaped errors.
func TestFaultTeardown(t *testing.T) {
	p := 8
	m := machines(t, p, 3, false)
	plan := &fault.Plan{FailStops: []fault.FailStop{{Rank: 0, FailAt: 1e-7, Restart: 1e-3}}}

	// Direct evaluator: a long program so the periodic cancellation check
	// fires after the crash penalty was consumed.
	pr := simnet.NewProgram(p)
	for r := 0; r < p; r++ {
		b := pr.Rank(r)
		for k := 0; k < 200000; k++ {
			b.ComputeExact(1e-9)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	oD := simnet.DefaultOptions()
	oD.Faults = plan
	if _, err := sched.RunProgram(ctx, m, pr, oD); !errors.Is(err, simnet.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("direct cancel: want ErrAborted wrapping context.Canceled, got %v", err)
	}
	oD.Deadline = time.Nanosecond
	if _, err := sched.RunProgram(context.Background(), m, pr, oD); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("direct deadline: want ErrDeadline, got %v", err)
	}

	// Concurrent engine: ranks block in receives that never resolve once the
	// context is cancelled; every goroutine must unwind.
	body := func(pc *simnet.Proc) error {
		pc.Compute(1e-6)               // crosses rank 0's fail time, consuming the penalty
		pc.Recv((pc.Rank()+p-1)%p, 77) // never sent; cancellation unwinds it
		return nil
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	oC := simnet.DefaultOptions()
	oC.Engine = simnet.EngineConcurrent
	oC.Faults = plan
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel2()
	}()
	if _, err := simnet.RunContext(ctx2, m, body, oC); !errors.Is(err, simnet.ErrAborted) {
		t.Fatalf("concurrent cancel: want ErrAborted, got %v", err)
	}
	oC.Deadline = 10 * time.Millisecond
	if _, err := simnet.RunContext(context.Background(), m, body, oC); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("concurrent deadline: want ErrDeadline, got %v", err)
	}
}

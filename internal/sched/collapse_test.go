package sched_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// collapseSchedules builds the diff matrix of schedule shapes at one process
// count: every streaming generator plus the BSP count-exchange schedule.
// Expensive shapes (P−1 stages, or P edges per stage) are capped so the
// per-rank control runs stay affordable.
func collapseSchedules(t *testing.T, p int) map[string]sched.Schedule {
	t.Helper()
	out := map[string]sched.Schedule{}
	add := func(name string, s sched.Schedule, err error) {
		if err != nil {
			t.Fatalf("%s(p=%d): %v", name, p, err)
		}
		out[name] = s
	}
	s, err := barrier.StreamDissemination(p)
	add("dissemination", s, err)
	s, err = barrier.StreamAllReduce(p, 96)
	add("allreduce", s, err)
	s, err = barrier.StreamAllGather(p, 96)
	add("allgather", s, err)
	s, err = bsp.ExchangeSchedule(p)
	add("count-exchange", s, err)
	if p <= 1024 {
		s, err = barrier.StreamTotalExchange(p, 64)
		add("total-exchange", s, err)
		s, err = barrier.StreamAllGatherRing(p, 64)
		add("allgather-ring", s, err)
		s, err = barrier.StreamBroadcast(p, 0, 96)
		add("broadcast", s, err)
		s, err = barrier.StreamReduce(p, 0, 96)
		add("reduce", s, err)
	}
	return out
}

// runCollapseDiff runs the schedule once under CollapseAuto and once under
// CollapseOff and requires bit-identical per-rank times, makespan and traffic
// counters.
func runCollapseDiff(t *testing.T, name string, m *platform.Machine, s sched.Schedule, ack bool) {
	t.Helper()
	oAuto := simnet.DefaultOptions()
	oAuto.AckSends = ack
	resAuto, err := sched.RunSchedule(context.Background(), m, s, 2, oAuto)
	if err != nil {
		t.Fatalf("%s ack=%v auto: %v", name, ack, err)
	}
	oOff := oAuto
	oOff.SymmetryCollapse = simnet.CollapseOff
	resOff, err := sched.RunSchedule(context.Background(), m, s, 2, oOff)
	if err != nil {
		t.Fatalf("%s ack=%v off: %v", name, ack, err)
	}
	for r := range resOff.Times {
		if resAuto.Times[r] != resOff.Times[r] {
			t.Fatalf("%s ack=%v rank %d: collapsed %v, per-rank %v", name, ack, r, resAuto.Times[r], resOff.Times[r])
		}
	}
	if resAuto.MakeSpan != resOff.MakeSpan {
		t.Errorf("%s ack=%v makespan: collapsed %v, per-rank %v", name, ack, resAuto.MakeSpan, resOff.MakeSpan)
	}
	if resAuto.Messages != resOff.Messages || resAuto.Bytes != resOff.Bytes {
		t.Errorf("%s ack=%v traffic: collapsed %d/%d, per-rank %d/%d",
			name, ack, resAuto.Messages, resAuto.Bytes, resOff.Messages, resOff.Bytes)
	}
}

// TestCollapseGoldensBitIdentical is the correctness bar of the symmetry
// collapse: on a pairwise-uniform machine, for every schedule shape, acks on
// and off, P from 16 to 4096, collapsed evaluation must reproduce the
// per-rank evaluator's virtual times bit for bit, together with makespan and
// the message/byte counters. The circulant shapes must actually take the
// collapsed path (a single equivalence class), so the diff is never
// trivially comparing the fallback against itself.
func TestCollapseGoldensBitIdentical(t *testing.T) {
	for _, p := range []int{16, 64, 256, 1024, 4096} {
		m, err := platform.FlatClusterMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range collapseSchedules(t, p) {
			switch name {
			case "dissemination", "allreduce", "allgather", "count-exchange", "total-exchange", "allgather-ring":
				part := sched.CollapseClasses(m, s)
				if part == nil || part.NumClasses() != 1 {
					t.Fatalf("p=%d %s: expected a single equivalence class, got %v", p, name, part)
				}
			}
			for _, ack := range []bool{true, false} {
				runCollapseDiff(t, name, m, s, ack)
			}
		}
	}
}

// TestCollapseMultiClassHomogeneous diffs the collapse on a homogeneous but
// non-uniform machine: eight ranks per node, so intra-socket, intra-node and
// network pair classes coexist and the structural refinement — not the
// circulant fast path — has to find the classes. Whatever partition it finds
// (including none), the results must match per-rank evaluation exactly.
func TestCollapseMultiClassHomogeneous(t *testing.T) {
	for _, p := range []int{16, 64, 256, 1024} {
		m, err := platform.XeonClusterHomogeneousMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		if !m.HomogeneousClasses() {
			t.Fatal("homogeneous Xeon machine reports heterogeneous classes")
		}
		for name, s := range collapseSchedules(t, p) {
			for _, ack := range []bool{true, false} {
				runCollapseDiff(t, name, m, s, ack)
			}
		}
	}
}

// permuteSchedule returns the schedule with every rank relabeled by perm:
// edge i→j becomes perm[i]→perm[j], payload sizes carried over. The result
// is materialized as StaticStages with no symmetry hint.
func permuteSchedule(t *testing.T, s sched.Schedule, perm []int) sched.Schedule {
	t.Helper()
	p := s.NumProcs()
	stages := make([]sched.Stage, s.NumStages())
	for k := range stages {
		src := s.StageAt(k)
		st := sched.Stage{Out: make([][]int, p), In: make([][]int, p), OutBytes: make([][]int, p)}
		for i := 0; i < p; i++ {
			for n, dst := range src.Out[i] {
				st.Out[perm[i]] = append(st.Out[perm[i]], perm[dst])
				size := 0
				if src.OutBytes != nil && src.OutBytes[i] != nil {
					size = src.OutBytes[i][n]
				}
				st.OutBytes[perm[i]] = append(st.OutBytes[perm[i]], size)
			}
		}
		// Rebuild the in-edges in the evaluator's row-major out-scan order.
		for i := 0; i < p; i++ {
			for _, dst := range st.Out[i] {
				st.In[dst] = append(st.In[dst], i)
			}
		}
		stages[k] = st
	}
	return &sched.StaticStages{Procs: p, Stages: stages}
}

// TestCollapsePermutationProperty is the property behind the collapse: on a
// pairwise-uniform machine the evaluation is equivariant under rank
// relabeling, so running a randomly permuted dissemination schedule must
// yield exactly the original times with the ranks permuted.
func TestCollapsePermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{16, 64, 96} {
		m, err := platform.FlatClusterMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		s, err := barrier.StreamDissemination(p)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sched.RunSchedule(context.Background(), m, s, 2, simnet.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(p)
			permuted := permuteSchedule(t, s, perm)
			res, err := sched.RunSchedule(context.Background(), m, permuted, 2, simnet.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < p; i++ {
				if res.Times[perm[i]] != base.Times[i] {
					t.Fatalf("p=%d trial %d: times[perm[%d]] = %v, want %v", p, trial, i, res.Times[perm[i]], base.Times[i])
				}
			}
			if res.Messages != base.Messages || res.Bytes != base.Bytes {
				t.Fatalf("p=%d trial %d: traffic %d/%d, want %d/%d", p, trial, res.Messages, res.Bytes, base.Messages, base.Bytes)
			}
		}
	}
}

// TestCollapseFallbackHeterogeneous pins the silent fallback: per-pair
// heterogeneity or a live noise model makes the machine ineligible
// (CollapseClasses returns nil), and evaluation under CollapseAuto is the
// plain per-rank path — identical results to CollapseOff on the same seed.
func TestCollapseFallbackHeterogeneous(t *testing.T) {
	const p = 64
	hetero, err := platform.XeonClusterMachine(p) // HeteroSpread > 0
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := platform.Xeon8x2x4().Machine(p) // NoiseRel > 0
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*platform.Machine{"hetero": hetero, "noisy": noisy.WithRunSeed(11)} {
		s, err := barrier.StreamDissemination(p)
		if err != nil {
			t.Fatal(err)
		}
		if part := sched.CollapseClasses(m, s); part != nil {
			t.Fatalf("%s: CollapseClasses = %v, want nil", name, part)
		}
		runCollapseDiff(t, name+"/dissemination", m, s, true)
	}
}

// cancelSchedule is a long schedule that cancels its context while the
// evaluator is walking its stages, so cancellation must be noticed by the
// per-N-stages check inside one execution, not between executions.
type cancelSchedule struct {
	p, stages, cancelAt int
	cancel              context.CancelFunc
}

func (c *cancelSchedule) NumProcs() int  { return c.p }
func (c *cancelSchedule) NumStages() int { return c.stages }
func (c *cancelSchedule) StageAt(k int) sched.Stage {
	if k == c.cancelAt {
		c.cancel()
	}
	out := make([][]int, c.p)
	in := make([][]int, c.p)
	for i := 0; i < c.p; i++ {
		out[i] = []int{(i + 1) % c.p}
		in[i] = []int{(i - 1 + c.p) % c.p}
	}
	return sched.Stage{Out: out, In: in}
}

// TestRunScheduleMidExecutionCancel pins that a single long execution is
// abortable: the context is cancelled at stage 8 of a 40000-stage schedule,
// and the run must return the concurrent engine's error shape (wrapping
// ErrAborted and the cancellation cause) without walking the remaining
// stages of that same execution.
func TestRunScheduleMidExecutionCancel(t *testing.T) {
	const p = 16
	m, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &cancelSchedule{p: p, stages: 40000, cancelAt: 8, cancel: cancel}
	o := simnet.DefaultOptions()
	o.SymmetryCollapse = simnet.CollapseOff // per-rank width, so the stage check fires well inside the execution
	_, err = sched.RunSchedule(ctx, m, s, 1, o)
	if !errors.Is(err, simnet.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrAborted wrapping context.Canceled, got %v", err)
	}

	// The same schedule against a tiny wall-clock deadline: the in-execution
	// check must convert it to ErrDeadline.
	s2 := &cancelSchedule{p: p, stages: 40000, cancelAt: 40001, cancel: func() {}}
	o2 := simnet.DefaultOptions()
	o2.SymmetryCollapse = simnet.CollapseOff
	o2.Deadline = 1 // nanosecond
	if _, err := sched.RunSchedule(context.Background(), m, s2, 1, o2); !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
}

// TestRunScheduleSteadyStateAllocs pins the arena reuse: once the evaluator
// pool is warm, a RunSchedule evaluation allocates O(1) — the result struct
// and times slice — not O(P) fresh rank states per run.
func TestRunScheduleSteadyStateAllocs(t *testing.T) {
	const p = 1024
	m, err := platform.FlatClusterMachine(p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := barrier.StreamDissemination(p)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		if _, err := sched.RunSchedule(context.Background(), m, s, 1, simnet.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pools
	if allocs := testing.AllocsPerRun(20, run); allocs > 32 {
		t.Errorf("steady-state RunSchedule allocations: %.0f, want <= 32", allocs)
	}
}

package sched

import (
	"encoding/binary"

	"hbsp/internal/fault"
	"hbsp/internal/simnet"
)

// Symmetry-collapsed evaluation: verified patterns at power-of-two rank
// counts (dissemination, total exchange, the circulant collectives) prescribe
// the same stage-local neighborhood to every rank, and on a machine whose
// pair parameters are a pure function of the distance class the LogGP
// recurrence then computes the same numbers P times over. The collapse
// detects rank-equivalence classes — from a generator-emitted Symmetry hint
// or from a structural fingerprint of the stage graph — and evaluates one
// representative rankState per class per stage, replicating clocks, noise
// positions and traffic across the class only at result-assembly time.
// Virtual times, makespan and traffic counters are bit-identical to per-rank
// evaluation (pinned by the cross-engine golden tests); where heterogeneity,
// noise, trace recording or a rank-targeted fault plan breaks the argument,
// evaluation falls back to the per-rank sweep and reports why in
// simnet.Result.Collapse.

// Symmetry is a schedule's declared rank symmetry, the hint streaming
// generators emit for free.
type Symmetry uint8

const (
	// SymNone declares nothing; eligibility falls back to the structural
	// fingerprint of CollapseClasses.
	SymNone Symmetry = iota
	// SymCirculant declares that every stage prescribes a single uniform
	// offset edge i→(i+d) mod P with one uniform payload size — the
	// dissemination, linear-shift total-exchange and ring-allgather shape.
	// On a machine with uniform off-diagonal pairs all ranks then form one
	// equivalence class. The hint is trusted: only emit it for schedules
	// that actually have this shape (the generators in internal/barrier and
	// the Circulant type emit it by construction).
	SymCirculant
)

// SymmetricSchedule is the optional capability a Schedule implements to
// declare its rank symmetry.
type SymmetricSchedule interface {
	Symmetry() Symmetry
}

// SymmetricMachine is the optional capability a machine implements to expose
// the homogeneity structure of its pair parameters (platform.Machine
// implements it from its profile and placement).
type SymmetricMachine interface {
	// HomogeneousClasses reports whether the pair parameters (latency, gap,
	// beta, overhead) are a pure function of the pair's distance class and
	// the noise stream is identically 1 — no per-pair heterogeneity spread,
	// no run-to-run jitter. This is the precondition of every collapse.
	HomogeneousClasses() bool
	// PairClass returns the distance class of the pair (i, j); on a machine
	// with HomogeneousClasses, pairs of equal class have bit-identical
	// parameters in both directions.
	PairClass(i, j int) uint8
	// UniformPairs reports whether additionally every off-diagonal pair has
	// the same class and crosses NICs (one rank per node): all ranks are
	// interchangeable, so a circulant schedule collapses to one class.
	UniformPairs() bool
}

// Partition is a rank-equivalence partition: ClassOf maps each rank to its
// class, Reps holds the representative (lowest) rank of each class, and Size
// the class cardinalities.
type Partition struct {
	ClassOf []int32
	Reps    []int32
	Size    []int64
}

// NumClasses returns the number of equivalence classes.
func (pt *Partition) NumClasses() int { return len(pt.Reps) }

// refinement cost guards: the structural fingerprint is only attempted when
// per-rank evaluation is affordable anyway (it is the correctness baseline at
// these sizes) and the stage graph is small enough that the fixpoint pass
// never dominates the evaluation it is trying to save.
const (
	maxRefineProcs  = 1 << 12
	maxRefineWork   = 1 << 22 // stages × ranks
	maxRefinePasses = 32
)

// CollapseClasses detects the rank-equivalence classes of the schedule on
// the machine, or returns nil when collapsed evaluation does not apply (the
// caller then evaluates per rank). Two tiers exist:
//
//   - Hint: a SymCirculant schedule on a machine with uniform off-diagonal
//     pairs collapses to a single class in O(1) — the path that carries
//     P=1M evaluations.
//   - Structural: otherwise the stage graph is fingerprinted rank by rank
//     (out-edges as ordered (pair class, destination class, size) tuples,
//     in-edges as ordered (source class, position in the source's out-row,
//     pair class, size) tuples) and refined to a fixpoint. Exact signatures,
//     not hashes: a collision would silently corrupt virtual times.
//
// The returned partition is valid for any number of consecutive executions
// from class-aligned entry states (equal clock, port and noise-stream state
// within each class): the fingerprint guarantees equivalent ranks perform
// equivalent operation sequences, so alignment is preserved inductively.
func CollapseClasses(m simnet.Machine, s Schedule) *Partition {
	part, _ := CollapseClassesWith(m, s, nil)
	return part
}

// CollapseClassesWith is CollapseClasses under a compiled fault plan, and
// additionally reports the decision as a simnet.Collapse diagnostic. A
// rank-uniform plan (class- or wildcard-matched link degradations only)
// preserves the hint tier; any rank-targeted treatment — stragglers,
// fail-stops, per-rank link rules — seeds the structural refinement with
// per-rank fault fingerprints and folds per-edge degradation masks into the
// edge signatures, so degraded ranks split into their own (often singleton)
// classes and everything else still collapses. When refinement fails under a
// rank-targeted plan the reported reason is CollapseReasonFault.
func CollapseClassesWith(m simnet.Machine, s Schedule, rt *fault.Runtime) (*Partition, simnet.Collapse) {
	if m == nil || s == nil {
		return nil, simnet.Collapse{Reason: simnet.CollapseReasonAsymmetric}
	}
	p := s.NumProcs()
	if p < 2 {
		return nil, simnet.Collapse{Reason: simnet.CollapseReasonAsymmetric}
	}
	sm, ok := m.(SymmetricMachine)
	if !ok || !sm.HomogeneousClasses() {
		reason := simnet.CollapseReasonHetero
		if ir, ok := m.(interface{ InhomogeneityReason() string }); ok {
			if r := ir.InhomogeneityReason(); r != "" {
				reason = r
			}
		}
		return nil, simnet.Collapse{Reason: reason}
	}
	uniformFaults := rt == nil || rt.Uniform()
	if ss, ok := s.(SymmetricSchedule); ok && ss.Symmetry() == SymCirculant && sm.UniformPairs() && uniformFaults {
		return uniformPartition(p), simnet.Collapse{Applied: true, Classes: 1}
	}
	part := refineClasses(sm, s, rt)
	if part == nil {
		reason := simnet.CollapseReasonAsymmetric
		if !uniformFaults {
			reason = simnet.CollapseReasonFault
		}
		return nil, simnet.Collapse{Reason: reason}
	}
	return part, simnet.Collapse{Applied: true, Classes: part.NumClasses()}
}

// uniformPartition is the single-class partition of the hint tier.
func uniformPartition(p int) *Partition {
	return &Partition{
		ClassOf: make([]int32, p),
		Reps:    []int32{0},
		Size:    []int64{int64(p)},
	}
}

// refineClasses runs the structural fixpoint refinement. Starting from one
// class — or, under a fault plan, from the partition induced by per-rank
// fault fingerprints, so a straggling or failing rank can never share a class
// with a healthy one — every pass re-signs each rank per stage against the
// current partition and splits classes whose members disagree; refinement
// never merges, so a pass with no splits is a fixpoint and the partition is
// returned. Rank-targeted link degradations refine per edge: each edge's
// signature carries the bitmask of matching link rules, which separates ranks
// whose corresponding edges are treated differently even when the ranks
// themselves carry identical fault fingerprints. Schedules that refine to
// all-singleton classes (trees, rings, token patterns — anything whose ranks
// genuinely evolve differently), or that are too large to fingerprint
// cheaply, return nil.
func refineClasses(sm SymmetricMachine, s Schedule, rt *fault.Runtime) *Partition {
	p := s.NumProcs()
	stages := s.NumStages()
	if p > maxRefineProcs || stages <= 0 || stages*p > maxRefineWork {
		return nil
	}
	classOf := make([]int32, p)
	next := make([]int32, p)
	nclasses := 1
	ids := make(map[string]int32, p)
	var sig []byte
	edgeSigs := rt != nil && rt.HasLinks()
	if rt != nil {
		// Seed from fault fingerprints, numbered in first-seen rank order so
		// buildPartition's lowest-rank-representative invariant holds.
		for r := 0; r < p; r++ {
			sig = rt.AppendFingerprint(sig[:0], r)
			id, ok := ids[string(sig)]
			if !ok {
				id = int32(len(ids))
				ids[string(sig)] = id
			}
			classOf[r] = id
		}
		nclasses = len(ids)
		if nclasses == p {
			return nil
		}
	}
	for pass := 0; pass < maxRefinePasses; pass++ {
		split := false
		for sg := 0; sg < stages; sg++ {
			st := s.StageAt(sg)
			for k := range ids {
				delete(ids, k)
			}
			assigned := int32(0)
			for r := 0; r < p; r++ {
				sig = binary.AppendUvarint(sig[:0], uint64(classOf[r]))
				for k, dst := range st.Out[r] {
					size := 0
					if st.OutBytes != nil {
						size = st.OutBytes[r][k]
					}
					sig = binary.AppendUvarint(sig, uint64(sm.PairClass(r, dst)))
					sig = binary.AppendUvarint(sig, uint64(classOf[dst]))
					sig = binary.AppendUvarint(sig, uint64(size))
					if edgeSigs {
						sig = binary.AppendUvarint(sig, rt.EdgeSig(r, dst))
					}
				}
				sig = append(sig, 0xff)
				for _, src := range st.In[r] {
					k := outPosition(st.Out[src], r)
					size := 0
					if st.OutBytes != nil {
						size = st.OutBytes[src][k]
					}
					sig = binary.AppendUvarint(sig, uint64(classOf[src]))
					sig = binary.AppendUvarint(sig, uint64(k))
					sig = binary.AppendUvarint(sig, uint64(sm.PairClass(src, r)))
					sig = binary.AppendUvarint(sig, uint64(size))
					if edgeSigs {
						sig = binary.AppendUvarint(sig, rt.EdgeSig(src, r))
					}
				}
				id, ok := ids[string(sig)]
				if !ok {
					id = assigned
					assigned++
					ids[string(sig)] = id
				}
				next[r] = id
			}
			// Refinement only ever subdivides: an unchanged class count
			// means the partition (canonically numbered in first-seen rank
			// order) is unchanged by this stage.
			if int(assigned) != nclasses {
				split = true
				nclasses = int(assigned)
			}
			classOf, next = next, classOf
			if nclasses == p {
				return nil
			}
		}
		if !split {
			return buildPartition(classOf, nclasses)
		}
		if pass == 0 && nclasses > p/2 {
			// Barely any sharing: per-rank evaluation is cheaper than
			// class-indexed bookkeeping.
			return nil
		}
	}
	return nil
}

// outPosition returns the index of dst in the out-row — the positional slot
// the in-edge ordering contract matches arrivals by.
func outPosition(out []int, dst int) int {
	for k, d := range out {
		if d == dst {
			return k
		}
	}
	return -1
}

// buildPartition assembles representatives and sizes from a class map whose
// ids are numbered in first-seen rank order (so each rep is its class's
// lowest rank).
func buildPartition(classOf []int32, nclasses int) *Partition {
	pt := &Partition{
		ClassOf: append([]int32(nil), classOf...),
		Reps:    make([]int32, nclasses),
		Size:    make([]int64, nclasses),
	}
	for c := range pt.Reps {
		pt.Reps[c] = -1
	}
	for r, c := range classOf {
		if pt.Reps[c] < 0 {
			pt.Reps[c] = int32(r)
		}
		pt.Size[c]++
	}
	return pt
}

package stencil

import (
	"errors"
	"fmt"

	"hbsp/internal/barrier"
	"hbsp/internal/core"
	"hbsp/internal/kernels"
	"hbsp/internal/matrix"
	"hbsp/internal/platform"
)

// ModelSetup is the application-specific matrix setup of Fig. 8.8: the
// requirement and cost matrices of one stencil iteration, the pairwise
// communication requirements, and the synchronization cost estimate.
type ModelSetup struct {
	// Superstep is the assembled heterogeneous superstep model.
	Superstep core.Superstep
	// Decomposition is the underlying domain decomposition.
	Decomposition Decomposition
	// SyncCost is the predicted cost of the count-exchange synchronization.
	SyncCost float64
}

// BuildModel assembles the framework's matrices for one iteration of the BSP
// stencil on the given platform and process count (the predictor program of
// Fig. 8.9 evaluates this model). Communication parameters come from the
// supplied barrier params (normally produced by the pairwise benchmark);
// kernel costs come from the platform profile's calibrated rates.
func BuildModel(prof *platform.Profile, params barrier.Params, procs int, cfg Config, overlapFraction float64) (*ModelSetup, error) {
	if prof == nil {
		return nil, errors.New("stencil: nil profile")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if overlapFraction < 0 || overlapFraction > 1 {
		return nil, fmt.Errorf("stencil: overlap fraction %g outside [0,1]", overlapFraction)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Procs() != procs {
		return nil, fmt.Errorf("stencil: params describe %d processes, want %d", params.Procs(), procs)
	}
	d, err := Decompose(cfg.N, procs)
	if err != nil {
		return nil, err
	}
	pl, err := prof.Place(procs)
	if err != nil {
		return nil, err
	}

	// Requirement and cost matrices over two kernels: the stencil update and
	// the pack/unpack copies.
	req := matrix.NewDense(procs, 2)
	cost := matrix.NewDense(procs, 2)
	msgs := matrix.NewDense(procs, procs)
	data := matrix.NewDense(procs, procs)

	var totalDeepFraction float64
	for rank := 0; rank < procs; rank++ {
		rows, cols := d.LocalSize(rank)
		cells := rows * cols
		exchanged := 0
		for dir, nb := range d.Neighbors(rank) {
			if nb < 0 {
				continue
			}
			edgeLen := cols
			if dir == West || dir == East {
				edgeLen = rows
			}
			exchanged += edgeLen
			msgs.Add(rank, nb, 1)
			data.Add(rank, nb, float64(8*edgeLen))
		}
		req.Set(rank, 0, float64(cells))
		req.Set(rank, 1, float64(2*exchanged)) // pack + unpack
		node := pl.NodeOf(rank)
		cost.Set(rank, 0, prof.SecondsPerElement(node, kernels.Stencil5, cells))
		cost.Set(rank, 1, prof.SecondsPerElement(node, kernels.Copy, max(exchanged, 1)))

		deep := 0
		if rows > 2 && cols > 2 {
			deep = (rows - 2) * (cols - 2)
		}
		if cells > 0 {
			frac := float64(deep) / float64(cells)
			if frac > totalDeepFraction {
				totalDeepFraction = frac
			}
		}
	}

	// Synchronization cost: the dissemination count exchange with its
	// doubling payload (Section 6.5).
	diss, err := barrier.Dissemination(procs)
	if err != nil {
		return nil, err
	}
	syncPred, err := barrier.Predict(barrier.WithSyncPayload(diss, 4), params, barrier.DefaultCostOptions())
	if err != nil {
		return nil, err
	}

	setup := &ModelSetup{Decomposition: d, SyncCost: syncPred.Total}
	setup.Superstep = core.Superstep{
		Compute: core.ComputeModel{Requirement: req, Cost: cost},
		Comm: core.CommModel{
			Messages: msgs,
			Latency:  params.Latency,
			Data:     data,
			Beta:     params.Beta,
		},
		SyncCost:     syncPred.Total,
		MaskableComm: 1,
		MaskableComp: overlapFraction * totalDeepFraction,
	}
	return setup, nil
}

// PredictIteration evaluates the model and returns the predicted time of one
// stencil iteration (superstep).
func PredictIteration(prof *platform.Profile, params barrier.Params, procs int, cfg Config, overlapFraction float64) (*core.Prediction, error) {
	setup, err := BuildModel(prof, params, procs, cfg, overlapFraction)
	if err != nil {
		return nil, err
	}
	return setup.Superstep.Predict()
}

// OverlapPoint is one point of the Section 8.6 adaptation sweep.
type OverlapPoint struct {
	// Fraction is the share of the ghost-independent interior computed
	// inside the overlap window.
	Fraction float64
	// Predicted is the model's iteration-time prediction.
	Predicted float64
	// Measured is the simulated iteration time (filled by the experiment
	// harness; zero when only predictions were requested).
	Measured float64
}

// PredictOverlapSweep predicts the iteration time across a sweep of overlap
// fractions (Fig. 8.17/8.18).
func PredictOverlapSweep(prof *platform.Profile, params barrier.Params, procs int, cfg Config, fractions []float64) ([]OverlapPoint, error) {
	out := make([]OverlapPoint, 0, len(fractions))
	for _, f := range fractions {
		pred, err := PredictIteration(prof, params, procs, cfg, f)
		if err != nil {
			return nil, err
		}
		out = append(out, OverlapPoint{Fraction: f, Predicted: pred.Total})
	}
	return out, nil
}

// OptimalOverlap returns the smallest overlap fraction whose predicted
// iteration time is within tolerance of the sweep minimum — the "balanced"
// split of computation around the communication the thesis' model-driven
// optimization selects.
func OptimalOverlap(points []OverlapPoint, tolerance float64) (OverlapPoint, error) {
	if len(points) == 0 {
		return OverlapPoint{}, errors.New("stencil: empty overlap sweep")
	}
	if tolerance <= 0 {
		tolerance = 0.02
	}
	best := points[0].Predicted
	for _, p := range points[1:] {
		if p.Predicted < best {
			best = p.Predicted
		}
	}
	for _, p := range points {
		if p.Predicted <= best*(1+tolerance) {
			return p, nil
		}
	}
	return points[len(points)-1], nil
}

// GroundTruthParams builds barrier cost-model parameters directly from the
// profile's ground-truth matrices; experiments that do not want to spend time
// on the pairwise benchmark use it in place of bench.MeasurePairwise.
func GroundTruthParams(prof *platform.Profile, procs int) (barrier.Params, error) {
	pl, err := prof.Place(procs)
	if err != nil {
		return barrier.Params{}, err
	}
	return barrier.Params{
		Latency:  prof.LatencyMatrix(pl),
		Overhead: prof.OverheadMatrix(pl),
		Beta:     prof.BetaMatrix(pl),
	}, nil
}

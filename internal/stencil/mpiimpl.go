package stencil

import (
	"errors"
	"fmt"

	"hbsp/internal/kernels"
	"hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/topology"
)

const tagHalo = 1 << 12

// runMessagePassing is the shared driver of the MPI-style implementations:
// per iteration the borders are exchanged with non-blocking sends and
// receives, and the sweep is either performed entirely after the exchange
// completes (restructured = false, the plain MPI implementation of
// Section 8.3.2) or the ghost-independent interior is computed between
// posting and completing the exchange (restructured = true, the "MPI+R"
// variant of Table 8.2). computeSpeedup scales the per-rank computation rate
// and models ideal intra-node threading in the hybrid implementation.
func runMessagePassing(m *platform.Machine, cfg Config, restructured bool, computeSpeedup float64, name string) (*RunResult, error) {
	if m == nil {
		return nil, errors.New("stencil: nil machine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if computeSpeedup <= 0 {
		return nil, fmt.Errorf("stencil: compute speedup %g must be positive", computeSpeedup)
	}
	d, err := Decompose(cfg.N, m.Procs())
	if err != nil {
		return nil, err
	}
	checksums := make([]float64, m.Procs())

	res, err := mpi.Run(m, func(c *mpi.Comm) error {
		rank := c.Rank()
		grid := newLocalGrid(d, rank)
		neigh := d.Neighbors(rank)

		compute := func(k kernels.Kernel, cells int) {
			if cells <= 0 {
				return
			}
			c.Compute(m.KernelTime(rank, k, cells) / computeSpeedup)
		}

		deep := grid.deepInteriorCells()
		shadow := grid.interiorCells() - deep

		for it := 0; it < cfg.Iterations; it++ {
			// Post receives first, then sends (the two stages of Fig. 8.3).
			var reqs []*simnet.Request
			exchanged := 0
			for dir := 0; dir < numDirs; dir++ {
				if neigh[dir] >= 0 {
					reqs = append(reqs, c.Irecv(neigh[dir], tagHalo+dir))
				}
			}
			for dir := 0; dir < numDirs; dir++ {
				nb := neigh[dir]
				if nb < 0 {
					continue
				}
				edge := grid.edge(dir)
				exchanged += len(edge)
				// The neighbour receives this edge as its ghost on the
				// opposite side, so it is tagged with that direction.
				reqs = append(reqs, c.Isend(nb, tagHalo+opposite(dir), 8*len(edge), edge))
			}
			compute(kernels.Copy, exchanged)

			if restructured && deep > 0 {
				grid.sweepDeepInterior(d, rank, cfg)
				compute(kernels.Stencil5, deep)
			}

			payloads := c.WaitAll(reqs)
			idx := 0
			for dir := 0; dir < numDirs; dir++ {
				if neigh[dir] < 0 {
					continue
				}
				if values, ok := payloads[idx].([]float64); ok {
					grid.setGhost(dir, values)
				}
				idx++
			}
			compute(kernels.Copy, exchanged)

			if restructured {
				grid.sweepShadow(d, rank, cfg)
				compute(kernels.Stencil5, shadow)
			} else {
				grid.sweepAll(d, rank, cfg)
				compute(kernels.Stencil5, grid.interiorCells())
			}
			grid.swap()
		}
		checksums[rank] = grid.checksum()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return summarize(name, m.Procs(), cfg, res.MakeSpan, checksums), nil
}

// RunMPI executes the plain MPI implementation (blocking border exchange
// followed by the full sweep).
func RunMPI(m *platform.Machine, cfg Config) (*RunResult, error) {
	return runMessagePassing(m, cfg, false, 1, "mpi")
}

// RunMPIRestructured executes the MPI+R variant: the ghost-independent
// interior is computed while the border exchange is in flight.
func RunMPIRestructured(m *platform.Machine, cfg Config) (*RunResult, error) {
	return runMessagePassing(m, cfg, true, 1, "mpi+r")
}

// RunHybrid executes the hybrid implementation of Section 8.3.3: one
// communicating process per node, with the node's cores cooperating on the
// local sweep (modelled as an ideal intra-node speedup scaled by a threading
// efficiency).
func RunHybrid(prof *platform.Profile, nodes int, cfg Config, threadEfficiency float64) (*RunResult, error) {
	if prof == nil {
		return nil, errors.New("stencil: nil profile")
	}
	if nodes < 1 || nodes > prof.Topology.Nodes {
		return nil, fmt.Errorf("stencil: %d nodes requested on a %d-node platform", nodes, prof.Topology.Nodes)
	}
	if threadEfficiency <= 0 || threadEfficiency > 1 {
		return nil, fmt.Errorf("stencil: thread efficiency %g outside (0,1]", threadEfficiency)
	}
	// One rank per node: round-robin placement over `nodes` ranks puts rank
	// i on node i.
	pl, err := prof.PlaceWith(nodes, topology.RoundRobin)
	if err != nil {
		return nil, err
	}
	m := prof.MachineFor(pl)
	speedup := float64(prof.Topology.CoresPerNode()) * threadEfficiency
	return runMessagePassing(m, cfg, true, speedup, "hybrid")
}

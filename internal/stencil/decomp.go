// Package stencil implements Case Study II (Chapter 8): a 5-point Laplacian
// (explicit heat-equation) stencil solved on a 2-D domain decomposition, in
// three variants — a BSP implementation with eagerly committed ghost
// exchanges (overlap-capable), an MPI-style implementation with a blocking
// two-stage border exchange, and a hybrid implementation with one
// communicating rank per node and ideal intra-node threading. The package
// also contains the model setup that predicts iteration times (Figs. 8.8/8.9)
// and the overlap-parameter optimization of Section 8.6.
package stencil

import (
	"errors"
	"fmt"
	"math"
)

// Decomposition is a 2-D block decomposition of an N×N grid over a Px×Py
// process grid.
type Decomposition struct {
	// N is the global grid dimension (the domain is N×N).
	N int
	// Px and Py are the process-grid dimensions; Px*Py processes in total.
	Px, Py int
}

// Decompose chooses the most nearly square process grid for p processes and
// an n×n domain.
func Decompose(n, p int) (Decomposition, error) {
	if n < 3 {
		return Decomposition{}, fmt.Errorf("stencil: grid dimension %d too small", n)
	}
	if p < 1 {
		return Decomposition{}, fmt.Errorf("stencil: need at least one process, got %d", p)
	}
	bestPx := 1
	for px := 1; px*px <= p; px++ {
		if p%px == 0 {
			bestPx = px
		}
	}
	d := Decomposition{N: n, Px: bestPx, Py: p / bestPx}
	if d.Px > d.Py {
		d.Px, d.Py = d.Py, d.Px
	}
	if d.Py > n || d.Px > n {
		return Decomposition{}, fmt.Errorf("stencil: cannot give every one of %d processes at least one row of a %d-point axis", p, n)
	}
	return d, nil
}

// Procs returns the number of processes in the decomposition.
func (d Decomposition) Procs() int { return d.Px * d.Py }

// Coords returns the (x, y) position of a rank in the process grid, with x
// varying fastest.
func (d Decomposition) Coords(rank int) (int, int) {
	return rank % d.Px, rank / d.Px
}

// RankAt returns the rank at process-grid position (x, y), or -1 if the
// position lies outside the grid.
func (d Decomposition) RankAt(x, y int) int {
	if x < 0 || x >= d.Px || y < 0 || y >= d.Py {
		return -1
	}
	return y*d.Px + x
}

// blockRange splits length n into parts chunks and returns the half-open
// range of chunk idx.
func blockRange(n, parts, idx int) (int, int) {
	base := n / parts
	rem := n % parts
	lo := idx*base + min(idx, rem)
	size := base
	if idx < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// LocalSize returns the interior rows and columns owned by a rank.
func (d Decomposition) LocalSize(rank int) (rows, cols int) {
	x, y := d.Coords(rank)
	r0, r1 := blockRange(d.N, d.Py, y)
	c0, c1 := blockRange(d.N, d.Px, x)
	return r1 - r0, c1 - c0
}

// GlobalOrigin returns the global (row, col) of the first interior cell owned
// by a rank.
func (d Decomposition) GlobalOrigin(rank int) (row, col int) {
	x, y := d.Coords(rank)
	r0, _ := blockRange(d.N, d.Py, y)
	c0, _ := blockRange(d.N, d.Px, x)
	return r0, c0
}

// Neighbor directions.
const (
	North = iota
	South
	West
	East
	numDirs
)

// Neighbors returns the neighbouring rank in each direction (-1 at the domain
// boundary), indexed by North/South/West/East.
func (d Decomposition) Neighbors(rank int) [4]int {
	x, y := d.Coords(rank)
	return [4]int{
		North: d.RankAt(x, y-1),
		South: d.RankAt(x, y+1),
		West:  d.RankAt(x-1, y),
		East:  d.RankAt(x+1, y),
	}
}

// Validate checks a decomposition for consistency.
func (d Decomposition) Validate() error {
	if d.N < 3 || d.Px < 1 || d.Py < 1 {
		return fmt.Errorf("stencil: invalid decomposition %+v", d)
	}
	if d.Px > d.N || d.Py > d.N {
		return errors.New("stencil: more processes along an axis than grid points")
	}
	return nil
}

// Config describes one stencil experiment.
type Config struct {
	// N is the global grid dimension.
	N int
	// Iterations is the number of Jacobi sweeps.
	Iterations int
	// C is the diffusion coefficient of the explicit update (stability
	// requires C <= 0.25).
	C float64
	// Synthetic skips the actual floating-point updates (virtual time and
	// message sizes are unaffected); large benchmark sweeps use it to keep
	// host time low.
	Synthetic bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 3 {
		return fmt.Errorf("stencil: grid dimension %d too small", c.N)
	}
	if c.Iterations < 1 {
		return errors.New("stencil: need at least one iteration")
	}
	if c.C <= 0 || c.C > 0.25 {
		return fmt.Errorf("stencil: diffusion coefficient %g outside (0, 0.25]", c.C)
	}
	return nil
}

// initialValue is the deterministic initial condition used by every
// implementation so their results can be compared cell by cell: a smooth bump
// plus a hot plate on part of the northern boundary.
func initialValue(n, row, col int) float64 {
	if row == 0 && col >= n/4 && col < 3*n/4 {
		return 100
	}
	x := float64(col) / float64(n-1)
	y := float64(row) / float64(n-1)
	return 25 * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
}

// localGrid holds a rank's interior cells surrounded by a one-cell ghost
// frame, stored row-major with stride cols+2.
type localGrid struct {
	rows, cols int
	cur, next  []float64
}

func newLocalGrid(d Decomposition, rank int) *localGrid {
	rows, cols := d.LocalSize(rank)
	g := &localGrid{rows: rows, cols: cols}
	g.cur = make([]float64, (rows+2)*(cols+2))
	g.next = make([]float64, (rows+2)*(cols+2))
	gr, gc := d.GlobalOrigin(rank)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.cur[g.index(r, c)] = initialValue(d.N, gr+r, gc+c)
		}
	}
	copy(g.next, g.cur)
	return g
}

// index maps interior coordinates (0-based, excluding ghosts) to the backing
// slice.
func (g *localGrid) index(r, c int) int { return (r+1)*(g.cols+2) + (c + 1) }

// interiorCells returns the number of cells owned by the rank.
func (g *localGrid) interiorCells() int { return g.rows * g.cols }

// borderCells returns the number of owned cells adjacent to a ghost edge.
func (g *localGrid) borderCells() int {
	if g.rows == 1 || g.cols == 1 {
		return g.rows * g.cols
	}
	return 2*g.cols + 2*(g.rows-2)
}

// edge extracts the owned cells adjacent to the given side, in row/column
// order, for sending to the neighbour in that direction.
func (g *localGrid) edge(dir int) []float64 {
	switch dir {
	case North:
		out := make([]float64, g.cols)
		for c := 0; c < g.cols; c++ {
			out[c] = g.cur[g.index(0, c)]
		}
		return out
	case South:
		out := make([]float64, g.cols)
		for c := 0; c < g.cols; c++ {
			out[c] = g.cur[g.index(g.rows-1, c)]
		}
		return out
	case West:
		out := make([]float64, g.rows)
		for r := 0; r < g.rows; r++ {
			out[r] = g.cur[g.index(r, 0)]
		}
		return out
	case East:
		out := make([]float64, g.rows)
		for r := 0; r < g.rows; r++ {
			out[r] = g.cur[g.index(r, g.cols-1)]
		}
		return out
	default:
		panic(fmt.Sprintf("stencil: invalid direction %d", dir))
	}
}

// setGhost installs values received from the neighbour in the given direction
// into the ghost frame.
func (g *localGrid) setGhost(dir int, values []float64) {
	switch dir {
	case North:
		for c := 0; c < g.cols && c < len(values); c++ {
			g.cur[(0)*(g.cols+2)+(c+1)] = values[c]
		}
	case South:
		for c := 0; c < g.cols && c < len(values); c++ {
			g.cur[(g.rows+1)*(g.cols+2)+(c+1)] = values[c]
		}
	case West:
		for r := 0; r < g.rows && r < len(values); r++ {
			g.cur[(r+1)*(g.cols+2)+0] = values[r]
		}
	case East:
		for r := 0; r < g.rows && r < len(values); r++ {
			g.cur[(r+1)*(g.cols+2)+(g.cols+1)] = values[r]
		}
	default:
		panic(fmt.Sprintf("stencil: invalid direction %d", dir))
	}
}

// sweep applies the Jacobi update to owned cells with row indices [r0, r1)
// and column indices [c0, c1), writing into next. Cells on the global domain
// boundary keep their (Dirichlet) values.
func (g *localGrid) sweep(d Decomposition, rank int, cfg Config, r0, r1, c0, c1 int) {
	if cfg.Synthetic {
		return
	}
	gr, gc := d.GlobalOrigin(rank)
	stride := g.cols + 2
	for r := r0; r < r1; r++ {
		globalRow := gr + r
		for c := c0; c < c1; c++ {
			idx := g.index(r, c)
			globalCol := gc + c
			if globalRow == 0 || globalRow == d.N-1 || globalCol == 0 || globalCol == d.N-1 {
				g.next[idx] = g.cur[idx]
				continue
			}
			g.next[idx] = g.cur[idx] + cfg.C*(g.cur[idx-stride]+g.cur[idx+stride]+g.cur[idx-1]+g.cur[idx+1]-4*g.cur[idx])
		}
	}
}

// sweepAll updates every owned cell.
func (g *localGrid) sweepAll(d Decomposition, rank int, cfg Config) {
	g.sweep(d, rank, cfg, 0, g.rows, 0, g.cols)
}

// sweepDeepInterior updates the owned cells that do not touch the ghost
// frame; these are the cells whose update never needs freshly received ghost
// values and may therefore be computed while communication is in flight.
func (g *localGrid) sweepDeepInterior(d Decomposition, rank int, cfg Config) {
	if g.rows <= 2 || g.cols <= 2 {
		return
	}
	g.sweep(d, rank, cfg, 1, g.rows-1, 1, g.cols-1)
}

// sweepShadow updates the owned cells adjacent to the ghost frame (the shadow
// cell regions of Fig. 8.16), which require the neighbours' freshly received
// border values.
func (g *localGrid) sweepShadow(d Decomposition, rank int, cfg Config) {
	if g.rows <= 2 || g.cols <= 2 {
		g.sweepAll(d, rank, cfg)
		return
	}
	g.sweep(d, rank, cfg, 0, 1, 0, g.cols)               // north row
	g.sweep(d, rank, cfg, g.rows-1, g.rows, 0, g.cols)   // south row
	g.sweep(d, rank, cfg, 1, g.rows-1, 0, 1)             // west column
	g.sweep(d, rank, cfg, 1, g.rows-1, g.cols-1, g.cols) // east column
}

// deepInteriorCells returns the number of cells sweepDeepInterior updates.
func (g *localGrid) deepInteriorCells() int {
	if g.rows <= 2 || g.cols <= 2 {
		return 0
	}
	return (g.rows - 2) * (g.cols - 2)
}

// swap exchanges the current and next buffers after a completed sweep.
func (g *localGrid) swap() { g.cur, g.next = g.next, g.cur }

// checksum returns the sum of the owned cells; identical decompositions and
// iteration counts must give identical checksums across implementations.
func (g *localGrid) checksum() float64 {
	sum := 0.0
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			sum += g.cur[g.index(r, c)]
		}
	}
	return sum
}

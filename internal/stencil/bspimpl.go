package stencil

import (
	"errors"
	"fmt"

	"hbsp/internal/bsp"
	"hbsp/internal/kernels"
	"hbsp/internal/platform"
	"hbsp/internal/stats"
)

// RunResult summarizes one stencil run.
type RunResult struct {
	// Implementation names the variant ("bsp", "mpi", "mpi+r", "hybrid").
	Implementation string
	// Procs is the number of communicating processes.
	Procs int
	// Iterations is the number of Jacobi sweeps performed.
	Iterations int
	// WallTime is the simulated wall-clock time of the whole run (slowest
	// process).
	WallTime float64
	// PerIteration is WallTime divided by Iterations.
	PerIteration float64
	// Checksum is the sum of all grid cells after the final sweep; identical
	// configurations must produce identical checksums across
	// implementations (up to floating-point summation order).
	Checksum float64
}

var ghostNames = [numDirs]string{North: "ghostN", South: "ghostS", West: "ghostW", East: "ghostE"}

// opposite returns the direction opposite to dir.
func opposite(dir int) int {
	switch dir {
	case North:
		return South
	case South:
		return North
	case West:
		return East
	case East:
		return West
	}
	panic(fmt.Sprintf("stencil: invalid direction %d", dir))
}

// RunBSP executes the BSP implementation: ghost edges are committed with
// one-sided puts at the start of each iteration, a tunable fraction of the
// ghost-independent interior is computed before the synchronization (the
// overlap window), and the shadow regions are completed afterwards.
// overlapFraction = 1 is the implementation of Section 8.3.1; smaller values
// shrink the overlap window and are used by the Section 8.6 adaptation study.
func RunBSP(m *platform.Machine, cfg Config, overlapFraction float64) (*RunResult, error) {
	if m == nil {
		return nil, errors.New("stencil: nil machine")
	}
	checksums := make([]float64, m.Procs())
	body, err := BSPProgram(m.Procs(), cfg, overlapFraction, checksums)
	if err != nil {
		return nil, err
	}
	res, err := bsp.Run(m, body)
	if err != nil {
		return nil, err
	}
	return summarize("bsp", m.Procs(), cfg, res.MakeSpan, checksums), nil
}

// BSPProgram returns the BSP body of the Jacobi kernel as a standalone
// bsp.Program, so callers that need run-level plumbing (contexts, seeds,
// fault plans, trace recorders) can execute it through their own session
// instead of the bare bsp.Run wrapper RunBSP uses. checksums, when non-nil,
// must have procs entries and receives each rank's final grid checksum.
func BSPProgram(procs int, cfg Config, overlapFraction float64, checksums []float64) (bsp.Program, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if overlapFraction < 0 || overlapFraction > 1 {
		return nil, fmt.Errorf("stencil: overlap fraction %g outside [0,1]", overlapFraction)
	}
	d, err := Decompose(cfg.N, procs)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if checksums != nil && len(checksums) != procs {
		return nil, fmt.Errorf("stencil: checksum slice has %d entries, want %d", len(checksums), procs)
	}

	return func(ctx *bsp.Ctx) error {
		rank := ctx.Pid()
		grid := newLocalGrid(d, rank)
		neigh := d.Neighbors(rank)

		// Register one contiguous ghost landing buffer per direction.
		ghosts := make([][]float64, numDirs)
		for dir := 0; dir < numDirs; dir++ {
			size := grid.cols
			if dir == West || dir == East {
				size = grid.rows
			}
			ghosts[dir] = make([]float64, size)
			ctx.PushReg(ghostNames[dir], ghosts[dir])
		}
		if err := ctx.Sync(); err != nil {
			return err
		}

		deep := grid.deepInteriorCells()
		shadow := grid.interiorCells() - deep
		early := int(float64(deep) * overlapFraction)
		late := deep - early

		for it := 0; it < cfg.Iterations; it++ {
			// Commit the border exchange as early as possible: my edge in
			// direction dir becomes the neighbour's ghost on the opposite
			// side.
			exchanged := 0
			for dir := 0; dir < numDirs; dir++ {
				nb := neigh[dir]
				if nb < 0 {
					continue
				}
				edge := grid.edge(dir)
				exchanged += len(edge)
				if err := ctx.Put(nb, ghostNames[opposite(dir)], 0, edge); err != nil {
					return err
				}
			}
			ctx.ComputeKernel(kernels.Copy, exchanged, 1) // packing cost

			// Overlap window: ghost-independent interior work.
			if early > 0 {
				grid.sweep(d, rank, cfg, 1, 1+earlyRows(grid, early), 1, grid.cols-1)
				ctx.ComputeKernel(kernels.Stencil5, early, 1)
			}

			if err := ctx.Sync(); err != nil {
				return err
			}

			// Install the received ghosts and finish the sweep.
			for dir := 0; dir < numDirs; dir++ {
				if neigh[dir] >= 0 {
					grid.setGhost(dir, ghosts[dir])
				}
			}
			ctx.ComputeKernel(kernels.Copy, exchanged, 1) // unpacking cost
			if late > 0 {
				grid.sweep(d, rank, cfg, 1+earlyRows(grid, early), grid.rows-1, 1, grid.cols-1)
				ctx.ComputeKernel(kernels.Stencil5, late, 1)
			}
			grid.sweepShadow(d, rank, cfg)
			ctx.ComputeKernel(kernels.Stencil5, shadow, 1)
			grid.swap()
		}
		if checksums != nil {
			checksums[rank] = grid.checksum()
		}
		return nil
	}, nil
}

// earlyRows converts a cell budget into a number of complete deep-interior
// rows (the sweep granularity of the overlap window).
func earlyRows(g *localGrid, earlyCells int) int {
	if g.cols <= 2 {
		return 0
	}
	rows := earlyCells / (g.cols - 2)
	if rows > g.rows-2 {
		rows = g.rows - 2
	}
	return rows
}

func summarize(impl string, procs int, cfg Config, wall float64, checksums []float64) *RunResult {
	sum := 0.0
	for _, c := range checksums {
		sum += c
	}
	return &RunResult{
		Implementation: impl,
		Procs:          procs,
		Iterations:     cfg.Iterations,
		WallTime:       wall,
		PerIteration:   wall / float64(cfg.Iterations),
		Checksum:       sum,
	}
}

// MeasureBSP runs the BSP implementation several times and reports the median
// per-iteration time, following the thesis' repetition methodology.
func MeasureBSP(m *platform.Machine, cfg Config, overlapFraction float64, reps int) (*RunResult, error) {
	if reps < 1 {
		reps = 1
	}
	var perIter []float64
	var last *RunResult
	for r := 0; r < reps; r++ {
		res, err := RunBSP(m.WithRunSeed(int64(1000+r)), cfg, overlapFraction)
		if err != nil {
			return nil, err
		}
		perIter = append(perIter, res.PerIteration)
		last = res
	}
	med, err := stats.Median(perIter)
	if err != nil {
		return nil, err
	}
	out := *last
	out.PerIteration = med
	out.WallTime = med * float64(cfg.Iterations)
	return &out, nil
}

package stencil

import (
	"math"
	"testing"
	"testing/quick"

	"hbsp/internal/platform"
)

func TestDecompose(t *testing.T) {
	d, err := Decompose(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px*d.Py != 16 || d.Px != 4 || d.Py != 4 {
		t.Fatalf("Decompose(256,16) = %+v", d)
	}
	d, err = Decompose(100, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.Px*d.Py != 6 || d.Px > d.Py {
		t.Fatalf("Decompose(100,6) = %+v", d)
	}
	if _, err := Decompose(2, 4); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := Decompose(100, 0); err == nil {
		t.Error("zero processes should fail")
	}
}

func TestLocalSizesCoverDomain(t *testing.T) {
	d, _ := Decompose(101, 12)
	total := 0
	for r := 0; r < d.Procs(); r++ {
		rows, cols := d.LocalSize(r)
		if rows < 1 || cols < 1 {
			t.Fatalf("rank %d has empty block %dx%d", r, rows, cols)
		}
		total += rows * cols
	}
	if total != 101*101 {
		t.Fatalf("blocks cover %d cells, want %d", total, 101*101)
	}
}

func TestNeighborsSymmetric(t *testing.T) {
	d, _ := Decompose(64, 8)
	for r := 0; r < d.Procs(); r++ {
		nb := d.Neighbors(r)
		if east := nb[East]; east >= 0 {
			if d.Neighbors(east)[West] != r {
				t.Fatalf("east/west neighbours not symmetric at rank %d", r)
			}
		}
		if south := nb[South]; south >= 0 {
			if d.Neighbors(south)[North] != r {
				t.Fatalf("north/south neighbours not symmetric at rank %d", r)
			}
		}
	}
	x, y := d.Coords(0)
	if x != 0 || y != 0 {
		t.Fatalf("Coords(0) = %d,%d", x, y)
	}
	if d.RankAt(-1, 0) != -1 || d.RankAt(0, 99) != -1 {
		t.Fatal("out-of-grid RankAt should be -1")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{N: 64, Iterations: 2, C: 0.25}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{N: 2, Iterations: 1, C: 0.2},
		{N: 64, Iterations: 0, C: 0.2},
		{N: 64, Iterations: 1, C: 0},
		{N: 64, Iterations: 1, C: 0.3},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func quietProfile() *platform.Profile {
	p := platform.Xeon8x2x4()
	p.NoiseRel = 0
	return p
}

// serialReference runs the stencil on a single process and returns its
// checksum: the parallel results of every implementation must match it.
func serialReference(t *testing.T, cfg Config) float64 {
	t.Helper()
	prof := quietProfile()
	m, err := prof.Machine(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunMPI(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.Checksum
}

func TestImplementationsAgreeWithSerialReference(t *testing.T) {
	cfg := Config{N: 48, Iterations: 3, C: 0.2}
	want := serialReference(t, cfg)
	prof := quietProfile()
	m, err := prof.Machine(8)
	if err != nil {
		t.Fatal(err)
	}

	bspRes, err := RunBSP(m, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := RunMPI(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mpirRes, err := RunMPIRestructured(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hybRes, err := RunHybrid(prof, 4, cfg, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*RunResult{bspRes, mpiRes, mpirRes, hybRes} {
		if rel := math.Abs(res.Checksum-want) / math.Abs(want); rel > 1e-9 {
			t.Errorf("%s checksum %g differs from serial reference %g", res.Implementation, res.Checksum, want)
		}
		if res.WallTime <= 0 || res.PerIteration <= 0 {
			t.Errorf("%s has non-positive times: %+v", res.Implementation, res)
		}
	}
	// Partial overlap windows must not change the numerics either.
	partial, err := RunBSP(m, cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(partial.Checksum-want) / math.Abs(want); rel > 1e-9 {
		t.Errorf("partial-overlap BSP checksum %g differs from %g", partial.Checksum, want)
	}
}

func TestValidationErrors(t *testing.T) {
	prof := quietProfile()
	m, _ := prof.Machine(4)
	cfg := Config{N: 48, Iterations: 1, C: 0.2}
	if _, err := RunBSP(nil, cfg, 1); err == nil {
		t.Error("nil machine should fail")
	}
	if _, err := RunBSP(m, Config{}, 1); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := RunBSP(m, cfg, 1.5); err == nil {
		t.Error("bad overlap fraction should fail")
	}
	if _, err := RunMPI(nil, cfg); err == nil {
		t.Error("nil machine should fail for MPI")
	}
	if _, err := RunHybrid(nil, 2, cfg, 0.9); err == nil {
		t.Error("nil profile should fail")
	}
	if _, err := RunHybrid(prof, 99, cfg, 0.9); err == nil {
		t.Error("too many nodes should fail")
	}
	if _, err := RunHybrid(prof, 2, cfg, 1.5); err == nil {
		t.Error("bad thread efficiency should fail")
	}
	if _, err := runMessagePassing(m, cfg, false, 0, "x"); err == nil {
		t.Error("zero speedup should fail")
	}
}

func TestOverlapImprovesBSPOverMPI(t *testing.T) {
	// With a communication-heavy configuration the overlap-capable variants
	// must not lose to the blocking MPI implementation by any margin, and
	// the restructured variant should win visibly.
	cfg := Config{N: 96, Iterations: 4, C: 0.2, Synthetic: true}
	prof := quietProfile()
	m, err := prof.Machine(16)
	if err != nil {
		t.Fatal(err)
	}
	mpiRes, err := RunMPI(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mpirRes, err := RunMPIRestructured(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mpirRes.PerIteration > mpiRes.PerIteration*1.05 {
		t.Errorf("MPI+R (%g) should not be slower than MPI (%g)", mpirRes.PerIteration, mpiRes.PerIteration)
	}
}

func TestStrongScalingImprovesWallTime(t *testing.T) {
	// The problem must be large enough for computation to dominate the
	// communication and synchronization costs, otherwise strong scaling
	// stalls (exactly the A-series observation for small problems).
	cfg := Config{N: 1536, Iterations: 2, C: 0.2, Synthetic: true}
	prof := quietProfile()
	var prev float64
	for i, procs := range []int{1, 4, 16} {
		m, err := prof.Machine(procs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBSP(m, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.WallTime >= prev {
			t.Errorf("no speedup from %d processes: %g >= %g", procs, res.WallTime, prev)
		}
		prev = res.WallTime
	}
}

func TestPredictionTracksMeasurement(t *testing.T) {
	// Chapter 8's B-series claim: the model predicts the BSP stencil's
	// iteration time to within a modest factor.
	cfg := Config{N: 256, Iterations: 3, C: 0.2, Synthetic: true}
	prof := quietProfile()
	const procs = 16
	m, err := prof.Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	params, err := GroundTruthParams(prof, procs)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictIteration(prof, params, procs, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := RunBSP(m, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pred.Total / meas.PerIteration
	if ratio < 0.33 || ratio > 3 {
		t.Fatalf("prediction %g vs measurement %g (ratio %.2f)", pred.Total, meas.PerIteration, ratio)
	}
}

func TestBuildModelValidation(t *testing.T) {
	prof := quietProfile()
	params, err := GroundTruthParams(prof, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 64, Iterations: 1, C: 0.2}
	if _, err := BuildModel(nil, params, 4, cfg, 1); err == nil {
		t.Error("nil profile should fail")
	}
	if _, err := BuildModel(prof, params, 4, Config{}, 1); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := BuildModel(prof, params, 4, cfg, 2); err == nil {
		t.Error("bad fraction should fail")
	}
	if _, err := BuildModel(prof, params, 8, cfg, 1); err == nil {
		t.Error("params/procs mismatch should fail")
	}
	setup, err := BuildModel(prof, params, 4, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if setup.SyncCost <= 0 {
		t.Error("sync cost should be positive")
	}
}

func TestOverlapSweepAndOptimum(t *testing.T) {
	prof := quietProfile()
	const procs = 16
	params, err := GroundTruthParams(prof, procs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 256, Iterations: 1, C: 0.2}
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	points, err := PredictOverlapSweep(prof, params, procs, cfg, fractions)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(fractions) {
		t.Fatalf("got %d points", len(points))
	}
	// Larger overlap windows can only help in the model.
	for i := 1; i < len(points); i++ {
		if points[i].Predicted > points[i-1].Predicted*1.0001 {
			t.Errorf("prediction increased with overlap: %v", points)
		}
	}
	best, err := OptimalOverlap(points, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if best.Fraction < 0 || best.Fraction > 1 {
		t.Fatalf("optimal fraction %g out of range", best.Fraction)
	}
	if _, err := OptimalOverlap(nil, 0.05); err == nil {
		t.Error("empty sweep should fail")
	}
}

func TestMeasureBSPMedian(t *testing.T) {
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0.03
	m, err := prof.Machine(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 64, Iterations: 2, C: 0.2, Synthetic: true}
	res, err := MeasureBSP(m, cfg, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIteration <= 0 || res.WallTime <= 0 {
		t.Fatalf("bad measurement %+v", res)
	}
}

// Property: every decomposition partitions the domain exactly and neighbour
// relations stay inside the process grid.
func TestDecompositionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 16
		p := int(pRaw%32) + 1
		d, err := Decompose(n, p)
		if err != nil {
			// Degenerate combinations (more processes along an axis than
			// grid rows) are rejected rather than decomposed.
			return true
		}
		if d.Procs() != p {
			return false
		}
		total := 0
		for r := 0; r < p; r++ {
			rows, cols := d.LocalSize(r)
			if rows < 1 || cols < 1 {
				return false
			}
			total += rows * cols
			for _, nb := range d.Neighbors(r) {
				if nb >= p {
					return false
				}
			}
		}
		return total == n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

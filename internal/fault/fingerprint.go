package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Fingerprint returns a stable content hash of the plan. Rules are hashed in
// a canonical sort order — slowdowns by (rank, start), link rules by (src,
// dst, class, start), fail-stops by rank — so two plans describing the same
// scenario hash identically regardless of the order their rule slices were
// assembled in, and across processes. Together with the machine profile's
// fingerprint this forms the cache key of the prediction service: an empty
// (or nil) plan hashes to a fixed "no faults" value, and any rule change
// changes the hash.
func (p *Plan) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte("hbsp/fault.Plan/v1"))
	if p.Empty() {
		return hex.EncodeToString(h.Sum(nil))
	}
	u64(uint64(p.Seed))

	slow := append([]Slowdown(nil), p.Slowdowns...)
	sort.Slice(slow, func(a, b int) bool {
		if slow[a].Rank != slow[b].Rank {
			return slow[a].Rank < slow[b].Rank
		}
		return slow[a].Start < slow[b].Start
	})
	u64(uint64(len(slow)))
	for _, s := range slow {
		u64(uint64(s.Rank))
		f64(s.Factor)
		f64(s.Jitter)
		f64(s.Start)
		f64(s.End)
	}

	links := append([]LinkRule(nil), p.Links...)
	sort.Slice(links, func(a, b int) bool {
		x, y := links[a], links[b]
		if x.Src != y.Src {
			return x.Src < y.Src
		}
		if x.Dst != y.Dst {
			return x.Dst < y.Dst
		}
		if x.Class != y.Class {
			return x.Class < y.Class
		}
		return x.Start < y.Start
	})
	u64(uint64(len(links)))
	for _, l := range links {
		u64(uint64(int64(l.Src)))
		u64(uint64(int64(l.Dst)))
		u64(uint64(int64(l.Class)))
		f64(l.LatencyFactor)
		f64(l.BetaFactor)
		f64(l.Start)
		f64(l.End)
	}

	stops := append([]FailStop(nil), p.FailStops...)
	sort.Slice(stops, func(a, b int) bool { return stops[a].Rank < stops[b].Rank })
	u64(uint64(len(stops)))
	for _, f := range stops {
		u64(uint64(f.Rank))
		f64(f.FailAt)
		f64(f.Restart)
		f64(f.Checkpoint)
	}

	return hex.EncodeToString(h.Sum(nil))
}

package fault

import (
	"strings"
	"testing"
)

func samplePlan() *Plan {
	return &Plan{
		Seed: 7,
		Slowdowns: []Slowdown{
			{Rank: 3, Factor: 2, Start: 0},
			{Rank: 1, Factor: 1.5, Jitter: 0.2, Start: 1e-3, End: 2e-3},
		},
		Links: []LinkRule{
			{Src: -1, Dst: 2, Class: -1, LatencyFactor: 3, BetaFactor: 2, Start: 0},
			{Src: 0, Dst: -1, Class: 3, LatencyFactor: 1.5, BetaFactor: 1, Start: 1e-3, End: 4e-3},
		},
		FailStops: []FailStop{
			{Rank: 5, FailAt: 2e-3, Restart: 1e-3, Checkpoint: 5e-4},
			{Rank: 2, FailAt: 1e-3, Restart: 1e-3},
		},
	}
}

// TestPlanFingerprintStability pins that the hash is independent of the
// order rules were appended in (the canonical sort), and that nil and empty
// plans share one fixed fingerprint.
func TestPlanFingerprintStability(t *testing.T) {
	p := samplePlan()
	fp := p.Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}

	shuffled := samplePlan()
	shuffled.Slowdowns[0], shuffled.Slowdowns[1] = shuffled.Slowdowns[1], shuffled.Slowdowns[0]
	shuffled.Links[0], shuffled.Links[1] = shuffled.Links[1], shuffled.Links[0]
	shuffled.FailStops[0], shuffled.FailStops[1] = shuffled.FailStops[1], shuffled.FailStops[0]
	if got := shuffled.Fingerprint(); got != fp {
		t.Fatalf("rule order changed the fingerprint: %s vs %s", got, fp)
	}

	var nilPlan *Plan
	empty := &Plan{Seed: 42} // seed without rules injects nothing
	if nilPlan.Fingerprint() != empty.Fingerprint() {
		t.Fatal("nil and empty plans must share the no-faults fingerprint")
	}
	if nilPlan.Fingerprint() == fp {
		t.Fatal("empty plan collides with a populated plan")
	}
}

// TestPlanFingerprintSensitivity checks every rule field perturbs the hash.
func TestPlanFingerprintSensitivity(t *testing.T) {
	fp := samplePlan().Fingerprint()
	mutations := map[string]func(*Plan){
		"seed":            func(p *Plan) { p.Seed++ },
		"slowdown rank":   func(p *Plan) { p.Slowdowns[0].Rank = 4 },
		"slowdown factor": func(p *Plan) { p.Slowdowns[0].Factor = 3 },
		"slowdown jitter": func(p *Plan) { p.Slowdowns[1].Jitter = 0.3 },
		"slowdown window": func(p *Plan) { p.Slowdowns[1].End = 3e-3 },
		"link src":        func(p *Plan) { p.Links[0].Src = 1 },
		"link class":      func(p *Plan) { p.Links[1].Class = 2 },
		"link latency":    func(p *Plan) { p.Links[0].LatencyFactor = 4 },
		"link beta":       func(p *Plan) { p.Links[0].BetaFactor = 4 },
		"failstop rank":   func(p *Plan) { p.FailStops[0].Rank = 6 },
		"failstop at":     func(p *Plan) { p.FailStops[0].FailAt = 3e-3 },
		"failstop restart": func(p *Plan) {
			p.FailStops[1].Restart = 2e-3
		},
		"failstop checkpoint": func(p *Plan) { p.FailStops[0].Checkpoint = 1e-4 },
		"drop rule":           func(p *Plan) { p.Links = p.Links[:1] },
	}
	for name, mutate := range mutations {
		p := samplePlan()
		mutate(p)
		if got := p.Fingerprint(); got == fp {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

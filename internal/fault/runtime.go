package fault

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Runtime is a plan compiled against a rank count, queried by both engines
// from their hot paths. All queries are pure functions of (plan, rank, noise
// sequence, virtual clock), never of wall-clock or goroutine order.
type Runtime struct {
	procs     int
	seed      int64
	pairClass func(i, j int) uint8
	slow      [][]Slowdown // per rank, window-sorted
	fail      []failState  // per rank
	links     []LinkRule
	uniform   bool
}

type failState struct {
	has     bool
	failAt  float64
	penalty float64
}

// Compile validates the plan and freezes it for a machine with procs ranks.
// pairClass resolves distance classes for class-matched link rules (pass the
// machine's PairClass, or nil when unavailable — class-matched rules then
// fail compilation). An empty plan compiles to a nil Runtime so callers keep
// a single pointer test on the fault-free hot path.
func Compile(p *Plan, procs int, pairClass func(i, j int) uint8) (*Runtime, error) {
	if p.Empty() {
		if p != nil {
			if err := p.Validate(procs); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	if err := p.Validate(procs); err != nil {
		return nil, err
	}
	rt := &Runtime{procs: procs, seed: p.Seed, pairClass: pairClass}
	rt.slow = make([][]Slowdown, procs)
	for _, s := range p.Slowdowns {
		rt.slow[s.Rank] = append(rt.slow[s.Rank], s)
	}
	rt.fail = make([]failState, procs)
	for _, f := range p.FailStops {
		rt.fail[f.Rank] = failState{has: true, failAt: f.FailAt, penalty: f.Penalty()}
	}
	rt.links = append(rt.links, p.Links...)
	for _, l := range rt.links {
		if l.Class >= 0 && pairClass == nil {
			return nil, invalidf("link rule matches distance class %d but the machine does not expose pair classes", l.Class)
		}
	}
	rt.uniform = len(p.Slowdowns) == 0 && len(p.FailStops) == 0
	for _, l := range rt.links {
		if l.Src >= 0 || l.Dst >= 0 {
			rt.uniform = false
		}
	}
	return rt, nil
}

func inWindow(t, start, end float64) bool {
	return t >= start && (end <= 0 || t < end)
}

// Slow returns the slowdown multiplier for rank's seq-th noise draw at
// virtual time now (1 when no rule is active). The jitter draw is a seeded
// half-normal, deterministic in (plan seed, rank, seq) exactly like
// platform.Machine.Noise.
func (rt *Runtime) Slow(rank int, seq uint64, now float64) float64 {
	for i := range rt.slow[rank] {
		r := &rt.slow[rank][i]
		if !inWindow(now, r.Start, r.End) {
			continue
		}
		f := r.Factor
		if r.Jitter > 0 {
			f *= 1 + r.Jitter*rt.halfNormal(rank, seq)
		}
		return f
	}
	return 1
}

func (rt *Runtime) halfNormal(rank int, seq uint64) float64 {
	h := mix64(uint64(rt.seed)*0x9e3779b97f4a7c15 ^ (uint64(rank)+1)*0xff51afd7ed558ccd ^ (seq+1)*0x94d049bb133111eb)
	u1 := (float64(h>>11) + 0.5) / float64(1<<53)
	h2 := mix64(h ^ 0x2545f4914f6cdd1d)
	u2 := (float64(h2>>11) + 0.5) / float64(1<<53)
	return math.Abs(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// mix64 is the splitmix64 finalizer, the same mixing platform's noise stream
// uses (with a distinct multiplier salt so slowdown jitter and machine noise
// streams never coincide).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HasLinks reports whether any link rule exists, gating the per-send query.
func (rt *Runtime) HasLinks() bool { return len(rt.links) > 0 }

// Link returns the latency and transfer-time multipliers for a message
// injected from src to dst at the sender's virtual time t (1, 1 when no rule
// matches). Matching rules multiply together.
func (rt *Runtime) Link(src, dst int, t float64) (lat, beta float64) {
	lat, beta = 1, 1
	for i := range rt.links {
		r := &rt.links[i]
		if !rt.linkMatches(r, src, dst) || !inWindow(t, r.Start, r.End) {
			continue
		}
		lat *= r.LatencyFactor
		beta *= r.BetaFactor
	}
	return lat, beta
}

func (rt *Runtime) linkMatches(r *LinkRule, src, dst int) bool {
	if r.Src >= 0 && r.Src != src {
		return false
	}
	if r.Dst >= 0 && r.Dst != dst {
		return false
	}
	if r.Class >= 0 && int(rt.pairClass(src, dst)) != r.Class {
		return false
	}
	return true
}

// Cross applies the fail-stop transform to an advance of rank's clock from
// old to next: if the advance crosses the rank's fail time, the crash
// penalty (restart + recompute from the last checkpoint) is added and
// returned. The invariant "penalty consumed ⇔ clock >= fail time" keeps the
// fail-stop state fully derivable from the clock itself, so rank state
// handed between the engines (Proc.EvalState) needs no extra fields.
func (rt *Runtime) Cross(rank int, old, next float64) (adjusted, penalty float64) {
	f := &rt.fail[rank]
	if !f.has || old >= f.failAt || next < f.failAt {
		return next, 0
	}
	return next + f.penalty, f.penalty
}

// Uniform reports whether the plan treats every rank identically and every
// pair of the same distance class identically: no slowdowns, no fail-stops,
// and only class- or wildcard-matched link rules. Uniform plans preserve the
// single-class symmetry collapse of circulant schedules on uniform machines.
func (rt *Runtime) Uniform() bool { return rt.uniform }

// EdgeSig returns a bitmask of the link rules matching the directed edge
// src→dst, ignoring activation windows (windows are decided by the sender's
// clock, which is identical across ranks of one equivalence class). The
// collapse refinement folds it into each edge's signature so two ranks share
// a class only if their corresponding edges are degraded by the same rules.
func (rt *Runtime) EdgeSig(src, dst int) uint64 {
	var mask uint64
	for i := range rt.links {
		if rt.linkMatches(&rt.links[i], src, dst) {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// AppendFingerprint appends a canonical encoding of every rank-specific
// fault treatment of rank (slowdown rules and fail-stop; rank-targeted link
// rules are handled per edge via EdgeSig). Ranks with equal fingerprints are
// eligible to share a collapse class; a rank with jittered slowdowns gets a
// rank-unique fingerprint because its jitter stream depends on the rank.
func (rt *Runtime) AppendFingerprint(sig []byte, rank int) []byte {
	appendF := func(x float64) {
		sig = binary.LittleEndian.AppendUint64(sig, math.Float64bits(x))
	}
	for i := range rt.slow[rank] {
		r := &rt.slow[rank][i]
		sig = append(sig, 's')
		appendF(r.Factor)
		appendF(r.Jitter)
		appendF(r.Start)
		appendF(r.End)
		if r.Jitter > 0 {
			sig = binary.AppendUvarint(sig, uint64(rank)+1)
		}
	}
	if f := &rt.fail[rank]; f.has {
		sig = append(sig, 'f')
		appendF(f.failAt)
		appendF(f.penalty)
	}
	return sig
}

// Describe renders the plan as deterministic one-line descriptions, in rule
// order — the trace subsystem stamps them into exported trace metadata so
// Chrome exports show which scenario produced the timeline.
func (rt *Runtime) Describe() []string {
	if rt == nil {
		return nil
	}
	var out []string
	window := func(start, end float64) string {
		if start == 0 && end <= 0 {
			return ""
		}
		if end <= 0 {
			return fmt.Sprintf(" in [%g,inf)", start)
		}
		return fmt.Sprintf(" in [%g,%g)", start, end)
	}
	for rank, rules := range rt.slow {
		for i := range rules {
			r := &rules[i]
			d := fmt.Sprintf("slowdown rank %d x%g", rank, r.Factor)
			if r.Jitter > 0 {
				d += fmt.Sprintf(" jitter %g", r.Jitter)
			}
			out = append(out, d+window(r.Start, r.End))
		}
	}
	for i := range rt.links {
		r := &rt.links[i]
		d := "degrade link"
		if r.Src >= 0 {
			d += fmt.Sprintf(" src %d", r.Src)
		}
		if r.Dst >= 0 {
			d += fmt.Sprintf(" dst %d", r.Dst)
		}
		if r.Class >= 0 {
			d += fmt.Sprintf(" class %d", r.Class)
		}
		if r.Src < 0 && r.Dst < 0 && r.Class < 0 {
			d += " any"
		}
		out = append(out, d+fmt.Sprintf(" lat x%g beta x%g", r.LatencyFactor, r.BetaFactor)+window(r.Start, r.End))
	}
	for rank, f := range rt.fail {
		if f.has {
			out = append(out, fmt.Sprintf("fail-stop rank %d at %g penalty %g", rank, f.failAt, f.penalty))
		}
	}
	return out
}

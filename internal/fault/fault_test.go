package fault

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		plan  *Plan
		procs int
	}{
		{"nil plan", nil, 4},
		{"no ranks", &Plan{}, 0},
		{"slowdown rank out of range", &Plan{Slowdowns: []Slowdown{{Rank: 4, Factor: 2}}}, 4},
		{"slowdown negative rank", &Plan{Slowdowns: []Slowdown{{Rank: -1, Factor: 2}}}, 4},
		{"slowdown zero factor", &Plan{Slowdowns: []Slowdown{{Rank: 0}}}, 4},
		{"slowdown NaN factor", &Plan{Slowdowns: []Slowdown{{Rank: 0, Factor: math.NaN()}}}, 4},
		{"slowdown negative jitter", &Plan{Slowdowns: []Slowdown{{Rank: 0, Factor: 2, Jitter: -1}}}, 4},
		{"slowdown empty window", &Plan{Slowdowns: []Slowdown{{Rank: 0, Factor: 2, Start: 5, End: 5}}}, 4},
		{"slowdown overlapping windows", &Plan{Slowdowns: []Slowdown{
			{Rank: 0, Factor: 2, Start: 0, End: 3},
			{Rank: 0, Factor: 3, Start: 2, End: 5},
		}}, 4},
		{"slowdown open window shadowed", &Plan{Slowdowns: []Slowdown{
			{Rank: 0, Factor: 2},
			{Rank: 0, Factor: 3, Start: 1, End: 2},
		}}, 4},
		{"link src out of range", &Plan{Links: []LinkRule{{Src: 4, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2}}}, 4},
		{"link dst out of range", &Plan{Links: []LinkRule{{Src: -1, Dst: -2, Class: -1, LatencyFactor: 2, BetaFactor: 2}}}, 4},
		{"link class out of range", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: 256, LatencyFactor: 2, BetaFactor: 2}}}, 4},
		{"link zero latency factor", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: -1, BetaFactor: 2}}}, 4},
		{"link zero beta factor", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2}}}, 4},
		{"link empty window", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2, Start: 3, End: 1}}}, 4},
		{"fail-stop rank out of range", &Plan{FailStops: []FailStop{{Rank: 9, FailAt: 1}}}, 4},
		{"fail-stop zero time", &Plan{FailStops: []FailStop{{Rank: 0}}}, 4},
		{"fail-stop negative restart", &Plan{FailStops: []FailStop{{Rank: 0, FailAt: 1, Restart: -1}}}, 4},
		{"fail-stop negative checkpoint", &Plan{FailStops: []FailStop{{Rank: 0, FailAt: 1, Checkpoint: -1}}}, 4},
		{"fail-stop duplicate rank", &Plan{FailStops: []FailStop{{Rank: 0, FailAt: 1}, {Rank: 0, FailAt: 2}}}, 4},
	}
	for _, tc := range cases {
		if err := tc.plan.Validate(tc.procs); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: want ErrInvalid, got %v", tc.name, err)
		}
	}

	tooMany := &Plan{}
	for i := 0; i <= maxLinkRules; i++ {
		tooMany.Links = append(tooMany.Links, LinkRule{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2})
	}
	if err := tooMany.Validate(4); !errors.Is(err, ErrInvalid) {
		t.Errorf("too many link rules: want ErrInvalid, got %v", err)
	}

	ok := &Plan{
		Slowdowns: []Slowdown{{Rank: 0, Factor: 2, Jitter: 0.1, Start: 0, End: 3}, {Rank: 0, Factor: 3, Start: 3}},
		Links:     []LinkRule{{Src: -1, Dst: 1, Class: -1, LatencyFactor: 1.5, BetaFactor: 4, Start: 1, End: 2}},
		FailStops: []FailStop{{Rank: 2, FailAt: 1, Restart: 0.5, Checkpoint: 0.25}},
	}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestPenalty(t *testing.T) {
	cases := []struct {
		f    FailStop
		want float64
	}{
		{FailStop{FailAt: 10, Restart: 2}, 12},                       // no checkpoint: recompute everything
		{FailStop{FailAt: 10, Restart: 2, Checkpoint: 3}, 3},         // last checkpoint at 9 -> recompute 1
		{FailStop{FailAt: 10, Restart: 2, Checkpoint: 10}, 2},        // checkpoint exactly at FailAt
		{FailStop{FailAt: 10, Restart: 0, Checkpoint: 4}, 2},         // last checkpoint at 8
		{FailStop{FailAt: 0.5, Restart: 0.25, Checkpoint: 2}, 75e-2}, // interval longer than FailAt
	}
	for _, tc := range cases {
		if got := tc.f.Penalty(); got != tc.want {
			t.Errorf("Penalty(%+v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestCompileEmptyPlan(t *testing.T) {
	for _, p := range []*Plan{nil, {}, {Seed: 99}} {
		rt, err := Compile(p, 4, nil)
		if err != nil || rt != nil {
			t.Errorf("Compile(%+v) = %v, %v; want nil, nil", p, rt, err)
		}
	}
	// An empty plan is still validated.
	if _, err := Compile(&Plan{}, 0, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty plan on zero ranks: want ErrInvalid, got %v", err)
	}
	// Class-matched rules need a pairClass resolver.
	p := &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: 3, LatencyFactor: 2, BetaFactor: 2}}}
	if _, err := Compile(p, 4, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("class rule without pairClass: want ErrInvalid, got %v", err)
	}
}

func TestSlowWindows(t *testing.T) {
	p := &Plan{Slowdowns: []Slowdown{
		{Rank: 1, Factor: 2, Start: 0, End: 10},
		{Rank: 1, Factor: 4, Start: 20},
	}}
	rt, err := Compile(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		now  float64
		want float64
	}{
		{0, 2}, {9.999, 2}, {10, 1}, {19.999, 1}, {20, 4}, {1e9, 4},
	} {
		if got := rt.Slow(1, 0, tc.now); got != tc.want {
			t.Errorf("Slow(1, 0, %v) = %v, want %v", tc.now, got, tc.want)
		}
	}
	// Untargeted ranks are untouched.
	if got := rt.Slow(0, 0, 5); got != 1 {
		t.Errorf("Slow(0, ...) = %v, want 1", got)
	}
}

func TestSlowJitterDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, Slowdowns: []Slowdown{{Rank: 0, Factor: 2, Jitter: 0.5}}}
	a, err := Compile(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for seq := uint64(0); seq < 64; seq++ {
		va, vb := a.Slow(0, seq, 1), b.Slow(0, seq, 1)
		if va != vb {
			t.Fatalf("seq %d: %v vs %v across identical compiles", seq, va, vb)
		}
		if va < 2 {
			t.Fatalf("seq %d: jittered factor %v below base factor", seq, va)
		}
		if seq > 0 && va != a.Slow(0, 0, 1) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("jitter draws are constant across the sequence")
	}
	// A different plan seed yields a different stream.
	p2 := &Plan{Seed: 8, Slowdowns: p.Slowdowns}
	c, err := Compile(p2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for seq := uint64(0); seq < 16; seq++ {
		if a.Slow(0, seq, 1) != c.Slow(0, seq, 1) {
			same = false
		}
	}
	if same {
		t.Error("seed change did not change the jitter stream")
	}
}

func TestLinkMatching(t *testing.T) {
	pairClass := func(i, j int) uint8 {
		if i == j {
			return 0
		}
		return 3
	}
	p := &Plan{Links: []LinkRule{
		{Src: 0, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 3},
		{Src: -1, Dst: 1, Class: -1, LatencyFactor: 5, BetaFactor: 7, Start: 10, End: 20},
		{Src: -1, Dst: -1, Class: 3, LatencyFactor: 11, BetaFactor: 13},
	}}
	rt, err := Compile(p, 4, pairClass)
	if err != nil {
		t.Fatal(err)
	}
	if !rt.HasLinks() {
		t.Fatal("HasLinks false")
	}
	// Rules compose multiplicatively; the windowed rule only inside [10,20).
	if lat, beta := rt.Link(0, 1, 0); lat != 2*11 || beta != 3*13 {
		t.Errorf("Link(0,1,0) = %v,%v", lat, beta)
	}
	if lat, beta := rt.Link(0, 1, 15); lat != 2*5*11 || beta != 3*7*13 {
		t.Errorf("Link(0,1,15) = %v,%v", lat, beta)
	}
	if lat, beta := rt.Link(2, 3, 0); lat != 11 || beta != 13 {
		t.Errorf("Link(2,3,0) = %v,%v", lat, beta)
	}
	if lat, beta := rt.Link(2, 2, 0); lat != 1 || beta != 1 {
		t.Errorf("Link(self) = %v,%v, want 1,1", lat, beta)
	}
	// EdgeSig is the window-independent rule bitmask.
	if sig := rt.EdgeSig(0, 1); sig != 0b111 {
		t.Errorf("EdgeSig(0,1) = %b", sig)
	}
	if sig := rt.EdgeSig(2, 1); sig != 0b110 {
		t.Errorf("EdgeSig(2,1) = %b", sig)
	}
	if sig := rt.EdgeSig(2, 3); sig != 0b100 {
		t.Errorf("EdgeSig(2,3) = %b", sig)
	}
}

func TestCross(t *testing.T) {
	p := &Plan{FailStops: []FailStop{{Rank: 1, FailAt: 10, Restart: 2, Checkpoint: 4}}}
	rt, err := Compile(p, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pen := FailStop{Rank: 1, FailAt: 10, Restart: 2, Checkpoint: 4}.Penalty() // 2 + (10 - 8)
	if pen != 4 {
		t.Fatalf("penalty = %v", pen)
	}
	// Before the crash: untouched.
	if adj, g := rt.Cross(1, 0, 9); adj != 9 || g != 0 {
		t.Errorf("Cross(1,0,9) = %v,%v", adj, g)
	}
	// The advance crossing FailAt pays the penalty.
	if adj, g := rt.Cross(1, 9, 11); adj != 11+pen || g != pen {
		t.Errorf("Cross(1,9,11) = %v,%v", adj, g)
	}
	// Landing exactly on FailAt counts as crossing.
	if adj, g := rt.Cross(1, 9, 10); adj != 10+pen || g != pen {
		t.Errorf("Cross(1,9,10) = %v,%v", adj, g)
	}
	// Once past, never again (old >= failAt).
	if adj, g := rt.Cross(1, 14, 20); adj != 20 || g != 0 {
		t.Errorf("Cross(1,14,20) = %v,%v", adj, g)
	}
	// Other ranks never pay.
	if adj, g := rt.Cross(0, 9, 11); adj != 11 || g != 0 {
		t.Errorf("Cross(0,...) = %v,%v", adj, g)
	}
}

func TestUniform(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want bool
	}{
		{"wildcard link", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2}}}, true},
		{"class link", &Plan{Links: []LinkRule{{Src: -1, Dst: -1, Class: 3, LatencyFactor: 2, BetaFactor: 2}}}, true},
		{"src link", &Plan{Links: []LinkRule{{Src: 0, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 2}}}, false},
		{"slowdown", &Plan{Slowdowns: []Slowdown{{Rank: 0, Factor: 2}}}, false},
		{"fail-stop", &Plan{FailStops: []FailStop{{Rank: 0, FailAt: 1}}}, false},
	}
	pairClass := func(i, j int) uint8 { return 3 }
	for _, tc := range cases {
		rt, err := Compile(tc.plan, 4, pairClass)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rt.Uniform() != tc.want {
			t.Errorf("%s: Uniform() = %v, want %v", tc.name, rt.Uniform(), tc.want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	p := &Plan{
		Slowdowns: []Slowdown{{Rank: 1, Factor: 2}, {Rank: 2, Factor: 2}, {Rank: 3, Factor: 3}},
		FailStops: []FailStop{{Rank: 2, FailAt: 5, Restart: 1}},
	}
	rt, err := Compile(p, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := func(r int) []byte { return rt.AppendFingerprint(nil, r) }
	if len(fp(0)) != 0 {
		t.Error("untargeted rank has a non-empty fingerprint")
	}
	if !bytes.Equal(fp(1), fp(1)) || bytes.Equal(fp(1), fp(3)) {
		t.Error("distinct factors share a fingerprint")
	}
	if bytes.Equal(fp(1), fp(2)) {
		t.Error("fail-stop rank shares the plain slowdown fingerprint")
	}
	// Jittered slowdowns are rank-unique even with identical rules.
	pj := &Plan{Slowdowns: []Slowdown{{Rank: 1, Factor: 2, Jitter: 0.1}, {Rank: 2, Factor: 2, Jitter: 0.1}}}
	rtj, err := Compile(pj, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rtj.AppendFingerprint(nil, 1), rtj.AppendFingerprint(nil, 2)) {
		t.Error("jittered slowdowns on different ranks share a fingerprint")
	}
}

func TestDescribe(t *testing.T) {
	if ds := (*Runtime)(nil).Describe(); ds != nil {
		t.Errorf("nil runtime describes as %v", ds)
	}
	p := &Plan{
		Slowdowns: []Slowdown{{Rank: 3, Factor: 2.5, Jitter: 0.1, Start: 1, End: 2}},
		Links:     []LinkRule{{Src: -1, Dst: -1, Class: -1, LatencyFactor: 2, BetaFactor: 4}},
		FailStops: []FailStop{{Rank: 1, FailAt: 10, Restart: 2}},
	}
	rt, err := Compile(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds := rt.Describe()
	if len(ds) != 3 {
		t.Fatalf("Describe() = %v", ds)
	}
	for i, want := range []string{
		"slowdown rank 3 x2.5 jitter 0.1 in [1,2)",
		"degrade link any lat x2 beta x4",
		"fail-stop rank 1 at 10 penalty 12",
	} {
		if ds[i] != want {
			t.Errorf("Describe()[%d] = %q, want %q", i, ds[i], want)
		}
	}
	if strings.Contains(strings.Join(ds, ";"), "inf") {
		t.Error("open-ended default windows should render bare")
	}
}

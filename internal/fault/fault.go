// Package fault defines deterministic fault and straggler injection for the
// virtual-time simulator: per-rank slowdowns (persistent or windowed, with an
// optional seeded jitter distribution), per-link/class degradation windows
// (latency and bandwidth multipliers), and fail-stop crashes at a virtual
// time with checkpoint/restart cost accounting.
//
// A Plan is pure data. It is validated against a rank count (Validate,
// ErrInvalid) and compiled into a Runtime the engines query from their hot
// paths; every query is a pure function of the plan, the rank, the noise
// sequence number and the rank's virtual clock, so the concurrent simnet
// engine and the goroutine-free sched evaluator — which perform the same
// operations at the same virtual times — observe bit-identical fault effects
// regardless of goroutine scheduling. An empty plan compiles to a nil
// Runtime: the fault-free hot path stays a single pointer test.
package fault

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalid is the sentinel all plan validation errors wrap; the facade
// re-exports it as hbsp.ErrInvalidFault.
var ErrInvalid = errors.New("invalid fault plan")

// Slowdown multiplies every noise draw of one rank — compute intervals, send
// overheads and the transit jitter of messages it injects — by Factor while
// the rank's virtual clock is inside [Start, End). End <= 0 leaves the
// window open-ended (a persistent straggler); windowed rules express
// per-phase slowdowns. With Jitter > 0 the factor itself is drawn per event
// from a seeded half-normal, Factor·(1 + Jitter·|z|), making the slowdown a
// distribution rather than a constant.
type Slowdown struct {
	Rank   int
	Factor float64
	Jitter float64
	Start  float64
	End    float64
}

// LinkRule degrades the links it matches: transfers injected while the
// sender's clock is inside [Start, End) see their latency multiplied by
// LatencyFactor and their serialized transfer time (inverse bandwidth) by
// BetaFactor. Src and Dst restrict the rule to a sending and/or receiving
// rank (-1 matches any); Class restricts it to one distance class of the
// machine (cluster.DistanceNetwork etc.; -1 matches any). The multipliers
// sampled at injection govern the whole exchange, including the
// acknowledgement's return latency under AckSends. End <= 0 leaves the
// window open-ended.
type LinkRule struct {
	Src           int
	Dst           int
	Class         int
	LatencyFactor float64
	BetaFactor    float64
	Start         float64
	End           float64
}

// FailStop crashes Rank the first time its virtual clock crosses FailAt: the
// rank pays Restart (reboot/rejoin cost) plus the recompute time back to its
// last checkpoint — Checkpoint > 0 checkpoints every Checkpoint seconds, so
// the recompute cost is FailAt mod Checkpoint; Checkpoint == 0 means no
// checkpointing and the rank recomputes from time zero. Surviving ranks are
// not modified: they stall at their next rendezvous with the failed rank
// through the ordinary LogGP recurrence (its messages arrive late) until it
// catches up. At most one FailStop per rank.
type FailStop struct {
	Rank       int
	FailAt     float64
	Restart    float64
	Checkpoint float64
}

// Penalty returns the total virtual-time cost of the crash: the restart
// penalty plus the recompute time from the last checkpoint before FailAt.
func (f FailStop) Penalty() float64 {
	recompute := f.FailAt
	if f.Checkpoint > 0 {
		recompute = f.FailAt - math.Floor(f.FailAt/f.Checkpoint)*f.Checkpoint
	}
	return f.Restart + recompute
}

// Plan is a seed-deterministic fault scenario. The zero value injects
// nothing. Seed drives the Jitter draws of slowdown rules (and nothing
// else); two runs with the same machine seed and the same plan are
// bit-identical.
type Plan struct {
	Seed      int64
	Slowdowns []Slowdown
	Links     []LinkRule
	FailStops []FailStop
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Slowdowns) == 0 && len(p.Links) == 0 && len(p.FailStops) == 0)
}

// maxLinkRules bounds the link-rule count so per-edge rule matches can be
// summarized as a single bitmask during symmetry-collapse refinement.
const maxLinkRules = 64

func invalidf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks the plan against a rank count. All errors wrap ErrInvalid.
func (p *Plan) Validate(procs int) error {
	if p == nil {
		return invalidf("nil plan")
	}
	if procs < 1 {
		return invalidf("machine has %d ranks", procs)
	}
	perRank := make(map[int][]Slowdown)
	for i, s := range p.Slowdowns {
		if s.Rank < 0 || s.Rank >= procs {
			return invalidf("slowdown %d: rank %d out of range [0,%d)", i, s.Rank, procs)
		}
		if !(s.Factor > 0) || math.IsInf(s.Factor, 0) {
			return invalidf("slowdown %d: factor %v must be positive and finite", i, s.Factor)
		}
		if s.Jitter < 0 || math.IsInf(s.Jitter, 0) || math.IsNaN(s.Jitter) {
			return invalidf("slowdown %d: jitter %v must be >= 0 and finite", i, s.Jitter)
		}
		if s.Start < 0 || math.IsNaN(s.Start) {
			return invalidf("slowdown %d: start %v must be >= 0", i, s.Start)
		}
		if s.End != 0 && s.End <= s.Start {
			return invalidf("slowdown %d: window [%v,%v) is empty", i, s.Start, s.End)
		}
		perRank[s.Rank] = append(perRank[s.Rank], s)
	}
	for rank, rules := range perRank {
		sort.Slice(rules, func(a, b int) bool { return rules[a].Start < rules[b].Start })
		for i := 1; i < len(rules); i++ {
			prev := rules[i-1]
			if prev.End <= 0 || rules[i].Start < prev.End {
				return invalidf("rank %d: overlapping slowdown windows", rank)
			}
		}
	}
	if len(p.Links) > maxLinkRules {
		return invalidf("%d link rules exceed the maximum of %d", len(p.Links), maxLinkRules)
	}
	for i, l := range p.Links {
		if l.Src < -1 || l.Src >= procs {
			return invalidf("link rule %d: src %d out of range", i, l.Src)
		}
		if l.Dst < -1 || l.Dst >= procs {
			return invalidf("link rule %d: dst %d out of range", i, l.Dst)
		}
		if l.Class < -1 || l.Class > 255 {
			return invalidf("link rule %d: class %d out of range [-1,255]", i, l.Class)
		}
		if !(l.LatencyFactor > 0) || math.IsInf(l.LatencyFactor, 0) {
			return invalidf("link rule %d: latency factor %v must be positive and finite", i, l.LatencyFactor)
		}
		if !(l.BetaFactor > 0) || math.IsInf(l.BetaFactor, 0) {
			return invalidf("link rule %d: beta factor %v must be positive and finite", i, l.BetaFactor)
		}
		if l.Start < 0 || math.IsNaN(l.Start) {
			return invalidf("link rule %d: start %v must be >= 0", i, l.Start)
		}
		if l.End != 0 && l.End <= l.Start {
			return invalidf("link rule %d: window [%v,%v) is empty", i, l.Start, l.End)
		}
	}
	failed := make(map[int]bool)
	for i, f := range p.FailStops {
		if f.Rank < 0 || f.Rank >= procs {
			return invalidf("fail-stop %d: rank %d out of range [0,%d)", i, f.Rank, procs)
		}
		if failed[f.Rank] {
			return invalidf("fail-stop %d: rank %d fails more than once", i, f.Rank)
		}
		failed[f.Rank] = true
		if !(f.FailAt > 0) || math.IsInf(f.FailAt, 0) {
			return invalidf("fail-stop %d: fail time %v must be positive and finite", i, f.FailAt)
		}
		if f.Restart < 0 || math.IsInf(f.Restart, 0) || math.IsNaN(f.Restart) {
			return invalidf("fail-stop %d: restart penalty %v must be >= 0 and finite", i, f.Restart)
		}
		if f.Checkpoint < 0 || math.IsInf(f.Checkpoint, 0) || math.IsNaN(f.Checkpoint) {
			return invalidf("fail-stop %d: checkpoint interval %v must be >= 0 and finite", i, f.Checkpoint)
		}
	}
	return nil
}

package bsp

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"hbsp/internal/platform"
	"hbsp/internal/simnet"
)

func gateMachine(t *testing.T, procs int) *platform.Machine {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSyncGateUnwindsOnRankError pins the teardown of the direct-engine
// rendezvous: when one rank errors out before Sync, the remaining ranks are
// parked at the run's gate and can only be released by the deadline teardown
// — exactly like ranks blocked in receives on the concurrent engine. The run
// must return ErrDeadline promptly, with every rank goroutine unwound.
func TestSyncGateUnwindsOnRankError(t *testing.T) {
	m := gateMachine(t, 8)
	o := simnet.DefaultOptions()
	o.Deadline = 200 * time.Millisecond
	start := time.Now()
	_, err := RunContext(context.Background(), m, RunConfig{Options: &o}, func(c *Ctx) error {
		if c.Pid() == 0 {
			return fmt.Errorf("rank 0 gives up before the superstep ends")
		}
		return c.Sync()
	})
	if !errors.Is(err, simnet.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("teardown took %v; gate waiters were not woken", elapsed)
	}
}

// TestSyncGateUnwindsOnContextCancel pins context cancellation while ranks
// are parked at the gate: the run aborts with an error wrapping ErrAborted
// and the cancellation cause, identical to cancellation of ranks blocked in
// receives.
func TestSyncGateUnwindsOnContextCancel(t *testing.T) {
	m := gateMachine(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	o := simnet.DefaultOptions()
	_, err := RunContext(ctx, m, RunConfig{Options: &o}, func(c *Ctx) error {
		if c.Pid() == 0 {
			// Leave the others parked at the gate, then pull the plug.
			time.Sleep(50 * time.Millisecond)
			cancel()
			return fmt.Errorf("rank 0 cancelled the run")
		}
		return c.Sync()
	})
	if !errors.Is(err, simnet.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrAborted wrapping context.Canceled, got %v", err)
	}
}

// TestSyncGateSingleRank pins the degenerate rendezvous: at P=1 the sole
// rank is always the gate leader and the exchange evaluates to its own row.
func TestSyncGateSingleRank(t *testing.T) {
	m := gateMachine(t, 1)
	res, err := Run(m, func(c *Ctx) error { return c.Sync() })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 1 {
		t.Fatalf("bad result: %+v", res)
	}
}

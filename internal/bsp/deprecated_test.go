package bsp

import "testing"

// TestDeprecatedAliases keeps the BSPlib-spelled aliases compiling and
// delegating to the idiomatic names.
func TestDeprecatedAliases(t *testing.T) {
	m := collectiveMachine(t, 2)
	_, err := Run(m, func(c *Ctx) error {
		if err := c.Send((c.Pid()+1)%2, 9, []float64{1}); err != nil {
			return err
		}
		if err := c.Sync(); err != nil {
			return err
		}
		if c.Qsize() != c.QueueLen() || c.Qsize() != 1 {
			t.Errorf("pid %d: Qsize = %d, QueueLen = %d, want 1", c.Pid(), c.Qsize(), c.QueueLen())
		}
		got, err1 := c.GetTag()
		want, err2 := c.PeekTag()
		if got != want || err1 != nil || err2 != nil || got != 9 {
			t.Errorf("pid %d: GetTag = (%d, %v), PeekTag = (%d, %v), want 9", c.Pid(), got, err1, want, err2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package bsp implements the BSPlib programming interface of Chapter 6 on top
// of the simulated message-passing substrate. The run-time follows the
// thesis' modified processing model: one-sided communication committed during
// a superstep is injected eagerly (so it can overlap with the remaining
// computation), and the synchronization that ends the superstep doubles as a
// fixed-size total exchange of per-pair message counts, which tells every
// process how many outstanding one-sided operations it must drain before the
// next superstep may begin.
//
// The programming primitives mirror Table 6.1: registration of remotely
// accessible memory (PushReg/PopReg), buffered one-sided writes and reads
// (Put/Get), bulk-synchronous message passing (Send/Qsize/Move), and
// Sync/Time/Pid/NProcs.
package bsp

import (
	"errors"
	"fmt"

	"hbsp/internal/kernels"
	"hbsp/internal/simnet"
)

// Machine is the platform the BSP run-time executes on: the simulator
// interface plus per-rank kernel timing, satisfied by platform.Machine.
type Machine interface {
	simnet.Machine
	// KernelTime returns the time rank r needs to apply the kernel once to n
	// elements.
	KernelTime(rank int, k kernels.Kernel, n int) float64
}

// Program is the SPMD body executed by every process.
type Program func(ctx *Ctx) error

// Tags used by the run-time; user-visible traffic never names tags directly.
const (
	tagOneSided  = 1 << 24
	tagGetReply  = 1<<24 + 1
	tagCountBase = 1<<24 + 64
)

// headerBytes is the size of the control header that precedes every one-sided
// operation (Section 6.2 lists its six integer fields).
const headerBytes = 6 * 4

// countEntryBytes is the wire width of one message counter in the count
// total exchange. Both exchange implementations and the model-driven
// schedule selection (NewAdaptedSynchronizer) must agree on it, or the cost
// model prices payloads the runtime never sends.
const countEntryBytes = 4

// Run executes the SPMD program on every rank of the machine and returns the
// simulation result (per-rank virtual completion times).
func Run(m Machine, program Program, opts ...simnet.Options) (*simnet.Result, error) {
	return RunWith(m, nil, program, opts...)
}

// putMsg is a buffered one-sided write in flight.
type putMsg struct {
	Name   string
	Offset int
	Data   []float64
}

// getReq asks the destination to read a registered area on behalf of the
// requester.
type getReq struct {
	Name      string
	Offset    int
	N         int
	Requester int
}

// bsmpMsg is a bulk-synchronous message-passing payload.
type bsmpMsg struct {
	Tag  int
	Data []float64
}

// oneSided wraps the three kinds of eager messages so they share a tag and a
// FIFO channel per process pair.
type oneSided struct {
	Put  *putMsg
	Get  *getReq
	Bsmp *bsmpMsg
}

// Ctx is the per-process BSPlib context.
type Ctx struct {
	proc    *simnet.Proc
	machine Machine
	// sync performs the count total exchange that ends every superstep.
	sync Synchronizer
	// schedules supplies the verified schedules the user-facing collectives
	// (Broadcast, Reduce, AllReduce, AllGather, TotalExchange) execute.
	schedules ScheduleSource
	// observer, when non-nil, is called at the end of every Sync with the
	// completed superstep index and the process' virtual time.
	observer SyncObserver

	// Registered memory areas, keyed by registration name.
	regs        map[string][]float64
	pendingReg  []regOp
	currentStep int

	// Outgoing one-sided message counts per destination for the current
	// superstep.
	outCounts []int
	// Get requests issued this superstep, in issue order; replies from a
	// given source arrive in the same order the requests were sent.
	pendingGets []pendingGet

	// Incoming BSMP queue for the current superstep and the one being
	// accumulated for the next.
	queue     []bsmpMsg
	nextQueue []bsmpMsg
}

type pendingGet struct {
	src  int
	dest []float64
}

type regOp struct {
	push bool
	name string
	buf  []float64
}

func newCtx(p *simnet.Proc, m Machine) *Ctx {
	return &Ctx{
		proc:      p,
		machine:   m,
		sync:      DefaultSynchronizer(),
		schedules: defaultSchedules,
		regs:      map[string][]float64{},
		outCounts: make([]int, p.Size()),
	}
}

// NProcs returns the number of processes (bsp_nprocs).
func (c *Ctx) NProcs() int { return c.proc.Size() }

// Pid returns the calling process' identifier (bsp_pid).
func (c *Ctx) Pid() int { return c.proc.Rank() }

// Time returns the process' elapsed virtual time in seconds (bsp_time).
func (c *Ctx) Time() float64 { return c.proc.Now() }

// Superstep returns the index of the current superstep (0 before the first
// Sync).
func (c *Ctx) Superstep() int { return c.currentStep }

// Compute advances the local clock by the given number of seconds of work.
func (c *Ctx) Compute(seconds float64) { c.proc.Compute(seconds) }

// ComputeKernel advances the local clock by the platform's cost of applying
// the kernel to n elements, repeated reps times.
func (c *Ctx) ComputeKernel(k kernels.Kernel, n, reps int) {
	if n <= 0 || reps <= 0 {
		return
	}
	c.proc.Compute(c.machine.KernelTime(c.proc.Rank(), k, n) * float64(reps))
}

// PushReg registers a memory area under a name; the registration takes effect
// at the next Sync (bsp_push_reg).
func (c *Ctx) PushReg(name string, buf []float64) {
	c.pendingReg = append(c.pendingReg, regOp{push: true, name: name, buf: buf})
}

// PopReg removes a registration at the next Sync (bsp_pop_reg).
func (c *Ctx) PopReg(name string) {
	c.pendingReg = append(c.pendingReg, regOp{push: false, name: name})
}

// Registered reports whether a name is currently registered on this process.
func (c *Ctx) Registered(name string) bool {
	_, ok := c.regs[name]
	return ok
}

// ErrNotRegistered is returned when a one-sided operation names an unknown
// registration.
var ErrNotRegistered = errors.New("bsp: target area not registered")

// Put copies values into the registered area of the destination process at
// the given element offset (bsp_put). The transfer is buffered at the source
// and injected immediately; its effect becomes visible at the destination
// after the next Sync.
func (c *Ctx) Put(dst int, name string, offset int, values []float64) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("bsp: put to invalid process %d", dst)
	}
	if len(values) == 0 {
		return nil
	}
	data := append([]float64(nil), values...)
	msg := &oneSided{Put: &putMsg{Name: name, Offset: offset, Data: data}}
	size := headerBytes + 8*len(data)
	c.proc.Post(dst, tagOneSided, size, msg)
	c.outCounts[dst]++
	return nil
}

// HpPut is the high-performance put; the simulated run-time treats it exactly
// like Put (the semantic difference is buffering freedom, which has no
// observable effect here).
func (c *Ctx) HpPut(dst int, name string, offset int, values []float64) error {
	return c.Put(dst, name, offset, values)
}

// Get requests n elements starting at the given offset from the registered
// area of the source process (bsp_get); the values are written into dest
// after the next Sync, reflecting the source's state at synchronization time.
func (c *Ctx) Get(src int, name string, offset, n int, dest []float64) error {
	if src < 0 || src >= c.NProcs() {
		return fmt.Errorf("bsp: get from invalid process %d", src)
	}
	if n == 0 {
		return nil
	}
	if len(dest) < n {
		return fmt.Errorf("bsp: get destination holds %d elements, need %d", len(dest), n)
	}
	msg := &oneSided{Get: &getReq{Name: name, Offset: offset, N: n, Requester: c.Pid()}}
	c.proc.Post(src, tagOneSided, headerBytes, msg)
	c.outCounts[src]++
	c.pendingGets = append(c.pendingGets, pendingGet{src: src, dest: dest[:n]})
	return nil
}

// HpGet is the high-performance get, treated like Get.
func (c *Ctx) HpGet(src int, name string, offset, n int, dest []float64) error {
	return c.Get(src, name, offset, n, dest)
}

// Send queues a bulk-synchronous message for the destination process
// (bsp_send); it becomes visible in the destination's queue after the next
// Sync.
func (c *Ctx) Send(dst int, tag int, payload []float64) error {
	if dst < 0 || dst >= c.NProcs() {
		return fmt.Errorf("bsp: send to invalid process %d", dst)
	}
	data := append([]float64(nil), payload...)
	msg := &oneSided{Bsmp: &bsmpMsg{Tag: tag, Data: data}}
	size := headerBytes + 8*len(data)
	c.proc.Post(dst, tagOneSided, size, msg)
	c.outCounts[dst]++
	return nil
}

// QueueLen returns the number of BSMP messages delivered by the previous
// Sync (bsp_qsize).
func (c *Ctx) QueueLen() int { return len(c.queue) }

// Qsize returns the number of BSMP messages delivered by the previous Sync.
//
// Deprecated: Use QueueLen; Qsize is the BSPlib spelling, kept as an alias.
func (c *Ctx) Qsize() int { return c.QueueLen() }

// PeekTag returns the tag of the first queued message, or an error when the
// queue is empty (bsp_get_tag).
func (c *Ctx) PeekTag() (int, error) {
	if len(c.queue) == 0 {
		return 0, errors.New("bsp: message queue is empty")
	}
	return c.queue[0].Tag, nil
}

// GetTag returns the tag of the first queued message.
//
// Deprecated: Use PeekTag; GetTag is the BSPlib spelling, kept as an alias.
func (c *Ctx) GetTag() (int, error) { return c.PeekTag() }

// Move dequeues the first BSMP message and returns its payload (bsp_move).
func (c *Ctx) Move() ([]float64, error) {
	if len(c.queue) == 0 {
		return nil, errors.New("bsp: message queue is empty")
	}
	msg := c.queue[0]
	c.queue = c.queue[1:]
	return msg.Data, nil
}

// Abort terminates the program with an error on the calling process
// (bsp_abort). The error propagates out of Run.
func (c *Ctx) Abort(format string, args ...any) error {
	return fmt.Errorf("bsp: abort on process %d: %s", c.Pid(), fmt.Sprintf(format, args...))
}

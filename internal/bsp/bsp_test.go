package bsp

import (
	"errors"
	"math"
	"strings"
	"testing"

	"hbsp/internal/kernels"
	"hbsp/internal/platform"
)

func testMachine(t *testing.T, ranks int) *platform.Machine {
	t.Helper()
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPidNprocsTime(t *testing.T) {
	m := testMachine(t, 4)
	seen := make([]bool, 4)
	_, err := Run(m, func(ctx *Ctx) error {
		if ctx.NProcs() != 4 {
			t.Errorf("NProcs = %d", ctx.NProcs())
		}
		seen[ctx.Pid()] = true
		if ctx.Superstep() != 0 {
			t.Errorf("initial superstep = %d", ctx.Superstep())
		}
		ctx.Compute(1e-3)
		if ctx.Time() < 1e-3 {
			t.Errorf("Time = %g", ctx.Time())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d did not run", r)
		}
	}
}

func TestPutBecomesVisibleAfterSync(t *testing.T) {
	m := testMachine(t, 4)
	_, err := Run(m, func(ctx *Ctx) error {
		p := ctx.NProcs()
		area := make([]float64, p)
		ctx.PushReg("area", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		// Everyone writes its rank into slot Pid() of the right neighbour.
		right := (ctx.Pid() + 1) % p
		if err := ctx.Put(right, "area", ctx.Pid(), []float64{float64(ctx.Pid())}); err != nil {
			return err
		}
		// Not visible before the synchronization.
		left := (ctx.Pid() - 1 + p) % p
		if area[left] != 0 {
			t.Errorf("process %d: put visible before sync", ctx.Pid())
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		if area[left] != float64(left) {
			t.Errorf("process %d: area[%d] = %v, want %d", ctx.Pid(), left, area[left], left)
		}
		if ctx.Superstep() != 2 {
			t.Errorf("superstep = %d, want 2", ctx.Superstep())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetReadsPrePutState(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		area := []float64{float64(10 * (ctx.Pid() + 1))} // 10 on rank 0, 20 on rank 1
		ctx.PushReg("x", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		other := 1 - ctx.Pid()
		got := make([]float64, 1)
		if err := ctx.Get(other, "x", 0, 1, got); err != nil {
			return err
		}
		// Simultaneously overwrite the partner's area; BSPlib semantics say
		// the get must observe the value before the put is applied.
		if err := ctx.Put(other, "x", 0, []float64{-1}); err != nil {
			return err
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		want := float64(10 * (other + 1))
		if got[0] != want {
			t.Errorf("process %d: get = %v, want %v", ctx.Pid(), got[0], want)
		}
		if area[0] != -1 {
			t.Errorf("process %d: put was not applied, area = %v", ctx.Pid(), area[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBSMPSendQsizeMove(t *testing.T) {
	m := testMachine(t, 3)
	_, err := Run(m, func(ctx *Ctx) error {
		p := ctx.NProcs()
		// Everyone sends one tagged message to every other process.
		for d := 0; d < p; d++ {
			if d == ctx.Pid() {
				continue
			}
			if err := ctx.Send(d, ctx.Pid(), []float64{float64(ctx.Pid()), 42}); err != nil {
				return err
			}
		}
		if ctx.QueueLen() != 0 {
			t.Errorf("queue should be empty before sync")
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		if ctx.QueueLen() != p-1 {
			t.Errorf("process %d: QueueLen = %d, want %d", ctx.Pid(), ctx.QueueLen(), p-1)
		}
		seen := map[int]bool{}
		for ctx.QueueLen() > 0 {
			tag, err := ctx.PeekTag()
			if err != nil {
				return err
			}
			data, err := ctx.Move()
			if err != nil {
				return err
			}
			if len(data) != 2 || data[1] != 42 || int(data[0]) != tag {
				t.Errorf("process %d: bad message %v tag %d", ctx.Pid(), data, tag)
			}
			seen[tag] = true
		}
		if len(seen) != p-1 {
			t.Errorf("process %d: saw %d distinct senders", ctx.Pid(), len(seen))
		}
		if _, err := ctx.Move(); err == nil {
			t.Error("Move on empty queue should fail")
		}
		if _, err := ctx.PeekTag(); err == nil {
			t.Error("PeekTag on empty queue should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnregisteredPutFails(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		if ctx.Pid() == 0 {
			if err := ctx.Put(1, "nope", 0, []float64{1}); err != nil {
				return err
			}
		}
		return ctx.Sync()
	})
	if err == nil || !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("expected ErrNotRegistered, got %v", err)
	}
}

func TestOutOfRangePutFails(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		area := make([]float64, 2)
		ctx.PushReg("a", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		if ctx.Pid() == 0 {
			if err := ctx.Put(1, "a", 1, []float64{1, 2, 3}); err != nil {
				return err
			}
		}
		return ctx.Sync()
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds area") {
		t.Fatalf("expected out-of-range error, got %v", err)
	}
}

func TestArgumentValidation(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		if err := ctx.Put(7, "a", 0, []float64{1}); err == nil {
			t.Error("put to invalid rank should fail")
		}
		if err := ctx.Get(-1, "a", 0, 1, make([]float64, 1)); err == nil {
			t.Error("get from invalid rank should fail")
		}
		if err := ctx.Get(1, "a", 0, 5, make([]float64, 2)); err == nil {
			t.Error("get into short destination should fail")
		}
		if err := ctx.Send(9, 0, nil); err == nil {
			t.Error("send to invalid rank should fail")
		}
		// Zero-length operations are silently ignored.
		if err := ctx.Put(1, "a", 0, nil); err != nil {
			t.Error("empty put should be a no-op")
		}
		if err := ctx.Get(1, "a", 0, 0, nil); err != nil {
			t.Error("empty get should be a no-op")
		}
		return ctx.Sync()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPopRegTakesEffectAtSync(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		area := make([]float64, 1)
		ctx.PushReg("a", area)
		if ctx.Registered("a") {
			t.Error("registration should not be active before sync")
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		if !ctx.Registered("a") {
			t.Error("registration should be active after sync")
		}
		ctx.PopReg("a")
		if err := ctx.Sync(); err != nil {
			return err
		}
		if ctx.Registered("a") {
			t.Error("registration should be removed after sync")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortPropagates(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(ctx *Ctx) error {
		if ctx.Pid() == 1 {
			return ctx.Abort("giving up after %d supersteps", ctx.Superstep())
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "abort on process 1") {
		t.Fatalf("expected abort error, got %v", err)
	}
}

func TestComputeKernelAdvancesClock(t *testing.T) {
	m := testMachine(t, 1)
	_, err := Run(m, func(ctx *Ctx) error {
		before := ctx.Time()
		ctx.ComputeKernel(kernels.DAXPY, 1024, 10)
		if ctx.Time() <= before {
			t.Error("ComputeKernel did not advance the clock")
		}
		mid := ctx.Time()
		ctx.ComputeKernel(kernels.DAXPY, 0, 10) // no-op
		ctx.ComputeKernel(kernels.DAXPY, 10, 0) // no-op
		if ctx.Time() != mid {
			t.Error("zero-sized kernel application should not advance the clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerPutsOverlapWithComputation(t *testing.T) {
	// Two runs of the same exchange: one where the producer computes after
	// committing its puts (overlap possible), one where the communication is
	// committed only after the computation (no overlap window). The thesis'
	// processing model predicts the first is no slower; with the large
	// payload chosen here it must be strictly faster for the consumer side.
	const n = 1 << 17 // 1 MiB of doubles
	run := func(early bool) float64 {
		m := testMachine(t, 2)
		res, err := Run(m, func(ctx *Ctx) error {
			area := make([]float64, n)
			ctx.PushReg("buf", area)
			if err := ctx.Sync(); err != nil {
				return err
			}
			data := make([]float64, n)
			if ctx.Pid() == 0 {
				if early {
					if err := ctx.Put(1, "buf", 0, data); err != nil {
						return err
					}
					ctx.Compute(20e-3)
				} else {
					ctx.Compute(20e-3)
					if err := ctx.Put(1, "buf", 0, data); err != nil {
						return err
					}
				}
			} else {
				ctx.Compute(20e-3)
			}
			return ctx.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	earlyTime := run(true)
	lateTime := run(false)
	if earlyTime >= lateTime {
		t.Fatalf("early communication (%g) should beat postponed communication (%g)", earlyTime, lateTime)
	}
}

func TestSyncCostScalesWithDistance(t *testing.T) {
	// A sync across 8 nodes should cost more than a sync within one node.
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	cross, err := prof.Machine(8) // round-robin: one rank per node
	if err != nil {
		t.Fatal(err)
	}
	plLocal, err := prof.PlaceWith(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	local := prof.MachineFor(plLocal)
	syncTime := func(m *platform.Machine) float64 {
		res, err := Run(m, func(ctx *Ctx) error { return ctx.Sync() })
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	if lt, ct := syncTime(local), syncTime(cross); lt >= ct {
		t.Fatalf("intra-node sync (%g) should be cheaper than cross-node sync (%g)", lt, ct)
	}
}

func TestRunNilMachine(t *testing.T) {
	if _, err := Run(nil, func(ctx *Ctx) error { return nil }); err == nil {
		t.Fatal("nil machine should fail")
	}
}

func TestInnerProductProgram(t *testing.T) {
	// bspinprod: a distributed inner product in two computation supersteps
	// and one communication superstep, validated against the serial result.
	const n = 1 << 12
	const ranks = 8
	m := testMachine(t, ranks)
	_, err := Run(m, func(ctx *Ctx) error {
		p := ctx.NProcs()
		local := n / p
		x := make([]float64, local)
		y := make([]float64, local)
		for i := range x {
			gi := ctx.Pid()*local + i
			x[i] = float64(gi % 7)
			y[i] = float64(gi % 5)
		}
		partials := make([]float64, p)
		ctx.PushReg("partials", partials)
		if err := ctx.Sync(); err != nil {
			return err
		}
		sum, err := kernels.RunDot(x, y)
		if err != nil {
			return err
		}
		ctx.ComputeKernel(kernels.Dot, local, 1)
		for d := 0; d < p; d++ {
			if err := ctx.Put(d, "partials", ctx.Pid(), []float64{sum}); err != nil {
				return err
			}
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		total := 0.0
		for _, v := range partials {
			total += v
		}
		// Serial reference.
		want := 0.0
		for gi := 0; gi < n; gi++ {
			want += float64(gi%7) * float64(gi%5)
		}
		if math.Abs(total-want) > 1e-9 {
			t.Errorf("process %d: inner product = %g, want %g", ctx.Pid(), total, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package bsp

import (
	"math"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/platform"
)

func collectiveMachine(t *testing.T, procs int) Machine {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCollectivesComputeCorrectValues checks every user collective for
// correct data movement on power-of-two and non-power-of-two process counts
// (the circulant schedules behave differently in the two cases).
func TestCollectivesComputeCorrectValues(t *testing.T) {
	for _, procs := range []int{1, 5, 8} {
		m := collectiveMachine(t, procs)
		_, err := Run(m, func(c *Ctx) error {
			p := c.NProcs()
			me := float64(c.Pid())

			// Broadcast: root 1 (root 0 for p == 1) distributes its vector.
			root := 1 % p
			buf := []float64{-1, -1}
			if c.Pid() == root {
				buf = []float64{10, 20}
			}
			got, err := c.Broadcast(root, buf)
			if err != nil {
				return err
			}
			if got[0] != 10 || got[1] != 20 {
				t.Errorf("p=%d pid=%d: Broadcast = %v, want [10 20]", p, c.Pid(), got)
			}

			// Reduce: elementwise sum lands on the root only.
			red, err := c.Reduce(root, []float64{me, 1}, OpSum)
			if err != nil {
				return err
			}
			wantSum := float64(p*(p-1)) / 2
			if c.Pid() == root {
				if red[0] != wantSum || red[1] != float64(p) {
					t.Errorf("p=%d: Reduce = %v, want [%g %g]", p, red, wantSum, float64(p))
				}
			} else if red != nil {
				t.Errorf("p=%d pid=%d: Reduce on non-root = %v, want nil", p, c.Pid(), red)
			}

			// AllReduce: max of ranks everywhere.
			ar, err := c.AllReduce([]float64{me}, OpMax)
			if err != nil {
				return err
			}
			if ar[0] != float64(p-1) {
				t.Errorf("p=%d pid=%d: AllReduce = %v, want %d", p, c.Pid(), ar, p-1)
			}

			// AllGather: block r is [r, r^2] for every rank.
			ag, err := c.AllGather([]float64{me, me * me})
			if err != nil {
				return err
			}
			for r, block := range ag {
				fr := float64(r)
				if len(block) != 2 || block[0] != fr || block[1] != fr*fr {
					t.Errorf("p=%d pid=%d: AllGather[%d] = %v", p, c.Pid(), r, block)
				}
			}

			// TotalExchange: block for rank j is [100*me + j].
			blocks := make([][]float64, p)
			for j := range blocks {
				blocks[j] = []float64{100*me + float64(j)}
			}
			te, err := c.TotalExchange(blocks)
			if err != nil {
				return err
			}
			for src, block := range te {
				want := 100*float64(src) + me
				if len(block) != 1 || block[0] != want {
					t.Errorf("p=%d pid=%d: TotalExchange[%d] = %v, want [%g]", p, c.Pid(), src, block, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
	}
}

// TestCollectivesAdvanceClocks checks that a collective costs virtual time
// consistent with its schedule (a non-trivial makespan, monotone clocks).
func TestCollectivesAdvanceClocks(t *testing.T) {
	m := collectiveMachine(t, 8)
	res, err := Run(m, func(c *Ctx) error {
		before := c.Time()
		if _, err := c.AllReduce([]float64{1}, OpSum); err != nil {
			return err
		}
		if c.Time() <= before {
			t.Errorf("pid %d: AllReduce did not advance the clock", c.Pid())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MakeSpan <= 0 || res.Messages == 0 {
		t.Fatalf("collective run recorded no traffic: %+v", res)
	}
}

// TestCollectiveValidation exercises the error paths.
func TestCollectiveValidation(t *testing.T) {
	m := collectiveMachine(t, 4)
	_, err := Run(m, func(c *Ctx) error {
		if _, err := c.Broadcast(-1, []float64{1}); err == nil {
			t.Error("Broadcast with invalid root should fail")
		}
		if _, err := c.Reduce(99, []float64{1}, OpSum); err == nil {
			t.Error("Reduce with invalid root should fail")
		}
		if _, err := c.TotalExchange(make([][]float64, 2)); err == nil {
			t.Error("TotalExchange with wrong block count should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScheduleCacheSharesVerifiedPatterns checks that the default source
// verifies once and hands out one pattern per key.
func TestScheduleCacheSharesVerifiedPatterns(t *testing.T) {
	src := NewScheduleCache()
	a, err := src.Schedule(barrier.SemAllReduce, 8, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := src.Schedule(barrier.SemAllReduce, 8, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same key returned distinct patterns")
	}
	c, err := src.Schedule(barrier.SemAllReduce, 8, 0, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different payload sizes must yield distinct patterns")
	}
	if _, err := src.Schedule(barrier.Semantics(99), 8, 0, 0); err == nil {
		t.Error("unknown semantics should fail")
	}
}

// TestCollectiveInputsMayBeReusedAfterReturn reuses every input buffer
// MPI-style immediately after the collective returns, while slower ranks may
// still be combining. The collectives hand private copies to the flooding
// executor, so this must be race-clean (the race detector guards it in CI).
func TestCollectiveInputsMayBeReusedAfterReturn(t *testing.T) {
	const procs, iters = 16, 4
	m := collectiveMachine(t, procs)
	_, err := Run(m, func(c *Ctx) error {
		me := float64(c.Pid())
		v := []float64{me}
		blocks := make([][]float64, procs)
		for j := range blocks {
			blocks[j] = []float64{me}
		}
		for i := 0; i < iters; i++ {
			sum, err := c.AllReduce(v, OpSum)
			if err != nil {
				return err
			}
			v[0] = sum[0] // mutate the input right after the call returns
			if _, err := c.Broadcast(0, v); err != nil {
				return err
			}
			v[0] = me
			if _, err := c.TotalExchange(blocks); err != nil {
				return err
			}
			blocks[0][0] = float64(i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceMatchesSequentialCombination pins the deterministic rank-order
// combination: the result equals a sequential fold, bit for bit, on every
// process.
func TestAllReduceMatchesSequentialCombination(t *testing.T) {
	const procs = 6
	vals := make([]float64, procs)
	for i := range vals {
		vals[i] = math.Sqrt(float64(i + 2)) // non-associative-friendly values
	}
	want := vals[0]
	for _, v := range vals[1:] {
		want += v
	}
	m := collectiveMachine(t, procs)
	_, err := Run(m, func(c *Ctx) error {
		got, err := c.AllReduce([]float64{vals[c.Pid()]}, OpSum)
		if err != nil {
			return err
		}
		if got[0] != want {
			t.Errorf("pid %d: AllReduce = %.17g, want %.17g", c.Pid(), got[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package bsp

import (
	"context"
	"testing"

	"hbsp/internal/platform"
	"hbsp/internal/simnet"
)

// collapseProgram is a two-superstep workload whose makespan is dominated by
// the count exchanges the gate evaluates inline: registration, a ring of
// puts, and the drain.
func collapseProgram(c *Ctx) error {
	p := c.NProcs()
	area := make([]float64, p)
	c.PushReg("x", area)
	if err := c.Sync(); err != nil {
		return err
	}
	right := (c.Pid() + 1) % p
	if err := c.Put(right, "x", c.Pid(), []float64{1}); err != nil {
		return err
	}
	return c.Sync()
}

// TestGateExchangeCollapseBitIdentical pins the inline gate path: on a
// pairwise-uniform machine the superstep count exchange is evaluated through
// the symmetry collapse (ExecScheduleAuto at the gate), and the run's
// virtual times must be bit-identical to a run with the collapse forced off.
func TestGateExchangeCollapseBitIdentical(t *testing.T) {
	for _, p := range []int{4, 16, 64} {
		m, err := platform.FlatClusterMachine(p)
		if err != nil {
			t.Fatal(err)
		}
		oOff := simnet.DefaultOptions()
		oOff.SymmetryCollapse = simnet.CollapseOff
		resOff, err := RunContext(context.Background(), m, RunConfig{Options: &oOff}, collapseProgram)
		if err != nil {
			t.Fatalf("p=%d off: %v", p, err)
		}
		resAuto, err := RunContext(context.Background(), m, RunConfig{}, collapseProgram)
		if err != nil {
			t.Fatalf("p=%d auto: %v", p, err)
		}
		for r := range resOff.Times {
			if resAuto.Times[r] != resOff.Times[r] {
				t.Fatalf("p=%d rank %d: collapsed %v, per-rank %v", p, r, resAuto.Times[r], resOff.Times[r])
			}
		}
		if resAuto.MakeSpan != resOff.MakeSpan ||
			resAuto.Messages != resOff.Messages || resAuto.Bytes != resOff.Bytes {
			t.Fatalf("p=%d: collapsed %v/%d/%d, per-rank %v/%d/%d", p,
				resAuto.MakeSpan, resAuto.Messages, resAuto.Bytes,
				resOff.MakeSpan, resOff.Messages, resOff.Bytes)
		}
	}
}

package bsp

import (
	"math"
	"strings"
	"testing"

	"hbsp/internal/adapt"
	"hbsp/internal/barrier"
	"hbsp/internal/matrix"
	"hbsp/internal/platform"
)

// groundTruthParams builds cost-model parameters directly from the profile's
// pairwise matrices (internal/bench runs the benchmark variant; it cannot be
// imported here because it builds on this package).
func groundTruthParams(m *platform.Machine) barrier.Params {
	p := m.Procs()
	ovh := matrix.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == j {
				ovh.Set(i, i, m.SelfOverhead(i))
			} else {
				ovh.Set(i, j, m.Overhead(i, j))
			}
		}
	}
	return barrier.Params{
		Latency:  m.Profile().LatencyMatrix(m.Placement()),
		Overhead: ovh,
		Beta:     m.Profile().BetaMatrix(m.Placement()),
	}
}

// exchangeProgram is a three-superstep workload touching every Sync-delivered
// mechanism: registration, puts, gets and BSMP messages.
func exchangeProgram(t *testing.T) Program {
	return func(ctx *Ctx) error {
		p := ctx.NProcs()
		area := make([]float64, p)
		ctx.PushReg("a", area)
		if err := ctx.Sync(); err != nil {
			return err
		}
		right := (ctx.Pid() + 1) % p
		if err := ctx.Put(right, "a", ctx.Pid(), []float64{float64(ctx.Pid() + 1)}); err != nil {
			return err
		}
		if err := ctx.Send(right, ctx.Pid(), []float64{7}); err != nil {
			return err
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		left := (ctx.Pid() - 1 + p) % p
		if area[left] != float64(left+1) {
			t.Errorf("process %d: put value %v, want %d", ctx.Pid(), area[left], left+1)
		}
		if ctx.QueueLen() != 1 {
			t.Errorf("process %d: QueueLen = %d, want 1", ctx.Pid(), ctx.QueueLen())
		}
		// Process left's slot (left-1+p)%p was written by its own left
		// neighbour in the previous superstep, with that neighbour's pid+1.
		slot := (left - 1 + p) % p
		got := make([]float64, 1)
		if err := ctx.Get(left, "a", slot, 1, got); err != nil {
			return err
		}
		if err := ctx.Sync(); err != nil {
			return err
		}
		if p > 1 && got[0] != float64(slot+1) {
			t.Errorf("process %d: get value %v, want %v", ctx.Pid(), got[0], float64(slot+1))
		}
		return nil
	}
}

// The schedule executor running the dissemination pattern must reproduce the
// hand-rolled default exchange bit for bit: same per-rank virtual times, same
// message and byte counts, on a noisy machine.
func TestScheduleSynchronizerMatchesDefaultBitForBit(t *testing.T) {
	for _, ranks := range []int{2, 5, 8, 16} {
		prof := platform.Xeon8x2x4() // default run-to-run noise kept on
		m, err := prof.Machine(ranks)
		if err != nil {
			t.Fatal(err)
		}
		diss, err := barrier.Dissemination(ranks)
		if err != nil {
			t.Fatal(err)
		}
		sync, err := NewScheduleSynchronizer(diss)
		if err != nil {
			t.Fatal(err)
		}
		base, err := Run(m.WithRunSeed(11), exchangeProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		viaSchedule, err := RunWith(m.WithRunSeed(11), sync, exchangeProgram(t))
		if err != nil {
			t.Fatal(err)
		}
		if base.Messages != viaSchedule.Messages || base.Bytes != viaSchedule.Bytes {
			t.Fatalf("ranks=%d: traffic differs: %d msgs/%d B vs %d msgs/%d B",
				ranks, base.Messages, base.Bytes, viaSchedule.Messages, viaSchedule.Bytes)
		}
		for r := range base.Times {
			if base.Times[r] != viaSchedule.Times[r] {
				t.Fatalf("ranks=%d: rank %d finishes at %v via default, %v via schedule",
					ranks, r, base.Times[r], viaSchedule.Times[r])
			}
		}
	}
}

// An adapt-constructed hierarchical hybrid barrier must run the count
// exchange end to end on a platform preset: 32 ranks round-robin across the
// 8 Xeon nodes cluster into 8 subsets, and the hybrid gather/release schedule
// delivers every count row.
func TestHybridScheduleSynchronizerEndToEnd(t *testing.T) {
	const ranks = 32
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(ranks)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := adapt.ClusterAuto(prof.LatencyMatrix(m.Placement()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Groups) != 8 {
		t.Fatalf("expected 8 clusters, got %d", len(cl.Groups))
	}
	hybrid, err := adapt.BuildHybrid(cl, adapt.SubTree, adapt.SubDissemination)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := NewScheduleSynchronizer(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sync.Name(), "hybrid(") {
		t.Fatalf("synchronizer name = %q", sync.Name())
	}
	if _, err := RunWith(m, sync, exchangeProgram(t)); err != nil {
		t.Fatal(err)
	}
}

// The full model-driven path: parameter matrices → greedy payload-aware
// selection → schedule synchronizer → simulated BSP program.
func TestAdaptedSynchronizerEndToEnd(t *testing.T) {
	const ranks = 24
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(ranks)
	if err != nil {
		t.Fatal(err)
	}
	sync, res, err := NewAdaptedSynchronizer(groundTruthParams(m), barrier.DefaultCostOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(res.Best.Name, "+counts") {
		t.Fatalf("selected candidate %q was not costed with the count payload", res.Best.Name)
	}
	if res.Best.Predicted <= 0 || math.IsNaN(res.Best.Predicted) {
		t.Fatalf("implausible predicted cost %v", res.Best.Predicted)
	}
	resRun, err := RunWith(m, sync, exchangeProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if resRun.MakeSpan <= 0 {
		t.Fatalf("no simulated time elapsed")
	}
}

func TestScheduleSynchronizerRejectsUnsuitableSchedules(t *testing.T) {
	if _, err := NewScheduleSynchronizer(nil); err == nil {
		t.Error("nil schedule should be rejected")
	}
	bc, err := barrier.Broadcast(8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduleSynchronizer(bc); err == nil {
		t.Error("broadcast schedule should be rejected: it cannot complete a total exchange")
	}
	rd, err := barrier.Reduce(8, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduleSynchronizer(rd); err == nil {
		t.Error("reduce schedule should be rejected")
	}
	// An incomplete flooding schedule fails verification.
	broken, err := barrier.Linear(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	broken.Stages = broken.Stages[:1]
	if _, err := NewScheduleSynchronizer(&barrier.Pattern{Name: "half", Procs: 8, Stages: broken.Stages}); err == nil {
		t.Error("truncated schedule should fail verification")
	}
}

func TestScheduleSynchronizerProcsMismatch(t *testing.T) {
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	m, err := prof.Machine(4)
	if err != nil {
		t.Fatal(err)
	}
	diss, err := barrier.Dissemination(8)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := NewScheduleSynchronizer(diss)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWith(m, sync, func(ctx *Ctx) error { return ctx.Sync() }); err == nil ||
		!strings.Contains(err.Error(), "schedule for 8 processes") {
		t.Fatalf("expected a process-count mismatch error, got %v", err)
	}
}

func TestRunWithNilSynchronizerUsesDefault(t *testing.T) {
	m := testMachine(t, 4)
	base, err := Run(m.WithRunSeed(3), exchangeProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := RunWith(m.WithRunSeed(3), nil, exchangeProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if base.MakeSpan != viaNil.MakeSpan {
		t.Fatalf("nil synchronizer (%g) differs from default (%g)", viaNil.MakeSpan, base.MakeSpan)
	}
	if DefaultSynchronizer().Name() != "dissemination" {
		t.Fatalf("default synchronizer name = %q", DefaultSynchronizer().Name())
	}
}

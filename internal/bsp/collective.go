package bsp

import (
	"fmt"
	"sync"

	"hbsp/internal/barrier"
	"hbsp/internal/mpi"
)

// ScheduleSource supplies the verified collective schedules the user-facing
// Ctx collectives execute. The default source builds the generator schedules
// of internal/barrier and caches them; alternative sources can substitute
// model-selected patterns (e.g. the adapted hybrid schedules of
// internal/adapt) for the non-rooted collectives. Implementations must be
// safe for concurrent use: every simulated process of a run queries the same
// source.
type ScheduleSource interface {
	// Schedule returns a verified pattern establishing the semantics for p
	// processes, the given root (ignored by non-rooted semantics) and
	// per-contribution payload of msgBytes.
	Schedule(sem barrier.Semantics, p, root, msgBytes int) (*barrier.Pattern, error)
}

// scheduleCache is the default ScheduleSource: generator-built schedules,
// verified once and cached by (semantics, procs, root, bytes) with their
// sparse adjacency warmed, so repeated collective calls share one pattern.
// The knowledge recursion only inspects stage structure, which is identical
// across payload sizes, so verification is memoized per (semantics, procs,
// root) and later sizes skip it. The pattern cache itself is bounded:
// programs cycling through many distinct payload sizes reset it instead of
// accumulating one P×P-scale pattern per size.
type scheduleCache struct {
	mu       sync.Mutex
	cache    map[scheduleKey]*barrier.Pattern
	verified map[structKey]bool
}

type scheduleKey struct {
	sem            barrier.Semantics
	p, root, bytes int
}

type structKey struct {
	sem     barrier.Semantics
	p, root int
}

// maxCachedSchedules bounds the per-size pattern cache; beyond it the cache
// is reset (the verification memo survives, so re-filling is cheap).
const maxCachedSchedules = 64

// NewScheduleCache returns the default generator-backed schedule source.
func NewScheduleCache() ScheduleSource {
	return &scheduleCache{
		cache:    map[scheduleKey]*barrier.Pattern{},
		verified: map[structKey]bool{},
	}
}

// defaultSchedules serves the Ctx collectives of runs started without an
// explicit RunConfig; sharing it across runs is safe because cached patterns
// are immutable once verified.
var defaultSchedules = NewScheduleCache()

func (sc *scheduleCache) Schedule(sem barrier.Semantics, p, root, msgBytes int) (*barrier.Pattern, error) {
	key := scheduleKey{sem: sem, p: p, root: root, bytes: msgBytes}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if pat, ok := sc.cache[key]; ok {
		return pat, nil
	}
	var (
		pat *barrier.Pattern
		err error
	)
	switch sem {
	case barrier.SemBroadcast:
		pat, err = barrier.Broadcast(p, root, msgBytes)
	case barrier.SemReduce:
		pat, err = barrier.Reduce(p, root, msgBytes)
	case barrier.SemAllReduce:
		pat, err = barrier.AllReduce(p, msgBytes)
	case barrier.SemAllGather:
		pat, err = barrier.AllGather(p, msgBytes)
	case barrier.SemTotalExchange:
		pat, err = barrier.TotalExchange(p, msgBytes)
	default:
		return nil, fmt.Errorf("bsp: no schedule generator for %s", sem)
	}
	if err != nil {
		return nil, err
	}
	sk := structKey{sem: sem, p: p, root: root}
	if !sc.verified[sk] {
		if err := pat.Verify(); err != nil {
			return nil, err
		}
		sc.verified[sk] = true
	} else if err := pat.Validate(); err != nil {
		return nil, err
	}
	// Warm the adjacency while the pattern is still owned by this call; the
	// simulated processes read it concurrently.
	pat.Adjacency()
	if len(sc.cache) >= maxCachedSchedules {
		sc.cache = map[scheduleKey]*barrier.Pattern{}
	}
	sc.cache[key] = pat
	return pat, nil
}

// ReduceOp combines two reduction operands; it must be associative and
// commutative for the result to be meaningful, and is always applied in rank
// order, so the result is deterministic.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = ReduceOp(mpi.OpMax)
	OpMin ReduceOp = ReduceOp(mpi.OpMin)
)

// The Ctx collectives below are synchronizing subroutine collectives: every
// process must call them collectively (same operation, compatible sizes, in
// the same order), and they communicate independently of the superstep
// machinery — buffered Put/Get/Send traffic stays pending until the next
// Sync. Each call executes a schedule verified against the collective's
// semantics by the knowledge recursion, billed at the schedule's per-edge
// payload sizes, so the virtual times match what barrier.Predict prices.

// flood executes the schedule with this context's process, converting the
// per-rank contributions into the typed payloads of the collectives.
func (c *Ctx) flood(sem barrier.Semantics, root, msgBytes int, own any) (map[int]any, error) {
	pat, err := c.schedules.Schedule(sem, c.NProcs(), root, msgBytes)
	if err != nil {
		return nil, err
	}
	return mpi.CommOn(c.proc).FloodSchedule(pat, own)
}

// Broadcast distributes the root's data to every process by executing a
// verified broadcast schedule. Every process must pass a slice of the same
// length; the root's contents are copied into data on every other process,
// and data is returned.
func (c *Ctx) Broadcast(root int, data []float64) ([]float64, error) {
	if root < 0 || root >= c.NProcs() {
		return nil, fmt.Errorf("bsp: broadcast from invalid root %d", root)
	}
	var own any
	if c.Pid() == root {
		// Contributions flood by reference across the simulated processes;
		// hand over a private copy so the caller may mutate data after the
		// collective returns while laggard ranks are still reading it.
		own = append([]float64(nil), data...)
	}
	known, err := c.flood(barrier.SemBroadcast, root, 8*len(data), own)
	if err != nil {
		return nil, err
	}
	if c.Pid() == root {
		return data, nil
	}
	got, ok := known[root].([]float64)
	if !ok {
		return nil, fmt.Errorf("bsp: process %d never received the broadcast of process %d", c.Pid(), root)
	}
	if len(got) != len(data) {
		return nil, fmt.Errorf("bsp: broadcast of %d elements into a buffer of %d on process %d", len(got), len(data), c.Pid())
	}
	copy(data, got)
	return data, nil
}

// Reduce combines one equally sized vector per process elementwise with op by
// executing a verified reduce schedule. The root returns the combined vector
// (contributions applied in rank order); every other process returns nil.
func (c *Ctx) Reduce(root int, values []float64, op ReduceOp) ([]float64, error) {
	if root < 0 || root >= c.NProcs() {
		return nil, fmt.Errorf("bsp: reduce to invalid root %d", root)
	}
	known, err := c.flood(barrier.SemReduce, root, 8*len(values), append([]float64(nil), values...))
	if err != nil {
		return nil, err
	}
	if c.Pid() != root {
		return nil, nil
	}
	return combineVectors(known, c.NProcs(), len(values), op)
}

// AllReduce combines one equally sized vector per process elementwise with op
// by executing a verified allreduce schedule and returns the combined vector
// on every process. Contributions are applied in rank order, so the result
// is bit-identical on all processes for any operator.
func (c *Ctx) AllReduce(values []float64, op ReduceOp) ([]float64, error) {
	known, err := c.flood(barrier.SemAllReduce, 0, 8*len(values), append([]float64(nil), values...))
	if err != nil {
		return nil, err
	}
	return combineVectors(known, c.NProcs(), len(values), op)
}

// AllGather collects one block per process by executing a verified allgather
// schedule and returns the blocks indexed by rank, identical on every
// process. Blocks should be equally sized for the billed message sizes to
// match the schedule's accumulating payload model.
func (c *Ctx) AllGather(block []float64) ([][]float64, error) {
	known, err := c.flood(barrier.SemAllGather, 0, 8*len(block), append([]float64(nil), block...))
	if err != nil {
		return nil, err
	}
	out := make([][]float64, c.NProcs())
	for r := range out {
		got, ok := known[r].([]float64)
		if !ok {
			return nil, fmt.Errorf("bsp: process %d never received the block of process %d", c.Pid(), r)
		}
		out[r] = append([]float64(nil), got...)
	}
	return out, nil
}

// TotalExchange performs the all-to-all personalized exchange by executing a
// verified total-exchange schedule: blocks[j] is the vector this process
// sends to process j, and the returned slice holds, per source process, the
// vector addressed to this process.
func (c *Ctx) TotalExchange(blocks [][]float64) ([][]float64, error) {
	p := c.NProcs()
	if len(blocks) != p {
		return nil, fmt.Errorf("bsp: total exchange needs %d blocks, got %d", p, len(blocks))
	}
	blockBytes := 0
	own := make([][]float64, p)
	for j, b := range blocks {
		if 8*len(b) > blockBytes {
			blockBytes = 8 * len(b)
		}
		own[j] = append([]float64(nil), b...)
	}
	known, err := c.flood(barrier.SemTotalExchange, 0, blockBytes, own)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, p)
	for src := 0; src < p; src++ {
		row, ok := known[src].([][]float64)
		if !ok {
			return nil, fmt.Errorf("bsp: process %d never received the blocks of process %d", c.Pid(), src)
		}
		if len(row) != p {
			return nil, fmt.Errorf("bsp: process %d sent %d blocks, want %d", src, len(row), p)
		}
		out[src] = append([]float64(nil), row[c.Pid()]...)
	}
	return out, nil
}

// combineVectors reduces the P per-rank vectors elementwise in rank order.
// The result is freshly allocated; flooded slices are shared across the
// simulated processes and must not be written to.
func combineVectors(known map[int]any, p, n int, op ReduceOp) ([]float64, error) {
	out := make([]float64, n)
	for r := 0; r < p; r++ {
		v, ok := known[r]
		if !ok {
			return nil, fmt.Errorf("bsp: schedule never delivered the operand of process %d", r)
		}
		vec, ok := v.([]float64)
		if !ok {
			return nil, fmt.Errorf("bsp: operand of process %d is %T, want []float64", r, v)
		}
		if len(vec) != n {
			return nil, fmt.Errorf("bsp: operand of process %d has %d elements, want %d", r, len(vec), n)
		}
		if r == 0 {
			copy(out, vec)
			continue
		}
		for i, x := range vec {
			out[i] = op(out[i], x)
		}
	}
	return out, nil
}

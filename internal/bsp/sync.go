package bsp

import (
	"errors"
	"fmt"

	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// Sync ends the current superstep (bsp_sync). It implements the thesis'
// design: a total exchange of per-pair message counts (Section 6.4) — run by
// the configured Synchronizer, the dissemination pattern by default —
// establishes how many eagerly injected one-sided messages each process must
// drain; the messages are then drained (benefitting from any overlap already
// achieved in the background), get requests are served against the pre-put
// state of the registered areas, buffered puts are applied, pending
// registrations take effect, and the BSMP queue is swapped.
func (c *Ctx) Sync() error {
	counts, err := c.runExchange()
	if err != nil {
		return err
	}

	// Drain every one-sided message addressed to this process, in source
	// order. Puts are deferred so that gets observe the pre-put state.
	var puts []*putMsg
	for src := 0; src < c.NProcs(); src++ {
		expect := counts[src][c.Pid()]
		for k := 0; k < expect; k++ {
			payload := c.proc.Recv(src, tagOneSided)
			msg, ok := payload.(*oneSided)
			if !ok {
				return fmt.Errorf("bsp: process %d received an unexpected message type from %d", c.Pid(), src)
			}
			switch {
			case msg.Put != nil:
				puts = append(puts, msg.Put)
			case msg.Get != nil:
				if err := c.serveGet(msg.Get); err != nil {
					return err
				}
			case msg.Bsmp != nil:
				c.nextQueue = append(c.nextQueue, *msg.Bsmp)
			default:
				return fmt.Errorf("bsp: process %d received an empty one-sided message from %d", c.Pid(), src)
			}
		}
	}

	// Collect the replies to this process' own get requests, in issue order.
	for _, g := range c.pendingGets {
		payload := c.proc.Recv(g.src, tagGetReply)
		data, ok := payload.([]float64)
		if !ok {
			return fmt.Errorf("bsp: process %d received a malformed get reply from %d", c.Pid(), g.src)
		}
		if len(data) != len(g.dest) {
			return fmt.Errorf("bsp: get reply from %d has %d elements, expected %d", g.src, len(data), len(g.dest))
		}
		copy(g.dest, data)
	}

	// Apply buffered puts now that all gets (everywhere) observe the old
	// state of this process' areas.
	for _, put := range puts {
		if err := c.applyPut(put); err != nil {
			return err
		}
	}

	// Registrations and de-registrations committed during the superstep take
	// effect now.
	for _, op := range c.pendingReg {
		if op.push {
			c.regs[op.name] = op.buf
		} else {
			delete(c.regs, op.name)
		}
	}
	c.pendingReg = c.pendingReg[:0]

	// The BSMP queue delivered by this synchronization replaces the previous
	// superstep's queue.
	c.queue = c.nextQueue
	c.nextQueue = nil

	// Reset per-superstep state.
	for i := range c.outCounts {
		c.outCounts[i] = 0
	}
	c.pendingGets = c.pendingGets[:0]
	c.currentStep++
	c.proc.TraceSuperstep(c.currentStep - 1)
	if c.observer != nil {
		c.observer(c.Pid(), c.currentStep-1, c.proc.Now())
	}
	return nil
}

// runExchange performs the count total exchange on the engine the run
// selected: synchronizers exposing a direct exchange schedule (both built-in
// synchronizers do) are evaluated at the run's gate by the goroutine-free
// discrete-event evaluator, with bit-identical virtual times; custom
// synchronizers and WithConcurrentEngine runs keep the concurrent walk.
func (c *Ctx) runExchange() ([][]int, error) {
	if g := c.proc.SharedGate(); g != nil {
		if dx, ok := c.sync.(directExchanger); ok {
			return c.directExchange(g, dx)
		}
	}
	return c.sync.ExchangeCounts(c)
}

// syncTicket is the rendezvous descriptor of one rank entering Sync: its
// synchronizer (the leader verifies agreement), its outgoing count row, and
// the slot the leader deposits the exchanged count matrix in.
type syncTicket struct {
	sync Synchronizer
	row  []int
	out  *[][]int
}

// directExchange evaluates the count exchange at the run's gate. The leader
// snapshots every rank's count row — the same copy the concurrent exchange
// makes before its first stage — evaluates the exchange's op-stream against
// the live per-rank clocks, and hands the complete P×P matrix to every rank;
// no count row ever travels through a mailbox.
func (c *Ctx) directExchange(g *simnet.Gate, dx directExchanger) ([][]int, error) {
	var counts [][]int
	t := &syncTicket{sync: c.sync, row: c.outCounts, out: &counts}
	err := g.Arrive(c.proc, t, func(tickets []any) error {
		p := c.NProcs()
		rows := make([][]int, p)
		for r, ti := range tickets {
			st, ok := ti.(*syncTicket)
			if !ok || st.sync != c.sync {
				return errors.New("bsp: ranks disagree on the superstep synchronizer (Sync is collective)")
			}
			rows[r] = append([]int(nil), st.row...)
		}
		sch, err := dx.exchangeSchedule(p)
		if err != nil {
			return err
		}
		procs := c.proc.RunProcs()
		ev := sched.EvaluatorAt(g, c.proc)
		ev.ImportProcs(procs)
		ev.ExecScheduleAuto(sch, tagCountBase, false)
		ev.ExportProcs(procs)
		for _, ti := range tickets {
			*ti.(*syncTicket).out = rows
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// serveGet reads the requested slice of a registered area and sends it back
// to the requester.
func (c *Ctx) serveGet(req *getReq) error {
	buf, ok := c.regs[req.Name]
	if !ok {
		return fmt.Errorf("%w: %q on process %d", ErrNotRegistered, req.Name, c.Pid())
	}
	if req.Offset < 0 || req.Offset+req.N > len(buf) {
		return fmt.Errorf("bsp: get of [%d,%d) exceeds area %q of length %d on process %d",
			req.Offset, req.Offset+req.N, req.Name, len(buf), c.Pid())
	}
	data := append([]float64(nil), buf[req.Offset:req.Offset+req.N]...)
	c.proc.Post(req.Requester, tagGetReply, headerBytes+8*len(data), data)
	return nil
}

// applyPut writes a buffered put into the local registered area.
func (c *Ctx) applyPut(put *putMsg) error {
	buf, ok := c.regs[put.Name]
	if !ok {
		return fmt.Errorf("%w: %q on process %d", ErrNotRegistered, put.Name, c.Pid())
	}
	if put.Offset < 0 || put.Offset+len(put.Data) > len(buf) {
		return fmt.Errorf("bsp: put of [%d,%d) exceeds area %q of length %d on process %d",
			put.Offset, put.Offset+len(put.Data), put.Name, len(buf), c.Pid())
	}
	copy(buf[put.Offset:], put.Data)
	return nil
}

// exchangeCounts performs the dissemination total exchange of the per-pair
// one-sided message counts: after ⌈log2 P⌉ stages with doubling payloads,
// every process holds the full P×P count map (Section 6.5). It returns the
// map indexed [source][destination]. The wire protocol (tagCountBase+stage
// tags, map[int][]int payloads, headerBytes+rows*P*4 sizing) is shared with
// scheduleSync.ExchangeCounts in synchronizer.go — change them together;
// TestScheduleSynchronizerMatchesDefaultBitForBit guards the agreement.
func (c *Ctx) exchangeCounts() ([][]int, error) {
	p := c.NProcs()
	rank := c.Pid()
	known := map[int][]int{rank: append([]int(nil), c.outCounts...)}
	traced := c.proc.Tracing()
	if traced {
		defer c.proc.TraceStage(-1)
	}
	stage := 0
	for dist := 1; dist < p; dist *= 2 {
		if traced {
			c.proc.TraceStage(stage)
		}
		dst := (rank + dist) % p
		src := (rank - dist + p) % p
		tag := tagCountBase + stage

		// Snapshot of everything known so far travels to the next neighbour.
		payload := make(map[int][]int, len(known))
		for r, row := range known {
			payload[r] = row
		}
		size := headerBytes + len(payload)*p*countEntryBytes

		rreq := c.proc.Irecv(src, tag)
		sreq := c.proc.Isend(dst, tag, size, payload)
		in := c.proc.Wait(rreq)
		c.proc.Wait(sreq)

		got, ok := in.(map[int][]int)
		if !ok {
			return nil, fmt.Errorf("bsp: process %d received a malformed count map from %d", rank, src)
		}
		for r, row := range got {
			if _, seen := known[r]; !seen {
				known[r] = row
			}
		}
		stage++
	}

	counts := make([][]int, p)
	for r := 0; r < p; r++ {
		row, ok := known[r]
		if !ok || len(row) != p {
			return nil, fmt.Errorf("bsp: process %d is missing the count row of process %d after synchronization", rank, r)
		}
		counts[r] = row
	}
	return counts, nil
}

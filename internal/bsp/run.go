package bsp

import (
	"context"
	"errors"

	"hbsp/internal/simnet"
)

// SyncObserver is called by every process at the end of each Sync with the
// index of the superstep just completed and the process' virtual time in
// seconds. Observers are invoked from the per-rank simulation goroutines and
// must be safe for concurrent use.
type SyncObserver func(pid, step int, vtime float64)

// RunConfig bundles everything a BSP run can be configured with. The zero
// value runs with the dissemination synchronizer, generator-built collective
// schedules and the default simulator options.
type RunConfig struct {
	// Sync performs the count total exchange ending every superstep; nil
	// selects the default dissemination synchronizer.
	Sync Synchronizer
	// Schedules supplies the verified schedules the user-facing collectives
	// execute; nil selects a fresh generator-backed cache shared by all ranks
	// of the run.
	Schedules ScheduleSource
	// Observer, when non-nil, is notified at the end of every Sync.
	Observer SyncObserver
	// Options are the simulator options; nil selects simnet.DefaultOptions.
	Options *simnet.Options
}

// RunContext executes the SPMD program on every rank of the machine under an
// explicit configuration and a cancellable context: cancelling the context
// aborts the run through the simulator's teardown path with an error
// wrapping simnet.ErrAborted.
func RunContext(ctx context.Context, m Machine, cfg RunConfig, program Program) (*simnet.Result, error) {
	if m == nil {
		return nil, errors.New("bsp: nil machine")
	}
	sync := cfg.Sync
	if sync == nil {
		sync = DefaultSynchronizer()
	}
	schedules := cfg.Schedules
	if schedules == nil {
		schedules = NewScheduleCache()
	}
	o := simnet.DefaultOptions()
	if cfg.Options != nil {
		o = *cfg.Options
	}
	return simnet.RunContext(ctx, m, func(p *simnet.Proc) error {
		c := newCtx(p, m)
		c.sync = sync
		c.schedules = schedules
		c.observer = cfg.Observer
		return program(c)
	}, o)
}

package bsp

import (
	"errors"
	"fmt"

	"hbsp/internal/adapt"
	"hbsp/internal/barrier"
	"hbsp/internal/simnet"
)

// Synchronizer drives the total exchange of per-pair message counts that ends
// a superstep (Section 6.4). The default is the hand-rolled dissemination
// exchange; NewScheduleSynchronizer executes any verified collective schedule
// instead, which is how model-selected hybrid patterns from internal/adapt
// reach the runtime.
type Synchronizer interface {
	// Name identifies the synchronizer for reporting.
	Name() string
	// ExchangeCounts returns the full P×P one-sided message-count map,
	// indexed [source][destination], as established on the calling process.
	ExchangeCounts(c *Ctx) ([][]int, error)
}

// disseminationSync is the default synchronizer: the ⌈log2 P⌉-stage
// dissemination exchange with doubling payloads of Section 6.5.
type disseminationSync struct{}

func (disseminationSync) Name() string                           { return "dissemination" }
func (disseminationSync) ExchangeCounts(c *Ctx) ([][]int, error) { return c.exchangeCounts() }

// DefaultSynchronizer returns the dissemination synchronizer the runtime uses
// when none is configured.
func DefaultSynchronizer() Synchronizer { return disseminationSync{} }

// scheduleSync executes an arbitrary verified schedule: at every stage each
// process receives from its in-edges and forwards everything it knows along
// its out-edges, so after the last stage the count map is complete on every
// process whenever the schedule passes the all-pairs knowledge recursion.
// It speaks the same wire protocol as Ctx.exchangeCounts in sync.go
// (tagCountBase+stage tags, map[int][]int payloads, headerBytes+rows*P*4
// sizing) — change them together.
type scheduleSync struct {
	pat *barrier.Pattern
}

// NewScheduleSynchronizer wraps a collective schedule as a count-exchange
// synchronizer. The pattern must pass the all-pairs knowledge recursion
// (barrier/allgather-style semantics): rooted broadcast or reduce schedules
// cannot deliver the full count map and are rejected.
func NewScheduleSynchronizer(pat *barrier.Pattern) (Synchronizer, error) {
	if pat == nil {
		return nil, errors.New("bsp: nil schedule")
	}
	switch pat.Semantics {
	case barrier.SemBroadcast, barrier.SemReduce:
		return nil, fmt.Errorf("bsp: %s schedule cannot implement the count total exchange", pat.Semantics)
	}
	if err := pat.Verify(); err != nil {
		return nil, fmt.Errorf("bsp: schedule rejected: %w", err)
	}
	// Warm the lazy adjacency cache now, while the pattern is still owned by
	// a single goroutine: ExchangeCounts reads it concurrently from every
	// simulated process.
	pat.Adjacency()
	return &scheduleSync{pat: pat}, nil
}

func (s *scheduleSync) Name() string { return s.pat.Name }

func (s *scheduleSync) ExchangeCounts(c *Ctx) ([][]int, error) {
	p := c.NProcs()
	rank := c.Pid()
	if s.pat.Procs != p {
		return nil, fmt.Errorf("bsp: schedule for %d processes on a %d-process run", s.pat.Procs, p)
	}
	known := map[int][]int{rank: append([]int(nil), c.outCounts...)}
	traced := c.proc.Tracing()
	if traced {
		defer c.proc.TraceStage(-1)
	}
	for stage, st := range s.pat.Adjacency() {
		if traced {
			c.proc.TraceStage(stage)
		}
		ins := st.In[rank]
		outs := st.Out[rank]
		if len(ins) == 0 && len(outs) == 0 {
			continue
		}
		tag := tagCountBase + stage

		recvs := make([]*simnet.Request, len(ins))
		for k, src := range ins {
			recvs[k] = c.proc.Irecv(src, tag)
		}
		// Snapshot of everything known so far travels along every out-edge.
		var sends []*simnet.Request
		if len(outs) > 0 {
			payload := make(map[int][]int, len(known))
			for r, row := range known {
				payload[r] = row
			}
			size := headerBytes + len(payload)*p*countEntryBytes
			for _, dst := range outs {
				sends = append(sends, c.proc.Isend(dst, tag, size, payload))
			}
		}
		for k, rreq := range recvs {
			in := c.proc.Wait(rreq)
			got, ok := in.(map[int][]int)
			if !ok {
				return nil, fmt.Errorf("bsp: process %d received a malformed count map from %d", rank, ins[k])
			}
			for r, row := range got {
				if _, seen := known[r]; !seen {
					known[r] = row
				}
			}
		}
		for _, sreq := range sends {
			c.proc.Wait(sreq)
		}
	}

	counts := make([][]int, p)
	for r := 0; r < p; r++ {
		row, ok := known[r]
		if !ok || len(row) != p {
			return nil, fmt.Errorf("bsp: process %d is missing the count row of process %d after synchronization", rank, r)
		}
		counts[r] = row
	}
	return counts, nil
}

// NewAdaptedSynchronizer runs the model-driven construction of Chapter 7 on
// the supplied parameter matrices, costs every candidate with the count
// payload it would carry (WithCountPayload), and wraps the winner as a
// runtime synchronizer. It returns the adaptation result so callers can
// report the ranking.
func NewAdaptedSynchronizer(params barrier.Params, opts barrier.CostOptions) (Synchronizer, *adapt.Result, error) {
	res, err := adapt.GreedySync(params, opts, countEntryBytes)
	if err != nil {
		return nil, nil, err
	}
	sync, err := NewScheduleSynchronizer(res.Best.Pattern)
	if err != nil {
		return nil, nil, err
	}
	return sync, res, nil
}

// RunWith executes the SPMD program with a specific synchronizer ending every
// superstep; Run is RunWith with the default dissemination synchronizer.
func RunWith(m Machine, sync Synchronizer, program Program, opts ...simnet.Options) (*simnet.Result, error) {
	if m == nil {
		return nil, errors.New("bsp: nil machine")
	}
	if sync == nil {
		sync = DefaultSynchronizer()
	}
	return simnet.Run(m, func(p *simnet.Proc) error {
		ctx := newCtx(p, m)
		ctx.sync = sync
		return program(ctx)
	}, opts...)
}

package bsp

import (
	"errors"
	"fmt"
	"sync"

	"hbsp/internal/adapt"
	"hbsp/internal/barrier"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// Synchronizer drives the total exchange of per-pair message counts that ends
// a superstep (Section 6.4). The default is the hand-rolled dissemination
// exchange; NewScheduleSynchronizer executes any verified collective schedule
// instead, which is how model-selected hybrid patterns from internal/adapt
// reach the runtime.
type Synchronizer interface {
	// Name identifies the synchronizer for reporting.
	Name() string
	// ExchangeCounts returns the full P×P one-sided message-count map,
	// indexed [source][destination], as established on the calling process.
	ExchangeCounts(c *Ctx) ([][]int, error)
}

// directExchanger is the optional capability a synchronizer implements to
// route its count exchange through the goroutine-free discrete-event
// evaluator: the returned schedule is the exchange's exact op-stream — the
// same stage walk the synchronizer's ExchangeCounts performs concurrently,
// with every payload size resolved up front (the count-row snapshot a rank
// sends at stage s is knowledge-determined, never data-determined). Sync
// evaluates it at the run's gate; synchronizers without the capability (or
// runs under WithConcurrentEngine) keep the concurrent walk.
type directExchanger interface {
	exchangeSchedule(p int) (sched.Schedule, error)
}

// disseminationSync is the default synchronizer: the ⌈log2 P⌉-stage
// dissemination exchange with doubling payloads of Section 6.5. The evaluator
// schedule of each process count is cached on the synchronizer, so repeated
// runs share one immutable stage structure.
type disseminationSync struct {
	mu  sync.Mutex
	byP map[int]sched.Schedule
}

func (*disseminationSync) Name() string                           { return "dissemination" }
func (*disseminationSync) ExchangeCounts(c *Ctx) ([][]int, error) { return c.exchangeCounts() }

// staticExchangeLimit bounds the rank counts whose exchange schedule is
// materialized (and cached) as immutable StaticStages — shareable across
// concurrent runs and stable under the evaluator's partition cache. Above it
// the exchange is handed out as a fresh streaming Circulant per call: O(1)
// state per stage, which is what keeps the P=1M count exchange in memory.
const staticExchangeLimit = 1 << 12

// exchangeOffsetsSizes returns the dissemination exchange's stage offsets
// (2^s) and payload sizes (header plus the min(2^s, p) count rows the sender
// holds entering the stage).
func exchangeOffsetsSizes(p int) (offs, sizes []int) {
	known := 1 // rows held entering the stage: min(2^s, p)
	for dist := 1; dist < p; dist *= 2 {
		offs = append(offs, dist)
		sizes = append(sizes, headerBytes+known*p*countEntryBytes)
		if known *= 2; known > p {
			known = p
		}
	}
	return offs, sizes
}

func (d *disseminationSync) exchangeSchedule(p int) (sched.Schedule, error) {
	if p > staticExchangeLimit {
		offs, sizes := exchangeOffsetsSizes(p)
		return sched.NewCirculant(p, offs, sizes)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.byP[p]; ok {
		return s, nil
	}
	var stages []sched.Stage
	offs, sizes := exchangeOffsetsSizes(p)
	for k, dist := range offs {
		st := sched.Stage{Out: make([][]int, p), In: make([][]int, p), OutBytes: make([][]int, p)}
		for i := 0; i < p; i++ {
			st.Out[i] = []int{(i + dist) % p}
			st.In[i] = []int{(i - dist + p) % p}
			st.OutBytes[i] = []int{sizes[k]}
		}
		stages = append(stages, st)
	}
	s := &sched.StaticStages{Procs: p, Stages: stages, Sym: sched.SymCirculant}
	if d.byP == nil {
		d.byP = map[int]sched.Schedule{}
	}
	d.byP[p] = s
	return s, nil
}

// ExchangeSchedule returns the default dissemination count-exchange schedule
// for p ranks — the exact op-stream Sync evaluates per superstep, with every
// payload size resolved up front. Exported so direct RunSchedule sweeps (and
// cmd/simbench's large-P symmetry entries) can evaluate the superstep count
// exchange without spawning a concurrent run.
func ExchangeSchedule(p int) (sched.Schedule, error) {
	if p < 1 {
		return nil, fmt.Errorf("bsp: count exchange with p=%d", p)
	}
	return defaultSync.exchangeSchedule(p)
}

// defaultSync is the shared default synchronizer instance; sharing it lets
// every run reuse the cached exchange schedules.
var defaultSync = &disseminationSync{}

// DefaultSynchronizer returns the dissemination synchronizer the runtime uses
// when none is configured.
func DefaultSynchronizer() Synchronizer { return defaultSync }

// scheduleSync executes an arbitrary verified schedule: at every stage each
// process receives from its in-edges and forwards everything it knows along
// its out-edges, so after the last stage the count map is complete on every
// process whenever the schedule passes the all-pairs knowledge recursion.
// It speaks the same wire protocol as Ctx.exchangeCounts in sync.go
// (tagCountBase+stage tags, map[int][]int payloads, headerBytes+rows*P*4
// sizing) — change them together.
type scheduleSync struct {
	pat *barrier.Pattern

	// once builds the evaluator schedule of the exchange: the pattern's
	// adjacency with every out-edge sized at the count-row snapshot the
	// sender holds entering the stage (the knowledge recursion's
	// KnownBeforeStage counts).
	once  sync.Once
	sched sched.Schedule
}

// NewScheduleSynchronizer wraps a collective schedule as a count-exchange
// synchronizer. The pattern must pass the all-pairs knowledge recursion
// (barrier/allgather-style semantics): rooted broadcast or reduce schedules
// cannot deliver the full count map and are rejected.
func NewScheduleSynchronizer(pat *barrier.Pattern) (Synchronizer, error) {
	if pat == nil {
		return nil, errors.New("bsp: nil schedule")
	}
	switch pat.Semantics {
	case barrier.SemBroadcast, barrier.SemReduce:
		return nil, fmt.Errorf("bsp: %s schedule cannot implement the count total exchange", pat.Semantics)
	}
	if err := pat.Verify(); err != nil {
		return nil, fmt.Errorf("bsp: schedule rejected: %w", err)
	}
	// Warm the lazy adjacency cache now, while the pattern is still owned by
	// a single goroutine: ExchangeCounts reads it concurrently from every
	// simulated process.
	pat.Adjacency()
	return &scheduleSync{pat: pat}, nil
}

func (s *scheduleSync) Name() string { return s.pat.Name }

func (s *scheduleSync) exchangeSchedule(p int) (sched.Schedule, error) {
	if s.pat.Procs != p {
		return nil, fmt.Errorf("bsp: schedule for %d processes on a %d-process run", s.pat.Procs, p)
	}
	s.once.Do(func() {
		adj := s.pat.Adjacency()
		known := s.pat.KnownBeforeStage()
		stages := make([]sched.Stage, len(adj))
		for sg, st := range adj {
			outBytes := make([][]int, p)
			for i := 0; i < p; i++ {
				if len(st.Out[i]) == 0 {
					continue
				}
				size := headerBytes + known[sg][i]*p*countEntryBytes
				row := make([]int, len(st.Out[i]))
				for k := range row {
					row[k] = size
				}
				outBytes[i] = row
			}
			stages[sg] = sched.Stage{Out: st.Out, In: st.In, OutBytes: outBytes}
		}
		// A circulant pattern has rank-invariant knowledge counts, so the
		// count-sized payloads stay uniform per stage and the pattern's
		// symmetry hint carries over to the exchange schedule.
		s.sched = &sched.StaticStages{Procs: p, Stages: stages, Sym: s.pat.Sym}
	})
	return s.sched, nil
}

func (s *scheduleSync) ExchangeCounts(c *Ctx) ([][]int, error) {
	p := c.NProcs()
	rank := c.Pid()
	if s.pat.Procs != p {
		return nil, fmt.Errorf("bsp: schedule for %d processes on a %d-process run", s.pat.Procs, p)
	}
	known := map[int][]int{rank: append([]int(nil), c.outCounts...)}
	traced := c.proc.Tracing()
	if traced {
		defer c.proc.TraceStage(-1)
	}
	for stage, st := range s.pat.Adjacency() {
		if traced {
			c.proc.TraceStage(stage)
		}
		ins := st.In[rank]
		outs := st.Out[rank]
		if len(ins) == 0 && len(outs) == 0 {
			continue
		}
		tag := tagCountBase + stage

		recvs := make([]*simnet.Request, len(ins))
		for k, src := range ins {
			recvs[k] = c.proc.Irecv(src, tag)
		}
		// Snapshot of everything known so far travels along every out-edge.
		var sends []*simnet.Request
		if len(outs) > 0 {
			payload := make(map[int][]int, len(known))
			for r, row := range known {
				payload[r] = row
			}
			size := headerBytes + len(payload)*p*countEntryBytes
			for _, dst := range outs {
				sends = append(sends, c.proc.Isend(dst, tag, size, payload))
			}
		}
		for k, rreq := range recvs {
			in := c.proc.Wait(rreq)
			got, ok := in.(map[int][]int)
			if !ok {
				return nil, fmt.Errorf("bsp: process %d received a malformed count map from %d", rank, ins[k])
			}
			for r, row := range got {
				if _, seen := known[r]; !seen {
					known[r] = row
				}
			}
		}
		for _, sreq := range sends {
			c.proc.Wait(sreq)
		}
	}

	counts := make([][]int, p)
	for r := 0; r < p; r++ {
		row, ok := known[r]
		if !ok || len(row) != p {
			return nil, fmt.Errorf("bsp: process %d is missing the count row of process %d after synchronization", rank, r)
		}
		counts[r] = row
	}
	return counts, nil
}

// NewAdaptedSynchronizer runs the model-driven construction of Chapter 7 on
// the supplied parameter matrices, costs every candidate with the count
// payload it would carry (WithCountPayload), and wraps the winner as a
// runtime synchronizer. It returns the adaptation result so callers can
// report the ranking.
func NewAdaptedSynchronizer(params barrier.Params, opts barrier.CostOptions) (Synchronizer, *adapt.Result, error) {
	res, err := adapt.GreedySync(params, opts, countEntryBytes)
	if err != nil {
		return nil, nil, err
	}
	sync, err := NewScheduleSynchronizer(res.Best.Pattern)
	if err != nil {
		return nil, nil, err
	}
	return sync, res, nil
}

// RunWith executes the SPMD program with a specific synchronizer ending every
// superstep; Run is RunWith with the default dissemination synchronizer.
func RunWith(m Machine, sync Synchronizer, program Program, opts ...simnet.Options) (*simnet.Result, error) {
	if m == nil {
		return nil, errors.New("bsp: nil machine")
	}
	if sync == nil {
		sync = DefaultSynchronizer()
	}
	return simnet.Run(m, func(p *simnet.Proc) error {
		ctx := newCtx(p, m)
		ctx.sync = sync
		return program(ctx)
	}, opts...)
}

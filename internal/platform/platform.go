// Package platform defines the synthetic hardware profiles that stand in for
// the thesis' physical test clusters. A Profile combines a hierarchical
// topology (nodes × sockets × cores), per-node core designs with their memory
// hierarchies, and per-distance-class communication link parameters
// (latency, per-message gap, inverse bandwidth, per-request software
// overhead). From a profile and a process count, the package derives the
// ground-truth pairwise parameter matrices that both the virtual-time
// simulator (the "hardware") and the benchmark procedures (the "measurement")
// consume.
//
// The thesis measured two real clusters — 8 nodes of dual quad-core Xeons and
// 12 nodes of dual hexa-core Opterons on gigabit Ethernet — which are not
// available here; the presets in this package are synthetic equivalents with
// the same hierarchy and realistic commodity-cluster orders of magnitude, as
// recorded in the preset definitions (presets.go).
package platform

import (
	"fmt"
	"math"

	"hbsp/internal/kernels"
	"hbsp/internal/matrix"
	"hbsp/internal/memmodel"
	"hbsp/internal/topology"
)

// Link holds the communication parameters of one topological distance class.
// All times are in seconds, Beta in seconds per byte.
type Link struct {
	// Latency is the end-to-end delay of a minimal message (the L_ij term).
	Latency float64
	// Gap is the per-message occupancy of the network interface, the LogGP
	// "g" term; it drives contention when many messages share a NIC.
	Gap float64
	// Beta is the inverse bandwidth in seconds per byte.
	Beta float64
	// Overhead is the per-request software overhead paid by the sending CPU
	// when initiating a transfer to this distance class (the O_ij term).
	Overhead float64
}

// Profile is a complete synthetic platform description.
type Profile struct {
	// Name identifies the profile ("xeon-8x2x4", ...).
	Name string
	// Topology is the node/socket/core structure.
	Topology topology.Topology
	// Policy is the default process placement policy.
	Policy topology.PlacementPolicy
	// Cores lists the core design per node. A single entry applies to every
	// node; otherwise the slice must have Topology.Nodes entries, which is
	// how heterogeneous-node clusters are described.
	Cores []memmodel.Core
	// Links maps each distance class to its link parameters. DistanceSelf
	// only uses the Overhead field.
	Links map[topology.Distance]Link
	// SelfOverhead is the cost of invoking a communication operation with an
	// empty request list (the O_ii invocation overhead).
	SelfOverhead float64
	// HeteroSpread is the relative, deterministic per-pair perturbation
	// applied to link parameters so that the pairwise matrices are not
	// perfectly uniform within a distance class (cable lengths, switch
	// ports, ...). 0.05 means ±5 %.
	HeteroSpread float64
	// NoiseRel is the relative magnitude of run-to-run noise applied by the
	// simulator and benchmark runs (operating-system jitter).
	NoiseRel float64
	// Seed makes every derived pseudo-random stream deterministic.
	Seed int64
}

// Validate checks the profile for structural consistency.
func (p *Profile) Validate() error {
	if err := p.Topology.Validate(); err != nil {
		return err
	}
	if len(p.Cores) != 1 && len(p.Cores) != p.Topology.Nodes {
		return fmt.Errorf("platform: %d core specs for %d nodes", len(p.Cores), p.Topology.Nodes)
	}
	for _, c := range p.Cores {
		if err := c.Memory.Validate(); err != nil {
			return fmt.Errorf("platform: core %q: %w", c.Name, err)
		}
		if c.PeakFlops() <= 0 {
			return fmt.Errorf("platform: core %q has non-positive peak", c.Name)
		}
	}
	required := []topology.Distance{topology.DistanceSocket, topology.DistanceNode, topology.DistanceNetwork}
	if t := p.Topology; t.NodesPerGroup > 0 && t.Nodes > t.NodesPerGroup {
		// A grouped topology with more than one group produces DistanceGroup
		// pairs, so the class must be parameterized.
		required = append(required, topology.DistanceGroup)
	} else if _, ok := p.Links[topology.DistanceGroup]; ok {
		// Conversely, on a topology that never produces DistanceGroup pairs
		// the class would be dead configuration — reject it rather than let a
		// misconfigured group link silently never apply.
		return fmt.Errorf("platform: DistanceGroup link parameters on an ungrouped topology")
	}
	for _, d := range required {
		l, ok := p.Links[d]
		if !ok {
			return fmt.Errorf("platform: missing link parameters for distance %v", d)
		}
		if l.Latency <= 0 || l.Beta < 0 || l.Gap < 0 || l.Overhead < 0 {
			return fmt.Errorf("platform: invalid link parameters for distance %v: %+v", d, l)
		}
	}
	if p.SelfOverhead <= 0 {
		return fmt.Errorf("platform: SelfOverhead must be positive")
	}
	if p.HeteroSpread < 0 || p.HeteroSpread >= 1 {
		return fmt.Errorf("platform: HeteroSpread %g out of [0,1)", p.HeteroSpread)
	}
	if p.NoiseRel < 0 {
		return fmt.Errorf("platform: NoiseRel must be non-negative")
	}
	return nil
}

// CoreForNode returns the core design of the given node.
func (p *Profile) CoreForNode(node int) memmodel.Core {
	if len(p.Cores) == 1 {
		return p.Cores[0]
	}
	return p.Cores[node]
}

// Place maps ranks onto the profile's topology with its default policy.
func (p *Profile) Place(ranks int) (*topology.Placement, error) {
	return topology.Place(p.Topology, ranks, p.Policy)
}

// PlaceWith maps ranks with an explicit policy (used by the placement
// ablation experiments).
func (p *Profile) PlaceWith(ranks int, policy topology.PlacementPolicy) (*topology.Placement, error) {
	return topology.Place(p.Topology, ranks, policy)
}

// pairFactor returns the deterministic heterogeneity factor for the pair
// (i, j), symmetric in its arguments and within ±HeteroSpread of 1.
func (p *Profile) pairFactor(i, j int) float64 {
	if p.HeteroSpread == 0 {
		return 1
	}
	a, b := i, j
	if a > b {
		a, b = b, a
	}
	h := hash64(uint64(p.Seed)*0x9e3779b97f4a7c15 + uint64(a)*0x100000001b3 + uint64(b) + 0x517cc1b727220a95)
	u := float64(h>>11) / float64(1<<53) // uniform in [0,1)
	return 1 + p.HeteroSpread*(2*u-1)
}

func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// link returns the link parameters for the distance between two placed ranks.
func (p *Profile) link(pl *topology.Placement, i, j int) Link {
	d := pl.Distance(i, j)
	if d == topology.DistanceSelf {
		return Link{Latency: 0, Gap: 0, Beta: 0, Overhead: p.SelfOverhead}
	}
	return p.Links[d]
}

// Latency returns the ground-truth latency between ranks i and j.
func (p *Profile) Latency(pl *topology.Placement, i, j int) float64 {
	return p.link(pl, i, j).Latency * p.pairFactor(i, j)
}

// Overhead returns the ground-truth per-request overhead between i and j.
func (p *Profile) Overhead(pl *topology.Placement, i, j int) float64 {
	if i == j {
		return p.SelfOverhead
	}
	return p.link(pl, i, j).Overhead * p.pairFactor(i, j)
}

// Gap returns the per-message NIC occupancy between i and j.
func (p *Profile) Gap(pl *topology.Placement, i, j int) float64 {
	return p.link(pl, i, j).Gap * p.pairFactor(i, j)
}

// Beta returns the inverse bandwidth between i and j.
func (p *Profile) Beta(pl *topology.Placement, i, j int) float64 {
	return p.link(pl, i, j).Beta * p.pairFactor(i, j)
}

// LatencyMatrix returns the P×P ground-truth latency matrix for a placement.
func (p *Profile) LatencyMatrix(pl *topology.Placement) *matrix.Dense {
	return p.pairMatrix(pl, p.Latency)
}

// OverheadMatrix returns the P×P ground-truth per-request overhead matrix.
// The diagonal carries the invocation overhead O_ii.
func (p *Profile) OverheadMatrix(pl *topology.Placement) *matrix.Dense {
	return p.pairMatrix(pl, p.Overhead)
}

// BetaMatrix returns the P×P ground-truth inverse-bandwidth matrix.
func (p *Profile) BetaMatrix(pl *topology.Placement) *matrix.Dense {
	return p.pairMatrix(pl, p.Beta)
}

func (p *Profile) pairMatrix(pl *topology.Placement, f func(*topology.Placement, int, int) float64) *matrix.Dense {
	n := pl.Ranks()
	m := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, f(pl, i, j))
		}
	}
	return m
}

// Scaled returns a copy of the profile with every link class' LogGP
// parameters multiplied by the given factors (SelfOverhead scales with ovh).
// The copy has its own Links map, so the source profile — possibly a shared
// preset — is never mutated. Seed, HeteroSpread and NoiseRel are unchanged,
// which makes machines of a profile and its scalings term-compatible
// (TermCompatible): a sweep over LogGP scalings re-prices one cached term
// structure instead of re-deriving the pairwise matrices per point.
func (p *Profile) Scaled(lat, gap, beta, ovh float64) *Profile {
	c := *p
	c.Links = make(map[topology.Distance]Link, len(p.Links))
	for d, l := range p.Links {
		c.Links[d] = Link{
			Latency:  l.Latency * lat,
			Gap:      l.Gap * gap,
			Beta:     l.Beta * beta,
			Overhead: l.Overhead * ovh,
		}
	}
	c.SelfOverhead = p.SelfOverhead * ovh
	return &c
}

// KernelRate returns the sustainable rate, in flop/s, of the kernel on the
// core hosting the given node, for a working set of n elements.
func (p *Profile) KernelRate(node int, k kernels.Kernel, n int) float64 {
	core := p.CoreForNode(node)
	return core.Rate(k.Intensity(), k.FootprintBytes(n))
}

// KernelTime returns the ground-truth time to apply the kernel once to n
// elements on the core hosting the given node.
func (p *Profile) KernelTime(node int, k kernels.Kernel, n int) float64 {
	rate := p.KernelRate(node, k, n)
	if rate <= 0 {
		return math.Inf(1)
	}
	if k.FlopsPerElement == 0 {
		// Pure data-movement kernels are bandwidth bound.
		core := p.CoreForNode(node)
		bw := core.Memory.Bandwidth(k.FootprintBytes(n))
		return k.Bytes(n) / bw
	}
	return k.Flops(n) / rate
}

// SecondsPerElement returns the ground-truth per-element cost of a kernel on
// a node for a fixed per-application problem size n, the quantity the
// framework's cost matrices carry.
func (p *Profile) SecondsPerElement(node int, k kernels.Kernel, n int) float64 {
	if n <= 0 {
		return 0
	}
	return p.KernelTime(node, k, n) / float64(n)
}

// String returns the profile name and topology.
func (p *Profile) String() string {
	return fmt.Sprintf("%s (%s)", p.Name, p.Topology)
}

package platform

import (
	"testing"

	"hbsp/internal/topology"
)

func TestFatTreeAndDragonflyProfiles(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof *Profile
	}{
		{"fattree", FatTreeCluster(4, 4)},
		{"dragonfly", DragonflyCluster(4, 4)},
	} {
		if err := tc.prof.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if _, ok := tc.prof.Links[topology.DistanceGroup]; !ok {
			t.Fatalf("%s: no DistanceGroup link class", tc.name)
		}
		m, err := tc.prof.Machine(16)
		if err != nil {
			t.Fatal(err)
		}
		if !m.HomogeneousClasses() {
			t.Errorf("%s: grouped preset must stay collapse-eligible", tc.name)
		}
		if m.UniformPairs() {
			t.Errorf("%s: multi-class machine reports uniform pairs", tc.name)
		}
		// Cross-group hops are slower than intra-group ones; the pair classes
		// distinguish them.
		lIntra, lCross := m.Latency(0, 1), m.Latency(0, 15)
		if !(lCross > lIntra) {
			t.Errorf("%s: cross-group latency %v not above intra-group %v", tc.name, lCross, lIntra)
		}
		if m.PairClass(0, 1) == m.PairClass(0, 15) {
			t.Errorf("%s: intra- and cross-group pairs share class %d", tc.name, m.PairClass(0, 1))
		}
	}
}

// TestGroupLinkRequiredIffGrouped pins the validation coupling: a grouped
// topology spanning several groups requires a DistanceGroup link class, and
// an ungrouped profile must not carry one.
func TestGroupLinkRequiredIffGrouped(t *testing.T) {
	prof := FatTreeCluster(4, 4)
	delete(prof.Links, topology.DistanceGroup)
	if err := prof.Validate(); err == nil {
		t.Error("grouped profile without a DistanceGroup link validated")
	}

	flat := FlatCluster(8)
	flat.Links[topology.DistanceGroup] = flat.Links[topology.DistanceNetwork]
	if err := flat.Validate(); err == nil {
		t.Error("ungrouped profile with a DistanceGroup link validated")
	}

	// A grouped topology that fits in a single group needs no group link.
	single := FatTreeCluster(1, 8)
	delete(single.Links, topology.DistanceGroup)
	if err := single.Validate(); err != nil {
		t.Errorf("single-group fat-tree requires no group link: %v", err)
	}
}

package platform

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"

	"hbsp/internal/topology"
)

// Fingerprint returns a stable content hash of the profile: every field that
// influences the derived pairwise parameter matrices, the kernel rate model
// or the noise stream is folded into a SHA-256 over a canonical byte
// serialization. The rendering is independent of Go's map iteration order
// (link classes are hashed in sorted distance order) and of the order fields
// were assigned in, so two structurally equal profiles — built in different
// processes, sessions or field orders — hash identically. This is the cache
// key half the prediction service (internal/server) relies on: a result
// computed for one fingerprint is valid for every profile with that
// fingerprint, and any mutation of a profile field changes the fingerprint
// and therefore misses the cache.
//
// The hash covers: Name, Topology (including NodesPerGroup), Policy, every
// core design (clock, flops/cycle, memory hierarchy), the link parameters of
// every distance class, SelfOverhead, HeteroSpread, NoiseRel and Seed.
func (p *Profile) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}

	str("hbsp/platform.Profile/v1")
	str(p.Name)
	u64(uint64(p.Topology.Nodes))
	u64(uint64(p.Topology.SocketsPerNode))
	u64(uint64(p.Topology.CoresPerSocket))
	u64(uint64(p.Topology.NodesPerGroup))
	u64(uint64(p.Policy))
	u64(uint64(len(p.Cores)))
	for _, c := range p.Cores {
		str(c.Name)
		f64(c.ClockGHz)
		f64(c.FlopsPerCycle)
		u64(uint64(len(c.Memory.Levels)))
		for _, l := range c.Memory.Levels {
			str(l.Name)
			f64(l.CapacityBytes)
			f64(l.BandwidthBytesPerSec)
		}
	}
	classes := make([]int, 0, len(p.Links))
	for d := range p.Links {
		classes = append(classes, int(d))
	}
	sort.Ints(classes)
	u64(uint64(len(classes)))
	for _, d := range classes {
		l := p.Links[topology.Distance(d)]
		u64(uint64(d))
		f64(l.Latency)
		f64(l.Gap)
		f64(l.Beta)
		f64(l.Overhead)
	}
	f64(p.SelfOverhead)
	f64(p.HeteroSpread)
	f64(p.NoiseRel)
	u64(uint64(p.Seed))

	return hex.EncodeToString(h.Sum(nil))
}

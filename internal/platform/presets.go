package platform

import (
	"fmt"
	"math"

	"hbsp/internal/memmodel"
	"hbsp/internal/topology"
)

// The preset profiles below are the synthetic equivalents of the clusters the
// thesis benchmarks. Values are commodity-hardware orders of magnitude
// (gigabit Ethernet between nodes, shared-memory transfers inside a node);
// they are not calibrated against the original machines, which are
// unavailable — synthetic substitutes are derived from the thesis figures.

func gigabitLinks() map[topology.Distance]Link {
	return map[topology.Distance]Link{
		topology.DistanceSocket: {
			Latency:  0.45e-6,
			Gap:      0.10e-6,
			Beta:     1 / 5.0e9,
			Overhead: 0.30e-6,
		},
		topology.DistanceNode: {
			Latency:  0.90e-6,
			Gap:      0.15e-6,
			Beta:     1 / 3.0e9,
			Overhead: 0.40e-6,
		},
		topology.DistanceNetwork: {
			Latency:  28e-6,
			Gap:      12e-6,
			Beta:     1 / 110.0e6,
			Overhead: 1.2e-6,
		},
	}
}

func xeonCore() memmodel.Core {
	return memmodel.Core{
		Name:          "xeon-quad",
		ClockGHz:      2.5,
		FlopsPerCycle: 3,
		Memory: memmodel.Hierarchy{Levels: []memmodel.Level{
			{Name: "L1", CapacityBytes: 32 * 1024, BandwidthBytesPerSec: 40e9},
			{Name: "L2", CapacityBytes: 6 * 1024 * 1024, BandwidthBytesPerSec: 18e9},
			{Name: "DRAM", CapacityBytes: math.Inf(1), BandwidthBytesPerSec: 5.5e9},
		}},
	}
}

func opteronCore() memmodel.Core {
	return memmodel.Core{
		Name:          "opteron-hex",
		ClockGHz:      2.2,
		FlopsPerCycle: 4,
		Memory: memmodel.Hierarchy{Levels: []memmodel.Level{
			{Name: "L1", CapacityBytes: 64 * 1024, BandwidthBytesPerSec: 35e9},
			{Name: "L2", CapacityBytes: 512 * 1024, BandwidthBytesPerSec: 20e9},
			{Name: "L3", CapacityBytes: 6 * 1024 * 1024, BandwidthBytesPerSec: 12e9},
			{Name: "DRAM", CapacityBytes: math.Inf(1), BandwidthBytesPerSec: 7e9},
		}},
	}
}

func athlonCore() memmodel.Core {
	return memmodel.Core{
		Name:          "athlon-x2",
		ClockGHz:      2.0,
		FlopsPerCycle: 2,
		Memory: memmodel.Hierarchy{Levels: []memmodel.Level{
			{Name: "L1", CapacityBytes: 64 * 1024, BandwidthBytesPerSec: 16e9},
			{Name: "L2", CapacityBytes: 512 * 1024, BandwidthBytesPerSec: 8e9},
			{Name: "DRAM", CapacityBytes: math.Inf(1), BandwidthBytesPerSec: 3e9},
		}},
	}
}

// Xeon8x2x4 is the synthetic stand-in for the thesis' 8-node dual quad-core
// Xeon gigabit cluster (64 cores), the platform of Table 3.1 and Figs. 5.6–5.9.
func Xeon8x2x4() *Profile {
	return &Profile{
		Name:         "xeon-8x2x4",
		Topology:     topology.Topology{Nodes: 8, SocketsPerNode: 2, CoresPerSocket: 4},
		Policy:       topology.RoundRobin,
		Cores:        []memmodel.Core{xeonCore()},
		Links:        gigabitLinks(),
		SelfOverhead: 0.12e-6,
		HeteroSpread: 0.06,
		NoiseRel:     0.04,
		Seed:         1,
	}
}

// XeonCluster scales the Xeon8x2x4 node design to an arbitrary node count, so
// simulator benchmarks (cmd/simbench, BenchmarkTotalExchange) can instantiate
// machines beyond the 64 cores of the thesis configuration — 64 nodes give the
// P=512 point of the tracked benchmark baseline. Link and core parameters are
// identical to Xeon8x2x4.
func XeonCluster(nodes int) *Profile {
	p := Xeon8x2x4()
	p.Name = fmt.Sprintf("xeon-%dx2x4", nodes)
	p.Topology.Nodes = nodes
	return p
}

// XeonClusterMachine instantiates a noise-free machine with the requested
// rank count on the scaled Xeon cluster. It is the shared platform of the
// simulator benchmark harnesses (cmd/simbench and the repository-level
// bench_test.go), which must measure identical machines for their numbers to
// be comparable.
func XeonClusterMachine(procs int) (*Machine, error) {
	nodes := (procs + 7) / 8
	if nodes < 1 {
		nodes = 1
	}
	p := XeonCluster(nodes)
	p.NoiseRel = 0
	return p.Machine(procs)
}

// FlatCluster is a homogeneous one-core-per-node cluster (nodes × 1 × 1) with
// the Xeon link and core parameters but zero heterogeneity spread and zero
// noise: every off-diagonal pair is an identical network-class link, the
// machine shape on which rank-symmetric schedules collapse to a single
// equivalence class. This is the platform of the large-P symmetry benchmarks
// and the cross-engine collapse goldens.
func FlatCluster(nodes int) *Profile {
	p := Xeon8x2x4()
	p.Name = fmt.Sprintf("flat-%dx1x1", nodes)
	p.Topology = topology.Topology{Nodes: nodes, SocketsPerNode: 1, CoresPerSocket: 1}
	p.HeteroSpread = 0
	p.NoiseRel = 0
	return p
}

// FlatClusterMachine instantiates the flat cluster with one rank per node.
// Above the dense-matrix limit the pairwise parameters are computed lazily,
// so machines up to P=1M stay within memory budgets.
func FlatClusterMachine(procs int) (*Machine, error) {
	nodes := procs
	if nodes < 1 {
		nodes = 1
	}
	return FlatCluster(nodes).Machine(procs)
}

// FatTreeCluster models a two-tier fat-tree of single-core nodes: pods of
// nodesPerPod nodes behind edge switches, cross-pod traffic through the core
// tier. Intra-pod pairs keep the gigabit network-class parameters; cross-pod
// pairs pay an extra core-switch hop and share uplink bandwidth (synthetic
// values in commodity orders of magnitude, like the rest of the presets).
// Heterogeneity spread and noise are zero, so the profile is
// collapse-eligible: symmetric schedules refine to a few classes split along
// the pod structure rather than one per rank.
func FatTreeCluster(pods, nodesPerPod int) *Profile {
	links := gigabitLinks()
	links[topology.DistanceGroup] = Link{
		Latency:  42e-6,
		Gap:      12e-6,
		Beta:     1 / 95.0e6,
		Overhead: 1.2e-6,
	}
	return &Profile{
		Name: fmt.Sprintf("fattree-%dp%d", pods, nodesPerPod),
		Topology: topology.Topology{
			Nodes: pods * nodesPerPod, SocketsPerNode: 1, CoresPerSocket: 1,
			NodesPerGroup: nodesPerPod,
		},
		Policy:       topology.Block,
		Cores:        []memmodel.Core{xeonCore()},
		Links:        links,
		SelfOverhead: 0.12e-6,
		HeteroSpread: 0,
		NoiseRel:     0,
		Seed:         6,
	}
}

// DragonflyCluster models a dragonfly of single-core nodes: groups of
// nodesPerGroup nodes with all-to-all local links, connected by long global
// links. Intra-group pairs keep the gigabit network-class parameters;
// cross-group pairs pay the global-link latency and its narrower bandwidth
// (synthetic values, as above). Zero spread and noise keep it
// collapse-eligible.
func DragonflyCluster(groups, nodesPerGroup int) *Profile {
	links := gigabitLinks()
	links[topology.DistanceGroup] = Link{
		Latency:  55e-6,
		Gap:      13e-6,
		Beta:     1 / 85.0e6,
		Overhead: 1.2e-6,
	}
	return &Profile{
		Name: fmt.Sprintf("dragonfly-%dg%d", groups, nodesPerGroup),
		Topology: topology.Topology{
			Nodes: groups * nodesPerGroup, SocketsPerNode: 1, CoresPerSocket: 1,
			NodesPerGroup: nodesPerGroup,
		},
		Policy:       topology.Block,
		Cores:        []memmodel.Core{xeonCore()},
		Links:        links,
		SelfOverhead: 0.12e-6,
		HeteroSpread: 0,
		NoiseRel:     0,
		Seed:         7,
	}
}

// XeonClusterHomogeneousMachine is XeonClusterMachine with the heterogeneity
// spread also zeroed: multiple ranks per node, so distance classes still
// differ pair to pair, but parameters are a pure function of the class. On
// this machine symmetric schedules collapse to a few classes rather than
// one — the multi-class test bed of the structural refinement.
func XeonClusterHomogeneousMachine(procs int) (*Machine, error) {
	nodes := (procs + 7) / 8
	if nodes < 1 {
		nodes = 1
	}
	p := XeonCluster(nodes)
	p.NoiseRel = 0
	p.HeteroSpread = 0
	return p.Machine(procs)
}

// Opteron12x2x6 is the synthetic stand-in for the 12-node dual hexa-core
// Opteron cluster (144 cores) of Figs. 5.10–5.13.
func Opteron12x2x6() *Profile {
	links := gigabitLinks()
	// Slightly slower network stack on this cluster, as the thesis' larger
	// configuration also shows higher absolute barrier cost.
	l := links[topology.DistanceNetwork]
	l.Latency = 33e-6
	l.Gap = 13e-6
	links[topology.DistanceNetwork] = l
	return &Profile{
		Name:         "opteron-12x2x6",
		Topology:     topology.Topology{Nodes: 12, SocketsPerNode: 2, CoresPerSocket: 6},
		Policy:       topology.RoundRobin,
		Cores:        []memmodel.Core{opteronCore()},
		Links:        links,
		SelfOverhead: 0.14e-6,
		HeteroSpread: 0.07,
		NoiseRel:     0.05,
		Seed:         2,
	}
}

// Opteron10x2x6 is the 10-node configuration used for the 115-process SSS
// clustering of Table 7.2.
func Opteron10x2x6() *Profile {
	p := Opteron12x2x6()
	p.Name = "opteron-10x2x6"
	p.Topology.Nodes = 10
	p.Seed = 3
	return p
}

// AthlonX2 is the single dual-core node used for the L1 BLAS measurements of
// Figs. 4.5/4.6.
func AthlonX2() *Profile {
	return &Profile{
		Name:         "athlon-x2",
		Topology:     topology.Topology{Nodes: 1, SocketsPerNode: 1, CoresPerSocket: 2},
		Policy:       topology.Block,
		Cores:        []memmodel.Core{athlonCore()},
		Links:        gigabitLinks(),
		SelfOverhead: 0.10e-6,
		HeteroSpread: 0.02,
		NoiseRel:     0.02,
		Seed:         4,
	}
}

// HeteroDemo is a small cluster whose nodes mix two core designs (fast Xeons
// and slower Opterons). It exercises the heterogeneous-computation paths of
// the framework: identical work assigned to all ranks yields visibly
// imbalanced superstep times.
func HeteroDemo() *Profile {
	fast := xeonCore()
	slow := opteronCore()
	slow.ClockGHz = 1.6
	return &Profile{
		Name:         "hetero-demo-4x1x4",
		Topology:     topology.Topology{Nodes: 4, SocketsPerNode: 1, CoresPerSocket: 4},
		Policy:       topology.Block,
		Cores:        []memmodel.Core{fast, slow, fast, slow},
		Links:        gigabitLinks(),
		SelfOverhead: 0.12e-6,
		HeteroSpread: 0.05,
		NoiseRel:     0.03,
		Seed:         5,
	}
}

// Presets returns every built-in profile, keyed by name.
func Presets() map[string]*Profile {
	out := map[string]*Profile{}
	for _, p := range []*Profile{Xeon8x2x4(), Opteron12x2x6(), Opteron10x2x6(), AthlonX2(), HeteroDemo(),
		FatTreeCluster(4, 4), DragonflyCluster(4, 4)} {
		out[p.Name] = p
	}
	return out
}

package platform

import (
	"math"
	"testing"
	"testing/quick"

	"hbsp/internal/kernels"
	"hbsp/internal/topology"
)

func TestPresetsValidate(t *testing.T) {
	for name, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if len(Presets()) != 7 {
		t.Fatalf("expected 7 presets, got %d", len(Presets()))
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	p := Xeon8x2x4()
	p.Cores = nil
	if err := p.Validate(); err == nil {
		t.Error("missing cores should fail")
	}

	p = Xeon8x2x4()
	delete(p.Links, topology.DistanceNetwork)
	if err := p.Validate(); err == nil {
		t.Error("missing link class should fail")
	}

	p = Xeon8x2x4()
	p.SelfOverhead = 0
	if err := p.Validate(); err == nil {
		t.Error("zero self overhead should fail")
	}

	p = Xeon8x2x4()
	p.HeteroSpread = 1.5
	if err := p.Validate(); err == nil {
		t.Error("excessive spread should fail")
	}

	p = Xeon8x2x4()
	p.Topology.Nodes = 0
	if err := p.Validate(); err == nil {
		t.Error("bad topology should fail")
	}
}

func TestLatencyReflectsTopology(t *testing.T) {
	p := Xeon8x2x4()
	pl, err := p.PlaceWith(16, topology.Block)
	if err != nil {
		t.Fatal(err)
	}
	// Block placement: ranks 0..7 on node 0, 8..15 on node 1.
	lSocket := p.Latency(pl, 0, 1)
	lNode := p.Latency(pl, 0, 4)
	lNet := p.Latency(pl, 0, 8)
	if !(lSocket < lNode && lNode < lNet) {
		t.Fatalf("latency ordering violated: socket=%g node=%g net=%g", lSocket, lNode, lNet)
	}
	if lNet < 10e-6 {
		t.Fatalf("network latency suspiciously small: %g", lNet)
	}
	if got := p.Latency(pl, 3, 3); got != 0 {
		t.Fatalf("self latency = %g, want 0", got)
	}
	if got := p.Overhead(pl, 3, 3); got != p.SelfOverhead {
		t.Fatalf("self overhead = %g, want %g", got, p.SelfOverhead)
	}
}

func TestPairFactorDeterministicAndSymmetric(t *testing.T) {
	p := Xeon8x2x4()
	pl, _ := p.Place(32)
	a := p.Latency(pl, 3, 17)
	b := p.Latency(pl, 3, 17)
	if a != b {
		t.Fatal("latency not deterministic")
	}
	if p.Latency(pl, 3, 17) != p.Latency(pl, 17, 3) {
		t.Fatal("pair factor not symmetric")
	}
	// Heterogeneity: not all network pairs identical.
	l1 := p.Latency(pl, 0, 1)
	l2 := p.Latency(pl, 0, 9)
	if pl.Distance(0, 1) == pl.Distance(0, 9) && l1 == l2 {
		t.Fatal("expected per-pair spread within a distance class")
	}
}

func TestMatrices(t *testing.T) {
	p := Xeon8x2x4()
	pl, _ := p.Place(8)
	L := p.LatencyMatrix(pl)
	O := p.OverheadMatrix(pl)
	B := p.BetaMatrix(pl)
	if L.Rows() != 8 || L.Cols() != 8 || O.Rows() != 8 || B.Rows() != 8 {
		t.Fatal("matrix shapes wrong")
	}
	for i := 0; i < 8; i++ {
		if L.At(i, i) != 0 {
			t.Fatalf("latency diagonal not zero at %d", i)
		}
		if O.At(i, i) != p.SelfOverhead {
			t.Fatalf("overhead diagonal wrong at %d", i)
		}
	}
}

func TestKernelTimes(t *testing.T) {
	p := Xeon8x2x4()
	// Small in-cache DAXPY is much faster per element than a DRAM-sized one.
	small := p.SecondsPerElement(0, kernels.DAXPY, 1024)
	large := p.SecondsPerElement(0, kernels.DAXPY, 8*1024*1024)
	if small <= 0 || large <= 0 {
		t.Fatal("non-positive per-element times")
	}
	if large <= small {
		t.Fatalf("expected out-of-cache slowdown: small=%g large=%g", small, large)
	}
	// Zero-flop kernels are still assigned a bandwidth-bound cost.
	if got := p.KernelTime(0, kernels.Copy, 1024); got <= 0 {
		t.Fatalf("copy kernel time = %g", got)
	}
	if got := p.SecondsPerElement(0, kernels.DAXPY, 0); got != 0 {
		t.Fatalf("zero-size problem should cost 0, got %g", got)
	}
}

func TestHeteroDemoNodesDiffer(t *testing.T) {
	p := HeteroDemo()
	fast := p.KernelRate(0, kernels.DAXPY, 1024)
	slow := p.KernelRate(1, kernels.DAXPY, 1024)
	if fast <= slow {
		t.Fatalf("expected node 0 faster than node 1: %g vs %g", fast, slow)
	}
}

func TestMachineBasics(t *testing.T) {
	p := Xeon8x2x4()
	m, err := p.Machine(16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Procs() != 16 {
		t.Fatalf("Procs = %d", m.Procs())
	}
	if m.NIC(0) == m.NIC(1) {
		t.Fatal("round-robin ranks 0 and 1 should be on different nodes")
	}
	if m.Latency(0, 1) <= 0 || m.Overhead(0, 1) <= 0 || m.Gap(0, 1) < 0 {
		t.Fatal("machine parameters must be positive")
	}
	if m.Beta(0, 0) != 0 {
		t.Fatal("self beta should be 0")
	}
	if m.SelfOverhead(3) != p.SelfOverhead {
		t.Fatal("SelfOverhead mismatch")
	}
	if m.KernelTime(0, kernels.DAXPY, 1024) <= 0 {
		t.Fatal("kernel time must be positive")
	}
	if m.String() == "" || p.String() == "" {
		t.Fatal("String() should be non-empty")
	}
	if _, err := p.Machine(1000); err == nil {
		t.Fatal("oversubscription should fail")
	}
}

func TestMachineNoiseDeterministicAndBounded(t *testing.T) {
	p := Xeon8x2x4()
	m, _ := p.Machine(4)
	a := m.Noise(2, 7)
	b := m.Noise(2, 7)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	if a < 1 {
		t.Fatalf("noise factor %g < 1", a)
	}
	other := m.WithRunSeed(99).Noise(2, 7)
	if other == a {
		t.Fatal("different run seeds should give different noise")
	}
	// Zero noise profile always returns exactly 1.
	quiet := *p
	quiet.NoiseRel = 0
	qm, _ := (&quiet).Machine(4)
	if qm.Noise(0, 0) != 1 {
		t.Fatal("zero-noise machine should return factor 1")
	}
}

// Property: noise factors are finite, at least 1, and rarely huge.
func TestNoiseDistributionProperty(t *testing.T) {
	p := Xeon8x2x4()
	m, _ := p.Machine(2)
	f := func(rank uint8, seq uint16) bool {
		v := m.Noise(int(rank)%2, uint64(seq))
		return v >= 1 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency matrices are symmetric and non-negative for every preset
// at a modest process count.
func TestLatencyMatrixSymmetryProperty(t *testing.T) {
	for name, p := range Presets() {
		ranks := 8
		if p.Topology.TotalCores() < ranks {
			ranks = p.Topology.TotalCores()
		}
		pl, err := p.Place(ranks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		L := p.LatencyMatrix(pl)
		for i := 0; i < ranks; i++ {
			for j := 0; j < ranks; j++ {
				if L.At(i, j) < 0 {
					t.Fatalf("%s: negative latency at (%d,%d)", name, i, j)
				}
				if math.Abs(L.At(i, j)-L.At(j, i)) > 1e-12 {
					t.Fatalf("%s: asymmetric latency at (%d,%d)", name, i, j)
				}
			}
		}
	}
}

package platform

import (
	"strings"
	"testing"

	"hbsp/internal/memmodel"
	"hbsp/internal/topology"
)

// TestFingerprintStability pins the properties the prediction-service cache
// key depends on: equal profiles hash equal regardless of how their Links map
// was populated, and every parameter field perturbs the hash.
func TestFingerprintStability(t *testing.T) {
	base := Xeon8x2x4()
	fp := base.Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not 64 hex chars", fp)
	}

	// Rebuild the profile from scratch with the Links map populated in a
	// different insertion order (map iteration order is randomized per map
	// instance, so identical hashes across many rebuilds also exercise the
	// sorted-class rendering).
	for i := 0; i < 16; i++ {
		c := *Xeon8x2x4()
		links := map[topology.Distance]Link{}
		order := []topology.Distance{topology.DistanceNetwork, topology.DistanceSocket, topology.DistanceNode}
		if i%2 == 0 {
			order = []topology.Distance{topology.DistanceSocket, topology.DistanceNode, topology.DistanceNetwork}
		}
		for _, d := range order {
			links[d] = c.Links[d]
		}
		c.Links = links
		if got := c.Fingerprint(); got != fp {
			t.Fatalf("rebuild %d: fingerprint %s, want %s", i, got, fp)
		}
	}
}

// TestFingerprintSensitivity checks that each field class changes the hash.
func TestFingerprintSensitivity(t *testing.T) {
	fresh := func() *Profile { return Xeon8x2x4() }
	fp := fresh().Fingerprint()
	mutations := map[string]func(*Profile){
		"name":          func(p *Profile) { p.Name = "other" },
		"nodes":         func(p *Profile) { p.Topology.Nodes++ },
		"nodesPerGroup": func(p *Profile) { p.Topology.NodesPerGroup = 4 },
		"policy":        func(p *Profile) { p.Policy = topology.Block },
		"coreClock":     func(p *Profile) { p.Cores[0].ClockGHz *= 2 },
		"coreLevel": func(p *Profile) {
			p.Cores[0].Memory.Levels = append([]memmodel.Level(nil), p.Cores[0].Memory.Levels...)
			p.Cores[0].Memory.Levels[0].BandwidthBytesPerSec *= 2
		},
		"linkLatency": func(p *Profile) {
			l := p.Links[topology.DistanceNetwork]
			l.Latency *= 2
			p.Links[topology.DistanceNetwork] = l
		},
		"linkBeta": func(p *Profile) {
			l := p.Links[topology.DistanceNetwork]
			l.Beta *= 2
			p.Links[topology.DistanceNetwork] = l
		},
		"selfOverhead": func(p *Profile) { p.SelfOverhead *= 2 },
		"heteroSpread": func(p *Profile) { p.HeteroSpread += 0.01 },
		"noiseRel":     func(p *Profile) { p.NoiseRel += 0.01 },
		"seed":         func(p *Profile) { p.Seed++ },
	}
	for name, mutate := range mutations {
		p := fresh()
		// Deep-enough copy: mutate replaces map values / slices it touches,
		// but give each case its own map so cases stay independent.
		links := map[topology.Distance]Link{}
		for d, l := range p.Links {
			links[d] = l
		}
		p.Links = links
		cores := append([]memmodel.Core(nil), p.Cores...)
		p.Cores = cores
		mutate(p)
		if got := p.Fingerprint(); got == fp {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// TestFingerprintDistinguishesPresets ensures no two built-in presets
// collide.
func TestFingerprintDistinguishesPresets(t *testing.T) {
	seen := map[string]string{}
	for name, p := range Presets() {
		fp := p.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("presets %q and %q share fingerprint %s", name, prev, fp)
		}
		seen[fp] = name
	}
	if XeonCluster(8).Fingerprint() == XeonCluster(16).Fingerprint() {
		t.Fatal("scaled presets with different node counts collide")
	}
}

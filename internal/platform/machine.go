package platform

import (
	"fmt"
	"math"

	"hbsp/internal/kernels"
	"hbsp/internal/topology"
)

// Machine is a fully instantiated platform for a given process count: the
// profile's ground-truth pairwise parameters frozen for one placement, plus a
// deterministic run-to-run noise source. It satisfies the simnet.Machine
// interface structurally and is what the virtual-time simulator executes
// against.
//
// Up to denseMatrixLimit ranks the pairwise parameters are materialized as
// dense P×P matrices; above it the matrices stay nil and the accessors
// compute the same profile formulas on demand (four P×P float64 matrices at
// P=1M would be 32 TB). The values are bit-identical either way — the dense
// path is a cache of the exact same expressions.
type Machine struct {
	profile   *Profile
	placement *topology.Placement
	runSeed   int64

	latency  [][]float64
	gap      [][]float64
	beta     [][]float64
	overhead [][]float64
}

// denseMatrixLimit is the largest rank count whose pairwise parameters are
// materialized eagerly. Above it the machines the evaluator sweeps (P=4096
// up to P=1M) would pay hundreds of megabytes and double-digit seconds of
// matrix fill per instantiation, dwarfing the evaluation itself; the lazy
// accessors cost ~15 ns per pair instead. A variable, not a constant, so
// tests can force the lazy path at small P and diff it against the dense
// one.
var denseMatrixLimit = 2048

// Machine instantiates the profile for the given number of ranks using the
// profile's default placement policy.
func (p *Profile) Machine(ranks int) (*Machine, error) {
	pl, err := p.Place(ranks)
	if err != nil {
		return nil, err
	}
	return p.MachineFor(pl), nil
}

// MachineFor instantiates the profile for an explicit placement.
func (p *Profile) MachineFor(pl *topology.Placement) *Machine {
	n := pl.Ranks()
	m := &Machine{profile: p, placement: pl, runSeed: p.Seed}
	if n > denseMatrixLimit {
		return m
	}
	alloc := func() [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, n)
		}
		return rows
	}
	m.latency, m.gap, m.beta, m.overhead = alloc(), alloc(), alloc(), alloc()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.latency[i][j] = p.Latency(pl, i, j)
			m.gap[i][j] = p.Gap(pl, i, j)
			m.beta[i][j] = p.Beta(pl, i, j)
			m.overhead[i][j] = p.Overhead(pl, i, j)
		}
	}
	return m
}

// WithRunSeed returns a copy of the machine whose noise stream is derived
// from the given seed, so that repeated "runs" of the same experiment observe
// different jitter while remaining reproducible.
func (m *Machine) WithRunSeed(seed int64) *Machine {
	c := *m
	c.runSeed = seed
	return &c
}

// RunSeed returns the seed the machine's noise stream is derived from: the
// profile's seed, or the override a WithRunSeed copy carries. The trace
// subsystem reads it so exported traces are labeled with the exact seed that
// produced them.
func (m *Machine) RunSeed() int64 { return m.runSeed }

// Profile returns the profile the machine was instantiated from.
func (m *Machine) Profile() *Profile { return m.profile }

// Placement returns the rank placement of the machine.
func (m *Machine) Placement() *topology.Placement { return m.placement }

// Procs returns the number of ranks.
func (m *Machine) Procs() int { return m.placement.Ranks() }

// Latency returns the ground-truth latency from rank i to rank j.
func (m *Machine) Latency(i, j int) float64 {
	if m.latency == nil {
		return m.profile.Latency(m.placement, i, j)
	}
	return m.latency[i][j]
}

// Gap returns the per-message NIC occupancy from rank i to rank j.
func (m *Machine) Gap(i, j int) float64 {
	if m.gap == nil {
		return m.profile.Gap(m.placement, i, j)
	}
	return m.gap[i][j]
}

// Beta returns the inverse bandwidth from rank i to rank j.
func (m *Machine) Beta(i, j int) float64 {
	if m.beta == nil {
		return m.profile.Beta(m.placement, i, j)
	}
	return m.beta[i][j]
}

// Overhead returns the per-request sender CPU overhead from rank i to rank j.
func (m *Machine) Overhead(i, j int) float64 {
	if m.overhead == nil {
		return m.profile.Overhead(m.placement, i, j)
	}
	return m.overhead[i][j]
}

// SelfOverhead returns the invocation overhead of rank i.
func (m *Machine) SelfOverhead(i int) float64 { return m.profile.SelfOverhead }

// NIC returns the network-interface index of rank i. Ranks on the same node
// share a NIC; messages between different NICs occupy both for their gap and
// serialized transfer time.
func (m *Machine) NIC(i int) int { return m.placement.NodeOf(i) }

// HomogeneousClasses reports whether the pairwise parameters are a pure
// function of the pair's distance class and the noise stream is identically
// 1 — no per-pair heterogeneity, no run-to-run jitter. This is the machine
// side of the symmetry-collapse eligibility test (sched.SymmetricMachine).
func (m *Machine) HomogeneousClasses() bool {
	return m.profile.HeteroSpread == 0 && m.profile.NoiseRel <= 0
}

// InhomogeneityReason names what breaks HomogeneousClasses — "hetero" for a
// per-pair heterogeneity spread, "noise" for run-to-run jitter — or "" when
// the machine is homogeneous. Collapse diagnostics (simnet.Collapse) surface
// it as the fallback reason.
func (m *Machine) InhomogeneityReason() string {
	if m.profile.HeteroSpread != 0 {
		return "hetero"
	}
	if m.profile.NoiseRel > 0 {
		return "noise"
	}
	return ""
}

// PairClass returns the distance class of the pair (i, j); under
// HomogeneousClasses, pairs of equal class have identical parameters.
func (m *Machine) PairClass(i, j int) uint8 {
	return uint8(m.placement.Distance(i, j))
}

// UniformPairs reports whether additionally every off-diagonal pair has the
// same class and crosses NICs — one rank per node on a homogeneous profile —
// so all ranks are interchangeable and circulant schedules collapse to a
// single equivalence class.
func (m *Machine) UniformPairs() bool {
	if !m.HomogeneousClasses() {
		return false
	}
	t := m.placement.Topology
	if t.NodesPerGroup > 0 && t.Nodes > t.NodesPerGroup {
		// A grouped network has both intra- and cross-group pairs, so
		// off-diagonal classes differ even one rank per node.
		return false
	}
	if t.CoresPerNode() == 1 {
		return true
	}
	return m.placement.Policy == topology.RoundRobin && m.Procs() <= t.Nodes
}

// PairTerm returns the multiplicative decomposition of the pair (i, j)'s
// parameters: every pairwise parameter of the machine equals the class column
// returned by TermLinks times the returned factor, bit for bit. For self
// pairs the factor is 1 (the self column already carries the exact values:
// zero latency/gap/beta and the unscaled invocation overhead, matching the
// special-cased self paths of the profile formulas). This is the capability
// the sweep evaluator's term tape is built from (sched.TermMachine): the
// factor and class are invariants of (seed, spread, placement), so one tape
// re-prices exactly under scaled link columns.
func (m *Machine) PairTerm(i, j int) (factor float64, class uint8) {
	d := m.placement.Distance(i, j)
	if d == topology.DistanceSelf {
		return 1, uint8(d)
	}
	return m.profile.pairFactor(i, j), uint8(d)
}

// TermLinks returns the per-distance-class parameter columns of PairTerm's
// decomposition, indexed by distance class. Multiplying a column entry by a
// pair's PairTerm factor reproduces the pairwise accessors exactly — the
// same two operands in the same single multiplication the profile formulas
// (and the dense matrix fill) perform.
func (m *Machine) TermLinks() (lat, gap, beta, ovh []float64) {
	n := int(topology.DistanceGroup) + 1
	lat = make([]float64, n)
	gap = make([]float64, n)
	beta = make([]float64, n)
	ovh = make([]float64, n)
	ovh[topology.DistanceSelf] = m.profile.SelfOverhead
	for d := topology.DistanceSocket; d <= topology.DistanceGroup; d++ {
		l := m.profile.Links[d]
		lat[d], gap[d], beta[d], ovh[d] = l.Latency, l.Gap, l.Beta, l.Overhead
	}
	return lat, gap, beta, ovh
}

// TermCompatible reports whether o shares this machine's PairTerm
// decomposition: same placement (and hence distance classes and NICs) and
// same heterogeneity stream (seed, spread) and noise magnitude. Machines that
// differ only in their link columns (scaled profiles) or run seed are
// compatible — a tape of (factor, class) terms built against one re-prices
// exactly against the other.
func (m *Machine) TermCompatible(o any) bool {
	om, ok := o.(*Machine)
	if !ok {
		return false
	}
	if om == m {
		return true
	}
	pa, pb := m.placement, om.placement
	if pa != pb && (pa.Topology != pb.Topology || pa.Policy != pb.Policy || pa.Ranks() != pb.Ranks()) {
		return false
	}
	a, b := m.profile, om.profile
	return a.Seed == b.Seed && a.HeteroSpread == b.HeteroSpread && a.NoiseRel == b.NoiseRel
}

// NoiseFree reports whether the noise stream is identically 1.
func (m *Machine) NoiseFree() bool { return m.profile.NoiseRel <= 0 }

// Noise returns a multiplicative jitter factor (>= 1) for the seq-th noisy
// event observed by rank i. The stream is a deterministic function of the
// machine's run seed, the rank and the sequence number, so simulations are
// reproducible regardless of goroutine scheduling. The factor follows a
// half-normal-like shape: most events see almost no jitter, a few see spikes
// of a few NoiseRel.
func (m *Machine) Noise(i int, seq uint64) float64 {
	rel := m.profile.NoiseRel
	if rel <= 0 {
		return 1
	}
	h := hash64(uint64(m.runSeed)*0x9e3779b97f4a7c15 ^ (uint64(i)+1)*0xff51afd7ed558ccd ^ (seq+1)*0xc4ceb9fe1a85ec53)
	u1 := (float64(h>>11) + 0.5) / float64(1<<53)
	h2 := hash64(h ^ 0x2545f4914f6cdd1d)
	u2 := (float64(h2>>11) + 0.5) / float64(1<<53)
	// Box-Muller; take the absolute value for a half-normal excess.
	z := math.Abs(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
	return 1 + rel*z
}

// KernelTime returns the ground-truth time for rank r to apply the kernel
// once to n elements, without noise.
func (m *Machine) KernelTime(rank int, k kernels.Kernel, n int) float64 {
	return m.profile.KernelTime(m.placement.NodeOf(rank), k, n)
}

// KernelRate returns the ground-truth rate of a kernel for rank r.
func (m *Machine) KernelRate(rank int, k kernels.Kernel, n int) float64 {
	return m.profile.KernelRate(m.placement.NodeOf(rank), k, n)
}

// String describes the machine.
func (m *Machine) String() string {
	return fmt.Sprintf("%s, %d ranks (%s placement)", m.profile, m.Procs(), m.placement.Policy)
}

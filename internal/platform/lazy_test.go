package platform

import "testing"

// TestLazyMatricesBitIdentical pins the on-demand parameter path against the
// dense one: above denseMatrixLimit the P×P matrices stay nil and every
// accessor computes the profile formula directly, so forcing the lazy path at
// a small P must reproduce the dense matrices bit for bit — including the
// per-pair heterogeneity factors the Xeon preset carries.
func TestLazyMatricesBitIdentical(t *testing.T) {
	old := denseMatrixLimit
	defer func() { denseMatrixLimit = old }()

	for _, prof := range []*Profile{Xeon8x2x4(), FlatCluster(12), HeteroDemo()} {
		const p = 12
		denseMatrixLimit = 1 << 20
		dense, err := prof.Machine(p)
		if err != nil {
			t.Fatal(err)
		}
		if dense.latency == nil {
			t.Fatalf("%s: dense machine did not materialize matrices", prof.Name)
		}
		denseMatrixLimit = 1
		lazy, err := prof.Machine(p)
		if err != nil {
			t.Fatal(err)
		}
		if lazy.latency != nil || lazy.gap != nil || lazy.beta != nil || lazy.overhead != nil {
			t.Fatalf("%s: lazy machine materialized matrices", prof.Name)
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if dense.Latency(i, j) != lazy.Latency(i, j) {
					t.Errorf("%s latency(%d,%d): dense %v, lazy %v", prof.Name, i, j, dense.Latency(i, j), lazy.Latency(i, j))
				}
				if dense.Gap(i, j) != lazy.Gap(i, j) {
					t.Errorf("%s gap(%d,%d): dense %v, lazy %v", prof.Name, i, j, dense.Gap(i, j), lazy.Gap(i, j))
				}
				if dense.Beta(i, j) != lazy.Beta(i, j) {
					t.Errorf("%s beta(%d,%d): dense %v, lazy %v", prof.Name, i, j, dense.Beta(i, j), lazy.Beta(i, j))
				}
				if dense.Overhead(i, j) != lazy.Overhead(i, j) {
					t.Errorf("%s overhead(%d,%d): dense %v, lazy %v", prof.Name, i, j, dense.Overhead(i, j), lazy.Overhead(i, j))
				}
			}
		}
	}
}

// TestSymmetryPredicates pins the machine side of the collapse eligibility
// tests on the presets the collapse paths rely on.
func TestSymmetryPredicates(t *testing.T) {
	flat, err := FlatClusterMachine(16)
	if err != nil {
		t.Fatal(err)
	}
	if !flat.HomogeneousClasses() || !flat.UniformPairs() {
		t.Errorf("flat cluster: homogeneous=%v uniform=%v, want true/true", flat.HomogeneousClasses(), flat.UniformPairs())
	}
	homog, err := XeonClusterHomogeneousMachine(16)
	if err != nil {
		t.Fatal(err)
	}
	if !homog.HomogeneousClasses() {
		t.Error("homogeneous Xeon: HomogeneousClasses() = false")
	}
	if homog.UniformPairs() {
		t.Error("homogeneous Xeon at 16 ranks on 2 nodes: UniformPairs() = true, want false (intra-node pairs exist)")
	}
	hetero, err := XeonClusterMachine(16)
	if err != nil {
		t.Fatal(err)
	}
	if hetero.HomogeneousClasses() {
		t.Error("Xeon with HeteroSpread > 0: HomogeneousClasses() = true")
	}
	noisy, err := Xeon8x2x4().Machine(16)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.HomogeneousClasses() {
		t.Error("Xeon8x2x4 with NoiseRel > 0: HomogeneousClasses() = true")
	}
}

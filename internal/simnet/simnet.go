// Package simnet is a virtual-time message-passing simulator. It is the
// substrate that replaces the thesis' physical clusters: each rank runs as a
// goroutine with its own logical clock, and communication delays are computed
// from the pairwise latency/gap/bandwidth/overhead parameters supplied by a
// Machine (normally a platform.Machine).
//
// The timing rules follow the LogGP decomposition the thesis builds on:
//
//   - initiating a request costs the sender the per-request software overhead
//     o(i,j) on its own clock;
//   - each rank's injection port serializes its outgoing messages, each
//     occupying the port for gap(i,j) + size·β(i,j);
//   - a message becomes available at the destination latency L(i,j) plus the
//     serialized transfer time after it left the injection port;
//   - the destination's extraction port serializes incoming messages by
//     gap(i,j) as they are matched;
//   - optionally (the default), a send request only completes once a
//     zero-size acknowledgement has travelled back, which is the behaviour
//     the thesis' factor-2 stage cost approximates.
//
// Because every delay is derived from per-rank counters and per-rank state,
// simulations are deterministic regardless of goroutine scheduling, provided
// the simulated program itself is deterministic (receives name their source).
package simnet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hbsp/internal/fault"
	"hbsp/internal/trace"
)

// Machine supplies the platform parameters the simulator needs. It is
// implemented by platform.Machine.
type Machine interface {
	// Procs returns the number of ranks.
	Procs() int
	// Latency returns the end-to-end latency of a minimal message from i to j.
	Latency(i, j int) float64
	// Gap returns the per-message port occupancy between i and j.
	Gap(i, j int) float64
	// Beta returns the inverse bandwidth between i and j in seconds per byte.
	Beta(i, j int) float64
	// Overhead returns the per-request sender CPU overhead from i to j.
	Overhead(i, j int) float64
	// SelfOverhead returns the invocation overhead of rank i.
	SelfOverhead(i int) float64
	// NIC returns the network interface index of rank i (ranks sharing a
	// node share a NIC index; intra-NIC messages skip port serialization).
	NIC(i int) int
	// Noise returns a multiplicative jitter factor (>= 1) for rank i's
	// seq-th noisy event.
	Noise(rank int, seq uint64) float64
}

// Engine selects how schedule-expressible parts of a run are executed.
type Engine int

const (
	// EngineAuto (the default) runs simulated bodies concurrently but routes
	// every schedule-expressible collective — pattern executions, superstep
	// count exchanges, schedule floods — through the goroutine-free
	// discrete-event evaluator at an all-ranks rendezvous (see Gate). Virtual
	// times are bit-identical to EngineConcurrent.
	EngineAuto Engine = iota
	// EngineConcurrent disables the direct-evaluation fast path entirely:
	// every message goes through goroutines and mailboxes. It exists for
	// engine diffing and for programs that break the collective-call
	// contract the rendezvous relies on.
	EngineConcurrent
)

// CollapseMode selects whether the direct evaluator may collapse
// rank-equivalence classes (see sched.CollapseClasses): evaluate one
// representative rank per class and replicate the class states at result
// assembly, bit-identical to per-rank evaluation wherever it applies.
type CollapseMode int

const (
	// CollapseAuto (the default) collapses whenever the machine is
	// homogeneous (no pair spread, no noise), the schedule is symmetric, and
	// no trace recorder is attached; evaluation silently falls back to the
	// per-rank sweep otherwise.
	CollapseAuto CollapseMode = iota
	// CollapseOff forces per-rank evaluation everywhere. It exists as an
	// escape hatch and for engine diffing; results are identical either way.
	CollapseOff
)

// Options configure a simulation run.
type Options struct {
	// AckSends makes send requests complete only when an acknowledgement
	// has returned from the destination (one extra latency). This is the
	// default and corresponds to the factor 2 in the thesis' stage cost.
	AckSends bool
	// Engine selects the execution engine for schedule-expressible
	// collectives; the zero value (EngineAuto) enables the direct
	// discrete-event fast path.
	Engine Engine
	// Deadline bounds the real (wall-clock) duration of the simulated run as
	// a guard against deadlocked simulated programs.
	Deadline time.Duration
	// Recorder, when non-nil, records every event of the run (sends, receive
	// completions, compute intervals, superstep and stage boundaries) into
	// per-rank lock-free lanes for post-run analysis and export. nil — the
	// trace.Disabled fast path — costs one pointer test per event.
	Recorder *trace.Recorder
	// SymmetryCollapse controls symmetry-collapsed direct evaluation; the
	// zero value (CollapseAuto) collapses wherever it provably applies.
	SymmetryCollapse CollapseMode
	// Faults, when non-nil, injects the deterministic fault scenario the plan
	// describes: per-rank slowdowns, link degradation windows and fail-stop
	// crashes with checkpoint/restart accounting. Both engines honor the plan
	// bit-identically; nil costs one pointer test on the hot paths.
	Faults *fault.Plan
}

// DefaultOptions returns the options used when none are supplied.
func DefaultOptions() Options {
	return Options{AckSends: true, Deadline: 2 * time.Minute}
}

// Result summarizes a simulation run.
type Result struct {
	// Times holds each rank's final virtual time in seconds.
	Times []float64
	// MakeSpan is the maximum of Times.
	MakeSpan float64
	// Messages is the total number of messages delivered.
	Messages int64
	// Bytes is the total number of payload bytes delivered.
	Bytes int64
	// Collapse reports whether the run's direct evaluations were
	// symmetry-collapsed, and if not, why (the fallback used to be silent).
	Collapse Collapse
}

// Collapse diagnoses the symmetry-collapse decision of a run's direct
// evaluations (sched.RunSchedule, or the collectives routed through the
// gate rendezvous under EngineAuto).
type Collapse struct {
	// Applied is true when collapsed evaluation was used.
	Applied bool
	// Classes is the number of rank-equivalence classes evaluated when
	// Applied.
	Classes int
	// Reason, when Applied is false, names what forced per-rank evaluation —
	// one of the CollapseReason* constants. It stays empty when Applied is
	// true, and also when the run performed no direct evaluation at all
	// (EngineConcurrent, or a run without schedule-expressible collectives).
	Reason string
}

// The collapse fallback reasons Result.Collapse.Reason reports.
const (
	// CollapseReasonOff: the run opted out via CollapseOff.
	CollapseReasonOff = "off"
	// CollapseReasonHetero: the machine has per-pair heterogeneity
	// (HeteroSpread > 0) or does not expose homogeneity at all, so ranks of
	// equal class cannot be proven interchangeable.
	CollapseReasonHetero = "hetero"
	// CollapseReasonNoise: the machine has a live noise model (NoiseRel > 0),
	// whose draws are rank-dependent.
	CollapseReasonNoise = "noise"
	// CollapseReasonTrace: a trace recorder is attached; recording demands
	// per-rank event streams.
	CollapseReasonTrace = "trace"
	// CollapseReasonAsymmetric: the schedule's stage graph (or the ranks'
	// entry states at a rendezvous) is not rank-symmetric, or exceeds the
	// refinement size guards.
	CollapseReasonAsymmetric = "asymmetric"
	// CollapseReasonFault: the fault plan degrades ranks asymmetrically and
	// the refinement could not isolate the degraded ranks into their own
	// classes.
	CollapseReasonFault = "fault"
)

// ErrDeadline is returned when the simulated program does not finish within
// the wall-clock deadline (usually a deadlocked communication pattern).
var ErrDeadline = errors.New("simnet: simulation exceeded wall-clock deadline (deadlock?)")

// ErrAborted is returned by RunContext when the supplied context is cancelled
// before the simulated program finishes. The returned error wraps ErrAborted
// and carries the context's cause.
var ErrAborted = errors.New("simnet: run aborted by context cancellation")

type message struct {
	src, dst, tag int
	size          int
	payload       any
	arrival       float64
	// sendEv is, under tracing, the index of the sender's KindSend event in
	// its lane, so the receiver can link its wait to the gating send;
	// sendEnd is that event's injection end time (T1), carried on the
	// message so the receiver's wait event is self-contained and trace
	// analyses never dereference the sender's lane.
	sendEv  int32
	sendEnd float64
}

// msgPool recycles message envelopes across the whole process: a message is
// allocated on the sending rank and released on the receiving rank once its
// payload has been extracted, which is exactly the producer/consumer shape
// sync.Pool is designed for.
var msgPool = sync.Pool{New: func() any { return new(message) }}

func releaseMessage(m *message) {
	m.payload = nil
	msgPool.Put(m)
}

// waiterPool recycles the one-shot wake-up channels of blocked receivers.
var waiterPool = sync.Pool{New: func() any { return make(chan *message, 1) }}

// msgQueue is the FIFO of one (src, tag) pair. msgs[head:] are the pending
// messages; waiters are blocked receivers, each woken individually by exactly
// one delivery (no thundering herd). A queue never holds both pending
// messages and waiters.
type msgQueue struct {
	msgs    []*message
	head    int
	waiters []chan *message
}

func (q *msgQueue) push(m *message) {
	q.msgs = append(q.msgs, m)
}

func (q *msgQueue) pop() *message {
	m := q.msgs[q.head]
	q.msgs[q.head] = nil
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	} else if q.head > 32 && q.head > len(q.msgs)/2 {
		// Compact when the consumed prefix dominates, so a queue with a
		// standing backlog (producer permanently ahead) stays O(backlog)
		// instead of retaining one slot per message ever enqueued.
		n := copy(q.msgs, q.msgs[q.head:])
		clear(q.msgs[n:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	return m
}

// mbKey indexes a mailbox queue: matching in the simulator is always on the
// exact (source, tag) pair, so the mailbox keeps one FIFO per pair instead of
// scanning a flat pending list.
type mbKey struct{ src, tag int }

// queueChunkSize is the arena block size for msgQueue allocation. Queues are
// handed out as pointers into fixed-capacity chunks, so creating the P-1
// queues of a large collective costs P/queueChunkSize allocations instead
// of P.
const queueChunkSize = 64

// maxFlatEntries bounds the size of a mailbox's flat (src, tag) table: while
// the observed tag span keeps procs·span at or below it, lookups index a flat
// slice directly; the first tag outside that budget migrates the mailbox to
// the map index for the rest of the run.
const maxFlatEntries = 1 << 14

// mailbox holds one rank's incoming traffic, indexed by (source, tag).
//
// Two index representations exist. While the observed tag span is small —
// which the constant stage tags of the schedule walkers guarantee for
// collective-heavy runs — queues live in a flat slice indexed by
// (tag-flatLo)·procs + src, so the hot path is a bounds check and an array
// load with no hashing at all. A run whose tags spread beyond maxFlatEntries
// (e.g. mixing the one-sided, count-exchange and schedule tag ranges at high
// P) is migrated once to the map index, the previous behaviour. On top of
// both, the one-entry (lastKey, lastQ) cache short-circuits consecutive
// operations on the same pair (superstep drains, stage-wise collectives).
type mailbox struct {
	mu    sync.Mutex
	procs int

	// Flat index: rows of procs queue pointers, one row per tag in
	// [flatLo, flatLo + len(flat)/procs). flatHi tracks the highest tag
	// actually observed; seen is false until the first lookup fixes flatLo.
	flat   []*msgQueue
	flatLo int
	flatHi int
	seen   bool

	// Map index, non-nil once the mailbox has migrated.
	queues map[mbKey]*msgQueue

	lastKey   mbKey
	lastQ     *msgQueue
	chunk     []msgQueue
	cancelled *atomic.Bool
}

func newMailbox(procs int, cancelled *atomic.Bool) *mailbox {
	return &mailbox{procs: procs, cancelled: cancelled}
}

// newQueue allocates a queue from the arena chunk.
func (mb *mailbox) newQueue() *msgQueue {
	if len(mb.chunk) == cap(mb.chunk) {
		mb.chunk = make([]msgQueue, 0, queueChunkSize)
	}
	mb.chunk = append(mb.chunk, msgQueue{})
	return &mb.chunk[len(mb.chunk)-1]
}

// queue returns (creating if needed) the FIFO of the (src, tag) pair. The
// caller must hold mb.mu.
func (mb *mailbox) queue(src, tag int) *msgQueue {
	key := mbKey{src: src, tag: tag}
	if mb.lastQ != nil && mb.lastKey == key {
		return mb.lastQ
	}
	var q *msgQueue
	if mb.queues != nil {
		q = mb.queues[key]
		if q == nil {
			q = mb.newQueue()
			mb.queues[key] = q
		}
	} else {
		idx, ok := mb.flatIndex(tag)
		if !ok {
			return mb.migrate(src, tag)
		}
		q = mb.flat[idx*mb.procs+src]
		if q == nil {
			q = mb.newQueue()
			mb.flat[idx*mb.procs+src] = q
		}
	}
	mb.lastKey, mb.lastQ = key, q
	return q
}

// flatIndex returns tag's row in the flat table, growing the table if the tag
// extends the observed span. ok is false when the grown span would exceed the
// flat budget and the mailbox must migrate to the map index.
func (mb *mailbox) flatIndex(tag int) (row int, ok bool) {
	if !mb.seen {
		mb.seen = true
		mb.flatLo, mb.flatHi = tag, tag
		if mb.flat == nil {
			rows := 8
			if budget := maxFlatEntries / mb.procs; rows > budget {
				rows = budget
				if rows < 1 {
					return 0, false
				}
			}
			mb.flat = make([]*msgQueue, rows*mb.procs)
		}
		return 0, true
	}
	if tag >= mb.flatLo && tag <= mb.flatHi {
		return tag - mb.flatLo, true
	}
	lo, hi := mb.flatLo, mb.flatHi
	if tag < lo {
		lo = tag
	} else {
		hi = tag
	}
	span := hi - lo + 1
	// Divide instead of multiplying: a huge tag span must not overflow the
	// budget check into a false pass (and procs > maxFlatEntries must fall
	// through to the map).
	if span <= 0 || span > maxFlatEntries/mb.procs {
		return 0, false
	}
	rows := len(mb.flat) / mb.procs
	shift := mb.flatLo - lo
	if shift == 0 && span <= rows {
		// Growing on the high side within the allocated rows.
		mb.flatHi = hi
		return tag - mb.flatLo, true
	}
	newRows := span
	if newRows < 2*rows {
		newRows = 2 * rows
	}
	if newRows*mb.procs > maxFlatEntries {
		newRows = maxFlatEntries / mb.procs
	}
	grown := make([]*msgQueue, newRows*mb.procs)
	copy(grown[shift*mb.procs:], mb.flat[:(mb.flatHi-mb.flatLo+1)*mb.procs])
	mb.flat = grown
	mb.flatLo, mb.flatHi = lo, hi
	return tag - mb.flatLo, true
}

// migrate moves the flat table into the map index (the tag span outgrew the
// flat budget) and returns the queue of the pair that triggered it.
func (mb *mailbox) migrate(src, tag int) *msgQueue {
	mb.queues = make(map[mbKey]*msgQueue, 64)
	if mb.seen && mb.flat != nil {
		for row := 0; row <= mb.flatHi-mb.flatLo; row++ {
			for s := 0; s < mb.procs; s++ {
				if q := mb.flat[row*mb.procs+s]; q != nil {
					mb.queues[mbKey{src: s, tag: mb.flatLo + row}] = q
				}
			}
		}
	}
	mb.flat = nil
	key := mbKey{src: src, tag: tag}
	q := mb.newQueue()
	mb.queues[key] = q
	mb.lastKey, mb.lastQ = key, q
	return q
}

// deliver enqueues the message, or hands it directly to the longest-waiting
// receiver of its (source, tag) pair. Only that single waiter is woken.
func (mb *mailbox) deliver(m *message) {
	mb.mu.Lock()
	q := mb.queue(m.src, m.tag)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		mb.mu.Unlock()
		w <- m // buffered, never blocks
		return
	}
	q.push(m)
	mb.mu.Unlock()
}

// cancelPanic aborts a rank goroutine blocked in (or entering) take after the
// run's wall-clock deadline fired; the rank wrapper in Run recovers it.
type cancelPanic struct{}

// take blocks until a message from src with the given tag is available and
// removes the first such message (FIFO per source/tag pair). If the run has
// been cancelled by the deadline watchdog it panics with cancelPanic so the
// rank goroutine unwinds instead of leaking.
func (mb *mailbox) take(src, tag int) *message {
	mb.mu.Lock()
	if mb.cancelled.Load() {
		mb.mu.Unlock()
		panic(cancelPanic{})
	}
	q := mb.queue(src, tag)
	if q.head < len(q.msgs) {
		m := q.pop()
		mb.mu.Unlock()
		return m
	}
	w := waiterPool.Get().(chan *message)
	q.waiters = append(q.waiters, w)
	mb.mu.Unlock()
	m := <-w
	if m == nil {
		// Woken by cancelAll; the channel may be poisoned, do not pool it.
		panic(cancelPanic{})
	}
	waiterPool.Put(w)
	return m
}

// cancelAll wakes every blocked receiver with a nil message so its goroutine
// can unwind. The world's cancel flag must already be set, so receivers that
// have not blocked yet abort on entry to take instead.
func (mb *mailbox) cancelAll() {
	mb.mu.Lock()
	wake := func(q *msgQueue) {
		for i, w := range q.waiters {
			w <- nil
			q.waiters[i] = nil
		}
		q.waiters = q.waiters[:0]
	}
	for _, q := range mb.queues {
		wake(q)
	}
	for _, q := range mb.flat {
		if q != nil {
			wake(q)
		}
	}
	mb.mu.Unlock()
}

type world struct {
	machine   Machine
	opts      Options
	mailboxes []*mailbox
	procs     []*Proc
	gate      *Gate
	faults    *fault.Runtime
	cancelled atomic.Bool
	messages  atomic.Int64
	bytes     atomic.Int64
}

// Proc is the handle a simulated rank uses to compute, communicate and read
// its clock.
type Proc struct {
	w    *world
	rank int

	now      float64
	txFree   float64
	rxFree   float64
	noiseSeq uint64

	// ft is the run's compiled fault plan, nil on fault-free runs (one
	// pointer test per hot-path event, like tr). Fail-stop state is derived
	// from the clock itself (fault.Runtime.Cross), so the EvalState seam the
	// direct evaluator uses needs no extra fields.
	ft *fault.Runtime

	// tr is the rank's trace lane, nil unless a recorder is attached; the
	// hot paths test it once per event. curStep and curStage label recorded
	// events with the run-time position (superstep, collective stage).
	tr       *trace.Lane
	curStep  int32
	curStage int32

	// reqFree recycles Request objects. A Proc is driven by a single
	// goroutine, so the freelist needs no locking; Wait returns completed
	// requests to it (see the Request lifetime note on Isend/Irecv).
	reqFree []*Request
}

// newRequest takes a zeroed Request from the rank-local freelist.
func (p *Proc) newRequest() *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree = p.reqFree[:n-1]
		*r = Request{}
		return r
	}
	return new(Request)
}

func (p *Proc) releaseRequest(r *Request) {
	r.proc = nil
	r.payload = nil
	p.reqFree = append(p.reqFree, r)
}

// Rank returns the rank of the process.
func (p *Proc) Rank() int { return p.rank }

// Size returns the number of ranks in the simulation.
func (p *Proc) Size() int { return p.w.machine.Procs() }

// Now returns the process' current virtual time in seconds.
func (p *Proc) Now() float64 { return p.now }

// noise draws the next jitter factor for this rank. An active fault-plan
// slowdown multiplies into the draw — the injection point for straggler
// scenarios, mirrored by sched.rankState.noise.
func (p *Proc) noise() float64 {
	f := p.w.machine.Noise(p.rank, p.noiseSeq)
	if p.ft != nil {
		f *= p.ft.Slow(p.rank, p.noiseSeq, p.now)
	}
	p.noiseSeq++
	return f
}

// setNow moves the clock forward to t, applying the fail-stop crossing
// transform: an advance across the rank's fail time pays the crash penalty
// (restart + recompute from the last checkpoint) immediately, recorded as a
// KindFault event on traced runs. Mirrored by sched.rankState.setNow.
func (p *Proc) setNow(t float64) {
	if p.ft != nil {
		if adj, pen := p.ft.Cross(p.rank, p.now, t); pen > 0 {
			if p.tr != nil {
				p.tr.Append(trace.Event{Kind: trace.KindFault, Peer: -1, SendSeq: -1,
					Step: p.curStep, Stage: p.curStage, T0: t, T1: adj})
			}
			p.now = adj
			return
		}
	}
	p.now = t
}

// Compute advances the process' clock by the given number of seconds of work,
// subject to run-to-run noise.
func (p *Proc) Compute(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	d := seconds * p.noise()
	if p.tr != nil && d > 0 {
		p.tr.Append(trace.Event{Kind: trace.KindCompute, Peer: -1, SendSeq: -1,
			Step: p.curStep, Stage: p.curStage, T0: p.now, T1: p.now + d})
	}
	p.setNow(p.now + d)
}

// ComputeExact advances the clock without noise; benchmark inner loops use it
// when the noise is applied at a coarser granularity.
func (p *Proc) ComputeExact(seconds float64) {
	if seconds < 0 {
		seconds = 0
	}
	if p.tr != nil && seconds > 0 {
		p.tr.Append(trace.Event{Kind: trace.KindCompute, Peer: -1, SendSeq: -1,
			Step: p.curStep, Stage: p.curStage, T0: p.now, T1: p.now + seconds})
	}
	p.setNow(p.now + seconds)
}

// AdvanceTo moves the clock forward to at least t (no-op if already past).
func (p *Proc) AdvanceTo(t float64) {
	if t > p.now {
		if p.tr != nil {
			p.tr.Append(trace.Event{Kind: trace.KindAdvance, Peer: -1, SendSeq: -1,
				Step: p.curStep, Stage: p.curStage, T0: p.now, T1: t})
		}
		p.setNow(t)
	}
}

// Tracing reports whether a recorder is attached to this run; layered
// run-times use it to skip per-stage instrumentation calls entirely on
// untraced runs.
func (p *Proc) Tracing() bool { return p.tr != nil }

// The accessors below are the seam between the concurrent engine and the
// goroutine-free discrete-event evaluator (internal/sched): at a Gate
// rendezvous the evaluator imports every rank's LogGP evolution state,
// replays the collective's operations sequentially with identical
// arithmetic, and exports the advanced state back. They are not meant for
// simulated programs.

// EvalState exports the rank's LogGP evolution state: its clock, the
// injection/extraction port free times, and the position in the rank's noise
// stream.
func (p *Proc) EvalState() (now, txFree, rxFree float64, noiseSeq uint64) {
	return p.now, p.txFree, p.rxFree, p.noiseSeq
}

// SetEvalState imports the rank's LogGP evolution state after a direct
// evaluation advanced it.
func (p *Proc) SetEvalState(now, txFree, rxFree float64, noiseSeq uint64) {
	p.now, p.txFree, p.rxFree, p.noiseSeq = now, txFree, rxFree, noiseSeq
}

// EvalTrace exports the rank's trace lane (nil on untraced runs) and the
// superstep label events recorded now would carry.
func (p *Proc) EvalTrace() (lane *trace.Lane, step int32) { return p.tr, p.curStep }

// MachineOf returns the machine the run executes on.
func (p *Proc) MachineOf() Machine { return p.w.machine }

// AckSends reports whether the run acknowledges sends (Options.AckSends).
func (p *Proc) AckSends() bool { return p.w.opts.AckSends }

// CollapseMode returns the run's symmetry-collapse setting
// (Options.SymmetryCollapse).
func (p *Proc) CollapseMode() CollapseMode { return p.w.opts.SymmetryCollapse }

// Faults returns the run's compiled fault plan (nil on fault-free runs); the
// direct evaluator imports it at the gate rendezvous so both engines inject
// the identical scenario.
func (p *Proc) Faults() *fault.Runtime { return p.ft }

// AddTraffic adds to the run's delivered message and byte counters on behalf
// of a direct evaluation.
func (p *Proc) AddTraffic(messages, bytes int64) {
	p.w.messages.Add(messages)
	p.w.bytes.Add(bytes)
}

// SharedGate returns the run's rendezvous gate, or nil when the run executes
// with EngineConcurrent — callers use it as the engine switch: a nil gate
// means "walk the collective concurrently".
func (p *Proc) SharedGate() *Gate { return p.w.gate }

// RunProcs returns all ranks' process handles, indexed by rank. Only the
// gate leader may touch peers' handles (see Gate).
func (p *Proc) RunProcs() []*Proc { return p.w.procs }

// TraceSuperstep records a superstep-boundary mark (the index of the
// superstep just completed) and labels subsequent events with the next
// superstep. The BSP run-time calls it from Sync, the MPI layer from
// Barrier; it is a no-op on untraced runs.
func (p *Proc) TraceSuperstep(step int) {
	if p.tr == nil {
		return
	}
	p.tr.Append(trace.Event{Kind: trace.KindSuperstep, Peer: -1, SendSeq: -1,
		Step: int32(step), Stage: p.curStage, T0: p.now, T1: p.now})
	p.curStep = int32(step) + 1
}

// TraceStage records a collective-schedule stage mark and labels subsequent
// events with the stage; a negative stage ends stage attribution. The
// pattern executor brackets every stage with it on traced runs.
func (p *Proc) TraceStage(stage int) {
	if p.tr == nil {
		return
	}
	if stage >= 0 {
		p.tr.Append(trace.Event{Kind: trace.KindStage, Peer: -1, SendSeq: -1,
			Step: p.curStep, Stage: int32(stage), T0: p.now, T1: p.now})
	}
	p.curStage = int32(stage)
}

// Request represents an outstanding non-blocking operation. Requests are
// recycled: Wait returns the request to its rank's freelist, so a Request must
// not be touched after Wait on it has returned.
type Request struct {
	proc    *Proc
	isSend  bool
	peer    int
	tag     int
	size    int
	payload any

	postTime   float64
	completeAt float64
	resolved   bool

	// Tracing state of a resolved receive: whether the message's arrival
	// gated completion, the arrival itself, the sender's event index and
	// that event's injection end time.
	gated   bool
	arrival float64
	sendEv  int32
	sendEnd float64
}

// IsSend reports whether the request is a send request.
func (r *Request) IsSend() bool { return r.isSend }

// Peer returns the remote rank of the request.
func (r *Request) Peer() int { return r.peer }

// sendCore pays the sender-side costs of one eager send, delivers the message
// and returns the virtual time at which the send request completes. It is the
// shared body of Isend and Post; Post skips the Request allocation entirely.
func (p *Proc) sendCore(dst, tag, size int, payload any) (completeAt float64) {
	if dst < 0 || dst >= p.Size() {
		panic(fmt.Sprintf("simnet: send to invalid rank %d", dst))
	}
	m := p.w.machine
	// Per-request software overhead on the sender's CPU. Link degradation is
	// sampled once at the injection clock t0 and governs the whole exchange
	// (transfer, latency, and the ack's return latency).
	t0 := p.now
	latMul, betaMul := 1.0, 1.0
	if p.ft != nil && p.ft.HasLinks() {
		latMul, betaMul = p.ft.Link(p.rank, dst, t0)
	}
	p.setNow(p.now + m.Overhead(p.rank, dst)*p.noise())

	var txStart, transfer float64
	sameNIC := m.NIC(p.rank) == m.NIC(dst)
	transfer = float64(size) * m.Beta(p.rank, dst) * betaMul
	if sameNIC && p.rank != dst {
		// Intra-node transfers bypass the injection port.
		txStart = p.now
	} else {
		txStart = p.now
		if p.txFree > txStart {
			txStart = p.txFree
		}
		p.txFree = txStart + m.Gap(p.rank, dst) + transfer
	}
	arrival := txStart + (m.Latency(p.rank, dst)*latMul+transfer)*p.noise()

	msg := msgPool.Get().(*message)
	*msg = message{src: p.rank, dst: dst, tag: tag, size: size, payload: payload, arrival: arrival}
	if p.tr != nil {
		msg.sendEv = int32(p.tr.Len())
		msg.sendEnd = p.now
		p.tr.Append(trace.Event{Kind: trace.KindSend, Peer: int32(dst), Tag: int32(tag),
			Size: int32(size), SendSeq: -1, Step: p.curStep, Stage: p.curStage,
			T0: t0, T1: p.now, Arrival: arrival})
	}
	p.w.mailboxes[dst].deliver(msg)
	p.w.messages.Add(1)
	p.w.bytes.Add(int64(size))

	completeAt = p.txFree
	if p.rank == dst || sameNIC {
		completeAt = arrival
	}
	if p.w.opts.AckSends && p.rank != dst {
		completeAt = arrival + m.Latency(dst, p.rank)*latMul
	}
	return completeAt
}

// Isend posts a non-blocking send of size bytes carrying an arbitrary payload
// to rank dst with the given tag. The message is delivered eagerly; the
// returned request completes (for Wait purposes) when the transfer — and, in
// ack mode, its acknowledgement — is done. The request is recycled by Wait
// and must not be used afterwards.
func (p *Proc) Isend(dst, tag, size int, payload any) *Request {
	completeAt := p.sendCore(dst, tag, size, payload)
	r := p.newRequest()
	*r = Request{
		proc: p, isSend: true, peer: dst, tag: tag, size: size, payload: payload,
		postTime: p.now, completeAt: completeAt, resolved: true,
	}
	return r
}

// Post is a fire-and-forget eager send: the sender pays its overhead and port
// occupancy, the message is delivered, and no request has to be waited for.
// The BSP run-time uses it for one-sided communication committed during a
// superstep.
func (p *Proc) Post(dst, tag, size int, payload any) {
	p.sendCore(dst, tag, size, payload)
}

// Irecv posts a non-blocking receive for a message from rank src with the
// given tag. Matching happens at Wait time; the request is recycled by Wait
// and must not be used afterwards.
func (p *Proc) Irecv(src, tag int) *Request {
	if src < 0 || src >= p.Size() {
		panic(fmt.Sprintf("simnet: receive from invalid rank %d", src))
	}
	r := p.newRequest()
	*r = Request{proc: p, isSend: false, peer: src, tag: tag, postTime: p.now}
	return r
}

// resolveRecv blocks until the matching message exists, computes the
// completion time of the receive, extracts the payload into the request and
// releases the message envelope back to the pool.
func (r *Request) resolveRecv() {
	if r.resolved {
		return
	}
	p := r.proc
	m := p.w.machine
	msg := p.w.mailboxes[p.rank].take(r.peer, r.tag)
	start := r.postTime
	gated := false
	if msg.arrival > start {
		start = msg.arrival
		gated = true
	}
	sameNIC := m.NIC(p.rank) == m.NIC(r.peer)
	if !sameNIC {
		if p.rxFree > start {
			start = p.rxFree
			gated = false
		}
		p.rxFree = start + m.Gap(r.peer, p.rank)
	}
	r.completeAt = start
	r.payload = msg.payload
	r.resolved = true
	if p.tr != nil {
		r.size = msg.size
		r.gated = gated
		r.arrival = msg.arrival
		r.sendEv = msg.sendEv
		r.sendEnd = msg.sendEnd
	}
	releaseMessage(msg)
}

// Wait blocks until the request completes and advances the caller's clock to
// the completion time. For receives it returns the message payload. Wait
// recycles the request: using (or re-waiting) a Request after Wait has
// returned is an error.
func (p *Proc) Wait(r *Request) any {
	if r.proc == nil {
		panic("simnet: Wait on an already-completed request (requests are recycled by Wait)")
	}
	if r.proc != p {
		panic("simnet: waiting on a request posted by a different rank")
	}
	if !r.isSend {
		r.resolveRecv()
	}
	if r.completeAt > p.now {
		if p.tr != nil {
			ev := trace.Event{Peer: int32(r.peer), Tag: int32(r.tag), Size: int32(r.size),
				SendSeq: -1, Step: p.curStep, Stage: p.curStage, T0: p.now, T1: r.completeAt}
			if r.isSend {
				ev.Kind = trace.KindSendWait
			} else {
				ev.Kind = trace.KindRecvWait
				ev.Gated = r.gated
				ev.SendSeq = r.sendEv
				ev.Arrival = r.arrival
				ev.SendEnd = r.sendEnd
			}
			p.tr.Append(ev)
		}
		p.setNow(r.completeAt)
	}
	var out any
	if !r.isSend {
		out = r.payload
	}
	p.releaseRequest(r)
	return out
}

// WaitAll waits for every request, in order, and returns the payloads of the
// receive requests (send requests contribute nil entries).
func (p *Proc) WaitAll(reqs []*Request) []any {
	out := make([]any, len(reqs))
	for i, r := range reqs {
		out[i] = p.Wait(r)
	}
	return out
}

// Send is a blocking send: Isend followed by Wait.
func (p *Proc) Send(dst, tag, size int, payload any) {
	p.Wait(p.Isend(dst, tag, size, payload))
}

// Recv is a blocking receive from a specific source; it returns the payload.
func (p *Proc) Recv(src, tag int) any {
	return p.Wait(p.Irecv(src, tag))
}

// Run executes body once per rank of the machine, each in its own goroutine,
// and returns the per-rank finishing times. An error returned by any rank, a
// panic in any rank, or exceeding the wall-clock deadline aborts the run.
//
// When the deadline fires, the run is cancelled: every rank blocked in (or
// subsequently entering) a receive unwinds, the watchdog timer is stopped, and
// Run waits for the rank goroutines to terminate before returning ErrDeadline
// — nothing leaks. The one teardown gap is a rank spinning forever in pure
// computation without ever communicating: such a body never yields to the
// simulator and cannot be interrupted, so after a grace period Run returns
// ErrDeadline anyway, leaking that goroutine rather than hanging.
func Run(m Machine, body func(p *Proc) error, opts ...Options) (*Result, error) {
	o := DefaultOptions()
	if len(opts) > 0 {
		o = opts[0]
	}
	return RunContext(context.Background(), m, body, o)
}

// RunContext is Run with explicit options and a context: cancelling the
// context aborts the simulation through the same teardown path as the
// wall-clock deadline (ranks blocked in receives are woken and unwound before
// RunContext returns) and yields an error wrapping ErrAborted. A
// non-positive Deadline falls back to the default.
func RunContext(ctx context.Context, m Machine, body func(p *Proc) error, o Options) (*Result, error) {
	if m == nil || m.Procs() < 1 {
		return nil, errors.New("simnet: machine with at least one rank required")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline <= 0 {
		o.Deadline = DefaultOptions().Deadline
	}
	w := &world{machine: m, opts: o, mailboxes: make([]*mailbox, m.Procs())}
	if o.Faults != nil {
		var pc func(i, j int) uint8
		if cm, ok := m.(interface{ PairClass(i, j int) uint8 }); ok {
			pc = cm.PairClass
		}
		rt, err := fault.Compile(o.Faults, m.Procs(), pc)
		if err != nil {
			return nil, err
		}
		w.faults = rt
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox(m.Procs(), &w.cancelled)
	}
	if o.Engine == EngineAuto {
		w.gate = newGate(m.Procs())
	}

	// Attach the recorder, labeling the run with the machine's identity and
	// — crucially for reproducing a trace — the exact run seed the machine
	// carries (WithRunSeed copies expose theirs through RunSeed).
	rec := o.Recorder
	if rec.Enabled() {
		meta := trace.Meta{Procs: m.Procs(), AckSends: o.AckSends}
		if rs, ok := m.(interface{ RunSeed() int64 }); ok {
			meta.Seed, meta.SeedKnown = rs.RunSeed(), true
		}
		if st, ok := m.(fmt.Stringer); ok {
			meta.Machine = st.String()
		}
		meta.Faults = w.faults.Describe()
		rec.BeginRun(meta)
	}
	// finish seals the recording with the outcome; clean=false means rank
	// goroutines may still be running (their lanes are unreadable).
	finish := func(res *Result, err error, clean bool) (*Result, error) {
		if clean && w.gate != nil {
			// Return the gate-parked evaluator (if any layer created one) to
			// its pool; on unclean teardown a leader may still hold it. Its
			// collapse diagnostics are read off first.
			if ci, ok := w.gate.Scratch.(interface{ CollapseInfo() Collapse }); ok && res != nil {
				res.Collapse = ci.CollapseInfo()
			}
			if rel, ok := w.gate.Scratch.(interface{ Release() }); ok {
				w.gate.Scratch = nil
				rel.Release()
			}
		}
		if rec.Enabled() {
			var times []float64
			var makespan float64
			if res != nil {
				times, makespan = res.Times, res.MakeSpan
			}
			rec.EndRun(times, makespan, w.messages.Load(), w.bytes.Load(), err, clean)
		}
		return res, err
	}

	procs := make([]*Proc, m.Procs())
	w.procs = procs
	errs := make([]error, m.Procs())
	var wg sync.WaitGroup
	for rank := 0; rank < m.Procs(); rank++ {
		p := &Proc{w: w, rank: rank, curStage: -1, ft: w.faults}
		if rec.Enabled() {
			p.tr = rec.LaneOf(rank)
		}
		procs[rank] = p
		wg.Add(1)
		go func(rank int, p *Proc) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(cancelPanic); ok {
						errs[rank] = ErrDeadline
						return
					}
					errs[rank] = fmt.Errorf("simnet: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = body(p)
		}(rank, p)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// teardown aborts the run: cancel first (so receives not yet blocked
	// abort on entry), then wake everything already blocked, then wait for
	// the goroutines to unwind. Ranks blocked in receives unwind promptly. A
	// rank that never communicates again cannot be interrupted, so don't let
	// it hang Run: after a grace period return anyway, leaking that one
	// goroutine (as the pre-cancellation implementation always did for every
	// rank).
	// teardown reports whether every rank goroutine actually unwound (false
	// after the grace period: a leaked rank may still be running).
	teardown := func() bool {
		w.cancelled.Store(true)
		if w.gate != nil {
			w.gate.cancelGate()
		}
		for _, mb := range w.mailboxes {
			mb.cancelAll()
		}
		grace := time.NewTimer(5 * time.Second)
		defer grace.Stop()
		select {
		case <-done:
			return true
		case <-grace.C:
			return false
		}
	}
	// completed reports whether every rank has already finished; the abort
	// cases below consult it so that a run finishing at the same instant as
	// the deadline or cancellation still returns its result (a ready done
	// channel must win over a simultaneously ready abort signal).
	completed := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	timer := time.NewTimer(o.Deadline)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		if !completed() {
			return finish(nil, ErrDeadline, teardown())
		}
	case <-ctx.Done():
		if !completed() {
			return finish(nil, fmt.Errorf("%w: %w", ErrAborted, context.Cause(ctx)), teardown())
		}
	}

	var errList []error
	for rank, err := range errs {
		if err != nil {
			errList = append(errList, fmt.Errorf("rank %d: %w", rank, err))
		}
	}
	if len(errList) > 0 {
		return finish(nil, errors.Join(errList...), true)
	}

	res := &Result{Times: make([]float64, m.Procs()), Messages: w.messages.Load(), Bytes: w.bytes.Load()}
	for rank, p := range procs {
		res.Times[rank] = p.now
		if p.now > res.MakeSpan {
			res.MakeSpan = p.now
		}
	}
	return finish(res, nil, true)
}

// MaxTime returns the largest of the supplied times; it is a small helper for
// computing collective completion times from per-rank clocks.
func MaxTime(times []float64) float64 {
	if len(times) == 0 {
		return 0
	}
	max := times[0]
	for _, t := range times[1:] {
		if t > max {
			max = t
		}
	}
	return max
}

// SortedCopy returns a sorted copy of times; reporting code uses it for
// medians and percentiles of per-rank results.
func SortedCopy(times []float64) []float64 {
	out := make([]float64, len(times))
	copy(out, times)
	sort.Float64s(out)
	return out
}

package simnet

import (
	"context"
	"errors"
	"fmt"
)

// OpKind identifies one instruction of a Program's per-rank op-stream.
type OpKind uint8

const (
	// OpCompute advances the rank's clock by Seconds of noisy work
	// (Proc.Compute).
	OpCompute OpKind = iota
	// OpComputeExact advances the clock without noise (Proc.ComputeExact).
	OpComputeExact
	// OpSend posts a non-blocking send to Peer with Tag and Size, filling
	// request slot Req (Proc.Isend).
	OpSend
	// OpPost is a fire-and-forget eager send (Proc.Post).
	OpPost
	// OpRecv posts a non-blocking receive from Peer with Tag into request
	// slot Req (Proc.Irecv).
	OpRecv
	// OpWait waits for request slot Req and frees it (Proc.Wait).
	OpWait
	// OpSuperstep records a superstep-boundary trace mark for step Mark
	// (Proc.TraceSuperstep); a no-op on untraced runs.
	OpSuperstep
	// OpStage records a collective-stage trace mark for stage Mark
	// (Proc.TraceStage); a no-op on untraced runs.
	OpStage
)

// Op is one instruction of a rank's straight-line program. Programs carry no
// payloads: they are the timing skeleton of a communication workload, which
// is exactly what the discrete-event evaluator (internal/sched) needs — and
// what the concurrent engine replays when a Program is executed for
// cross-engine verification.
type Op struct {
	Kind    OpKind
	Peer    int
	Tag     int
	Size    int
	Req     int
	Mark    int
	Seconds float64
}

// Req names a per-rank request slot of a Program; RankProgram.Isend and
// RankProgram.Irecv allocate them, RankProgram.Wait consumes them.
type Req int

// Program is a per-rank straight-line op-stream: the schedule-expressible
// core of a simulated workload (sends, receives, waits, compute intervals,
// trace marks) with every operand fixed up front. A Program can be executed
// by the concurrent engine (RunProgram) or compiled and evaluated directly by
// the goroutine-free discrete-event evaluator (internal/sched); both produce
// bit-identical virtual times.
//
// Build one with NewProgram and the RankProgram append API. A Program is
// immutable once handed to an engine and may be reused across any number of
// runs (the direct evaluator reuses its compiled instruction arrays).
type Program struct {
	procs int
	ops   [][]Op
	nreq  []int
}

// NewProgram returns an empty program for the given number of ranks.
func NewProgram(procs int) *Program {
	if procs < 1 {
		panic(fmt.Sprintf("simnet: program with %d ranks", procs))
	}
	return &Program{procs: procs, ops: make([][]Op, procs), nreq: make([]int, procs)}
}

// Procs returns the number of ranks the program is built for.
func (pr *Program) Procs() int { return pr.procs }

// Ops returns rank's op-stream; the evaluator compiles from it. Callers must
// not mutate the returned slice.
func (pr *Program) Ops(rank int) []Op { return pr.ops[rank] }

// NumReqs returns the number of request slots rank's stream uses.
func (pr *Program) NumReqs(rank int) int { return pr.nreq[rank] }

// Rank returns the append handle for one rank's op-stream.
func (pr *Program) Rank(rank int) *RankProgram {
	if rank < 0 || rank >= pr.procs {
		panic(fmt.Sprintf("simnet: program rank %d out of range [0,%d)", rank, pr.procs))
	}
	return &RankProgram{pr: pr, rank: rank}
}

// RankProgram appends instructions to one rank's op-stream.
type RankProgram struct {
	pr   *Program
	rank int
}

func (b *RankProgram) push(op Op) { b.pr.ops[b.rank] = append(b.pr.ops[b.rank], op) }

// Compute appends a noisy compute interval of the given seconds.
func (b *RankProgram) Compute(seconds float64) { b.push(Op{Kind: OpCompute, Seconds: seconds}) }

// ComputeExact appends a noiseless compute interval.
func (b *RankProgram) ComputeExact(seconds float64) {
	b.push(Op{Kind: OpComputeExact, Seconds: seconds})
}

// Post appends a fire-and-forget eager send.
func (b *RankProgram) Post(dst, tag, size int) {
	b.push(Op{Kind: OpPost, Peer: dst, Tag: tag, Size: size})
}

// Isend appends a non-blocking send and returns its request slot.
func (b *RankProgram) Isend(dst, tag, size int) Req {
	r := b.pr.nreq[b.rank]
	b.pr.nreq[b.rank]++
	b.push(Op{Kind: OpSend, Peer: dst, Tag: tag, Size: size, Req: r})
	return Req(r)
}

// Irecv appends a non-blocking receive and returns its request slot.
func (b *RankProgram) Irecv(src, tag int) Req {
	r := b.pr.nreq[b.rank]
	b.pr.nreq[b.rank]++
	b.push(Op{Kind: OpRecv, Peer: src, Tag: tag, Req: r})
	return Req(r)
}

// Wait appends a wait on a previously posted request slot.
func (b *RankProgram) Wait(r Req) { b.push(Op{Kind: OpWait, Req: int(r)}) }

// Superstep appends a superstep-boundary trace mark for the completed step.
func (b *RankProgram) Superstep(step int) { b.push(Op{Kind: OpSuperstep, Mark: step}) }

// Stage appends a collective-stage trace mark.
func (b *RankProgram) Stage(stage int) { b.push(Op{Kind: OpStage, Mark: stage}) }

// Validate checks the program's structural consistency: peers in range,
// request slots posted exactly once before their (at most one) wait.
func (pr *Program) Validate() error {
	for rank := 0; rank < pr.procs; rank++ {
		posted := make([]int8, pr.nreq[rank]) // 0 unposted, 1 posted, 2 waited
		for i, op := range pr.ops[rank] {
			switch op.Kind {
			case OpSend, OpPost, OpRecv:
				if op.Peer < 0 || op.Peer >= pr.procs {
					return fmt.Errorf("simnet: rank %d op %d: peer %d out of range", rank, i, op.Peer)
				}
				if op.Kind != OpPost {
					if posted[op.Req] != 0 {
						return fmt.Errorf("simnet: rank %d op %d: request slot %d reused", rank, i, op.Req)
					}
					posted[op.Req] = 1
				}
			case OpWait:
				if op.Req < 0 || op.Req >= len(posted) || posted[op.Req] != 1 {
					return fmt.Errorf("simnet: rank %d op %d: wait on request slot %d in state %d", rank, i, op.Req, postedState(posted, op.Req))
				}
				posted[op.Req] = 2
			}
		}
	}
	return nil
}

func postedState(posted []int8, req int) int8 {
	if req < 0 || req >= len(posted) {
		return -1
	}
	return posted[req]
}

// RunProgram executes the program on the concurrent engine: every rank runs
// its op-stream in its own goroutine against real mailboxes, exactly as a
// hand-written body would. It is the reference the direct evaluator is diffed
// against, and the execution path WithConcurrentEngine selects.
func RunProgram(ctx context.Context, m Machine, pr *Program, o Options) (*Result, error) {
	if pr == nil {
		return nil, errors.New("simnet: nil program")
	}
	if m != nil && m.Procs() != pr.procs {
		return nil, fmt.Errorf("simnet: program for %d ranks on a %d-rank machine", pr.procs, m.Procs())
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	return RunContext(ctx, m, func(p *Proc) error {
		ops := pr.ops[p.Rank()]
		reqs := make([]*Request, pr.nreq[p.Rank()])
		for i := range ops {
			op := &ops[i]
			switch op.Kind {
			case OpCompute:
				p.Compute(op.Seconds)
			case OpComputeExact:
				p.ComputeExact(op.Seconds)
			case OpSend:
				reqs[op.Req] = p.Isend(op.Peer, op.Tag, op.Size, nil)
			case OpPost:
				p.Post(op.Peer, op.Tag, op.Size, nil)
			case OpRecv:
				reqs[op.Req] = p.Irecv(op.Peer, op.Tag)
			case OpWait:
				p.Wait(reqs[op.Req])
				reqs[op.Req] = nil
			case OpSuperstep:
				p.TraceSuperstep(op.Mark)
			case OpStage:
				p.TraceStage(op.Mark)
			}
		}
		return nil
	}, o)
}

package simnet

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextCancelUnwindsBlockedRanks cancels a deadlocked run and
// checks that RunContext returns promptly with ErrAborted (all ranks are
// blocked in receives that never match, so only the cancellation path can
// end the run before the deadline).
func TestRunContextCancelUnwindsBlockedRanks(t *testing.T) {
	m := defaultFake(4)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := RunContext(ctx, m, func(p *Proc) error {
		p.Recv((p.Rank()+1)%p.Size(), 7) // never sent
		return nil
	}, Options{AckSends: true, Deadline: time.Minute})
	if res != nil || !errors.Is(err, ErrAborted) {
		t.Fatalf("RunContext = (%v, %v), want ErrAborted", res, err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v, teardown did not unwind promptly", elapsed)
	}
}

// TestRunContextAlreadyCancelled checks that a pre-cancelled context aborts
// even a run that would otherwise complete.
func TestRunContextAlreadyCancelled(t *testing.T) {
	m := defaultFake(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, m, func(p *Proc) error {
		p.Recv((p.Rank()+1)%2, 1) // blocks until cancellation unwinds it
		return nil
	}, Options{AckSends: true, Deadline: time.Minute})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
}

// TestRunContextWrapsCancellationCause checks that the abort error carries
// the context's cause in its chain, so callers can dispatch on it with
// errors.Is.
func TestRunContextWrapsCancellationCause(t *testing.T) {
	m := defaultFake(2)
	cause := errors.New("operator pulled the plug")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, err := RunContext(ctx, m, func(p *Proc) error {
		p.Recv((p.Rank()+1)%2, 1)
		return nil
	}, Options{AckSends: true, Deadline: time.Minute})
	if !errors.Is(err, ErrAborted) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want chain containing ErrAborted and the cause", err)
	}
}

// TestRunContextCompletesNormally checks the context path leaves successful
// runs untouched and produces the same times as Run.
func TestRunContextCompletesNormally(t *testing.T) {
	m := defaultFake(4)
	body := func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		r := p.Irecv(prev, 3)
		p.Send(next, 3, 64, nil)
		p.Wait(r)
		return nil
	}
	want, err := Run(m, body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), m, body, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] {
			t.Errorf("rank %d: RunContext time %.17g != Run time %.17g", i, got.Times[i], want.Times[i])
		}
	}
}

package simnet_test

// External test package: it pins the simulator's virtual-time output on a real
// platform preset (import direction platform -> simnet does not exist, so this
// creates no cycle), guarding the invariant that mailbox/pooling refactors
// never change delivery semantics. The golden values were captured on the
// pre-refactor linear-scan mailbox and must stay bit-identical.

import (
	"fmt"
	"testing"

	"hbsp/internal/platform"
	"hbsp/internal/simnet"
)

// goldenBody is a deterministic all-pairs exchange with staggered compute: it
// exercises injection-port serialization, extraction-gap serialization, acked
// sends, intra-NIC bypass and the noise stream all at once.
func goldenBody(p *simnet.Proc) error {
	n := p.Size()
	rank := p.Rank()
	var reqs []*simnet.Request
	for d := 1; d < n; d++ {
		src := (rank - d + n) % n
		reqs = append(reqs, p.Irecv(src, d))
	}
	p.Compute(float64(rank) * 1e-7)
	for d := 1; d < n; d++ {
		dst := (rank + d) % n
		p.Post(dst, d, 8*d, rank)
	}
	for i, r := range reqs {
		got := p.Wait(r)
		want := (rank - (i + 1) + n) % n
		if got != want {
			return fmt.Errorf("rank %d: wait %d returned payload %v, want %d", rank, i, got, want)
		}
	}
	p.Send((rank+1)%n, 1<<20, 256, nil)
	p.Recv((rank-1+n)%n, 1<<20)
	return nil
}

// TestGoldenVirtualTimes pins the per-rank virtual times of goldenBody on the
// Xeon preset (noise enabled, fixed run seed). Any divergence means the
// simulator's delivery semantics changed — which is a bug, not a tolerance
// issue, hence the exact comparison.
func TestGoldenVirtualTimes(t *testing.T) {
	prof := platform.Xeon8x2x4()
	m, err := prof.Machine(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simnet.Run(m.WithRunSeed(42), goldenBody)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenTimes
	if len(res.Times) != len(want) {
		t.Fatalf("got %d ranks, want %d", len(res.Times), len(want))
	}
	for i, got := range res.Times {
		if fmt.Sprintf("%.17g", got) != want[i] {
			t.Errorf("rank %2d: virtual time %.17g, want %s", i, got, want[i])
		}
	}
	if res.Messages != int64(16*15+16) || res.Bytes == 0 {
		t.Errorf("counters changed: %d msgs, %d bytes", res.Messages, res.Bytes)
	}
}

// goldenTimes holds the exact (%.17g) per-rank virtual times of goldenBody,
// captured before the indexed-mailbox refactor. Regenerate only if the timing
// MODEL changes deliberately, by running the test with -run GoldenVirtualTimes
// -v after temporarily printing res.Times.
var goldenTimes = []string{
	"0.00025148047651374881",
	"0.00025343194241293716",
	"0.000258078828840907",
	"0.00025502661865292635",
	"0.00025599223561372327",
	"0.00025933262507637372",
	"0.00025374673930861547",
	"0.00025569247464176222",
	"0.0002545990285765947",
	"0.000259671163064057",
	"0.0002584832019656199",
	"0.0002602458405432783",
	"0.00025837377967553171",
	"0.00026251524169738601",
	"0.00025034537687881658",
	"0.00025416369377211968",
}

package simnet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMailboxFIFOPerSourceTag drives the indexed mailbox directly: several
// producer goroutines deliver interleaved streams on distinct (src, tag)
// pairs while a consumer takes them in an adversarial order, and every stream
// must come out in FIFO order regardless of scheduling.
func TestMailboxFIFOPerSourceTag(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(8, &cancelled)
	const (
		sources  = 4
		tags     = 3
		perQueue = 50
	)
	var wg sync.WaitGroup
	for src := 0; src < sources; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			// Interleave the tags so deliveries from one source alternate
			// between queues.
			for seq := 0; seq < perQueue; seq++ {
				for tag := 0; tag < tags; tag++ {
					m := msgPool.Get().(*message)
					*m = message{src: src, tag: tag, payload: seq}
					mb.deliver(m)
				}
			}
		}(src)
	}
	// Consume queue by queue, in reverse creation order, concurrently with the
	// producers; take must block until the next FIFO element exists.
	for src := sources - 1; src >= 0; src-- {
		for tag := tags - 1; tag >= 0; tag-- {
			for seq := 0; seq < perQueue; seq++ {
				m := mb.take(src, tag)
				if m.src != src || m.tag != tag {
					t.Fatalf("take(%d,%d) returned message from (%d,%d)", src, tag, m.src, m.tag)
				}
				if m.payload != seq {
					t.Fatalf("queue (%d,%d): got seq %v, want %d (FIFO violated)", src, tag, m.payload, seq)
				}
				releaseMessage(m)
			}
		}
	}
	wg.Wait()
}

// TestPoolReuseAllToAll stresses the message and request pools: repeated
// all-to-all rounds where every payload is unique, so any premature recycling
// (a message or request handed out while still referenced) shows up as a
// wrong payload — and as a race under -race.
func TestPoolReuseAllToAll(t *testing.T) {
	const rounds = 20
	m := defaultFake(8)
	_, err := Run(m, func(p *Proc) error {
		n := p.Size()
		for round := 0; round < rounds; round++ {
			reqs := make([]*Request, 0, n-1)
			for d := 1; d < n; d++ {
				reqs = append(reqs, p.Irecv((p.Rank()-d+n)%n, round))
			}
			for d := 1; d < n; d++ {
				dst := (p.Rank() + d) % n
				p.Post(dst, round, 8, [2]int{p.Rank(), round})
			}
			for i, r := range reqs {
				src := (p.Rank() - (i + 1) + n) % n
				got, ok := p.Wait(r).([2]int)
				if !ok || got != [2]int{src, round} {
					return fmt.Errorf("rank %d round %d: payload %v, want [%d %d]", p.Rank(), round, got, src, round)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRequestRecycledAfterWait pins the new Request lifetime contract: Wait
// recycles the request, so waiting twice must panic loudly instead of
// corrupting the freelist.
func TestRequestRecycledAfterWait(t *testing.T) {
	m := defaultFake(2)
	_, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Post(1, 0, 0, nil)
		case 1:
			r := p.Irecv(0, 0)
			p.Wait(r)
			panicked := func() (panicked bool) {
				defer func() { panicked = recover() != nil }()
				p.Wait(r)
				return false
			}()
			if !panicked {
				return errors.New("second Wait on a recycled request did not panic")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQueueCompactsUnderStandingBacklog pins the memory behaviour of one
// FIFO: a producer that stays permanently ahead of the consumer (the queue
// never fully drains) must not grow the backing slice with every message —
// the consumed prefix is compacted away, keeping the queue O(backlog).
func TestQueueCompactsUnderStandingBacklog(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(8, &cancelled)
	const messages = 100000
	mb.deliver(&message{src: 0, tag: 0, payload: -1}) // standing backlog of 1
	for seq := 0; seq < messages; seq++ {
		mb.deliver(&message{src: 0, tag: 0, payload: seq})
		if m := mb.take(0, 0); m == nil {
			t.Fatal("take returned nil")
		}
	}
	q := mb.queue(0, 0)
	if cap(q.msgs) > 256 {
		t.Fatalf("queue retained %d slots for a backlog of 1 message", cap(q.msgs))
	}
}

// TestDeadlineTearsDownGoroutines verifies the ErrDeadline path no longer
// leaks: the watchdog cancels the run, ranks blocked in receives unwind, and
// the goroutine count returns to its pre-run level.
func TestDeadlineTearsDownGoroutines(t *testing.T) {
	m := defaultFake(8)
	before := runtime.NumGoroutine()
	_, err := Run(m, func(p *Proc) error {
		if p.Rank() == 0 {
			return nil // rank 0 finishes; everyone else deadlocks
		}
		p.Recv(0, 99) // never sent
		return nil
	}, Options{AckSends: true, Deadline: 30 * time.Millisecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// The rank goroutines have been woken and unwound by the time Run returns;
	// allow a little slack for the watchdog helper itself to exit.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines leaked after deadline: %d before, %d after", before, got)
	}
}

// TestCancelAbortsLateReceivers verifies the cancel flag is honoured by ranks
// that reach a receive only after the deadline fired (they abort on entry to
// take instead of blocking forever).
func TestCancelAbortsLateReceivers(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(8, &cancelled)
	cancelled.Store(true)
	defer func() {
		if _, ok := recover().(cancelPanic); !ok {
			t.Error("take on a cancelled mailbox should panic with cancelPanic")
		}
	}()
	mb.take(0, 0)
}

// TestMailboxFlatToMapMigration drives the tag span across the flat-table
// budget mid-stream: messages enqueued while the mailbox was flat must
// survive the migration to the map index, FIFO order intact, and new tags
// must keep matching afterwards.
func TestMailboxFlatToMapMigration(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(4, &cancelled)

	// A clustered tag range first: stays on the flat table.
	for seq := 0; seq < 10; seq++ {
		mb.deliver(&message{src: 1, tag: 5, payload: seq})
	}
	mb.deliver(&message{src: 2, tag: 9, payload: "nine"})
	if mb.queues != nil {
		t.Fatal("clustered tags should stay on the flat table")
	}

	// A far-away tag blows the span budget and migrates everything.
	mb.deliver(&message{src: 0, tag: 5 + maxFlatEntries, payload: "far"})
	if mb.queues == nil {
		t.Fatal("wide tag span should have migrated to the map index")
	}
	if mb.flat != nil {
		t.Fatal("flat table should be released after migration")
	}

	for seq := 0; seq < 10; seq++ {
		if got := mb.take(1, 5).payload; got != seq {
			t.Fatalf("pre-migration FIFO broken: got %v, want %d", got, seq)
		}
	}
	if got := mb.take(2, 9).payload; got != "nine" {
		t.Fatalf("pre-migration message lost: got %v", got)
	}
	if got := mb.take(0, 5+maxFlatEntries).payload; got != "far" {
		t.Fatalf("post-migration message lost: got %v", got)
	}
}

// TestMailboxFlatGrowsBothSides exercises span growth below and above the
// first observed tag (the table re-bases on downward growth).
func TestMailboxFlatGrowsBothSides(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(2, &cancelled)
	mb.deliver(&message{src: 0, tag: 100, payload: "mid"})
	mb.deliver(&message{src: 1, tag: 40, payload: "low"})
	mb.deliver(&message{src: 0, tag: 160, payload: "high"})
	if mb.queues != nil {
		t.Fatal("small span should stay flat")
	}
	if got := mb.take(0, 100).payload; got != "mid" {
		t.Fatalf("got %v", got)
	}
	if got := mb.take(1, 40).payload; got != "low" {
		t.Fatalf("got %v", got)
	}
	if got := mb.take(0, 160).payload; got != "high" {
		t.Fatalf("got %v", got)
	}
}

// TestMailboxHugeRankCount pins the review finding that a rank count beyond
// the whole flat budget must fall straight through to the map index instead
// of indexing a nil flat table.
func TestMailboxHugeRankCount(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(maxFlatEntries+1, &cancelled)
	mb.deliver(&message{src: 3, tag: 0, payload: "big"})
	if mb.queues == nil {
		t.Fatal("oversized rank count should use the map index")
	}
	if got := mb.take(3, 0).payload; got != "big" {
		t.Fatalf("got %v", got)
	}
}

// TestMailboxHugeTagSpanNoAliasing pins the overflow finding: a tag span so
// wide that span*procs wraps int must migrate to the map, never alias a far
// tag onto an existing flat row.
func TestMailboxHugeTagSpanNoAliasing(t *testing.T) {
	var cancelled atomic.Bool
	mb := newMailbox(8, &cancelled)
	mb.deliver(&message{src: 0, tag: 0, payload: "near"})
	mb.deliver(&message{src: 0, tag: 1 << 62, payload: "far"})
	if mb.queues == nil {
		t.Fatal("huge tag span should have migrated to the map index")
	}
	if got := mb.take(0, 1<<62).payload; got != "far" {
		t.Fatalf("far tag aliased: got %v, want far", got)
	}
	if got := mb.take(0, 0).payload; got != "near" {
		t.Fatalf("near tag lost: got %v", got)
	}
}

package simnet

import (
	"fmt"
	"sync"
)

// Gate is the all-ranks rendezvous of the direct-evaluation fast path. When a
// run executes with EngineAuto, every schedule-expressible collective moment
// (a barrier/collective pattern execution, a superstep count exchange, a
// schedule flood) brings all ranks to the run's gate; the last rank to arrive
// becomes the leader and evaluates the whole collective sequentially with the
// discrete-event evaluator (internal/sched) while the other rank goroutines
// are parked, then everyone is released with the leader's verdict.
//
// The gate is integrated with the run's teardown: a cancelled run (wall-clock
// deadline or context cancellation) wakes every parked rank, which unwinds
// through the same cancelPanic path as a rank blocked in a receive, so a
// program that errors out on one rank while the others are waiting at the
// gate terminates exactly like one whose ranks are blocked in receives.
//
// Synchronization contract: a rank's last write to its own Proc happens
// before its Arrive (the gate mutex orders it before the leader runs), and
// the leader's writes happen before the release channel close that resumes
// the parked ranks — so the leader may freely read and write every arrived
// rank's Proc state and trace lane.
type Gate struct {
	mu      sync.Mutex
	n       int
	arrived int
	tickets []any
	round   *gateRound
	cancel  chan struct{}

	// Scratch is a leader-owned cache slot: layers that evaluate at the gate
	// park their reusable evaluator state here between rounds. Only the
	// leader callback may touch it (it runs under the gate mutex).
	Scratch any
}

// gateRound carries the release signal and leader verdict of one rendezvous.
type gateRound struct {
	release chan struct{}
	err     error
}

func newGate(n int) *Gate {
	return &Gate{
		n:       n,
		tickets: make([]any, n),
		round:   &gateRound{release: make(chan struct{})},
		cancel:  make(chan struct{}),
	}
}

// cancelGate wakes every rank parked at the gate; the run's cancel flag must
// already be set so later arrivals abort on entry.
func (g *Gate) cancelGate() {
	g.mu.Lock()
	select {
	case <-g.cancel:
	default:
		close(g.cancel)
	}
	g.mu.Unlock()
}

// Arrive parks the calling rank at the gate with its ticket (an operation
// descriptor the leader inspects). The last rank to arrive runs leader with
// all tickets, rank-indexed, and its error — typically nil — is returned to
// every rank of the round. Arrive unwinds with the run's cancellation panic
// if the run is torn down while parked.
func (g *Gate) Arrive(p *Proc, ticket any, leader func(tickets []any) error) error {
	g.mu.Lock()
	if p.w.cancelled.Load() {
		g.mu.Unlock()
		panic(cancelPanic{})
	}
	g.tickets[p.rank] = ticket
	g.arrived++
	if g.arrived == g.n {
		round := g.round
		err := g.runLeader(leader, round)
		g.arrived = 0
		clear(g.tickets)
		g.round = &gateRound{release: make(chan struct{})}
		round.err = err
		close(round.release)
		g.mu.Unlock()
		return err
	}
	round := g.round
	g.mu.Unlock()
	select {
	case <-round.release:
		return round.err
	case <-g.cancel:
		panic(cancelPanic{})
	}
}

// runLeader invokes the leader callback, converting a leader panic into an
// error for the waiting ranks before re-raising it on the leader's own rank
// (so it surfaces as that rank's panic, exactly like a panic in a
// concurrently executed collective would).
func (g *Gate) runLeader(leader func([]any) error, round *gateRound) (err error) {
	panicked := true
	defer func() {
		if panicked {
			if r := recover(); r != nil {
				round.err = fmt.Errorf("simnet: direct-evaluation leader panicked: %v", r)
				close(round.release)
				g.arrived = 0
				clear(g.tickets)
				g.round = &gateRound{release: make(chan struct{})}
				g.mu.Unlock()
				panic(r)
			}
		}
	}()
	err = leader(g.tickets)
	panicked = false
	return err
}

package simnet

import (
	"errors"
	"math"
	"testing"
	"time"
)

// fakeMachine is a uniform machine with exact, noise-free parameters so the
// timing rules can be checked analytically.
type fakeMachine struct {
	procs     int
	latency   float64
	gap       float64
	beta      float64
	overhead  float64
	self      float64
	sharedNIC bool
}

func (f *fakeMachine) Procs() int                 { return f.procs }
func (f *fakeMachine) Latency(i, j int) float64   { return f.latency }
func (f *fakeMachine) Gap(i, j int) float64       { return f.gap }
func (f *fakeMachine) Beta(i, j int) float64      { return f.beta }
func (f *fakeMachine) Overhead(i, j int) float64  { return f.overhead }
func (f *fakeMachine) SelfOverhead(i int) float64 { return f.self }
func (f *fakeMachine) NIC(i int) int {
	if f.sharedNIC {
		return 0
	}
	return i
}
func (f *fakeMachine) Noise(rank int, seq uint64) float64 { return 1 }

func defaultFake(p int) *fakeMachine {
	return &fakeMachine{procs: p, latency: 10e-6, gap: 1e-6, beta: 1e-9, overhead: 1e-6, self: 0.1e-6}
}

func TestPingTimings(t *testing.T) {
	m := defaultFake(2)
	res, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Post(1, 7, 100, "hello")
		case 1:
			got := p.Recv(0, 7)
			if got != "hello" {
				t.Errorf("payload = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: overhead only (fire and forget).
	if math.Abs(res.Times[0]-1e-6) > 1e-9 {
		t.Fatalf("sender time = %g, want ~1e-6", res.Times[0])
	}
	// Receiver: arrival = overhead + latency + 100*beta = 1e-6 + 10e-6 + 1e-7.
	want := 1e-6 + 10e-6 + 100e-9
	if math.Abs(res.Times[1]-want) > 1e-9 {
		t.Fatalf("receiver time = %g, want %g", res.Times[1], want)
	}
	if res.Messages != 1 || res.Bytes != 100 {
		t.Fatalf("counters: %d msgs, %d bytes", res.Messages, res.Bytes)
	}
	if res.MakeSpan != MaxTime(res.Times) {
		t.Fatal("MakeSpan != max of Times")
	}
}

func TestAckedSendCostsRoundTrip(t *testing.T) {
	m := defaultFake(2)
	res, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 0, nil) // blocking, acked
		case 1:
			p.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender completion = overhead + latency (arrival) + latency (ack).
	want := 1e-6 + 10e-6 + 10e-6
	if math.Abs(res.Times[0]-want) > 1e-9 {
		t.Fatalf("acked send time = %g, want %g", res.Times[0], want)
	}
	// With acks disabled the send completes when the port frees.
	res2, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Send(1, 1, 0, nil)
		case 1:
			p.Recv(0, 1)
		}
		return nil
	}, Options{AckSends: false, Deadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Times[0] >= res.Times[0] {
		t.Fatalf("unacked send (%g) should be cheaper than acked (%g)", res2.Times[0], res.Times[0])
	}
}

func TestOverlapOfEagerSends(t *testing.T) {
	// The receiver computes for much longer than the transfer takes; the
	// receive then completes immediately — communication was overlapped.
	m := defaultFake(2)
	const work = 1e-3
	res, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			p.Post(1, 3, 1000, nil)
		case 1:
			p.Compute(work)
			p.Recv(0, 3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times[1] > work*1.01 {
		t.Fatalf("receive was not overlapped: %g", res.Times[1])
	}
}

func TestInjectionPortSerializesSends(t *testing.T) {
	// One rank fans out many messages; the last arrival reflects the
	// serialized port occupancy (gap per message).
	const fanout = 10
	m := defaultFake(fanout + 1)
	res, err := Run(m, func(p *Proc) error {
		if p.Rank() == 0 {
			for d := 1; d <= fanout; d++ {
				p.Post(d, 0, 0, nil)
			}
			return nil
		}
		p.Recv(0, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The last destination cannot receive before fanout gaps have elapsed.
	minLast := float64(fanout)*1e-6 + 10e-6
	last := res.Times[fanout]
	if last < minLast*0.9 {
		t.Fatalf("fan-out not serialized: last arrival %g < %g", last, minLast)
	}
	// The first destination should be much earlier than the last.
	if res.Times[1] >= last {
		t.Fatalf("expected pipelining: first %g, last %g", res.Times[1], last)
	}
}

func TestIntraNICBypassesPorts(t *testing.T) {
	shared := defaultFake(2)
	shared.sharedNIC = true
	shared.gap = 5e-6
	separate := defaultFake(2)
	separate.gap = 5e-6
	body := func(p *Proc) error {
		switch p.Rank() {
		case 0:
			for i := 0; i < 20; i++ {
				p.Post(1, i, 0, nil)
			}
		case 1:
			for i := 0; i < 20; i++ {
				p.Recv(0, i)
			}
		}
		return nil
	}
	rShared, err := Run(shared, body)
	if err != nil {
		t.Fatal(err)
	}
	rSep, err := Run(separate, body)
	if err != nil {
		t.Fatal(err)
	}
	if rShared.Times[1] >= rSep.Times[1] {
		t.Fatalf("intra-NIC traffic (%g) should beat inter-NIC traffic (%g)",
			rShared.Times[1], rSep.Times[1])
	}
}

func TestWaitAllAndIrecvOrdering(t *testing.T) {
	m := defaultFake(3)
	res, err := Run(m, func(p *Proc) error {
		switch p.Rank() {
		case 0:
			reqs := []*Request{p.Irecv(1, 0), p.Irecv(2, 0)}
			payloads := p.WaitAll(reqs)
			if payloads[0] != 11 || payloads[1] != 22 {
				t.Errorf("payloads = %v", payloads)
			}
		case 1:
			p.Post(0, 0, 8, 11)
		case 2:
			p.Post(0, 0, 8, 22)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times[0] <= 0 {
		t.Fatal("receiver time not advanced")
	}
}

func TestDeterministicRepetition(t *testing.T) {
	m := defaultFake(4)
	body := func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		req := p.Irecv(prev, 5)
		p.Post(next, 5, 64, p.Rank())
		p.Compute(3e-6)
		p.Wait(req)
		return nil
	}
	r1, err := Run(m, body)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(m, body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Times {
		if r1.Times[i] != r2.Times[i] {
			t.Fatalf("nondeterministic times at rank %d: %g vs %g", i, r1.Times[i], r2.Times[i])
		}
	}
}

func TestComputeAndAdvance(t *testing.T) {
	m := defaultFake(1)
	res, err := Run(m, func(p *Proc) error {
		p.Compute(1e-3)
		p.ComputeExact(1e-3)
		p.Compute(-5) // negative work is clamped to zero
		p.AdvanceTo(5e-3)
		p.AdvanceTo(1e-3) // no-op
		if p.Now() != 5e-3 {
			t.Errorf("Now = %g", p.Now())
		}
		if p.Size() != 1 || p.Rank() != 0 {
			t.Error("Rank/Size wrong")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times[0] != 5e-3 {
		t.Fatalf("final time %g", res.Times[0])
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	m := defaultFake(2)
	boom := errors.New("boom")
	_, err := Run(m, func(p *Proc) error {
		if p.Rank() == 1 {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPanicIsRecovered(t *testing.T) {
	m := defaultFake(1)
	_, err := Run(m, func(p *Proc) error {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestDeadlockHitsDeadline(t *testing.T) {
	m := defaultFake(2)
	_, err := Run(m, func(p *Proc) error {
		if p.Rank() == 0 {
			p.Recv(1, 9) // never sent
		}
		return nil
	}, Options{AckSends: true, Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

func TestInvalidRankPanicsAreReported(t *testing.T) {
	m := defaultFake(1)
	if _, err := Run(m, func(p *Proc) error { p.Post(5, 0, 0, nil); return nil }); err == nil {
		t.Fatal("send to invalid rank should error")
	}
	if _, err := Run(m, func(p *Proc) error { p.Irecv(-1, 0); return nil }); err == nil {
		t.Fatal("recv from invalid rank should error")
	}
	if _, err := Run(nil, func(p *Proc) error { return nil }); err == nil {
		t.Fatal("nil machine should error")
	}
}

func TestHelpers(t *testing.T) {
	if MaxTime(nil) != 0 {
		t.Fatal("MaxTime(nil) should be 0")
	}
	if MaxTime([]float64{1, 3, 2}) != 3 {
		t.Fatal("MaxTime wrong")
	}
	s := SortedCopy([]float64{3, 1, 2})
	if s[0] != 1 || s[2] != 3 {
		t.Fatal("SortedCopy wrong")
	}
}

package mpi

import (
	"math"
	"testing"

	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/topology"
)

func testMachine(t *testing.T, ranks int) simnet.Machine {
	t.Helper()
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0 // exact timing for unit tests
	m, err := prof.Machine(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRankSizeWtime(t *testing.T) {
	m := testMachine(t, 4)
	seen := make([]bool, 4)
	_, err := Run(m, func(c *Comm) error {
		if c.Size() != 4 {
			t.Errorf("Size = %d", c.Size())
		}
		seen[c.Rank()] = true
		if c.Wtime() != 0 {
			t.Errorf("initial Wtime = %g", c.Wtime())
		}
		c.Compute(1e-3)
		if c.Wtime() <= 0 {
			t.Error("Wtime did not advance")
		}
		if c.Proc() == nil {
			t.Error("Proc() returned nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d did not run", r)
		}
	}
}

func TestSendRecvAndNonBlocking(t *testing.T) {
	m := testMachine(t, 2)
	_, err := Run(m, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, 8, 3.14)
			req := c.Isend(1, 2, 8, 42)
			c.Wait(req)
		case 1:
			if got := c.Recv(0, 1); got != 3.14 {
				t.Errorf("Recv = %v", got)
			}
			req := c.Irecv(0, 2)
			if got := c.Wait(req); got != 42 {
				t.Errorf("Irecv = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentRequests(t *testing.T) {
	m := testMachine(t, 2)
	const reps = 3
	_, err := Run(m, func(c *Comm) error {
		other := 1 - c.Rank()
		reqs := []*PersistentRequest{
			c.RecvInit(other, 5),
			c.SendInit(other, 5, 4, c.Rank()),
		}
		for rep := 0; rep < reps; rep++ {
			c.Startall(reqs)
			got := c.WaitallPersistent(reqs)
			if got[0] != other {
				t.Errorf("rep %d: received %v, want %d", rep, got[0], other)
			}
			if got[1] != nil {
				t.Errorf("send slot should be nil, got %v", got[1])
			}
		}
		// Waiting again without Startall is a no-op.
		res := c.WaitallPersistent(reqs)
		if res[0] != nil {
			t.Error("inactive request should yield nil")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentInitValidation(t *testing.T) {
	m := testMachine(t, 2)
	if _, err := Run(m, func(c *Comm) error { c.SendInit(9, 0, 0, nil); return nil }); err == nil {
		t.Fatal("SendInit to invalid rank should error")
	}
	if _, err := Run(m, func(c *Comm) error { c.RecvInit(-1, 0); return nil }); err == nil {
		t.Fatal("RecvInit from invalid rank should error")
	}
}

func TestBarrierAlignsRanks(t *testing.T) {
	m := testMachine(t, 8)
	res, err := Run(m, func(c *Comm) error {
		// Rank 3 is late; everyone else must wait for it.
		if c.Rank() == 3 {
			c.Compute(5e-3)
		}
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, tm := range res.Times {
		if tm < 5e-3 {
			t.Errorf("rank %d finished at %g, before the straggler", r, tm)
		}
	}
}

func TestAllreduce(t *testing.T) {
	for _, ranks := range []int{2, 3, 7, 8} {
		m := testMachine(t, ranks)
		_, err := Run(m, func(c *Comm) error {
			sum := c.Allreduce(float64(c.Rank()+1), OpSum)
			want := float64(ranks*(ranks+1)) / 2
			if math.Abs(sum-want) > 1e-9 {
				t.Errorf("P=%d: sum = %g, want %g", ranks, sum, want)
			}
			max := c.Allreduce(float64(c.Rank()), OpMax)
			if max != float64(ranks-1) {
				t.Errorf("P=%d: max = %g", ranks, max)
			}
			min := c.Allreduce(float64(c.Rank()), OpMin)
			if min != 0 {
				t.Errorf("P=%d: min = %g", ranks, min)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllgather(t *testing.T) {
	const ranks = 5
	m := testMachine(t, ranks)
	_, err := Run(m, func(c *Comm) error {
		all := c.Allgather(c.Rank() * 10)
		if len(all) != ranks {
			t.Errorf("Allgather length %d", len(all))
		}
		for r := 0; r < ranks; r++ {
			if all[r] != r*10 {
				t.Errorf("all[%d] = %v", r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, ranks := range []int{1, 2, 5, 8} {
		for _, root := range []int{0, ranks - 1} {
			m := testMachine(t, ranks)
			_, err := Run(m, func(c *Comm) error {
				val := any(nil)
				if c.Rank() == root {
					val = "payload"
				}
				got := c.Bcast(val, root)
				if got != "payload" {
					t.Errorf("P=%d root=%d rank=%d: Bcast = %v", ranks, root, c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCollectiveCostGrowsWithDistance(t *testing.T) {
	// A barrier across nodes must cost more than within a node.
	prof := platform.Xeon8x2x4()
	prof.NoiseRel = 0
	small, err := prof.Machine(8) // round-robin: 8 ranks on 8 different nodes
	if err != nil {
		t.Fatal(err)
	}
	pl, err := prof.PlaceWith(8, topology.Block)
	if err != nil {
		t.Fatal(err)
	}
	local := prof.MachineFor(pl)

	run := func(m simnet.Machine) float64 {
		res, err := Run(m, func(c *Comm) error {
			c.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MakeSpan
	}
	remote := run(small)
	intra := run(local)
	if intra >= remote {
		t.Fatalf("intra-node barrier (%g) should be cheaper than cross-node (%g)", intra, remote)
	}
}

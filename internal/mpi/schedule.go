package mpi

import (
	"errors"
	"fmt"

	"hbsp/internal/sched"
	"hbsp/internal/simnet"
)

// Schedule is the minimal stage-graph view of a verified collective schedule
// that the Comm collectives execute. It is satisfied by barrier.Pattern (and
// therefore by every generator and by the model-selected hybrid schedules of
// internal/adapt), without this package importing the schedule engine — the
// engine's pattern simulator imports this package, so the dependency must
// point this way.
type Schedule interface {
	// NumProcs returns the number of participating processes.
	NumProcs() int
	// NumStages returns the number of stages.
	NumStages() int
	// StageEdges returns the ranks signalling rank in the stage (ins), the
	// ranks it signals (outs), and the payload size in bytes of each out-edge
	// (outBytes, nil when the schedule carries no payload information).
	StageEdges(stage, rank int) (ins, outs, outBytes []int)
}

// tagSchedule is the base tag of the schedule-executing collectives. Stages
// are distinguished by tag; repeated executions reuse the same tags, which is
// safe because mailbox matching is FIFO per (source, tag): every rank
// completes all stage-s receives of one collective call before posting those
// of the next, and senders inject in program order, so streams cannot
// cross-match (the same argument that lets barrier.Execute reuse tags).
const tagSchedule = 1 << 29

// flood executes the schedule with knowledge-flooding data semantics: every
// rank starts out knowing only its own contribution, and along every
// prescribed edge the sender forwards a snapshot of everything it knows,
// keyed by originating rank. The billed message sizes are the schedule's
// per-edge payload sizes, i.e. the exact bytes the cost model prices. It
// returns the contributions known to the calling rank after the last stage;
// which entries must be present depends on the collective's semantics and is
// checked by the callers.
//
// The stage walk (Irecv the in-edges, snapshot everything known, Isend along
// the out-edges, merge, then wait the sends) deliberately mirrors
// scheduleSync.ExchangeCounts in internal/bsp/synchronizer.go and the
// signal-only walk of barrier.Execute; they cannot share code because their
// billed sizes differ (the count exchange prices the rows actually known,
// this walk prices the schedule's per-edge payload model) and the count
// exchange is pinned bit-for-bit by golden tests — change the walk protocol
// in all three places together.
//
// Contributions travel by reference between the rank goroutines: a rank may
// return from the collective while slower ranks are still reading its
// contribution. Callers passing mutable values (slices, maps, pointers) must
// either hand over private copies or treat them as immutable for the rest of
// the run; the typed BSP collectives copy on both sides for exactly this
// reason.
func (c *Comm) flood(s Schedule, own any) (map[int]any, error) {
	p := c.Size()
	if s.NumProcs() != p {
		return nil, fmt.Errorf("mpi: schedule for %d processes on a %d-process run", s.NumProcs(), p)
	}
	if g := c.proc.SharedGate(); g != nil {
		if ds, ok := s.(directSchedule); ok {
			return c.floodDirect(g, s, ds.ScheduleView(), own)
		}
	}
	rank := c.Rank()
	known := map[int]any{rank: own}
	// On traced runs, bracket every stage for per-stage attribution (checked
	// once so untraced executions pay nothing per stage).
	traced := c.proc.Tracing()
	if traced {
		defer c.proc.TraceStage(-1)
	}
	for stage := 0; stage < s.NumStages(); stage++ {
		if traced {
			c.proc.TraceStage(stage)
		}
		ins, outs, outBytes := s.StageEdges(stage, rank)
		if len(ins) == 0 && len(outs) == 0 {
			continue
		}
		tag := tagSchedule + stage
		recvs := make([]*simnet.Request, 0, len(ins))
		for _, src := range ins {
			recvs = append(recvs, c.proc.Irecv(src, tag))
		}
		var sends []*simnet.Request
		if len(outs) > 0 {
			// Snapshot of everything known so far travels along every
			// out-edge; the snapshot is shared (receivers only read it).
			payload := make(map[int]any, len(known))
			for r, v := range known {
				payload[r] = v
			}
			for k, dst := range outs {
				size := 0
				if outBytes != nil {
					size = outBytes[k]
				}
				sends = append(sends, c.proc.Isend(dst, tag, size, payload))
			}
		}
		for k, req := range recvs {
			in := c.proc.Wait(req)
			got, ok := in.(map[int]any)
			if !ok {
				return nil, fmt.Errorf("mpi: process %d received a malformed flood payload from %d", rank, ins[k])
			}
			for r, v := range got {
				if _, seen := known[r]; !seen {
					known[r] = v
				}
			}
		}
		for _, req := range sends {
			c.proc.Wait(req)
		}
	}
	return known, nil
}

// directSchedule is the optional capability a Schedule implements to route
// its flood through the goroutine-free discrete-event evaluator
// (barrier.Pattern implements it via its cached sparse adjacency). Schedules
// without it — and runs under the concurrent engine — keep the concurrent
// stage walk.
type directSchedule interface {
	ScheduleView() sched.Schedule
}

// floodTicket is the rendezvous descriptor of one rank entering a schedule
// flood: the schedule (the leader verifies agreement), the rank's own
// contribution, and the slot the leader deposits its known-contributions map
// in.
type floodTicket struct {
	s   Schedule
	own any
	out *map[int]any
}

// floodDirect evaluates the flood at the run's gate: the timing — every
// prescribed edge billed at the schedule's per-edge payload size — is
// evaluated sequentially against the live per-rank clocks, and the data
// plane collapses to the knowledge recursion: rank j's known map holds
// exactly the contributions of the origins whose flooding reaches j, by
// reference, which is precisely what the concurrent walk's merge loop
// produces message by message.
func (c *Comm) floodDirect(g *simnet.Gate, s Schedule, view sched.Schedule, own any) (map[int]any, error) {
	var known map[int]any
	t := &floodTicket{s: s, own: own, out: &known}
	err := g.Arrive(c.proc, t, func(tickets []any) error {
		p := c.Size()
		owns := make([]any, p)
		for r, ti := range tickets {
			ft, ok := ti.(*floodTicket)
			if !ok || ft.s != s {
				return errors.New("mpi: ranks disagree on the flooded schedule (schedule collectives are collective)")
			}
			owns[r] = ft.own
		}
		procs := c.proc.RunProcs()
		ev := sched.EvaluatorAt(g, c.proc)
		ev.ImportProcs(procs)
		ev.ExecScheduleAuto(view, tagSchedule, false)
		ev.ExportProcs(procs)
		reach := reachOf(s, view)
		for r, ti := range tickets {
			ft := ti.(*floodTicket)
			m := make(map[int]any, reach.Count(r))
			reach.ForEach(r, func(origin int) { m[origin] = owns[origin] })
			*ft.out = m
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return known, nil
}

// reachOf returns the schedule's knowledge reach sets, preferring the
// cached sets a schedule exposes (barrier.Pattern caches them alongside its
// adjacency) over recomputing the recursion per collective call.
func reachOf(s Schedule, view sched.Schedule) *sched.ReachSet {
	if fr, ok := s.(interface{ FloodReach() *sched.ReachSet }); ok {
		return fr.FloodReach()
	}
	return sched.ReachOf(view)
}

// FloodSchedule executes the schedule with the raw knowledge-flooding data
// semantics of flood and returns the contributions (keyed by originating
// rank) known to the calling rank after the last stage. It is the building
// block the typed schedule collectives share; layered run-times use it to
// implement their own payload types.
//
// Contributions are exchanged by reference, not copied: pass a private copy
// of any mutable value, and do not mutate received values — other ranks may
// still be reading them (and, in the collectives built on this, may share
// the same underlying storage).
func (c *Comm) FloodSchedule(s Schedule, own any) (map[int]any, error) {
	return c.flood(s, own)
}

// BcastSchedule distributes the root's value to every rank by executing the
// schedule (typically a verified broadcast pattern) and returns it on every
// rank.
func (c *Comm) BcastSchedule(s Schedule, root int, value any) (any, error) {
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: %d", ErrInvalidRoot, root)
	}
	var own any
	if c.Rank() == root {
		own = value
	}
	known, err := c.flood(s, own)
	if err != nil {
		return nil, err
	}
	out, ok := known[root]
	if !ok {
		return nil, fmt.Errorf("mpi: schedule never delivered the root's message to process %d", c.Rank())
	}
	return out, nil
}

// ReduceSchedule combines one float64 per rank with the given operator by
// executing the schedule (typically a verified reduce pattern) and returns
// the result on the root; other ranks receive zero. Contributions are
// combined in rank order, so the result is deterministic for any operator.
func (c *Comm) ReduceSchedule(s Schedule, root int, value float64, op Op) (float64, error) {
	if root < 0 || root >= c.Size() {
		return 0, fmt.Errorf("%w: %d", ErrInvalidRoot, root)
	}
	known, err := c.flood(s, value)
	if err != nil {
		return 0, err
	}
	if c.Rank() != root {
		return 0, nil
	}
	return combineAll(known, c.Size(), op)
}

// AllreduceSchedule combines one float64 per rank with the given operator by
// executing the schedule and returns the result on every rank. Contributions
// are combined in rank order, so the result is deterministic and correct for
// non-idempotent operators on any verified schedule (no double counting).
func (c *Comm) AllreduceSchedule(s Schedule, value float64, op Op) (float64, error) {
	known, err := c.flood(s, value)
	if err != nil {
		return 0, err
	}
	return combineAll(known, c.Size(), op)
}

// AllgatherSchedule collects one value per rank by executing the schedule and
// returns the slice indexed by rank, identical on all ranks.
func (c *Comm) AllgatherSchedule(s Schedule, value any) ([]any, error) {
	known, err := c.flood(s, value)
	if err != nil {
		return nil, err
	}
	out := make([]any, c.Size())
	for r := range out {
		v, ok := known[r]
		if !ok {
			return nil, fmt.Errorf("mpi: schedule never delivered the contribution of process %d to process %d", r, c.Rank())
		}
		out[r] = v
	}
	return out, nil
}

// TotalExchangeSchedule performs an all-to-all personalized exchange by
// executing the schedule: blocks[j] is the value this rank sends to rank j,
// and the returned slice holds, per source rank, the value addressed to this
// rank.
func (c *Comm) TotalExchangeSchedule(s Schedule, blocks []any) ([]any, error) {
	p := c.Size()
	if len(blocks) != p {
		return nil, fmt.Errorf("mpi: total exchange needs %d blocks, got %d", p, len(blocks))
	}
	own := append([]any(nil), blocks...)
	known, err := c.flood(s, own)
	if err != nil {
		return nil, err
	}
	rank := c.Rank()
	out := make([]any, p)
	for src := 0; src < p; src++ {
		row, ok := known[src].([]any)
		if !ok {
			return nil, fmt.Errorf("mpi: schedule never delivered the blocks of process %d to process %d", src, rank)
		}
		out[src] = row[rank]
	}
	return out, nil
}

// BarrierSchedule synchronizes all ranks by executing the schedule (typically
// a verified barrier pattern): it returns only once the calling rank can
// account for the arrival of every rank.
func (c *Comm) BarrierSchedule(s Schedule) error {
	known, err := c.flood(s, struct{}{})
	if err != nil {
		return err
	}
	for r := 0; r < c.Size(); r++ {
		if _, ok := known[r]; !ok {
			return fmt.Errorf("mpi: schedule never proved the arrival of process %d to process %d", r, c.Rank())
		}
	}
	return nil
}

// combineAll reduces the P contributions in rank order.
func combineAll(known map[int]any, p int, op Op) (float64, error) {
	var acc float64
	for r := 0; r < p; r++ {
		v, ok := known[r]
		if !ok {
			return 0, fmt.Errorf("mpi: schedule never delivered the operand of process %d", r)
		}
		fv, ok := v.(float64)
		if !ok {
			return 0, fmt.Errorf("mpi: operand of process %d is %T, want float64", r, v)
		}
		if r == 0 {
			acc = fv
			continue
		}
		acc = op(acc, fv)
	}
	return acc, nil
}

// Package mpi layers a small, MPI-flavoured message-passing interface over
// the virtual-time simulator. It provides the subset the thesis' software
// stack relies on: non-blocking point-to-point communication, persistent
// requests with MPI_Startall/MPI_Waitall semantics (the general barrier
// simulator of Fig. 5.5 is written directly against these), and a few
// collectives (barrier, allreduce, allgather) built from point-to-point
// messages.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hbsp/internal/simnet"
)

// Comm is the communicator handle each simulated rank receives. It embeds the
// simulated process and adds MPI-style helpers.
type Comm struct {
	proc *simnet.Proc
	// observer, when non-nil, is notified after every completed Barrier —
	// the MPI analogue of a superstep boundary. barrierStep counts them.
	observer    BarrierObserver
	barrierStep int
}

// BarrierObserver is called by every rank after each completed Barrier with
// the barrier's index (counting from 0) and the rank's virtual time.
// Observers are invoked from the per-rank simulation goroutines and must be
// safe for concurrent use. hbsp.Session installs one so WithTrace callbacks
// see MPI "supersteps" just like BSP ones.
type BarrierObserver func(rank, step int, vtime float64)

// Run executes body once per rank of the machine under the default simulator
// options.
func Run(m simnet.Machine, body func(c *Comm) error, opts ...simnet.Options) (*simnet.Result, error) {
	return simnet.Run(m, func(p *simnet.Proc) error {
		return body(&Comm{proc: p})
	}, opts...)
}

// RunContext is Run with explicit simulator options and a cancellable
// context: cancelling the context aborts the run through the simulator's
// teardown path with an error wrapping simnet.ErrAborted.
func RunContext(ctx context.Context, m simnet.Machine, body func(c *Comm) error, o simnet.Options) (*simnet.Result, error) {
	return RunObserved(ctx, m, body, o, nil)
}

// RunObserved is RunContext with a barrier observer: obs (when non-nil) is
// called on every rank after each completed Barrier.
func RunObserved(ctx context.Context, m simnet.Machine, body func(c *Comm) error, o simnet.Options, obs BarrierObserver) (*simnet.Result, error) {
	return simnet.RunContext(ctx, m, func(p *simnet.Proc) error {
		return body(&Comm{proc: p, observer: obs})
	}, o)
}

// Proc exposes the underlying simulated process for layers (such as the BSP
// run-time) that need fire-and-forget sends or exact clock control.
func (c *Comm) Proc() *simnet.Proc { return c.proc }

// CommOn wraps an existing simulated process in a communicator. Layered
// run-times use it to reach the schedule-driven collectives from their own
// process handles (the BSP collectives are built this way).
func CommOn(p *simnet.Proc) *Comm { return &Comm{proc: p} }

// Rank returns the calling process' rank.
func (c *Comm) Rank() int { return c.proc.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.proc.Size() }

// Wtime returns the process' current virtual time in seconds, mirroring
// MPI_Wtime.
func (c *Comm) Wtime() float64 { return c.proc.Now() }

// Compute advances the local clock by the given amount of work (seconds).
func (c *Comm) Compute(seconds float64) { c.proc.Compute(seconds) }

// Send performs a blocking (acknowledged) send.
func (c *Comm) Send(dst, tag, size int, payload any) { c.proc.Send(dst, tag, size, payload) }

// Recv performs a blocking receive from a specific source and returns the
// payload.
func (c *Comm) Recv(src, tag int) any { return c.proc.Recv(src, tag) }

// Isend posts a non-blocking send.
func (c *Comm) Isend(dst, tag, size int, payload any) *simnet.Request {
	return c.proc.Isend(dst, tag, size, payload)
}

// Irecv posts a non-blocking receive.
func (c *Comm) Irecv(src, tag int) *simnet.Request {
	return c.proc.Irecv(src, tag)
}

// Wait blocks until the request completes; for receives it returns the
// payload.
func (c *Comm) Wait(r *simnet.Request) any { return c.proc.Wait(r) }

// WaitAll waits for all requests in order.
func (c *Comm) WaitAll(reqs []*simnet.Request) []any { return c.proc.WaitAll(reqs) }

// Waitall waits for all requests in order.
//
// Deprecated: Use WaitAll, the idiomatically capitalized name. Waitall is
// kept as an alias for existing callers of the MPI-flavoured spelling.
func (c *Comm) Waitall(reqs []*simnet.Request) []any { return c.WaitAll(reqs) }

// reqKind discriminates persistent request types.
type reqKind int

const (
	sendKind reqKind = iota
	recvKind
)

// PersistentRequest is the analogue of an MPI persistent communication
// request created with MPI_Send_init / MPI_Recv_init: a reusable description
// of one transfer that Startall activates.
type PersistentRequest struct {
	kind    reqKind
	peer    int
	tag     int
	size    int
	payload any

	active *simnet.Request
}

// SendInit creates a persistent send request of size bytes to rank dst.
func (c *Comm) SendInit(dst, tag, size int, payload any) *PersistentRequest {
	if dst < 0 || dst >= c.Size() {
		panic(fmt.Sprintf("mpi: SendInit to invalid rank %d", dst))
	}
	return &PersistentRequest{kind: sendKind, peer: dst, tag: tag, size: size, payload: payload}
}

// RecvInit creates a persistent receive request from rank src.
func (c *Comm) RecvInit(src, tag int) *PersistentRequest {
	if src < 0 || src >= c.Size() {
		panic(fmt.Sprintf("mpi: RecvInit from invalid rank %d", src))
	}
	return &PersistentRequest{kind: recvKind, peer: src, tag: tag}
}

// Startall activates all persistent requests, mirroring MPI_Startall: the
// receives are posted first so matching sends find them pre-posted, then the
// sends are injected back to back.
func (c *Comm) Startall(reqs []*PersistentRequest) {
	for _, r := range reqs {
		if r.kind == recvKind {
			r.active = c.proc.Irecv(r.peer, r.tag)
		}
	}
	for _, r := range reqs {
		if r.kind == sendKind {
			r.active = c.proc.Isend(r.peer, r.tag, r.size, r.payload)
		}
	}
}

// WaitAllPersistent waits for every active persistent request and deactivates
// it, mirroring MPI_Waitall. It returns the payloads received (nil entries for
// sends).
func (c *Comm) WaitAllPersistent(reqs []*PersistentRequest) []any {
	out := make([]any, len(reqs))
	for i, r := range reqs {
		if r.active == nil {
			continue
		}
		out[i] = c.proc.Wait(r.active)
		r.active = nil
	}
	return out
}

// WaitallPersistent waits for every active persistent request.
//
// Deprecated: Use WaitAllPersistent, the idiomatically capitalized name.
func (c *Comm) WaitallPersistent(reqs []*PersistentRequest) []any {
	return c.WaitAllPersistent(reqs)
}

// Tags used by the built-in collectives; user code should avoid the highest
// tag values.
const (
	tagBarrier   = 1 << 28
	tagAllreduce = 1<<28 + 1
	tagAllgather = 1<<28 + 2
	tagBcast     = 1<<28 + 3
)

// Barrier synchronizes all ranks with a dissemination pattern. A completed
// barrier is the MPI analogue of a superstep boundary: traced runs record a
// superstep mark, and a BarrierObserver (if installed) is notified.
func (c *Comm) Barrier() {
	c.dissemination(tagBarrier, nil, nil)
	c.proc.TraceSuperstep(c.barrierStep)
	if c.observer != nil {
		c.observer(c.Rank(), c.barrierStep, c.proc.Now())
	}
	c.barrierStep++
}

// dissemination runs the log2(P) dissemination exchange. If payload/combine
// are non-nil, each round exchanges the running value and combines it, which
// is how Allreduce is built.
func (c *Comm) dissemination(tag int, value any, combine func(a, b any) any) any {
	p := c.Size()
	rank := c.Rank()
	acc := value
	round := 0
	for dist := 1; dist < p; dist *= 2 {
		dst := (rank + dist) % p
		src := (rank - dist + p) % p
		size := 0
		if acc != nil {
			size = 8
		}
		rreq := c.proc.Irecv(src, tag+round<<8)
		sreq := c.proc.Isend(dst, tag+round<<8, size, acc)
		got := c.proc.Wait(rreq)
		c.proc.Wait(sreq)
		if combine != nil {
			acc = combine(acc, got)
		}
		round++
	}
	return acc
}

// Op is a reduction operator for Allreduce.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = func(a, b float64) float64 { return math.Max(a, b) }
	OpMin Op = func(a, b float64) float64 { return math.Min(a, b) }
)

// Allreduce combines one float64 per rank with the given operator and returns
// the result on every rank. It gathers all contributions with a ring
// allgather and reduces locally, which is correct for any operator and any
// process count (a recursive-doubling exchange would double-count
// non-idempotent operators when P is not a power of two).
func (c *Comm) Allreduce(value float64, op Op) float64 {
	all := c.allgatherTagged(value, tagAllreduce)
	acc, ok := all[0].(float64)
	if !ok {
		acc = 0
	}
	for _, v := range all[1:] {
		fv, _ := v.(float64)
		acc = op(acc, fv)
	}
	return acc
}

// Allgather collects one value from every rank and returns the slice indexed
// by rank, identical on all ranks. It is implemented as a ring exchange so
// every rank forwards what it has learned so far.
func (c *Comm) Allgather(value any) []any {
	return c.allgatherTagged(value, tagAllgather)
}

func (c *Comm) allgatherTagged(value any, tag int) []any {
	p := c.Size()
	out := make([]any, p)
	out[c.Rank()] = value
	next := (c.Rank() + 1) % p
	prev := (c.Rank() - 1 + p) % p
	// Ring: in step s, send the value originally owned by (rank-s) and
	// receive the one owned by (rank-s-1).
	for s := 0; s < p-1; s++ {
		sendIdx := (c.Rank() - s + p) % p
		recvIdx := (c.Rank() - s - 1 + p) % p
		rreq := c.proc.Irecv(prev, tag+s<<8)
		sreq := c.proc.Isend(next, tag+s<<8, 8, out[sendIdx])
		out[recvIdx] = c.proc.Wait(rreq)
		c.proc.Wait(sreq)
	}
	return out
}

// Bcast distributes the root's value to every rank with a binomial tree and
// returns it.
func (c *Comm) Bcast(value any, root int) any {
	p := c.Size()
	rank := c.Rank()
	// Relative rank so any root works.
	rel := (rank - root + p) % p
	acc := value
	if rel != 0 {
		// Find the sender: clear the highest set bit of rel.
		mask := 1
		for mask*2 <= rel {
			mask *= 2
		}
		src := ((rel - mask) + root) % p
		acc = c.proc.Recv(src, tagBcast)
	}
	// Forward to children.
	mask := 1
	for mask <= rel {
		mask *= 2
	}
	for ; mask < p; mask *= 2 {
		dstRel := rel + mask
		if dstRel < p {
			dst := (dstRel + root) % p
			c.proc.Send(dst, tagBcast, 8, acc)
		}
	}
	return acc
}

// ErrInvalidRoot is returned by collective helpers validating a root rank.
var ErrInvalidRoot = errors.New("mpi: invalid root rank")

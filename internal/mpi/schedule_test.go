package mpi_test

// External test package: the schedule-executing collectives are exercised
// with real verified patterns from internal/barrier, which imports
// internal/mpi — an in-package test would be an import cycle.

import (
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
)

func scheduleMachine(t *testing.T, procs int) simnet.Machine {
	t.Helper()
	m, err := platform.Xeon8x2x4().Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScheduleCollectivesComputeCorrectValues runs every schedule-driven
// collective on verified generator patterns, for a power of two and a
// non-power-of-two process count.
func TestScheduleCollectivesComputeCorrectValues(t *testing.T) {
	for _, procs := range []int{5, 8} {
		bc, err := barrier.Broadcast(procs, 2, 64)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := barrier.Reduce(procs, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := barrier.AllReduce(procs, 8)
		if err != nil {
			t.Fatal(err)
		}
		ag, err := barrier.AllGather(procs, 8)
		if err != nil {
			t.Fatal(err)
		}
		te, err := barrier.TotalExchange(procs, 8)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := barrier.Dissemination(procs)
		if err != nil {
			t.Fatal(err)
		}
		m := scheduleMachine(t, procs)
		_, err = mpi.Run(m, func(c *mpi.Comm) error {
			p := c.Size()
			me := float64(c.Rank())

			got, err := c.BcastSchedule(bc, 2%p, "payload")
			if err != nil {
				return err
			}
			if got != "payload" {
				t.Errorf("p=%d rank=%d: BcastSchedule = %v", p, c.Rank(), got)
			}

			sum, err := c.ReduceSchedule(rd, 0, me, mpi.OpSum)
			if err != nil {
				return err
			}
			wantSum := float64(p*(p-1)) / 2
			if c.Rank() == 0 && sum != wantSum {
				t.Errorf("p=%d: ReduceSchedule = %g, want %g", p, sum, wantSum)
			}

			all, err := c.AllreduceSchedule(ar, me, mpi.OpMax)
			if err != nil {
				return err
			}
			if all != float64(p-1) {
				t.Errorf("p=%d rank=%d: AllreduceSchedule = %g, want %d", p, c.Rank(), all, p-1)
			}

			gathered, err := c.AllgatherSchedule(ag, c.Rank()*11)
			if err != nil {
				return err
			}
			for r, v := range gathered {
				if v != r*11 {
					t.Errorf("p=%d rank=%d: AllgatherSchedule[%d] = %v", p, c.Rank(), r, v)
				}
			}

			blocks := make([]any, p)
			for j := range blocks {
				blocks[j] = 100*c.Rank() + j
			}
			exch, err := c.TotalExchangeSchedule(te, blocks)
			if err != nil {
				return err
			}
			for src, v := range exch {
				if v != 100*src+c.Rank() {
					t.Errorf("p=%d rank=%d: TotalExchangeSchedule[%d] = %v", p, c.Rank(), src, v)
				}
			}

			return c.BarrierSchedule(ba)
		})
		if err != nil {
			t.Fatalf("p=%d: %v", procs, err)
		}
	}
}

// TestScheduleCollectiveValidation exercises the error paths that do not
// require a mismatched collective call pattern.
func TestScheduleCollectiveValidation(t *testing.T) {
	pat, err := barrier.AllReduce(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := barrier.AllReduce(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := scheduleMachine(t, 4)
	_, err = mpi.Run(m, func(c *mpi.Comm) error {
		if _, err := c.BcastSchedule(pat, -1, 0); err == nil {
			t.Error("BcastSchedule with invalid root should fail")
		}
		if _, err := c.ReduceSchedule(pat, 9, 0, mpi.OpSum); err == nil {
			t.Error("ReduceSchedule with invalid root should fail")
		}
		if _, err := c.AllreduceSchedule(wrong, 0, mpi.OpSum); err == nil {
			t.Error("AllreduceSchedule with mismatched process count should fail")
		}
		if _, err := c.TotalExchangeSchedule(pat, make([]any, 2)); err == nil {
			t.Error("TotalExchangeSchedule with wrong block count should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"bufio"
	"fmt"
	"io"
)

// ReportOptions tune the text report.
type ReportOptions struct {
	// MaxHops caps the printed critical-path hops (the chain can be long on
	// large machines); 0 means the default of 24. The summary line always
	// covers the full chain.
	MaxHops int
	// MaxSteps caps the printed per-superstep rows; 0 means all.
	MaxSteps int
}

// WriteReport renders the compact text report of a recorded run: run
// metadata, the per-rank time breakdown, per-superstep breakdowns with
// straggler attribution, h-relation statistics and the critical path. It
// accepts any Source — an in-RAM *Trace or a spill file — and streams the
// lanes through the analysis passes; the output is a pure function of the
// run, so golden tests diff it directly.
func WriteReport(w io.Writer, src Source, opts ReportOptions) error {
	if opts.MaxHops == 0 {
		opts.MaxHops = 24
	}
	bw := bufio.NewWriter(w)
	meta := src.RunMeta()
	sum := src.RunSummary()

	label := meta.Label
	if label == "" {
		label = "(unlabeled run)"
	}
	fmt.Fprintf(bw, "trace report: %s\n", label)
	if meta.Machine != "" {
		fmt.Fprintf(bw, "machine:      %s\n", meta.Machine)
	}
	seed := "unknown"
	if meta.SeedKnown {
		seed = fmt.Sprintf("%d", meta.Seed)
	}
	fmt.Fprintf(bw, "procs: %d  seed: %s  ack-sends: %v\n", meta.Procs, seed, meta.AckSends)
	fmt.Fprintf(bw, "makespan: %s s   events: %d   messages: %d   bytes: %d\n",
		formatSeconds(sum.MakeSpan), NumEventsOf(src), sum.Messages, sum.Bytes)
	if sum.ErrMsg != "" {
		fmt.Fprintf(bw, "run error: %s\n", sum.ErrMsg)
	}

	bd, err := BreakdownOf(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "\ntime breakdown (sum over %d ranks; %% of rank-seconds):\n", len(bd.PerRank))
	totalAll := 0.0
	for _, c := range Categories {
		totalAll += bd.TotalByCategory(c)
	}
	for _, c := range Categories {
		v := bd.TotalByCategory(c)
		pct := 0.0
		if totalAll > 0 {
			pct = 100 * v / totalAll
		}
		fmt.Fprintf(bw, "  %-15s %12.6e s  %5.1f%%\n", c, v, pct)
	}

	if len(bd.PerStep) > 1 {
		fmt.Fprintf(bw, "\nper-superstep breakdown:\n")
		fmt.Fprintf(bw, "  %-5s %-13s %-13s %-13s %-13s %-13s %-9s\n",
			"step", "compute", "send", "straggler", "latency", "boundary", "straggler@")
		steps := bd.PerStep
		if opts.MaxSteps > 0 && len(steps) > opts.MaxSteps {
			steps = steps[:opts.MaxSteps]
		}
		for _, s := range steps {
			who := "-"
			if s.Straggler >= 0 {
				who = fmt.Sprintf("rank %d", s.Straggler)
			}
			fmt.Fprintf(bw, "  %-5d %13.6e %13.6e %13.6e %13.6e %13.6e %-9s\n",
				s.Step, s.ByCategory[CatCompute], s.ByCategory[CatSend],
				s.ByCategory[CatStraggler], s.ByCategory[CatLatency], s.Boundary, who)
		}
		if opts.MaxSteps > 0 && len(bd.PerStep) > opts.MaxSteps {
			fmt.Fprintf(bw, "  ... %d more steps\n", len(bd.PerStep)-opts.MaxSteps)
		}
	}

	hrs, err := HRelationsOf(src)
	if err != nil {
		return err
	}
	if len(hrs) > 0 {
		fmt.Fprintf(bw, "\nh-relations (per superstep):\n")
		fmt.Fprintf(bw, "  %-5s %-10s %-7s %-8s %-12s %-12s %-12s\n",
			"step", "h(bytes)", "h(msgs)", "msgs", "mean-out", "median-out", "max-out@rank")
		rows := hrs
		if opts.MaxSteps > 0 && len(rows) > opts.MaxSteps {
			rows = rows[:opts.MaxSteps]
		}
		for _, h := range rows {
			fmt.Fprintf(bw, "  %-5d %-10d %-7d %-8d %-12.1f %-12.1f %d@%d\n",
				h.Step, h.HBytes, h.HMessages, h.Messages, h.MeanOutBytes, h.MedianOutBytes, h.MaxOutBytes, h.MaxOutRank)
		}
		if opts.MaxSteps > 0 && len(hrs) > opts.MaxSteps {
			fmt.Fprintf(bw, "  ... %d more steps\n", len(hrs)-opts.MaxSteps)
		}
	}

	cp, err := criticalPathFor(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "\ncritical path: end %s s", formatSeconds(cp.End))
	if cp.End == sum.MakeSpan {
		fmt.Fprintf(bw, " (== makespan)\n")
	} else {
		fmt.Fprintf(bw, " (!= makespan %s s — rank leaked untraced time)\n", formatSeconds(sum.MakeSpan))
	}
	fmt.Fprintf(bw, "  %d hops ending on rank %d: compute %.6e s, send %.6e s, wait %.6e s, in-flight %.6e s\n",
		len(cp.Hops), cp.Rank, cp.Compute, cp.Send, cp.Wait, cp.InFlight)
	hops := cp.Hops
	skipped := 0
	if len(hops) > opts.MaxHops {
		skipped = len(hops) - opts.MaxHops
		hops = hops[len(hops)-opts.MaxHops:]
	}
	if skipped > 0 {
		fmt.Fprintf(bw, "  ... %d earlier hops elided ...\n", skipped)
	}
	for _, h := range hops {
		if h.ViaPeer >= 0 {
			fmt.Fprintf(bw, "  <- msg from rank %d (tag %d, %d B, in-flight %.3e s)\n",
				h.ViaPeer, h.ViaTag, h.ViaSize, h.InFlight)
		}
		fmt.Fprintf(bw, "  rank %-4d [%.6e, %.6e]  compute %.3e  send %.3e  wait %.3e\n",
			h.Rank, h.From, h.To, h.Compute, h.Send, h.Wait)
	}

	st := StragglersOf(src)
	fmt.Fprintf(bw, "\nslack (distance to makespan): critical rank %d", cp.Rank)
	n := len(st)
	if n > 0 {
		fmt.Fprintf(bw, "; max slack %.6e s on rank %d\n", st[n-1].Slack, st[n-1].Rank)
	} else {
		fmt.Fprintf(bw, "\n")
	}
	return bw.Flush()
}

// criticalPathFor routes through the Trace memoization when the source is
// an in-RAM trace.
func criticalPathFor(src Source) (*CriticalPath, error) {
	if t, ok := src.(*Trace); ok {
		return t.CriticalPath(), nil
	}
	return CriticalPathOf(src)
}

// WriteEvents dumps the event stream, one line per event, in the
// deterministic merge order, via the streaming iterator — the merged slice
// is never materialized. Golden tests pin this rendering.
func WriteEvents(w io.Writer, src Source) error {
	bw := bufio.NewWriter(w)
	it, err := NewIter(src)
	if err != nil {
		return err
	}
	for {
		ev, ok := it.Next()
		if !ok {
			break
		}
		fmt.Fprintf(bw, "%-9s rank=%-3d step=%-2d", ev.Kind, ev.Rank, ev.Step)
		if ev.Stage >= 0 {
			fmt.Fprintf(bw, " stage=%d", ev.Stage)
		}
		if ev.Peer >= 0 {
			fmt.Fprintf(bw, " peer=%d tag=%d size=%d", ev.Peer, ev.Tag, ev.Size)
		}
		fmt.Fprintf(bw, " t=[%s, %s]", formatSeconds(ev.T0), formatSeconds(ev.T1))
		if ev.Kind == KindRecvWait {
			fmt.Fprintf(bw, " gated=%v", ev.Gated)
		}
		fmt.Fprintf(bw, "\n")
	}
	if err := it.Err(); err != nil {
		return err
	}
	return bw.Flush()
}

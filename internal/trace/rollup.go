package trace

import (
	"bufio"
	"fmt"
	"io"
)

// This file holds the aggregated exports that stay readable when the full
// event stream does not: per-superstep and per-collective-stage rollups plus
// the top-k slack ranks, computed in one streaming pass over the lanes. A
// rollup of a P=65536 run is a few kilobytes regardless of event count.

// StepRollup aggregates one superstep bucket across all ranks.
type StepRollup struct {
	Step int
	// ByCategory sums event durations per category over every rank.
	ByCategory [numCategories]float64
	// Boundary is the latest superstep-boundary mark of the step and
	// Straggler the rank that set it (-1 without marks).
	Boundary  float64
	Straggler int
	// Messages and Bytes total the step's sent traffic.
	Messages int64
	Bytes    int64
}

// StageRollup aggregates one collective-schedule stage across all ranks.
type StageRollup struct {
	Stage int
	// Events counts the stage's non-mark events.
	Events int
	// ByCategory sums event durations per category.
	ByCategory [numCategories]float64
	// Messages and Bytes total the stage's sent traffic.
	Messages int64
	Bytes    int64
}

// Rollup is the aggregate view of a run: totals, per-step and per-stage
// attributions, and the worst stragglers.
type Rollup struct {
	Meta     Meta
	MakeSpan float64
	Events   int
	Messages int64
	Bytes    int64
	// ByCategory sums event durations per category over the whole run.
	ByCategory [numCategories]float64
	// Steps has one entry per superstep bucket, Stages one per schedule
	// stage observed (empty when the run executed no collective schedule).
	Steps  []StepRollup
	Stages []StageRollup
	// TopSlack lists the k worst stragglers, slack descending.
	TopSlack []Straggler
}

// TotalByCategory returns the run-wide total of one category.
func (r *Rollup) TotalByCategory(c Category) float64 { return r.ByCategory[c] }

// RollupOptions tune RollupOf.
type RollupOptions struct {
	// TopK bounds the straggler list; 0 means 8.
	TopK int
}

// RollupOf computes the aggregate view of any source in a single streaming
// pass per lane (rank-major, so the float accumulation order — and thus the
// bytes of a rendered rollup — is deterministic).
func RollupOf(src Source, opts RollupOptions) (*Rollup, error) {
	if opts.TopK <= 0 {
		opts.TopK = 8
	}
	sum := src.RunSummary()
	r := &Rollup{
		Meta:     src.RunMeta(),
		MakeSpan: sum.MakeSpan,
		Messages: sum.Messages,
		Bytes:    sum.Bytes,
		Steps:    make([]StepRollup, sum.Steps),
	}
	for s := range r.Steps {
		r.Steps[s].Step = s
		r.Steps[s].Straggler = -1
	}
	stageAt := func(stage int32) *StageRollup {
		for int(stage) >= len(r.Stages) {
			r.Stages = append(r.Stages, StageRollup{Stage: len(r.Stages)})
		}
		return &r.Stages[stage]
	}
	for rank := 0; rank < src.NumLanes(); rank++ {
		c, err := src.LaneCols(rank)
		if err != nil {
			return nil, err
		}
		for i, n := 0, c.Len(); i < n; i++ {
			if c.Kind[i] == KindSuperstep {
				sb := &r.Steps[c.Step[i]]
				if c.T1[i] > sb.Boundary || sb.Straggler < 0 {
					sb.Boundary = c.T1[i]
					sb.Straggler = rank
				}
				continue
			}
			if c.Kind[i] == KindStage {
				stageAt(c.Stage[i])
				continue
			}
			r.Events++
			step := &r.Steps[c.Step[i]]
			var stage *StageRollup
			if c.Stage[i] >= 0 {
				stage = stageAt(c.Stage[i])
				stage.Events++
			}
			if c.Kind[i] == KindSend {
				step.Messages++
				step.Bytes += int64(c.Size[i])
				if stage != nil {
					stage.Messages++
					stage.Bytes += int64(c.Size[i])
				}
			}
			classifyCols(src, c, i, func(cat Category, d float64) {
				r.ByCategory[cat] += d
				step.ByCategory[cat] += d
				if stage != nil {
					stage.ByCategory[cat] += d
				}
			})
		}
	}
	r.TopSlack = TopSlack(src, opts.TopK)
	return r, nil
}

// WriteRollup renders a rollup as a compact deterministic text table;
// golden tests diff it directly.
func WriteRollup(w io.Writer, r *Rollup) error {
	bw := bufio.NewWriter(w)
	label := r.Meta.Label
	if label == "" {
		label = "(unlabeled run)"
	}
	fmt.Fprintf(bw, "trace rollup: %s\n", label)
	seed := "unknown"
	if r.Meta.SeedKnown {
		seed = fmt.Sprintf("%d", r.Meta.Seed)
	}
	fmt.Fprintf(bw, "procs: %d  seed: %s  events: %d  messages: %d  bytes: %d\n",
		r.Meta.Procs, seed, r.Events, r.Messages, r.Bytes)
	fmt.Fprintf(bw, "makespan: %s s\n", formatSeconds(r.MakeSpan))

	fmt.Fprintf(bw, "\ntotals by category:\n")
	for _, c := range Categories {
		fmt.Fprintf(bw, "  %-15s %12.6e s\n", c, r.ByCategory[c])
	}

	fmt.Fprintf(bw, "\nper-superstep rollup:\n")
	fmt.Fprintf(bw, "  %-5s %-13s %-13s %-13s %-13s %-8s %-10s %-9s\n",
		"step", "compute", "send", "straggler", "latency", "msgs", "bytes", "straggler@")
	for _, s := range r.Steps {
		who := "-"
		if s.Straggler >= 0 {
			who = fmt.Sprintf("rank %d", s.Straggler)
		}
		fmt.Fprintf(bw, "  %-5d %13.6e %13.6e %13.6e %13.6e %-8d %-10d %-9s\n",
			s.Step, s.ByCategory[CatCompute], s.ByCategory[CatSend],
			s.ByCategory[CatStraggler], s.ByCategory[CatLatency], s.Messages, s.Bytes, who)
	}

	if len(r.Stages) > 0 {
		fmt.Fprintf(bw, "\nper-stage rollup:\n")
		fmt.Fprintf(bw, "  %-6s %-8s %-13s %-13s %-13s %-8s %-10s\n",
			"stage", "events", "compute", "send", "wait", "msgs", "bytes")
		for _, s := range r.Stages {
			wait := s.ByCategory[CatStraggler] + s.ByCategory[CatLatency] +
				s.ByCategory[CatPort] + s.ByCategory[CatAck]
			fmt.Fprintf(bw, "  %-6d %-8d %13.6e %13.6e %13.6e %-8d %-10d\n",
				s.Stage, s.Events, s.ByCategory[CatCompute], s.ByCategory[CatSend],
				wait, s.Messages, s.Bytes)
		}
	}

	fmt.Fprintf(bw, "\ntop slack (worst stragglers first):\n")
	for _, s := range r.TopSlack {
		fmt.Fprintf(bw, "  rank %-6d slack %12.6e s\n", s.Rank, s.Slack)
	}
	return bw.Flush()
}

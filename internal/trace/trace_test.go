package trace_test

// External test package: simnet imports internal/trace, so these tests sit
// outside the package to exercise the recorder through the real simulator.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/bsp"
	"hbsp/internal/mpi"
	"hbsp/internal/platform"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

func testMachine(t testing.TB, procs int, seed int64) *platform.Machine {
	t.Helper()
	prof := platform.Xeon8x2x4()
	m, err := prof.Machine(procs)
	if err != nil {
		t.Fatal(err)
	}
	return m.WithRunSeed(seed)
}

// exchangeProgram is a small deterministic BSP workload: one registration
// superstep, one superstep of ring puts, one of double-distance puts.
func exchangeProgram(ctx *bsp.Ctx) error {
	p := ctx.NProcs()
	area := make([]float64, p)
	ctx.PushReg("x", area)
	if err := ctx.Sync(); err != nil {
		return err
	}
	ctx.Compute(1e-6 * float64(ctx.Pid()+1))
	if err := ctx.Put((ctx.Pid()+1)%p, "x", ctx.Pid(), []float64{1}); err != nil {
		return err
	}
	if err := ctx.Sync(); err != nil {
		return err
	}
	if err := ctx.Put((ctx.Pid()+2)%p, "x", ctx.Pid(), []float64{2}); err != nil {
		return err
	}
	return ctx.Sync()
}

func recordBSP(t testing.TB, procs int, seed int64) (*trace.Trace, *simnet.Result) {
	t.Helper()
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	res, err := bsp.Run(testMachine(t, procs, seed), exchangeProgram, o)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func TestDisabledRecorderIsValid(t *testing.T) {
	if trace.Disabled.Enabled() {
		t.Fatal("Disabled recorder claims to be enabled")
	}
	o := simnet.DefaultOptions()
	o.Recorder = trace.Disabled
	if _, err := bsp.Run(testMachine(t, 4, 1), exchangeProgram, o); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Disabled.Trace(); err != trace.ErrNoRun {
		t.Fatalf("Disabled.Trace() = %v, want ErrNoRun", err)
	}
}

func TestRecorderBeforeRun(t *testing.T) {
	if _, err := trace.NewRecorder().Trace(); err != trace.ErrNoRun {
		t.Fatalf("fresh recorder Trace() = %v, want ErrNoRun", err)
	}
}

func TestTraceMetadata(t *testing.T) {
	tr, res := recordBSP(t, 8, 4711)
	if tr.Meta.Procs != 8 {
		t.Fatalf("meta procs = %d, want 8", tr.Meta.Procs)
	}
	if !tr.Meta.SeedKnown || tr.Meta.Seed != 4711 {
		t.Fatalf("meta seed = (%v, %d), want (true, 4711) — WithRunSeed copy must reach the metadata", tr.Meta.SeedKnown, tr.Meta.Seed)
	}
	if tr.Meta.Machine == "" {
		t.Fatal("meta machine description empty")
	}
	if !tr.Meta.AckSends {
		t.Fatal("meta did not record the AckSends option")
	}
	if tr.MakeSpan != res.MakeSpan {
		t.Fatalf("trace makespan %v != result makespan %v", tr.MakeSpan, res.MakeSpan)
	}
	if tr.Messages != res.Messages || tr.Bytes != res.Bytes {
		t.Fatalf("trace traffic (%d msgs, %d B) != result (%d, %d)", tr.Messages, tr.Bytes, res.Messages, res.Bytes)
	}
}

func TestTraceDeterminism(t *testing.T) {
	var streams [2]string
	for i := range streams {
		tr, _ := recordBSP(t, 8, 99)
		var buf bytes.Buffer
		if err := trace.WriteEvents(&buf, tr); err != nil {
			t.Fatal(err)
		}
		streams[i] = buf.String()
	}
	if streams[0] != streams[1] {
		t.Fatal("two runs with the same seed produced different merged event streams")
	}
	trOther, _ := recordBSP(t, 8, 100)
	var buf bytes.Buffer
	if err := trace.WriteEvents(&buf, trOther); err != nil {
		t.Fatal(err)
	}
	if buf.String() == streams[0] {
		t.Fatal("different seeds produced identical event streams (noise not traced?)")
	}
}

func TestCriticalPathEndsAtMakespan(t *testing.T) {
	tr, res := recordBSP(t, 8, 7)
	cp := tr.CriticalPath()
	if cp.End != res.MakeSpan {
		t.Fatalf("critical path end %v != makespan %v (must match bit-for-bit)", cp.End, res.MakeSpan)
	}
	if len(cp.Hops) == 0 {
		t.Fatal("critical path has no hops")
	}
	if got := cp.Hops[len(cp.Hops)-1].Rank; got != cp.Rank {
		t.Fatalf("last hop on rank %d, want critical rank %d", got, cp.Rank)
	}
	if cp.Slack[cp.Rank] != 0 {
		t.Fatalf("critical rank %d has slack %v, want 0", cp.Rank, cp.Slack[cp.Rank])
	}
	// The chain must be contiguous in time: each hop starts no later than it
	// ends, and consecutive hops are joined by the in-flight message.
	for i, h := range cp.Hops {
		if h.From > h.To {
			t.Fatalf("hop %d runs backwards: [%v, %v]", i, h.From, h.To)
		}
		if i > 0 && h.ViaPeer != cp.Hops[i-1].Rank {
			t.Fatalf("hop %d arrived via rank %d, want previous hop's rank %d", i, h.ViaPeer, cp.Hops[i-1].Rank)
		}
	}
}

func TestCriticalPathOnMPIBarrier(t *testing.T) {
	m := testMachine(t, 16, 13)
	pat, err := barrier.Dissemination(16)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	res, err := mpi.Run(m, func(c *mpi.Comm) error {
		barrier.Execute(c, pat, 0)
		return nil
	}, o)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	cp := tr.CriticalPath()
	if cp.End != res.MakeSpan {
		t.Fatalf("critical path end %v != makespan %v", cp.End, res.MakeSpan)
	}
	// A dissemination barrier's stages must show up as stage marks.
	stages := map[int32]bool{}
	for r := 0; r < tr.NumLanes(); r++ {
		for _, ev := range tr.LaneEvents(r) {
			if ev.Kind == trace.KindStage {
				stages[ev.Stage] = true
			}
		}
	}
	if len(stages) != len(pat.Stages) {
		t.Fatalf("stage marks cover %d stages, pattern has %d", len(stages), len(pat.Stages))
	}
}

func TestBreakdownAccountsForMakespan(t *testing.T) {
	tr, res := recordBSP(t, 8, 21)
	bd := tr.Breakdown()
	for rank := range bd.PerRank {
		rb := &bd.PerRank[rank]
		total := 0.0
		for _, v := range rb.ByCategory {
			total += v
		}
		// Every category including finish-skew: each rank's attributed time
		// must cover the makespan (zero-length operations carry no time).
		if math.Abs(total-res.MakeSpan) > 1e-9*res.MakeSpan {
			t.Fatalf("rank %d attributes %v of makespan %v", rank, total, res.MakeSpan)
		}
	}
	if bd.TotalByCategory(trace.CatCompute) <= 0 {
		t.Fatal("no compute time attributed")
	}
	if len(bd.PerStep) < 3 {
		t.Fatalf("per-step breakdown has %d buckets, want >= 3 supersteps", len(bd.PerStep))
	}
	for s := 0; s < 3; s++ {
		if bd.PerStep[s].Straggler < 0 {
			t.Fatalf("superstep %d has no straggler attribution", s)
		}
	}
}

func TestHRelations(t *testing.T) {
	tr, _ := recordBSP(t, 8, 5)
	hrs := tr.HRelations()
	if len(hrs) < 3 {
		t.Fatalf("h-relations cover %d steps, want >= 3", len(hrs))
	}
	// Superstep 1 is the ring-put step: every rank posts one put plus the
	// count exchange, so h must be positive and traffic symmetric.
	h := hrs[1]
	if h.HBytes <= 0 || h.Messages <= 0 {
		t.Fatalf("step 1 h-relation empty: %+v", h)
	}
	var total int64
	for _, hr := range hrs {
		total += hr.Bytes
	}
	if total != tr.Bytes {
		t.Fatalf("per-step bytes sum %d != trace total %d", total, tr.Bytes)
	}
}

func TestStragglersOrdering(t *testing.T) {
	tr, _ := recordBSP(t, 8, 2)
	st := tr.Stragglers()
	if len(st) != 8 {
		t.Fatalf("stragglers has %d entries, want 8", len(st))
	}
	if st[0].Slack != 0 {
		t.Fatalf("first straggler entry has slack %v, want 0 (critical rank)", st[0].Slack)
	}
	for i := 1; i < len(st); i++ {
		if st[i].Slack < st[i-1].Slack {
			t.Fatal("stragglers not ordered by slack")
		}
	}
}

func TestChromeExportIsValidJSON(t *testing.T) {
	tr, _ := recordBSP(t, 4, 3)
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	if doc.OtherData["seed"] != "3" {
		t.Fatalf("chrome export seed = %v, want \"3\"", doc.OtherData["seed"])
	}
	kinds := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ph, _ := ev["ph"].(string); ph != "" {
			kinds[ph] = true
		}
	}
	for _, ph := range []string{"M", "X", "s", "f", "i"} {
		if !kinds[ph] {
			t.Fatalf("chrome export missing %q phase events (got %v)", ph, kinds)
		}
	}
}

func TestReportDeterministicAndComplete(t *testing.T) {
	var reports [2]string
	for i := range reports {
		tr, _ := recordBSP(t, 8, 77)
		var buf bytes.Buffer
		if err := trace.WriteReport(&buf, tr, trace.ReportOptions{}); err != nil {
			t.Fatal(err)
		}
		reports[i] = buf.String()
	}
	if reports[0] != reports[1] {
		t.Fatal("report not deterministic across identical runs")
	}
	for _, want := range []string{"critical path", "(== makespan)", "h-relations", "time breakdown", "seed: 77"} {
		if !bytes.Contains([]byte(reports[0]), []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, reports[0])
		}
	}
}

func TestMergedEventOrder(t *testing.T) {
	tr, _ := recordBSP(t, 8, 11)
	evs := tr.Events()
	if len(evs) != tr.NumEvents() {
		t.Fatalf("merged %d events, lanes hold %d", len(evs), tr.NumEvents())
	}
	for i := 1; i < len(evs); i++ {
		a, b := &evs[i-1], &evs[i]
		if a.T0 > b.T0 {
			t.Fatalf("merged events out of order at %d: %v > %v", i, a.T0, b.T0)
		}
	}
}

// TestRecorderReuse checks that a recorder attached to successive runs holds
// the latest run only.
func TestRecorderReuse(t *testing.T) {
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	for _, procs := range []int{4, 8} {
		if _, err := bsp.Run(testMachine(t, procs, 1), exchangeProgram, o); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Meta.Procs != 8 || tr.NumLanes() != 8 {
		t.Fatalf("recorder holds procs=%d lanes=%d, want the last run's 8", tr.Meta.Procs, tr.NumLanes())
	}
}

func BenchmarkMergeAndAnalyze(b *testing.B) {
	rec := trace.NewRecorder()
	o := simnet.DefaultOptions()
	o.Recorder = rec
	if _, err := bsp.Run(testMachine(b, 16, 1), exchangeProgram, o); err != nil {
		b.Fatal(err)
	}
	tr, err := rec.Trace()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := tr.CriticalPath()
		bd := tr.Breakdown()
		if cp.End <= 0 || bd.MakeSpan <= 0 {
			b.Fatal("empty analysis")
		}
	}
}

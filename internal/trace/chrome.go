package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome exports a run in the Chrome trace-event JSON format, which
// chrome://tracing and Perfetto (ui.perfetto.dev, "Open trace file") load
// directly. Every rank becomes a thread of one process; busy and blocked
// intervals become complete ("X") slices; gating messages become flow arrows
// between the sender's injection slice and the receiver's wait slice.
//
// The writer emits fields in a fixed order with fixed float formatting, so
// the export of a deterministic trace is byte-identical across runs — golden
// tests diff it directly. It streams one lane at a time off any Source; the
// flow-arrow endpoints come from the SendEnd stamp on the receiver's own
// lane, so no peer lane is ever dereferenced.
func WriteChrome(w io.Writer, src Source) error {
	cw, err := newChromeWriter(w, src, nil)
	if err != nil {
		return err
	}
	nl := src.NumLanes()
	for rank := 0; rank < nl; rank++ {
		cw.threadName(rank, fmt.Sprintf("rank %d", rank))
	}
	for rank := 0; rank < nl; rank++ {
		c, err := src.LaneCols(rank)
		if err != nil {
			return err
		}
		cw.lane(src, rank, c, nil)
	}
	return cw.finish()
}

// ChromeOptions tune WriteChromeAuto.
type ChromeOptions struct {
	// MaxEvents is the event budget above which the export downsamples;
	// 0 means DefaultChromeBudget.
	MaxEvents int
	// MaxLanes caps the rank lanes of a downsampled export; 0 means 64.
	MaxLanes int
	// TopK is the number of top-slack lanes a downsampled export keeps
	// (the rest of the lane budget goes to evenly strided representative
	// ranks); 0 means MaxLanes/2.
	TopK int
}

// DefaultChromeBudget is the full-export event budget: beyond it a full
// Chrome JSON stops being loadable in practice (hundreds of MB), so
// WriteChromeAuto downsamples and cmd/hbsptrace refuses -chrome-full.
const DefaultChromeBudget = 250000

func (o ChromeOptions) withDefaults() ChromeOptions {
	if o.MaxEvents <= 0 {
		o.MaxEvents = DefaultChromeBudget
	}
	if o.MaxLanes <= 0 {
		o.MaxLanes = 64
	}
	if o.TopK <= 0 || o.TopK > o.MaxLanes {
		o.TopK = o.MaxLanes / 2
	}
	return o
}

// WriteChromeAuto writes the full Chrome export when the run fits the event
// budget (byte-identical to WriteChrome) and a downsampled one otherwise:
// the critical rank, the top-slack stragglers and evenly strided
// representative ranks keep their full lanes (flow arrows only between kept
// lanes), and per-superstep aggregate counters over ALL ranks ride on a
// synthetic counter track, so the rollup view survives the sampling. It
// reports whether it downsampled.
func WriteChromeAuto(w io.Writer, src Source, opts ChromeOptions) (bool, error) {
	opts = opts.withDefaults()
	if NumEventsOf(src) <= opts.MaxEvents || src.NumLanes() <= opts.MaxLanes {
		return false, WriteChrome(w, src)
	}

	nl := src.NumLanes()
	keep := make(map[int]bool, opts.MaxLanes)
	var order []int
	add := func(rank int) {
		if rank >= 0 && rank < nl && !keep[rank] && len(order) < opts.MaxLanes {
			keep[rank] = true
			order = append(order, rank)
		}
	}
	// The critical rank first, then the worst stragglers, then an even
	// stride over the whole machine for context.
	sum := src.RunSummary()
	critRank := -1
	for r, ft := range sum.Times {
		if critRank < 0 || ft > sum.Times[critRank] {
			critRank = r
		}
	}
	add(critRank)
	for _, s := range TopSlack(src, opts.TopK) {
		add(s.Rank)
	}
	stride := nl / (opts.MaxLanes - len(order) + 1)
	if stride < 1 {
		stride = 1
	}
	for r := 0; r < nl && len(order) < opts.MaxLanes; r += stride {
		add(r)
	}

	bd, err := BreakdownOf(src)
	if err != nil {
		return true, err
	}
	extra := map[string]string{
		"downsampled":  "true",
		"sampledLanes": strconv.Itoa(len(order)),
		"totalEvents":  strconv.Itoa(NumEventsOf(src)),
	}
	cw, err := newChromeWriter(w, src, extra)
	if err != nil {
		return true, err
	}
	for _, rank := range order {
		cw.threadName(rank, fmt.Sprintf("rank %d", rank))
	}
	cw.threadName(nl, fmt.Sprintf("aggregate (%d ranks)", nl))
	// Aggregate counters: per-superstep category totals over every rank,
	// plotted at the step boundaries.
	for _, sb := range bd.PerStep {
		if sb.Straggler < 0 {
			continue
		}
		cw.sep()
		fmt.Fprintf(cw.bw, "{\"name\":\"step totals (s)\",\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"args\":{\"compute\":%s,\"send\":%s,\"straggler\":%s,\"latency\":%s}}",
			nl, microseconds(sb.Boundary),
			formatSeconds(sb.ByCategory[CatCompute]), formatSeconds(sb.ByCategory[CatSend]),
			formatSeconds(sb.ByCategory[CatStraggler]), formatSeconds(sb.ByCategory[CatLatency]))
	}
	for _, rank := range order {
		c, err := src.LaneCols(rank)
		if err != nil {
			return true, err
		}
		cw.lane(src, rank, c, keep)
	}
	return true, cw.finish()
}

// chromeWriter shares the event-emission machinery between the full and the
// downsampled export.
type chromeWriter struct {
	bw    *bufio.Writer
	first bool
}

func newChromeWriter(w io.Writer, src Source, extra map[string]string) (*chromeWriter, error) {
	meta := src.RunMeta()
	sum := src.RunSummary()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{")
	fmt.Fprintf(bw, "\"procs\":\"%d\"", meta.Procs)
	if meta.SeedKnown {
		fmt.Fprintf(bw, ",\"seed\":\"%d\"", meta.Seed)
	}
	if meta.Machine != "" {
		fmt.Fprintf(bw, ",\"machine\":%s", strconv.Quote(meta.Machine))
	}
	if meta.Label != "" {
		fmt.Fprintf(bw, ",\"workload\":%s", strconv.Quote(meta.Label))
	}
	for i, f := range meta.Faults {
		fmt.Fprintf(bw, ",\"fault%d\":%s", i, strconv.Quote(f))
	}
	fmt.Fprintf(bw, ",\"makespan_s\":\"%s\"", formatSeconds(sum.MakeSpan))
	// Deterministic key order for the downsampling metadata.
	for _, k := range []string{"downsampled", "sampledLanes", "totalEvents"} {
		if v, ok := extra[k]; ok {
			fmt.Fprintf(bw, ",%s:%s", strconv.Quote(k), strconv.Quote(v))
		}
	}
	fmt.Fprintf(bw, "},\"traceEvents\":[\n")
	return &chromeWriter{bw: bw, first: true}, nil
}

func (cw *chromeWriter) sep() {
	if !cw.first {
		cw.bw.WriteString(",\n")
	}
	cw.first = false
}

func (cw *chromeWriter) threadName(tid int, name string) {
	cw.sep()
	fmt.Fprintf(cw.bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":%s}}",
		tid, strconv.Quote(name))
}

// lane emits one rank's slices, marks and flow arrows. keep limits arrow
// emission to sampled peers (nil keeps every arrow).
func (cw *chromeWriter) lane(src Source, rank int, c *Cols, keep map[int]bool) {
	for i, n := 0, c.Len(); i < n; i++ {
		kind := c.Kind[i]
		switch kind {
		case KindSuperstep, KindStage:
			idx := c.Step[i]
			if kind == KindStage {
				idx = c.Stage[i]
			}
			cw.sep()
			fmt.Fprintf(cw.bw, "{\"name\":\"%s %d\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s}",
				kind, idx, rank, microseconds(c.T1[i]))
		default:
			if c.T1[i]-c.T0[i] <= 0 {
				continue // matches the merged-slice writer: no slice, no arrow
			}
			cw.sep()
			fmt.Fprintf(cw.bw, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"step\":%d",
				kind, kind, rank, microseconds(c.T0[i]), microseconds(c.T1[i]-c.T0[i]), c.Step[i])
			if c.Stage[i] >= 0 {
				fmt.Fprintf(cw.bw, ",\"stage\":%d", c.Stage[i])
			}
			if c.Peer[i] >= 0 {
				fmt.Fprintf(cw.bw, ",\"peer\":%d,\"tag\":%d,\"bytes\":%d", c.Peer[i], c.Tag[i], c.Size[i])
			}
			cw.bw.WriteString("}}")
		}
		// Flow arrow from the matching send slice into this wait slice —
		// only when the message's arrival actually gated the wait (the
		// same condition CriticalPath hops on), so the rendered arrows
		// are exactly the sender dependencies, not port-bound waits. The
		// sender-side timestamp is the SendEnd stamp the message carried.
		if kind == KindRecvWait && c.Flags[i]&flagGated != 0 && linkValid(src, c, i) &&
			(keep == nil || keep[int(c.Peer[i])]) {
			id := int64(c.Peer[i])<<32 | int64(c.SendSeq[i])
			cw.sep()
			fmt.Fprintf(cw.bw, "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s}",
				id, c.Peer[i], microseconds(c.SendEnd[i]))
			cw.sep()
			fmt.Fprintf(cw.bw, "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s}",
				id, rank, microseconds(c.T1[i]))
		}
	}
}

func (cw *chromeWriter) finish() error {
	cw.bw.WriteString("\n]}\n")
	return cw.bw.Flush()
}

// microseconds renders a virtual time in seconds as microseconds with
// nanosecond resolution, the unit the Chrome trace format expects.
func microseconds(seconds float64) string {
	return strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
}

// formatSeconds renders a virtual time with full float64 round-trip
// precision, so exported metadata can be compared bit-for-bit.
func formatSeconds(seconds float64) string {
	return strconv.FormatFloat(seconds, 'g', 17, 64)
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// WriteChrome exports the trace in the Chrome trace-event JSON format, which
// chrome://tracing and Perfetto (ui.perfetto.dev, "Open trace file") load
// directly. Every rank becomes a thread of one process; busy and blocked
// intervals become complete ("X") slices; gating messages become flow arrows
// between the sender's injection slice and the receiver's wait slice.
//
// The writer emits fields in a fixed order with fixed float formatting, so
// the export of a deterministic trace is byte-identical across runs — golden
// tests diff it directly.
func WriteChrome(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{")
	fmt.Fprintf(bw, "\"procs\":\"%d\"", t.Meta.Procs)
	if t.Meta.SeedKnown {
		fmt.Fprintf(bw, ",\"seed\":\"%d\"", t.Meta.Seed)
	}
	if t.Meta.Machine != "" {
		fmt.Fprintf(bw, ",\"machine\":%s", strconv.Quote(t.Meta.Machine))
	}
	if t.Meta.Label != "" {
		fmt.Fprintf(bw, ",\"workload\":%s", strconv.Quote(t.Meta.Label))
	}
	for i, f := range t.Meta.Faults {
		fmt.Fprintf(bw, ",\"fault%d\":%s", i, strconv.Quote(f))
	}
	fmt.Fprintf(bw, ",\"makespan_s\":\"%s\"", formatSeconds(t.MakeSpan))
	fmt.Fprintf(bw, "},\"traceEvents\":[\n")

	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	for rank := range t.Lanes {
		sep()
		fmt.Fprintf(bw, "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"rank %d\"}}", rank, rank)
	}
	for rank, lane := range t.Lanes {
		for i := range lane {
			ev := &lane[i]
			switch ev.Kind {
			case KindSuperstep, KindStage:
				sep()
				fmt.Fprintf(bw, "{\"name\":\"%s %d\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%s}",
					ev.Kind, markIndex(ev), rank, microseconds(ev.T1))
			default:
				if ev.Duration() <= 0 {
					continue
				}
				sep()
				fmt.Fprintf(bw, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"step\":%d",
					ev.Kind, ev.Kind, rank, microseconds(ev.T0), microseconds(ev.Duration()), ev.Step)
				if ev.Stage >= 0 {
					fmt.Fprintf(bw, ",\"stage\":%d", ev.Stage)
				}
				if ev.Peer >= 0 {
					fmt.Fprintf(bw, ",\"peer\":%d,\"tag\":%d,\"bytes\":%d", ev.Peer, ev.Tag, ev.Size)
				}
				bw.WriteString("}}")
			}
			// Flow arrow from the matching send slice into this wait slice —
			// only when the message's arrival actually gated the wait (the
			// same condition CriticalPath hops on), so the rendered arrows
			// are exactly the sender dependencies, not port-bound waits.
			if ev.Kind == KindRecvWait && ev.Gated && ev.Peer >= 0 && ev.SendSeq >= 0 &&
				int(ev.Peer) < len(t.Lanes) && int(ev.SendSeq) < len(t.Lanes[ev.Peer]) {
				send := &t.Lanes[ev.Peer][ev.SendSeq]
				id := int64(ev.Peer)<<32 | int64(ev.SendSeq)
				sep()
				fmt.Fprintf(bw, "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s}",
					id, send.Rank, microseconds(send.T1))
				sep()
				fmt.Fprintf(bw, "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":0,\"tid\":%d,\"ts\":%s}",
					id, rank, microseconds(ev.T1))
			}
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// markIndex returns the index a boundary mark displays (the step or stage).
func markIndex(ev *Event) int32 {
	if ev.Kind == KindStage {
		return ev.Stage
	}
	return ev.Step
}

// microseconds renders a virtual time in seconds as microseconds with
// nanosecond resolution, the unit the Chrome trace format expects.
func microseconds(seconds float64) string {
	return strconv.FormatFloat(seconds*1e6, 'f', 3, 64)
}

// formatSeconds renders a virtual time with full float64 round-trip
// precision, so exported metadata can be compared bit-for-bit.
func formatSeconds(seconds float64) string {
	return strconv.FormatFloat(seconds, 'g', 17, 64)
}

package trace_test

// Spill round-trip and streaming-equivalence coverage, driven through the
// goroutine-free sched engine so the large instances stay affordable.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"hbsp/internal/barrier"
	"hbsp/internal/platform"
	"hbsp/internal/sched"
	"hbsp/internal/simnet"
	"hbsp/internal/trace"
)

// runDissemination evaluates execs dissemination barriers at P ranks under
// the direct engine with the given recorder attached. The scaled Xeon
// cluster profile accommodates any rank count (8 cores per node).
func runDissemination(t testing.TB, procs int, seed int64, execs int, rec *trace.Recorder) *simnet.Result {
	t.Helper()
	s, err := barrier.StreamDissemination(procs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := platform.XeonClusterMachine(procs)
	if err != nil {
		t.Fatal(err)
	}
	o := simnet.DefaultOptions()
	o.Recorder = rec
	res, err := sched.RunSchedule(context.Background(), m.WithRunSeed(seed), s, execs, o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStreamingMatchesMaterialized is the acceptance equivalence: at
// P ∈ {16, 256, 4096} the streaming analyses over the merged-order iterator
// and over a spill round trip match the in-RAM trace bit for bit — the
// critical path ends exactly at the makespan, breakdowns/h-relations/
// stragglers are deep-equal, and the event/Chrome renderings are
// byte-identical.
func TestStreamingMatchesMaterialized(t *testing.T) {
	for _, procs := range []int{16, 256, 4096} {
		if procs == 4096 && testing.Short() {
			continue
		}
		t.Run(tName(procs), func(t *testing.T) {
			rec := trace.NewRecorder()
			res := runDissemination(t, procs, 11, 2, rec)
			tr, err := rec.Trace()
			if err != nil {
				t.Fatal(err)
			}

			// Materialized merge order == streaming iterator order.
			events := tr.Events()
			it, err := trace.NewIter(tr)
			if err != nil {
				t.Fatal(err)
			}
			for i := range events {
				ev, ok := it.Next()
				if !ok {
					t.Fatalf("iterator ended at event %d of %d", i, len(events))
				}
				if ev != events[i] {
					t.Fatalf("event %d: iterator %+v, materialized %+v", i, ev, events[i])
				}
			}
			if _, ok := it.Next(); ok {
				t.Fatal("iterator yields events past the materialized stream")
			}
			if err := it.Err(); err != nil {
				t.Fatal(err)
			}

			// The streaming critical path must end exactly at the makespan.
			cp, err := trace.CriticalPathOf(tr)
			if err != nil {
				t.Fatal(err)
			}
			if cp.End != res.MakeSpan {
				t.Fatalf("critical path end %v != makespan %v", cp.End, res.MakeSpan)
			}

			// Spill round trip: canonical bytes reopen into a Source whose
			// analyses and renderings match the in-RAM trace exactly.
			var raw bytes.Buffer
			if err := trace.WriteSpill(&raw, tr); err != nil {
				t.Fatal(err)
			}
			sp, err := trace.OpenSpill(bytes.NewReader(raw.Bytes()), int64(raw.Len()))
			if err != nil {
				t.Fatal(err)
			}
			if got := trace.NumEventsOf(sp); got != len(events) {
				t.Fatalf("spill holds %d events, trace %d", got, len(events))
			}
			assertSourcesAgree(t, tr, sp)

			var again bytes.Buffer
			if err := trace.WriteSpill(&again, sp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw.Bytes(), again.Bytes()) {
				t.Fatal("re-serializing the reopened spill changed the bytes")
			}
		})
	}
}

// assertSourcesAgree requires every analysis and renderer to produce
// identical results over the two sources.
func assertSourcesAgree(t *testing.T, a, b trace.Source) {
	t.Helper()
	cpA, errA := trace.CriticalPathOf(a)
	cpB, errB := trace.CriticalPathOf(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(cpA, cpB) {
		t.Fatal("critical paths differ between sources")
	}
	bdA, errA := trace.BreakdownOf(a)
	bdB, errB := trace.BreakdownOf(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(bdA, bdB) {
		t.Fatal("breakdowns differ between sources")
	}
	hrA, errA := trace.HRelationsOf(a)
	hrB, errB := trace.HRelationsOf(b)
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(hrA, hrB) {
		t.Fatal("h-relations differ between sources")
	}
	if !reflect.DeepEqual(trace.StragglersOf(a), trace.StragglersOf(b)) {
		t.Fatal("stragglers differ between sources")
	}
	ruA, errA := trace.RollupOf(a, trace.RollupOptions{})
	ruB, errB := trace.RollupOf(b, trace.RollupOptions{})
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(ruA, ruB) {
		t.Fatal("rollups differ between sources")
	}
	var evA, evB bytes.Buffer
	if err := trace.WriteEvents(&evA, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteEvents(&evB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(evA.Bytes(), evB.Bytes()) {
		t.Fatal("event renderings differ between sources")
	}
	var chA, chB bytes.Buffer
	if err := trace.WriteChrome(&chA, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&chB, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chA.Bytes(), chB.Bytes()) {
		t.Fatal("chrome renderings differ between sources")
	}
	var rpA, rpB bytes.Buffer
	if err := trace.WriteReport(&rpA, a, trace.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteReport(&rpB, b, trace.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rpA.Bytes(), rpB.Bytes()) {
		t.Fatal("reports differ between sources")
	}
}

// TestSpilledRunStreamsDuringTheRun pins the spill sink mechanics on a small
// run: SpillTo arms one run, lanes flush mid-run at the chunk size, the
// recorder refuses to materialize the spilled run (ErrSpilled), and the file
// reopens into a Source whose analyses match an identical in-RAM run.
func TestSpilledRunStreamsDuringTheRun(t *testing.T) {
	const procs, seed = 64, 9
	path := filepath.Join(t.TempDir(), "run.hbsptrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	rec.SpillTo(f, trace.SpillOptions{ChunkEvents: 16})
	res := runDissemination(t, procs, seed, 2, rec)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill error: %v", err)
	}
	if _, err := rec.Trace(); err != trace.ErrSpilled {
		t.Fatalf("Trace() after a spilled run = %v, want ErrSpilled", err)
	}
	chunks, events, _ := rec.SpillStats()
	if chunks <= procs {
		t.Fatalf("only %d chunks for %d lanes — nothing flushed mid-run", chunks, procs)
	}

	sp, err := trace.OpenSpillFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	if int64(trace.NumEventsOf(sp)) != events {
		t.Fatalf("spill file holds %d events, sink reported %d", trace.NumEventsOf(sp), events)
	}
	if sp.RunSummary().MakeSpan != res.MakeSpan {
		t.Fatalf("spilled makespan %v != run makespan %v", sp.RunSummary().MakeSpan, res.MakeSpan)
	}

	// An identical run recorded in RAM must agree analysis-for-analysis.
	rec2 := trace.NewRecorder()
	runDissemination(t, procs, seed, 2, rec2)
	tr, err := rec2.Trace()
	if err != nil {
		t.Fatal(err)
	}
	assertSourcesAgree(t, tr, sp)

	// The recorder is reusable after a spilled run.
	runDissemination(t, 8, 1, 1, rec)
	if tr3, err := rec.Trace(); err != nil || tr3.NumLanes() != 8 {
		t.Fatalf("recorder did not recover after a spilled run: %v", err)
	}
}

// TestSpillBackedP65536 is the acceptance scale point: a traced P=65536
// dissemination sync completes with bounded recorder memory — lanes stream
// to disk at the chunk size instead of accumulating — and the streaming
// critical path and rollup run directly off the file.
func TestSpillBackedP65536(t *testing.T) {
	if testing.Short() {
		t.Skip("P=65536 traced run in -short mode")
	}
	const procs = 65536
	path := filepath.Join(t.TempDir(), "run.hbsptrc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	// 24-event chunks bound resident recorder memory at ~procs×24 events
	// (~100 MB would be the un-spilled footprint; resident stays ~1/4 of
	// a full run's events) while exercising many mid-run flushes per lane.
	rec.SpillTo(f, trace.SpillOptions{ChunkEvents: 24})
	res := runDissemination(t, procs, 3, 1, rec)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.SpillErr(); err != nil {
		t.Fatalf("spill error: %v", err)
	}
	chunks, events, bytesOut := rec.SpillStats()
	if chunks <= procs {
		t.Fatalf("only %d chunks for %d lanes — lanes were not streamed during the run", chunks, procs)
	}
	if events < int64(procs) {
		t.Fatalf("suspiciously few events spilled: %d", events)
	}
	t.Logf("P=%d: %d events in %d chunks, %d spill bytes", procs, events, chunks, bytesOut)

	sp, err := trace.OpenSpillFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	cp, err := trace.CriticalPathOf(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cp.End != res.MakeSpan {
		t.Fatalf("critical path end %v != makespan %v", cp.End, res.MakeSpan)
	}
	ru, err := trace.RollupOf(sp, trace.RollupOptions{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Rollup.Events counts non-mark events; the stream also carries one
	// stage mark per rank per stage.
	if ru.Events <= 0 || int64(ru.Events) >= events || len(ru.TopSlack) != 8 {
		t.Fatalf("rollup covers %d of %d events with %d slack ranks", ru.Events, events, len(ru.TopSlack))
	}
}

func tName(p int) string {
	switch p {
	case 16:
		return "p16"
	case 256:
		return "p256"
	default:
		return "p4096"
	}
}

// Package trace is the event-recording core of the observability subsystem:
// a low-overhead recorder the virtual-time simulator writes into from its hot
// paths (message injection, receive completion, compute intervals, superstep
// and collective-stage boundaries), and the merged, analyzable Trace it
// produces after a run.
//
// The recorder is built for the simulator's concurrency model: every rank is
// driven by exactly one goroutine, so events are appended to per-rank
// append-only lanes without any locking or atomics on the hot path. Lanes are
// stored columnar (struct of arrays): one parallel array per event field, so
// an analysis pass touching two fields streams two dense arrays instead of
// striding through 80-byte structs, and the spill format can encode each
// column with the encoding that fits it. After the run the lanes are read in
// deterministic order — per-lane order is the rank's own deterministic clock
// order, and every merged view is a pure function of the event times — so
// two runs with the same machine seed produce byte-identical traces
// regardless of goroutine scheduling.
//
// Large runs do not have to hold their lanes in RAM: SpillTo arranges for
// full column chunks to be encoded and streamed to a writer during the run
// (see spill.go for the format), bounding resident recorder memory at
// roughly Procs × ChunkEvents events; the analyses then run directly off the
// spill file through the same Source interface the in-RAM Trace implements.
//
// A nil *Recorder (the exported Disabled) is valid and records nothing; the
// simulator's per-event cost in that mode is a single pointer test against a
// field it already holds in cache (benchmarked by BenchmarkTraceOverhead).
package trace

import (
	"errors"
	"io"
	"sort"
	"sync"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindCompute is a local computation interval on the rank's clock.
	KindCompute Kind = iota
	// KindSend is the sender-side injection of one message: the interval is
	// the per-request software overhead on the sender's clock, Arrival is the
	// virtual time the message becomes available at Peer.
	KindSend
	// KindRecvWait is an interval the rank spent blocked completing a
	// receive. Gated tells whether the message's arrival ended the wait (the
	// sender gated this rank) or a local port did; SendSeq links to the
	// matching KindSend event in Peer's lane and SendEnd carries that send's
	// injection end time, so analyses never have to chase the link.
	KindRecvWait
	// KindSendWait is an interval the rank spent blocked completing a send
	// (port occupancy and, in ack mode, the returning acknowledgement).
	KindSendWait
	// KindAdvance is an explicit clock alignment (Proc.AdvanceTo).
	KindAdvance
	// KindSuperstep is a zero-length superstep-boundary mark: Step is the
	// index of the superstep just completed. BSP ranks emit one per Sync, MPI
	// ranks one per Barrier.
	KindSuperstep
	// KindStage is a zero-length collective-schedule stage mark emitted by
	// the pattern executor; Stage is the stage about to run.
	KindStage
	// KindFault is a fail-stop recovery interval injected by a fault plan:
	// the rank's clock crossed its fail time and [T0, T1] is the restart
	// penalty plus the recompute time back to the last checkpoint. Both
	// engines record it at the clock advance that crossed the fail time.
	KindFault
	numKinds
)

// String returns the compact name used by the exporters.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecvWait:
		return "recv.wait"
	case KindSendWait:
		return "send.wait"
	case KindAdvance:
		return "advance"
	case KindSuperstep:
		return "superstep"
	case KindStage:
		return "stage"
	case KindFault:
		return "fault"
	}
	return "unknown"
}

// flagGated is the Cols.Flags bit recording Event.Gated.
const flagGated uint8 = 1

// Event is one recorded observation. All times are virtual seconds. The zero
// Step is superstep 0; Stage is -1 outside collective-schedule execution;
// SendSeq is -1 when the event is not a linked receive.
type Event struct {
	Kind Kind
	// Gated reports, for KindRecvWait, that the wait ended with the message's
	// arrival (the sender was the gating dependency) rather than with a local
	// extraction-port slot.
	Gated bool
	// Rank is the recording rank.
	Rank int32
	// Peer is the remote rank of a communication event, -1 otherwise.
	Peer int32
	// Tag is the message tag of a communication event.
	Tag int32
	// Size is the payload size in bytes of a communication event.
	Size int32
	// Step is the superstep the event belongs to (0 before the first
	// boundary; KindSuperstep marks carry the completed step).
	Step int32
	// Stage is the collective-schedule stage the event belongs to, -1 outside
	// schedule execution.
	Stage int32
	// SendSeq is, for KindRecvWait, the index in Peer's lane of the KindSend
	// event that produced the received message; -1 otherwise.
	SendSeq int32
	// T0 and T1 bound the event on the recording rank's clock (T0 == T1 for
	// boundary marks).
	T0, T1 float64
	// Arrival is the matched message's arrival time at the receiver
	// (KindSend and KindRecvWait events).
	Arrival float64
	// SendEnd is, for KindRecvWait, the injection end time (T1) of the
	// KindSend event SendSeq points at, carried on the message itself so
	// consumers of a single lane never dereference a peer lane; 0 otherwise.
	SendEnd float64
}

// Duration returns T1 - T0.
func (e *Event) Duration() float64 { return e.T1 - e.T0 }

// Meta labels a recorded run with everything needed to reproduce it.
type Meta struct {
	// Procs is the rank count of the run.
	Procs int
	// Seed is the machine's run seed when the machine exposes one
	// (cluster.Machine does, including through WithRunSeed copies);
	// SeedKnown tells whether it did.
	Seed      int64
	SeedKnown bool
	// Machine is the machine's self-description (fmt.Stringer), if any.
	Machine string
	// Label is a free-form workload name supplied by the harness.
	Label string
	// AckSends records the simulator option the run used.
	AckSends bool
	// Faults describes the run's fault plan, one deterministic line per
	// injected rule (fault.Runtime.Describe); empty on fault-free runs. The
	// exporters stamp it into their metadata so a degraded timeline names the
	// scenario that produced it.
	Faults []string
}

// Summary carries the run-level result data beside the lanes: per-rank final
// times, the makespan, traffic totals, the superstep bucket count and the
// run error (as text, so the spill format can round-trip it).
type Summary struct {
	// Times are the per-rank final virtual times (nil when the run failed
	// before producing a result).
	Times []float64
	// MakeSpan is the run's virtual makespan.
	MakeSpan float64
	// Messages and Bytes total the delivered traffic.
	Messages int64
	Bytes    int64
	// Steps is the number of superstep buckets the trace covers: one more
	// than the highest Step stamped on any event.
	Steps int
	// ErrMsg is the run error's text, "" on clean runs.
	ErrMsg string
}

// Cols is the columnar (struct-of-arrays) storage of a run of events: one
// parallel array per Event field, indexed by the event's position in its
// lane. Flags packs the boolean fields (flagGated).
type Cols struct {
	Kind    []Kind
	Flags   []uint8
	Peer    []int32
	Tag     []int32
	Size    []int32
	Step    []int32
	Stage   []int32
	SendSeq []int32
	T0      []float64
	T1      []float64
	Arrival []float64
	SendEnd []float64
}

// Len returns the number of events stored.
func (c *Cols) Len() int { return len(c.Kind) }

// append pushes one event onto every column.
func (c *Cols) append(ev *Event) {
	var fl uint8
	if ev.Gated {
		fl = flagGated
	}
	c.Kind = append(c.Kind, ev.Kind)
	c.Flags = append(c.Flags, fl)
	c.Peer = append(c.Peer, ev.Peer)
	c.Tag = append(c.Tag, ev.Tag)
	c.Size = append(c.Size, ev.Size)
	c.Step = append(c.Step, ev.Step)
	c.Stage = append(c.Stage, ev.Stage)
	c.SendSeq = append(c.SendSeq, ev.SendSeq)
	c.T0 = append(c.T0, ev.T0)
	c.T1 = append(c.T1, ev.T1)
	c.Arrival = append(c.Arrival, ev.Arrival)
	c.SendEnd = append(c.SendEnd, ev.SendEnd)
}

// Event materializes event i, stamping the given lane rank.
func (c *Cols) Event(i int, rank int32) Event {
	return Event{
		Kind:    c.Kind[i],
		Gated:   c.Flags[i]&flagGated != 0,
		Rank:    rank,
		Peer:    c.Peer[i],
		Tag:     c.Tag[i],
		Size:    c.Size[i],
		Step:    c.Step[i],
		Stage:   c.Stage[i],
		SendSeq: c.SendSeq[i],
		T0:      c.T0[i],
		T1:      c.T1[i],
		Arrival: c.Arrival[i],
		SendEnd: c.SendEnd[i],
	}
}

// truncate empties every column, keeping the backing arrays for reuse.
func (c *Cols) truncate() {
	c.Kind = c.Kind[:0]
	c.Flags = c.Flags[:0]
	c.Peer = c.Peer[:0]
	c.Tag = c.Tag[:0]
	c.Size = c.Size[:0]
	c.Step = c.Step[:0]
	c.Stage = c.Stage[:0]
	c.SendSeq = c.SendSeq[:0]
	c.T0 = c.T0[:0]
	c.T1 = c.T1[:0]
	c.Arrival = c.Arrival[:0]
	c.SendEnd = c.SendEnd[:0]
}

// grow pre-sizes empty columns for n events (the lane-pool size estimate).
func (c *Cols) grow(n int) {
	if n <= 0 {
		return
	}
	c.Kind = make([]Kind, 0, n)
	c.Flags = make([]uint8, 0, n)
	c.Peer = make([]int32, 0, n)
	c.Tag = make([]int32, 0, n)
	c.Size = make([]int32, 0, n)
	c.Step = make([]int32, 0, n)
	c.Stage = make([]int32, 0, n)
	c.SendSeq = make([]int32, 0, n)
	c.T0 = make([]float64, 0, n)
	c.T1 = make([]float64, 0, n)
	c.Arrival = make([]float64, 0, n)
	c.SendEnd = make([]float64, 0, n)
}

// slice returns a view of events [i, j) as a Cols header sharing c's
// arrays.
func (c *Cols) slice(i, j int) Cols {
	return Cols{
		Kind:    c.Kind[i:j],
		Flags:   c.Flags[i:j],
		Peer:    c.Peer[i:j],
		Tag:     c.Tag[i:j],
		Size:    c.Size[i:j],
		Step:    c.Step[i:j],
		Stage:   c.Stage[i:j],
		SendSeq: c.SendSeq[i:j],
		T0:      c.T0[i:j],
		T1:      c.T1[i:j],
		Arrival: c.Arrival[i:j],
		SendEnd: c.SendEnd[i:j],
	}
}

// appendCols appends src's events onto c (the chunk-concatenation path of
// the spill reader).
func (c *Cols) appendCols(src *Cols) {
	c.Kind = append(c.Kind, src.Kind...)
	c.Flags = append(c.Flags, src.Flags...)
	c.Peer = append(c.Peer, src.Peer...)
	c.Tag = append(c.Tag, src.Tag...)
	c.Size = append(c.Size, src.Size...)
	c.Step = append(c.Step, src.Step...)
	c.Stage = append(c.Stage, src.Stage...)
	c.SendSeq = append(c.SendSeq, src.SendSeq...)
	c.T0 = append(c.T0, src.T0...)
	c.T1 = append(c.T1, src.T1...)
	c.Arrival = append(c.Arrival, src.Arrival...)
	c.SendEnd = append(c.SendEnd, src.SendEnd...)
}

// Lane is one rank's append-only event stream, stored columnar. A lane is
// written by exactly one goroutine (the rank's) and must not be read until
// the run has ended. On spill-backed runs a lane flushes full column chunks
// to the shared sink, so only the current chunk stays resident.
type Lane struct {
	c     Cols
	rank  int32
	chunk int32      // spill chunk size in events, 0 when not spilling
	base  int32      // events already flushed to the spill sink
	sink  *spillSink // shared chunk writer, nil when not spilling
	// Pad the struct to a multiple of 64 bytes so neighbouring lanes in the
	// recorder's lane array do not false-share a cache line while their
	// ranks append concurrently.
	_ [48]byte
}

// Append records one event, stamping the lane's rank.
func (l *Lane) Append(ev Event) {
	ev.Rank = l.rank
	l.c.append(&ev)
	if l.sink != nil && int32(l.c.Len()) >= l.chunk {
		l.flush()
	}
}

// Len returns the number of events recorded so far (including spilled ones);
// the simulator uses it to link a message to the send event about to be
// appended.
func (l *Lane) Len() int { return int(l.base) + l.c.Len() }

// flush hands the lane's resident columns to the spill sink and truncates
// them. The sink serializes concurrent lane flushes internally.
func (l *Lane) flush() {
	if l.c.Len() == 0 {
		return
	}
	l.sink.writeChunk(l.rank, &l.c)
	l.base += int32(l.c.Len())
	l.c.truncate()
}

// Disabled is the nil recorder: attaching it to a run records nothing, and
// the simulator's per-event cost is a single nil test.
var Disabled *Recorder

// ErrNoRun is returned by Trace when the recorder holds no completed run.
var ErrNoRun = errors.New("trace: recorder holds no completed run (attach it to a run first)")

// ErrUnclean is returned by Trace when the recorded run was torn down with
// rank goroutines possibly still running (a wall-clock deadline with an
// uninterruptible rank); such lanes cannot be read safely.
var ErrUnclean = errors.New("trace: run was torn down before every rank stopped; trace discarded")

// ErrSpilled is returned by Trace when the recorded run streamed its lanes
// to a spill sink (SpillTo): the events live in the spill file, not in RAM —
// open it with OpenSpillFile and analyze the returned Source.
var ErrSpilled = errors.New("trace: run was spilled to disk; open the spill file instead of Trace()")

// Recorder accumulates the events of one simulation run. Create one with
// NewRecorder, attach it via the run options (hbsp.WithRecorder or
// sim.Options.Recorder), and read the result with Trace after the run
// returns. A Recorder records one run at a time — beginning a new run
// discards the previous one — and must not be shared by concurrent runs;
// give each run of a parallel sweep its own recorder.
type Recorder struct {
	mu       sync.Mutex
	recorded bool
	unclean  bool
	exported bool
	label    string
	meta     Meta
	lanes    []Lane
	prevLens []int
	times    []float64
	makespan float64
	messages int64
	bytes    int64
	runErr   error

	// Spill state: armedW/armedOpts hold a SpillTo target until the next
	// BeginRun consumes it (one run per SpillTo call); sink is the live
	// chunk writer of the current run; spilled marks the sealed run as
	// spill-backed (Trace returns ErrSpilled); spillErr is the first write
	// or finalization error.
	armedW    io.Writer
	armedOpts SpillOptions
	sink      *spillSink
	spilled   bool
	spillErr  error
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetLabel names the workload in the metadata of subsequently recorded runs;
// exporters print it. Safe on the nil recorder.
func (r *Recorder) SetLabel(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.label = label
	r.mu.Unlock()
}

// Enabled reports whether the recorder records anything; it is false exactly
// for the nil recorder (Disabled).
func (r *Recorder) Enabled() bool { return r != nil }

// SpillTo arranges for the NEXT recorded run to stream its lanes to w in the
// binary spill format instead of holding them in RAM: whenever a lane
// accumulates ChunkEvents resident events its columns are encoded and
// written out, bounding recorder memory at roughly Procs × ChunkEvents
// events. The run's summary, the chunk index and the footer are written when
// the engine seals the run (EndRun); check SpillErr afterwards and open the
// result with OpenSpillFile/OpenSpill. After a spilled run, Trace returns
// ErrSpilled. The arrangement is one-shot: the run after the spilled one
// records in RAM again unless SpillTo is called again.
func (r *Recorder) SpillTo(w io.Writer, opts SpillOptions) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.armedW = w
	r.armedOpts = opts
	r.spillErr = nil
	r.mu.Unlock()
}

// SpillErr returns the first error of the current spill (write failure, or
// ErrUnclean when the run's teardown left lanes unreadable), nil on success.
func (r *Recorder) SpillErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spillErr
}

// SpillStats reports what the last spilled run wrote: encoded chunks, events
// and payload bytes (0s when the run did not spill).
func (r *Recorder) SpillStats() (chunks int, events, bytes int64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sink == nil {
		return 0, 0, 0
	}
	return r.sink.stats()
}

// BeginRun resets the recorder for a run with the given metadata and sizes
// one lane per rank. The simulator calls it; user code does not.
//
// Lane storage is pooled: when the previous run's lanes were never exported
// through Trace (the benchmark and sweep pattern — run, read the Result,
// run again), their column blocks are truncated and reused, so a recorder in
// steady state appends into already-sized lanes and allocates nothing. Once
// Trace has been called, the lanes are shared with the returned view and the
// next run allocates fresh ones — pre-sized from the previous run's per-rank
// event counts, so even the exporting pattern pays one right-sized
// allocation series per lane instead of a growth series.
func (r *Recorder) BeginRun(meta Meta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded = false
	r.unclean = false
	r.runErr = nil
	if meta.Label == "" {
		meta.Label = r.label
	}
	r.meta = meta
	r.times = nil
	r.makespan = 0
	r.messages, r.bytes = 0, 0

	r.sink = nil
	r.spilled = false
	if r.armedW != nil {
		r.sink, r.spillErr = newSpillSink(r.armedW, r.meta)
		r.spilled = true
		r.armedW = nil
	}
	chunk := int32(0)
	if r.sink != nil {
		chunk = int32(r.armedOpts.chunkFor(meta.Procs))
	}

	if len(r.lanes) == meta.Procs {
		// Remember the finished run's event counts: they are the size
		// estimate the next allocation (if any) is seeded with.
		if r.prevLens == nil || len(r.prevLens) != meta.Procs {
			r.prevLens = make([]int, meta.Procs)
		}
		for i := range r.lanes {
			r.prevLens[i] = r.lanes[i].Len()
		}
	}
	if !r.exported && len(r.lanes) == meta.Procs {
		for i := range r.lanes {
			l := &r.lanes[i]
			l.c.truncate()
			l.rank = int32(i)
			l.base = 0
			l.sink, l.chunk = r.sink, chunk
		}
		return
	}
	r.exported = false
	r.lanes = make([]Lane, meta.Procs)
	for i := range r.lanes {
		l := &r.lanes[i]
		l.rank = int32(i)
		l.sink, l.chunk = r.sink, chunk
		if r.sink == nil && len(r.prevLens) == meta.Procs && r.prevLens[i] > 0 {
			l.c.grow(r.prevLens[i])
		}
	}
}

// LaneOf returns rank's lane of the current run. The simulator calls it once
// per rank at attach time.
func (r *Recorder) LaneOf(rank int) *Lane {
	return &r.lanes[rank]
}

// EndRun seals the current run with its result. clean must be false when the
// teardown could have left rank goroutines running (their lanes may still be
// written to and are discarded). The simulator calls it; user code does not.
// On spill-backed runs EndRun flushes the remaining lane chunks and writes
// the summary, index and footer, completing the spill file.
func (r *Recorder) EndRun(times []float64, makespan float64, messages, bytes int64, runErr error, clean bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded = true
	r.unclean = !clean
	r.runErr = runErr
	if times != nil {
		r.times = append([]float64(nil), times...)
	}
	r.makespan = makespan
	r.messages, r.bytes = messages, bytes
	if r.unclean {
		r.lanes = nil
		if r.sink != nil && r.spillErr == nil {
			r.spillErr = ErrUnclean
		}
		return
	}
	if r.sink != nil {
		// Flush the per-lane remainders in rank order (deterministic tail
		// layout), then seal the file.
		laneLens := make([]int, len(r.lanes))
		for i := range r.lanes {
			r.lanes[i].flush()
			laneLens[i] = r.lanes[i].Len()
		}
		errMsg := ""
		if runErr != nil {
			errMsg = runErr.Error()
		}
		sum := Summary{Times: r.times, MakeSpan: makespan, Messages: messages,
			Bytes: bytes, Steps: r.sink.steps(), ErrMsg: errMsg}
		if err := r.sink.finish(sum); err != nil && r.spillErr == nil {
			r.spillErr = err
		}
	}
}

// Trace merges the recorded lanes into the analyzable, deterministic view of
// the run. It may be called any number of times; each call builds a fresh
// Trace from the sealed lanes. On spill-backed runs it returns ErrSpilled:
// the events live in the spill file.
func (r *Recorder) Trace() (*Trace, error) {
	if r == nil {
		return nil, ErrNoRun
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.recorded {
		return nil, ErrNoRun
	}
	if r.unclean {
		return nil, ErrUnclean
	}
	if r.spilled {
		return nil, ErrSpilled
	}
	// The returned view shares the lane storage; the next BeginRun must
	// allocate fresh lanes instead of truncating these.
	r.exported = true
	t := &Trace{
		Meta:     r.meta,
		Times:    append([]float64(nil), r.times...),
		MakeSpan: r.makespan,
		Messages: r.messages,
		Bytes:    r.bytes,
		Err:      r.runErr,
		lanes:    make([]Cols, len(r.lanes)),
	}
	for i := range r.lanes {
		t.lanes[i] = r.lanes[i].c
	}
	return t, nil
}

// Source is the lane-level view of one recorded run that every analysis,
// exporter and rollup consumes: run metadata, the run summary, and ordered
// per-lane column access. Both the in-RAM *Trace and the spill-backed
// *Spill implement it, so a P=65536 run analyzed off disk flows through the
// same single-pass consumers as a P=16 run held in memory.
type Source interface {
	// RunMeta returns the run's metadata.
	RunMeta() Meta
	// RunSummary returns the run-level result data.
	RunSummary() Summary
	// NumLanes returns the lane (rank) count.
	NumLanes() int
	// LaneLen returns the number of events in rank's lane without decoding
	// it.
	LaneLen(rank int) int
	// LaneCols returns rank's columns in lane (clock) order. The returned
	// view is valid until the next LaneCols call on the same source —
	// spill readers rotate a small decode cache — so consumers stream one
	// lane at a time and must not retain it.
	LaneCols(rank int) (*Cols, error)
}

// Trace is the merged, immutable view of one recorded run.
type Trace struct {
	// Meta labels the run (procs, seed, machine, workload).
	Meta Meta
	// Times are the per-rank final virtual times of the run (nil when the
	// run failed before producing a result).
	Times []float64
	// MakeSpan is the run's virtual makespan.
	MakeSpan float64
	// Messages and Bytes total the delivered traffic.
	Messages int64
	Bytes    int64
	// Err is the run's error, if any.
	Err error

	// lanes holds each rank's columns in that rank's own clock order. The
	// arrays are shared with the recorder; treat them as read-only.
	lanes []Cols

	// cp memoizes CriticalPath: the trace is immutable, every consumer
	// (report, CLI assert, experiment series) wants the same chain, and the
	// walk is O(events). Guarded by a Once so a Trace is safe to analyze
	// from concurrent readers.
	cpOnce sync.Once
	cp     *CriticalPath
}

// RunMeta implements Source.
func (t *Trace) RunMeta() Meta { return t.Meta }

// RunSummary implements Source.
func (t *Trace) RunSummary() Summary {
	errMsg := ""
	if t.Err != nil {
		errMsg = t.Err.Error()
	}
	return Summary{Times: t.Times, MakeSpan: t.MakeSpan, Messages: t.Messages,
		Bytes: t.Bytes, Steps: t.Steps(), ErrMsg: errMsg}
}

// NumLanes returns the lane (rank) count.
func (t *Trace) NumLanes() int { return len(t.lanes) }

// LaneLen returns the number of events in rank's lane.
func (t *Trace) LaneLen(rank int) int { return t.lanes[rank].Len() }

// LaneCols returns rank's columns; for an in-RAM trace the view stays valid
// for the trace's lifetime.
func (t *Trace) LaneCols(rank int) (*Cols, error) { return &t.lanes[rank], nil }

// LaneEvents materializes rank's lane as an event slice, in lane order.
func (t *Trace) LaneEvents(rank int) []Event {
	c := &t.lanes[rank]
	out := make([]Event, c.Len())
	for i := range out {
		out[i] = c.Event(i, int32(rank))
	}
	return out
}

// Events returns all lanes merged into one deterministic stream, ordered by
// (T0, T1, rank, per-rank sequence). Because each lane is deterministic and
// the key is a pure function of the events, repeated runs with the same seed
// yield identical streams.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, t.NumEvents())
	for rank := range t.lanes {
		out = append(out, t.LaneEvents(rank)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.T0 != b.T0 {
			return a.T0 < b.T0
		}
		if a.T1 != b.T1 {
			return a.T1 < b.T1
		}
		return a.Rank < b.Rank
	})
	return out
}

// NumEvents returns the total event count across all lanes.
func (t *Trace) NumEvents() int {
	n := 0
	for i := range t.lanes {
		n += t.lanes[i].Len()
	}
	return n
}

// Steps returns the number of superstep buckets the trace covers: one more
// than the highest Step stamped on any event, so events recorded after the
// final boundary mark still land in a bucket of their own.
func (t *Trace) Steps() int {
	max := int32(0)
	for i := range t.lanes {
		for _, s := range t.lanes[i].Step {
			if s > max {
				max = s
			}
		}
	}
	return int(max) + 1
}

// NumEventsOf totals the lane lengths of any source.
func NumEventsOf(src Source) int {
	n := 0
	for rank := 0; rank < src.NumLanes(); rank++ {
		n += src.LaneLen(rank)
	}
	return n
}

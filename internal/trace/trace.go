// Package trace is the event-recording core of the observability subsystem:
// a low-overhead recorder the virtual-time simulator writes into from its hot
// paths (message injection, receive completion, compute intervals, superstep
// and collective-stage boundaries), and the merged, analyzable Trace it
// produces after a run.
//
// The recorder is built for the simulator's concurrency model: every rank is
// driven by exactly one goroutine, so events are appended to per-rank
// append-only lanes without any locking or atomics on the hot path. Lanes are
// padded to a cache line so neighbouring ranks do not false-share. After the
// run the lanes are merged deterministically — per-lane order is the rank's
// own deterministic clock order, and the merge is a pure function of the
// event times — so two runs with the same machine seed produce byte-identical
// traces regardless of goroutine scheduling.
//
// A nil *Recorder (the exported Disabled) is valid and records nothing; the
// simulator's per-event cost in that mode is a single pointer test against a
// field it already holds in cache (benchmarked by BenchmarkTraceOverhead).
package trace

import (
	"errors"
	"sort"
	"sync"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindCompute is a local computation interval on the rank's clock.
	KindCompute Kind = iota
	// KindSend is the sender-side injection of one message: the interval is
	// the per-request software overhead on the sender's clock, Arrival is the
	// virtual time the message becomes available at Peer.
	KindSend
	// KindRecvWait is an interval the rank spent blocked completing a
	// receive. Gated tells whether the message's arrival ended the wait (the
	// sender gated this rank) or a local port did; SendSeq links to the
	// matching KindSend event in Peer's lane.
	KindRecvWait
	// KindSendWait is an interval the rank spent blocked completing a send
	// (port occupancy and, in ack mode, the returning acknowledgement).
	KindSendWait
	// KindAdvance is an explicit clock alignment (Proc.AdvanceTo).
	KindAdvance
	// KindSuperstep is a zero-length superstep-boundary mark: Step is the
	// index of the superstep just completed. BSP ranks emit one per Sync, MPI
	// ranks one per Barrier.
	KindSuperstep
	// KindStage is a zero-length collective-schedule stage mark emitted by
	// the pattern executor; Stage is the stage about to run.
	KindStage
	// KindFault is a fail-stop recovery interval injected by a fault plan:
	// the rank's clock crossed its fail time and [T0, T1] is the restart
	// penalty plus the recompute time back to the last checkpoint. Both
	// engines record it at the clock advance that crossed the fail time.
	KindFault
)

// String returns the compact name used by the exporters.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindSend:
		return "send"
	case KindRecvWait:
		return "recv.wait"
	case KindSendWait:
		return "send.wait"
	case KindAdvance:
		return "advance"
	case KindSuperstep:
		return "superstep"
	case KindStage:
		return "stage"
	case KindFault:
		return "fault"
	}
	return "unknown"
}

// Event is one recorded observation. All times are virtual seconds. The zero
// Step is superstep 0; Stage is -1 outside collective-schedule execution;
// SendSeq is -1 when the event is not a linked receive.
type Event struct {
	Kind Kind
	// Gated reports, for KindRecvWait, that the wait ended with the message's
	// arrival (the sender was the gating dependency) rather than with a local
	// extraction-port slot.
	Gated bool
	// Rank is the recording rank.
	Rank int32
	// Peer is the remote rank of a communication event, -1 otherwise.
	Peer int32
	// Tag is the message tag of a communication event.
	Tag int32
	// Size is the payload size in bytes of a communication event.
	Size int32
	// Step is the superstep the event belongs to (0 before the first
	// boundary; KindSuperstep marks carry the completed step).
	Step int32
	// Stage is the collective-schedule stage the event belongs to, -1 outside
	// schedule execution.
	Stage int32
	// SendSeq is, for KindRecvWait, the index in Peer's lane of the KindSend
	// event that produced the received message; -1 otherwise.
	SendSeq int32
	// T0 and T1 bound the event on the recording rank's clock (T0 == T1 for
	// boundary marks).
	T0, T1 float64
	// Arrival is the matched message's arrival time at the receiver
	// (KindSend and KindRecvWait events).
	Arrival float64
}

// Duration returns T1 - T0.
func (e *Event) Duration() float64 { return e.T1 - e.T0 }

// Meta labels a recorded run with everything needed to reproduce it.
type Meta struct {
	// Procs is the rank count of the run.
	Procs int
	// Seed is the machine's run seed when the machine exposes one
	// (cluster.Machine does, including through WithRunSeed copies);
	// SeedKnown tells whether it did.
	Seed      int64
	SeedKnown bool
	// Machine is the machine's self-description (fmt.Stringer), if any.
	Machine string
	// Label is a free-form workload name supplied by the harness.
	Label string
	// AckSends records the simulator option the run used.
	AckSends bool
	// Faults describes the run's fault plan, one deterministic line per
	// injected rule (fault.Runtime.Describe); empty on fault-free runs. The
	// exporters stamp it into their metadata so a degraded timeline names the
	// scenario that produced it.
	Faults []string
}

// Lane is one rank's append-only event stream. A lane is written by exactly
// one goroutine (the rank's) and must not be read until the run has ended.
// The trailing padding keeps neighbouring lanes on distinct cache lines.
type Lane struct {
	rank int32
	ev   []Event
	_    [32]byte // rank + slice header are 32 bytes; pad the struct to 64
}

// Append records one event, stamping the lane's rank.
func (l *Lane) Append(ev Event) {
	ev.Rank = l.rank
	l.ev = append(l.ev, ev)
}

// Len returns the number of events recorded so far; the simulator uses it to
// link a message to the send event about to be appended.
func (l *Lane) Len() int { return len(l.ev) }

// Disabled is the nil recorder: attaching it to a run records nothing, and
// the simulator's per-event cost is a single nil test.
var Disabled *Recorder

// ErrNoRun is returned by Trace when the recorder holds no completed run.
var ErrNoRun = errors.New("trace: recorder holds no completed run (attach it to a run first)")

// ErrUnclean is returned by Trace when the recorded run was torn down with
// rank goroutines possibly still running (a wall-clock deadline with an
// uninterruptible rank); such lanes cannot be read safely.
var ErrUnclean = errors.New("trace: run was torn down before every rank stopped; trace discarded")

// Recorder accumulates the events of one simulation run. Create one with
// NewRecorder, attach it via the run options (hbsp.WithRecorder or
// sim.Options.Recorder), and read the result with Trace after the run
// returns. A Recorder records one run at a time — beginning a new run
// discards the previous one — and must not be shared by concurrent runs;
// give each run of a parallel sweep its own recorder.
type Recorder struct {
	mu       sync.Mutex
	recorded bool
	unclean  bool
	exported bool
	label    string
	meta     Meta
	lanes    []Lane
	prevLens []int
	times    []float64
	makespan float64
	messages int64
	bytes    int64
	runErr   error
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetLabel names the workload in the metadata of subsequently recorded runs;
// exporters print it. Safe on the nil recorder.
func (r *Recorder) SetLabel(label string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.label = label
	r.mu.Unlock()
}

// Enabled reports whether the recorder records anything; it is false exactly
// for the nil recorder (Disabled).
func (r *Recorder) Enabled() bool { return r != nil }

// BeginRun resets the recorder for a run with the given metadata and sizes
// one lane per rank. The simulator calls it; user code does not.
//
// Lane storage is pooled: when the previous run's lanes were never exported
// through Trace (the benchmark and sweep pattern — run, read the Result,
// run again), their event blocks are truncated and reused, so a recorder in
// steady state appends into already-sized lanes and allocates nothing. Once
// Trace has been called, the lanes are shared with the returned view and the
// next run allocates fresh ones — pre-sized from the previous run's per-rank
// event counts, so even the exporting pattern pays one right-sized
// allocation per lane instead of a growth series.
func (r *Recorder) BeginRun(meta Meta) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded = false
	r.unclean = false
	r.runErr = nil
	if meta.Label == "" {
		meta.Label = r.label
	}
	r.meta = meta
	r.times = nil
	r.makespan = 0
	r.messages, r.bytes = 0, 0
	if len(r.lanes) == meta.Procs {
		// Remember the finished run's event counts: they are the size
		// estimate the next allocation (if any) is seeded with.
		if r.prevLens == nil || len(r.prevLens) != meta.Procs {
			r.prevLens = make([]int, meta.Procs)
		}
		for i := range r.lanes {
			r.prevLens[i] = len(r.lanes[i].ev)
		}
	}
	if !r.exported && len(r.lanes) == meta.Procs {
		for i := range r.lanes {
			r.lanes[i].ev = r.lanes[i].ev[:0]
			r.lanes[i].rank = int32(i)
		}
		return
	}
	r.exported = false
	r.lanes = make([]Lane, meta.Procs)
	for i := range r.lanes {
		r.lanes[i].rank = int32(i)
		if len(r.prevLens) == meta.Procs && r.prevLens[i] > 0 {
			r.lanes[i].ev = make([]Event, 0, r.prevLens[i])
		}
	}
}

// LaneOf returns rank's lane of the current run. The simulator calls it once
// per rank at attach time.
func (r *Recorder) LaneOf(rank int) *Lane {
	return &r.lanes[rank]
}

// EndRun seals the current run with its result. clean must be false when the
// teardown could have left rank goroutines running (their lanes may still be
// written to and are discarded). The simulator calls it; user code does not.
func (r *Recorder) EndRun(times []float64, makespan float64, messages, bytes int64, runErr error, clean bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recorded = true
	r.unclean = !clean
	r.runErr = runErr
	if times != nil {
		r.times = append([]float64(nil), times...)
	}
	r.makespan = makespan
	r.messages, r.bytes = messages, bytes
	if r.unclean {
		r.lanes = nil
	}
}

// Trace merges the recorded lanes into the analyzable, deterministic view of
// the run. It may be called any number of times; each call builds a fresh
// Trace from the sealed lanes.
func (r *Recorder) Trace() (*Trace, error) {
	if r == nil {
		return nil, ErrNoRun
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.recorded {
		return nil, ErrNoRun
	}
	if r.unclean {
		return nil, ErrUnclean
	}
	// The returned view shares the lane storage; the next BeginRun must
	// allocate fresh lanes instead of truncating these.
	r.exported = true
	t := &Trace{
		Meta:     r.meta,
		Lanes:    make([][]Event, len(r.lanes)),
		Times:    append([]float64(nil), r.times...),
		MakeSpan: r.makespan,
		Messages: r.messages,
		Bytes:    r.bytes,
		Err:      r.runErr,
	}
	for i := range r.lanes {
		t.Lanes[i] = r.lanes[i].ev
	}
	return t, nil
}

// Trace is the merged, immutable view of one recorded run.
type Trace struct {
	// Meta labels the run (procs, seed, machine, workload).
	Meta Meta
	// Lanes holds each rank's events in that rank's own clock order. The
	// slices are shared with the recorder; treat them as read-only.
	Lanes [][]Event
	// Times are the per-rank final virtual times of the run (nil when the
	// run failed before producing a result).
	Times []float64
	// MakeSpan is the run's virtual makespan.
	MakeSpan float64
	// Messages and Bytes total the delivered traffic.
	Messages int64
	Bytes    int64
	// Err is the run's error, if any.
	Err error

	// cp memoizes CriticalPath: the trace is immutable, every consumer
	// (report, CLI assert, experiment series) wants the same chain, and the
	// walk is O(events). Guarded by a Once so a Trace is safe to analyze
	// from concurrent readers.
	cpOnce sync.Once
	cp     *CriticalPath
}

// Events returns all lanes merged into one deterministic stream, ordered by
// (T0, T1, rank, per-rank sequence). Because each lane is deterministic and
// the key is a pure function of the events, repeated runs with the same seed
// yield identical streams.
func (t *Trace) Events() []Event {
	n := 0
	for _, l := range t.Lanes {
		n += len(l)
	}
	out := make([]Event, 0, n)
	for _, l := range t.Lanes {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.T0 != b.T0 {
			return a.T0 < b.T0
		}
		if a.T1 != b.T1 {
			return a.T1 < b.T1
		}
		return a.Rank < b.Rank
	})
	return out
}

// NumEvents returns the total event count across all lanes.
func (t *Trace) NumEvents() int {
	n := 0
	for _, l := range t.Lanes {
		n += len(l)
	}
	return n
}

// Steps returns the number of superstep buckets the trace covers: one more
// than the highest Step stamped on any event, so events recorded after the
// final boundary mark still land in a bucket of their own.
func (t *Trace) Steps() int {
	max := int32(0)
	for _, l := range t.Lanes {
		for i := range l {
			if l[i].Step > max {
				max = l[i].Step
			}
		}
	}
	return int(max) + 1
}

package trace

import "container/heap"

// This file holds the ordered merged-event iterator: a k-way merge of the
// per-lane streams by (T0, T1, rank) that yields exactly the sequence
// Trace.Events returns, without ever materializing it. Lanes are consumed
// chunk by chunk, so iterating a spilled P=65536 run holds one decoded
// chunk per lane — the same bound the spilling recorder ran under.
//
// Per-lane event order is each rank's own clock order, which is sorted by
// (T0, T1) except for one known adjacency: a fail-stop recovery interval is
// recorded immediately before the send whose clock advance crossed the fail
// time, and starts after that send's T0. A two-slot reorder window on each
// lane cursor restores sortedness (the inversion is always between exactly
// those two neighbours), after which the heap merge with rank as the final
// tie-break reproduces the stable merged order bit-for-bit.

// chunkPull streams one lane as consecutive column chunks; it returns
// (nil, nil) when the lane is exhausted. The returned columns are valid
// until the next pull.
type chunkPull func() (*Cols, error)

// laneChunker is the optional Source extension the iterator prefers: a
// spill reader streams chunks straight off the file instead of decoding
// whole lanes. Sources without it are read through LaneCols once per lane.
type laneChunker interface {
	laneChunks(rank int) chunkPull
}

// laneChunks implements laneChunker for the in-RAM trace: the whole lane is
// one chunk.
func (t *Trace) laneChunks(rank int) chunkPull {
	c := &t.lanes[rank]
	done := false
	return func() (*Cols, error) {
		if done {
			return nil, nil
		}
		done = true
		return c, nil
	}
}

func chunkPullOf(src Source, rank int) chunkPull {
	if lc, ok := src.(laneChunker); ok {
		return lc.laneChunks(rank)
	}
	done := false
	return func() (*Cols, error) {
		if done {
			return nil, nil
		}
		done = true
		return src.LaneCols(rank)
	}
}

// eventBefore is the strict merge order: (T0, T1, rank).
func eventBefore(a, b *Event) bool {
	if a.T0 != b.T0 {
		return a.T0 < b.T0
	}
	if a.T1 != b.T1 {
		return a.T1 < b.T1
	}
	return a.Rank < b.Rank
}

// laneCursor walks one lane in repaired (sorted) order through a two-slot
// reorder window.
type laneCursor struct {
	rank   int32
	pull   chunkPull
	c      *Cols
	i      int
	a, b   Event
	na, nb bool
}

// rawNext yields the next event in recorded lane order.
func (lc *laneCursor) rawNext() (Event, bool, error) {
	for lc.c == nil || lc.i >= lc.c.Len() {
		if lc.pull == nil {
			return Event{}, false, nil
		}
		c, err := lc.pull()
		if err != nil {
			return Event{}, false, err
		}
		if c == nil {
			lc.pull = nil
			return Event{}, false, nil
		}
		lc.c, lc.i = c, 0
	}
	ev := lc.c.Event(lc.i, lc.rank)
	lc.i++
	return ev, true, nil
}

// refill loads the window after its head was consumed and repairs an
// adjacent inversion. The swap fires only on strictly out-of-order
// neighbours, so equal-keyed events keep their recorded order (stability).
func (lc *laneCursor) refill() error {
	if !lc.na && lc.nb {
		lc.a, lc.na, lc.nb = lc.b, true, false
	}
	if !lc.na {
		ev, ok, err := lc.rawNext()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		lc.a, lc.na = ev, true
	}
	if !lc.nb {
		ev, ok, err := lc.rawNext()
		if err != nil {
			return err
		}
		if ok {
			lc.b, lc.nb = ev, true
		}
	}
	if lc.na && lc.nb && eventBefore(&lc.b, &lc.a) {
		lc.a, lc.b = lc.b, lc.a
	}
	return nil
}

// cursorHeap is a min-heap of lane cursors keyed by their head event.
type cursorHeap []*laneCursor

func (h cursorHeap) Len() int            { return len(h) }
func (h cursorHeap) Less(i, j int) bool  { return eventBefore(&h[i].a, &h[j].a) }
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*laneCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Iter streams a source's events in the deterministic merged order — the
// order Trace.Events materializes — one event at a time.
type Iter struct {
	cs  cursorHeap
	err error
}

// NewIter builds the merged iterator over src.
func NewIter(src Source) (*Iter, error) {
	it := &Iter{}
	for rank := 0; rank < src.NumLanes(); rank++ {
		lc := &laneCursor{rank: int32(rank), pull: chunkPullOf(src, rank)}
		if err := lc.refill(); err != nil {
			return nil, err
		}
		if lc.na {
			it.cs = append(it.cs, lc)
		}
	}
	heap.Init(&it.cs)
	return it, nil
}

// Next yields the next event; ok is false at the end of the stream or on a
// read error (check Err).
func (it *Iter) Next() (ev Event, ok bool) {
	if it.err != nil || len(it.cs) == 0 {
		return Event{}, false
	}
	lc := it.cs[0]
	ev = lc.a
	lc.na = false
	if err := lc.refill(); err != nil {
		it.err = err
		return Event{}, false
	}
	if lc.na {
		heap.Fix(&it.cs, 0)
	} else {
		heap.Pop(&it.cs)
	}
	return ev, true
}

// Err returns the first lane read error, nil on clean streams.
func (it *Iter) Err() error { return it.err }

package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// This file holds the binary spill format: the compact, versioned,
// deterministic on-disk encoding of a recorded run, written either
// incrementally during the run (Recorder.SpillTo — bounded memory) or
// canonically from any Source (WriteSpill — byte-determinism goldens), and
// read back through the same Source interface the in-RAM Trace implements.
//
// Layout (all integers varint-encoded unless stated; strings are
// uvarint-length-prefixed UTF-8):
//
//	header   magic "HBSPTRC\x01", uvarint version (currently 1), run Meta
//	         (procs, seed-known byte, zigzag seed, ack byte, machine,
//	         label, fault lines)
//	chunks   any number of 'C' records: uvarint rank, uvarint event count,
//	         then the twelve column blocks for those events in Cols field
//	         order — Kind and Flags raw, the int32 columns zigzag-varint
//	         delta-encoded, the float64 columns either raw little-endian
//	         bits (mode 0) or zigzag-varint deltas of the uint64 bit
//	         patterns (mode 1); both float modes round-trip every float64
//	         exactly, and the writer deterministically picks mode 1 exactly
//	         when it encodes smaller, so virtual clocks that advance in
//	         near-regular increments cost a few bytes per event instead of 8
//	per lane, chunks appear in lane order; across lanes they interleave in
//	flush order (deterministic under the single-goroutine evaluator and for
//	WriteSpill, scheduler-dependent under the concurrent engine — the
//	decoded content is identical either way)
//	summary  one 'S' record: times float column, raw makespan bits, zigzag
//	         messages and bytes, uvarint steps, error text
//	index    one 'I' record: per lane, uvarint event total and the chunk
//	         list as (uvarint offset delta, uvarint byte size, uvarint
//	         count) triples, so any lane is readable without scanning
//	footer   fixed 24 bytes: summary offset, index offset (both uint64
//	         little-endian), magic "HBSPTRCE" — readers seek here first

const (
	spillMagic    = "HBSPTRC\x01"
	spillEndMagic = "HBSPTRCE"
	spillVersion  = 1

	recChunk   = 'C'
	recSummary = 'S'
	recIndex   = 'I'

	floatRaw   = 0
	floatDelta = 1
)

// SpillOptions tune Recorder.SpillTo.
type SpillOptions struct {
	// ChunkEvents caps the events a lane holds in RAM before its columns
	// are encoded and flushed. 0 derives a value from the rank count
	// targeting ~64 MB resident across all lanes, clamped to [64, 8192].
	ChunkEvents int
}

// chunkFor resolves the chunk size for a run with the given rank count.
func (o SpillOptions) chunkFor(procs int) int {
	c := o.ChunkEvents
	if c <= 0 {
		if procs < 1 {
			procs = 1
		}
		// ~64 B of column storage per resident event.
		c = (64 << 20) / (64 * procs)
		if c < 64 {
			c = 64
		}
		if c > 8192 {
			c = 8192
		}
	}
	return c
}

// canonicalChunkEvents is the fixed chunk size of WriteSpill, independent of
// how the source was produced, so the canonical bytes of a run are a pure
// function of its content.
const canonicalChunkEvents = 8192

// --- primitive encoders -------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendZigzag(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendI32Col zigzag-varint delta-encodes an int32 column.
func appendI32Col(b []byte, col []int32) []byte {
	prev := int32(0)
	for _, v := range col {
		b = binary.AppendVarint(b, int64(v-prev))
		prev = v
	}
	return b
}

// appendF64Col encodes a float64 column: it tries zigzag-varint deltas of
// the uint64 bit patterns and falls back to raw little-endian bits when the
// deltas are not smaller. Both modes reproduce every value bit-for-bit.
func appendF64Col(b []byte, col []float64, tmp []byte) ([]byte, []byte) {
	tmp = tmp[:0]
	prev := uint64(0)
	for _, v := range col {
		bits := f64bits(v)
		tmp = binary.AppendVarint(tmp, int64(bits-prev))
		prev = bits
	}
	if len(tmp) < 8*len(col) {
		b = append(b, floatDelta)
		return append(b, tmp...), tmp
	}
	b = append(b, floatRaw)
	for _, v := range col {
		b = binary.LittleEndian.AppendUint64(b, f64bits(v))
	}
	return b, tmp
}

// appendKindCol writes the kind column as raw bytes.
func appendKindCol(b []byte, col []Kind) []byte {
	for _, k := range col {
		b = append(b, byte(k))
	}
	return b
}

func appendMeta(b []byte, m Meta) []byte {
	b = appendUvarint(b, uint64(m.Procs))
	if m.SeedKnown {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendZigzag(b, m.Seed)
	if m.AckSends {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendString(b, m.Machine)
	b = appendString(b, m.Label)
	b = appendUvarint(b, uint64(len(m.Faults)))
	for _, f := range m.Faults {
		b = appendString(b, f)
	}
	return b
}

// appendChunk encodes one 'C' record for count events of rank's columns.
func appendChunk(b []byte, rank int32, c *Cols, tmp []byte) ([]byte, []byte) {
	b = append(b, recChunk)
	b = appendUvarint(b, uint64(rank))
	b = appendUvarint(b, uint64(c.Len()))
	b = appendKindCol(b, c.Kind)
	b = append(b, c.Flags...)
	b = appendI32Col(b, c.Peer)
	b = appendI32Col(b, c.Tag)
	b = appendI32Col(b, c.Size)
	b = appendI32Col(b, c.Step)
	b = appendI32Col(b, c.Stage)
	b = appendI32Col(b, c.SendSeq)
	b, tmp = appendF64Col(b, c.T0, tmp)
	b, tmp = appendF64Col(b, c.T1, tmp)
	b, tmp = appendF64Col(b, c.Arrival, tmp)
	b, tmp = appendF64Col(b, c.SendEnd, tmp)
	return b, tmp
}

func appendSummary(b []byte, sum Summary, tmp []byte) ([]byte, []byte) {
	b = append(b, recSummary)
	b = appendUvarint(b, uint64(len(sum.Times)))
	b, tmp = appendF64Col(b, sum.Times, tmp)
	b = binary.LittleEndian.AppendUint64(b, f64bits(sum.MakeSpan))
	b = appendZigzag(b, sum.Messages)
	b = appendZigzag(b, sum.Bytes)
	b = appendUvarint(b, uint64(sum.Steps))
	b = appendString(b, sum.ErrMsg)
	return b, tmp
}

// spillChunkIdx locates one encoded chunk.
type spillChunkIdx struct {
	off   int64
	size  int32
	count int32
}

// spillLaneIdx is one lane's chunk list in the index.
type spillLaneIdx struct {
	total  int
	chunks []spillChunkIdx
}

func appendIndex(b []byte, lanes []spillLaneIdx) []byte {
	b = append(b, recIndex)
	b = appendUvarint(b, uint64(len(lanes)))
	for i := range lanes {
		l := &lanes[i]
		b = appendUvarint(b, uint64(l.total))
		b = appendUvarint(b, uint64(len(l.chunks)))
		prev := int64(0)
		for _, ch := range l.chunks {
			b = appendUvarint(b, uint64(ch.off-prev))
			b = appendUvarint(b, uint64(ch.size))
			b = appendUvarint(b, uint64(ch.count))
			prev = ch.off
		}
	}
	return b
}

func appendFooter(b []byte, sumOff, idxOff int64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(sumOff))
	b = binary.LittleEndian.AppendUint64(b, uint64(idxOff))
	return append(b, spillEndMagic...)
}

// --- streaming sink ------------------------------------------------------

// spillSink is the shared chunk writer of a spilling run: lanes hand it
// their full columns under its lock, it encodes and appends them to the
// output, tracking the index. All state is behind mu; the underlying writer
// sees exactly one Write per record.
type spillSink struct {
	mu      sync.Mutex
	w       io.Writer
	off     int64
	err     error
	lanes   []spillLaneIdx
	maxStep int32
	nchunks int
	nevents int64
	buf     []byte
	tmp     []byte
}

func newSpillSink(w io.Writer, meta Meta) (*spillSink, error) {
	s := &spillSink{w: w, lanes: make([]spillLaneIdx, meta.Procs)}
	s.buf = append(s.buf, spillMagic...)
	s.buf = appendUvarint(s.buf, spillVersion)
	s.buf = appendMeta(s.buf, meta)
	err := s.emit()
	return s, err
}

// emit writes and clears the staging buffer, advancing the offset.
func (s *spillSink) emit() error {
	if s.err != nil {
		return s.err
	}
	n, err := s.w.Write(s.buf)
	s.off += int64(n)
	s.buf = s.buf[:0]
	if err != nil {
		s.err = fmt.Errorf("trace: spill write: %w", err)
	}
	return s.err
}

// writeChunk encodes and appends one lane chunk.
func (s *spillSink) writeChunk(rank int32, c *Cols) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	off := s.off
	s.buf, s.tmp = appendChunk(s.buf[:0], rank, c, s.tmp)
	size := len(s.buf)
	if s.emit() != nil {
		return
	}
	l := &s.lanes[rank]
	l.total += c.Len()
	l.chunks = append(l.chunks, spillChunkIdx{off: off, size: int32(size), count: int32(c.Len())})
	s.nchunks++
	s.nevents += int64(c.Len())
	for _, st := range c.Step {
		if st > s.maxStep {
			s.maxStep = st
		}
	}
}

// steps returns the superstep bucket count of everything flushed so far.
func (s *spillSink) steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int(s.maxStep) + 1
}

// stats reports chunks, events and bytes written.
func (s *spillSink) stats() (int, int64, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nchunks, s.nevents, s.off
}

// finish seals the file: summary, index, footer.
func (s *spillSink) finish(sum Summary) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	sumOff := s.off
	s.buf, s.tmp = appendSummary(s.buf[:0], sum, s.tmp)
	idxOff := sumOff + int64(len(s.buf))
	s.buf = appendIndex(s.buf, s.lanes)
	s.buf = appendFooter(s.buf, sumOff, idxOff)
	return s.emit()
}

// WriteSpill serializes any source canonically: lanes in rank order, fixed
// chunking, deterministic encodings — the bytes are a pure function of the
// run's content, so golden tests diff them directly and a streamed spill
// re-serialized through WriteSpill matches the same run recorded in RAM.
func WriteSpill(w io.Writer, src Source) error {
	meta := src.RunMeta()
	sink, err := newSpillSink(w, meta)
	if err != nil {
		return err
	}
	var part Cols
	for rank := 0; rank < src.NumLanes(); rank++ {
		pull := chunkPullOf(src, rank)
		part.truncate()
		for {
			c, err := pull()
			if err != nil {
				return err
			}
			if c == nil {
				break
			}
			// Re-chunk to the canonical size regardless of source chunking.
			i := 0
			for i < c.Len() {
				n := canonicalChunkEvents - part.Len()
				if rest := c.Len() - i; rest < n {
					n = rest
				}
				sub := c.slice(i, i+n)
				if part.Len() == 0 && n == canonicalChunkEvents {
					sink.writeChunk(int32(rank), &sub)
				} else {
					part.appendCols(&sub)
					if part.Len() == canonicalChunkEvents {
						sink.writeChunk(int32(rank), &part)
						part.truncate()
					}
				}
				i += n
			}
		}
		if part.Len() > 0 {
			sink.writeChunk(int32(rank), &part)
			part.truncate()
		}
	}
	return sink.finish(src.RunSummary())
}

// --- reader ---------------------------------------------------------------

// decoder walks one encoded buffer.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("trace: corrupt spill: %s at offset %d", what, d.pos)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) zigzag() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if d.pos+int(n) > len(d.b) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *decoder) rawBytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.b) {
		d.fail("truncated block")
		return nil
	}
	b := d.b[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) i32Col(out []int32, n int) []int32 {
	out = out[:0]
	prev := int32(0)
	for i := 0; i < n; i++ {
		prev += int32(d.zigzag())
		out = append(out, prev)
	}
	return out
}

func (d *decoder) f64Col(out []float64, n int) []float64 {
	out = out[:0]
	switch d.byte() {
	case floatRaw:
		raw := d.rawBytes(8 * n)
		for i := 0; i < n; i++ {
			out = append(out, f64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
	case floatDelta:
		prev := uint64(0)
		for i := 0; i < n; i++ {
			prev += uint64(d.zigzag())
			out = append(out, f64frombits(prev))
		}
	default:
		d.fail("unknown float column mode")
	}
	return out
}

func (d *decoder) meta() Meta {
	var m Meta
	m.Procs = int(d.uvarint())
	m.SeedKnown = d.byte() == 1
	m.Seed = d.zigzag()
	m.AckSends = d.byte() == 1
	m.Machine = d.string()
	m.Label = d.string()
	nf := int(d.uvarint())
	for i := 0; i < nf && d.err == nil; i++ {
		m.Faults = append(m.Faults, d.string())
	}
	return m
}

// decodeChunk parses one 'C' record into dst (replacing its content).
func (d *decoder) decodeChunk(dst *Cols) (rank int32, err error) {
	if d.byte() != recChunk {
		d.fail("expected chunk record")
	}
	rank = int32(d.uvarint())
	n := int(d.uvarint())
	if d.err == nil && (n < 0 || n > len(d.b)) {
		d.fail("implausible chunk count")
	}
	if d.err != nil {
		return 0, d.err
	}
	dst.Kind = dst.Kind[:0]
	for _, kb := range d.rawBytes(n) {
		dst.Kind = append(dst.Kind, Kind(kb))
	}
	dst.Flags = append(dst.Flags[:0], d.rawBytes(n)...)
	dst.Peer = d.i32Col(dst.Peer, n)
	dst.Tag = d.i32Col(dst.Tag, n)
	dst.Size = d.i32Col(dst.Size, n)
	dst.Step = d.i32Col(dst.Step, n)
	dst.Stage = d.i32Col(dst.Stage, n)
	dst.SendSeq = d.i32Col(dst.SendSeq, n)
	dst.T0 = d.f64Col(dst.T0, n)
	dst.T1 = d.f64Col(dst.T1, n)
	dst.Arrival = d.f64Col(dst.Arrival, n)
	dst.SendEnd = d.f64Col(dst.SendEnd, n)
	return rank, d.err
}

// Spill reads a spill file through the Source interface: metadata, summary
// and the chunk index are loaded eagerly; lane columns are decoded on
// demand through a small rotating cache, so analyses over a P=65536 run
// keep only a handful of lanes in memory.
type Spill struct {
	r      io.ReaderAt
	closer io.Closer
	meta   Meta
	sum    Summary
	lanes  []spillLaneIdx

	mu    sync.Mutex
	cache []spillCacheEnt // tiny LRU, most recent first
}

type spillCacheEnt struct {
	rank int
	cols *Cols
}

// spillCacheLanes bounds the decoded-lane cache. The analyses touch one
// lane at a time (plus the occasional critical-path hop back and forth), so
// a handful of slots gives hits without holding the run.
const spillCacheLanes = 4

// OpenSpill parses a spill image from a random-access reader of the given
// size.
func OpenSpill(r io.ReaderAt, size int64) (*Spill, error) {
	if size < int64(len(spillMagic))+24 {
		return nil, fmt.Errorf("trace: spill too short (%d bytes)", size)
	}
	foot := make([]byte, 24)
	if _, err := r.ReadAt(foot, size-24); err != nil {
		return nil, fmt.Errorf("trace: reading spill footer: %w", err)
	}
	if string(foot[16:]) != spillEndMagic {
		return nil, fmt.Errorf("trace: not a sealed spill file (bad footer magic; was the run torn down before EndRun?)")
	}
	sumOff := int64(binary.LittleEndian.Uint64(foot[0:8]))
	idxOff := int64(binary.LittleEndian.Uint64(foot[8:16]))
	if sumOff < 0 || idxOff < sumOff || idxOff > size-24 {
		return nil, fmt.Errorf("trace: corrupt spill footer offsets")
	}

	head := make([]byte, 4096)
	if int64(len(head)) > sumOff {
		head = head[:sumOff]
	}
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("trace: reading spill header: %w", err)
	}
	if len(head) < len(spillMagic) || string(head[:len(spillMagic)]) != spillMagic {
		return nil, fmt.Errorf("trace: not a spill file (bad magic)")
	}
	hd := &decoder{b: head, pos: len(spillMagic)}
	if v := hd.uvarint(); hd.err == nil && v != spillVersion {
		return nil, fmt.Errorf("trace: unsupported spill version %d (want %d)", v, spillVersion)
	}
	meta := hd.meta()
	if hd.err != nil {
		// Long metadata may overrun the fixed probe; retry with the full
		// pre-summary region.
		full := make([]byte, sumOff)
		if _, err := r.ReadAt(full, 0); err != nil {
			return nil, fmt.Errorf("trace: reading spill header: %w", err)
		}
		hd = &decoder{b: full, pos: len(spillMagic)}
		hd.uvarint()
		meta = hd.meta()
		if hd.err != nil {
			return nil, hd.err
		}
	}

	tail := make([]byte, size-24-sumOff)
	if _, err := r.ReadAt(tail, sumOff); err != nil {
		return nil, fmt.Errorf("trace: reading spill summary/index: %w", err)
	}
	td := &decoder{b: tail}
	if td.byte() != recSummary {
		td.fail("expected summary record")
	}
	var sum Summary
	nt := int(td.uvarint())
	if td.err == nil {
		sum.Times = td.f64Col(nil, nt)
	}
	if raw := td.rawBytes(8); raw != nil {
		sum.MakeSpan = f64frombits(binary.LittleEndian.Uint64(raw))
	}
	sum.Messages = td.zigzag()
	sum.Bytes = td.zigzag()
	sum.Steps = int(td.uvarint())
	sum.ErrMsg = td.string()

	if int64(td.pos) != idxOff-sumOff {
		td.fail("summary/index offset mismatch")
	}
	if td.byte() != recIndex {
		td.fail("expected index record")
	}
	nl := int(td.uvarint())
	if td.err == nil && (nl < 0 || nl != meta.Procs) {
		td.fail("index lane count mismatch")
	}
	lanes := make([]spillLaneIdx, 0, nl)
	for i := 0; i < nl && td.err == nil; i++ {
		var l spillLaneIdx
		l.total = int(td.uvarint())
		nc := int(td.uvarint())
		prev := int64(0)
		for j := 0; j < nc && td.err == nil; j++ {
			off := prev + int64(td.uvarint())
			sz := int64(td.uvarint())
			cnt := int64(td.uvarint())
			l.chunks = append(l.chunks, spillChunkIdx{off: off, size: int32(sz), count: int32(cnt)})
			prev = off
		}
		lanes = append(lanes, l)
	}
	if td.err != nil {
		return nil, td.err
	}
	return &Spill{r: r, meta: meta, sum: sum, lanes: lanes}, nil
}

// OpenSpillFile opens a spill file from disk; Close releases it.
func OpenSpillFile(path string) (*Spill, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	sp, err := OpenSpill(f, st.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	sp.closer = f
	return sp, nil
}

// Close releases the underlying file (no-op for OpenSpill over a buffer).
func (s *Spill) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// RunMeta implements Source.
func (s *Spill) RunMeta() Meta { return s.meta }

// RunSummary implements Source.
func (s *Spill) RunSummary() Summary { return s.sum }

// NumLanes implements Source.
func (s *Spill) NumLanes() int { return len(s.lanes) }

// LaneLen implements Source (index lookup; no decoding).
func (s *Spill) LaneLen(rank int) int { return s.lanes[rank].total }

// readChunk fetches and decodes one chunk into dst.
func (s *Spill) readChunk(ch spillChunkIdx, buf []byte, dst *Cols) ([]byte, error) {
	if cap(buf) < int(ch.size) {
		buf = make([]byte, ch.size)
	}
	buf = buf[:ch.size]
	if _, err := s.r.ReadAt(buf, ch.off); err != nil {
		return buf, fmt.Errorf("trace: reading spill chunk: %w", err)
	}
	d := &decoder{b: buf}
	if _, err := d.decodeChunk(dst); err != nil {
		return buf, err
	}
	if dst.Len() != int(ch.count) {
		return buf, fmt.Errorf("trace: spill chunk decoded %d events, index says %d", dst.Len(), ch.count)
	}
	return buf, nil
}

// LaneCols implements Source: the lane's chunks are decoded and
// concatenated, then cached in a small LRU. The returned columns are valid
// until spillCacheLanes further LaneCols calls.
func (s *Spill) LaneCols(rank int) (*Cols, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.cache {
		if s.cache[i].rank == rank {
			ent := s.cache[i]
			copy(s.cache[1:i+1], s.cache[:i])
			s.cache[0] = ent
			return ent.cols, nil
		}
	}
	var dst *Cols
	if len(s.cache) == spillCacheLanes {
		dst = s.cache[len(s.cache)-1].cols
		s.cache = s.cache[:len(s.cache)-1]
		dst.truncate()
	} else {
		dst = &Cols{}
	}
	var buf []byte
	var part Cols
	var err error
	for _, ch := range s.lanes[rank].chunks {
		if buf, err = s.readChunk(ch, buf, &part); err != nil {
			return nil, err
		}
		dst.appendCols(&part)
	}
	s.cache = append(s.cache, spillCacheEnt{})
	copy(s.cache[1:], s.cache[:len(s.cache)-1])
	s.cache[0] = spillCacheEnt{rank: rank, cols: dst}
	return dst, nil
}

// laneChunks implements the iterator's chunked access: each cursor decodes
// one chunk at a time into its own buffer, independent of the LaneCols
// cache, so a k-way merge over all lanes holds one chunk per lane.
func (s *Spill) laneChunks(rank int) chunkPull {
	chunks := s.lanes[rank].chunks
	i := 0
	var buf []byte
	var cols Cols
	return func() (*Cols, error) {
		if i >= len(chunks) {
			return nil, nil
		}
		var err error
		if buf, err = s.readChunk(chunks[i], buf, &cols); err != nil {
			return nil, err
		}
		i++
		return &cols, nil
	}
}

// Trace materializes the whole spill as an in-RAM Trace (small runs and
// tests; defeats the purpose at high P).
func (s *Spill) Trace() (*Trace, error) {
	t := &Trace{
		Meta:     s.meta,
		Times:    append([]float64(nil), s.sum.Times...),
		MakeSpan: s.sum.MakeSpan,
		Messages: s.sum.Messages,
		Bytes:    s.sum.Bytes,
		lanes:    make([]Cols, len(s.lanes)),
	}
	if s.sum.ErrMsg != "" {
		t.Err = fmt.Errorf("%s", s.sum.ErrMsg)
	}
	var buf []byte
	var part Cols
	var err error
	for rank := range s.lanes {
		for _, ch := range s.lanes[rank].chunks {
			if buf, err = s.readChunk(ch, buf, &part); err != nil {
				return nil, err
			}
			t.lanes[rank].appendCols(&part)
		}
	}
	return t, nil
}

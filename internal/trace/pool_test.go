package trace

import "testing"

var poolTimes = []float64{1, 2, 3, 4}

func fillRun(r *Recorder, procs, events int) {
	r.BeginRun(Meta{Procs: procs})
	for rank := 0; rank < procs; rank++ {
		lane := r.LaneOf(rank)
		for e := 0; e < events; e++ {
			lane.Append(Event{Kind: KindCompute, Peer: -1, SendSeq: -1, T0: float64(e), T1: float64(e) + 1})
		}
	}
	r.EndRun(poolTimes[:procs], 2, int64(events), 0, nil, true)
}

// TestRecorderLaneReuse pins the lane pool: while no Trace view has been
// exported, BeginRun truncates and reuses the previous run's column blocks
// (steady-state recording allocates nothing), and once Trace has shared the
// lanes, the next run gets fresh storage pre-sized from the previous event
// counts — without corrupting the exported view.
func TestRecorderLaneReuse(t *testing.T) {
	rec := NewRecorder()
	fillRun(rec, 2, 64)

	// Unexported lanes are reused: same column backing arrays, truncated.
	before := &rec.LaneOf(0).c.T0[:1][0]
	fillRun(rec, 2, 64)
	after := &rec.LaneOf(0).c.T0[:1][0]
	if before != after {
		t.Error("unexported lanes were reallocated instead of reused")
	}

	// Steady-state recording on warmed lanes does not grow lane storage:
	// the only per-run allocation left is EndRun's copy of the times slice.
	allocs := testing.AllocsPerRun(10, func() { fillRun(rec, 2, 64) })
	if allocs > 1 {
		t.Errorf("steady-state traced run allocated %.0f times in the recorder, want <= 1", allocs)
	}

	// An exported view survives later runs untouched.
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	wantLen := tr.LaneLen(0)
	wantT1 := tr.lanes[0].T1[0]
	fillRun(rec, 2, 8)
	if tr.LaneLen(0) != wantLen || tr.lanes[0].T1[0] != wantT1 {
		t.Error("exported trace was mutated by a later run")
	}
	// And the post-export run produced its own, correct lanes.
	tr2, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr2.LaneLen(0) != 8 {
		t.Errorf("post-export run recorded %d events, want 8", tr2.LaneLen(0))
	}

	// A different rank count abandons the pool cleanly.
	fillRun(rec, 3, 4)
	tr3, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr3.NumLanes() != 3 || tr3.LaneLen(2) != 4 {
		t.Errorf("resized run recorded %d lanes / %d events", tr3.NumLanes(), tr3.LaneLen(2))
	}
}

package trace

import (
	"sort"

	"hbsp/internal/stats"
)

// This file holds the analysis passes on a merged trace: critical-path
// extraction (the chain of compute intervals and gating messages that
// determines the makespan), per-rank and per-superstep time breakdowns, and
// h-relation statistics. All passes are pure functions of the trace, so on a
// deterministic trace they are deterministic themselves.

// Category buckets blocked and busy time for the breakdowns.
type Category uint8

const (
	// CatCompute is local computation.
	CatCompute Category = iota
	// CatSend is sender-side injection overhead.
	CatSend
	// CatStraggler is receive-wait time spent before the gating message had
	// even left its sender: waiting for a peer that was running late.
	CatStraggler
	// CatLatency is receive-wait time after the gating message left its
	// sender: network latency, serialization and extraction-port time.
	CatLatency
	// CatPort is receive-wait time gated by the local extraction port (the
	// message had long arrived; back-to-back matches serialized it).
	CatPort
	// CatAck is send-wait time (injection-port drain and, in ack mode, the
	// returning acknowledgement).
	CatAck
	// CatAdvance is explicit clock alignment (AdvanceTo).
	CatAdvance
	// CatSkew is end-of-run idle: the gap between a rank's finish time and
	// the makespan.
	CatSkew
	numCategories
)

// Categories lists all categories in report order.
var Categories = []Category{CatCompute, CatSend, CatStraggler, CatLatency, CatPort, CatAck, CatAdvance, CatSkew}

// String names the category as the reports print it.
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatSend:
		return "send-overhead"
	case CatStraggler:
		return "straggler-wait"
	case CatLatency:
		return "latency-wait"
	case CatPort:
		return "port-wait"
	case CatAck:
		return "ack-wait"
	case CatAdvance:
		return "advance"
	case CatSkew:
		return "finish-skew"
	}
	return "unknown"
}

// classify splits one event's duration over the breakdown categories.
// Receive waits are split at the moment the gating message left its sender:
// before it the receiver was waiting on a straggling peer, after it on the
// network. The sender's injection end is looked up through the SendSeq link.
func (t *Trace) classify(ev *Event, add func(Category, float64)) {
	d := ev.Duration()
	if d <= 0 {
		return
	}
	switch ev.Kind {
	case KindCompute:
		add(CatCompute, d)
	case KindSend:
		add(CatSend, d)
	case KindSendWait:
		add(CatAck, d)
	case KindAdvance:
		add(CatAdvance, d)
	case KindRecvWait:
		if !ev.Gated {
			add(CatPort, d)
			return
		}
		sendEnd := ev.T0
		if ev.Peer >= 0 && int(ev.Peer) < len(t.Lanes) && ev.SendSeq >= 0 && int(ev.SendSeq) < len(t.Lanes[ev.Peer]) {
			sendEnd = t.Lanes[ev.Peer][ev.SendSeq].T1
		}
		straggle := sendEnd - ev.T0
		if straggle < 0 {
			straggle = 0
		}
		if straggle > d {
			straggle = d
		}
		add(CatStraggler, straggle)
		add(CatLatency, d-straggle)
	}
}

// RankBreakdown is one rank's wall-time attribution over the whole run.
type RankBreakdown struct {
	Rank   int
	Finish float64
	// ByCategory sums event durations per category; CatSkew is the gap to
	// the makespan, so the categories of a fully traced rank sum to the
	// makespan up to untracked zero-cost operations.
	ByCategory [numCategories]float64
}

// Total returns the sum over all categories except finish-skew.
func (b *RankBreakdown) Total() float64 {
	total := 0.0
	for c, v := range b.ByCategory {
		if Category(c) != CatSkew {
			total += v
		}
	}
	return total
}

// StepBreakdown aggregates one superstep bucket across all ranks.
type StepBreakdown struct {
	Step int
	// ByCategory sums the categories across every rank's events of the step.
	ByCategory [numCategories]float64
	// Boundary is the latest superstep-boundary mark of the step (zero when
	// the bucket has no marks, e.g. the trailing partial step).
	Boundary float64
	// Straggler is the rank with the latest boundary mark, -1 without marks.
	Straggler int
}

// Breakdown is the full time-attribution view of a trace.
type Breakdown struct {
	// PerRank holds one entry per rank, indexed by rank.
	PerRank []RankBreakdown
	// PerStep holds one entry per superstep bucket, indexed by step.
	PerStep []StepBreakdown
	// MakeSpan mirrors the trace's makespan.
	MakeSpan float64
}

// TotalByCategory sums a category across all ranks.
func (b *Breakdown) TotalByCategory(c Category) float64 {
	total := 0.0
	for i := range b.PerRank {
		total += b.PerRank[i].ByCategory[c]
	}
	return total
}

// Breakdown attributes every rank's wall time to the breakdown categories,
// overall and per superstep.
func (t *Trace) Breakdown() *Breakdown {
	b := &Breakdown{
		PerRank:  make([]RankBreakdown, len(t.Lanes)),
		PerStep:  make([]StepBreakdown, t.Steps()),
		MakeSpan: t.MakeSpan,
	}
	for s := range b.PerStep {
		b.PerStep[s].Step = s
		b.PerStep[s].Straggler = -1
	}
	for rank, lane := range t.Lanes {
		rb := &b.PerRank[rank]
		rb.Rank = rank
		if rank < len(t.Times) {
			rb.Finish = t.Times[rank]
		}
		rb.ByCategory[CatSkew] = t.MakeSpan - rb.Finish
		for i := range lane {
			ev := &lane[i]
			if ev.Kind == KindSuperstep {
				sb := &b.PerStep[ev.Step]
				if ev.T1 > sb.Boundary || sb.Straggler < 0 {
					sb.Boundary = ev.T1
					sb.Straggler = rank
				}
				continue
			}
			step := ev.Step
			t.classify(ev, func(c Category, d float64) {
				rb.ByCategory[c] += d
				b.PerStep[step].ByCategory[c] += d
			})
		}
	}
	return b
}

// PathHop is one rank residency on the critical path: criticality arrived on
// this rank (via the message described by ViaPeer/ViaTag for every hop after
// the first), stayed for [From, To], and left through the next hop's message.
type PathHop struct {
	Rank     int
	From, To float64
	// ViaPeer/ViaTag/ViaSize describe the gating message that moved
	// criticality onto this rank's successor... — for hop i > 0, the message
	// that carried criticality from Hops[i-1].Rank to this hop's Rank.
	ViaPeer int
	ViaTag  int
	ViaSize int
	// InFlight is the time the gating message spent between leaving ViaPeer
	// and completing this rank's receive (latency, serialization, ports).
	InFlight float64
	// Compute, Send and Wait attribute the residency's event time.
	Compute, Send, Wait float64
}

// CriticalPath is the gating chain of a trace.
type CriticalPath struct {
	// Hops lists the rank residencies in time order; the last hop ends at
	// End on the rank that set the makespan.
	Hops []PathHop
	// End is the virtual end time of the chain. For a fully traced run it
	// equals the makespan bit-for-bit (the final clock advance of the
	// slowest rank is itself a recorded event).
	End float64
	// Rank is the makespan-setting rank the walk started from.
	Rank int
	// Compute, Send, Wait and InFlight total the chain's time by origin.
	Compute, Send, Wait, InFlight float64
	// Slack is, per rank, the distance of the rank's finish time from the
	// makespan (zero for the critical rank).
	Slack []float64
}

// CriticalPath extracts the chain of compute intervals and gating messages
// that determines the makespan: starting from the last event of the slowest
// rank it walks backwards; a receive wait that was gated by its message's
// arrival hops to the matching send event on the sender's lane, every other
// event chains to its on-rank predecessor (per-rank events are contiguous in
// time, since every clock advance is recorded). The walk runs once per
// Trace; repeated calls return the same memoized chain.
func (t *Trace) CriticalPath() *CriticalPath {
	t.cpOnce.Do(func() { t.cp = t.criticalPath() })
	return t.cp
}

func (t *Trace) criticalPath() *CriticalPath {
	cp := &CriticalPath{Rank: -1, Slack: make([]float64, len(t.Lanes))}
	for rank, ft := range t.Times {
		cp.Slack[rank] = t.MakeSpan - ft
		if cp.Rank < 0 || ft > t.Times[cp.Rank] {
			cp.Rank = rank
		}
	}
	if cp.Rank < 0 || len(t.Lanes[cp.Rank]) == 0 {
		return cp
	}

	cur := cp.Rank
	i := len(t.Lanes[cur]) - 1
	cp.End = t.Lanes[cur][i].T1
	hop := PathHop{Rank: cur, To: cp.End, ViaPeer: -1, ViaTag: -1}
	var rev []PathHop
	for i >= 0 {
		ev := &t.Lanes[cur][i]
		if ev.T0 == ev.T1 { // boundary marks carry no time
			i--
			continue
		}
		if ev.Kind == KindRecvWait && ev.Gated && ev.Peer >= 0 && ev.SendSeq >= 0 &&
			int(ev.Peer) < len(t.Lanes) && int(ev.SendSeq) < len(t.Lanes[ev.Peer]) {
			send := &t.Lanes[ev.Peer][ev.SendSeq]
			// The residency on cur starts where the gating wait ends its
			// in-flight portion; the chain segment [send.T1, ev.T1] is the
			// message in flight (latency, transfer, ports).
			hop.From = ev.T1
			hop.ViaPeer = int(ev.Peer)
			hop.ViaTag = int(ev.Tag)
			hop.ViaSize = int(ev.Size)
			hop.InFlight = ev.T1 - send.T1
			cp.InFlight += hop.InFlight
			rev = append(rev, hop)
			cur = int(ev.Peer)
			i = int(ev.SendSeq)
			hop = PathHop{Rank: cur, To: send.T1, ViaPeer: -1, ViaTag: -1}
			continue
		}
		switch ev.Kind {
		case KindCompute:
			hop.Compute += ev.Duration()
			cp.Compute += ev.Duration()
		case KindSend:
			hop.Send += ev.Duration()
			cp.Send += ev.Duration()
		default:
			hop.Wait += ev.Duration()
			cp.Wait += ev.Duration()
		}
		hop.From = ev.T0
		i--
	}
	rev = append(rev, hop)
	cp.Hops = make([]PathHop, 0, len(rev))
	for k := len(rev) - 1; k >= 0; k-- {
		cp.Hops = append(cp.Hops, rev[k])
	}
	return cp
}

// HRelation summarizes the communication relation of one superstep bucket:
// the classic h (the maximum, over ranks, of the larger of in- and out-bytes)
// plus sample statistics of the per-rank volumes, computed with
// internal/stats.
type HRelation struct {
	Step int
	// HBytes and HMessages are max over ranks of max(in, out).
	HBytes    int64
	HMessages int
	// Messages and Bytes total the step's traffic.
	Messages int
	Bytes    int64
	// MeanOutBytes / MedianOutBytes / MaxOutBytes summarize per-rank sent
	// volume; MaxOutRank is the argmax.
	MeanOutBytes   float64
	MedianOutBytes float64
	MaxOutBytes    int64
	MaxOutRank     int
}

// HRelations computes per-superstep h-relation statistics from the send
// events (attributed to the sender's superstep).
func (t *Trace) HRelations() []HRelation {
	steps := t.Steps()
	outB := make([][]int64, steps)
	inB := make([][]int64, steps)
	outM := make([][]int, steps)
	inM := make([][]int, steps)
	for s := range outB {
		outB[s] = make([]int64, len(t.Lanes))
		inB[s] = make([]int64, len(t.Lanes))
		outM[s] = make([]int, len(t.Lanes))
		inM[s] = make([]int, len(t.Lanes))
	}
	for rank, lane := range t.Lanes {
		for i := range lane {
			ev := &lane[i]
			if ev.Kind != KindSend {
				continue
			}
			s := int(ev.Step)
			outB[s][rank] += int64(ev.Size)
			outM[s][rank]++
			if ev.Peer >= 0 && int(ev.Peer) < len(t.Lanes) {
				inB[s][ev.Peer] += int64(ev.Size)
				inM[s][ev.Peer]++
			}
		}
	}
	out := make([]HRelation, steps)
	sample := make([]float64, len(t.Lanes))
	for s := range out {
		h := &out[s]
		h.Step = s
		h.MaxOutRank = -1
		for r := range t.Lanes {
			ob, ib := outB[s][r], inB[s][r]
			om, im := outM[s][r], inM[s][r]
			h.Bytes += ob
			h.Messages += om
			if m := max(ob, ib); m > h.HBytes {
				h.HBytes = m
			}
			if m := max(om, im); m > h.HMessages {
				h.HMessages = m
			}
			if ob > h.MaxOutBytes || h.MaxOutRank < 0 {
				h.MaxOutBytes = ob
				h.MaxOutRank = r
			}
			sample[r] = float64(ob)
		}
		h.MeanOutBytes, _ = stats.Mean(sample)
		h.MedianOutBytes, _ = stats.Median(sample)
	}
	return out
}

// Straggler pairs a rank with its end-of-run slack, for ranking.
type Straggler struct {
	Rank  int
	Slack float64
}

// Stragglers returns the ranks ordered by increasing slack (the critical
// rank first), ties broken by rank.
func (t *Trace) Stragglers() []Straggler {
	out := make([]Straggler, len(t.Lanes))
	for rank := range t.Lanes {
		s := Straggler{Rank: rank, Slack: t.MakeSpan}
		if rank < len(t.Times) {
			s.Slack = t.MakeSpan - t.Times[rank]
		}
		out[rank] = s
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

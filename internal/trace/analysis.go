package trace

import (
	"sort"

	"hbsp/internal/stats"
)

// This file holds the analysis passes over a recorded run: critical-path
// extraction (the chain of compute intervals and gating messages that
// determines the makespan), per-rank and per-superstep time breakdowns, and
// h-relation statistics. Each pass is a streaming consumer of the Source
// interface — it reads one lane's columns at a time and never materializes a
// merged event slice — so the same code analyzes an in-RAM Trace and a
// spill file of a P=65536 run. All passes are pure functions of the run, so
// on a deterministic trace they are deterministic themselves; they visit
// lanes in rank-major order, which also pins the floating-point accumulation
// order, so a streaming pass is bit-identical to the materialized pass it
// replaced.

// Category buckets blocked and busy time for the breakdowns.
type Category uint8

const (
	// CatCompute is local computation.
	CatCompute Category = iota
	// CatSend is sender-side injection overhead.
	CatSend
	// CatStraggler is receive-wait time spent before the gating message had
	// even left its sender: waiting for a peer that was running late.
	CatStraggler
	// CatLatency is receive-wait time after the gating message left its
	// sender: network latency, serialization and extraction-port time.
	CatLatency
	// CatPort is receive-wait time gated by the local extraction port (the
	// message had long arrived; back-to-back matches serialized it).
	CatPort
	// CatAck is send-wait time (injection-port drain and, in ack mode, the
	// returning acknowledgement).
	CatAck
	// CatAdvance is explicit clock alignment (AdvanceTo).
	CatAdvance
	// CatSkew is end-of-run idle: the gap between a rank's finish time and
	// the makespan.
	CatSkew
	numCategories
)

// Categories lists all categories in report order.
var Categories = []Category{CatCompute, CatSend, CatStraggler, CatLatency, CatPort, CatAck, CatAdvance, CatSkew}

// String names the category as the reports print it.
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatSend:
		return "send-overhead"
	case CatStraggler:
		return "straggler-wait"
	case CatLatency:
		return "latency-wait"
	case CatPort:
		return "port-wait"
	case CatAck:
		return "ack-wait"
	case CatAdvance:
		return "advance"
	case CatSkew:
		return "finish-skew"
	}
	return "unknown"
}

// linkValid reports whether event i of lane c carries a resolvable link to
// the send event in its peer's lane — the condition both the breakdown split
// and the critical-path hop require.
func linkValid(src Source, c *Cols, i int) bool {
	peer, seq := c.Peer[i], c.SendSeq[i]
	return peer >= 0 && int(peer) < src.NumLanes() && seq >= 0 && int(seq) < src.LaneLen(int(peer))
}

// classifyCols splits event i's duration over the breakdown categories.
// Receive waits are split at the moment the gating message left its sender:
// before it the receiver was waiting on a straggling peer, after it on the
// network. The sender's injection end rides on the event itself (SendEnd),
// stamped from the message at record time, so the split reads only the
// receiver's own lane.
func classifyCols(src Source, c *Cols, i int, add func(Category, float64)) {
	d := c.T1[i] - c.T0[i]
	if d <= 0 {
		return
	}
	switch c.Kind[i] {
	case KindCompute:
		add(CatCompute, d)
	case KindSend:
		add(CatSend, d)
	case KindSendWait:
		add(CatAck, d)
	case KindAdvance:
		add(CatAdvance, d)
	case KindRecvWait:
		if c.Flags[i]&flagGated == 0 {
			add(CatPort, d)
			return
		}
		sendEnd := c.T0[i]
		if linkValid(src, c, i) {
			sendEnd = c.SendEnd[i]
		}
		straggle := sendEnd - c.T0[i]
		if straggle < 0 {
			straggle = 0
		}
		if straggle > d {
			straggle = d
		}
		add(CatStraggler, straggle)
		add(CatLatency, d-straggle)
	}
}

// RankBreakdown is one rank's wall-time attribution over the whole run.
type RankBreakdown struct {
	Rank   int
	Finish float64
	// ByCategory sums event durations per category; CatSkew is the gap to
	// the makespan, so the categories of a fully traced rank sum to the
	// makespan up to untracked zero-cost operations.
	ByCategory [numCategories]float64
}

// Total returns the sum over all categories except finish-skew.
func (b *RankBreakdown) Total() float64 {
	total := 0.0
	for c, v := range b.ByCategory {
		if Category(c) != CatSkew {
			total += v
		}
	}
	return total
}

// StepBreakdown aggregates one superstep bucket across all ranks.
type StepBreakdown struct {
	Step int
	// ByCategory sums the categories across every rank's events of the step.
	ByCategory [numCategories]float64
	// Boundary is the latest superstep-boundary mark of the step (zero when
	// the bucket has no marks, e.g. the trailing partial step).
	Boundary float64
	// Straggler is the rank with the latest boundary mark, -1 without marks.
	Straggler int
}

// Breakdown is the full time-attribution view of a trace.
type Breakdown struct {
	// PerRank holds one entry per rank, indexed by rank.
	PerRank []RankBreakdown
	// PerStep holds one entry per superstep bucket, indexed by step.
	PerStep []StepBreakdown
	// MakeSpan mirrors the trace's makespan.
	MakeSpan float64
}

// TotalByCategory sums a category across all ranks.
func (b *Breakdown) TotalByCategory(c Category) float64 {
	total := 0.0
	for i := range b.PerRank {
		total += b.PerRank[i].ByCategory[c]
	}
	return total
}

// Breakdown attributes every rank's wall time to the breakdown categories,
// overall and per superstep.
func (t *Trace) Breakdown() *Breakdown {
	b, _ := BreakdownOf(t) // the in-RAM source cannot fail
	return b
}

// BreakdownOf computes the time attribution of any source, streaming one
// lane at a time in rank order.
func BreakdownOf(src Source) (*Breakdown, error) {
	sum := src.RunSummary()
	b := &Breakdown{
		PerRank:  make([]RankBreakdown, src.NumLanes()),
		PerStep:  make([]StepBreakdown, sum.Steps),
		MakeSpan: sum.MakeSpan,
	}
	for s := range b.PerStep {
		b.PerStep[s].Step = s
		b.PerStep[s].Straggler = -1
	}
	for rank := 0; rank < src.NumLanes(); rank++ {
		c, err := src.LaneCols(rank)
		if err != nil {
			return nil, err
		}
		rb := &b.PerRank[rank]
		rb.Rank = rank
		if rank < len(sum.Times) {
			rb.Finish = sum.Times[rank]
		}
		rb.ByCategory[CatSkew] = sum.MakeSpan - rb.Finish
		for i, n := 0, c.Len(); i < n; i++ {
			if c.Kind[i] == KindSuperstep {
				sb := &b.PerStep[c.Step[i]]
				if c.T1[i] > sb.Boundary || sb.Straggler < 0 {
					sb.Boundary = c.T1[i]
					sb.Straggler = rank
				}
				continue
			}
			step := c.Step[i]
			classifyCols(src, c, i, func(cat Category, d float64) {
				rb.ByCategory[cat] += d
				b.PerStep[step].ByCategory[cat] += d
			})
		}
	}
	return b, nil
}

// PathHop is one rank residency on the critical path: criticality arrived on
// this rank (via the message described by ViaPeer/ViaTag for every hop after
// the first), stayed for [From, To], and left through the next hop's message.
type PathHop struct {
	Rank     int
	From, To float64
	// ViaPeer/ViaTag/ViaSize describe the gating message that moved
	// criticality onto this rank's successor... — for hop i > 0, the message
	// that carried criticality from Hops[i-1].Rank to this hop's Rank.
	ViaPeer int
	ViaTag  int
	ViaSize int
	// InFlight is the time the gating message spent between leaving ViaPeer
	// and completing this rank's receive (latency, serialization, ports).
	InFlight float64
	// Compute, Send and Wait attribute the residency's event time.
	Compute, Send, Wait float64
}

// CriticalPath is the gating chain of a trace.
type CriticalPath struct {
	// Hops lists the rank residencies in time order; the last hop ends at
	// End on the rank that set the makespan.
	Hops []PathHop
	// End is the virtual end time of the chain. For a fully traced run it
	// equals the makespan bit-for-bit (the final clock advance of the
	// slowest rank is itself a recorded event).
	End float64
	// Rank is the makespan-setting rank the walk started from.
	Rank int
	// Compute, Send, Wait and InFlight total the chain's time by origin.
	Compute, Send, Wait, InFlight float64
	// Slack is, per rank, the distance of the rank's finish time from the
	// makespan (zero for the critical rank).
	Slack []float64
}

// CriticalPath extracts the chain of compute intervals and gating messages
// that determines the makespan: starting from the last event of the slowest
// rank it walks backwards; a receive wait that was gated by its message's
// arrival hops to the matching send event on the sender's lane, every other
// event chains to its on-rank predecessor (per-rank events are contiguous in
// time, since every clock advance is recorded). The walk runs once per
// Trace; repeated calls return the same memoized chain.
func (t *Trace) CriticalPath() *CriticalPath {
	t.cpOnce.Do(func() { t.cp, _ = CriticalPathOf(t) })
	return t.cp
}

// CriticalPathOf runs the backward walk over any source. The walk touches
// one lane at a time (the SendEnd stamp makes receive waits self-contained,
// and a hop switches lanes wholesale), so a spill-backed walk stays within
// the reader's small decode cache.
func CriticalPathOf(src Source) (*CriticalPath, error) {
	sum := src.RunSummary()
	cp := &CriticalPath{Rank: -1, Slack: make([]float64, src.NumLanes())}
	for rank, ft := range sum.Times {
		cp.Slack[rank] = sum.MakeSpan - ft
		if cp.Rank < 0 || ft > sum.Times[cp.Rank] {
			cp.Rank = rank
		}
	}
	if cp.Rank < 0 || src.LaneLen(cp.Rank) == 0 {
		return cp, nil
	}

	cur := cp.Rank
	c, err := src.LaneCols(cur)
	if err != nil {
		return nil, err
	}
	i := c.Len() - 1
	cp.End = c.T1[i]
	hop := PathHop{Rank: cur, To: cp.End, ViaPeer: -1, ViaTag: -1}
	var rev []PathHop
	for i >= 0 {
		if c.T0[i] == c.T1[i] { // boundary marks carry no time
			i--
			continue
		}
		if c.Kind[i] == KindRecvWait && c.Flags[i]&flagGated != 0 && linkValid(src, c, i) {
			// The residency on cur starts where the gating wait ends its
			// in-flight portion; the chain segment [sendEnd, T1] is the
			// message in flight (latency, transfer, ports).
			hop.From = c.T1[i]
			hop.ViaPeer = int(c.Peer[i])
			hop.ViaTag = int(c.Tag[i])
			hop.ViaSize = int(c.Size[i])
			hop.InFlight = c.T1[i] - c.SendEnd[i]
			cp.InFlight += hop.InFlight
			rev = append(rev, hop)
			cur = int(c.Peer[i])
			nexti := int(c.SendSeq[i])
			if c, err = src.LaneCols(cur); err != nil {
				return nil, err
			}
			i = nexti
			hop = PathHop{Rank: cur, To: c.T1[i], ViaPeer: -1, ViaTag: -1}
			continue
		}
		d := c.T1[i] - c.T0[i]
		switch c.Kind[i] {
		case KindCompute:
			hop.Compute += d
			cp.Compute += d
		case KindSend:
			hop.Send += d
			cp.Send += d
		default:
			hop.Wait += d
			cp.Wait += d
		}
		hop.From = c.T0[i]
		i--
	}
	rev = append(rev, hop)
	cp.Hops = make([]PathHop, 0, len(rev))
	for k := len(rev) - 1; k >= 0; k-- {
		cp.Hops = append(cp.Hops, rev[k])
	}
	return cp, nil
}

// HRelation summarizes the communication relation of one superstep bucket:
// the classic h (the maximum, over ranks, of the larger of in- and out-bytes)
// plus sample statistics of the per-rank volumes, computed with
// internal/stats.
type HRelation struct {
	Step int
	// HBytes and HMessages are max over ranks of max(in, out).
	HBytes    int64
	HMessages int
	// Messages and Bytes total the step's traffic.
	Messages int
	Bytes    int64
	// MeanOutBytes / MedianOutBytes / MaxOutBytes summarize per-rank sent
	// volume; MaxOutRank is the argmax.
	MeanOutBytes   float64
	MedianOutBytes float64
	MaxOutBytes    int64
	MaxOutRank     int
}

// HRelations computes per-superstep h-relation statistics from the send
// events (attributed to the sender's superstep).
func (t *Trace) HRelations() []HRelation {
	hrs, _ := HRelationsOf(t) // the in-RAM source cannot fail
	return hrs
}

// HRelationsOf computes the h-relation statistics of any source in one
// streaming pass over the send events of each lane; only the O(steps ×
// ranks) volume accumulators are held.
func HRelationsOf(src Source) ([]HRelation, error) {
	sum := src.RunSummary()
	steps := sum.Steps
	nl := src.NumLanes()
	outB := make([][]int64, steps)
	inB := make([][]int64, steps)
	outM := make([][]int, steps)
	inM := make([][]int, steps)
	for s := range outB {
		outB[s] = make([]int64, nl)
		inB[s] = make([]int64, nl)
		outM[s] = make([]int, nl)
		inM[s] = make([]int, nl)
	}
	for rank := 0; rank < nl; rank++ {
		c, err := src.LaneCols(rank)
		if err != nil {
			return nil, err
		}
		for i, n := 0, c.Len(); i < n; i++ {
			if c.Kind[i] != KindSend {
				continue
			}
			s := int(c.Step[i])
			outB[s][rank] += int64(c.Size[i])
			outM[s][rank]++
			if peer := c.Peer[i]; peer >= 0 && int(peer) < nl {
				inB[s][peer] += int64(c.Size[i])
				inM[s][peer]++
			}
		}
	}
	out := make([]HRelation, steps)
	sample := make([]float64, nl)
	for s := range out {
		h := &out[s]
		h.Step = s
		h.MaxOutRank = -1
		for r := 0; r < nl; r++ {
			ob, ib := outB[s][r], inB[s][r]
			om, im := outM[s][r], inM[s][r]
			h.Bytes += ob
			h.Messages += om
			if m := max(ob, ib); m > h.HBytes {
				h.HBytes = m
			}
			if m := max(om, im); m > h.HMessages {
				h.HMessages = m
			}
			if ob > h.MaxOutBytes || h.MaxOutRank < 0 {
				h.MaxOutBytes = ob
				h.MaxOutRank = r
			}
			sample[r] = float64(ob)
		}
		h.MeanOutBytes, _ = stats.Mean(sample)
		h.MedianOutBytes, _ = stats.Median(sample)
	}
	return out, nil
}

// Straggler pairs a rank with its end-of-run slack, for ranking.
type Straggler struct {
	Rank  int
	Slack float64
}

// Stragglers returns the ranks ordered by increasing slack (the critical
// rank first), ties broken by rank.
func (t *Trace) Stragglers() []Straggler { return StragglersOf(t) }

// StragglersOf ranks any source's lanes by slack; it reads only the run
// summary, never the lanes.
func StragglersOf(src Source) []Straggler {
	sum := src.RunSummary()
	out := make([]Straggler, src.NumLanes())
	for rank := range out {
		s := Straggler{Rank: rank, Slack: sum.MakeSpan}
		if rank < len(sum.Times) {
			s.Slack = sum.MakeSpan - sum.Times[rank]
		}
		out[rank] = s
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Slack != out[j].Slack {
			return out[i].Slack < out[j].Slack
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// TopSlack returns the k ranks with the largest slack (the worst
// stragglers), slack descending, ties broken by rank, without sorting all P
// ranks: a size-k selection over the summary times.
func TopSlack(src Source, k int) []Straggler {
	sum := src.RunSummary()
	nl := src.NumLanes()
	if k > nl {
		k = nl
	}
	if k <= 0 {
		return nil
	}
	// worse reports whether a should rank above b (more slack, then lower
	// rank).
	worse := func(a, b Straggler) bool {
		if a.Slack != b.Slack {
			return a.Slack > b.Slack
		}
		return a.Rank < b.Rank
	}
	top := make([]Straggler, 0, k)
	for rank := 0; rank < nl; rank++ {
		s := Straggler{Rank: rank, Slack: sum.MakeSpan}
		if rank < len(sum.Times) {
			s.Slack = sum.MakeSpan - sum.Times[rank]
		}
		if len(top) == k && !worse(s, top[k-1]) {
			continue
		}
		i := sort.Search(len(top), func(i int) bool { return worse(s, top[i]) })
		if len(top) < k {
			top = append(top, Straggler{})
		}
		copy(top[i+1:], top[i:])
		top[i] = s
	}
	return top
}

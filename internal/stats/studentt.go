package stats

import (
	"errors"
	"math"
)

// The thesis' kernel-rate benchmark filters outliers by requiring every
// sample-distribution mean to fall inside a 95 % Student-t confidence
// interval, approximating the critical point by trapezoid integration of the
// t probability density. This file reproduces that machinery with the Go
// standard library only (math.Gamma plays the role of C's tgamma).

// tPDF is the probability density of the Student-t distribution with nu
// degrees of freedom.
func tPDF(x, nu float64) float64 {
	return math.Gamma((nu+1)/2) / (math.Sqrt(nu*math.Pi) * math.Gamma(nu/2)) *
		math.Pow(1+x*x/nu, -(nu+1)/2)
}

// TCDF returns the cumulative distribution function of the Student-t
// distribution with nu degrees of freedom, evaluated by trapezoid integration
// with the thesis' 1e-4 step resolution.
func TCDF(x, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	neg := false
	if x < 0 {
		neg = true
		x = -x
	}
	const step = 1e-4
	// Integrate the density from 0 to x with the trapezoid rule.
	area := 0.0
	prev := tPDF(0, nu)
	for t := step; t <= x; t += step {
		cur := tPDF(t, nu)
		area += (prev + cur) / 2 * step
		prev = cur
	}
	// Final partial interval up to x.
	if rem := math.Mod(x, step); rem > 0 {
		cur := tPDF(x, nu)
		area += (prev + cur) / 2 * rem
	}
	p := 0.5 + area
	if neg {
		p = 1 - p
	}
	return p
}

// TCritical returns the two-sided critical value t* with nu degrees of
// freedom and the given confidence level (e.g. 0.95), i.e. the point where
// P(-t* <= T <= t*) = confidence. The inverse is found by bisection over the
// trapezoid-integrated CDF, mirroring the thesis' linear-interpolation
// refinement below the integration resolution.
func TCritical(nu, confidence float64) (float64, error) {
	if nu <= 0 {
		return 0, errors.New("stats: degrees of freedom must be positive")
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, errors.New("stats: confidence must be in (0,1)")
	}
	target := 0.5 + confidence/2
	lo, hi := 0.0, 1.0
	for TCDF(hi, nu) < target {
		hi *= 2
		if hi > 1e6 {
			return 0, errors.New("stats: critical value out of range")
		}
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < target {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-7 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// ConfidenceInterval returns the half-width of the two-sided Student-t
// confidence interval for the mean of xs at the given confidence level.
func ConfidenceInterval(xs []float64, confidence float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficient
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	tcrit, err := TCritical(float64(len(xs)-1), confidence)
	if err != nil {
		return 0, err
	}
	return tcrit * sd / math.Sqrt(float64(len(xs))), nil
}

// PredictionInterval returns the half-width of the two-sided Student-t
// prediction interval for a single new observation drawn from the same
// population as xs. This is the acceptance band the outlier filter applies to
// individual sample means: a value farther from the grand mean than this is
// re-collected.
func PredictionInterval(xs []float64, confidence float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficient
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	tcrit, err := TCritical(float64(len(xs)-1), confidence)
	if err != nil {
		return 0, err
	}
	return tcrit * sd * math.Sqrt(1+1/float64(len(xs))), nil
}

// OutlierFilter implements the thesis' re-sampling rule: sample means outside
// the confidence interval around the grand mean are treated as outliers and
// must be re-collected until none remain.
type OutlierFilter struct {
	// Confidence is the two-sided confidence level, 0.95 in the thesis.
	Confidence float64
	// MaxRounds bounds the number of re-sampling rounds so a noisy source
	// cannot loop forever; the thesis notes that experiments consistently
	// needing two or more re-runs indicate an unrepresentative setup.
	MaxRounds int
}

// DefaultOutlierFilter is the 95 % filter the thesis uses with 30 samples.
func DefaultOutlierFilter() OutlierFilter {
	return OutlierFilter{Confidence: 0.95, MaxRounds: 16}
}

// FilterResult reports the outcome of a Collect run.
type FilterResult struct {
	// Values are the accepted sample values.
	Values []float64
	// Rounds is the number of re-sampling rounds performed (0 means the
	// initial sample was already free of outliers).
	Rounds int
	// Resampled is the total number of values that were re-collected.
	Resampled int
}

// Collect draws n samples from the sampler and repeatedly re-collects values
// whose distance from the mean exceeds the confidence-interval half-width,
// until no outliers remain or MaxRounds is exhausted.
func (f OutlierFilter) Collect(n int, sample func() float64) (FilterResult, error) {
	if n < 2 {
		return FilterResult{}, ErrInsufficient
	}
	conf := f.Confidence
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	maxRounds := f.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 16
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = sample()
	}
	res := FilterResult{}
	for round := 0; round < maxRounds; round++ {
		mean, _ := Mean(values)
		half, err := PredictionInterval(values, conf)
		if err != nil {
			return res, err
		}
		outliers := 0
		for i, v := range values {
			if math.Abs(v-mean) > half {
				values[i] = sample()
				outliers++
			}
		}
		res.Rounds = round
		res.Resampled += outliers
		if outliers == 0 {
			break
		}
	}
	res.Values = values
	return res, nil
}

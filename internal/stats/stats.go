// Package stats implements the sample statistics the thesis' benchmarking
// procedures rely on: medians, means and standard deviations, least-squares
// linear regression, Student-t confidence intervals computed by numerical
// integration of the t density (the thesis uses the trapezoid method with the
// C tgamma function), and the 95 % outlier re-sampling filter used to
// stabilise computation-rate benchmarks.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrInsufficient is returned when a statistic requires more data points than
// were provided (e.g. regression over a single point).
var ErrInsufficient = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrInsufficient
	}
	m, _ := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Median returns the median of xs without modifying the input slice. The
// thesis reports barrier and kernel timings as medians to suppress noise.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2], nil
	}
	// Average the two central order statistics without overflowing when they
	// lie near the float64 extremes, and clamp against rounding at the
	// subnormal end so the median always lies between them.
	lo, hi := tmp[n/2-1], tmp[n/2]
	mid := lo/2 + hi/2
	if mid < lo {
		mid = lo
	}
	if mid > hi {
		mid = hi
	}
	return mid, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	if len(tmp) == 1 {
		return tmp[0], nil
	}
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo], nil
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac, nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Summary bundles the descriptive statistics the benchmark reports carry.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mean, _ := Mean(xs)
	med, _ := Median(xs)
	sd := 0.0
	if len(xs) > 1 {
		sd, _ = StdDev(xs)
	}
	min, _ := Min(xs)
	max, _ := Max(xs)
	return Summary{N: len(xs), Mean: mean, Median: med, StdDev: sd, Min: min, Max: max}, nil
}

// Regression is a least-squares fit y = Intercept + Gradient·x. The thesis
// extracts computation rate from the gradient of time vs. iteration count,
// and latency/bandwidth from the intercept/gradient of time vs. message size.
type Regression struct {
	Gradient  float64
	Intercept float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// LinearFit computes the least-squares regression line through (xs, ys).
func LinearFit(xs, ys []float64) (Regression, error) {
	if len(xs) != len(ys) {
		return Regression{}, errors.New("stats: x/y length mismatch")
	}
	if len(xs) < 2 {
		return Regression{}, ErrInsufficient
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Regression{}, errors.New("stats: degenerate x values (zero variance)")
	}
	grad := (n*sxy - sx*sy) / den
	icept := (sy - grad*sx) / n
	// Coefficient of determination.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range xs {
		pred := icept + grad*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Regression{Gradient: grad, Intercept: icept, R2: r2}, nil
}

// Predict evaluates the regression line at x.
func (r Regression) Predict(x float64) float64 {
	return r.Intercept + r.Gradient*x
}

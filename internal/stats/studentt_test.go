package stats

import (
	"math"
	"testing"
)

func TestTCDFSymmetry(t *testing.T) {
	if got := TCDF(0, 10); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("TCDF(0) = %v, want 0.5", got)
	}
	p := TCDF(1.5, 7)
	q := TCDF(-1.5, 7)
	if math.Abs(p+q-1) > 1e-6 {
		t.Fatalf("symmetry violated: %v + %v != 1", p, q)
	}
	if p <= 0.5 || p >= 1 {
		t.Fatalf("TCDF(1.5, 7) = %v out of (0.5, 1)", p)
	}
}

func TestTCDFMonotone(t *testing.T) {
	prev := 0.0
	for _, x := range []float64{-3, -1, 0, 0.5, 1, 2, 4} {
		p := TCDF(x, 5)
		if p < prev {
			t.Fatalf("TCDF not monotone at %v: %v < %v", x, p, prev)
		}
		prev = p
	}
}

func TestTCriticalKnownValues(t *testing.T) {
	// Textbook two-sided 95 % critical values.
	cases := []struct {
		nu   float64
		want float64
	}{
		{1, 12.706},
		{5, 2.571},
		{10, 2.228},
		{29, 2.045},
		{100, 1.984},
	}
	for _, c := range cases {
		got, err := TCritical(c.nu, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("TCritical(nu=%v) = %v, want ~%v", c.nu, got, c.want)
		}
	}
}

func TestTCriticalErrors(t *testing.T) {
	if _, err := TCritical(0, 0.95); err == nil {
		t.Fatal("nu=0 should fail")
	}
	if _, err := TCritical(5, 1.5); err == nil {
		t.Fatal("confidence > 1 should fail")
	}
}

func TestConfidenceAndPredictionIntervals(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1}
	ci, err := ConfidenceInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := PredictionInterval(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci <= 0 || pi <= 0 {
		t.Fatalf("intervals must be positive: ci=%v pi=%v", ci, pi)
	}
	if pi <= ci {
		t.Fatalf("prediction interval (%v) must exceed mean CI (%v)", pi, ci)
	}
	if _, err := ConfidenceInterval([]float64{1}, 0.95); err != ErrInsufficient {
		t.Fatalf("single-sample CI err = %v", err)
	}
}

func TestOutlierFilterCleanData(t *testing.T) {
	i := 0
	vals := []float64{10, 10.1, 9.9, 10.05, 9.95, 10.02}
	res, err := DefaultOutlierFilter().Collect(len(vals), func() float64 {
		v := vals[i%len(vals)]
		i++
		return v
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resampled != 0 {
		t.Fatalf("clean data should not be resampled, got %d", res.Resampled)
	}
	if len(res.Values) != len(vals) {
		t.Fatalf("got %d values", len(res.Values))
	}
}

func TestOutlierFilterReplacesSpike(t *testing.T) {
	// The thesis collects 30 samples; the initial batch contains one gross
	// outlier (a descheduled run), and re-collected draws are clean.
	const n = 30
	i := 0
	sample := func() float64 {
		i++
		if i == 5 {
			return 500 // the spike, only in the initial batch
		}
		return 10 + 0.01*float64(i%7)
	}
	res, err := DefaultOutlierFilter().Collect(n, sample)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resampled == 0 {
		t.Fatal("spike should have been resampled")
	}
	for _, v := range res.Values {
		if v > 100 {
			t.Fatalf("spike survived filtering: %v", v)
		}
	}
}

func TestOutlierFilterInsufficient(t *testing.T) {
	if _, err := DefaultOutlierFilter().Collect(1, func() float64 { return 1 }); err != ErrInsufficient {
		t.Fatalf("err = %v", err)
	}
}

func TestOutlierFilterDefaultsApplied(t *testing.T) {
	// Zero-valued filter falls back to 95 % / 16 rounds and still works.
	f := OutlierFilter{}
	res, err := f.Collect(4, func() float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("got %d values", len(res.Values))
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMedianBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Fatalf("Mean = %v, want 4", m)
	}
	med, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	if med != 3 {
		t.Fatalf("Median = %v, want 3", med)
	}
	med2, _ := Median([]float64{1, 2, 3, 4})
	if med2 != 2.5 {
		t.Fatalf("even Median = %v, want 2.5", med2)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestEmptyAndInsufficientErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v", err)
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Fatalf("Median(nil) err = %v", err)
	}
	if _, err := Variance([]float64{1}); err != ErrInsufficient {
		t.Fatalf("Variance single err = %v", err)
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err != ErrInsufficient {
		t.Fatalf("LinearFit single err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v", err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v", err)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v", err)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Fatalf("Quantile(nil) err = %v", err)
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Fatal("Quantile out of range should fail")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-4.571428571428571) > 1e-12 {
		t.Fatalf("Variance = %v", v)
	}
	sd, _ := StdDev(xs)
	if math.Abs(sd-math.Sqrt(v)) > 1e-12 {
		t.Fatalf("StdDev = %v", sd)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil || q != 3 {
		t.Fatalf("Quantile(0.5) = %v, %v", q, err)
	}
	q, _ = Quantile(xs, 0)
	if q != 1 {
		t.Fatalf("Quantile(0) = %v", q)
	}
	q, _ = Quantile(xs, 1)
	if q != 5 {
		t.Fatalf("Quantile(1) = %v", q)
	}
	q, _ = Quantile(xs, 0.25)
	if q != 2 {
		t.Fatalf("Quantile(0.25) = %v", q)
	}
	q, _ = Quantile([]float64{7}, 0.9)
	if q != 7 {
		t.Fatalf("Quantile single = %v", q)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Mean != 2.5 || s.Median != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("Summary = %+v", s)
	}
	single, err := Summarize([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if single.StdDev != 0 || single.Mean != 5 {
		t.Fatalf("single Summary = %+v", single)
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	r, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Gradient-2) > 1e-12 || math.Abs(r.Intercept-3) > 1e-12 {
		t.Fatalf("fit = %+v", r)
	}
	if math.Abs(r.R2-1) > 1e-12 {
		t.Fatalf("R2 = %v, want 1", r.R2)
	}
	if math.Abs(r.Predict(10)-23) > 1e-12 {
		t.Fatalf("Predict(10) = %v", r.Predict(10))
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x should fail")
	}
}

// Property: a constant shift of the data shifts the mean by the same amount
// and leaves the standard deviation unchanged.
func TestMeanShiftProperty(t *testing.T) {
	f := func(raw [8]float64, shiftRaw float64) bool {
		shift := math.Mod(shiftRaw, 1000)
		if math.IsNaN(shift) {
			shift = 1
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Mod(v, 1000)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs = append(xs, v)
		}
		shifted := make([]float64, len(xs))
		for i, v := range xs {
			shifted[i] = v + shift
		}
		m1, _ := Mean(xs)
		m2, _ := Mean(shifted)
		s1, _ := StdDev(xs)
		s2, _ := StdDev(shifted)
		return math.Abs((m2-m1)-shift) < 1e-6 && math.Abs(s1-s2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the median lies between the minimum and maximum.
func TestMedianBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		med, _ := Median(xs)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		return med >= lo && med <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
